#!/usr/bin/env bash
# Full CI sweep for the finelb prototype:
#   1. tier-1 verify  — default build, entire ctest suite;
#   2. bench smoke    — perf-trajectory smoke runs, including the
#                       steady-state allocation gate (micro_net --smoke
#                       fails if the request/poll hot loop allocates), the
#                       telemetry-overhead gate (alloc-free with tracing
#                       live, poll RTT p50 within 5% of bare), the
#                       decision-audit gate (micro_decision --smoke:
#                       alloc-free with every dispatch audited, poll RTT
#                       p50 within 2% of bare), the decision-quality smoke
#                       (exact sim + trace-reconstructed prototype
#                       mistake/regret numbers), and the
#                       staleness-observatory smoke; the resulting
#                       BENCH_*.json snapshots are folded into
#                       BENCH_trajectory.json (keyed by git SHA) and gated
#                       against ci/bench_baseline.json by bench_compare.py
#                       (>10% tracked-p50 regression fails the run);
#   3. telemetry off  — -DFINELB_TELEMETRY=OFF build, full test suite:
#                       the escape hatch must stay a working configuration;
#   4. sanitizers     — ASan+UBSan and TSan builds running the threaded
#                       runtime, trace, and HA tests
#                       (ctest -L "runtime|trace|ha"), which cover the
#                       lock-free registry/trace-ring/decision-ring record
#                       paths, the scrape-during-write protocol, the
#                       chunked TRACE_INQUIRY and DECISION_INQUIRY wire
#                       paths, and the replicated
#                       directory (election state machine, replica threads,
#                       client failover/redirect).
#
# Usage: ci/run_ci.sh [build-root]     (default: <repo>/build-ci)
# Each stage uses its own build tree under the build root, so a warm tree
# makes re-runs incremental. Exits non-zero on the first failing stage.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build_root="${1:-${repo}/build-ci}"
jobs="$(nproc)"

stage() {
  echo
  echo "=== $* ==="
}

configure_and_build() {
  local dir="$1"
  shift
  cmake -S "${repo}" -B "${dir}" -DCMAKE_BUILD_TYPE=Release "$@" \
    -Wno-dev >/dev/null
  cmake --build "${dir}" -j"${jobs}"
}

stage "tier-1: default build + full test suite"
configure_and_build "${build_root}/default"
ctest --test-dir "${build_root}/default" -j"${jobs}" --output-on-failure

stage "bench smoke (allocation + telemetry-overhead gates included)"
ctest --test-dir "${build_root}/default" -L bench-smoke --output-on-failure

stage "perf trajectory + regression gate"
python3 "${repo}/ci/bench_compare.py" collect \
  --bench-dir "${build_root}/default/bench" \
  --out "${build_root}/default/bench/BENCH_trajectory.json" \
  --sha "$(git -C "${repo}" rev-parse HEAD 2>/dev/null || echo unknown)"
python3 "${repo}/ci/bench_compare.py" compare \
  --bench-dir "${build_root}/default/bench" \
  --baseline "${repo}/ci/bench_baseline.json"

stage "telemetry escape hatch: -DFINELB_TELEMETRY=OFF build + full suite"
configure_and_build "${build_root}/notelemetry" -DFINELB_TELEMETRY=OFF
ctest --test-dir "${build_root}/notelemetry" -j"${jobs}" --output-on-failure

stage "address sanitizer: runtime + trace + ha tests"
configure_and_build "${build_root}/asan" -DFINELB_SANITIZE=address
ctest --test-dir "${build_root}/asan" -j"${jobs}" -L "runtime|trace|ha" \
  --output-on-failure

stage "thread sanitizer: runtime + trace + ha tests"
configure_and_build "${build_root}/tsan" -DFINELB_SANITIZE=thread
ctest --test-dir "${build_root}/tsan" -j"${jobs}" -L "runtime|trace|ha" \
  --output-on-failure

stage "all stages passed"
