#!/usr/bin/env python3
"""Perf-trajectory bookkeeping for CI (stdlib only).

Two subcommands, both reading the BENCH_*.json snapshots the bench-smoke
ctest stage writes into <build>/bench:

  collect --bench-dir DIR --out BENCH_trajectory.json [--sha SHA]
      Folds every BENCH_*.json in DIR into a trajectory document keyed by
      git SHA, so successive CI runs accumulate a perf history that can be
      diffed or plotted. Re-running for the same SHA overwrites that SHA's
      entry (CI retries should not duplicate).

  compare --bench-dir DIR --baseline ci/bench_baseline.json
      Gates CI on the tracked p50 metrics: any lower-is-better metric more
      than `tolerance_pct` above its checked-in baseline (or higher-is-
      better metric more than `tolerance_pct` below) fails the run.
      Missing snapshot files or metric paths fail too — a gate that
      silently stops measuring is worse than a red build.

Baseline format (ci/bench_baseline.json):
  { "tolerance_pct": 10,
    "metrics": [ {"file": "BENCH_net.json", "path": "poll_rtt_us.p50",
                  "baseline": 4.2, "direction": "lower"}, ... ] }

A metric may carry its own "tolerance_pct" (noisy metrics get wider
gates), and the whole run's tolerance can be scaled for a noisy host via
the BENCH_TOLERANCE_SCALE environment variable (e.g. 2 doubles every
gate's width).
"""

import argparse
import glob
import json
import os
import subprocess
import sys


def load_json(path):
    with open(path, "r", encoding="utf-8") as f:
        return json.load(f)


def lookup(doc, dotted_path):
    """Resolve 'a.b.0.c' against nested dicts/lists; None if absent."""
    node = doc
    for part in dotted_path.split("."):
        if isinstance(node, list):
            try:
                node = node[int(part)]
            except (ValueError, IndexError):
                return None
        elif isinstance(node, dict):
            if part not in node:
                return None
            node = node[part]
        else:
            return None
    return node


def git_sha(fallback="unknown"):
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            check=True,
            cwd=os.path.dirname(os.path.abspath(__file__)),
        )
        return out.stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return fallback


def cmd_collect(args):
    snapshots = {}
    for path in sorted(glob.glob(os.path.join(args.bench_dir, "BENCH_*.json"))):
        name = os.path.splitext(os.path.basename(path))[0]
        if name == "BENCH_trajectory":
            continue
        try:
            snapshots[name] = load_json(path)
        except (OSError, json.JSONDecodeError) as err:
            print(f"bench_compare: skipping unreadable {path}: {err}",
                  file=sys.stderr)
    if not snapshots:
        print(f"bench_compare: no BENCH_*.json under {args.bench_dir}",
              file=sys.stderr)
        return 1

    trajectory = {}
    if os.path.exists(args.out):
        try:
            trajectory = load_json(args.out)
        except (OSError, json.JSONDecodeError):
            print(f"bench_compare: resetting corrupt trajectory {args.out}",
                  file=sys.stderr)
            trajectory = {}
    sha = args.sha or git_sha()
    trajectory[sha] = snapshots
    with open(args.out, "w", encoding="utf-8") as f:
        json.dump(trajectory, f, indent=1, sort_keys=True)
        f.write("\n")
    print(f"bench_compare: trajectory entry for {sha[:12]} "
          f"({len(snapshots)} snapshots, {len(trajectory)} SHAs) -> {args.out}")
    return 0


def cmd_compare(args):
    baseline = load_json(args.baseline)
    default_tolerance = float(baseline.get("tolerance_pct", 10))
    scale = float(os.environ.get("BENCH_TOLERANCE_SCALE", 1))
    failures = []
    print(f"bench_compare: gating on {len(baseline['metrics'])} tracked "
          f"metrics, default tolerance {default_tolerance:g}% "
          f"(scale {scale:g})")
    for metric in baseline["metrics"]:
        label = f"{metric['file']}:{metric['path']}"
        tolerance = float(metric.get("tolerance_pct",
                                     default_tolerance)) * scale
        path = os.path.join(args.bench_dir, metric["file"])
        if not os.path.exists(path):
            failures.append(f"{label}: snapshot file missing")
            continue
        value = lookup(load_json(path), metric["path"])
        if not isinstance(value, (int, float)):
            failures.append(f"{label}: metric path missing")
            continue
        base = float(metric["baseline"])
        direction = metric.get("direction", "lower")
        if base != 0:
            delta_pct = (value - base) / abs(base) * 100.0
        else:
            delta_pct = 0.0 if value == 0 else float("inf")
        regressed = (delta_pct > tolerance if direction == "lower"
                     else delta_pct < -tolerance)
        verdict = "FAIL" if regressed else "ok"
        print(f"  [{verdict:4}] {label}: {value:g} vs baseline {base:g} "
              f"({delta_pct:+.1f}%, {direction}-is-better)")
        if regressed:
            failures.append(f"{label}: {value:g} vs {base:g} "
                            f"({delta_pct:+.1f}% > {tolerance:g}%)")
    if failures:
        print("bench_compare: perf regression gate FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print("bench_compare: all tracked metrics within tolerance")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    collect = sub.add_parser("collect", help="fold snapshots into trajectory")
    collect.add_argument("--bench-dir", required=True)
    collect.add_argument("--out", required=True)
    collect.add_argument("--sha", default="")
    collect.set_defaults(func=cmd_collect)

    compare = sub.add_parser("compare", help="gate on tracked p50 metrics")
    compare.add_argument("--bench-dir", required=True)
    compare.add_argument("--baseline", required=True)
    compare.set_defaults(func=cmd_compare)

    args = parser.parse_args()
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
