// Photo-album scenario: the paper's Figure 1 service cluster, built from
// the lower-level finelb building blocks.
//
// The cluster hosts an "image-store" service partitioned into two partition
// groups (photos 0-9 and 10-19), each replicated on two server nodes. All
// four nodes announce themselves on the availability channel as soft state.
// An album front-end resolves each photo access in two steps, exactly as a
// Neptune client would:
//   1. service availability: look the partition up in the mapping table
//      refreshed from the directory;
//   2. load balancing: poll the partition's replicas over connected UDP
//      sockets and dispatch to the lighter one (random polling, d = group
//      size).
//
// It also demonstrates the soft-state failure story: one replica is stopped
// mid-run, its directory entry expires, and the front-end keeps serving
// from the survivor without reconfiguration.
//
// Run:  ./build/examples/photo_album
#include <array>
#include <cstdio>
#include <map>
#include <memory>
#include <vector>

#include "cluster/directory.h"
#include "cluster/server_node.h"
#include "common/flags.h"
#include "common/log.h"
#include "common/rng.h"
#include "core/selection.h"
#include "net/clock.h"
#include "net/message.h"
#include "net/poller.h"
#include "net/socket.h"

using namespace finelb;

namespace {

constexpr const char* kImageStore = "image-store";

/// Minimal synchronous Neptune-style client: mapping table + polling agent.
class AlbumFrontend {
 public:
  explicit AlbumFrontend(const net::Address& directory)
      : directory_(directory), rng_(7) {}

  /// Refreshes the service mapping table from the availability channel.
  void refresh_mapping() {
    replicas_.clear();
    for (const auto& endpoint : directory_.fetch(kImageStore)) {
      replicas_[endpoint.partition].push_back(endpoint);
    }
  }

  /// Fetches one photo: resolve partition, poll replicas, dispatch.
  /// Returns the serving node id, or -1 if the partition has no replicas.
  int fetch_photo(int photo_id, std::uint32_t service_us) {
    const std::uint32_t partition = photo_id < 10 ? 0u : 1u;
    const auto it = replicas_.find(partition);
    if (it == replicas_.end() || it->second.empty()) return -1;
    const auto& group = it->second;

    // Load balancing step: poll every replica in the partition group.
    std::vector<ServerLoad> loads;
    for (std::size_t i = 0; i < group.size(); ++i) {
      net::UdpSocket poll_socket;
      poll_socket.connect(group[i].load_addr);
      net::LoadInquiry inquiry;
      inquiry.seq = next_seq_++;
      if (!poll_socket.send(inquiry.encode())) continue;
      net::Poller poller;
      poller.add(poll_socket.fd(), 0);
      std::array<std::uint8_t, 64> buf{};
      const SimTime deadline = net::monotonic_now() + 20 * kMillisecond;
      while (net::monotonic_now() < deadline) {
        poller.wait(deadline - net::monotonic_now());
        if (auto size = poll_socket.recv(buf)) {
          const auto reply =
              net::LoadReply::decode(std::span(buf.data(), *size));
          loads.push_back({static_cast<ServerId>(i), reply.queue_length,
                           net::monotonic_now()});
          break;
        }
      }
    }
    if (loads.empty()) return -1;
    const auto target = static_cast<std::size_t>(
        pick_least_loaded(loads, rng_));

    // Service access step.
    net::ServiceRequest request;
    request.request_id = next_seq_++;
    request.service_us = service_us;
    request.partition = partition;
    if (!service_socket_.send_to(request.encode(),
                                 group[target].service_addr)) {
      return -1;
    }
    net::Poller poller;
    poller.add(service_socket_.fd(), 0);
    std::array<std::uint8_t, 128> buf{};
    const SimTime deadline = net::monotonic_now() + kSecond;
    while (net::monotonic_now() < deadline) {
      poller.wait(deadline - net::monotonic_now());
      if (auto dgram = service_socket_.recv_from(buf)) {
        const auto response =
            net::ServiceResponse::decode(std::span(buf.data(), dgram->size));
        if (response.request_id == request.request_id) {
          return response.server;
        }
      }
    }
    return -1;
  }

 private:
  cluster::DirectoryClient directory_;
  std::map<std::uint32_t, std::vector<cluster::ServiceEndpoint>> replicas_;
  net::UdpSocket service_socket_;
  Rng rng_;
  std::uint64_t next_seq_ = 1;
};

std::unique_ptr<cluster::ServerNode> make_store_node(
    ServerId id, std::uint32_t partition, const net::Address& directory) {
  cluster::ServerOptions options;
  options.id = id;
  options.inject_busy_reply_delay = false;
  options.seed = 100 + static_cast<std::uint64_t>(id);
  auto node = std::make_unique<cluster::ServerNode>(options);
  node->enable_publishing(directory, kImageStore, partition,
                          /*interval=*/100 * kMillisecond,
                          /*ttl=*/350 * kMillisecond);
  node->start();
  return node;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags = Flags::parse(argc, argv);
  init_log_level(flags);
  // --- assemble the Figure 1 cluster ---------------------------------------
  cluster::DirectoryServer directory;
  directory.start();

  std::vector<std::unique_ptr<cluster::ServerNode>> nodes;
  nodes.push_back(make_store_node(0, /*partition=*/0, directory.address()));
  nodes.push_back(make_store_node(1, /*partition=*/0, directory.address()));
  nodes.push_back(make_store_node(2, /*partition=*/1, directory.address()));
  nodes.push_back(make_store_node(3, /*partition=*/1, directory.address()));
  std::printf("image-store: partitions 0-9 on nodes {0,1}, 10-19 on {2,3}\n");

  AlbumFrontend frontend(directory.address());
  // Wait until all four replicas have published themselves.
  cluster::DirectoryClient waiter(directory.address());
  waiter.wait_for_servers(kImageStore, 4);
  frontend.refresh_mapping();

  // --- serve an album page --------------------------------------------------
  std::printf("\nfetching album page (photos 0..19):\n  served by node:");
  int failures = 0;
  std::map<int, int> served_by;
  for (int photo = 0; photo < 20; ++photo) {
    const int node = frontend.fetch_photo(photo, /*service_us=*/3000);
    if (node < 0) {
      ++failures;
    } else {
      ++served_by[node];
    }
    std::printf(" %d", node);
  }
  std::printf("\n  per-node counts:");
  for (const auto& [node, count] : served_by) {
    std::printf(" node%d=%d", node, count);
  }
  std::printf("  failures=%d\n", failures);

  // --- soft-state failover ---------------------------------------------------
  std::printf("\nstopping node 1 (partition 0 replica)...\n");
  nodes[1]->stop();
  // Its soft state expires after the 350 ms ttl with no refresh.
  net::sleep_for(500 * kMillisecond);
  frontend.refresh_mapping();

  std::printf("fetching partition-0 photos after failover:\n  served by:");
  int post_failures = 0;
  for (int photo = 0; photo < 10; ++photo) {
    const int node = frontend.fetch_photo(photo, /*service_us=*/3000);
    if (node != 0) ++post_failures;
    std::printf(" %d", node);
  }
  std::printf("\n  all requests land on the surviving replica (node 0); "
              "misroutes: %d\n", post_failures);

  for (auto& node : nodes) node->stop();
  directory.stop();
  std::printf(
      "\nThe availability channel's soft state removed the dead replica\n"
      "without any explicit deregistration (paper section 3.1).\n");
  return 0;
}
