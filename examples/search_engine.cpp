// Search-engine scenario: the paper's motivating workload on the real
// prototype runtime.
//
// The Fine-Grain trace models a search engine's word-translation service
// (22.2 ms mean service time). This example replays the synthetic trace
// through the full prototype — 8 server nodes, 3 client nodes, UDP polling
// agents, the availability directory — and contrasts pure random dispatch
// with random polling (poll size 3) and its discard optimization, at a
// configurable load.
//
// Run:  ./build/examples/search_engine [--load=0.85] [--requests=1500]
//       [--servers=8] [--clients=3]
#include <cstdio>

#include "cluster/experiment.h"
#include "common/flags.h"
#include "common/log.h"
#include "workload/catalog.h"

int main(int argc, char** argv) {
  using namespace finelb;

  const Flags flags = Flags::parse(argc, argv);
  init_log_level(flags);
  const double load = flags.get_double("load", 0.85);
  const std::int64_t requests = flags.get_int("requests", 1500);
  const int servers = static_cast<int>(flags.get_int("servers", 8));
  const int clients = static_cast<int>(flags.get_int("clients", 3));

  const Workload workload = make_fine_grain(50'000, /*seed=*/7);
  std::printf(
      "Replaying the Fine-Grain search trace: %d server nodes, %d client\n"
      "nodes on loopback, %lld accesses at %.0f%% per-server load.\n\n",
      servers, clients, static_cast<long long>(requests), load * 100);

  const std::pair<const char*, PolicyConfig> policies[] = {
      {"random", PolicyConfig::random()},
      {"polling(3)", PolicyConfig::polling(3)},
      {"polling(3)+discard", PolicyConfig::polling(3, from_ms(1.0))},
  };

  std::printf("%-20s %10s %10s %10s %12s\n", "policy", "mean(ms)", "p95(ms)",
              "poll(ms)", "completed");
  for (const auto& [name, policy] : policies) {
    cluster::PrototypeConfig config;
    config.servers = servers;
    config.clients = clients;
    config.policy = policy;
    config.load = load;
    config.total_requests = requests;
    config.seed = 42;

    const cluster::PrototypeResult result =
        cluster::run_prototype(config, workload);
    std::printf("%-20s %10.1f %10.1f %10.2f %9lld/%lld\n", name,
                result.clients.response_ms.mean(),
                result.clients.response_hist_ms.p95(),
                result.clients.poll_time_ms.mean(),
                static_cast<long long>(result.clients.completed),
                static_cast<long long>(result.clients.issued));
  }
  std::printf(
      "\nFor fine-grain services the polling agent's just-in-time load\n"
      "information pays for its round trip, and discarding slow polls\n"
      "(paper section 3.2) trims the tail further.\n");
  return 0;
}
