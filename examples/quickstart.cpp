// Quickstart: compare load-balancing policies in the simulator.
//
// Builds a 16-server cluster model, drives it with the paper's Poisson/Exp
// workload at 90% per-server load, and prints the mean response time of
// each policy. This is the smallest end-to-end use of the finelb API:
//   1. pick a Workload (workload/catalog.h),
//   2. describe a policy (core/policy.h),
//   3. run the simulation (sim/config.h).
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "common/flags.h"
#include "common/log.h"
#include "sim/config.h"
#include "workload/catalog.h"

int main(int argc, char** argv) {
  using namespace finelb;
  const Flags flags = Flags::parse(argc, argv);
  init_log_level(flags);

  // The paper's synthetic workload: Poisson arrivals, exponential service
  // times with a 50 ms mean.
  const Workload workload = make_poisson_exp(0.050);

  const std::pair<const char*, PolicyConfig> policies[] = {
      {"random          ", PolicyConfig::random()},
      {"round-robin     ", PolicyConfig::round_robin()},
      {"broadcast(100ms)", PolicyConfig::broadcast(from_ms(100))},
      {"polling(2)      ", PolicyConfig::polling(2)},
      {"polling(3)      ", PolicyConfig::polling(3)},
      {"ideal           ", PolicyConfig::ideal()},
  };

  std::printf("16 servers, Poisson/Exp 50 ms services, 90%% busy\n");
  std::printf("%-18s %12s %10s %10s\n", "policy", "mean(ms)", "p95(ms)",
              "messages");
  for (const auto& [name, policy] : policies) {
    sim::SimConfig config;
    config.servers = 16;
    config.clients = 6;
    config.policy = policy;
    config.load = 0.90;
    config.total_requests = 80'000;
    config.warmup_requests = 8'000;
    config.seed = 42;

    const sim::SimResult result = run_cluster_sim(config, workload);
    std::printf("%-18s %12.1f %10.1f %10lld\n", name,
                result.mean_response_ms(), result.response_hist_ms.p95(),
                static_cast<long long>(result.messages));
  }
  std::printf(
      "\nTakeaway (paper conclusion 1-2): just-in-time polling with a poll\n"
      "size of two already performs close to the IDEAL oracle, while\n"
      "periodic broadcast suffers from stale load information.\n");
  return 0;
}
