// Word-translation scenario: the service behind the paper's Fine-Grain
// trace, built on the Neptune service layer.
//
// The paper's traces came from a search engine's internal service that
// "provides the translation between query words and their internal
// representations" and "allows multiple translations in one access". This
// example implements that service with the neptune API:
//   * the dictionary is hash-partitioned over two partition groups;
//   * each partition group is replicated on two ServiceNodes;
//   * a TRANSLATE method maps a batch of words to 64-bit ids in one access
//     (the paper's multi-translation accesses);
//   * clients find replicas through the availability directory and
//     load-balance with random polling (poll size 2) + the 1 ms discard.
//
// Run:  ./build/examples/word_translation [--queries=300]
#include <cstdio>
#include <string>
#include <vector>

#include "common/flags.h"
#include "common/log.h"
#include "common/rng.h"
#include "cluster/directory.h"
#include "net/clock.h"
#include "neptune/service_client.h"
#include "neptune/service_node.h"
#include "stats/accumulator.h"

using namespace finelb;

namespace {

constexpr std::uint16_t kTranslate = 1;
constexpr const char* kService = "word-translation";

std::uint32_t partition_of(const std::string& word) {
  // Hash-partition by first character: a deterministic stand-in for the
  // dictionary sharding a real deployment would use.
  return word.empty() ? 0u : (static_cast<std::uint32_t>(word[0]) % 2);
}

/// Stable 64-bit id for a word (FNV-1a), the "internal representation".
std::uint64_t word_id(const std::string& word) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : word) {
    h = (h ^ static_cast<std::uint8_t>(c)) * 0x100000001b3ull;
  }
  return h;
}

/// args: '\n'-separated words; result: 8 bytes (little-endian id) per word.
std::vector<std::uint8_t> translate_handler(
    std::uint32_t partition, std::span<const std::uint8_t> args) {
  net::Writer out;
  std::string word;
  const auto flush = [&] {
    if (word.empty()) return;
    if (partition_of(word) != partition) {
      throw std::runtime_error("word routed to wrong partition: " + word);
    }
    out.u64(word_id(word));
    word.clear();
  };
  for (const std::uint8_t c : args) {
    if (c == '\n') {
      flush();
    } else {
      word.push_back(static_cast<char>(c));
    }
  }
  flush();
  return std::move(out).take();
}

std::unique_ptr<neptune::ServiceNode> make_node(
    ServerId id, std::uint32_t partition, const net::Address& directory) {
  neptune::ServiceNodeOptions options;
  options.id = id;
  options.service_name = kService;
  options.partitions = {partition};
  auto node = std::make_unique<neptune::ServiceNode>(options);
  node->register_method(kTranslate, translate_handler);
  node->enable_publishing(directory, 100 * kMillisecond, 500 * kMillisecond);
  node->start();
  return node;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags = Flags::parse(argc, argv);
  init_log_level(flags);
  const std::int64_t queries = flags.get_int("queries", 300);

  cluster::DirectoryServer directory;
  directory.start();
  std::vector<std::unique_ptr<neptune::ServiceNode>> nodes;
  nodes.push_back(make_node(0, 0, directory.address()));
  nodes.push_back(make_node(1, 0, directory.address()));
  nodes.push_back(make_node(2, 1, directory.address()));
  nodes.push_back(make_node(3, 1, directory.address()));

  cluster::DirectoryClient waiter(directory.address());
  waiter.wait_for_servers(kService, 4);

  neptune::ServiceClientOptions client_options;
  client_options.service_name = kService;
  client_options.directory = directory.address();
  client_options.policy = PolicyConfig::polling(2, from_ms(1.0));
  client_options.seed = 99;
  neptune::ServiceClient client(client_options);

  const std::vector<std::string> vocabulary = {
      "cluster", "load",   "balancing", "fine",   "grain",  "network",
      "service", "random", "polling",   "discard", "neptune", "teoma"};

  Rng rng(5);
  Accumulator latency_ms;
  std::int64_t words_translated = 0;
  std::int64_t mismatches = 0;
  for (std::int64_t q = 0; q < queries; ++q) {
    // A query translates 1-4 words; words sharing a partition are batched
    // into one access ("multiple translations in one access").
    std::vector<std::string> batch[2];
    const std::size_t n = 1 + rng.uniform_int(4);
    for (std::size_t i = 0; i < n; ++i) {
      const auto& word = vocabulary[rng.uniform_int(vocabulary.size())];
      batch[partition_of(word)].push_back(word);
    }
    for (std::uint32_t partition = 0; partition < 2; ++partition) {
      if (batch[partition].empty()) continue;
      std::string args;
      for (const auto& word : batch[partition]) args += word + "\n";
      const auto result = client.call(
          kTranslate, partition,
          std::span(reinterpret_cast<const std::uint8_t*>(args.data()),
                    args.size()));
      if (!result.transport_ok || result.status != neptune::RpcStatus::kOk) {
        ++mismatches;
        continue;
      }
      latency_ms.add(to_ms(result.latency));
      net::Reader reader(result.data);
      for (const auto& word : batch[partition]) {
        ++words_translated;
        if (reader.u64() != word_id(word)) ++mismatches;
      }
    }
  }

  std::printf(
      "translated %lld words over %lld queries: mean access latency %.3f ms, "
      "mismatches %lld\n",
      static_cast<long long>(words_translated),
      static_cast<long long>(queries), latency_ms.mean(),
      static_cast<long long>(mismatches));
  std::printf("polls sent: %lld, retries: %lld, mapping refreshes: %lld\n",
              static_cast<long long>(client.stats().polls_sent),
              static_cast<long long>(client.stats().retries),
              static_cast<long long>(client.stats().mapping_refreshes));

  for (auto& node : nodes) {
    std::printf("node %d served %lld accesses\n", node->id(),
                static_cast<long long>(node->accesses_served()));
  }
  for (auto& node : nodes) node->stop();
  directory.stop();
  return mismatches == 0 ? 0 : 1;
}
