// Policy explorer: a research CLI over the simulator.
//
// Runs any policy/workload/load combination and prints the full measurement
// set: response-time moments and percentiles, polling statistics, message
// counts, and measured utilization. Useful for exploring configurations the
// paper did not sweep.
//
// Examples:
//   policy_explorer --policy=polling:3 --workload=fine --load=0.85
//   policy_explorer --policy=broadcast:250 --workload=poisson --load=0.5
//   policy_explorer --policy=polling:8:0.5 --workload=medium --servers=32
//
// Flags: --policy (random|rr|ideal|polling:<d>[:<discard_ms>]|
//        broadcast:<ms>), --workload (poisson|fine|medium),
//        --load, --servers, --clients, --requests, --seed,
//        --mean-service-ms (poisson only).
#include <cstdio>

#include "common/flags.h"
#include "common/log.h"
#include "sim/config.h"
#include "workload/catalog.h"

int main(int argc, char** argv) {
  using namespace finelb;

  const Flags flags = Flags::parse(argc, argv);
  init_log_level(flags);
  const std::string policy_spec = flags.get_string("policy", "polling:2");
  const std::string workload_name = flags.get_string("workload", "poisson");
  const double load = flags.get_double("load", 0.9);
  const int servers = static_cast<int>(flags.get_int("servers", 16));
  const int clients = static_cast<int>(flags.get_int("clients", 6));
  const std::int64_t requests = flags.get_int("requests", 100'000);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const double mean_service_ms = flags.get_double("mean-service-ms", 50.0);
  for (const auto& key : flags.unused_keys()) {
    std::fprintf(stderr, "unknown flag: --%s\n", key.c_str());
    return 2;
  }

  const Workload workload =
      workload_by_name(workload_name, mean_service_ms / 1e3, 100'000, seed);
  sim::SimConfig config;
  config.servers = servers;
  config.clients = clients;
  config.policy = parse_policy(policy_spec);
  config.load = load;
  config.total_requests = requests;
  config.warmup_requests = requests / 10;
  config.seed = seed;

  const sim::SimResult r = run_cluster_sim(config, workload);

  std::printf("policy     : %s\n", config.policy.describe().c_str());
  std::printf("workload   : %s (mean service %.1f ms)\n",
              workload.name().c_str(), workload.mean_service_sec() * 1e3);
  std::printf("cluster    : %d servers, %d client streams, %.0f%% busy\n",
              servers, clients, load * 100);
  std::printf("requests   : %lld (%lld warmup)\n",
              static_cast<long long>(requests),
              static_cast<long long>(config.warmup_requests));
  std::printf("\nresponse time (ms): mean %.2f  p50 %.2f  p95 %.2f  p99 "
              "%.2f  max %.2f\n",
              r.response_ms.mean(), r.response_hist_ms.p50(),
              r.response_hist_ms.p95(), r.response_hist_ms.p99(),
              r.response_ms.max());
  std::printf("queue on arrival  : mean %.2f  max %.0f\n",
              r.queue_on_arrival.mean(), r.queue_on_arrival.max());
  std::printf("utilization       : %.3f (offered %.3f)\n", r.utilization,
              load);
  if (r.polls_sent > 0) {
    std::printf("polling           : %lld polls, %lld discarded, mean poll "
                "time %.3f ms\n",
                static_cast<long long>(r.polls_sent),
                static_cast<long long>(r.polls_discarded),
                r.poll_time_ms.mean());
  }
  if (r.broadcasts_sent > 0) {
    std::printf("broadcasts        : %lld\n",
                static_cast<long long>(r.broadcasts_sent));
  }
  std::printf("network messages  : %lld (%.2f per request)\n",
              static_cast<long long>(r.messages),
              static_cast<double>(r.messages) /
                  static_cast<double>(requests));
  return 0;
}
