// Trace a live cluster: the smallest end-to-end use of the distributed
// tracing layer (DESIGN.md §11).
//
// Runs a real 8-server / 2-client prototype cluster on loopback with every
// 4th access traced, pulls each node's trace ring over the wire
// (TRACE_INQUIRY, clock-synced), merges the rings into one causally-ordered
// timeline, and
//   1. prints the measured staleness |Q(t_reply) - Q(t_dispatch)| next to
//      the Equation 1 bound 2*rho/(1 - rho^2),
//   2. writes a Chrome trace-event JSON you can open at
//      https://ui.perfetto.dev to follow a single request across processes:
//      enqueue -> poll fan-out -> server pick -> dispatch -> service ->
//      response.
//
// Build & run:  ./build/examples/trace_cluster [--trace_json=trace.json]
#include <cstdio>
#include <string>

#include "cluster/experiment.h"
#include "common/flags.h"
#include "common/log.h"
#include "stats/queueing.h"
#include "telemetry/merge.h"
#include "workload/catalog.h"

int main(int argc, char** argv) {
  using namespace finelb;
  const Flags flags = Flags::parse(argc, argv);
  init_log_level(flags);
  const std::string trace_json =
      flags.get_string("trace_json", "trace.json");
  const double load = flags.get_double("load", 0.7);

  cluster::PrototypeConfig config;
  config.servers = 8;
  config.clients = 2;
  config.policy = PolicyConfig::polling(3);
  config.load = load;
  config.total_requests = 2'000;
  config.use_directory = false;
  config.inject_busy_reply_delay = false;
  config.trace_sample_period = 4;  // every 4th access leaves a trace
  config.collect_traces = true;    // pull + clock-align rings after the run

  const Workload workload = make_poisson_exp(0.005);  // 5 ms mean service
  cluster::PrototypeResult result = cluster::run_prototype(config, workload);

  const auto merged = telemetry::merge_traces(result.node_traces);
  std::printf("%zu merged trace records from %zu nodes (%lld accesses)\n",
              merged.size(), result.node_traces.size(),
              static_cast<long long>(result.clients.completed));
  std::printf("staleness: %s\n",
              telemetry::staleness_to_json(result.staleness).c_str());
  std::printf("Equation 1 bound at %.0f%% load: %.3f (measured mean %.3f)\n",
              load * 100, queueing::stale_index_inaccuracy_bound(load),
              result.staleness.mean_abs_diff);

  if (std::FILE* f = std::fopen(trace_json.c_str(), "w")) {
    const std::string doc =
        telemetry::to_chrome_trace_json(merged, result.node_traces);
    std::fwrite(doc.data(), 1, doc.size(), f);
    std::fclose(f);
    std::printf("open %s in https://ui.perfetto.dev\n", trace_json.c_str());
  } else {
    std::fprintf(stderr, "cannot write %s\n", trace_json.c_str());
    return 1;
  }
  return 0;
}
