// Service trace representation and file format.
//
// A trace is the paper's unit of workload: a sequence of (inter-arrival
// interval, service time) pairs. The paper's traces came from the Teoma
// search engine and are proprietary; this repo generates synthetic traces
// with the published Table 1 moments (workload/catalog.h) but stores and
// consumes them through the same on-disk format a real trace would use, so
// a user with real traces can drop them in unchanged.
//
// File format (ASCII, one record per line):
//   # finelb-trace v1
//   # optional "# key: value" metadata lines
//   <arrival_interval_us> <service_time_us>
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "common/time.h"

namespace finelb {

struct TraceRecord {
  /// Interval since the previous request's arrival (the first record's
  /// interval is measured from the trace start).
  SimDuration arrival_interval = 0;
  SimDuration service_time = 0;

  bool operator==(const TraceRecord&) const = default;
};

struct TraceStats {
  std::int64_t count = 0;
  double arrival_mean_ms = 0.0;
  double arrival_stddev_ms = 0.0;
  double service_mean_ms = 0.0;
  double service_stddev_ms = 0.0;
};

class Trace {
 public:
  Trace() = default;
  explicit Trace(std::vector<TraceRecord> records, std::string name = "");

  const std::vector<TraceRecord>& records() const { return records_; }
  const std::string& name() const { return name_; }
  std::size_t size() const { return records_.size(); }
  bool empty() const { return records_.empty(); }

  /// Moment statistics over the whole trace (the Table 1 columns).
  TraceStats stats() const;

  /// Returns a sub-trace covering records [first, first+count) — how the
  /// paper extracts the "peak portion" of each trace.
  Trace slice(std::size_t first, std::size_t count,
              std::string name = "") const;

  /// Returns a copy with every arrival interval multiplied by `factor`
  /// (service times untouched). Scaling arrivals is how the paper drives
  /// one trace at different server load levels.
  Trace scale_arrivals(double factor) const;

  void write(std::ostream& os) const;
  static Trace read(std::istream& is, std::string name = "");

  void save(const std::string& path) const;
  static Trace load(const std::string& path);

 private:
  std::vector<TraceRecord> records_;
  std::string name_;
};

}  // namespace finelb
