// Workload descriptions and request sources.
//
// A `Workload` is an immutable description (distribution pair or recorded
// trace) from which any number of independent `RequestSource` streams can be
// instantiated. Sources are the only stateful part: a distribution source
// owns its RNG stream, a trace source owns its replay cursor. Arrival
// intervals can be rescaled at source-creation time, which is how one
// workload is driven at different server load levels (paper §1.1: "arrival
// intervals ... may be scaled when necessary to generate workloads at
// various demand levels").
#pragma once

#include <memory>
#include <string>

#include "common/rng.h"
#include "common/time.h"
#include "workload/distribution.h"
#include "workload/trace.h"

namespace finelb {

/// A stream of requests. next() returns the interval since the previous
/// request plus the new request's service demand.
class RequestSource {
 public:
  virtual ~RequestSource() = default;
  virtual TraceRecord next() = 0;
};

class Workload {
 public:
  /// Independent inter-arrival and service-time distributions (e.g. the
  /// paper's Poisson/Exp workload).
  static Workload from_distributions(std::string name, DistributionPtr arrival,
                                     DistributionPtr service);

  /// Replays a recorded (or synthesized) trace, looping when exhausted.
  static Workload from_trace(Trace trace);

  const std::string& name() const { return name_; }

  /// Mean service time in seconds.
  double mean_service_sec() const;
  /// Mean unscaled inter-arrival interval in seconds.
  double mean_interval_sec() const;

  /// Instantiates an independent request stream. `arrival_scale` multiplies
  /// every inter-arrival interval; `seed` decouples parallel streams (for a
  /// trace source it also randomizes the starting offset so multiple client
  /// streams do not replay in lockstep).
  std::unique_ptr<RequestSource> make_source(double arrival_scale,
                                             std::uint64_t seed) const;

  /// Arrival scale that drives `servers` servers at per-server utilization
  /// `rho` when all requests are spread over them: mean interval must equal
  /// mean_service / (rho * servers).
  double arrival_scale_for_load(double rho, int servers) const;

  /// True when backed by a trace (affects how experiments describe it).
  bool is_trace() const { return trace_ != nullptr; }
  /// The backing trace; requires is_trace().
  const Trace& trace() const;

 private:
  Workload() = default;

  std::string name_;
  DistributionPtr arrival_;
  DistributionPtr service_;
  std::shared_ptr<const Trace> trace_;
};

}  // namespace finelb
