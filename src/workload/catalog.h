// The paper's three evaluation workloads (§1.1, Table 1).
//
//   * Poisson/Exp — Poisson arrivals, exponential service times. The
//     simulation figures use a 50 ms mean service time.
//   * Fine-Grain trace — search-engine word-translation service; Table 1
//     reports a 22.2 ms mean / 10.0 ms std-dev service time and a 349.4 ms
//     arrival-interval std-dev over the peak portion.
//   * Medium-Grain trace — page-description translation service; 28.9 ms
//     mean / 62.9 ms std-dev service time, 321.1 ms arrival std-dev.
//
// The original traces are proprietary Teoma data, so this catalog
// *synthesizes* traces that match the published moments (DESIGN.md §3):
// lognormal arrival intervals (heavy-tailed, CV slightly above 1 — the
// paper notes peak-time arrivals are less bursty than long-horizon ones),
// gamma service times for Fine-Grain (CV 0.45 < 1, "lower variance than
// exponential"), lognormal service times for Medium-Grain (CV 2.18). The
// peak-portion arrival-interval *means* are not legible in the published
// table; we pick 331 ms (Fine) and 298 ms (Medium), consistent with the
// published weekly totals and peak-hour spans. Experiments rescale arrival
// intervals to target load levels, so only Table 1 itself depends on these
// means.
#pragma once

#include <cstdint>

#include "workload/trace.h"
#include "workload/workload.h"

namespace finelb {

struct TraceMoments {
  double arrival_mean_ms;
  double arrival_stddev_ms;
  double service_mean_ms;
  double service_stddev_ms;
};

/// Published/chosen peak-portion moments for the two synthetic traces.
TraceMoments fine_grain_moments();    // 331 / 349.4 / 22.2 / 10.0 ms
TraceMoments medium_grain_moments();  // 298 / 321.1 / 28.9 / 62.9 ms

/// Synthesizes a Fine-Grain-like trace with `count` records.
Trace synth_fine_grain_trace(std::size_t count, std::uint64_t seed);

/// Synthesizes a Medium-Grain-like trace with `count` records.
Trace synth_medium_grain_trace(std::size_t count, std::uint64_t seed);

/// Synthesizes a trace with arbitrary moments (arrivals lognormal, service
/// gamma when cv < 1 else lognormal — the rule used for both traces above).
Trace synth_trace(std::string name, const TraceMoments& moments,
                  std::size_t count, std::uint64_t seed);

/// Poisson/Exp workload with the given mean service time (seconds). The
/// base arrival mean equals the service mean, so arrival_scale_for_load()
/// semantics match the distribution workload exactly.
Workload make_poisson_exp(double mean_service_sec);

/// Trace-backed workloads, synthesized on first use with the given size.
Workload make_fine_grain(std::size_t trace_len, std::uint64_t seed);
Workload make_medium_grain(std::size_t trace_len, std::uint64_t seed);

/// Lookup by the names used in every bench harness: "poisson", "fine",
/// "medium". `poisson_mean_service_sec` only affects "poisson"; `trace_len`
/// and `seed` only affect the trace workloads. Throws on unknown names.
Workload workload_by_name(const std::string& name,
                          double poisson_mean_service_sec = 0.05,
                          std::size_t trace_len = 100'000,
                          std::uint64_t seed = 1);

}  // namespace finelb
