#include "workload/distribution.h"

#include <cmath>
#include <limits>
#include <sstream>
#include <vector>

#include "common/check.h"

namespace finelb {
namespace {

std::string fmt(double v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

class Deterministic final : public Distribution {
 public:
  explicit Deterministic(double value) : value_(value) {
    FINELB_CHECK(value >= 0.0, "deterministic value must be non-negative");
  }
  double sample(Rng&) const override { return value_; }
  double mean() const override { return value_; }
  double stddev() const override { return 0.0; }
  std::string describe() const override { return "det:" + fmt(value_); }

 private:
  double value_;
};

class Exponential final : public Distribution {
 public:
  explicit Exponential(double mean) : mean_(mean) {
    FINELB_CHECK(mean > 0.0, "exponential mean must be positive");
  }
  double sample(Rng& rng) const override { return rng.exponential(mean_); }
  double mean() const override { return mean_; }
  double stddev() const override { return mean_; }
  std::string describe() const override { return "exp:" + fmt(mean_); }

 private:
  double mean_;
};

class Uniform final : public Distribution {
 public:
  Uniform(double lo, double hi) : lo_(lo), hi_(hi) {
    FINELB_CHECK(0.0 <= lo && lo <= hi, "uniform requires 0 <= lo <= hi");
  }
  double sample(Rng& rng) const override { return rng.uniform(lo_, hi_); }
  double mean() const override { return 0.5 * (lo_ + hi_); }
  double stddev() const override {
    return (hi_ - lo_) / std::sqrt(12.0);
  }
  std::string describe() const override {
    return "uniform:" + fmt(lo_) + "," + fmt(hi_);
  }

 private:
  double lo_;
  double hi_;
};

class Lognormal final : public Distribution {
 public:
  Lognormal(double mean, double stddev) : mean_(mean), stddev_(stddev) {
    FINELB_CHECK(mean > 0.0, "lognormal mean must be positive");
    FINELB_CHECK(stddev >= 0.0, "lognormal stddev must be non-negative");
    const double cv2 = (stddev / mean) * (stddev / mean);
    sigma2_ = std::log1p(cv2);
    mu_ = std::log(mean) - 0.5 * sigma2_;
  }
  double sample(Rng& rng) const override {
    return rng.lognormal(mu_, std::sqrt(sigma2_));
  }
  double mean() const override { return mean_; }
  double stddev() const override { return stddev_; }
  std::string describe() const override {
    return "lognormal:" + fmt(mean_) + "," + fmt(stddev_);
  }

 private:
  double mean_;
  double stddev_;
  double mu_;
  double sigma2_;
};

class Gamma final : public Distribution {
 public:
  Gamma(double mean, double stddev) : mean_(mean), stddev_(stddev) {
    FINELB_CHECK(mean > 0.0 && stddev > 0.0,
                 "gamma requires positive mean and stddev");
    const double cv2 = (stddev / mean) * (stddev / mean);
    shape_ = 1.0 / cv2;
    scale_ = mean / shape_;
  }
  double sample(Rng& rng) const override {
    return sample_gamma(rng, shape_) * scale_;
  }
  double mean() const override { return mean_; }
  double stddev() const override { return stddev_; }
  std::string describe() const override {
    return "gamma:" + fmt(mean_) + "," + fmt(stddev_);
  }

 private:
  // Marsaglia-Tsang squeeze method; the k < 1 case boosts through k + 1.
  static double sample_gamma(Rng& rng, double k) {
    if (k < 1.0) {
      const double u = std::max(rng.uniform01(), 1e-300);
      return sample_gamma(rng, k + 1.0) * std::pow(u, 1.0 / k);
    }
    const double d = k - 1.0 / 3.0;
    const double c = 1.0 / std::sqrt(9.0 * d);
    for (;;) {
      double x = 0.0;
      double v = 0.0;
      do {
        x = rng.normal(0.0, 1.0);
        v = 1.0 + c * x;
      } while (v <= 0.0);
      v = v * v * v;
      const double u = rng.uniform01();
      if (u < 1.0 - 0.0331 * x * x * x * x) return d * v;
      if (u > 0.0 &&
          std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
        return d * v;
      }
    }
  }

  double mean_;
  double stddev_;
  double shape_;
  double scale_;
};

class Weibull final : public Distribution {
 public:
  Weibull(double mean, double stddev) : mean_(mean), stddev_(stddev) {
    FINELB_CHECK(mean > 0.0 && stddev > 0.0,
                 "weibull requires positive mean and stddev");
    shape_ = solve_shape(stddev / mean);
    scale_ = mean / std::tgamma(1.0 + 1.0 / shape_);
  }
  double sample(Rng& rng) const override {
    const double u = std::max(1.0 - rng.uniform01(), 1e-300);
    return scale_ * std::pow(-std::log(u), 1.0 / shape_);
  }
  double mean() const override { return mean_; }
  double stddev() const override { return stddev_; }
  std::string describe() const override {
    return "weibull:" + fmt(mean_) + "," + fmt(stddev_);
  }

 private:
  static double cv_of_shape(double k) {
    const double g1 = std::lgamma(1.0 + 1.0 / k);
    const double g2 = std::lgamma(1.0 + 2.0 / k);
    return std::sqrt(std::max(std::exp(g2 - 2.0 * g1) - 1.0, 0.0));
  }

  // CV decreases monotonically in the shape parameter; bisect on it.
  static double solve_shape(double cv) {
    FINELB_CHECK(cv > 0.0, "weibull cv must be positive");
    double lo = 0.05, hi = 50.0;
    FINELB_CHECK(cv_of_shape(lo) > cv && cv_of_shape(hi) < cv,
                 "weibull cv out of supported range");
    for (int i = 0; i < 200; ++i) {
      const double mid = 0.5 * (lo + hi);
      if (cv_of_shape(mid) > cv) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
    return 0.5 * (lo + hi);
  }

  double mean_;
  double stddev_;
  double shape_;
  double scale_;
};

class Pareto final : public Distribution {
 public:
  Pareto(double alpha, double x_m) : alpha_(alpha), x_m_(x_m) {
    FINELB_CHECK(alpha > 1.0, "pareto needs alpha > 1 for a finite mean");
    FINELB_CHECK(x_m > 0.0, "pareto minimum must be positive");
  }
  double sample(Rng& rng) const override {
    const double u = std::max(1.0 - rng.uniform01(), 1e-300);
    return x_m_ * std::pow(u, -1.0 / alpha_);
  }
  double mean() const override { return alpha_ * x_m_ / (alpha_ - 1.0); }
  double stddev() const override {
    if (alpha_ <= 2.0) return std::numeric_limits<double>::infinity();
    return x_m_ * std::sqrt(alpha_) /
           ((alpha_ - 1.0) * std::sqrt(alpha_ - 2.0));
  }
  std::string describe() const override {
    return "pareto:" + fmt(alpha_) + "," + fmt(x_m_);
  }

 private:
  double alpha_;
  double x_m_;
};

class ShiftedExponential final : public Distribution {
 public:
  ShiftedExponential(double offset, double mean_excess)
      : offset_(offset), mean_excess_(mean_excess) {
    FINELB_CHECK(offset >= 0.0 && mean_excess > 0.0,
                 "shifted exponential parameters out of range");
  }
  double sample(Rng& rng) const override {
    return offset_ + rng.exponential(mean_excess_);
  }
  double mean() const override { return offset_ + mean_excess_; }
  double stddev() const override { return mean_excess_; }
  std::string describe() const override {
    return "shiftedexp:" + fmt(offset_) + "," + fmt(mean_excess_);
  }

 private:
  double offset_;
  double mean_excess_;
};

std::vector<double> parse_params(const std::string& body) {
  std::vector<double> params;
  std::istringstream is(body);
  std::string piece;
  while (std::getline(is, piece, ',')) {
    FINELB_CHECK(!piece.empty(), "empty parameter in distribution spec");
    params.push_back(std::stod(piece));
  }
  return params;
}

}  // namespace

DistributionPtr make_deterministic(double value) {
  return std::make_shared<Deterministic>(value);
}
DistributionPtr make_exponential(double mean) {
  return std::make_shared<Exponential>(mean);
}
DistributionPtr make_uniform(double lo, double hi) {
  return std::make_shared<Uniform>(lo, hi);
}
DistributionPtr make_lognormal_from_moments(double mean, double stddev) {
  return std::make_shared<Lognormal>(mean, stddev);
}
DistributionPtr make_gamma_from_moments(double mean, double stddev) {
  return std::make_shared<Gamma>(mean, stddev);
}
DistributionPtr make_weibull_from_moments(double mean, double stddev) {
  return std::make_shared<Weibull>(mean, stddev);
}
DistributionPtr make_pareto(double alpha, double x_m) {
  return std::make_shared<Pareto>(alpha, x_m);
}
DistributionPtr make_shifted_exponential(double offset, double mean_excess) {
  return std::make_shared<ShiftedExponential>(offset, mean_excess);
}

DistributionPtr parse_distribution(const std::string& spec) {
  const auto colon = spec.find(':');
  FINELB_CHECK(colon != std::string::npos,
               "distribution spec needs a ':' separator: " + spec);
  const std::string name = spec.substr(0, colon);
  const auto params = parse_params(spec.substr(colon + 1));
  const auto need = [&](std::size_t n) {
    FINELB_CHECK(params.size() == n,
                 "distribution " + name + " takes " + std::to_string(n) +
                     " parameter(s)");
  };
  if (name == "det") {
    need(1);
    return make_deterministic(params[0]);
  }
  if (name == "exp") {
    need(1);
    return make_exponential(params[0]);
  }
  if (name == "uniform") {
    need(2);
    return make_uniform(params[0], params[1]);
  }
  if (name == "lognormal") {
    need(2);
    return make_lognormal_from_moments(params[0], params[1]);
  }
  if (name == "gamma") {
    need(2);
    return make_gamma_from_moments(params[0], params[1]);
  }
  if (name == "weibull") {
    need(2);
    return make_weibull_from_moments(params[0], params[1]);
  }
  if (name == "pareto") {
    need(2);
    return make_pareto(params[0], params[1]);
  }
  if (name == "shiftedexp") {
    need(2);
    return make_shifted_exponential(params[0], params[1]);
  }
  FINELB_CHECK(false, "unknown distribution: " + name);
  return nullptr;
}

}  // namespace finelb
