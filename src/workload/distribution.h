// Random-variate distributions for inter-arrival and service times.
//
// The paper's Poisson/Exp workload needs exponential variates; the synthetic
// Fine-Grain / Medium-Grain traces are generated from heavy-tailed
// distributions matched to the published Table 1 moments (see §1.1 of the
// paper and DESIGN.md §3). All samplers draw from finelb::Rng so experiments
// stay bit-reproducible. Distributions are immutable and thread-compatible:
// concurrent sampling is safe when each thread uses its own Rng.
#pragma once

#include <memory>
#include <string>

#include "common/rng.h"

namespace finelb {

/// A non-negative continuous distribution. Samples are in *seconds* (the
/// workload layer converts to SimDuration at the edge).
class Distribution {
 public:
  virtual ~Distribution() = default;

  virtual double sample(Rng& rng) const = 0;
  virtual double mean() const = 0;
  virtual double stddev() const = 0;
  virtual std::string describe() const = 0;
};

using DistributionPtr = std::shared_ptr<const Distribution>;

/// Always returns `value`.
DistributionPtr make_deterministic(double value);

/// Exponential with the given mean.
DistributionPtr make_exponential(double mean);

/// Uniform on [lo, hi].
DistributionPtr make_uniform(double lo, double hi);

/// Lognormal parameterized by its own mean and standard deviation (the
/// moment-matching form used to synthesize the trace workloads).
DistributionPtr make_lognormal_from_moments(double mean, double stddev);

/// Gamma parameterized by mean and standard deviation (shape k = 1/cv^2).
DistributionPtr make_gamma_from_moments(double mean, double stddev);

/// Weibull parameterized by mean and standard deviation; the shape parameter
/// is found by bisection on the CV relation cv^2 = G(1+2/k)/G(1+1/k)^2 - 1.
DistributionPtr make_weibull_from_moments(double mean, double stddev);

/// Pareto with shape alpha (> 1 for a finite mean) and minimum x_m.
DistributionPtr make_pareto(double alpha, double x_m);

/// Shifted exponential: offset + Exp(mean_excess). Handy for modelling a
/// fixed per-request cost plus variable work.
DistributionPtr make_shifted_exponential(double offset, double mean_excess);

/// Parses a spec string such as "exp:0.05", "det:0.01",
/// "lognormal:0.0289,0.0629", "gamma:0.0222,0.01", "uniform:0.01,0.02",
/// "pareto:2.5,0.005", "weibull:0.05,0.1". Throws InvariantError on
/// malformed specs.
DistributionPtr parse_distribution(const std::string& spec);

}  // namespace finelb
