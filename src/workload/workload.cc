#include "workload/workload.h"

#include <cmath>

#include "common/check.h"

namespace finelb {
namespace {

class DistributionSource final : public RequestSource {
 public:
  DistributionSource(DistributionPtr arrival, DistributionPtr service,
                     double arrival_scale, std::uint64_t seed)
      : arrival_(std::move(arrival)),
        service_(std::move(service)),
        arrival_scale_(arrival_scale),
        rng_(seed) {}

  TraceRecord next() override {
    return {from_sec(arrival_->sample(rng_) * arrival_scale_),
            from_sec(service_->sample(rng_))};
  }

 private:
  DistributionPtr arrival_;
  DistributionPtr service_;
  double arrival_scale_;
  Rng rng_;
};

class TraceSource final : public RequestSource {
 public:
  TraceSource(std::shared_ptr<const Trace> trace, double arrival_scale,
              std::uint64_t seed)
      : trace_(std::move(trace)), arrival_scale_(arrival_scale) {
    FINELB_CHECK(!trace_->empty(), "cannot replay an empty trace");
    Rng rng(seed);
    cursor_ = rng.uniform_int(trace_->size());
  }

  TraceRecord next() override {
    const TraceRecord& r = trace_->records()[cursor_];
    cursor_ = (cursor_ + 1) % trace_->size();
    return {static_cast<SimDuration>(std::llround(
                static_cast<double>(r.arrival_interval) * arrival_scale_)),
            r.service_time};
  }

 private:
  std::shared_ptr<const Trace> trace_;
  double arrival_scale_;
  std::size_t cursor_ = 0;
};

}  // namespace

Workload Workload::from_distributions(std::string name,
                                      DistributionPtr arrival,
                                      DistributionPtr service) {
  FINELB_CHECK(arrival != nullptr && service != nullptr,
               "workload distributions must be non-null");
  Workload w;
  w.name_ = std::move(name);
  w.arrival_ = std::move(arrival);
  w.service_ = std::move(service);
  return w;
}

Workload Workload::from_trace(Trace trace) {
  FINELB_CHECK(!trace.empty(), "cannot build a workload from an empty trace");
  Workload w;
  w.name_ = trace.name();
  w.trace_ = std::make_shared<const Trace>(std::move(trace));
  return w;
}

double Workload::mean_service_sec() const {
  if (trace_) return trace_->stats().service_mean_ms / 1e3;
  return service_->mean();
}

double Workload::mean_interval_sec() const {
  if (trace_) return trace_->stats().arrival_mean_ms / 1e3;
  return arrival_->mean();
}

std::unique_ptr<RequestSource> Workload::make_source(double arrival_scale,
                                                     std::uint64_t seed) const {
  FINELB_CHECK(arrival_scale > 0.0, "arrival scale must be positive");
  if (trace_) {
    return std::make_unique<TraceSource>(trace_, arrival_scale, seed);
  }
  return std::make_unique<DistributionSource>(arrival_, service_,
                                              arrival_scale, seed);
}

double Workload::arrival_scale_for_load(double rho, int servers) const {
  FINELB_CHECK(rho > 0.0, "load level must be positive");
  FINELB_CHECK(servers >= 1, "need at least one server");
  const double desired_interval =
      mean_service_sec() / (rho * static_cast<double>(servers));
  return desired_interval / mean_interval_sec();
}

const Trace& Workload::trace() const {
  FINELB_CHECK(trace_ != nullptr, "workload is not trace-backed");
  return *trace_;
}

}  // namespace finelb
