#include "workload/trace.h"

#include <cmath>
#include <fstream>
#include <sstream>

#include "common/check.h"
#include "stats/accumulator.h"

namespace finelb {

Trace::Trace(std::vector<TraceRecord> records, std::string name)
    : records_(std::move(records)), name_(std::move(name)) {
  for (const auto& r : records_) {
    FINELB_CHECK(r.arrival_interval >= 0, "negative arrival interval");
    FINELB_CHECK(r.service_time >= 0, "negative service time");
  }
}

TraceStats Trace::stats() const {
  Accumulator arrivals;
  Accumulator services;
  for (const auto& r : records_) {
    arrivals.add(to_ms(r.arrival_interval));
    services.add(to_ms(r.service_time));
  }
  TraceStats s;
  s.count = static_cast<std::int64_t>(records_.size());
  s.arrival_mean_ms = arrivals.mean();
  s.arrival_stddev_ms = arrivals.stddev();
  s.service_mean_ms = services.mean();
  s.service_stddev_ms = services.stddev();
  return s;
}

Trace Trace::slice(std::size_t first, std::size_t count,
                   std::string name) const {
  FINELB_CHECK(first <= records_.size(), "slice start past end of trace");
  const std::size_t n = std::min(count, records_.size() - first);
  std::vector<TraceRecord> out(records_.begin() + first,
                               records_.begin() + first + n);
  return Trace(std::move(out), name.empty() ? name_ + "/slice" : name);
}

Trace Trace::scale_arrivals(double factor) const {
  FINELB_CHECK(factor > 0.0, "arrival scale factor must be positive");
  std::vector<TraceRecord> out;
  out.reserve(records_.size());
  for (const auto& r : records_) {
    out.push_back({static_cast<SimDuration>(
                       std::llround(static_cast<double>(r.arrival_interval) *
                                    factor)),
                   r.service_time});
  }
  return Trace(std::move(out), name_);
}

void Trace::write(std::ostream& os) const {
  os << "# finelb-trace v1\n";
  if (!name_.empty()) os << "# name: " << name_ << "\n";
  for (const auto& r : records_) {
    os << r.arrival_interval / kMicrosecond << ' '
       << r.service_time / kMicrosecond << '\n';
  }
}

Trace Trace::read(std::istream& is, std::string name) {
  std::vector<TraceRecord> records;
  std::string line;
  bool saw_header = false;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    if (line[0] == '#') {
      if (line.find("finelb-trace") != std::string::npos) saw_header = true;
      const auto pos = line.find("name: ");
      if (pos != std::string::npos && name.empty()) {
        name = line.substr(pos + 6);
      }
      continue;
    }
    std::istringstream fields(line);
    std::int64_t arrival_us = 0;
    std::int64_t service_us = 0;
    FINELB_CHECK(static_cast<bool>(fields >> arrival_us >> service_us),
                 "malformed trace line: " + line);
    records.push_back(
        {arrival_us * kMicrosecond, service_us * kMicrosecond});
  }
  FINELB_CHECK(saw_header, "missing finelb-trace header");
  return Trace(std::move(records), std::move(name));
}

void Trace::save(const std::string& path) const {
  std::ofstream os(path);
  FINELB_CHECK(os.good(), "cannot open trace file for writing: " + path);
  write(os);
  FINELB_CHECK(os.good(), "error writing trace file: " + path);
}

Trace Trace::load(const std::string& path) {
  std::ifstream is(path);
  FINELB_CHECK(is.good(), "cannot open trace file: " + path);
  return read(is);
}

}  // namespace finelb
