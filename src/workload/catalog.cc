#include "workload/catalog.h"

#include "common/check.h"

namespace finelb {

TraceMoments fine_grain_moments() { return {331.0, 349.4, 22.2, 10.0}; }
TraceMoments medium_grain_moments() { return {298.0, 321.1, 28.9, 62.9}; }

Trace synth_trace(std::string name, const TraceMoments& moments,
                  std::size_t count, std::uint64_t seed) {
  FINELB_CHECK(count > 0, "trace must have at least one record");
  const auto arrival = make_lognormal_from_moments(
      moments.arrival_mean_ms / 1e3, moments.arrival_stddev_ms / 1e3);
  const double service_cv =
      moments.service_stddev_ms / moments.service_mean_ms;
  // Gamma for low-variance services (the paper observes sub-exponential
  // variance for the Fine-Grain service), lognormal for heavy-tailed ones.
  const auto service =
      service_cv < 1.0
          ? make_gamma_from_moments(moments.service_mean_ms / 1e3,
                                    moments.service_stddev_ms / 1e3)
          : make_lognormal_from_moments(moments.service_mean_ms / 1e3,
                                        moments.service_stddev_ms / 1e3);
  Rng rng(seed);
  std::vector<TraceRecord> records;
  records.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    records.push_back(
        {from_sec(arrival->sample(rng)), from_sec(service->sample(rng))});
  }
  return Trace(std::move(records), std::move(name));
}

Trace synth_fine_grain_trace(std::size_t count, std::uint64_t seed) {
  return synth_trace("fine-grain", fine_grain_moments(), count, seed);
}

Trace synth_medium_grain_trace(std::size_t count, std::uint64_t seed) {
  return synth_trace("medium-grain", medium_grain_moments(), count, seed);
}

Workload make_poisson_exp(double mean_service_sec) {
  FINELB_CHECK(mean_service_sec > 0.0, "mean service time must be positive");
  return Workload::from_distributions("poisson-exp",
                                      make_exponential(mean_service_sec),
                                      make_exponential(mean_service_sec));
}

Workload make_fine_grain(std::size_t trace_len, std::uint64_t seed) {
  return Workload::from_trace(synth_fine_grain_trace(trace_len, seed));
}

Workload make_medium_grain(std::size_t trace_len, std::uint64_t seed) {
  return Workload::from_trace(synth_medium_grain_trace(trace_len, seed));
}

Workload workload_by_name(const std::string& name,
                          double poisson_mean_service_sec,
                          std::size_t trace_len, std::uint64_t seed) {
  if (name == "poisson") return make_poisson_exp(poisson_mean_service_sec);
  if (name == "fine") return make_fine_grain(trace_len, seed);
  if (name == "medium") return make_medium_grain(trace_len, seed);
  FINELB_CHECK(false, "unknown workload: " + name +
                          " (expected poisson|fine|medium)");
  return make_poisson_exp(poisson_mean_service_sec);  // unreachable
}

}  // namespace finelb
