// Little-endian wire encoding helpers.
//
// All prototype messages use explicit little-endian fixed-width fields; the
// Writer/Reader pair keeps encode/decode symmetric and bounds-checked.
// Reader throws InvariantError on truncated input, so a short or corrupted
// datagram can never read out of bounds.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/check.h"

namespace finelb::net {

class Writer {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) { append_le(v); }
  void u32(std::uint32_t v) { append_le(v); }
  void u64(std::uint64_t v) { append_le(v); }
  void i32(std::int32_t v) { append_le(static_cast<std::uint32_t>(v)); }
  void i64(std::int64_t v) { append_le(static_cast<std::uint64_t>(v)); }

  /// Length-prefixed (u16) byte string; capped at 64 KiB by construction.
  void str(std::string_view s) {
    FINELB_CHECK(s.size() <= 0xffff, "string too long for wire format");
    buf_.reserve(buf_.size() + 2 + s.size());
    u16(static_cast<std::uint16_t>(s.size()));
    buf_.insert(buf_.end(), s.begin(), s.end());
  }

  /// Length-prefixed (u32) binary blob (RPC payloads).
  void blob(std::span<const std::uint8_t> data) {
    u32(static_cast<std::uint32_t>(data.size()));
    buf_.insert(buf_.end(), data.begin(), data.end());
  }

  std::span<const std::uint8_t> bytes() const { return buf_; }
  std::vector<std::uint8_t> take() && { return std::move(buf_); }

 private:
  template <class T>
  void append_le(T v) {
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }

  std::vector<std::uint8_t> buf_;
};

/// Bounds-checked writer over a caller-supplied buffer — the hot-path
/// counterpart of Writer. Never allocates and never throws: running out of
/// space latches ok() to false and discards further writes, so callers
/// check ok() once at the end instead of guarding every field. Used by the
/// encode_into() family to serialize straight into DatagramBatch arenas and
/// stack buffers.
class SpanWriter {
 public:
  explicit SpanWriter(std::span<std::uint8_t> out) : out_(out) {}

  void u8(std::uint8_t v) {
    if (pos_ + 1 > out_.size()) {
      ok_ = false;
      return;
    }
    out_[pos_++] = v;
  }
  void u16(std::uint16_t v) { append_le(v); }
  void u32(std::uint32_t v) { append_le(v); }
  void u64(std::uint64_t v) { append_le(v); }
  void i32(std::int32_t v) { append_le(static_cast<std::uint32_t>(v)); }
  void i64(std::int64_t v) { append_le(static_cast<std::uint64_t>(v)); }

  /// Length-prefixed (u16) byte string; same wire format as Writer::str.
  void str(std::string_view s) {
    if (s.size() > 0xffff) {
      ok_ = false;
      return;
    }
    u16(static_cast<std::uint16_t>(s.size()));
    append_bytes(reinterpret_cast<const std::uint8_t*>(s.data()), s.size());
  }

  /// Length-prefixed (u32) binary blob; same wire format as Writer::blob.
  void blob(std::span<const std::uint8_t> data) {
    u32(static_cast<std::uint32_t>(data.size()));
    append_bytes(data.data(), data.size());
  }

  /// False once any write overflowed the buffer (or a string was oversized).
  bool ok() const { return ok_; }
  /// Bytes written so far (only meaningful while ok()).
  std::size_t size() const { return pos_; }

 private:
  template <class T>
  void append_le(T v) {
    if (pos_ + sizeof(T) > out_.size()) {
      ok_ = false;
      return;
    }
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      out_[pos_++] = static_cast<std::uint8_t>(v >> (8 * i));
    }
  }

  void append_bytes(const std::uint8_t* data, std::size_t n) {
    if (!ok_ || pos_ + n > out_.size()) {
      ok_ = false;
      return;
    }
    std::memcpy(out_.data() + pos_, data, n);
    pos_ += n;
  }

  std::span<std::uint8_t> out_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t u8() { return read_le<std::uint8_t>(); }
  std::uint16_t u16() { return read_le<std::uint16_t>(); }
  std::uint32_t u32() { return read_le<std::uint32_t>(); }
  std::uint64_t u64() { return read_le<std::uint64_t>(); }
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }

  std::string str() {
    const std::size_t len = u16();
    FINELB_CHECK(remaining() >= len, "truncated string on the wire");
    std::string out(reinterpret_cast<const char*>(data_.data() + pos_), len);
    pos_ += len;
    return out;
  }

  std::vector<std::uint8_t> blob() {
    const std::size_t len = u32();
    FINELB_CHECK(remaining() >= len, "truncated blob on the wire");
    std::vector<std::uint8_t> out(data_.begin() + static_cast<long>(pos_),
                                  data_.begin() + static_cast<long>(pos_ + len));
    pos_ += len;
    return out;
  }

  std::size_t remaining() const { return data_.size() - pos_; }
  bool done() const { return pos_ == data_.size(); }

 private:
  template <class T>
  T read_le() {
    FINELB_CHECK(remaining() >= sizeof(T), "truncated field on the wire");
    T v = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      v = static_cast<T>(v | (static_cast<T>(data_[pos_ + i]) << (8 * i)));
    }
    pos_ += sizeof(T);
    return v;
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

/// Non-throwing reader for hot-path decodes (the try_decode() family).
/// A truncated field latches ok() to false and yields zero values; callers
/// check ok() once after reading every field. String/blob reads assign into
/// caller-owned storage so repeated decodes reuse capacity.
class TryReader {
 public:
  explicit TryReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t u8() { return read_le<std::uint8_t>(); }
  std::uint16_t u16() { return read_le<std::uint16_t>(); }
  std::uint32_t u32() { return read_le<std::uint32_t>(); }
  std::uint64_t u64() { return read_le<std::uint64_t>(); }
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }

  void str(std::string& out) {
    const std::size_t len = u16();
    if (!ok_ || remaining() < len) {
      ok_ = false;
      out.clear();
      return;
    }
    out.assign(reinterpret_cast<const char*>(data_.data() + pos_), len);
    pos_ += len;
  }

  void blob(std::vector<std::uint8_t>& out) {
    const std::size_t len = u32();
    if (!ok_ || remaining() < len) {
      ok_ = false;
      out.clear();
      return;
    }
    out.assign(data_.begin() + static_cast<long>(pos_),
               data_.begin() + static_cast<long>(pos_ + len));
    pos_ += len;
  }

  bool ok() const { return ok_; }
  std::size_t remaining() const { return data_.size() - pos_; }
  bool done() const { return pos_ == data_.size(); }

 private:
  template <class T>
  T read_le() {
    if (!ok_ || remaining() < sizeof(T)) {
      ok_ = false;
      return 0;
    }
    T v = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      v = static_cast<T>(v | (static_cast<T>(data_[pos_ + i]) << (8 * i)));
    }
    pos_ += sizeof(T);
    return v;
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace finelb::net
