// TCP transport with length-framed messages.
//
// The paper's Neptune used connection-oriented transport for service
// accesses (its measured cost — half a 516 us TCP round trip with
// connection setup and teardown — is the simulator's request latency
// default), and its IDEAL emulation paid "one TCP roundtrip without
// connection setup and teardown" (339 us) per access. This module provides
// that substrate: a listener, blocking-ish connections driven through the
// same ppoll loops as the UDP path, and 4-byte length framing so arbitrary
// message payloads survive TCP's stream semantics.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "common/time.h"
#include "net/socket.h"

namespace finelb::net {

/// A connected TCP stream carrying length-framed messages. Non-blocking
/// socket; send() loops internally until the frame is fully written (frames
/// are small), recv_frame() returns only complete frames.
class TcpStream {
 public:
  TcpStream() = default;
  explicit TcpStream(FdHandle fd);

  TcpStream(TcpStream&&) = default;
  TcpStream& operator=(TcpStream&&) = default;

  bool valid() const { return fd_.valid(); }
  int fd() const { return fd_.get(); }
  Address local_address() const;
  Address peer_address() const;

  /// Connects to a listener with a bounded wait; throws SysError on
  /// failure, InvariantError on timeout.
  static TcpStream connect(const Address& peer,
                           SimDuration timeout = kSecond);

  /// Writes one framed message (4-byte little-endian length + payload).
  /// Returns false if the peer has closed; throws SysError on errors.
  bool send_frame(std::span<const std::uint8_t> payload);

  /// Non-blocking: consumes buffered bytes and returns the next complete
  /// frame if available. Returns nullopt when more bytes are needed.
  /// `peer_closed()` turns true once EOF is seen and the buffer drains.
  std::optional<std::vector<std::uint8_t>> recv_frame();

  /// Blocks (ppoll) until a frame arrives, the peer closes (nullopt), or
  /// the timeout elapses (nullopt with peer_closed() == false).
  std::optional<std::vector<std::uint8_t>> recv_frame_wait(
      SimDuration timeout);

  bool peer_closed() const { return eof_ && buffer_.empty(); }

 private:
  void fill_buffer();

  FdHandle fd_;
  std::vector<std::uint8_t> buffer_;
  bool eof_ = false;
};

/// Listening socket on 127.0.0.1.
class TcpListener {
 public:
  explicit TcpListener(std::uint16_t port = 0, int backlog = 64);

  int fd() const { return fd_.get(); }
  Address local_address() const;

  /// Non-blocking accept; nullopt when no connection is pending.
  std::optional<TcpStream> accept();

  /// Blocks (ppoll) up to `timeout` for one connection.
  std::optional<TcpStream> accept_wait(SimDuration timeout);

 private:
  FdHandle fd_;
};

struct TcpPingPongResult {
  /// Round trip on a persistent connection (the paper's 339 us number).
  double persistent_rtt_us = 0.0;
  /// Round trip including connect() and close() (the paper's 516 us).
  double per_connection_rtt_us = 0.0;
  int rounds = 0;
};

/// Measures both TCP round-trip variants on loopback.
TcpPingPongResult measure_tcp_rtt(int rounds = 300, int warmup = 30);

}  // namespace finelb::net
