#include "net/message.h"

namespace finelb::net {
namespace {

/// Consumes the type tag; false when it is missing or not `want`.
bool expect_type(TryReader& r, MsgType want) {
  const auto got = static_cast<MsgType>(r.u8());
  return r.ok() && got == want;
}

// Every encode path (including the compat encode() vectors) routes through
// SpanWriter, so there is a single source of wire bytes per message type.
void put_publish_body(SpanWriter& w, const Publish& p) {
  w.str(p.service);
  w.u32(p.partition);
  w.i32(p.server);
  w.u16(p.service_port);
  w.u16(p.load_port);
  w.u32(p.ttl_ms);
}

bool read_publish_body(TryReader& r, Publish& p) {
  r.str(p.service);
  p.partition = r.u32();
  p.server = r.i32();
  p.service_port = r.u16();
  p.load_port = r.u16();
  p.ttl_ms = r.u32();
  return r.ok();
}

std::size_t publish_body_size(const Publish& p) {
  return 2 + p.service.size() + 4 + 4 + 2 + 2 + 4;
}

/// Shared encode() wrapper: size the vector exactly, serialize in place.
/// Byte-identical to encode_into by construction.
template <class Msg>
std::vector<std::uint8_t> encode_via(const Msg& m) {
  std::vector<std::uint8_t> out(m.encoded_size());
  const std::size_t n = m.encode_into(out);
  FINELB_CHECK(n == out.size(), "encoded_size/encode_into disagree");
  return out;
}

/// Shared decode() wrapper: throwing facade over try_decode.
template <class Msg>
Msg decode_via(std::span<const std::uint8_t> data, const char* what) {
  Msg m;
  FINELB_CHECK(Msg::try_decode(data, m), what);
  return m;
}

}  // namespace

MsgType peek_type(std::span<const std::uint8_t> data) {
  FINELB_CHECK(!data.empty(), "empty datagram");
  return static_cast<MsgType>(data[0]);
}

std::size_t LoadInquiry::encoded_size() const { return 1 + 8 + 8 + 8; }

std::size_t LoadInquiry::encode_into(std::span<std::uint8_t> out) const {
  SpanWriter w(out);
  w.u8(static_cast<std::uint8_t>(MsgType::kLoadInquiry));
  w.u64(seq);
  w.u64(trace_id);
  w.i64(origin_ns);
  return w.ok() ? w.size() : 0;
}

bool LoadInquiry::try_decode(std::span<const std::uint8_t> data,
                             LoadInquiry& out) {
  TryReader r(data);
  if (!expect_type(r, MsgType::kLoadInquiry)) return false;
  out.seq = r.u64();
  out.trace_id = r.u64();
  out.origin_ns = r.i64();
  return r.ok();
}

std::vector<std::uint8_t> LoadInquiry::encode() const {
  return encode_via(*this);
}

LoadInquiry LoadInquiry::decode(std::span<const std::uint8_t> data) {
  return decode_via<LoadInquiry>(data, "malformed LoadInquiry");
}

std::size_t LoadReply::encoded_size() const { return 1 + 8 + 4 + 8 + 8 + 8; }

std::size_t LoadReply::encode_into(std::span<std::uint8_t> out) const {
  SpanWriter w(out);
  w.u8(static_cast<std::uint8_t>(MsgType::kLoadReply));
  w.u64(seq);
  w.i32(queue_length);
  w.u64(trace_id);
  w.i64(origin_ns);
  w.i64(server_ns);
  return w.ok() ? w.size() : 0;
}

bool LoadReply::try_decode(std::span<const std::uint8_t> data,
                           LoadReply& out) {
  TryReader r(data);
  if (!expect_type(r, MsgType::kLoadReply)) return false;
  out.seq = r.u64();
  out.queue_length = r.i32();
  out.trace_id = r.u64();
  out.origin_ns = r.i64();
  out.server_ns = r.i64();
  return r.ok();
}

std::vector<std::uint8_t> LoadReply::encode() const { return encode_via(*this); }

LoadReply LoadReply::decode(std::span<const std::uint8_t> data) {
  return decode_via<LoadReply>(data, "malformed LoadReply");
}

std::size_t ServiceRequest::encoded_size() const {
  return 1 + 8 + 4 + 4 + 8 + 8;
}

std::size_t ServiceRequest::encode_into(std::span<std::uint8_t> out) const {
  SpanWriter w(out);
  w.u8(static_cast<std::uint8_t>(MsgType::kServiceRequest));
  w.u64(request_id);
  w.u32(service_us);
  w.u32(partition);
  w.u64(trace_id);
  w.i64(origin_ns);
  return w.ok() ? w.size() : 0;
}

bool ServiceRequest::try_decode(std::span<const std::uint8_t> data,
                                ServiceRequest& out) {
  TryReader r(data);
  if (!expect_type(r, MsgType::kServiceRequest)) return false;
  out.request_id = r.u64();
  out.service_us = r.u32();
  out.partition = r.u32();
  out.trace_id = r.u64();
  out.origin_ns = r.i64();
  return r.ok();
}

std::vector<std::uint8_t> ServiceRequest::encode() const {
  return encode_via(*this);
}

ServiceRequest ServiceRequest::decode(std::span<const std::uint8_t> data) {
  return decode_via<ServiceRequest>(data, "malformed ServiceRequest");
}

std::size_t ServiceResponse::encoded_size() const {
  return 1 + 8 + 4 + 4 + 8 + 8;
}

std::size_t ServiceResponse::encode_into(std::span<std::uint8_t> out) const {
  SpanWriter w(out);
  w.u8(static_cast<std::uint8_t>(MsgType::kServiceResponse));
  w.u64(request_id);
  w.i32(server);
  w.i32(queue_at_arrival);
  w.u64(trace_id);
  w.i64(server_ns);
  return w.ok() ? w.size() : 0;
}

bool ServiceResponse::try_decode(std::span<const std::uint8_t> data,
                                 ServiceResponse& out) {
  TryReader r(data);
  if (!expect_type(r, MsgType::kServiceResponse)) return false;
  out.request_id = r.u64();
  out.server = r.i32();
  out.queue_at_arrival = r.i32();
  out.trace_id = r.u64();
  out.server_ns = r.i64();
  return r.ok();
}

std::vector<std::uint8_t> ServiceResponse::encode() const {
  return encode_via(*this);
}

ServiceResponse ServiceResponse::decode(std::span<const std::uint8_t> data) {
  return decode_via<ServiceResponse>(data, "malformed ServiceResponse");
}

std::size_t Acquire::encoded_size() const { return 1 + 8; }

std::size_t Acquire::encode_into(std::span<std::uint8_t> out) const {
  SpanWriter w(out);
  w.u8(static_cast<std::uint8_t>(MsgType::kAcquire));
  w.u64(seq);
  return w.ok() ? w.size() : 0;
}

bool Acquire::try_decode(std::span<const std::uint8_t> data, Acquire& out) {
  TryReader r(data);
  if (!expect_type(r, MsgType::kAcquire)) return false;
  out.seq = r.u64();
  return r.ok();
}

std::vector<std::uint8_t> Acquire::encode() const { return encode_via(*this); }

Acquire Acquire::decode(std::span<const std::uint8_t> data) {
  return decode_via<Acquire>(data, "malformed Acquire");
}

std::size_t AcquireReply::encoded_size() const { return 1 + 8 + 4; }

std::size_t AcquireReply::encode_into(std::span<std::uint8_t> out) const {
  SpanWriter w(out);
  w.u8(static_cast<std::uint8_t>(MsgType::kAcquireReply));
  w.u64(seq);
  w.i32(server);
  return w.ok() ? w.size() : 0;
}

bool AcquireReply::try_decode(std::span<const std::uint8_t> data,
                              AcquireReply& out) {
  TryReader r(data);
  if (!expect_type(r, MsgType::kAcquireReply)) return false;
  out.seq = r.u64();
  out.server = r.i32();
  return r.ok();
}

std::vector<std::uint8_t> AcquireReply::encode() const {
  return encode_via(*this);
}

AcquireReply AcquireReply::decode(std::span<const std::uint8_t> data) {
  return decode_via<AcquireReply>(data, "malformed AcquireReply");
}

std::size_t Release::encoded_size() const { return 1 + 4; }

std::size_t Release::encode_into(std::span<std::uint8_t> out) const {
  SpanWriter w(out);
  w.u8(static_cast<std::uint8_t>(MsgType::kRelease));
  w.i32(server);
  return w.ok() ? w.size() : 0;
}

bool Release::try_decode(std::span<const std::uint8_t> data, Release& out) {
  TryReader r(data);
  if (!expect_type(r, MsgType::kRelease)) return false;
  out.server = r.i32();
  return r.ok();
}

std::vector<std::uint8_t> Release::encode() const { return encode_via(*this); }

Release Release::decode(std::span<const std::uint8_t> data) {
  return decode_via<Release>(data, "malformed Release");
}

std::size_t Publish::encoded_size() const {
  return 1 + publish_body_size(*this);
}

std::size_t Publish::encode_into(std::span<std::uint8_t> out) const {
  SpanWriter w(out);
  w.u8(static_cast<std::uint8_t>(MsgType::kPublish));
  put_publish_body(w, *this);
  return w.ok() ? w.size() : 0;
}

bool Publish::try_decode(std::span<const std::uint8_t> data, Publish& out) {
  TryReader r(data);
  if (!expect_type(r, MsgType::kPublish)) return false;
  return read_publish_body(r, out);
}

std::vector<std::uint8_t> Publish::encode() const { return encode_via(*this); }

Publish Publish::decode(std::span<const std::uint8_t> data) {
  return decode_via<Publish>(data, "malformed Publish");
}

std::size_t SnapshotRequest::encoded_size() const {
  return 1 + 8 + 2 + service.size();
}

std::size_t SnapshotRequest::encode_into(std::span<std::uint8_t> out) const {
  SpanWriter w(out);
  w.u8(static_cast<std::uint8_t>(MsgType::kSnapshotRequest));
  w.u64(seq);
  w.str(service);
  return w.ok() ? w.size() : 0;
}

bool SnapshotRequest::try_decode(std::span<const std::uint8_t> data,
                                 SnapshotRequest& out) {
  TryReader r(data);
  if (!expect_type(r, MsgType::kSnapshotRequest)) return false;
  out.seq = r.u64();
  r.str(out.service);
  return r.ok();
}

std::vector<std::uint8_t> SnapshotRequest::encode() const {
  return encode_via(*this);
}

SnapshotRequest SnapshotRequest::decode(std::span<const std::uint8_t> data) {
  return decode_via<SnapshotRequest>(data, "malformed SnapshotRequest");
}

std::size_t SnapshotReply::encoded_size() const {
  std::size_t size = 1 + 8 + 4;
  for (const auto& entry : entries) size += publish_body_size(entry);
  return size;
}

std::size_t SnapshotReply::encode_into(std::span<std::uint8_t> out) const {
  SpanWriter w(out);
  w.u8(static_cast<std::uint8_t>(MsgType::kSnapshotReply));
  w.u64(seq);
  w.u32(static_cast<std::uint32_t>(entries.size()));
  for (const auto& entry : entries) put_publish_body(w, entry);
  return w.ok() ? w.size() : 0;
}

bool SnapshotReply::try_decode(std::span<const std::uint8_t> data,
                               SnapshotReply& out) {
  TryReader r(data);
  if (!expect_type(r, MsgType::kSnapshotReply)) return false;
  out.seq = r.u64();
  const std::uint32_t count = r.u32();
  if (!r.ok()) return false;
  // The smallest possible entry (empty service string) is 18 bytes; a count
  // the remaining bytes cannot hold is garbage — reject it before reserving
  // storage rather than letting a corrupted count force a giant allocation.
  constexpr std::size_t kMinEntryBytes = 18;
  if (static_cast<std::size_t>(count) > r.remaining() / kMinEntryBytes) {
    return false;
  }
  out.entries.resize(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    if (!read_publish_body(r, out.entries[i])) return false;
  }
  return true;
}

std::vector<std::uint8_t> SnapshotReply::encode() const {
  return encode_via(*this);
}

SnapshotReply SnapshotReply::decode(std::span<const std::uint8_t> data) {
  return decode_via<SnapshotReply>(data, "malformed SnapshotReply");
}

std::size_t LoadAnnounce::encoded_size() const { return 1 + 4 + 4; }

std::size_t LoadAnnounce::encode_into(std::span<std::uint8_t> out) const {
  SpanWriter w(out);
  w.u8(static_cast<std::uint8_t>(MsgType::kLoadAnnounce));
  w.i32(server);
  w.i32(queue_length);
  return w.ok() ? w.size() : 0;
}

bool LoadAnnounce::try_decode(std::span<const std::uint8_t> data,
                              LoadAnnounce& out) {
  TryReader r(data);
  if (!expect_type(r, MsgType::kLoadAnnounce)) return false;
  out.server = r.i32();
  out.queue_length = r.i32();
  return r.ok();
}

std::vector<std::uint8_t> LoadAnnounce::encode() const {
  return encode_via(*this);
}

LoadAnnounce LoadAnnounce::decode(std::span<const std::uint8_t> data) {
  return decode_via<LoadAnnounce>(data, "malformed LoadAnnounce");
}

std::size_t Subscribe::encoded_size() const { return 1 + 4; }

std::size_t Subscribe::encode_into(std::span<std::uint8_t> out) const {
  SpanWriter w(out);
  w.u8(static_cast<std::uint8_t>(MsgType::kSubscribe));
  w.u32(ttl_ms);
  return w.ok() ? w.size() : 0;
}

bool Subscribe::try_decode(std::span<const std::uint8_t> data,
                           Subscribe& out) {
  TryReader r(data);
  if (!expect_type(r, MsgType::kSubscribe)) return false;
  out.ttl_ms = r.u32();
  return r.ok();
}

std::vector<std::uint8_t> Subscribe::encode() const {
  return encode_via(*this);
}

Subscribe Subscribe::decode(std::span<const std::uint8_t> data) {
  return decode_via<Subscribe>(data, "malformed Subscribe");
}

std::size_t StatsInquiry::encoded_size() const { return 1 + 8; }

std::size_t StatsInquiry::encode_into(std::span<std::uint8_t> out) const {
  SpanWriter w(out);
  w.u8(static_cast<std::uint8_t>(MsgType::kStatsInquiry));
  w.u64(seq);
  return w.ok() ? w.size() : 0;
}

bool StatsInquiry::try_decode(std::span<const std::uint8_t> data,
                              StatsInquiry& out) {
  TryReader r(data);
  if (!expect_type(r, MsgType::kStatsInquiry)) return false;
  out.seq = r.u64();
  return r.ok();
}

std::vector<std::uint8_t> StatsInquiry::encode() const {
  return encode_via(*this);
}

StatsInquiry StatsInquiry::decode(std::span<const std::uint8_t> data) {
  return decode_via<StatsInquiry>(data, "malformed StatsInquiry");
}

std::size_t StatsReply::encoded_size() const {
  return 1 + 8 + 2 + payload.size();
}

std::size_t StatsReply::encode_into(std::span<std::uint8_t> out) const {
  SpanWriter w(out);
  w.u8(static_cast<std::uint8_t>(MsgType::kStatsReply));
  w.u64(seq);
  w.str(payload);
  return w.ok() ? w.size() : 0;
}

bool StatsReply::try_decode(std::span<const std::uint8_t> data,
                            StatsReply& out) {
  TryReader r(data);
  if (!expect_type(r, MsgType::kStatsReply)) return false;
  out.seq = r.u64();
  r.str(out.payload);
  return r.ok();
}

std::vector<std::uint8_t> StatsReply::encode() const {
  return encode_via(*this);
}

StatsReply StatsReply::decode(std::span<const std::uint8_t> data) {
  return decode_via<StatsReply>(data, "malformed StatsReply");
}

std::size_t TraceInquiry::encoded_size() const { return 1 + 8 + 4; }

std::size_t TraceInquiry::encode_into(std::span<std::uint8_t> out) const {
  SpanWriter w(out);
  w.u8(static_cast<std::uint8_t>(MsgType::kTraceInquiry));
  w.u64(seq);
  w.u32(offset);
  return w.ok() ? w.size() : 0;
}

bool TraceInquiry::try_decode(std::span<const std::uint8_t> data,
                              TraceInquiry& out) {
  TryReader r(data);
  if (!expect_type(r, MsgType::kTraceInquiry)) return false;
  out.seq = r.u64();
  out.offset = r.u32();
  return r.ok();
}

std::vector<std::uint8_t> TraceInquiry::encode() const {
  return encode_via(*this);
}

TraceInquiry TraceInquiry::decode(std::span<const std::uint8_t> data) {
  return decode_via<TraceInquiry>(data, "malformed TraceInquiry");
}

namespace {

constexpr std::size_t kTraceRecordWireBytes = 8 + 1 + 4 + 8 + 8;

void put_trace_record(SpanWriter& w, const TraceRecordWire& rec) {
  w.u64(rec.request_id);
  w.u8(rec.point);
  w.i32(rec.node);
  w.i64(rec.at_ns);
  w.i64(rec.detail);
}

bool read_trace_record(TryReader& r, TraceRecordWire& rec) {
  rec.request_id = r.u64();
  rec.point = r.u8();
  rec.node = r.i32();
  rec.at_ns = r.i64();
  rec.detail = r.i64();
  return r.ok();
}

}  // namespace

std::size_t TraceReply::encoded_size() const {
  return 1 + 8 + 4 + 8 + 4 + 4 + 4 + records.size() * kTraceRecordWireBytes;
}

std::size_t TraceReply::encode_into(std::span<std::uint8_t> out) const {
  SpanWriter w(out);
  w.u8(static_cast<std::uint8_t>(MsgType::kTraceReply));
  w.u64(seq);
  w.i32(node);
  w.i64(server_ns);
  w.u32(total);
  w.u32(offset);
  w.u32(static_cast<std::uint32_t>(records.size()));
  for (const TraceRecordWire& rec : records) put_trace_record(w, rec);
  return w.ok() ? w.size() : 0;
}

bool TraceReply::try_decode(std::span<const std::uint8_t> data,
                            TraceReply& out) {
  TryReader r(data);
  if (!expect_type(r, MsgType::kTraceReply)) return false;
  out.seq = r.u64();
  out.node = r.i32();
  out.server_ns = r.i64();
  out.total = r.u32();
  out.offset = r.u32();
  const std::uint32_t count = r.u32();
  if (!r.ok()) return false;
  // Reject counts the remaining bytes cannot hold before reserving storage
  // (same defense as SnapshotReply against a corrupted count).
  if (static_cast<std::size_t>(count) >
      r.remaining() / kTraceRecordWireBytes) {
    return false;
  }
  out.records.resize(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    if (!read_trace_record(r, out.records[i])) return false;
  }
  return true;
}

std::vector<std::uint8_t> TraceReply::encode() const {
  return encode_via(*this);
}

TraceReply TraceReply::decode(std::span<const std::uint8_t> data) {
  return decode_via<TraceReply>(data, "malformed TraceReply");
}

std::size_t DecisionInquiry::encoded_size() const { return 1 + 8 + 4; }

std::size_t DecisionInquiry::encode_into(std::span<std::uint8_t> out) const {
  SpanWriter w(out);
  w.u8(static_cast<std::uint8_t>(MsgType::kDecisionInquiry));
  w.u64(seq);
  w.u32(offset);
  return w.ok() ? w.size() : 0;
}

bool DecisionInquiry::try_decode(std::span<const std::uint8_t> data,
                                 DecisionInquiry& out) {
  TryReader r(data);
  if (!expect_type(r, MsgType::kDecisionInquiry)) return false;
  out.seq = r.u64();
  out.offset = r.u32();
  return r.ok();
}

std::vector<std::uint8_t> DecisionInquiry::encode() const {
  return encode_via(*this);
}

DecisionInquiry DecisionInquiry::decode(std::span<const std::uint8_t> data) {
  return decode_via<DecisionInquiry>(data, "malformed DecisionInquiry");
}

namespace {

// Fixed header of one decision record; each polled entry adds 4 + 4 + 8.
constexpr std::size_t kDecisionRecordHeaderBytes = 8 + 8 + 4 + 1 + 1 + 1;
constexpr std::size_t kDecisionPolledBytes = 4 + 4 + 8;

std::size_t decision_record_bytes(const DecisionRecordWire& rec) {
  return kDecisionRecordHeaderBytes +
         static_cast<std::size_t>(rec.polled_count) * kDecisionPolledBytes;
}

void put_decision_record(SpanWriter& w, const DecisionRecordWire& rec) {
  w.u64(rec.request_id);
  w.i64(rec.at_ns);
  w.i32(rec.chosen);
  w.u8(rec.polled_count);
  w.u8(rec.flags);
  w.u8(rec.blacklist_filtered);
  for (std::uint8_t i = 0; i < rec.polled_count; ++i) {
    w.i32(rec.polled[i].server);
    w.i32(rec.polled[i].queue_length);
    w.i64(rec.polled[i].age_ns);
  }
}

bool read_decision_record(TryReader& r, DecisionRecordWire& rec) {
  rec.request_id = r.u64();
  rec.at_ns = r.i64();
  rec.chosen = r.i32();
  rec.polled_count = r.u8();
  rec.flags = r.u8();
  rec.blacklist_filtered = r.u8();
  if (!r.ok() || rec.polled_count > kDecisionWirePollMax) return false;
  for (std::uint8_t i = 0; i < rec.polled_count; ++i) {
    rec.polled[i].server = r.i32();
    rec.polled[i].queue_length = r.i32();
    rec.polled[i].age_ns = r.i64();
  }
  return r.ok();
}

}  // namespace

std::size_t DecisionReply::encoded_size() const {
  std::size_t n = 1 + 8 + 4 + 8 + 4 + 4 + 4;
  for (const DecisionRecordWire& rec : records) {
    n += decision_record_bytes(rec);
  }
  return n;
}

std::size_t DecisionReply::encode_into(std::span<std::uint8_t> out) const {
  SpanWriter w(out);
  w.u8(static_cast<std::uint8_t>(MsgType::kDecisionReply));
  w.u64(seq);
  w.i32(node);
  w.i64(server_ns);
  w.u32(total);
  w.u32(offset);
  w.u32(static_cast<std::uint32_t>(records.size()));
  for (const DecisionRecordWire& rec : records) {
    if (rec.polled_count > kDecisionWirePollMax) return 0;
    put_decision_record(w, rec);
  }
  return w.ok() ? w.size() : 0;
}

bool DecisionReply::try_decode(std::span<const std::uint8_t> data,
                               DecisionReply& out) {
  TryReader r(data);
  if (!expect_type(r, MsgType::kDecisionReply)) return false;
  out.seq = r.u64();
  out.node = r.i32();
  out.server_ns = r.i64();
  out.total = r.u32();
  out.offset = r.u32();
  const std::uint32_t count = r.u32();
  if (!r.ok()) return false;
  // Records are variable-size, so the cheapest-possible record (no polled
  // entries) bounds the admissible count before any storage is reserved.
  if (static_cast<std::size_t>(count) >
      r.remaining() / kDecisionRecordHeaderBytes) {
    return false;
  }
  out.records.resize(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    if (!read_decision_record(r, out.records[i])) return false;
  }
  return true;
}

std::vector<std::uint8_t> DecisionReply::encode() const {
  return encode_via(*this);
}

DecisionReply DecisionReply::decode(std::span<const std::uint8_t> data) {
  return decode_via<DecisionReply>(data, "malformed DecisionReply");
}

std::size_t VoteRequest::encoded_size() const { return 1 + 8 + 4; }

std::size_t VoteRequest::encode_into(std::span<std::uint8_t> out) const {
  SpanWriter w(out);
  w.u8(static_cast<std::uint8_t>(MsgType::kVoteRequest));
  w.u64(term);
  w.i32(candidate);
  return w.ok() ? w.size() : 0;
}

bool VoteRequest::try_decode(std::span<const std::uint8_t> data,
                             VoteRequest& out) {
  TryReader r(data);
  if (!expect_type(r, MsgType::kVoteRequest)) return false;
  out.term = r.u64();
  out.candidate = r.i32();
  return r.ok();
}

std::vector<std::uint8_t> VoteRequest::encode() const {
  return encode_via(*this);
}

VoteRequest VoteRequest::decode(std::span<const std::uint8_t> data) {
  return decode_via<VoteRequest>(data, "malformed VoteRequest");
}

std::size_t VoteReply::encoded_size() const { return 1 + 8 + 4 + 1; }

std::size_t VoteReply::encode_into(std::span<std::uint8_t> out) const {
  SpanWriter w(out);
  w.u8(static_cast<std::uint8_t>(MsgType::kVoteReply));
  w.u64(term);
  w.i32(voter);
  w.u8(granted ? 1 : 0);
  return w.ok() ? w.size() : 0;
}

bool VoteReply::try_decode(std::span<const std::uint8_t> data,
                           VoteReply& out) {
  TryReader r(data);
  if (!expect_type(r, MsgType::kVoteReply)) return false;
  out.term = r.u64();
  out.voter = r.i32();
  out.granted = r.u8() != 0;
  return r.ok();
}

std::vector<std::uint8_t> VoteReply::encode() const {
  return encode_via(*this);
}

VoteReply VoteReply::decode(std::span<const std::uint8_t> data) {
  return decode_via<VoteReply>(data, "malformed VoteReply");
}

std::size_t Heartbeat::encoded_size() const { return 1 + 8 + 4; }

std::size_t Heartbeat::encode_into(std::span<std::uint8_t> out) const {
  SpanWriter w(out);
  w.u8(static_cast<std::uint8_t>(MsgType::kHeartbeat));
  w.u64(term);
  w.i32(leader);
  return w.ok() ? w.size() : 0;
}

bool Heartbeat::try_decode(std::span<const std::uint8_t> data,
                           Heartbeat& out) {
  TryReader r(data);
  if (!expect_type(r, MsgType::kHeartbeat)) return false;
  out.term = r.u64();
  out.leader = r.i32();
  return r.ok();
}

std::vector<std::uint8_t> Heartbeat::encode() const {
  return encode_via(*this);
}

Heartbeat Heartbeat::decode(std::span<const std::uint8_t> data) {
  return decode_via<Heartbeat>(data, "malformed Heartbeat");
}

std::size_t HeartbeatAck::encoded_size() const { return 1 + 8 + 4; }

std::size_t HeartbeatAck::encode_into(std::span<std::uint8_t> out) const {
  SpanWriter w(out);
  w.u8(static_cast<std::uint8_t>(MsgType::kHeartbeatAck));
  w.u64(term);
  w.i32(follower);
  return w.ok() ? w.size() : 0;
}

bool HeartbeatAck::try_decode(std::span<const std::uint8_t> data,
                              HeartbeatAck& out) {
  TryReader r(data);
  if (!expect_type(r, MsgType::kHeartbeatAck)) return false;
  out.term = r.u64();
  out.follower = r.i32();
  return r.ok();
}

std::vector<std::uint8_t> HeartbeatAck::encode() const {
  return encode_via(*this);
}

HeartbeatAck HeartbeatAck::decode(std::span<const std::uint8_t> data) {
  return decode_via<HeartbeatAck>(data, "malformed HeartbeatAck");
}

std::size_t Redirect::encoded_size() const { return 1 + 8 + 8 + 4 + 2; }

std::size_t Redirect::encode_into(std::span<std::uint8_t> out) const {
  SpanWriter w(out);
  w.u8(static_cast<std::uint8_t>(MsgType::kRedirect));
  w.u64(seq);
  w.u64(term);
  w.i32(leader);
  w.u16(leader_port);
  return w.ok() ? w.size() : 0;
}

bool Redirect::try_decode(std::span<const std::uint8_t> data, Redirect& out) {
  TryReader r(data);
  if (!expect_type(r, MsgType::kRedirect)) return false;
  out.seq = r.u64();
  out.term = r.u64();
  out.leader = r.i32();
  out.leader_port = r.u16();
  return r.ok();
}

std::vector<std::uint8_t> Redirect::encode() const {
  return encode_via(*this);
}

Redirect Redirect::decode(std::span<const std::uint8_t> data) {
  return decode_via<Redirect>(data, "malformed Redirect");
}

}  // namespace finelb::net
