#include "net/message.h"

namespace finelb::net {
namespace {

void expect_type(Reader& r, MsgType want) {
  const auto got = static_cast<MsgType>(r.u8());
  FINELB_CHECK(got == want, "unexpected message type on the wire");
}

void encode_publish_body(Writer& w, const Publish& p) {
  w.str(p.service);
  w.u32(p.partition);
  w.i32(p.server);
  w.u16(p.service_port);
  w.u16(p.load_port);
  w.u32(p.ttl_ms);
}

Publish decode_publish_body(Reader& r) {
  Publish p;
  p.service = r.str();
  p.partition = r.u32();
  p.server = r.i32();
  p.service_port = r.u16();
  p.load_port = r.u16();
  p.ttl_ms = r.u32();
  return p;
}

}  // namespace

MsgType peek_type(std::span<const std::uint8_t> data) {
  FINELB_CHECK(!data.empty(), "empty datagram");
  return static_cast<MsgType>(data[0]);
}

std::vector<std::uint8_t> LoadInquiry::encode() const {
  Writer w;
  w.u8(static_cast<std::uint8_t>(MsgType::kLoadInquiry));
  w.u64(seq);
  return std::move(w).take();
}

LoadInquiry LoadInquiry::decode(std::span<const std::uint8_t> data) {
  Reader r(data);
  expect_type(r, MsgType::kLoadInquiry);
  LoadInquiry m;
  m.seq = r.u64();
  return m;
}

std::vector<std::uint8_t> LoadReply::encode() const {
  Writer w;
  w.u8(static_cast<std::uint8_t>(MsgType::kLoadReply));
  w.u64(seq);
  w.i32(queue_length);
  return std::move(w).take();
}

LoadReply LoadReply::decode(std::span<const std::uint8_t> data) {
  Reader r(data);
  expect_type(r, MsgType::kLoadReply);
  LoadReply m;
  m.seq = r.u64();
  m.queue_length = r.i32();
  return m;
}

std::vector<std::uint8_t> ServiceRequest::encode() const {
  Writer w;
  w.u8(static_cast<std::uint8_t>(MsgType::kServiceRequest));
  w.u64(request_id);
  w.u32(service_us);
  w.u32(partition);
  return std::move(w).take();
}

ServiceRequest ServiceRequest::decode(std::span<const std::uint8_t> data) {
  Reader r(data);
  expect_type(r, MsgType::kServiceRequest);
  ServiceRequest m;
  m.request_id = r.u64();
  m.service_us = r.u32();
  m.partition = r.u32();
  return m;
}

std::vector<std::uint8_t> ServiceResponse::encode() const {
  Writer w;
  w.u8(static_cast<std::uint8_t>(MsgType::kServiceResponse));
  w.u64(request_id);
  w.i32(server);
  w.i32(queue_at_arrival);
  return std::move(w).take();
}

ServiceResponse ServiceResponse::decode(std::span<const std::uint8_t> data) {
  Reader r(data);
  expect_type(r, MsgType::kServiceResponse);
  ServiceResponse m;
  m.request_id = r.u64();
  m.server = r.i32();
  m.queue_at_arrival = r.i32();
  return m;
}

std::vector<std::uint8_t> Acquire::encode() const {
  Writer w;
  w.u8(static_cast<std::uint8_t>(MsgType::kAcquire));
  w.u64(seq);
  return std::move(w).take();
}

Acquire Acquire::decode(std::span<const std::uint8_t> data) {
  Reader r(data);
  expect_type(r, MsgType::kAcquire);
  Acquire m;
  m.seq = r.u64();
  return m;
}

std::vector<std::uint8_t> AcquireReply::encode() const {
  Writer w;
  w.u8(static_cast<std::uint8_t>(MsgType::kAcquireReply));
  w.u64(seq);
  w.i32(server);
  return std::move(w).take();
}

AcquireReply AcquireReply::decode(std::span<const std::uint8_t> data) {
  Reader r(data);
  expect_type(r, MsgType::kAcquireReply);
  AcquireReply m;
  m.seq = r.u64();
  m.server = r.i32();
  return m;
}

std::vector<std::uint8_t> Release::encode() const {
  Writer w;
  w.u8(static_cast<std::uint8_t>(MsgType::kRelease));
  w.i32(server);
  return std::move(w).take();
}

Release Release::decode(std::span<const std::uint8_t> data) {
  Reader r(data);
  expect_type(r, MsgType::kRelease);
  Release m;
  m.server = r.i32();
  return m;
}

std::vector<std::uint8_t> Publish::encode() const {
  Writer w;
  w.u8(static_cast<std::uint8_t>(MsgType::kPublish));
  encode_publish_body(w, *this);
  return std::move(w).take();
}

Publish Publish::decode(std::span<const std::uint8_t> data) {
  Reader r(data);
  expect_type(r, MsgType::kPublish);
  return decode_publish_body(r);
}

std::vector<std::uint8_t> SnapshotRequest::encode() const {
  Writer w;
  w.u8(static_cast<std::uint8_t>(MsgType::kSnapshotRequest));
  w.u64(seq);
  w.str(service);
  return std::move(w).take();
}

SnapshotRequest SnapshotRequest::decode(std::span<const std::uint8_t> data) {
  Reader r(data);
  expect_type(r, MsgType::kSnapshotRequest);
  SnapshotRequest m;
  m.seq = r.u64();
  m.service = r.str();
  return m;
}

std::vector<std::uint8_t> SnapshotReply::encode() const {
  Writer w;
  w.u8(static_cast<std::uint8_t>(MsgType::kSnapshotReply));
  w.u64(seq);
  w.u32(static_cast<std::uint32_t>(entries.size()));
  for (const auto& entry : entries) encode_publish_body(w, entry);
  return std::move(w).take();
}

SnapshotReply SnapshotReply::decode(std::span<const std::uint8_t> data) {
  Reader r(data);
  expect_type(r, MsgType::kSnapshotReply);
  SnapshotReply m;
  m.seq = r.u64();
  const std::uint32_t count = r.u32();
  m.entries.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    m.entries.push_back(decode_publish_body(r));
  }
  return m;
}

std::vector<std::uint8_t> LoadAnnounce::encode() const {
  Writer w;
  w.u8(static_cast<std::uint8_t>(MsgType::kLoadAnnounce));
  w.i32(server);
  w.i32(queue_length);
  return std::move(w).take();
}

LoadAnnounce LoadAnnounce::decode(std::span<const std::uint8_t> data) {
  Reader r(data);
  expect_type(r, MsgType::kLoadAnnounce);
  LoadAnnounce m;
  m.server = r.i32();
  m.queue_length = r.i32();
  return m;
}

std::vector<std::uint8_t> Subscribe::encode() const {
  Writer w;
  w.u8(static_cast<std::uint8_t>(MsgType::kSubscribe));
  w.u32(ttl_ms);
  return std::move(w).take();
}

Subscribe Subscribe::decode(std::span<const std::uint8_t> data) {
  Reader r(data);
  expect_type(r, MsgType::kSubscribe);
  Subscribe m;
  m.ttl_ms = r.u32();
  return m;
}

}  // namespace finelb::net
