#include "net/poller.h"

#include <algorithm>
#include <cerrno>
#include <ctime>

#include "common/check.h"

namespace finelb::net {

void Poller::add(int fd, std::uint64_t tag) {
  FINELB_CHECK(fd >= 0, "cannot poll an invalid fd");
  fds_.push_back(pollfd{fd, POLLIN, 0});
  tags_.push_back(tag);
}

void Poller::remove(int fd) {
  for (std::size_t i = 0; i < fds_.size(); ++i) {
    if (fds_[i].fd == fd) {
      fds_[i] = fds_.back();
      tags_[i] = tags_.back();
      fds_.pop_back();
      tags_.pop_back();
      return;
    }
  }
  FINELB_CHECK(false, "fd not registered with poller");
}

void Poller::clear() {
  fds_.clear();
  tags_.clear();
}

std::span<const Ready> Poller::wait(SimDuration timeout) {
  timespec ts{};
  timespec* ts_ptr = nullptr;
  if (timeout >= 0) {
    ts.tv_sec = timeout / kSecond;
    ts.tv_nsec = timeout % kSecond;
    ts_ptr = &ts;
  }
  const int n = ::ppoll(fds_.data(), fds_.size(), ts_ptr, nullptr);
  ready_.clear();
  if (n < 0) {
    if (errno == EINTR) return ready_;
    FINELB_THROW_ERRNO("ppoll");
  }
  if (n == 0) return ready_;
  for (std::size_t i = 0; i < fds_.size(); ++i) {
    if (fds_[i].revents == 0) continue;
    Ready r;
    r.fd = fds_[i].fd;
    r.tag = tags_[i];
    r.readable = (fds_[i].revents & POLLIN) != 0;
    r.error = (fds_[i].revents & (POLLERR | POLLHUP | POLLNVAL)) != 0;
    ready_.push_back(r);
    fds_[i].revents = 0;
  }
  return ready_;
}

}  // namespace finelb::net
