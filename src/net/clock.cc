#include "net/clock.h"

#include <cerrno>
#include <ctime>

#include "common/check.h"

namespace finelb::net {

SimTime monotonic_now() {
  timespec ts{};
  if (::clock_gettime(CLOCK_MONOTONIC, &ts) != 0) {
    FINELB_THROW_ERRNO("clock_gettime(CLOCK_MONOTONIC)");
  }
  return static_cast<SimTime>(ts.tv_sec) * kSecond + ts.tv_nsec;
}

void sleep_until(SimTime deadline) {
  timespec ts{};
  ts.tv_sec = deadline / kSecond;
  ts.tv_nsec = deadline % kSecond;
  for (;;) {
    const int rc =
        ::clock_nanosleep(CLOCK_MONOTONIC, TIMER_ABSTIME, &ts, nullptr);
    if (rc == 0) return;
    if (rc != EINTR) {
      errno = rc;
      FINELB_THROW_ERRNO("clock_nanosleep");
    }
  }
}

void sleep_for(SimDuration d) {
  if (d <= 0) return;
  sleep_until(monotonic_now() + d);
}

void spin_until(SimTime deadline) {
  while (monotonic_now() < deadline) {
    // Intentional busy wait.
  }
}

}  // namespace finelb::net
