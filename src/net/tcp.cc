#include "net/tcp.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <thread>

#include "common/check.h"
#include "net/clock.h"
#include "net/poller.h"

namespace finelb::net {
namespace {

FdHandle make_tcp_socket() {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
  if (fd < 0) FINELB_THROW_ERRNO("socket(AF_INET, SOCK_STREAM)");
  FdHandle handle(fd);
  const int one = 1;
  // Latency matters more than throughput for small framed messages.
  if (::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one)) != 0) {
    FINELB_THROW_ERRNO("setsockopt(TCP_NODELAY)");
  }
  return handle;
}

Address socket_address(int fd, bool peer) {
  sockaddr_in sa{};
  socklen_t len = sizeof(sa);
  const int rc = peer
                     ? ::getpeername(fd, reinterpret_cast<sockaddr*>(&sa), &len)
                     : ::getsockname(fd, reinterpret_cast<sockaddr*>(&sa),
                                     &len);
  if (rc != 0) FINELB_THROW_ERRNO(peer ? "getpeername" : "getsockname");
  return Address::from_sockaddr(sa);
}

}  // namespace

TcpStream::TcpStream(FdHandle fd) : fd_(std::move(fd)) {}

Address TcpStream::local_address() const {
  return socket_address(fd(), /*peer=*/false);
}

Address TcpStream::peer_address() const {
  return socket_address(fd(), /*peer=*/true);
}

TcpStream TcpStream::connect(const Address& peer, SimDuration timeout) {
  FdHandle handle = make_tcp_socket();
  const sockaddr_in sa = peer.to_sockaddr();
  const int rc =
      ::connect(handle.get(), reinterpret_cast<const sockaddr*>(&sa),
                sizeof(sa));
  if (rc != 0 && errno != EINPROGRESS) {
    FINELB_THROW_ERRNO("connect(tcp, " + peer.to_string() + ")");
  }
  if (rc != 0) {
    // Await writability, then check SO_ERROR for the async result.
    pollfd pfd{handle.get(), POLLOUT, 0};
    timespec ts{timeout / kSecond, timeout % kSecond};
    const int ready = ::ppoll(&pfd, 1, &ts, nullptr);
    if (ready < 0) FINELB_THROW_ERRNO("ppoll(connect)");
    FINELB_CHECK(ready > 0, "tcp connect timed out: " + peer.to_string());
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(handle.get(), SOL_SOCKET, SO_ERROR, &err, &len) != 0) {
      FINELB_THROW_ERRNO("getsockopt(SO_ERROR)");
    }
    if (err != 0) {
      errno = err;
      FINELB_THROW_ERRNO("connect(tcp, " + peer.to_string() + ")");
    }
  }
  return TcpStream(std::move(handle));
}

bool TcpStream::send_frame(std::span<const std::uint8_t> payload) {
  FINELB_CHECK(payload.size() <= 0xffffffu, "frame too large");
  std::vector<std::uint8_t> frame;
  frame.reserve(payload.size() + 4);
  const auto size = static_cast<std::uint32_t>(payload.size());
  for (int i = 0; i < 4; ++i) {
    frame.push_back(static_cast<std::uint8_t>(size >> (8 * i)));
  }
  frame.insert(frame.end(), payload.begin(), payload.end());

  std::size_t sent = 0;
  while (sent < frame.size()) {
    const ssize_t n = ::send(fd(), frame.data() + sent, frame.size() - sent,
                             MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // Frames are small; spin the poller until the buffer drains.
      pollfd pfd{fd(), POLLOUT, 0};
      timespec ts{1, 0};
      if (::ppoll(&pfd, 1, &ts, nullptr) < 0 && errno != EINTR) {
        FINELB_THROW_ERRNO("ppoll(send)");
      }
      continue;
    }
    if (n < 0 && (errno == EPIPE || errno == ECONNRESET)) return false;
    FINELB_THROW_ERRNO("send(tcp)");
  }
  return true;
}

void TcpStream::fill_buffer() {
  std::uint8_t chunk[16 * 1024];
  for (;;) {
    const ssize_t n = ::recv(fd(), chunk, sizeof(chunk), 0);
    if (n > 0) {
      buffer_.insert(buffer_.end(), chunk, chunk + n);
      continue;
    }
    if (n == 0) {
      eof_ = true;
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    if (errno == ECONNRESET) {
      eof_ = true;
      return;
    }
    FINELB_THROW_ERRNO("recv(tcp)");
  }
}

std::optional<std::vector<std::uint8_t>> TcpStream::recv_frame() {
  fill_buffer();
  if (buffer_.size() < 4) return std::nullopt;
  std::uint32_t size = 0;
  for (int i = 0; i < 4; ++i) {
    size |= static_cast<std::uint32_t>(buffer_[static_cast<std::size_t>(i)])
            << (8 * i);
  }
  if (buffer_.size() < 4 + size) return std::nullopt;
  std::vector<std::uint8_t> frame(buffer_.begin() + 4,
                                  buffer_.begin() + 4 + size);
  buffer_.erase(buffer_.begin(), buffer_.begin() + 4 + size);
  return frame;
}

std::optional<std::vector<std::uint8_t>> TcpStream::recv_frame_wait(
    SimDuration timeout) {
  const SimTime deadline = monotonic_now() + timeout;
  for (;;) {
    if (auto frame = recv_frame()) return frame;
    if (peer_closed()) return std::nullopt;
    const SimDuration left = deadline - monotonic_now();
    if (left <= 0) return std::nullopt;
    pollfd pfd{fd(), POLLIN, 0};
    timespec ts{left / kSecond, left % kSecond};
    if (::ppoll(&pfd, 1, &ts, nullptr) < 0 && errno != EINTR) {
      FINELB_THROW_ERRNO("ppoll(recv)");
    }
  }
}

TcpListener::TcpListener(std::uint16_t port, int backlog) {
  fd_ = make_tcp_socket();
  const int one = 1;
  if (::setsockopt(fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) != 0) {
    FINELB_THROW_ERRNO("setsockopt(SO_REUSEADDR)");
  }
  const sockaddr_in sa = Address::loopback(port).to_sockaddr();
  if (::bind(fd(), reinterpret_cast<const sockaddr*>(&sa), sizeof(sa)) != 0) {
    FINELB_THROW_ERRNO("bind(tcp)");
  }
  if (::listen(fd(), backlog) != 0) FINELB_THROW_ERRNO("listen");
}

Address TcpListener::local_address() const {
  return socket_address(fd(), /*peer=*/false);
}

std::optional<TcpStream> TcpListener::accept() {
  const int client = ::accept4(fd(), nullptr, nullptr, SOCK_NONBLOCK);
  if (client >= 0) {
    FdHandle handle(client);
    const int one = 1;
    if (::setsockopt(client, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one)) !=
        0) {
      FINELB_THROW_ERRNO("setsockopt(TCP_NODELAY)");
    }
    return TcpStream(std::move(handle));
  }
  if (errno == EAGAIN || errno == EWOULDBLOCK) return std::nullopt;
  FINELB_THROW_ERRNO("accept4");
}

std::optional<TcpStream> TcpListener::accept_wait(SimDuration timeout) {
  const SimTime deadline = monotonic_now() + timeout;
  for (;;) {
    if (auto stream = accept()) return stream;
    const SimDuration left = deadline - monotonic_now();
    if (left <= 0) return std::nullopt;
    pollfd pfd{fd(), POLLIN, 0};
    timespec ts{left / kSecond, left % kSecond};
    if (::ppoll(&pfd, 1, &ts, nullptr) < 0 && errno != EINTR) {
      FINELB_THROW_ERRNO("ppoll(accept)");
    }
  }
}

TcpPingPongResult measure_tcp_rtt(int rounds, int warmup) {
  FINELB_CHECK(rounds > 0 && warmup >= 0, "invalid ping-pong parameters");
  TcpListener listener;
  const Address addr = listener.local_address();
  const int total = rounds + warmup;

  std::thread echo([&listener, total] {
    int served = 0;
    // Phase 1: one persistent connection serving `total` echoes; phase 2:
    // `total` one-shot connections serving one echo each.
    auto persistent = listener.accept_wait(5 * kSecond);
    FINELB_CHECK(persistent.has_value(), "echo: no persistent connection");
    while (served < total) {
      auto frame = persistent->recv_frame_wait(5 * kSecond);
      FINELB_CHECK(frame.has_value(), "echo: persistent recv failed");
      persistent->send_frame(*frame);
      ++served;
    }
    for (int i = 0; i < total; ++i) {
      auto stream = listener.accept_wait(5 * kSecond);
      FINELB_CHECK(stream.has_value(), "echo: no one-shot connection");
      auto frame = stream->recv_frame_wait(5 * kSecond);
      if (frame) stream->send_frame(*frame);
    }
  });

  const std::vector<std::uint8_t> payload = {1, 2, 3, 4};
  TcpPingPongResult result;
  result.rounds = rounds;

  {
    TcpStream stream = TcpStream::connect(addr);
    double total_us = 0.0;
    for (int i = 0; i < total; ++i) {
      const SimTime start = monotonic_now();
      FINELB_CHECK(stream.send_frame(payload), "persistent send failed");
      const auto frame = stream.recv_frame_wait(5 * kSecond);
      FINELB_CHECK(frame.has_value(), "persistent echo lost");
      if (i >= warmup) total_us += to_us(monotonic_now() - start);
    }
    result.persistent_rtt_us = total_us / rounds;
  }
  {
    double total_us = 0.0;
    for (int i = 0; i < total; ++i) {
      const SimTime start = monotonic_now();
      {
        TcpStream stream = TcpStream::connect(addr);
        FINELB_CHECK(stream.send_frame(payload), "one-shot send failed");
        const auto frame = stream.recv_frame_wait(5 * kSecond);
        FINELB_CHECK(frame.has_value(), "one-shot echo lost");
      }  // close inside the timed region: setup + teardown included
      if (i >= warmup) total_us += to_us(monotonic_now() - start);
    }
    result.per_connection_rtt_us = total_us / rounds;
  }
  echo.join();
  return result;
}

}  // namespace finelb::net
