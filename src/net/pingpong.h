// UDP ping-pong round-trip measurement.
//
// The paper reports a 290 us UDP round trip between two idle nodes of its
// 100 Mb/s cluster (§3.2). This utility measures the equivalent number for
// this host's loopback path; the prototype benches print it so measured
// response times can be read against the messaging cost, exactly as the
// paper does.
#pragma once

#include <cstdint>

#include "common/time.h"

namespace finelb::net {

struct PingPongResult {
  double mean_rtt_us = 0.0;
  double min_rtt_us = 0.0;
  double p99_rtt_us = 0.0;
  int rounds = 0;
};

/// Spawns an echo thread on a loopback UDP socket and measures `rounds`
/// request/reply round trips (after `warmup` unmeasured rounds).
PingPongResult measure_udp_rtt(int rounds = 1000, int warmup = 100);

}  // namespace finelb::net
