// UDP ping-pong round-trip measurement.
//
// The paper reports a 290 us UDP round trip between two idle nodes of its
// 100 Mb/s cluster (§3.2). This utility measures the equivalent number for
// this host's loopback path; the prototype benches print it so measured
// response times can be read against the messaging cost, exactly as the
// paper does.
#pragma once

#include <cstdint>
#include <vector>

#include "common/time.h"

namespace finelb::net {

struct PingPongResult {
  double mean_rtt_us = 0.0;
  double min_rtt_us = 0.0;
  double p99_rtt_us = 0.0;
  int rounds = 0;
};

/// One NTP-style clock observation: the remote end's clock was `remote_ns`
/// at some instant between `local_send_ns` and `local_recv_ns` on the local
/// clock. telemetry::ClockSync turns a set of these into a midpoint offset
/// with an RTT/2 + drift error bound.
struct ClockSample {
  std::int64_t local_send_ns = 0;
  std::int64_t remote_ns = 0;
  std::int64_t local_recv_ns = 0;
};

/// Spawns an echo thread on a loopback UDP socket and measures `rounds`
/// request/reply round trips (after `warmup` unmeasured rounds). When
/// `clock_samples` is non-null, the echo end stamps its monotonic clock
/// into each reply and every measured round appends one ClockSample —
/// the pingpong path doubling as the clock-sync sample source.
PingPongResult measure_udp_rtt(int rounds = 1000, int warmup = 100,
                               std::vector<ClockSample>* clock_samples =
                                   nullptr);

}  // namespace finelb::net
