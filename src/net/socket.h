// RAII socket wrappers for the prototype runtime.
//
// The prototype mirrors the paper's implementation choices: load inquiries
// travel over *connected* UDP sockets and are collected asynchronously with
// poll(2) (the modern equivalent of the select(3) call the paper used);
// service requests/responses use unconnected UDP datagrams on a single
// per-node socket. Everything binds to 127.0.0.1 — the single-host stand-in
// for the paper's switched-Ethernet cluster (DESIGN.md §3).
#pragma once

#include <netinet/in.h>

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "fault/fault.h"

namespace finelb::net {

/// Owns a file descriptor; closes on destruction. Move-only.
class FdHandle {
 public:
  FdHandle() = default;
  explicit FdHandle(int fd) : fd_(fd) {}
  ~FdHandle();

  FdHandle(FdHandle&& other) noexcept;
  FdHandle& operator=(FdHandle&& other) noexcept;
  FdHandle(const FdHandle&) = delete;
  FdHandle& operator=(const FdHandle&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  void reset();

 private:
  int fd_ = -1;
};

/// IPv4 endpoint address.
struct Address {
  std::uint32_t host = 0;  // network byte order
  std::uint16_t port = 0;  // host byte order

  static Address loopback(std::uint16_t port);
  sockaddr_in to_sockaddr() const;
  static Address from_sockaddr(const sockaddr_in& sa);
  std::string to_string() const;

  bool operator==(const Address&) const = default;
};

/// Result of a recv_from: payload size and sender.
struct Datagram {
  std::size_t size = 0;
  Address from;
};

/// Preallocated buffer pool for batched datagram I/O (recvmmsg/sendmmsg).
/// One batch is reused across calls: receive loops drain bursts into it
/// without per-datagram syscalls or allocations, and reply paths stage
/// outgoing datagrams in it before a single send_batch. A batch serves one
/// direction at a time — clear() resets it between uses.
class DatagramBatch {
 public:
  explicit DatagramBatch(std::size_t capacity = 32,
                         std::size_t buffer_bytes = 512);
  ~DatagramBatch();
  DatagramBatch(DatagramBatch&&) noexcept;
  DatagramBatch& operator=(DatagramBatch&&) noexcept;

  std::size_t capacity() const;
  /// Datagrams held: received by the last recv_batch, or staged for send.
  std::size_t size() const;
  std::span<const std::uint8_t> payload(std::size_t i) const;
  const Address& address(std::size_t i) const;  // sender (recv) / dest (send)

  /// Stages a datagram for send_batch. Returns false when the batch is
  /// full or the payload exceeds the per-slot buffer.
  bool append(std::span<const std::uint8_t> payload, const Address& dest);

  /// Zero-copy staging: the writable buffer of the next free slot (empty
  /// when the batch is full). Encode directly into it (encode_into), then
  /// commit() the byte count — this skips the append() memcpy entirely.
  std::span<std::uint8_t> stage();
  /// Marks the slot returned by the last stage() as holding `payload_bytes`
  /// bytes destined for `dest`.
  void commit(std::size_t payload_bytes, const Address& dest);

  void clear();

 private:
  friend class UdpSocket;
  struct Impl;  // mmsghdr/iovec/sockaddr arrays (socket.cc)
  std::unique_ptr<Impl> impl_;
};

/// Per-thread reusable scratch buffer of at least `bytes` bytes, for recv
/// staging and in-place message encoding on hot paths. The buffer grows
/// geometrically and is then reused for the life of the thread, so
/// steady-state callers never allocate. Contents are undefined between
/// calls; each call may return the same storage, so a caller must finish
/// with one scratch span before requesting another on the same thread.
std::span<std::uint8_t> thread_scratch(std::size_t bytes);

/// A UDP socket bound to loopback. Non-blocking by default: all prototype
/// I/O goes through poll()-driven event loops and blocking would deadlock a
/// single-threaded client.
class UdpSocket {
 public:
  /// Binds to 127.0.0.1 on `port` (0 picks an ephemeral port).
  explicit UdpSocket(std::uint16_t port = 0);
  ~UdpSocket();  // out-of-line: FaultState is incomplete here

  UdpSocket(UdpSocket&&) noexcept;
  UdpSocket& operator=(UdpSocket&&) noexcept;

  int fd() const { return fd_.get(); }
  /// The locally bound address (with the kernel-assigned port resolved).
  Address local_address() const;

  /// Connects the socket to a fixed peer; send()/recv() then apply to that
  /// peer only. This is how the paper's polling agent holds one socket per
  /// server.
  void connect(const Address& peer);

  /// Sends to the connected peer. Returns false if the kernel buffer is
  /// full (EAGAIN/ENOBUFS — treated as a dropped datagram, like a switch
  /// drop would be). Throws SysError on real failures.
  bool send(std::span<const std::uint8_t> payload);

  /// Sends to an explicit destination (unconnected use).
  bool send_to(std::span<const std::uint8_t> payload, const Address& dest);

  /// Non-blocking receive on a connected socket. Returns the payload size,
  /// or nullopt when no datagram is pending.
  std::optional<std::size_t> recv(std::span<std::uint8_t> buffer);

  /// Non-blocking receive capturing the sender address.
  std::optional<Datagram> recv_from(std::span<std::uint8_t> buffer);

  /// Drains up to batch.capacity() pending datagrams in one recvmmsg call
  /// (one syscall per burst instead of one per datagram). Returns the count
  /// received, 0 when nothing is pending. With a fault injector attached
  /// the batch is filled through the per-datagram fault path instead, so
  /// drop/duplicate/delay decisions still apply to each datagram
  /// individually.
  std::size_t recv_batch(DatagramBatch& batch);

  /// Sends every datagram staged in the batch via one sendmmsg call.
  /// Returns the number the kernel accepted; the remainder were dropped
  /// (full buffer — same semantics as send_to returning false). With a
  /// fault injector attached each datagram goes through the per-datagram
  /// fault path instead.
  std::size_t send_batch(DatagramBatch& batch);

  /// Enlarges kernel buffers; the experiment harness drives thousands of
  /// datagrams per second through loopback and the 212 kB default is easy
  /// to overflow on a busy box.
  void set_buffer_sizes(int bytes);

  /// Attaches a fault injector: every subsequent send*/recv* consults it and
  /// may drop, duplicate, or delay the datagram (fault/fault.h). Delayed
  /// egress datagrams are flushed on later calls to this socket; delayed
  /// ingress datagrams are surfaced by later recv* calls once due, so
  /// effective delay resolution is bounded by how often the owner's event
  /// loop touches the socket. Pass nullptr to detach. Without an injector
  /// the fast path pays a single null check.
  void attach_fault_injector(std::shared_ptr<fault::FaultInjector> injector);

  /// The injector attached to this socket, if any.
  const std::shared_ptr<fault::FaultInjector>& fault_injector() const {
    return injector_;
  }

 private:
  struct FaultState;  // pending delayed datagrams (socket.cc)

  bool raw_send(std::span<const std::uint8_t> payload);
  bool raw_send_to(std::span<const std::uint8_t> payload, const Address& dest);
  void flush_delayed_egress();
  bool faulty_send(std::span<const std::uint8_t> payload, const Address* dest);
  std::optional<Datagram> faulty_recv(std::span<std::uint8_t> buffer,
                                      bool want_sender);

  FdHandle fd_;
  std::shared_ptr<fault::FaultInjector> injector_;
  std::unique_ptr<FaultState> fault_state_;
};

}  // namespace finelb::net
