// Monotonic wall-clock helpers for the prototype runtime.
//
// All prototype timing uses CLOCK_MONOTONIC nanoseconds represented as
// SimTime, so response times measured in the prototype and in the simulator
// share units and statistics code. `sleep_until` does an absolute-deadline
// clock_nanosleep — the substitution for the paper's CPU-spinning service
// microbenchmark (DESIGN.md §3): a worker occupies its server for exactly
// the intended service time without consuming the machine's single CPU.
#pragma once

#include "common/time.h"

namespace finelb::net {

/// Current CLOCK_MONOTONIC time in nanoseconds.
SimTime monotonic_now();

/// Sleeps until the absolute CLOCK_MONOTONIC deadline (TIMER_ABSTIME, so a
/// preemption before the syscall cannot stretch the total duration). Returns
/// immediately if the deadline already passed. Retries on EINTR.
void sleep_until(SimTime deadline);

/// Convenience: sleep_until(monotonic_now() + d) for d > 0.
void sleep_for(SimDuration d);

/// Burns CPU until the deadline (the paper's actual emulation mode).
/// Only sensible on multi-core hosts; exposed for completeness and tests.
void spin_until(SimTime deadline);

}  // namespace finelb::net
