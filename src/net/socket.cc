#include "net/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <mutex>
#include <utility>
#include <vector>

#include "common/check.h"
#include "net/clock.h"

namespace finelb::net {

/// Delayed datagrams held back by the fault injector. Guarded by a mutex
/// because server sockets are shared between a receive loop and worker
/// threads; the state exists only while an injector is attached.
struct UdpSocket::FaultState {
  struct DelayedEgress {
    std::vector<std::uint8_t> payload;
    Address dest;
    bool connected = false;  // true: send(), false: send_to(dest)
    SimTime due = 0;
  };
  struct DelayedIngress {
    std::vector<std::uint8_t> payload;
    Address from;
    SimTime due = 0;
  };
  std::mutex mutex;
  std::vector<DelayedEgress> egress;
  std::vector<DelayedIngress> ingress;
};

FdHandle::~FdHandle() { reset(); }

FdHandle::FdHandle(FdHandle&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)) {}

FdHandle& FdHandle::operator=(FdHandle&& other) noexcept {
  if (this != &other) {
    reset();
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

void FdHandle::reset() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Address Address::loopback(std::uint16_t port) {
  Address a;
  a.host = htonl(INADDR_LOOPBACK);
  a.port = port;
  return a;
}

sockaddr_in Address::to_sockaddr() const {
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_addr.s_addr = host;
  sa.sin_port = htons(port);
  return sa;
}

Address Address::from_sockaddr(const sockaddr_in& sa) {
  Address a;
  a.host = sa.sin_addr.s_addr;
  a.port = ntohs(sa.sin_port);
  return a;
}

std::string Address::to_string() const {
  char buf[INET_ADDRSTRLEN] = {};
  in_addr addr{};
  addr.s_addr = host;
  ::inet_ntop(AF_INET, &addr, buf, sizeof(buf));
  return std::string(buf) + ":" + std::to_string(port);
}

UdpSocket::UdpSocket(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_DGRAM | SOCK_NONBLOCK, 0);
  if (fd < 0) FINELB_THROW_ERRNO("socket(AF_INET, SOCK_DGRAM)");
  fd_ = FdHandle(fd);

  const sockaddr_in sa = Address::loopback(port).to_sockaddr();
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&sa), sizeof(sa)) != 0) {
    FINELB_THROW_ERRNO("bind(udp, 127.0.0.1:" + std::to_string(port) + ")");
  }
}

UdpSocket::~UdpSocket() = default;
UdpSocket::UdpSocket(UdpSocket&&) noexcept = default;
UdpSocket& UdpSocket::operator=(UdpSocket&&) noexcept = default;

Address UdpSocket::local_address() const {
  sockaddr_in sa{};
  socklen_t len = sizeof(sa);
  if (::getsockname(fd(), reinterpret_cast<sockaddr*>(&sa), &len) != 0) {
    FINELB_THROW_ERRNO("getsockname");
  }
  return Address::from_sockaddr(sa);
}

void UdpSocket::connect(const Address& peer) {
  const sockaddr_in sa = peer.to_sockaddr();
  if (::connect(fd(), reinterpret_cast<const sockaddr*>(&sa), sizeof(sa)) !=
      0) {
    FINELB_THROW_ERRNO("connect(udp, " + peer.to_string() + ")");
  }
}

bool UdpSocket::raw_send(std::span<const std::uint8_t> payload) {
  const ssize_t n = ::send(fd(), payload.data(), payload.size(), 0);
  if (n >= 0) return true;
  if (errno == EAGAIN || errno == EWOULDBLOCK || errno == ENOBUFS ||
      errno == ECONNREFUSED) {
    // ECONNREFUSED surfaces asynchronously on connected UDP sockets when a
    // previous datagram hit a closed port; treat like a drop.
    return false;
  }
  FINELB_THROW_ERRNO("send(udp)");
}

bool UdpSocket::raw_send_to(std::span<const std::uint8_t> payload,
                            const Address& dest) {
  const sockaddr_in sa = dest.to_sockaddr();
  const ssize_t n =
      ::sendto(fd(), payload.data(), payload.size(), 0,
               reinterpret_cast<const sockaddr*>(&sa), sizeof(sa));
  if (n >= 0) return true;
  if (errno == EAGAIN || errno == EWOULDBLOCK || errno == ENOBUFS) {
    return false;
  }
  FINELB_THROW_ERRNO("sendto(udp, " + dest.to_string() + ")");
}

bool UdpSocket::send(std::span<const std::uint8_t> payload) {
  if (injector_) return faulty_send(payload, nullptr);
  return raw_send(payload);
}

bool UdpSocket::send_to(std::span<const std::uint8_t> payload,
                        const Address& dest) {
  if (injector_) return faulty_send(payload, &dest);
  return raw_send_to(payload, dest);
}

std::optional<std::size_t> UdpSocket::recv(std::span<std::uint8_t> buffer) {
  if (injector_) {
    const auto dgram = faulty_recv(buffer, /*want_sender=*/false);
    if (!dgram) return std::nullopt;
    return dgram->size;
  }
  const ssize_t n = ::recv(fd(), buffer.data(), buffer.size(), 0);
  if (n >= 0) return static_cast<std::size_t>(n);
  if (errno == EAGAIN || errno == EWOULDBLOCK || errno == ECONNREFUSED) {
    return std::nullopt;
  }
  FINELB_THROW_ERRNO("recv(udp)");
}

std::optional<Datagram> UdpSocket::recv_from(std::span<std::uint8_t> buffer) {
  if (injector_) return faulty_recv(buffer, /*want_sender=*/true);
  sockaddr_in sa{};
  socklen_t len = sizeof(sa);
  const ssize_t n = ::recvfrom(fd(), buffer.data(), buffer.size(), 0,
                               reinterpret_cast<sockaddr*>(&sa), &len);
  if (n >= 0) {
    return Datagram{static_cast<std::size_t>(n), Address::from_sockaddr(sa)};
  }
  if (errno == EAGAIN || errno == EWOULDBLOCK || errno == ECONNREFUSED) {
    return std::nullopt;
  }
  FINELB_THROW_ERRNO("recvfrom(udp)");
}

void UdpSocket::attach_fault_injector(
    std::shared_ptr<fault::FaultInjector> injector) {
  injector_ = std::move(injector);
  if (injector_ && !fault_state_) {
    fault_state_ = std::make_unique<FaultState>();
  }
}

void UdpSocket::flush_delayed_egress() {
  // Collect due datagrams under the lock, send outside it: raw sends can
  // throw and must not leave the mutex held.
  std::vector<FaultState::DelayedEgress> due;
  {
    std::lock_guard<std::mutex> lock(fault_state_->mutex);
    const SimTime now = monotonic_now();
    auto& pending = fault_state_->egress;
    for (std::size_t i = 0; i < pending.size();) {
      if (pending[i].due <= now) {
        due.push_back(std::move(pending[i]));
        pending[i] = std::move(pending.back());
        pending.pop_back();
      } else {
        ++i;
      }
    }
  }
  for (const auto& d : due) {
    if (d.connected) {
      raw_send(d.payload);
    } else {
      raw_send_to(d.payload, d.dest);
    }
  }
}

bool UdpSocket::faulty_send(std::span<const std::uint8_t> payload,
                            const Address* dest) {
  flush_delayed_egress();
  const fault::FaultDecision decision =
      injector_->decide(fault::Direction::kEgress);
  switch (decision.action) {
    case fault::FaultAction::kDrop:
      // Report success: from the sender's view the datagram left; the
      // (simulated) network ate it, exactly like a switch drop.
      return true;
    case fault::FaultAction::kDuplicate: {
      const bool first =
          dest ? raw_send_to(payload, *dest) : raw_send(payload);
      if (dest) {
        raw_send_to(payload, *dest);
      } else {
        raw_send(payload);
      }
      return first;
    }
    case fault::FaultAction::kDelay: {
      FaultState::DelayedEgress delayed;
      delayed.payload.assign(payload.begin(), payload.end());
      delayed.connected = dest == nullptr;
      if (dest) delayed.dest = *dest;
      delayed.due = monotonic_now() + decision.delay;
      std::lock_guard<std::mutex> lock(fault_state_->mutex);
      fault_state_->egress.push_back(std::move(delayed));
      return true;
    }
    case fault::FaultAction::kPass:
      break;
  }
  return dest ? raw_send_to(payload, *dest) : raw_send(payload);
}

std::optional<Datagram> UdpSocket::faulty_recv(std::span<std::uint8_t> buffer,
                                               bool want_sender) {
  flush_delayed_egress();
  // Surface a held-back datagram whose delay has elapsed, if any.
  {
    std::lock_guard<std::mutex> lock(fault_state_->mutex);
    const SimTime now = monotonic_now();
    auto& pending = fault_state_->ingress;
    for (std::size_t i = 0; i < pending.size(); ++i) {
      if (pending[i].due > now) continue;
      const std::size_t n = std::min(pending[i].payload.size(), buffer.size());
      std::memcpy(buffer.data(), pending[i].payload.data(), n);
      Datagram dgram{n, pending[i].from};
      pending[i] = std::move(pending.back());
      pending.pop_back();
      return dgram;
    }
  }
  sockaddr_in sa{};
  socklen_t len = sizeof(sa);
  for (;;) {
    ssize_t n;
    if (want_sender) {
      len = sizeof(sa);
      n = ::recvfrom(fd(), buffer.data(), buffer.size(), 0,
                     reinterpret_cast<sockaddr*>(&sa), &len);
    } else {
      n = ::recv(fd(), buffer.data(), buffer.size(), 0);
    }
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == ECONNREFUSED) {
        return std::nullopt;
      }
      FINELB_THROW_ERRNO(want_sender ? "recvfrom(udp)" : "recv(udp)");
    }
    Datagram dgram{static_cast<std::size_t>(n),
                   want_sender ? Address::from_sockaddr(sa) : Address{}};
    const fault::FaultDecision decision =
        injector_->decide(fault::Direction::kIngress);
    switch (decision.action) {
      case fault::FaultAction::kDrop:
        continue;  // swallowed; try the next queued datagram
      case fault::FaultAction::kDelay: {
        FaultState::DelayedIngress delayed;
        delayed.payload.assign(buffer.data(), buffer.data() + dgram.size);
        delayed.from = dgram.from;
        delayed.due = monotonic_now() + decision.delay;
        std::lock_guard<std::mutex> lock(fault_state_->mutex);
        fault_state_->ingress.push_back(std::move(delayed));
        continue;
      }
      case fault::FaultAction::kDuplicate: {
        // Deliver now and queue an immediately-due copy for the next call.
        FaultState::DelayedIngress copy;
        copy.payload.assign(buffer.data(), buffer.data() + dgram.size);
        copy.from = dgram.from;
        copy.due = 0;
        std::lock_guard<std::mutex> lock(fault_state_->mutex);
        fault_state_->ingress.push_back(std::move(copy));
        return dgram;
      }
      case fault::FaultAction::kPass:
        return dgram;
    }
  }
}

void UdpSocket::set_buffer_sizes(int bytes) {
  if (::setsockopt(fd(), SOL_SOCKET, SO_RCVBUF, &bytes, sizeof(bytes)) != 0) {
    FINELB_THROW_ERRNO("setsockopt(SO_RCVBUF)");
  }
  if (::setsockopt(fd(), SOL_SOCKET, SO_SNDBUF, &bytes, sizeof(bytes)) != 0) {
    FINELB_THROW_ERRNO("setsockopt(SO_SNDBUF)");
  }
}

}  // namespace finelb::net
