#include "net/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <mutex>
#include <utility>
#include <vector>

#include "common/check.h"
#include "net/clock.h"

namespace finelb::net {

/// Delayed datagrams held back by the fault injector. Guarded by a mutex
/// because server sockets are shared between a receive loop and worker
/// threads; the state exists only while an injector is attached.
struct UdpSocket::FaultState {
  struct DelayedEgress {
    std::vector<std::uint8_t> payload;
    Address dest;
    bool connected = false;  // true: send(), false: send_to(dest)
    SimTime due = 0;
  };
  struct DelayedIngress {
    std::vector<std::uint8_t> payload;
    Address from;
    SimTime due = 0;
  };
  std::mutex mutex;
  std::vector<DelayedEgress> egress;
  std::vector<DelayedIngress> ingress;
};

/// Flat storage for a batch: one contiguous payload arena plus parallel
/// mmsghdr/iovec/sockaddr arrays, sized once at construction. recv_batch
/// re-arms the iovecs in place; send_batch copies staged payloads into the
/// same arena, so neither direction allocates after construction.
struct DatagramBatch::Impl {
  std::size_t capacity = 0;
  std::size_t buffer_bytes = 0;
  std::size_t count = 0;
  std::vector<std::uint8_t> arena;        // capacity * buffer_bytes
  std::vector<std::size_t> sizes;         // payload length per slot
  std::vector<Address> addresses;         // sender (recv) or dest (send)
  std::vector<::mmsghdr> headers;
  std::vector<::iovec> iovecs;
  std::vector<sockaddr_in> sockaddrs;

  std::uint8_t* slot(std::size_t i) { return arena.data() + i * buffer_bytes; }

  /// Points every header at its full slot buffer and its sockaddr, ready
  /// for recvmmsg to fill.
  void arm_for_recv() {
    for (std::size_t i = 0; i < capacity; ++i) {
      iovecs[i] = {slot(i), buffer_bytes};
      std::memset(&headers[i], 0, sizeof(headers[i]));
      headers[i].msg_hdr.msg_iov = &iovecs[i];
      headers[i].msg_hdr.msg_iovlen = 1;
      headers[i].msg_hdr.msg_name = &sockaddrs[i];
      headers[i].msg_hdr.msg_namelen = sizeof(sockaddrs[i]);
    }
  }

  /// Points the first `count` headers at the staged payload lengths and
  /// destination sockaddrs, ready for sendmmsg.
  void arm_for_send() {
    for (std::size_t i = 0; i < count; ++i) {
      iovecs[i] = {slot(i), sizes[i]};
      sockaddrs[i] = addresses[i].to_sockaddr();
      std::memset(&headers[i], 0, sizeof(headers[i]));
      headers[i].msg_hdr.msg_iov = &iovecs[i];
      headers[i].msg_hdr.msg_iovlen = 1;
      headers[i].msg_hdr.msg_name = &sockaddrs[i];
      headers[i].msg_hdr.msg_namelen = sizeof(sockaddrs[i]);
    }
  }
};

DatagramBatch::DatagramBatch(std::size_t capacity, std::size_t buffer_bytes)
    : impl_(std::make_unique<Impl>()) {
  FINELB_CHECK(capacity > 0 && buffer_bytes > 0,
               "batch needs capacity and buffer space");
  impl_->capacity = capacity;
  impl_->buffer_bytes = buffer_bytes;
  impl_->arena.resize(capacity * buffer_bytes);
  impl_->sizes.resize(capacity);
  impl_->addresses.resize(capacity);
  impl_->headers.resize(capacity);
  impl_->iovecs.resize(capacity);
  impl_->sockaddrs.resize(capacity);
}

DatagramBatch::~DatagramBatch() = default;
DatagramBatch::DatagramBatch(DatagramBatch&&) noexcept = default;
DatagramBatch& DatagramBatch::operator=(DatagramBatch&&) noexcept = default;

std::size_t DatagramBatch::capacity() const { return impl_->capacity; }
std::size_t DatagramBatch::size() const { return impl_->count; }

std::span<const std::uint8_t> DatagramBatch::payload(std::size_t i) const {
  FINELB_CHECK(i < impl_->count, "batch index out of range");
  return {impl_->slot(i), impl_->sizes[i]};
}

const Address& DatagramBatch::address(std::size_t i) const {
  FINELB_CHECK(i < impl_->count, "batch index out of range");
  return impl_->addresses[i];
}

bool DatagramBatch::append(std::span<const std::uint8_t> payload,
                           const Address& dest) {
  if (impl_->count >= impl_->capacity ||
      payload.size() > impl_->buffer_bytes) {
    return false;
  }
  const std::size_t i = impl_->count++;
  std::memcpy(impl_->slot(i), payload.data(), payload.size());
  impl_->sizes[i] = payload.size();
  impl_->addresses[i] = dest;
  return true;
}

std::span<std::uint8_t> DatagramBatch::stage() {
  if (impl_->count >= impl_->capacity) return {};
  return {impl_->slot(impl_->count), impl_->buffer_bytes};
}

void DatagramBatch::commit(std::size_t payload_bytes, const Address& dest) {
  FINELB_CHECK(impl_->count < impl_->capacity, "commit on a full batch");
  FINELB_CHECK(payload_bytes <= impl_->buffer_bytes,
               "committed payload exceeds slot buffer");
  impl_->sizes[impl_->count] = payload_bytes;
  impl_->addresses[impl_->count] = dest;
  ++impl_->count;
}

void DatagramBatch::clear() { impl_->count = 0; }

std::span<std::uint8_t> thread_scratch(std::size_t bytes) {
  thread_local std::vector<std::uint8_t> scratch;
  if (scratch.size() < bytes) {
    // Geometric growth with a floor keeps the reallocation count O(log n)
    // over a thread's lifetime regardless of request order.
    std::size_t size = std::max<std::size_t>(scratch.capacity() * 2, 4096);
    while (size < bytes) size *= 2;
    scratch.resize(size);
  }
  return {scratch.data(), scratch.size()};
}

FdHandle::~FdHandle() { reset(); }

FdHandle::FdHandle(FdHandle&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)) {}

FdHandle& FdHandle::operator=(FdHandle&& other) noexcept {
  if (this != &other) {
    reset();
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

void FdHandle::reset() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Address Address::loopback(std::uint16_t port) {
  Address a;
  a.host = htonl(INADDR_LOOPBACK);
  a.port = port;
  return a;
}

sockaddr_in Address::to_sockaddr() const {
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_addr.s_addr = host;
  sa.sin_port = htons(port);
  return sa;
}

Address Address::from_sockaddr(const sockaddr_in& sa) {
  Address a;
  a.host = sa.sin_addr.s_addr;
  a.port = ntohs(sa.sin_port);
  return a;
}

std::string Address::to_string() const {
  char buf[INET_ADDRSTRLEN] = {};
  in_addr addr{};
  addr.s_addr = host;
  ::inet_ntop(AF_INET, &addr, buf, sizeof(buf));
  return std::string(buf) + ":" + std::to_string(port);
}

UdpSocket::UdpSocket(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_DGRAM | SOCK_NONBLOCK, 0);
  if (fd < 0) FINELB_THROW_ERRNO("socket(AF_INET, SOCK_DGRAM)");
  fd_ = FdHandle(fd);

  const sockaddr_in sa = Address::loopback(port).to_sockaddr();
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&sa), sizeof(sa)) != 0) {
    FINELB_THROW_ERRNO("bind(udp, 127.0.0.1:" + std::to_string(port) + ")");
  }
}

UdpSocket::~UdpSocket() = default;
UdpSocket::UdpSocket(UdpSocket&&) noexcept = default;
UdpSocket& UdpSocket::operator=(UdpSocket&&) noexcept = default;

Address UdpSocket::local_address() const {
  sockaddr_in sa{};
  socklen_t len = sizeof(sa);
  if (::getsockname(fd(), reinterpret_cast<sockaddr*>(&sa), &len) != 0) {
    FINELB_THROW_ERRNO("getsockname");
  }
  return Address::from_sockaddr(sa);
}

void UdpSocket::connect(const Address& peer) {
  const sockaddr_in sa = peer.to_sockaddr();
  if (::connect(fd(), reinterpret_cast<const sockaddr*>(&sa), sizeof(sa)) !=
      0) {
    FINELB_THROW_ERRNO("connect(udp, " + peer.to_string() + ")");
  }
}

bool UdpSocket::raw_send(std::span<const std::uint8_t> payload) {
  const ssize_t n = ::send(fd(), payload.data(), payload.size(), 0);
  if (n >= 0) return true;
  if (errno == EAGAIN || errno == EWOULDBLOCK || errno == ENOBUFS ||
      errno == ECONNREFUSED) {
    // ECONNREFUSED surfaces asynchronously on connected UDP sockets when a
    // previous datagram hit a closed port; treat like a drop.
    return false;
  }
  FINELB_THROW_ERRNO("send(udp)");
}

bool UdpSocket::raw_send_to(std::span<const std::uint8_t> payload,
                            const Address& dest) {
  const sockaddr_in sa = dest.to_sockaddr();
  const ssize_t n =
      ::sendto(fd(), payload.data(), payload.size(), 0,
               reinterpret_cast<const sockaddr*>(&sa), sizeof(sa));
  if (n >= 0) return true;
  if (errno == EAGAIN || errno == EWOULDBLOCK || errno == ENOBUFS) {
    return false;
  }
  FINELB_THROW_ERRNO("sendto(udp, " + dest.to_string() + ")");
}

bool UdpSocket::send(std::span<const std::uint8_t> payload) {
  if (injector_) return faulty_send(payload, nullptr);
  return raw_send(payload);
}

bool UdpSocket::send_to(std::span<const std::uint8_t> payload,
                        const Address& dest) {
  if (injector_) return faulty_send(payload, &dest);
  return raw_send_to(payload, dest);
}

std::optional<std::size_t> UdpSocket::recv(std::span<std::uint8_t> buffer) {
  if (injector_) {
    const auto dgram = faulty_recv(buffer, /*want_sender=*/false);
    if (!dgram) return std::nullopt;
    return dgram->size;
  }
  const ssize_t n = ::recv(fd(), buffer.data(), buffer.size(), 0);
  if (n >= 0) return static_cast<std::size_t>(n);
  if (errno == EAGAIN || errno == EWOULDBLOCK || errno == ECONNREFUSED) {
    return std::nullopt;
  }
  FINELB_THROW_ERRNO("recv(udp)");
}

std::optional<Datagram> UdpSocket::recv_from(std::span<std::uint8_t> buffer) {
  if (injector_) return faulty_recv(buffer, /*want_sender=*/true);
  sockaddr_in sa{};
  socklen_t len = sizeof(sa);
  const ssize_t n = ::recvfrom(fd(), buffer.data(), buffer.size(), 0,
                               reinterpret_cast<sockaddr*>(&sa), &len);
  if (n >= 0) {
    return Datagram{static_cast<std::size_t>(n), Address::from_sockaddr(sa)};
  }
  if (errno == EAGAIN || errno == EWOULDBLOCK || errno == ECONNREFUSED) {
    return std::nullopt;
  }
  FINELB_THROW_ERRNO("recvfrom(udp)");
}

std::size_t UdpSocket::recv_batch(DatagramBatch& batch) {
  DatagramBatch::Impl& b = *batch.impl_;
  b.count = 0;
  if (injector_) {
    // Per-datagram fault path: each datagram must get its own
    // drop/duplicate/delay roll, so the kernel batching is bypassed and
    // the batch is filled through faulty_recv into its own slots.
    while (b.count < b.capacity) {
      const auto dgram = faulty_recv(
          std::span(b.slot(b.count), b.buffer_bytes), /*want_sender=*/true);
      if (!dgram) break;
      b.sizes[b.count] = dgram->size;
      b.addresses[b.count] = dgram->from;
      ++b.count;
    }
    return b.count;
  }
  b.arm_for_recv();
  const int n = ::recvmmsg(fd(), b.headers.data(),
                           static_cast<unsigned>(b.capacity), 0, nullptr);
  if (n < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == ECONNREFUSED) {
      return 0;
    }
    FINELB_THROW_ERRNO("recvmmsg(udp)");
  }
  b.count = static_cast<std::size_t>(n);
  for (std::size_t i = 0; i < b.count; ++i) {
    b.sizes[i] = b.headers[i].msg_len;
    b.addresses[i] = Address::from_sockaddr(b.sockaddrs[i]);
  }
  return b.count;
}

std::size_t UdpSocket::send_batch(DatagramBatch& batch) {
  DatagramBatch::Impl& b = *batch.impl_;
  if (b.count == 0) return 0;
  if (injector_) {
    // Per-datagram fault path, mirroring recv_batch.
    std::size_t sent = 0;
    for (std::size_t i = 0; i < b.count; ++i) {
      if (faulty_send(std::span<const std::uint8_t>(b.slot(i), b.sizes[i]),
                      &b.addresses[i])) {
        ++sent;
      }
    }
    return sent;
  }
  b.arm_for_send();
  const int n = ::sendmmsg(fd(), b.headers.data(),
                           static_cast<unsigned>(b.count), 0);
  if (n < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == ENOBUFS) {
      return 0;  // kernel buffer full: the whole burst counts as dropped
    }
    FINELB_THROW_ERRNO("sendmmsg(udp)");
  }
  return static_cast<std::size_t>(n);
}

void UdpSocket::attach_fault_injector(
    std::shared_ptr<fault::FaultInjector> injector) {
  injector_ = std::move(injector);
  if (injector_ && !fault_state_) {
    fault_state_ = std::make_unique<FaultState>();
  }
}

void UdpSocket::flush_delayed_egress() {
  // Collect due datagrams under the lock, send outside it: raw sends can
  // throw and must not leave the mutex held.
  std::vector<FaultState::DelayedEgress> due;
  {
    std::lock_guard<std::mutex> lock(fault_state_->mutex);
    const SimTime now = monotonic_now();
    auto& pending = fault_state_->egress;
    for (std::size_t i = 0; i < pending.size();) {
      if (pending[i].due <= now) {
        due.push_back(std::move(pending[i]));
        pending[i] = std::move(pending.back());
        pending.pop_back();
      } else {
        ++i;
      }
    }
  }
  for (const auto& d : due) {
    if (d.connected) {
      raw_send(d.payload);
    } else {
      raw_send_to(d.payload, d.dest);
    }
  }
}

bool UdpSocket::faulty_send(std::span<const std::uint8_t> payload,
                            const Address* dest) {
  flush_delayed_egress();
  const fault::FaultDecision decision =
      injector_->decide(fault::Direction::kEgress);
  switch (decision.action) {
    case fault::FaultAction::kDrop:
      // Report success: from the sender's view the datagram left; the
      // (simulated) network ate it, exactly like a switch drop.
      return true;
    case fault::FaultAction::kDuplicate: {
      const bool first =
          dest ? raw_send_to(payload, *dest) : raw_send(payload);
      if (dest) {
        raw_send_to(payload, *dest);
      } else {
        raw_send(payload);
      }
      return first;
    }
    case fault::FaultAction::kDelay: {
      FaultState::DelayedEgress delayed;
      delayed.payload.assign(payload.begin(), payload.end());
      delayed.connected = dest == nullptr;
      if (dest) delayed.dest = *dest;
      delayed.due = monotonic_now() + decision.delay;
      std::lock_guard<std::mutex> lock(fault_state_->mutex);
      fault_state_->egress.push_back(std::move(delayed));
      return true;
    }
    case fault::FaultAction::kPass:
      break;
  }
  return dest ? raw_send_to(payload, *dest) : raw_send(payload);
}

std::optional<Datagram> UdpSocket::faulty_recv(std::span<std::uint8_t> buffer,
                                               bool want_sender) {
  flush_delayed_egress();
  // Surface a held-back datagram whose delay has elapsed, if any.
  {
    std::lock_guard<std::mutex> lock(fault_state_->mutex);
    const SimTime now = monotonic_now();
    auto& pending = fault_state_->ingress;
    for (std::size_t i = 0; i < pending.size(); ++i) {
      if (pending[i].due > now) continue;
      const std::size_t n = std::min(pending[i].payload.size(), buffer.size());
      std::memcpy(buffer.data(), pending[i].payload.data(), n);
      Datagram dgram{n, pending[i].from};
      pending[i] = std::move(pending.back());
      pending.pop_back();
      return dgram;
    }
  }
  sockaddr_in sa{};
  socklen_t len = sizeof(sa);
  for (;;) {
    ssize_t n;
    if (want_sender) {
      len = sizeof(sa);
      n = ::recvfrom(fd(), buffer.data(), buffer.size(), 0,
                     reinterpret_cast<sockaddr*>(&sa), &len);
    } else {
      n = ::recv(fd(), buffer.data(), buffer.size(), 0);
    }
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == ECONNREFUSED) {
        return std::nullopt;
      }
      FINELB_THROW_ERRNO(want_sender ? "recvfrom(udp)" : "recv(udp)");
    }
    Datagram dgram{static_cast<std::size_t>(n),
                   want_sender ? Address::from_sockaddr(sa) : Address{}};
    const fault::FaultDecision decision =
        injector_->decide(fault::Direction::kIngress);
    switch (decision.action) {
      case fault::FaultAction::kDrop:
        continue;  // swallowed; try the next queued datagram
      case fault::FaultAction::kDelay: {
        FaultState::DelayedIngress delayed;
        delayed.payload.assign(buffer.data(), buffer.data() + dgram.size);
        delayed.from = dgram.from;
        delayed.due = monotonic_now() + decision.delay;
        std::lock_guard<std::mutex> lock(fault_state_->mutex);
        fault_state_->ingress.push_back(std::move(delayed));
        continue;
      }
      case fault::FaultAction::kDuplicate: {
        // Deliver now and queue an immediately-due copy for the next call.
        FaultState::DelayedIngress copy;
        copy.payload.assign(buffer.data(), buffer.data() + dgram.size);
        copy.from = dgram.from;
        copy.due = 0;
        std::lock_guard<std::mutex> lock(fault_state_->mutex);
        fault_state_->ingress.push_back(std::move(copy));
        return dgram;
      }
      case fault::FaultAction::kPass:
        return dgram;
    }
  }
}

void UdpSocket::set_buffer_sizes(int bytes) {
  if (::setsockopt(fd(), SOL_SOCKET, SO_RCVBUF, &bytes, sizeof(bytes)) != 0) {
    FINELB_THROW_ERRNO("setsockopt(SO_RCVBUF)");
  }
  if (::setsockopt(fd(), SOL_SOCKET, SO_SNDBUF, &bytes, sizeof(bytes)) != 0) {
    FINELB_THROW_ERRNO("setsockopt(SO_SNDBUF)");
  }
}

}  // namespace finelb::net
