#include "net/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <utility>

#include "common/check.h"

namespace finelb::net {

FdHandle::~FdHandle() { reset(); }

FdHandle::FdHandle(FdHandle&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)) {}

FdHandle& FdHandle::operator=(FdHandle&& other) noexcept {
  if (this != &other) {
    reset();
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

void FdHandle::reset() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Address Address::loopback(std::uint16_t port) {
  Address a;
  a.host = htonl(INADDR_LOOPBACK);
  a.port = port;
  return a;
}

sockaddr_in Address::to_sockaddr() const {
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_addr.s_addr = host;
  sa.sin_port = htons(port);
  return sa;
}

Address Address::from_sockaddr(const sockaddr_in& sa) {
  Address a;
  a.host = sa.sin_addr.s_addr;
  a.port = ntohs(sa.sin_port);
  return a;
}

std::string Address::to_string() const {
  char buf[INET_ADDRSTRLEN] = {};
  in_addr addr{};
  addr.s_addr = host;
  ::inet_ntop(AF_INET, &addr, buf, sizeof(buf));
  return std::string(buf) + ":" + std::to_string(port);
}

UdpSocket::UdpSocket(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_DGRAM | SOCK_NONBLOCK, 0);
  if (fd < 0) FINELB_THROW_ERRNO("socket(AF_INET, SOCK_DGRAM)");
  fd_ = FdHandle(fd);

  const sockaddr_in sa = Address::loopback(port).to_sockaddr();
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&sa), sizeof(sa)) != 0) {
    FINELB_THROW_ERRNO("bind(udp, 127.0.0.1:" + std::to_string(port) + ")");
  }
}

Address UdpSocket::local_address() const {
  sockaddr_in sa{};
  socklen_t len = sizeof(sa);
  if (::getsockname(fd(), reinterpret_cast<sockaddr*>(&sa), &len) != 0) {
    FINELB_THROW_ERRNO("getsockname");
  }
  return Address::from_sockaddr(sa);
}

void UdpSocket::connect(const Address& peer) {
  const sockaddr_in sa = peer.to_sockaddr();
  if (::connect(fd(), reinterpret_cast<const sockaddr*>(&sa), sizeof(sa)) !=
      0) {
    FINELB_THROW_ERRNO("connect(udp, " + peer.to_string() + ")");
  }
}

bool UdpSocket::send(std::span<const std::uint8_t> payload) {
  const ssize_t n = ::send(fd(), payload.data(), payload.size(), 0);
  if (n >= 0) return true;
  if (errno == EAGAIN || errno == EWOULDBLOCK || errno == ENOBUFS ||
      errno == ECONNREFUSED) {
    // ECONNREFUSED surfaces asynchronously on connected UDP sockets when a
    // previous datagram hit a closed port; treat like a drop.
    return false;
  }
  FINELB_THROW_ERRNO("send(udp)");
}

bool UdpSocket::send_to(std::span<const std::uint8_t> payload,
                        const Address& dest) {
  const sockaddr_in sa = dest.to_sockaddr();
  const ssize_t n =
      ::sendto(fd(), payload.data(), payload.size(), 0,
               reinterpret_cast<const sockaddr*>(&sa), sizeof(sa));
  if (n >= 0) return true;
  if (errno == EAGAIN || errno == EWOULDBLOCK || errno == ENOBUFS) {
    return false;
  }
  FINELB_THROW_ERRNO("sendto(udp, " + dest.to_string() + ")");
}

std::optional<std::size_t> UdpSocket::recv(std::span<std::uint8_t> buffer) {
  const ssize_t n = ::recv(fd(), buffer.data(), buffer.size(), 0);
  if (n >= 0) return static_cast<std::size_t>(n);
  if (errno == EAGAIN || errno == EWOULDBLOCK || errno == ECONNREFUSED) {
    return std::nullopt;
  }
  FINELB_THROW_ERRNO("recv(udp)");
}

std::optional<Datagram> UdpSocket::recv_from(std::span<std::uint8_t> buffer) {
  sockaddr_in sa{};
  socklen_t len = sizeof(sa);
  const ssize_t n = ::recvfrom(fd(), buffer.data(), buffer.size(), 0,
                               reinterpret_cast<sockaddr*>(&sa), &len);
  if (n >= 0) {
    return Datagram{static_cast<std::size_t>(n), Address::from_sockaddr(sa)};
  }
  if (errno == EAGAIN || errno == EWOULDBLOCK || errno == ECONNREFUSED) {
    return std::nullopt;
  }
  FINELB_THROW_ERRNO("recvfrom(udp)");
}

void UdpSocket::set_buffer_sizes(int bytes) {
  if (::setsockopt(fd(), SOL_SOCKET, SO_RCVBUF, &bytes, sizeof(bytes)) != 0) {
    FINELB_THROW_ERRNO("setsockopt(SO_RCVBUF)");
  }
  if (::setsockopt(fd(), SOL_SOCKET, SO_SNDBUF, &bytes, sizeof(bytes)) != 0) {
    FINELB_THROW_ERRNO("setsockopt(SO_SNDBUF)");
  }
}

}  // namespace finelb::net
