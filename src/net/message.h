// Prototype wire protocol (paper §3, Figure 5).
//
// Message families:
//   * load inquiry / reply     — the random polling policy's just-in-time
//                                load information pull;
//   * service request/response — the RPC-like service access;
//   * acquire / release        — the centralized load-index manager protocol
//                                used only to emulate IDEAL (paper §4);
//   * publish / snapshot       — the service availability subsystem's
//                                soft-state publish/subscribe channel;
//   * vote / heartbeat / redirect — the replicated directory's control
//                                plane: term-numbered leader election and
//                                lease heartbeats between replicas, plus the
//                                leader-redirect answer a follower returns
//                                to a snapshot request (DESIGN.md §12).
//
// Every message starts with a one-byte type tag followed by little-endian
// fields. Each type offers two codec surfaces with byte-identical wire
// output:
//   * hot path  — encode_into() serializes into a caller buffer (a
//     DatagramBatch slot or a stack array) and try_decode() parses without
//     throwing; neither touches the heap for the fixed-size message types.
//   * compat    — encode() returns a fresh vector and decode() throws
//     InvariantError on malformed input; thin wrappers over the hot path,
//     kept for tests and cold control-plane code.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "net/wire.h"

namespace finelb::net {

enum class MsgType : std::uint8_t {
  kLoadInquiry = 1,
  kLoadReply = 2,
  kServiceRequest = 3,
  kServiceResponse = 4,
  kAcquire = 5,
  kAcquireReply = 6,
  kRelease = 7,
  kPublish = 8,
  kSnapshotRequest = 9,
  kSnapshotReply = 10,
  kLoadAnnounce = 11,
  kSubscribe = 12,
  kStatsInquiry = 13,
  kStatsReply = 14,
  kTraceInquiry = 15,
  kTraceReply = 16,
  kVoteRequest = 17,
  kVoteReply = 18,
  kHeartbeat = 19,
  kHeartbeatAck = 20,
  kRedirect = 21,
  kDecisionInquiry = 22,
  kDecisionReply = 23,
};

/// Peeks at the type tag; throws on empty payloads.
MsgType peek_type(std::span<const std::uint8_t> data);

struct LoadInquiry {
  std::uint64_t seq = 0;
  /// Distributed-tracing context (0 = untraced): the issuing client's
  /// request id, so the server's reply-time TraceRecord is causally
  /// linkable to the client's poll round.
  std::uint64_t trace_id = 0;
  /// Sender's monotonic clock at send time (its own epoch; only meaningful
  /// after telemetry::ClockSync alignment). 0 when untraced.
  std::int64_t origin_ns = 0;

  std::size_t encoded_size() const;
  /// Serializes into `out`; returns bytes written, 0 if `out` is too small
  /// (nothing usable is written in that case). Never allocates or throws.
  std::size_t encode_into(std::span<std::uint8_t> out) const;
  /// Non-throwing decode; returns false on malformed input, leaving `out`
  /// unspecified. Never allocates for fixed-size message types.
  static bool try_decode(std::span<const std::uint8_t> data, LoadInquiry& out);

  std::vector<std::uint8_t> encode() const;
  static LoadInquiry decode(std::span<const std::uint8_t> data);
};

struct LoadReply {
  std::uint64_t seq = 0;
  std::int32_t queue_length = 0;
  /// Echoed from the inquiry (0 = untraced), so a late reply can still be
  /// traced under its owning request after the round is gone.
  std::uint64_t trace_id = 0;
  /// Echoed inquiry origin_ns: lets the receiver compute the poll RTT and
  /// a clock-offset sample without any per-round state.
  std::int64_t origin_ns = 0;
  /// Server's monotonic clock when the reply was built — the t_reply of the
  /// paper's staleness measure, on the server's own clock.
  std::int64_t server_ns = 0;

  std::size_t encoded_size() const;
  std::size_t encode_into(std::span<std::uint8_t> out) const;
  static bool try_decode(std::span<const std::uint8_t> data, LoadReply& out);

  std::vector<std::uint8_t> encode() const;
  static LoadReply decode(std::span<const std::uint8_t> data);
};

struct ServiceRequest {
  std::uint64_t request_id = 0;
  /// Service demand in microseconds (the CPU-time the paper's microbenchmark
  /// would spin for; our workers consume it with deadline sleeps).
  std::uint32_t service_us = 0;
  /// Data partition addressed by the access (Neptune semantics).
  std::uint32_t partition = 0;
  /// Distributed-tracing context (0 = untraced). Sampled requests carry
  /// their request_id here so the server traces under the same key.
  std::uint64_t trace_id = 0;
  /// Client's monotonic clock at dispatch time (0 when untraced).
  std::int64_t origin_ns = 0;

  std::size_t encoded_size() const;
  std::size_t encode_into(std::span<std::uint8_t> out) const;
  static bool try_decode(std::span<const std::uint8_t> data,
                         ServiceRequest& out);

  std::vector<std::uint8_t> encode() const;
  static ServiceRequest decode(std::span<const std::uint8_t> data);
};

struct ServiceResponse {
  std::uint64_t request_id = 0;
  std::int32_t server = 0;
  /// Queue length observed when the request entered the server (diagnostic).
  std::int32_t queue_at_arrival = 0;
  /// Echoed from the request (0 = untraced).
  std::uint64_t trace_id = 0;
  /// Server's monotonic clock when the response was sent (0 when untraced).
  std::int64_t server_ns = 0;

  std::size_t encoded_size() const;
  std::size_t encode_into(std::span<std::uint8_t> out) const;
  static bool try_decode(std::span<const std::uint8_t> data,
                         ServiceResponse& out);

  std::vector<std::uint8_t> encode() const;
  static ServiceResponse decode(std::span<const std::uint8_t> data);
};

struct Acquire {
  std::uint64_t seq = 0;

  std::size_t encoded_size() const;
  std::size_t encode_into(std::span<std::uint8_t> out) const;
  static bool try_decode(std::span<const std::uint8_t> data, Acquire& out);

  std::vector<std::uint8_t> encode() const;
  static Acquire decode(std::span<const std::uint8_t> data);
};

struct AcquireReply {
  std::uint64_t seq = 0;
  std::int32_t server = 0;

  std::size_t encoded_size() const;
  std::size_t encode_into(std::span<std::uint8_t> out) const;
  static bool try_decode(std::span<const std::uint8_t> data,
                         AcquireReply& out);

  std::vector<std::uint8_t> encode() const;
  static AcquireReply decode(std::span<const std::uint8_t> data);
};

struct Release {
  std::int32_t server = 0;

  std::size_t encoded_size() const;
  std::size_t encode_into(std::span<std::uint8_t> out) const;
  static bool try_decode(std::span<const std::uint8_t> data, Release& out);

  std::vector<std::uint8_t> encode() const;
  static Release decode(std::span<const std::uint8_t> data);
};

/// A server's soft-state announcement to the availability channel.
struct Publish {
  std::string service;        // service type, e.g. "image-store"
  std::uint32_t partition = 0;
  std::int32_t server = 0;    // dense experiment-wide server id
  std::uint16_t service_port = 0;
  std::uint16_t load_port = 0;
  std::uint32_t ttl_ms = 0;   // entry expires unless refreshed within ttl

  std::size_t encoded_size() const;
  std::size_t encode_into(std::span<std::uint8_t> out) const;
  /// try_decode assigns into out.service, reusing its capacity across calls.
  static bool try_decode(std::span<const std::uint8_t> data, Publish& out);

  std::vector<std::uint8_t> encode() const;
  static Publish decode(std::span<const std::uint8_t> data);
};

struct SnapshotRequest {
  std::uint64_t seq = 0;
  std::string service;  // empty = all services

  std::size_t encoded_size() const;
  std::size_t encode_into(std::span<std::uint8_t> out) const;
  static bool try_decode(std::span<const std::uint8_t> data,
                         SnapshotRequest& out);

  std::vector<std::uint8_t> encode() const;
  static SnapshotRequest decode(std::span<const std::uint8_t> data);
};

struct SnapshotReply {
  std::uint64_t seq = 0;
  std::vector<Publish> entries;

  std::size_t encoded_size() const;
  std::size_t encode_into(std::span<std::uint8_t> out) const;
  /// Rejects entry counts that cannot fit the remaining bytes before
  /// reserving storage, so a garbage count cannot force a huge allocation.
  static bool try_decode(std::span<const std::uint8_t> data,
                         SnapshotReply& out);

  std::vector<std::uint8_t> encode() const;
  static SnapshotReply decode(std::span<const std::uint8_t> data);
};

/// A server's periodic load announcement on the broadcast channel
/// (prototype extension of the paper's §2.2 broadcast policy).
struct LoadAnnounce {
  std::int32_t server = 0;
  std::int32_t queue_length = 0;

  std::size_t encoded_size() const;
  std::size_t encode_into(std::span<std::uint8_t> out) const;
  static bool try_decode(std::span<const std::uint8_t> data,
                         LoadAnnounce& out);

  std::vector<std::uint8_t> encode() const;
  static LoadAnnounce decode(std::span<const std::uint8_t> data);
};

/// A client's (soft-state) subscription to the broadcast channel.
struct Subscribe {
  std::uint32_t ttl_ms = 0;

  std::size_t encoded_size() const;
  std::size_t encode_into(std::span<std::uint8_t> out) const;
  static bool try_decode(std::span<const std::uint8_t> data, Subscribe& out);

  std::vector<std::uint8_t> encode() const;
  static Subscribe decode(std::span<const std::uint8_t> data);
};

/// Asks a node's load-index UDP server for a telemetry snapshot (the
/// observability pull channel; answered out-of-band from LoadInquiry on the
/// same socket, so scrapers need no extra port).
struct StatsInquiry {
  std::uint64_t seq = 0;

  std::size_t encoded_size() const;
  std::size_t encode_into(std::span<std::uint8_t> out) const;
  static bool try_decode(std::span<const std::uint8_t> data,
                         StatsInquiry& out);

  std::vector<std::uint8_t> encode() const;
  static StatsInquiry decode(std::span<const std::uint8_t> data);
};

/// The snapshot answer: a JSON document (telemetry::to_json). Senders must
/// keep the payload under the str() codec's 64 KiB limit — encode_into
/// returns 0 for larger payloads, as it does for any undersized buffer.
struct StatsReply {
  std::uint64_t seq = 0;
  std::string payload;

  std::size_t encoded_size() const;
  std::size_t encode_into(std::span<std::uint8_t> out) const;
  /// try_decode assigns into out.payload, reusing its capacity across calls.
  static bool try_decode(std::span<const std::uint8_t> data, StatsReply& out);

  std::vector<std::uint8_t> encode() const;
  static StatsReply decode(std::span<const std::uint8_t> data);
};

/// One TraceRecord on the wire (telemetry::TraceRecord without depending on
/// the telemetry library from net): request id, lifecycle point, node id,
/// node-local monotonic timestamp and point-specific detail payload.
struct TraceRecordWire {
  std::uint64_t request_id = 0;
  std::uint8_t point = 0;     // telemetry::TracePoint value
  std::int32_t node = -1;
  std::int64_t at_ns = 0;     // sender's monotonic clock, unaligned
  std::int64_t detail = 0;
};

/// Asks a node's load-index UDP server for a chunk of its trace ring,
/// starting at record `offset` of the node's current snapshot. Clients walk
/// offsets until a reply's records cross its advertised total.
struct TraceInquiry {
  std::uint64_t seq = 0;
  std::uint32_t offset = 0;

  std::size_t encoded_size() const;
  std::size_t encode_into(std::span<std::uint8_t> out) const;
  static bool try_decode(std::span<const std::uint8_t> data,
                         TraceInquiry& out);

  std::vector<std::uint8_t> encode() const;
  static TraceInquiry decode(std::span<const std::uint8_t> data);
};

/// One chunk of a node's trace ring plus a clock probe: `server_ns` is the
/// answering node's monotonic clock at reply-build time, so every
/// inquiry/reply round doubles as a ClockSync sample. Senders chunk under
/// the 64 KiB datagram cap (kTraceReplyMaxRecords records per reply).
struct TraceReply {
  std::uint64_t seq = 0;
  std::int32_t node = -1;       // answering node's id
  std::int64_t server_ns = 0;   // answering node's clock (midpoint probe)
  std::uint32_t total = 0;      // records in the node's current snapshot
  std::uint32_t offset = 0;     // index of records.front() within that total
  std::vector<TraceRecordWire> records;

  std::size_t encoded_size() const;
  std::size_t encode_into(std::span<std::uint8_t> out) const;
  /// Rejects record counts that cannot fit the remaining bytes before
  /// reserving storage, like SnapshotReply.
  static bool try_decode(std::span<const std::uint8_t> data, TraceReply& out);

  std::vector<std::uint8_t> encode() const;
  static TraceReply decode(std::span<const std::uint8_t> data);
};

/// Most polled servers one DecisionRecordWire carries inline — must match
/// core's kDecisionPollMax (static_asserted where both are visible).
constexpr std::size_t kDecisionWirePollMax = 8;

/// One decision audit record on the wire (core::DecisionRecord without
/// depending on the core library from net): access id, decision instant,
/// chosen server, flags, and the polled set with reported loads and ages.
struct DecisionRecordWire {
  std::uint64_t request_id = 0;
  std::int64_t at_ns = 0;       // recorder's monotonic clock, unaligned
  std::int32_t chosen = -1;
  std::uint8_t polled_count = 0;  // <= kDecisionWirePollMax
  std::uint8_t flags = 0;         // bit 0: blind fallback
  std::uint8_t blacklist_filtered = 0;
  struct Polled {
    std::int32_t server = -1;
    std::int32_t queue_length = 0;
    std::int64_t age_ns = 0;
  };
  Polled polled[kDecisionWirePollMax] = {};
};

/// Asks a node for a chunk of its decision ring, starting at record
/// `offset` of the node's current snapshot (walked like TraceInquiry).
struct DecisionInquiry {
  std::uint64_t seq = 0;
  std::uint32_t offset = 0;

  std::size_t encoded_size() const;
  std::size_t encode_into(std::span<std::uint8_t> out) const;
  static bool try_decode(std::span<const std::uint8_t> data,
                         DecisionInquiry& out);

  std::vector<std::uint8_t> encode() const;
  static DecisionInquiry decode(std::span<const std::uint8_t> data);
};

/// One chunk of a node's decision ring. Like TraceReply, `server_ns` is the
/// answering node's monotonic clock at reply-build time (a free ClockSync
/// sample per chunk); senders chunk under the 64 KiB datagram cap
/// (kDecisionReplyMaxRecords records per reply). Records are variable-size
/// on the wire: only `polled_count` polled entries are encoded.
struct DecisionReply {
  std::uint64_t seq = 0;
  std::int32_t node = -1;
  std::int64_t server_ns = 0;
  std::uint32_t total = 0;
  std::uint32_t offset = 0;
  std::vector<DecisionRecordWire> records;

  std::size_t encoded_size() const;
  std::size_t encode_into(std::span<std::uint8_t> out) const;
  /// Rejects record counts that cannot fit the remaining bytes before
  /// reserving storage, and per-record polled counts past the inline cap.
  static bool try_decode(std::span<const std::uint8_t> data,
                         DecisionReply& out);

  std::vector<std::uint8_t> encode() const;
  static DecisionReply decode(std::span<const std::uint8_t> data);
};

/// A candidate's term-stamped vote solicitation (replicated directory
/// control plane). One vote per term per replica, so two leaders can never
/// be elected in the same term.
struct VoteRequest {
  std::uint64_t term = 0;
  std::int32_t candidate = -1;  // soliciting replica's id

  std::size_t encoded_size() const;
  std::size_t encode_into(std::span<std::uint8_t> out) const;
  static bool try_decode(std::span<const std::uint8_t> data, VoteRequest& out);

  std::vector<std::uint8_t> encode() const;
  static VoteRequest decode(std::span<const std::uint8_t> data);
};

struct VoteReply {
  std::uint64_t term = 0;
  std::int32_t voter = -1;
  bool granted = false;

  std::size_t encoded_size() const;
  std::size_t encode_into(std::span<std::uint8_t> out) const;
  static bool try_decode(std::span<const std::uint8_t> data, VoteReply& out);

  std::vector<std::uint8_t> encode() const;
  static VoteReply decode(std::span<const std::uint8_t> data);
};

/// The leader's periodic term-numbered heartbeat. There is no log to ship —
/// directory entries are TTL'd soft state that servers re-publish to every
/// replica — so the heartbeat only asserts leadership and renews the lease.
struct Heartbeat {
  std::uint64_t term = 0;
  std::int32_t leader = -1;

  std::size_t encoded_size() const;
  std::size_t encode_into(std::span<std::uint8_t> out) const;
  static bool try_decode(std::span<const std::uint8_t> data, Heartbeat& out);

  std::vector<std::uint8_t> encode() const;
  static Heartbeat decode(std::span<const std::uint8_t> data);
};

/// A follower's answer to a heartbeat. The leader counts recent acks to
/// decide whether its quorum lease still holds; an ack carrying a larger
/// term tells a deposed leader to step down.
struct HeartbeatAck {
  std::uint64_t term = 0;
  std::int32_t follower = -1;

  std::size_t encoded_size() const;
  std::size_t encode_into(std::span<std::uint8_t> out) const;
  static bool try_decode(std::span<const std::uint8_t> data, HeartbeatAck& out);

  std::vector<std::uint8_t> encode() const;
  static HeartbeatAck decode(std::span<const std::uint8_t> data);
};

/// A non-leader replica's answer to a SnapshotRequest: who (it believes) is
/// leading. leader == -1 / leader_port == 0 means an election is in
/// progress — the client should fail over to another replica and retry.
struct Redirect {
  std::uint64_t seq = 0;  // echoed SnapshotRequest sequence
  std::uint64_t term = 0;
  std::int32_t leader = -1;
  std::uint16_t leader_port = 0;  // leader's data (publish/snapshot) port

  std::size_t encoded_size() const;
  std::size_t encode_into(std::span<std::uint8_t> out) const;
  static bool try_decode(std::span<const std::uint8_t> data, Redirect& out);

  std::vector<std::uint8_t> encode() const;
  static Redirect decode(std::span<const std::uint8_t> data);
};

/// Most records one TraceReply may carry while staying under the UDP
/// datagram limit (29 bytes per record + 29 bytes of header ≈ 58 KiB).
constexpr std::size_t kTraceReplyMaxRecords = 2000;

/// Most records one DecisionReply may carry under the UDP datagram limit:
/// a full record is 23 + 8*16 = 151 bytes, so 400 records ≈ 59 KiB.
constexpr std::size_t kDecisionReplyMaxRecords = 400;

/// Generous stack-buffer size for every fixed-size message type's
/// encode_into (the string-bearing publish/snapshot/trace types need
/// encoded_size()).
constexpr std::size_t kMaxFixedMsgSize = 64;

}  // namespace finelb::net
