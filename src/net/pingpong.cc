#include "net/pingpong.h"

#include <algorithm>
#include <array>
#include <thread>
#include <vector>

#include "common/check.h"
#include "net/clock.h"
#include "net/poller.h"
#include "net/socket.h"

namespace finelb::net {

PingPongResult measure_udp_rtt(int rounds, int warmup) {
  FINELB_CHECK(rounds > 0 && warmup >= 0, "invalid ping-pong parameters");

  UdpSocket echo_socket;
  const Address echo_addr = echo_socket.local_address();
  const int total = rounds + warmup;

  std::thread echo([&echo_socket, total] {
    Poller poller;
    poller.add(echo_socket.fd(), 0);
    std::array<std::uint8_t, 64> buf{};
    int served = 0;
    while (served < total) {
      if (poller.wait(kSecond).empty()) continue;
      while (auto dgram = echo_socket.recv_from(buf)) {
        echo_socket.send_to(std::span(buf.data(), dgram->size), dgram->from);
        ++served;
      }
    }
  });

  UdpSocket client;
  client.connect(echo_addr);
  Poller poller;
  poller.add(client.fd(), 0);

  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(rounds));
  std::array<std::uint8_t, 64> payload{};
  for (int i = 0; i < total; ++i) {
    payload[0] = static_cast<std::uint8_t>(i);
    const SimTime start = monotonic_now();
    FINELB_CHECK(client.send(payload), "ping send failed");
    for (;;) {
      poller.wait(kSecond);
      std::array<std::uint8_t, 64> reply{};
      if (client.recv(reply)) break;
    }
    const double rtt_us = to_us(monotonic_now() - start);
    if (i >= warmup) samples.push_back(rtt_us);
  }
  echo.join();

  std::sort(samples.begin(), samples.end());
  PingPongResult result;
  result.rounds = rounds;
  result.min_rtt_us = samples.front();
  result.p99_rtt_us = samples[static_cast<std::size_t>(
      0.99 * static_cast<double>(samples.size() - 1))];
  double total_us = 0.0;
  for (const double s : samples) total_us += s;
  result.mean_rtt_us = total_us / static_cast<double>(samples.size());
  return result;
}

}  // namespace finelb::net
