#include "net/pingpong.h"

#include <algorithm>
#include <array>
#include <thread>
#include <vector>

#include "common/check.h"
#include "net/clock.h"
#include "net/poller.h"
#include "net/socket.h"

namespace finelb::net {

namespace {

// The echo end stamps its monotonic clock into reply bytes [8, 16) when
// asked (little-endian i64); byte 0 stays the round counter.
constexpr std::size_t kStampOffset = 8;

std::int64_t read_stamp(const std::array<std::uint8_t, 64>& buf) {
  std::uint64_t bits = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    bits |= static_cast<std::uint64_t>(buf[kStampOffset + i]) << (8 * i);
  }
  return static_cast<std::int64_t>(bits);
}

void write_stamp(std::array<std::uint8_t, 64>& buf, std::int64_t value) {
  const auto bits = static_cast<std::uint64_t>(value);
  for (std::size_t i = 0; i < 8; ++i) {
    buf[kStampOffset + i] = static_cast<std::uint8_t>(bits >> (8 * i));
  }
}

}  // namespace

PingPongResult measure_udp_rtt(int rounds, int warmup,
                               std::vector<ClockSample>* clock_samples) {
  FINELB_CHECK(rounds > 0 && warmup >= 0, "invalid ping-pong parameters");

  UdpSocket echo_socket;
  const Address echo_addr = echo_socket.local_address();
  const int total = rounds + warmup;
  const bool stamp = clock_samples != nullptr;

  std::thread echo([&echo_socket, total, stamp] {
    Poller poller;
    poller.add(echo_socket.fd(), 0);
    std::array<std::uint8_t, 64> buf{};
    int served = 0;
    while (served < total) {
      if (poller.wait(kSecond).empty()) continue;
      while (auto dgram = echo_socket.recv_from(buf)) {
        if (stamp) write_stamp(buf, monotonic_now());
        echo_socket.send_to(std::span(buf.data(), dgram->size), dgram->from);
        ++served;
      }
    }
  });

  UdpSocket client;
  client.connect(echo_addr);
  Poller poller;
  poller.add(client.fd(), 0);

  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(rounds));
  if (clock_samples != nullptr) {
    clock_samples->reserve(clock_samples->size() +
                           static_cast<std::size_t>(rounds));
  }
  std::array<std::uint8_t, 64> payload{};
  for (int i = 0; i < total; ++i) {
    payload[0] = static_cast<std::uint8_t>(i);
    const SimTime start = monotonic_now();
    FINELB_CHECK(client.send(payload), "ping send failed");
    std::array<std::uint8_t, 64> reply{};
    for (;;) {
      poller.wait(kSecond);
      if (client.recv(reply)) break;
    }
    const SimTime end = monotonic_now();
    const double rtt_us = to_us(end - start);
    if (i >= warmup) {
      samples.push_back(rtt_us);
      if (clock_samples != nullptr) {
        clock_samples->push_back({start, read_stamp(reply), end});
      }
    }
  }
  echo.join();

  std::sort(samples.begin(), samples.end());
  PingPongResult result;
  result.rounds = rounds;
  result.min_rtt_us = samples.front();
  result.p99_rtt_us = samples[static_cast<std::size_t>(
      0.99 * static_cast<double>(samples.size() - 1))];
  double total_us = 0.0;
  for (const double s : samples) total_us += s;
  result.mean_rtt_us = total_us / static_cast<double>(samples.size());
  return result;
}

}  // namespace finelb::net
