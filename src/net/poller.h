// ppoll(2) wrapper used by the prototype's event-driven nodes.
//
// The paper's polling agent "asynchronously collects the responses using
// select system call"; ppoll(2) is the same mechanism without the FD_SETSIZE
// limit and with nanosecond timeout resolution — the discard optimization's
// 1 ms deadline and the client's sub-millisecond arrival pacing both need
// better than poll(2)'s millisecond granularity. Registration is by fd with
// an opaque user tag, so callers can route readiness back to their own
// structures without a map lookup.
#pragma once

#include <poll.h>

#include <cstdint>
#include <span>
#include <vector>

#include "common/time.h"

namespace finelb::net {

struct Ready {
  int fd = -1;
  std::uint64_t tag = 0;
  bool readable = false;
  bool error = false;
};

class Poller {
 public:
  /// Watches `fd` for readability; `tag` is returned with readiness events.
  void add(int fd, std::uint64_t tag);
  void remove(int fd);
  /// Forgets every registered fd (for pollers reused across rounds).
  void clear();
  std::size_t size() const { return fds_.size(); }

  /// Waits up to `timeout` nanoseconds (negative blocks indefinitely, 0
  /// polls). Returns ready fds; empty on timeout or signal. The span views
  /// an internal buffer reused across calls — consume it before the next
  /// wait() — so steady-state event loops never allocate here.
  std::span<const Ready> wait(SimDuration timeout);

 private:
  std::vector<pollfd> fds_;
  std::vector<std::uint64_t> tags_;
  std::vector<Ready> ready_;  // reused result buffer
};

}  // namespace finelb::net
