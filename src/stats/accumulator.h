// Streaming statistical accumulators.
//
// `Accumulator` keeps count/mean/variance/min/max in O(1) memory using
// Welford's numerically stable recurrence; experiments push millions of
// response-time samples through it. `TimeWeighted` integrates a piecewise-
// constant signal (e.g. queue length) over time, which is how server
// utilization and time-average queue length are measured.
#pragma once

#include <cstdint>
#include <limits>

namespace finelb {

class Accumulator {
 public:
  void add(double x);

  /// Merges another accumulator (parallel composition); exact for
  /// count/mean/variance via Chan's pairwise update.
  void merge(const Accumulator& other);

  std::int64_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  /// Population variance (divides by n). Returns 0 for fewer than 2 samples.
  double variance() const;
  /// Sample variance (divides by n-1). Returns 0 for fewer than 2 samples.
  double sample_variance() const;
  double stddev() const;
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }
  double sum() const { return mean_ * static_cast<double>(count_); }

  /// Coefficient of variation (stddev/mean); 0 when mean is 0.
  double cv() const;

 private:
  std::int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Integrates a piecewise-constant signal over time. `update(t, v)` records
/// that the signal held its previous value on [last_t, t) and is `v` from t
/// onward. Query `time_average(t)` for the average over [start, t).
class TimeWeighted {
 public:
  explicit TimeWeighted(double start_time = 0.0, double initial_value = 0.0)
      : start_(start_time), last_time_(start_time), value_(initial_value) {}

  void update(double time, double new_value);

  /// Average of the signal over [start, now); `now` must be >= the last
  /// update time. Returns the current value if no time has elapsed.
  double time_average(double now) const;

  double current() const { return value_; }

 private:
  double start_;
  double last_time_;
  double value_;
  double integral_ = 0.0;
};

}  // namespace finelb
