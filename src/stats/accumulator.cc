#include "stats/accumulator.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace finelb {

void Accumulator::add(double x) {
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void Accumulator::merge(const Accumulator& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double n1 = static_cast<double>(count_);
  const double n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double Accumulator::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_);
}

double Accumulator::sample_variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double Accumulator::stddev() const { return std::sqrt(sample_variance()); }

double Accumulator::cv() const {
  const double m = mean();
  return m == 0.0 ? 0.0 : stddev() / m;
}

void TimeWeighted::update(double time, double new_value) {
  FINELB_CHECK(time >= last_time_, "TimeWeighted updates must be in order");
  integral_ += value_ * (time - last_time_);
  last_time_ = time;
  value_ = new_value;
}

double TimeWeighted::time_average(double now) const {
  FINELB_CHECK(now >= last_time_, "time_average query precedes last update");
  const double span = now - start_;
  if (span <= 0.0) return value_;
  const double integral = integral_ + value_ * (now - last_time_);
  return integral / span;
}

}  // namespace finelb
