// Shared log-bucketing scheme (HdrHistogram-style: base-2 exponent with
// linear sub-buckets).
//
// Factored out of LatencyHistogram so the telemetry registry's lock-free
// sharded histograms index values with the *same* bucket geometry — sim
// results and scraped prototype snapshots then quantize identically and are
// directly comparable. Bucket 0 is reserved for zero (negatives and NaN
// clamp there); exponents outside [min_exp, max_exp] clamp to the edge
// buckets, so index() is total over all doubles.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>

namespace finelb {

struct LogBucketing {
  int sub_bucket_bits = 5;  // 2^bits linear sub-buckets per power of two
  int min_exp = -40;
  int max_exp = 40;

  constexpr std::int64_t sub_bucket_count() const {
    return std::int64_t{1} << sub_bucket_bits;
  }

  constexpr std::size_t bucket_count() const {
    return static_cast<std::size_t>((max_exp - min_exp + 1) *
                                    sub_bucket_count()) +
           1;
  }

  std::size_t index(double value) const {
    if (!(value > 0.0)) return 0;  // zero, negatives, and NaN all land here
    int exp = 0;
    const double mantissa = std::frexp(value, &exp);  // mantissa in [0.5, 1)
    exp = std::clamp(exp, min_exp, max_exp);
    auto sub = static_cast<std::int64_t>(
        (mantissa - 0.5) * 2.0 * static_cast<double>(sub_bucket_count()));
    sub = std::clamp<std::int64_t>(sub, 0, sub_bucket_count() - 1);
    return static_cast<std::size_t>(
        (static_cast<std::int64_t>(exp - min_exp)) * sub_bucket_count() + sub +
        1);
  }

  double lower(std::size_t index) const {
    if (index == 0) return 0.0;
    const std::int64_t linear = static_cast<std::int64_t>(index) - 1;
    const int exp = static_cast<int>(linear / sub_bucket_count()) + min_exp;
    const std::int64_t sub = linear % sub_bucket_count();
    const double mantissa =
        0.5 +
        0.5 * static_cast<double>(sub) /
            static_cast<double>(sub_bucket_count());
    return std::ldexp(mantissa, exp);
  }

  double upper(std::size_t index) const {
    if (index == 0) return 0.0;
    if (index + 1 >= bucket_count()) return lower(index) * 2.0;
    return lower(index + 1);
  }

  /// Geometric midpoint: the natural representative of a log bucket.
  double representative(std::size_t index) const {
    if (index == 0) return 0.0;
    return std::sqrt(lower(index) * upper(index));
  }
};

}  // namespace finelb
