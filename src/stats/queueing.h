// Closed-form queueing analytics used by the experiments and tests.
//
// The paper's Figure 2 plots the measured load-index inaccuracy of a single
// M/M/1 server against the closed-form upper bound of its Equation (1):
//
//   E|Q(t1) - Q(t2)| = sum_{i,j} (1-rho)^2 rho^{i+j} |i-j| = 2 rho / (1-rho^2)
//
// where Q has the limiting geometric distribution P(Q=k) = (1-rho) rho^k.
// The M/M/1 and M/G/1 response-time formulas are used by property tests to
// validate the simulator against theory.
#pragma once

namespace finelb::queueing {

/// Limiting probability P(Q = k) for an M/M/1 queue at utilization rho.
/// Q counts customers in the *system* (in service + waiting), matching the
/// paper's load index ("total number of active service accesses").
double mm1_queue_length_pmf(double rho, int k);

/// Mean number in system for M/M/1: rho / (1 - rho).
double mm1_mean_queue_length(double rho);

/// Mean response (sojourn) time for M/M/1 with mean service time s:
/// s / (1 - rho).
double mm1_mean_response_time(double rho, double mean_service_time);

/// Equation (1): the delay->infinity upper bound on load-index inaccuracy
/// for a Poisson/Exp server at utilization rho: 2 rho / (1 - rho^2).
double stale_index_inaccuracy_bound(double rho);

/// Mean |X - Y| for X, Y i.i.d. geometric-on-{0,1,...} with success
/// parameter (1-rho) — the brute-force series behind Equation (1), exposed
/// so tests can confirm the closed form. Truncates the series once terms
/// fall below 1e-15.
double stale_index_inaccuracy_series(double rho);

/// Pollaczek-Khinchine mean response time for M/G/1: service mean s,
/// service-time coefficient of variation cv (stddev/mean), utilization rho.
///   W = s + rho * s * (1 + cv^2) / (2 * (1 - rho))
double mg1_mean_response_time(double rho, double mean_service_time,
                              double service_cv);

/// Mean response time for M/M/c (c identical servers sharing one queue) —
/// the unreachable lower envelope for perfect least-loaded balancing with a
/// central queue; used in tests as a sanity floor for IDEAL.
double mmc_mean_response_time(int servers, double per_server_rho,
                              double mean_service_time);

/// Erlang-C probability that an arriving customer waits in an M/M/c queue.
double erlang_c(int servers, double offered_load);

}  // namespace finelb::queueing
