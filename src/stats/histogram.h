// Latency histogram with logarithmic buckets.
//
// Response times in these experiments span ~100 µs to multiple seconds, so a
// log-bucketed histogram (HdrHistogram-style, base-2 exponent with linear
// sub-buckets) gives bounded relative quantile error in O(1) memory per
// sample. Used to report median/p95/p99 alongside the paper's mean response
// time, and to profile poll latencies for the Table 2 discard study.
#pragma once

#include <cstdint>
#include <vector>

#include "stats/log_buckets.h"

namespace finelb {

class LatencyHistogram {
 public:
  /// `sub_bucket_bits` linear sub-buckets per power of two; 5 bits (32
  /// sub-buckets) bounds relative error at ~3%.
  explicit LatencyHistogram(int sub_bucket_bits = 5);

  /// Records a non-negative value (negative values clamp to zero).
  void add(double value);

  void merge(const LatencyHistogram& other);

  std::int64_t count() const { return count_; }

  /// Quantile in [0, 1]; returns the representative (geometric midpoint) of
  /// the bucket containing that rank. Returns 0 for an empty histogram.
  double quantile(double q) const;

  double p50() const { return quantile(0.50); }
  double p95() const { return quantile(0.95); }
  double p99() const { return quantile(0.99); }

  /// Fraction of recorded values strictly greater than `threshold`'s bucket
  /// lower bound — used for "x% of polls slower than 1 ms" profiling.
  double fraction_above(double threshold) const;

  double recorded_min() const { return count_ > 0 ? min_ : 0.0; }
  double recorded_max() const { return count_ > 0 ? max_ : 0.0; }

 private:
  LogBucketing scheme_;
  std::vector<std::int64_t> buckets_;
  std::int64_t count_ = 0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace finelb
