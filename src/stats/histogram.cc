#include "stats/histogram.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace finelb {

LatencyHistogram::LatencyHistogram(int sub_bucket_bits)
    : scheme_{sub_bucket_bits, /*min_exp=*/-40, /*max_exp=*/40} {
  FINELB_CHECK(sub_bucket_bits >= 0 && sub_bucket_bits <= 12,
               "sub_bucket_bits out of range");
  buckets_.assign(scheme_.bucket_count(), 0);
}

void LatencyHistogram::add(double value) {
  const std::size_t index = scheme_.index(value);
  ++buckets_[index];
  const double clamped = value > 0.0 ? value : 0.0;
  if (count_ == 0) {
    min_ = max_ = clamped;
  } else {
    min_ = std::min(min_, clamped);
    max_ = std::max(max_, clamped);
  }
  ++count_;
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  FINELB_CHECK(scheme_.sub_bucket_bits == other.scheme_.sub_bucket_bits,
               "cannot merge histograms with different resolutions");
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  if (other.count_ > 0) {
    if (count_ == 0) {
      min_ = other.min_;
      max_ = other.max_;
    } else {
      min_ = std::min(min_, other.min_);
      max_ = std::max(max_, other.max_);
    }
  }
  count_ += other.count_;
}

double LatencyHistogram::quantile(double q) const {
  FINELB_CHECK(q >= 0.0 && q <= 1.0, "quantile must be in [0, 1]");
  if (count_ == 0) return 0.0;
  const auto rank = static_cast<std::int64_t>(
      std::ceil(q * static_cast<double>(count_)));
  std::int64_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= rank && buckets_[i] > 0) {
      return scheme_.representative(i);
    }
  }
  return max_;
}

double LatencyHistogram::fraction_above(double threshold) const {
  if (count_ == 0) return 0.0;
  const std::size_t cutoff = scheme_.index(threshold);
  std::int64_t above = 0;
  for (std::size_t i = cutoff + 1; i < buckets_.size(); ++i) {
    above += buckets_[i];
  }
  return static_cast<double>(above) / static_cast<double>(count_);
}

}  // namespace finelb
