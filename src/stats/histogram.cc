#include "stats/histogram.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace finelb {
namespace {
// Exponent range covered by the histogram: 2^-40 (~1e-12) .. 2^40 (~1e12).
// Values outside clamp to the edge buckets. Bucket 0 is reserved for zero.
constexpr int kMinExp = -40;
constexpr int kMaxExp = 40;
}  // namespace

LatencyHistogram::LatencyHistogram(int sub_bucket_bits)
    : sub_bucket_bits_(sub_bucket_bits),
      sub_bucket_count_(std::int64_t{1} << sub_bucket_bits) {
  FINELB_CHECK(sub_bucket_bits >= 0 && sub_bucket_bits <= 12,
               "sub_bucket_bits out of range");
  const std::size_t total =
      static_cast<std::size_t>((kMaxExp - kMinExp + 1) * sub_bucket_count_) +
      1;
  buckets_.assign(total, 0);
}

std::size_t LatencyHistogram::bucket_index(double value) const {
  if (!(value > 0.0)) return 0;  // zero, negatives, and NaN all land here
  int exp = 0;
  const double mantissa = std::frexp(value, &exp);  // mantissa in [0.5, 1)
  exp = std::clamp(exp, kMinExp, kMaxExp);
  auto sub = static_cast<std::int64_t>((mantissa - 0.5) * 2.0 *
                                       static_cast<double>(sub_bucket_count_));
  sub = std::clamp<std::int64_t>(sub, 0, sub_bucket_count_ - 1);
  return static_cast<std::size_t>(
      (static_cast<std::int64_t>(exp - kMinExp)) * sub_bucket_count_ + sub +
      1);
}

double LatencyHistogram::bucket_lower(std::size_t index) const {
  if (index == 0) return 0.0;
  const std::int64_t linear = static_cast<std::int64_t>(index) - 1;
  const int exp = static_cast<int>(linear / sub_bucket_count_) + kMinExp;
  const std::int64_t sub = linear % sub_bucket_count_;
  const double mantissa =
      0.5 + 0.5 * static_cast<double>(sub) / static_cast<double>(
                                                 sub_bucket_count_);
  return std::ldexp(mantissa, exp);
}

double LatencyHistogram::bucket_upper(std::size_t index) const {
  if (index == 0) return 0.0;
  if (index + 1 >= buckets_.size()) return bucket_lower(index) * 2.0;
  return bucket_lower(index + 1);
}

void LatencyHistogram::add(double value) {
  const std::size_t index = bucket_index(value);
  ++buckets_[index];
  const double clamped = value > 0.0 ? value : 0.0;
  if (count_ == 0) {
    min_ = max_ = clamped;
  } else {
    min_ = std::min(min_, clamped);
    max_ = std::max(max_, clamped);
  }
  ++count_;
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  FINELB_CHECK(sub_bucket_bits_ == other.sub_bucket_bits_,
               "cannot merge histograms with different resolutions");
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  if (other.count_ > 0) {
    if (count_ == 0) {
      min_ = other.min_;
      max_ = other.max_;
    } else {
      min_ = std::min(min_, other.min_);
      max_ = std::max(max_, other.max_);
    }
  }
  count_ += other.count_;
}

double LatencyHistogram::quantile(double q) const {
  FINELB_CHECK(q >= 0.0 && q <= 1.0, "quantile must be in [0, 1]");
  if (count_ == 0) return 0.0;
  const auto rank = static_cast<std::int64_t>(
      std::ceil(q * static_cast<double>(count_)));
  std::int64_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= rank && buckets_[i] > 0) {
      if (i == 0) return 0.0;
      // Geometric midpoint is the natural representative of a log bucket.
      return std::sqrt(bucket_lower(i) * bucket_upper(i));
    }
  }
  return max_;
}

double LatencyHistogram::fraction_above(double threshold) const {
  if (count_ == 0) return 0.0;
  const std::size_t cutoff = bucket_index(threshold);
  std::int64_t above = 0;
  for (std::size_t i = cutoff + 1; i < buckets_.size(); ++i) {
    above += buckets_[i];
  }
  return static_cast<double>(above) / static_cast<double>(count_);
}

}  // namespace finelb
