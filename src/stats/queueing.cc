#include "stats/queueing.h"

#include <cmath>

#include "common/check.h"

namespace finelb::queueing {

double mm1_queue_length_pmf(double rho, int k) {
  FINELB_CHECK(rho >= 0.0 && rho < 1.0, "rho must be in [0, 1)");
  FINELB_CHECK(k >= 0, "queue length must be non-negative");
  return (1.0 - rho) * std::pow(rho, k);
}

double mm1_mean_queue_length(double rho) {
  FINELB_CHECK(rho >= 0.0 && rho < 1.0, "rho must be in [0, 1)");
  return rho / (1.0 - rho);
}

double mm1_mean_response_time(double rho, double mean_service_time) {
  FINELB_CHECK(rho >= 0.0 && rho < 1.0, "rho must be in [0, 1)");
  FINELB_CHECK(mean_service_time > 0.0, "service time must be positive");
  return mean_service_time / (1.0 - rho);
}

double stale_index_inaccuracy_bound(double rho) {
  FINELB_CHECK(rho >= 0.0 && rho < 1.0, "rho must be in [0, 1)");
  return 2.0 * rho / (1.0 - rho * rho);
}

double stale_index_inaccuracy_series(double rho) {
  FINELB_CHECK(rho >= 0.0 && rho < 1.0, "rho must be in [0, 1)");
  const double p0 = (1.0 - rho) * (1.0 - rho);
  double total = 0.0;
  // Terms decay geometrically; 4096 x 4096 is far beyond the 1e-15 cutoff
  // for any rho of interest, but bound the loops defensively anyway.
  for (int i = 0; i < 4096; ++i) {
    const double pi = std::pow(rho, i);
    if (p0 * pi * i < 1e-15 && i > 0) break;
    for (int j = 0; j < 4096; ++j) {
      const double term = p0 * pi * std::pow(rho, j) * std::abs(i - j);
      total += term;
      if (term < 1e-15 && j > i) break;
    }
  }
  return total;
}

double mg1_mean_response_time(double rho, double mean_service_time,
                              double service_cv) {
  FINELB_CHECK(rho >= 0.0 && rho < 1.0, "rho must be in [0, 1)");
  FINELB_CHECK(mean_service_time > 0.0, "service time must be positive");
  FINELB_CHECK(service_cv >= 0.0, "cv must be non-negative");
  const double cv2 = service_cv * service_cv;
  return mean_service_time +
         rho * mean_service_time * (1.0 + cv2) / (2.0 * (1.0 - rho));
}

double erlang_c(int servers, double offered_load) {
  FINELB_CHECK(servers >= 1, "need at least one server");
  FINELB_CHECK(offered_load >= 0.0 && offered_load < servers,
               "offered load must be < server count for stability");
  // Compute iteratively to avoid factorial overflow: inv_b is the inverse of
  // the Erlang-B blocking probability built up one server at a time.
  double inv_b = 1.0;
  for (int k = 1; k <= servers; ++k) {
    inv_b = 1.0 + inv_b * static_cast<double>(k) / offered_load;
  }
  const double erlang_b = 1.0 / inv_b;
  const double rho = offered_load / servers;
  return erlang_b / (1.0 - rho + rho * erlang_b);
}

double mmc_mean_response_time(int servers, double per_server_rho,
                              double mean_service_time) {
  FINELB_CHECK(per_server_rho >= 0.0 && per_server_rho < 1.0,
               "per-server rho must be in [0, 1)");
  const double offered = per_server_rho * servers;
  const double wait_prob = erlang_c(servers, offered);
  const double mean_wait =
      wait_prob * mean_service_time /
      (static_cast<double>(servers) * (1.0 - per_server_rho));
  return mean_service_time + mean_wait;
}

}  // namespace finelb::queueing
