// Invariant checking and error reporting.
//
// FINELB_CHECK is for programmer errors and violated invariants: it throws
// `finelb::InvariantError` (rather than aborting) so tests can assert on
// misuse and long-running experiment harnesses can fail one experiment
// without killing the process. System-call failures in the networking layer
// use `finelb::SysError`, which captures errno.
#pragma once

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <string>

namespace finelb {

/// Thrown when an internal invariant or precondition is violated.
class InvariantError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Thrown when a system call fails; carries the errno value.
class SysError : public std::runtime_error {
 public:
  SysError(const std::string& what, int err)
      : std::runtime_error(what + ": " + std::strerror(err)), errno_(err) {}

  int sys_errno() const { return errno_; }

 private:
  int errno_;
};

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  throw InvariantError(std::string(file) + ":" + std::to_string(line) +
                       ": check failed: " + expr +
                       (msg.empty() ? "" : " (" + msg + ")"));
}

}  // namespace finelb

#define FINELB_CHECK(expr, ...)                                       \
  do {                                                                \
    if (!(expr)) {                                                    \
      ::finelb::check_failed(#expr, __FILE__, __LINE__,               \
                             ::std::string{__VA_ARGS__});             \
    }                                                                 \
  } while (false)

/// Throws SysError for a failed system call, capturing the current errno.
#define FINELB_THROW_ERRNO(what) throw ::finelb::SysError((what), errno)
