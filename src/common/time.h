// Simulation-time representation shared by every finelb component.
//
// Simulated time is an integer nanosecond count (`SimTime`): integer ticks
// keep event ordering deterministic across platforms and make equality
// comparisons exact, which floating-point seconds would not. Durations share
// the same representation (`SimDuration`). Helpers convert to/from the
// human-scale units the paper uses (milliseconds and microseconds).
#pragma once

#include <chrono>
#include <cstdint>

namespace finelb {

/// Absolute simulated time in nanoseconds since simulation start.
using SimTime = std::int64_t;
/// Simulated duration in nanoseconds (may be negative for differences).
using SimDuration = std::int64_t;

constexpr SimDuration kNanosecond = 1;
constexpr SimDuration kMicrosecond = 1'000;
constexpr SimDuration kMillisecond = 1'000'000;
constexpr SimDuration kSecond = 1'000'000'000;

/// Converts a duration expressed in (possibly fractional) milliseconds.
constexpr SimDuration from_ms(double ms) {
  return static_cast<SimDuration>(ms * static_cast<double>(kMillisecond));
}

/// Converts a duration expressed in (possibly fractional) microseconds.
constexpr SimDuration from_us(double us) {
  return static_cast<SimDuration>(us * static_cast<double>(kMicrosecond));
}

/// Converts a duration expressed in (possibly fractional) seconds.
constexpr SimDuration from_sec(double sec) {
  return static_cast<SimDuration>(sec * static_cast<double>(kSecond));
}

constexpr double to_ms(SimDuration d) {
  return static_cast<double>(d) / static_cast<double>(kMillisecond);
}

constexpr double to_us(SimDuration d) {
  return static_cast<double>(d) / static_cast<double>(kMicrosecond);
}

constexpr double to_sec(SimDuration d) {
  return static_cast<double>(d) / static_cast<double>(kSecond);
}

/// Converts a simulated duration to a wall-clock chrono duration. Used by the
/// prototype runtime, which executes service times in real time.
constexpr std::chrono::nanoseconds to_chrono(SimDuration d) {
  return std::chrono::nanoseconds(d);
}

/// Converts a wall-clock chrono duration into the simulated representation.
template <class Rep, class Period>
constexpr SimDuration from_chrono(std::chrono::duration<Rep, Period> d) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(d).count();
}

}  // namespace finelb
