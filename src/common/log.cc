#include "common/log.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string>

#include "common/flags.h"

namespace finelb {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_write_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

std::optional<LogLevel> try_parse_log_level(std::string_view name) {
  if (name == "debug") return LogLevel::kDebug;
  if (name == "info") return LogLevel::kInfo;
  if (name == "warn") return LogLevel::kWarn;
  if (name == "error") return LogLevel::kError;
  return std::nullopt;
}

LogLevel parse_log_level(std::string_view name) {
  if (const auto level = try_parse_log_level(name)) return *level;
  static std::atomic<bool> warned{false};
  if (!warned.exchange(true)) {
    std::string line = "[WARN] log: unknown log level \"";
    line.append(name.data(), name.size());
    line += "\", defaulting to warn\n";
    std::lock_guard<std::mutex> lock(g_write_mutex);
    std::fputs(line.c_str(), stderr);
  }
  return LogLevel::kWarn;
}

void init_log_level() {
  if (const char* env = std::getenv("FINELB_LOG")) {
    set_log_level(parse_log_level(env));
  }
}

void init_log_level(const Flags& flags) {
  init_log_level();
  const std::string flag = flags.get_string("log-level", "");
  if (!flag.empty()) set_log_level(parse_log_level(flag));
}

namespace detail {

void log_line(LogLevel level, std::string_view component,
              std::string_view message) {
  std::string line;
  line.reserve(component.size() + message.size() + 16);
  line += "[";
  line += level_name(level);
  line += "] ";
  line += component;
  line += ": ";
  line += message;
  line += "\n";
  std::lock_guard<std::mutex> lock(g_write_mutex);
  std::fputs(line.c_str(), stderr);
}

}  // namespace detail
}  // namespace finelb
