// Minimal leveled logger.
//
// The experiment harnesses print their results on stdout; diagnostic logging
// goes to stderr through this logger so result streams stay machine-parsable.
// Thread-safe: each log call formats into a local buffer and issues a single
// write under a mutex, so concurrent cluster-node logs do not interleave.
#pragma once

#include <optional>
#include <sstream>
#include <string_view>

namespace finelb {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Sets the global minimum level; messages below it are dropped. Default is
/// kWarn so library users are not spammed unless they opt in.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Strict parse of "debug"/"info"/"warn"/"error"; nullopt for anything else.
std::optional<LogLevel> try_parse_log_level(std::string_view name);

/// Parses "debug"/"info"/"warn"/"error"; returns kWarn for unknown names.
/// The first unknown name per process prints a one-time stderr warning —
/// a typo in FINELB_LOG or --log-level should not silently change levels.
LogLevel parse_log_level(std::string_view name);

class Flags;

/// Initializes the global log level from the FINELB_LOG environment
/// variable ("debug"/"info"/"warn"/"error"); leaves the default untouched
/// when unset. Call once at the top of main().
void init_log_level();

/// As above, then lets an explicit --log-level=<level> flag override the
/// environment — the convention every bench and example follows.
void init_log_level(const Flags& flags);

namespace detail {
void log_line(LogLevel level, std::string_view component,
              std::string_view message);

class LogStream {
 public:
  LogStream(LogLevel level, std::string_view component)
      : level_(level), component_(component) {}
  ~LogStream() { log_line(level_, component_, stream_.str()); }

  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;

  template <class T>
  LogStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::string_view component_;
  std::ostringstream stream_;
};

}  // namespace detail
}  // namespace finelb

// Usage: FINELB_LOG(kInfo, "cluster") << "node " << id << " up";
#define FINELB_LOG(level, component)                                   \
  if (::finelb::LogLevel::level < ::finelb::log_level()) {             \
  } else                                                               \
    ::finelb::detail::LogStream(::finelb::LogLevel::level, (component))
