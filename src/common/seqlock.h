// Sequence lock for small, frequently-read, single-writer values.
//
// The client's per-server load cache is written by one drain loop and read
// by every request path; a mutex there puts a lock acquisition on the hot
// path of every access, and the readers outnumber the writer by orders of
// magnitude. A seqlock makes reads wait-free in the uncontended case: the
// reader snapshots a sequence counter, copies the value, and retries only
// if a writer ran concurrently (odd counter or counter changed).
//
// TSan-cleanliness: the classic seqlock copies the payload with memcpy,
// which is a data race by the letter of the C++ memory model (the reader
// may read bytes mid-write and discard them, but the read itself is
// undefined behaviour and ThreadSanitizer rightly flags it). This
// implementation stores the payload in a small array of
// std::atomic<std::uint64_t> words instead, so every access is atomic.
// Ordering rides on the individual accesses — release word stores /
// acquire word loads bracketed by the sequence counter — rather than on
// std::atomic_thread_fence, which GCC's TSan does not model
// (-Werror=tsan). That restricts T to trivially-copyable types small
// enough to be worth word-copying — exactly the load-index records the
// prototype caches.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>
#include <type_traits>

namespace finelb {

template <class T>
class Seqlock {
  static_assert(std::is_trivially_copyable_v<T>,
                "Seqlock payloads are copied word-by-word");

 public:
  Seqlock() = default;

  /// Publishes a new value. Single writer only: concurrent store() calls
  /// must be serialised by the caller (the prototype's caches have exactly
  /// one writer thread, so no external lock is needed).
  void store(const T& value) {
    std::uint64_t words[kWords] = {};
    std::memcpy(words, &value, sizeof(T));
    const std::uint32_t seq = seq_.load(std::memory_order_relaxed);
    seq_.store(seq + 1, std::memory_order_relaxed);  // odd: write in progress
    for (std::size_t i = 0; i < kWords; ++i) {
      // Release keeps the odd-marker store above from sinking below any
      // word store (a release store orders all prior writes before it).
      data_[i].store(words[i], std::memory_order_release);
    }
    seq_.store(seq + 2, std::memory_order_release);  // even: write complete
  }

  /// Reads a consistent snapshot, retrying while a write is in flight.
  /// Wait-free when no writer is running; never blocks the writer.
  T load() const {
    std::uint64_t words[kWords];
    std::uint32_t seq0;
    do {
      seq0 = seq_.load(std::memory_order_acquire);
      if (seq0 & 1) continue;  // write in progress, retry
      for (std::size_t i = 0; i < kWords; ++i) {
        // Acquire keeps the recheck below from hoisting above any word
        // load (no later access may be reordered before an acquire load).
        words[i] = data_[i].load(std::memory_order_acquire);
      }
    } while (seq0 & 1 || seq_.load(std::memory_order_relaxed) != seq0);
    T value;
    std::memcpy(&value, words, sizeof(T));
    return value;
  }

 private:
  static constexpr std::size_t kWords =
      (sizeof(T) + sizeof(std::uint64_t) - 1) / sizeof(std::uint64_t);

  std::atomic<std::uint32_t> seq_{0};
  std::atomic<std::uint64_t> data_[kWords] = {};
};

}  // namespace finelb
