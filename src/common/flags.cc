#include "common/flags.h"

#include <charconv>
#include <cstdlib>

#include "common/check.h"

namespace finelb {
namespace {

std::vector<std::string_view> split_commas(std::string_view s) {
  std::vector<std::string_view> out;
  while (!s.empty()) {
    const auto comma = s.find(',');
    out.push_back(s.substr(0, comma));
    if (comma == std::string_view::npos) break;
    s.remove_prefix(comma + 1);
  }
  return out;
}

double parse_double(std::string_view s) {
  // std::from_chars<double> is available in libstdc++ 11+; use strtod via a
  // bounded copy to keep behaviour identical across toolchains.
  const std::string copy(s);
  char* end = nullptr;
  const double value = std::strtod(copy.c_str(), &end);
  FINELB_CHECK(end == copy.c_str() + copy.size() && !copy.empty(),
               "malformed number: " + copy);
  return value;
}

std::int64_t parse_int(std::string_view s) {
  std::int64_t value = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  FINELB_CHECK(ec == std::errc{} && ptr == s.data() + s.size(),
               "malformed integer: " + std::string(s));
  return value;
}

}  // namespace

Flags Flags::parse(int argc, const char* const* argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      const std::string_view body = arg.substr(2);
      const auto eq = body.find('=');
      const std::string_view key =
          eq == std::string_view::npos ? body : body.substr(0, eq);
      FINELB_CHECK(!key.empty(), "empty flag name in " + std::string(arg));
      const std::string_view value =
          eq == std::string_view::npos ? "true" : body.substr(eq + 1);
      flags.values_[std::string(key)] = std::string(value);
    } else {
      flags.positional_.emplace_back(arg);
    }
  }
  return flags;
}

bool Flags::has(std::string_view key) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return false;
  used_[it->first] = true;
  return true;
}

std::string Flags::get_string(std::string_view key,
                              std::string_view def) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return std::string(def);
  used_[it->first] = true;
  return it->second;
}

double Flags::get_double(std::string_view key, double def) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return def;
  used_[it->first] = true;
  return parse_double(it->second);
}

std::int64_t Flags::get_int(std::string_view key, std::int64_t def) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return def;
  used_[it->first] = true;
  return parse_int(it->second);
}

bool Flags::get_bool(std::string_view key, bool def) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return def;
  used_[it->first] = true;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

std::vector<double> Flags::get_double_list(std::string_view key,
                                           std::vector<double> def) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return def;
  used_[it->first] = true;
  std::vector<double> out;
  for (const auto piece : split_commas(it->second)) {
    out.push_back(parse_double(piece));
  }
  return out;
}

std::vector<std::int64_t> Flags::get_int_list(
    std::string_view key, std::vector<std::int64_t> def) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return def;
  used_[it->first] = true;
  std::vector<std::int64_t> out;
  for (const auto piece : split_commas(it->second)) {
    out.push_back(parse_int(piece));
  }
  return out;
}

std::vector<std::string> Flags::unused_keys() const {
  std::vector<std::string> out;
  for (const auto& [key, value] : values_) {
    (void)value;
    if (!used_.count(key)) out.push_back(key);
  }
  return out;
}

}  // namespace finelb
