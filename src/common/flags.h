// Tiny --key=value command-line parser used by the benchmark harnesses and
// examples. Not a general-purpose flags library: no registration, just typed
// lookup with defaults, which keeps each harness's parameter handling local
// and obvious.
#pragma once

#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace finelb {

class Flags {
 public:
  /// Parses argv of the form: prog --a=1 --b=two --flag positional ...
  /// "--flag" without '=' is stored with value "true". Positional arguments
  /// are collected in order. Throws InvariantError on malformed input
  /// (e.g. "--=x").
  static Flags parse(int argc, const char* const* argv);

  bool has(std::string_view key) const;

  std::string get_string(std::string_view key, std::string_view def) const;
  double get_double(std::string_view key, double def) const;
  std::int64_t get_int(std::string_view key, std::int64_t def) const;
  bool get_bool(std::string_view key, bool def) const;

  /// Comma-separated list of doubles, e.g. --loads=0.5,0.6,0.7.
  std::vector<double> get_double_list(std::string_view key,
                                      std::vector<double> def) const;
  /// Comma-separated list of integers, e.g. --poll-sizes=2,3,4,8.
  std::vector<std::int64_t> get_int_list(std::string_view key,
                                         std::vector<std::int64_t> def) const;

  const std::vector<std::string>& positional() const { return positional_; }

  /// Keys that were provided but never read; harnesses call this after
  /// parsing their parameters to reject typos like --pol-size.
  std::vector<std::string> unused_keys() const;

 private:
  std::map<std::string, std::string, std::less<>> values_;
  mutable std::map<std::string, bool, std::less<>> used_;
  std::vector<std::string> positional_;
};

}  // namespace finelb
