// Deterministic pseudo-random number generation.
//
// finelb implements its own engine (xoshiro256**, seeded through SplitMix64)
// instead of relying on std:: engines so that every experiment is bit-exact
// reproducible across standard-library implementations. The engine satisfies
// the C++ UniformRandomBitGenerator concept, so it can also feed std::
// distributions where convenient; the samplers the experiments depend on
// (uniform, exponential, normal, lognormal) are implemented here with fixed
// algorithms for the same reproducibility reason.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace finelb {

/// xoshiro256** 1.0 by Blackman & Vigna (public domain reference algorithm),
/// reimplemented here. Period 2^256-1; passes BigCrush; fast enough that RNG
/// never shows up in simulation profiles.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from a single 64-bit seed via SplitMix64,
  /// as recommended by the xoshiro authors (avoids correlated low-entropy
  /// states when users pass small seeds like 0, 1, 2, ...).
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()();

  /// Uniform double in [0, 1) with 53 bits of precision.
  double uniform01();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). Uses Lemire's multiply-shift rejection method
  /// to avoid modulo bias. Requires n > 0.
  std::uint64_t uniform_int(std::uint64_t n);

  /// Exponential with the given mean (mean = 1/rate). Requires mean > 0.
  double exponential(double mean);

  /// Standard normal via Box-Muller (deterministic two-at-a-time caching).
  double normal(double mu, double sigma);

  /// Lognormal parameterized by the *underlying* normal's mu/sigma.
  double lognormal(double mu, double sigma);

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p);

  /// Derives an independent child generator; used to give each simulation
  /// entity its own stream so entity ordering does not perturb sampling.
  Rng split();

 private:
  std::array<std::uint64_t, 4> state_;
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

/// SplitMix64 step; exposed for tests and for hashing-style uses (e.g. seed
/// derivation for per-node generators in the cluster runtime).
std::uint64_t splitmix64(std::uint64_t& state);

}  // namespace finelb
