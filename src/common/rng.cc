#include "common/rng.h"

#include <cmath>

#include "common/check.h"

namespace finelb {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform01() {
  // Top 53 bits scaled by 2^-53: uniform on [0, 1) with full double density.
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  FINELB_CHECK(lo <= hi, "uniform(lo, hi) requires lo <= hi");
  return lo + (hi - lo) * uniform01();
}

std::uint64_t Rng::uniform_int(std::uint64_t n) {
  FINELB_CHECK(n > 0, "uniform_int(n) requires n > 0");
  // Lemire's unbiased bounded generation.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < n) {
    const std::uint64_t threshold = (0 - n) % n;
    while (lo < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * n;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::exponential(double mean) {
  FINELB_CHECK(mean > 0.0, "exponential mean must be positive");
  // -mean * log(1 - U) with U in [0,1); 1-U is in (0,1] so log is finite.
  return -mean * std::log1p(-uniform01());
}

double Rng::normal(double mu, double sigma) {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return mu + sigma * cached_normal_;
  }
  // Box-Muller; u1 must be strictly positive.
  double u1 = 0.0;
  do {
    u1 = uniform01();
  } while (u1 <= 0.0);
  const double u2 = uniform01();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * 3.14159265358979323846 * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return mu + sigma * r * std::cos(theta);
}

double Rng::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

bool Rng::bernoulli(double p) { return uniform01() < p; }

Rng Rng::split() {
  // A fresh generator seeded from this one's output stream; statistically
  // independent for all practical purposes given xoshiro's state size.
  return Rng((*this)());
}

}  // namespace finelb
