// Replicated directory node: DirectoryTable + ElectionCore behind sockets.
//
// Each HaDirectoryReplica runs one thread multiplexing two UDP sockets:
//   * data socket — the ordinary directory protocol (Publish in,
//     SnapshotReply out), plus Redirect replies when this replica is not
//     the lease-holding leader;
//   * control socket — the term-carrying election traffic (VoteRequest /
//     VoteReply / Heartbeat / HeartbeatAck) feeding the pure ElectionCore.
// Servers publish to *every* replica's data address, so each replica's
// soft-state table converges independently within one refresh interval —
// that is what lets failover skip log replication entirely (DESIGN.md §12).
//
// Both sockets take independent FaultInjector hooks so loss/delay/partition
// schedules can hit elections and the data plane separately.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cluster/directory.h"
#include "cluster/ha/election.h"
#include "common/time.h"
#include "fault/fault.h"
#include "net/message.h"
#include "net/socket.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace finelb::cluster::ha {

struct HaReplicaConfig {
  std::int32_t id = 0;
  std::int32_t cluster_size = 1;
  SimDuration heartbeat_interval = 25 * kMillisecond;
  SimDuration election_timeout_min = 100 * kMillisecond;
  SimDuration election_timeout_max = 200 * kMillisecond;
  SimDuration leader_lease = 75 * kMillisecond;
  std::uint64_t seed = 1;
  /// Trace-ring knobs for the kLeaderElected instants the observatory
  /// scrapes; capacity 0 disables the ring.
  std::size_t trace_capacity = 64;
};

class HaDirectoryReplica {
 public:
  explicit HaDirectoryReplica(const HaReplicaConfig& config);
  ~HaDirectoryReplica();

  HaDirectoryReplica(const HaDirectoryReplica&) = delete;
  HaDirectoryReplica& operator=(const HaDirectoryReplica&) = delete;

  net::Address data_address() const { return data_socket_.local_address(); }
  net::Address control_address() const {
    return control_socket_.local_address();
  }

  /// Wires the full replica set (own entry included, indexed by id). Must
  /// be called before start().
  void connect_peers(std::vector<net::Address> control_addrs,
                     std::vector<net::Address> data_addrs);

  void start();
  void stop();
  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Loss/dup/delay on the election traffic only. Must be called before
  /// start(): the socket's injector slot is read unsynchronized by the
  /// replica thread (checked — attaching to a running replica aborts).
  void attach_control_fault_injector(
      std::shared_ptr<fault::FaultInjector> injector);
  /// Loss/dup/delay on publishes and snapshot requests only. Same
  /// before-start() rule as attach_control_fault_injector.
  void attach_data_fault_injector(
      std::shared_ptr<fault::FaultInjector> injector);

  // Cross-thread views, mirrored from the replica thread after every
  // election event.
  Role role() const { return static_cast<Role>(role_.load()); }
  std::uint64_t term() const { return term_.load(); }
  std::int32_t leader() const { return leader_.load(); }
  std::int32_t id() const { return config_.id; }

  std::int64_t publishes_received() const {
    return table_.publishes_received();
  }

  telemetry::Registry& registry() { return registry_; }
  const telemetry::TraceRing& trace_ring() const { return trace_; }

 private:
  void run_loop();
  void handle_data(std::span<const std::uint8_t> data,
                   const net::Address& from, SimTime now);
  void handle_control(std::span<const std::uint8_t> data, SimTime now);
  void perform_actions(const std::vector<Action>& actions);
  void send_control(std::int32_t to, const PeerMessage& msg);
  /// Publishes the election state to the atomic mirrors and records
  /// counters / trace instants on transitions.
  void mirror_election_state(SimTime now);

  HaReplicaConfig config_;
  net::UdpSocket data_socket_;
  net::UdpSocket control_socket_;
  std::vector<net::Address> control_addrs_;
  std::vector<net::Address> data_addrs_;
  ElectionCore election_;
  DirectoryTable table_;
  std::atomic<bool> running_{false};
  std::thread thread_;

  std::atomic<int> role_{static_cast<int>(Role::kFollower)};
  std::atomic<std::uint64_t> term_{0};
  std::atomic<std::int32_t> leader_{-1};
  Role last_role_ = Role::kFollower;

  telemetry::Registry registry_;
  telemetry::TraceRing trace_;
  telemetry::Counter elections_started_;
  telemetry::Counter leadership_gains_;
  telemetry::Counter heartbeats_sent_;
  telemetry::Counter snapshots_served_;
  telemetry::Counter redirects_sent_;
  telemetry::Gauge term_gauge_;
  telemetry::Gauge is_leader_;
  std::int64_t last_elections_started_ = 0;

  std::vector<Action> actions_scratch_;
};

/// Per-replica FaultInjector factories, invoked with the replica id before
/// its thread starts. Injectors cannot be attached after start() (the
/// socket slot is read unsynchronized by the replica thread), so fault
/// schedules for a whole cluster are supplied here instead.
struct HaClusterFaults {
  std::function<std::shared_ptr<fault::FaultInjector>(std::int32_t)> control;
  std::function<std::shared_ptr<fault::FaultInjector>(std::int32_t)> data;
};

/// Convenience owner of a full replica set sharing derived seeds; used by
/// tests, the experiment harness, and the benches.
class HaDirectoryCluster {
 public:
  HaDirectoryCluster(std::int32_t replicas, const HaReplicaConfig& base,
                     const HaClusterFaults& faults = {});
  ~HaDirectoryCluster();

  HaDirectoryCluster(const HaDirectoryCluster&) = delete;
  HaDirectoryCluster& operator=(const HaDirectoryCluster&) = delete;

  std::int32_t size() const {
    return static_cast<std::int32_t>(replicas_.size());
  }
  HaDirectoryReplica& replica(std::int32_t i) {
    return *replicas_[static_cast<std::size_t>(i)];
  }
  std::vector<net::Address> data_addresses() const;

  /// Index of the current leader as self-reported, or -1 mid-election.
  std::int32_t leader_index() const;
  /// Blocks until some running replica claims leadership; returns its
  /// index, or -1 on timeout.
  std::int32_t wait_for_leader(SimDuration timeout = 5 * kSecond) const;
  /// Stops the current leader's thread (directed kill for failover runs);
  /// returns the killed index, or -1 if there was no leader to kill.
  std::int32_t kill_leader();

 private:
  std::vector<std::unique_ptr<HaDirectoryReplica>> replicas_;
};

}  // namespace finelb::cluster::ha
