// Leader election for the replicated directory (ISSUE 6; paper §3.1's
// "highly available well-known central directory").
//
// A Raft-style FOLLOWER/CANDIDATE/LEADER state machine with terms, single
// vote per term, randomized election timeouts, and a quorum-ack leader
// lease — but deliberately *without* a replicated log. Directory entries
// are TTL'd soft state that every server re-publishes on an interval, so a
// freshly elected leader reconstructs the table from the publish stream
// within one refresh interval instead of shipping log entries; see
// DESIGN.md §12.
//
// ElectionCore is pure and I/O-free: callers feed it PeerMessages and
// clock ticks, and it emits Actions (messages to send). That keeps the
// protocol deterministic under the virtual-time ElectionSim and reusable
// verbatim by the socket-driven HaDirectoryReplica.
#pragma once

#include <cstdint>
#include <set>
#include <vector>

#include "common/rng.h"
#include "common/time.h"

namespace finelb::cluster::ha {

enum class Role { kFollower, kCandidate, kLeader };

const char* role_name(Role role);

struct ElectionConfig {
  std::int32_t id = 0;
  std::int32_t cluster_size = 1;
  /// Leader broadcasts a heartbeat this often.
  SimDuration heartbeat_interval = 25 * kMillisecond;
  /// A follower that hears no heartbeat for a randomized duration in
  /// [min, max] starts an election. Randomization breaks split votes.
  SimDuration election_timeout_min = 100 * kMillisecond;
  SimDuration election_timeout_max = 200 * kMillisecond;
  /// A leader that has not heard acks from a quorum within this window
  /// steps down (it may be partitioned from the majority). Must be below
  /// election_timeout_min so a deposed leader stops serving before its
  /// replacement starts.
  SimDuration leader_lease = 75 * kMillisecond;
  std::uint64_t seed = 1;
};

/// The abstract control-plane message; HaDirectoryReplica maps these to
/// the net::VoteRequest/VoteReply/Heartbeat/HeartbeatAck wire types.
struct PeerMessage {
  enum class Kind { kVoteRequest, kVoteReply, kHeartbeat, kHeartbeatAck };
  Kind kind = Kind::kVoteRequest;
  std::uint64_t term = 0;
  std::int32_t from = -1;
  bool granted = false;  // kVoteReply only
};

/// An outbound message: `to == -1` means broadcast to every peer.
struct Action {
  std::int32_t to = -1;
  PeerMessage msg;
};

class ElectionCore {
 public:
  explicit ElectionCore(const ElectionConfig& config);

  /// Advances timers: election timeout (follower/candidate), heartbeat
  /// broadcast and lease check (leader). Appends outbound messages to
  /// `out`.
  void tick(SimTime now, std::vector<Action>& out);

  /// Processes one inbound message, appending any replies to `out`.
  void receive(const PeerMessage& msg, SimTime now, std::vector<Action>& out);

  Role role() const { return role_; }
  std::uint64_t term() const { return term_; }
  /// Current leader id as known to this node, -1 during elections.
  std::int32_t leader() const { return leader_; }
  std::int32_t id() const { return config_.id; }

  /// True iff this node is leader AND has heard (or carries, via the votes
  /// that elected it) acks from a quorum within leader_lease. Only a
  /// lease-holding leader may answer snapshot requests authoritatively.
  bool has_lease(SimTime now) const;

  std::int64_t elections_started() const { return elections_started_; }
  std::int64_t leadership_gains() const { return leadership_gains_; }

 private:
  std::int32_t quorum() const { return config_.cluster_size / 2 + 1; }
  void arm_election_deadline(SimTime now);
  void step_down(std::uint64_t term, SimTime now);
  void start_election(SimTime now, std::vector<Action>& out);
  void become_leader(SimTime now, std::vector<Action>& out);
  void broadcast_heartbeat(SimTime now, std::vector<Action>& out);

  ElectionConfig config_;
  Rng rng_;
  Role role_ = Role::kFollower;
  std::uint64_t term_ = 0;
  std::int32_t voted_for_ = -1;  // candidate granted our vote in term_
  std::int32_t leader_ = -1;
  std::set<std::int32_t> voters_;  // peers that granted us term_
  std::vector<SimTime> last_ack_;  // per-peer last heartbeat-ack instant
  SimTime election_deadline_ = 0;
  SimTime next_heartbeat_ = 0;
  std::int64_t elections_started_ = 0;
  std::int64_t leadership_gains_ = 0;
};

}  // namespace finelb::cluster::ha
