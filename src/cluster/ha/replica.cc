#include "cluster/ha/replica.h"

#include <algorithm>
#include <array>
#include <utility>

#include "common/check.h"
#include "common/log.h"
#include "net/clock.h"
#include "net/poller.h"

namespace finelb::cluster::ha {

namespace {

ElectionConfig election_config(const HaReplicaConfig& config) {
  ElectionConfig out;
  out.id = config.id;
  out.cluster_size = config.cluster_size;
  out.heartbeat_interval = config.heartbeat_interval;
  out.election_timeout_min = config.election_timeout_min;
  out.election_timeout_max = config.election_timeout_max;
  out.leader_lease = config.leader_lease;
  out.seed = config.seed;
  return out;
}

}  // namespace

HaDirectoryReplica::HaDirectoryReplica(const HaReplicaConfig& config)
    : config_(config),
      election_(election_config(config)),
      trace_(config.trace_capacity, config.trace_capacity > 0 ? 1u : 0u) {
  data_socket_.set_buffer_sizes(1 << 20);
  elections_started_ = registry_.counter("ha.elections_started");
  leadership_gains_ = registry_.counter("ha.leadership_gains");
  heartbeats_sent_ = registry_.counter("ha.heartbeats_sent");
  snapshots_served_ = registry_.counter("ha.snapshots_served");
  redirects_sent_ = registry_.counter("ha.redirects_sent");
  term_gauge_ = registry_.gauge("ha.term");
  is_leader_ = registry_.gauge("ha.is_leader");
}

HaDirectoryReplica::~HaDirectoryReplica() { stop(); }

void HaDirectoryReplica::connect_peers(std::vector<net::Address> control_addrs,
                                       std::vector<net::Address> data_addrs) {
  FINELB_CHECK(static_cast<std::int32_t>(control_addrs.size()) ==
                       config_.cluster_size &&
                   static_cast<std::int32_t>(data_addrs.size()) ==
                       config_.cluster_size,
               "replica peer list size must match cluster_size");
  control_addrs_ = std::move(control_addrs);
  data_addrs_ = std::move(data_addrs);
}

void HaDirectoryReplica::start() {
  FINELB_CHECK(config_.cluster_size == 1 || !control_addrs_.empty(),
               "connect_peers must run before start");
  FINELB_CHECK(!running_.exchange(true), "replica already started");
  thread_ = std::thread([this] { run_loop(); });
}

void HaDirectoryReplica::stop() {
  if (!running_.exchange(false)) return;
  if (thread_.joinable()) thread_.join();
}

void HaDirectoryReplica::attach_control_fault_injector(
    std::shared_ptr<fault::FaultInjector> injector) {
  FINELB_CHECK(!running(), "attach fault injectors before start()");
  control_socket_.attach_fault_injector(std::move(injector));
}

void HaDirectoryReplica::attach_data_fault_injector(
    std::shared_ptr<fault::FaultInjector> injector) {
  FINELB_CHECK(!running(), "attach fault injectors before start()");
  data_socket_.attach_fault_injector(std::move(injector));
}

void HaDirectoryReplica::send_control(std::int32_t to, const PeerMessage& msg) {
  std::array<std::uint8_t, 32> buf{};
  std::size_t n = 0;
  switch (msg.kind) {
    case PeerMessage::Kind::kVoteRequest: {
      net::VoteRequest wire;
      wire.term = msg.term;
      wire.candidate = msg.from;
      n = wire.encode_into(buf);
      break;
    }
    case PeerMessage::Kind::kVoteReply: {
      net::VoteReply wire;
      wire.term = msg.term;
      wire.voter = msg.from;
      wire.granted = msg.granted;
      n = wire.encode_into(buf);
      break;
    }
    case PeerMessage::Kind::kHeartbeat: {
      net::Heartbeat wire;
      wire.term = msg.term;
      wire.leader = msg.from;
      n = wire.encode_into(buf);
      heartbeats_sent_.inc();
      break;
    }
    case PeerMessage::Kind::kHeartbeatAck: {
      net::HeartbeatAck wire;
      wire.term = msg.term;
      wire.follower = msg.from;
      n = wire.encode_into(buf);
      break;
    }
  }
  if (n == 0) return;
  const std::span<const std::uint8_t> payload(buf.data(), n);
  control_socket_.send_to(payload,
                          control_addrs_[static_cast<std::size_t>(to)]);
}

void HaDirectoryReplica::perform_actions(const std::vector<Action>& actions) {
  for (const Action& action : actions) {
    if (action.to != -1) {
      send_control(action.to, action.msg);
      continue;
    }
    for (std::int32_t peer = 0; peer < config_.cluster_size; ++peer) {
      if (peer == config_.id) continue;
      send_control(peer, action.msg);
    }
  }
}

void HaDirectoryReplica::mirror_election_state(SimTime now) {
  const Role role = election_.role();
  role_.store(static_cast<int>(role), std::memory_order_release);
  term_.store(election_.term(), std::memory_order_release);
  leader_.store(election_.leader(), std::memory_order_release);
  term_gauge_.set(static_cast<std::int64_t>(election_.term()));
  is_leader_.set(role == Role::kLeader ? 1 : 0);
  const std::int64_t started = election_.elections_started();
  if (started != last_elections_started_) {
    elections_started_.add(started - last_elections_started_);
    last_elections_started_ = started;
  }
  if (role == Role::kLeader && last_role_ != Role::kLeader) {
    leadership_gains_.inc();
    // The term doubles as the request id so request-keyed trace merges
    // keep each election's instant distinct.
    if (config_.trace_capacity > 0) {
      trace_.record(election_.term(), telemetry::TracePoint::kLeaderElected,
                    config_.id, now,
                    static_cast<std::int64_t>(election_.term()));
    }
    FINELB_LOG(kInfo, "ha") << "replica " << config_.id
                            << " elected leader for term "
                            << election_.term();
  }
  last_role_ = role;
}

void HaDirectoryReplica::handle_data(std::span<const std::uint8_t> data,
                                     const net::Address& from, SimTime now) {
  switch (net::peek_type(data)) {
    case net::MsgType::kPublish: {
      net::Publish publish;
      if (!net::Publish::try_decode(data, publish)) {
        FINELB_LOG(kWarn, "ha") << "dropping malformed publish";
        break;
      }
      table_.apply(std::move(publish), now);
      break;
    }
    case net::MsgType::kSnapshotRequest: {
      net::SnapshotRequest request;
      if (!net::SnapshotRequest::try_decode(data, request)) {
        FINELB_LOG(kWarn, "ha") << "dropping malformed snapshot request";
        break;
      }
      if (election_.role() == Role::kLeader && election_.has_lease(now)) {
        net::SnapshotReply reply;
        reply.seq = request.seq;
        reply.entries = table_.live_entries(request.service, now);
        data_socket_.send_to(reply.encode(), from);
        snapshots_served_.inc();
        break;
      }
      // Not the lease-holding leader: point the client at whoever is (or
      // admit we don't know with leader_port 0 — the client waits out its
      // backoff slice and rotates).
      net::Redirect redirect;
      redirect.seq = request.seq;
      redirect.term = election_.term();
      redirect.leader = election_.leader();
      const std::int32_t leader = election_.leader();
      if (leader >= 0 && leader != config_.id && !data_addrs_.empty()) {
        redirect.leader_port =
            data_addrs_[static_cast<std::size_t>(leader)].port;
      }
      std::array<std::uint8_t, 32> buf{};
      const std::size_t n = redirect.encode_into(buf);
      if (n != 0) {
        data_socket_.send_to(std::span<const std::uint8_t>(buf.data(), n),
                             from);
      }
      redirects_sent_.inc();
      break;
    }
    default:
      FINELB_LOG(kWarn, "ha") << "unexpected message on data socket";
  }
}

void HaDirectoryReplica::handle_control(std::span<const std::uint8_t> data,
                                        SimTime now) {
  PeerMessage msg;
  switch (net::peek_type(data)) {
    case net::MsgType::kVoteRequest: {
      net::VoteRequest wire;
      if (!net::VoteRequest::try_decode(data, wire)) return;
      msg = {PeerMessage::Kind::kVoteRequest, wire.term, wire.candidate};
      break;
    }
    case net::MsgType::kVoteReply: {
      net::VoteReply wire;
      if (!net::VoteReply::try_decode(data, wire)) return;
      msg = {PeerMessage::Kind::kVoteReply, wire.term, wire.voter,
             wire.granted};
      break;
    }
    case net::MsgType::kHeartbeat: {
      net::Heartbeat wire;
      if (!net::Heartbeat::try_decode(data, wire)) return;
      msg = {PeerMessage::Kind::kHeartbeat, wire.term, wire.leader};
      break;
    }
    case net::MsgType::kHeartbeatAck: {
      net::HeartbeatAck wire;
      if (!net::HeartbeatAck::try_decode(data, wire)) return;
      msg = {PeerMessage::Kind::kHeartbeatAck, wire.term, wire.follower};
      break;
    }
    default:
      FINELB_LOG(kWarn, "ha") << "unexpected message on control socket";
      return;
  }
  actions_scratch_.clear();
  election_.receive(msg, now, actions_scratch_);
  perform_actions(actions_scratch_);
}

void HaDirectoryReplica::run_loop() {
  net::Poller poller;
  poller.add(data_socket_.fd(), 0);
  poller.add(control_socket_.fd(), 1);
  std::array<std::uint8_t, 2048> buf{};
  // Poll granularity bounds how late a timer (heartbeat, election
  // deadline) can fire; a quarter of the heartbeat interval keeps jitter
  // well under the randomized timeout spread.
  const SimDuration poll_slice =
      std::max<SimDuration>(kMillisecond, config_.heartbeat_interval / 4);
  // Timer work (tick + state mirror) runs on its own cadence, not per
  // wakeup: a leader serving a hot fetch stream wakes for every request,
  // and paying tick/mirror plus a blind drain of the idle control socket
  // on each one adds measurable latency to the data path.
  SimTime next_timer = 0;
  while (running_.load(std::memory_order_relaxed)) {
    const auto events = poller.wait(poll_slice);
    const SimTime now = net::monotonic_now();
    bool control_ready = events.empty();  // timeout: probe control anyway
    for (const net::Ready& ev : events) {
      if (ev.tag == 0) {
        while (auto dgram = data_socket_.recv_from(buf)) {
          const std::span<const std::uint8_t> data(buf.data(), dgram->size);
          if (data.empty()) continue;
          handle_data(data, dgram->from, now);
        }
      } else {
        control_ready = true;
      }
    }
    if (control_ready) {
      while (auto dgram = control_socket_.recv_from(buf)) {
        const std::span<const std::uint8_t> data(buf.data(), dgram->size);
        if (data.empty()) continue;
        handle_control(data, now);
      }
    }
    if (control_ready || now >= next_timer) {
      actions_scratch_.clear();
      election_.tick(net::monotonic_now(), actions_scratch_);
      perform_actions(actions_scratch_);
      mirror_election_state(net::monotonic_now());
      next_timer = now + poll_slice;
    }
  }
}

// --------------------------------------------------------------------------
// HaDirectoryCluster

HaDirectoryCluster::HaDirectoryCluster(std::int32_t replicas,
                                       const HaReplicaConfig& base,
                                       const HaClusterFaults& faults) {
  FINELB_CHECK(replicas >= 1, "cluster needs >= 1 replica");
  replicas_.reserve(static_cast<std::size_t>(replicas));
  for (std::int32_t i = 0; i < replicas; ++i) {
    HaReplicaConfig config = base;
    config.id = i;
    config.cluster_size = replicas;
    std::uint64_t state =
        base.seed * 0x9E3779B97F4A7C15ull + static_cast<std::uint64_t>(i);
    config.seed = splitmix64(state);
    replicas_.push_back(std::make_unique<HaDirectoryReplica>(config));
  }
  std::vector<net::Address> control_addrs;
  std::vector<net::Address> data_addrs;
  for (const auto& replica : replicas_) {
    control_addrs.push_back(replica->control_address());
    data_addrs.push_back(replica->data_address());
  }
  for (const auto& replica : replicas_) {
    replica->connect_peers(control_addrs, data_addrs);
    if (faults.control) {
      replica->attach_control_fault_injector(faults.control(replica->id()));
    }
    if (faults.data) {
      replica->attach_data_fault_injector(faults.data(replica->id()));
    }
    replica->start();
  }
}

HaDirectoryCluster::~HaDirectoryCluster() {
  for (const auto& replica : replicas_) replica->stop();
}

std::vector<net::Address> HaDirectoryCluster::data_addresses() const {
  std::vector<net::Address> out;
  out.reserve(replicas_.size());
  for (const auto& replica : replicas_) out.push_back(replica->data_address());
  return out;
}

std::int32_t HaDirectoryCluster::leader_index() const {
  std::int32_t found = -1;
  std::uint64_t top_term = 0;
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    const auto& replica = *replicas_[i];
    if (!replica.running() || replica.role() != Role::kLeader) continue;
    if (found == -1 || replica.term() > top_term) {
      found = static_cast<std::int32_t>(i);
      top_term = replica.term();
    }
  }
  return found;
}

std::int32_t HaDirectoryCluster::wait_for_leader(SimDuration timeout) const {
  const SimTime deadline = net::monotonic_now() + timeout;
  for (;;) {
    const std::int32_t leader = leader_index();
    if (leader != -1) return leader;
    if (net::monotonic_now() >= deadline) return -1;
    net::sleep_for(5 * kMillisecond);
  }
}

std::int32_t HaDirectoryCluster::kill_leader() {
  const std::int32_t leader = leader_index();
  if (leader == -1) return -1;
  replicas_[static_cast<std::size_t>(leader)]->stop();
  return leader;
}

}  // namespace finelb::cluster::ha
