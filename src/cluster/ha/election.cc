#include "cluster/ha/election.h"

#include "common/check.h"

namespace finelb::cluster::ha {

const char* role_name(Role role) {
  switch (role) {
    case Role::kFollower:
      return "follower";
    case Role::kCandidate:
      return "candidate";
    case Role::kLeader:
      return "leader";
  }
  return "unknown";
}

ElectionCore::ElectionCore(const ElectionConfig& config)
    : config_(config),
      rng_(config.seed),
      last_ack_(static_cast<std::size_t>(config.cluster_size), 0) {
  FINELB_CHECK(config_.cluster_size >= 1, "election needs >= 1 node");
  FINELB_CHECK(config_.id >= 0 && config_.id < config_.cluster_size,
               "election id out of range");
  FINELB_CHECK(config_.election_timeout_min <= config_.election_timeout_max,
               "election timeout range inverted");
  FINELB_CHECK(config_.leader_lease < config_.election_timeout_min,
               "leader lease must expire before a follower can start a "
               "competing election");
  // First deadline is armed lazily from the first tick so construction does
  // not need a clock; election_deadline_ == 0 marks "not armed yet".
}

void ElectionCore::arm_election_deadline(SimTime now) {
  const auto span = static_cast<double>(config_.election_timeout_max -
                                        config_.election_timeout_min);
  election_deadline_ =
      now + config_.election_timeout_min +
      static_cast<SimDuration>(span > 0 ? rng_.uniform(0.0, span) : 0.0);
}

void ElectionCore::step_down(std::uint64_t term, SimTime now) {
  if (term > term_) {
    term_ = term;
    voted_for_ = -1;
  }
  role_ = Role::kFollower;
  leader_ = -1;
  voters_.clear();
  arm_election_deadline(now);
}

void ElectionCore::start_election(SimTime now, std::vector<Action>& out) {
  ++term_;
  role_ = Role::kCandidate;
  voted_for_ = config_.id;
  leader_ = -1;
  voters_.clear();
  voters_.insert(config_.id);
  ++elections_started_;
  arm_election_deadline(now);
  if (static_cast<std::int32_t>(voters_.size()) >= quorum()) {
    become_leader(now, out);  // single-node cluster: quorum of one
    return;
  }
  out.push_back({-1, {PeerMessage::Kind::kVoteRequest, term_, config_.id}});
}

void ElectionCore::become_leader(SimTime now, std::vector<Action>& out) {
  role_ = Role::kLeader;
  leader_ = config_.id;
  ++leadership_gains_;
  // A vote granted in this term is a promise not to elect anyone else for
  // a full election timeout (the voter re-armed its deadline when it
  // granted), so it counts as an ack at win time — otherwise a brand-new
  // leader would hold no lease until the first heartbeat round-trip.
  for (const std::int32_t voter : voters_) {
    last_ack_[static_cast<std::size_t>(voter)] = now;
  }
  last_ack_[static_cast<std::size_t>(config_.id)] = now;
  broadcast_heartbeat(now, out);
}

void ElectionCore::broadcast_heartbeat(SimTime now, std::vector<Action>& out) {
  out.push_back({-1, {PeerMessage::Kind::kHeartbeat, term_, config_.id}});
  next_heartbeat_ = now + config_.heartbeat_interval;
}

bool ElectionCore::has_lease(SimTime now) const {
  if (role_ != Role::kLeader) return false;
  std::int32_t fresh = 0;
  for (std::size_t i = 0; i < last_ack_.size(); ++i) {
    const SimTime at =
        i == static_cast<std::size_t>(config_.id) ? now : last_ack_[i];
    if (at != 0 && now - at <= config_.leader_lease) ++fresh;
  }
  return fresh >= quorum();
}

void ElectionCore::tick(SimTime now, std::vector<Action>& out) {
  if (election_deadline_ == 0) arm_election_deadline(now);
  if (role_ == Role::kLeader) {
    if (!has_lease(now)) {
      // Lost contact with the majority (partition or mass failure): stop
      // claiming leadership so clients stop getting stale authoritative
      // answers, and let the majority side elect without us.
      step_down(term_, now);
      return;
    }
    if (now >= next_heartbeat_) broadcast_heartbeat(now, out);
    return;
  }
  if (now >= election_deadline_) start_election(now, out);
}

void ElectionCore::receive(const PeerMessage& msg, SimTime now,
                           std::vector<Action>& out) {
  if (msg.term > term_) step_down(msg.term, now);
  switch (msg.kind) {
    case PeerMessage::Kind::kVoteRequest: {
      const bool grant = msg.term == term_ &&
                         (voted_for_ == -1 || voted_for_ == msg.from) &&
                         role_ != Role::kLeader;
      if (grant) {
        voted_for_ = msg.from;
        // Granting is a promise: hold off our own candidacy for a full
        // randomized timeout so the winner has time to heartbeat us.
        arm_election_deadline(now);
      }
      out.push_back(
          {msg.from,
           {PeerMessage::Kind::kVoteReply, term_, config_.id, grant}});
      break;
    }
    case PeerMessage::Kind::kVoteReply: {
      if (role_ != Role::kCandidate || msg.term != term_ || !msg.granted) {
        break;
      }
      voters_.insert(msg.from);
      if (static_cast<std::int32_t>(voters_.size()) >= quorum()) {
        become_leader(now, out);
      }
      break;
    }
    case PeerMessage::Kind::kHeartbeat: {
      if (msg.term < term_) {
        // Stale leader from an old term: ack with our term so it learns
        // it was deposed and steps down via the term rule above.
        out.push_back(
            {msg.from, {PeerMessage::Kind::kHeartbeatAck, term_, config_.id}});
        break;
      }
      // msg.term == term_ (a higher term already stepped us down above).
      // A candidate yields to the node that won this term.
      role_ = Role::kFollower;
      leader_ = msg.from;
      arm_election_deadline(now);
      out.push_back(
          {msg.from, {PeerMessage::Kind::kHeartbeatAck, term_, config_.id}});
      break;
    }
    case PeerMessage::Kind::kHeartbeatAck: {
      if (role_ == Role::kLeader && msg.term == term_ && msg.from >= 0 &&
          msg.from < config_.cluster_size) {
        last_ack_[static_cast<std::size_t>(msg.from)] = now;
      }
      break;
    }
  }
}

}  // namespace finelb::cluster::ha
