// Deterministic virtual-time harness for ElectionCore.
//
// Runs N cores against a seeded lossy/delaying message fabric with optional
// partition windows and node kills, advancing a virtual clock in 1 ms
// ticks. Because ElectionCore is pure and the fabric's randomness is a
// single seeded Rng drained in a fixed order, a (schedule, seed) pair
// replays bit-exactly — the safety property ("at most one leader per
// term") is asserted across every adversarial schedule in the test suite
// rather than sampled from wall-clock races.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <queue>
#include <set>
#include <vector>

#include "cluster/ha/election.h"
#include "common/rng.h"
#include "common/time.h"

namespace finelb::cluster::ha {

struct SimSchedule {
  /// Per-message drop probability, applied independently per receiver.
  double loss = 0.0;
  /// Per-message one-way delay, uniform in [delay_min, delay_max].
  SimDuration delay_min = kMillisecond / 2;
  SimDuration delay_max = 2 * kMillisecond;
  /// During [from, to), messages crossing the island boundary are dropped.
  struct Partition {
    SimTime from = 0;
    SimTime to = 0;
    std::set<std::int32_t> island;
  };
  std::vector<Partition> partitions;
  std::uint64_t seed = 1;
};

class ElectionSim {
 public:
  /// `base` supplies the timing knobs; id/cluster_size/seed are derived
  /// per node (node i seeds from base.seed so runs are reproducible).
  ElectionSim(std::int32_t nodes, const ElectionConfig& base,
              const SimSchedule& schedule);

  /// Advances virtual time to `until` in 1 ms ticks.
  void run_until(SimTime until);

  void kill(std::int32_t id);
  /// Restarts a killed node with fresh volatile state (term 0); it learns
  /// the current term from the first heartbeat it hears — this models the
  /// soft-state design, which persists nothing across restarts.
  void restart(std::int32_t id);

  SimTime now() const { return now_; }
  bool alive(std::int32_t id) const {
    return alive_[static_cast<std::size_t>(id)];
  }
  ElectionCore& core(std::int32_t id) {
    return *cores_[static_cast<std::size_t>(id)];
  }

  /// Id of the unique alive leader at the highest term, or -1 if no alive
  /// node currently claims leadership at that term.
  std::int32_t leader() const;

  /// Every node observed in the leader role, keyed by term. Safety demands
  /// each term's set has at most one element.
  const std::map<std::uint64_t, std::set<std::int32_t>>& leaders_per_term()
      const {
    return leaders_per_term_;
  }
  bool safety_held() const;

 private:
  struct InFlight {
    SimTime due = 0;
    std::uint64_t seq = 0;  // FIFO tiebreak for equal due times
    std::int32_t to = -1;
    PeerMessage msg;
  };
  struct Later {
    bool operator()(const InFlight& a, const InFlight& b) const {
      return a.due != b.due ? a.due > b.due : a.seq > b.seq;
    }
  };

  bool partitioned(std::int32_t from, std::int32_t to) const;
  void dispatch(std::int32_t from, const std::vector<Action>& actions);
  void record_leaders();

  std::int32_t nodes_;
  ElectionConfig base_;
  SimSchedule schedule_;
  Rng fabric_rng_;
  std::vector<std::unique_ptr<ElectionCore>> cores_;
  std::vector<bool> alive_;
  std::priority_queue<InFlight, std::vector<InFlight>, Later> in_flight_;
  std::uint64_t next_seq_ = 0;
  SimTime now_ = 0;
  std::map<std::uint64_t, std::set<std::int32_t>> leaders_per_term_;
  std::vector<Action> scratch_;
};

}  // namespace finelb::cluster::ha
