#include "cluster/ha/election_sim.h"

#include <algorithm>

#include "common/check.h"

namespace finelb::cluster::ha {

ElectionSim::ElectionSim(std::int32_t nodes, const ElectionConfig& base,
                         const SimSchedule& schedule)
    : nodes_(nodes),
      base_(base),
      schedule_(schedule),
      fabric_rng_(schedule.seed),
      alive_(static_cast<std::size_t>(nodes), true) {
  FINELB_CHECK(nodes_ >= 1, "sim needs >= 1 node");
  cores_.reserve(static_cast<std::size_t>(nodes_));
  for (std::int32_t i = 0; i < nodes_; ++i) {
    ElectionConfig config = base_;
    config.id = i;
    config.cluster_size = nodes_;
    std::uint64_t state = base_.seed + static_cast<std::uint64_t>(i) + 1;
    config.seed = splitmix64(state);
    cores_.push_back(std::make_unique<ElectionCore>(config));
  }
}

bool ElectionSim::partitioned(std::int32_t from, std::int32_t to) const {
  for (const auto& p : schedule_.partitions) {
    if (now_ < p.from || now_ >= p.to) continue;
    if (p.island.count(from) != p.island.count(to)) return true;
  }
  return false;
}

void ElectionSim::dispatch(std::int32_t from,
                           const std::vector<Action>& actions) {
  for (const Action& action : actions) {
    for (std::int32_t to = 0; to < nodes_; ++to) {
      if (to == from) continue;
      if (action.to != -1 && action.to != to) continue;
      // Loss and delay are sampled per (message, receiver) so a broadcast
      // can reach some peers and not others — the interesting regime for
      // split votes. Sampling order is fixed (receiver id ascending), so
      // runs replay exactly.
      if (partitioned(from, to)) continue;
      if (schedule_.loss > 0 && fabric_rng_.bernoulli(schedule_.loss)) {
        continue;
      }
      const auto delay = static_cast<SimDuration>(fabric_rng_.uniform(
          static_cast<double>(schedule_.delay_min),
          static_cast<double>(schedule_.delay_max)));
      in_flight_.push({now_ + delay, next_seq_++, to, action.msg});
    }
  }
}

void ElectionSim::record_leaders() {
  for (std::int32_t i = 0; i < nodes_; ++i) {
    const ElectionCore& core = *cores_[static_cast<std::size_t>(i)];
    if (alive_[static_cast<std::size_t>(i)] &&
        core.role() == Role::kLeader) {
      leaders_per_term_[core.term()].insert(i);
    }
  }
}

void ElectionSim::run_until(SimTime until) {
  while (now_ < until) {
    now_ += kMillisecond;
    // Deliver everything due by this tick, in (due, seq) order.
    while (!in_flight_.empty() && in_flight_.top().due <= now_) {
      const InFlight m = in_flight_.top();
      in_flight_.pop();
      const auto to = static_cast<std::size_t>(m.to);
      if (!alive_[to]) continue;  // dropped on the floor at a dead node
      scratch_.clear();
      cores_[to]->receive(m.msg, now_, scratch_);
      dispatch(m.to, scratch_);
    }
    for (std::int32_t i = 0; i < nodes_; ++i) {
      if (!alive_[static_cast<std::size_t>(i)]) continue;
      scratch_.clear();
      cores_[static_cast<std::size_t>(i)]->tick(now_, scratch_);
      dispatch(i, scratch_);
    }
    record_leaders();
  }
}

void ElectionSim::kill(std::int32_t id) {
  alive_[static_cast<std::size_t>(id)] = false;
}

void ElectionSim::restart(std::int32_t id) {
  const auto i = static_cast<std::size_t>(id);
  FINELB_CHECK(!alive_[i], "restarting a node that is alive");
  ElectionConfig config = base_;
  config.id = id;
  config.cluster_size = nodes_;
  // Re-seed differently from the first incarnation so the restarted node
  // does not replay its old timeout schedule in lockstep.
  std::uint64_t state = base_.seed * 0x9E3779B97F4A7C15ull +
                        static_cast<std::uint64_t>(id) + 1;
  config.seed = splitmix64(state);
  cores_[i] = std::make_unique<ElectionCore>(config);
  alive_[i] = true;
}

std::int32_t ElectionSim::leader() const {
  // Highest term among *claimants* — an isolated candidate may have raced
  // its term far past the working majority's without ever winning.
  std::int32_t found = -1;
  std::uint64_t top_term = 0;
  for (std::int32_t i = 0; i < nodes_; ++i) {
    const ElectionCore& core = *cores_[static_cast<std::size_t>(i)];
    if (!alive_[static_cast<std::size_t>(i)] || core.role() != Role::kLeader) {
      continue;
    }
    if (found == -1 || core.term() > top_term) {
      found = i;
      top_term = core.term();
    } else if (core.term() == top_term) {
      return -1;  // two claimants in one term would be a safety bug
    }
  }
  return found;
}

bool ElectionSim::safety_held() const {
  for (const auto& [term, leaders] : leaders_per_term_) {
    if (leaders.size() > 1) return false;
  }
  return true;
}

}  // namespace finelb::cluster::ha
