// Prototype server node (paper §3.1, Figure 5 right half).
//
// Each server node owns:
//   * a service access point — a UDP socket receiving ServiceRequest
//     datagrams, feeding a FIFO request queue drained by a worker thread
//     pool (default pool size 1, matching the simulator's non-preemptive
//     processing unit);
//   * a load-index server — a second UDP socket answering LoadInquiry
//     datagrams with the node's current queue length;
//   * an optional publisher that announces the node on the service
//     availability channel as refreshed soft state.
//
// The queue length ("total number of active service accesses") increments
// when a request datagram is accepted and decrements after its response is
// sent, so it covers both queued and in-service accesses.
//
// Busy-reply delay model: on the paper's cluster, a server whose CPUs were
// saturated by service work answered UDP load inquiries late (§3.2: 8.1% of
// polls over 1 ms and 5.6% over 2 ms at 90% load, yet a ~2.6 ms *mean*
// polling time — i.e. the slow polls were rare but timeslice-scale slow,
// tens of milliseconds on 2.2-era Linux). Our workers sleep instead of
// spinning (single-CPU host, DESIGN.md §3), so the load-index thread would
// always answer instantly; to preserve the phenomenon the load-index server
// injects a two-part delay whenever the node has active accesses:
//   * with probability busy_slow_prob, a scheduler-stall delay of
//     busy_slow_min + Exp(busy_slow_excess), capped at busy_slow_cap
//     (defaults 5%, 8 ms + Exp(8 ms), cap 40 ms);
//   * otherwise a short Pareto(busy_reply_alpha, busy_reply_xm) network/
//     stack tail capped at busy_reply_cap (defaults 1.3, 80 us, cap 2 ms).
// The defaults land on the paper's measured profile (~8% over 1 ms, ~5%
// over 2 ms, poll-round mean in the low milliseconds). Disable via
// ServerOptions::inject_busy_reply_delay for a clean-network ablation.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/time.h"
#include "core/load_index.h"
#include "fault/fault.h"
#include "net/message.h"
#include "net/socket.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace finelb::cluster {

struct ServerOptions {
  ServerId id = 0;
  /// Worker pool size; 1 mirrors the simulator's single processing unit.
  int worker_threads = 1;
  /// Busy-spin instead of deadline-sleep for service execution (only
  /// sensible when cores >= concurrent servers; see DESIGN.md §3).
  bool spin_service = false;

  bool inject_busy_reply_delay = true;
  // Short tail (network stack / softirq): Pareto(alpha, x_m), capped.
  double busy_reply_alpha = 1.3;
  SimDuration busy_reply_xm = from_us(80);
  SimDuration busy_reply_cap = from_ms(2);
  // Rare scheduler stall: min + Exp(excess), capped.
  double busy_slow_prob = 0.05;
  SimDuration busy_slow_min = from_ms(8);
  SimDuration busy_slow_excess = from_ms(8);
  SimDuration busy_slow_cap = from_ms(40);

  /// Fault injector attached to the service and load-index sockets
  /// (loss/dup/delay per fault/fault.h). Null = no injection.
  std::shared_ptr<fault::FaultInjector> fault;

  /// Lifecycle tracing: every Nth request (by request id) leaves
  /// kServiceStart/kResponse records in the node's trace ring; 0 = off.
  /// Requests and load inquiries carrying a wire `trace_id` were sampled by
  /// the issuing client and are recorded under that id whenever the ring is
  /// live, regardless of this period. The ring is served to scrapers in
  /// chunks via TRACE_INQUIRY on the load socket (telemetry/scrape.h).
  std::uint32_t trace_sample_period = 0;
  std::size_t trace_capacity = 256;

  std::uint64_t seed = 1;
};

struct ServerCounters {
  std::int64_t requests_served = 0;
  std::int64_t inquiries_answered = 0;
  std::int32_t max_queue_length = 0;
  std::int64_t send_failures = 0;
};

class ServerNode {
 public:
  explicit ServerNode(ServerOptions options);
  ~ServerNode();

  ServerNode(const ServerNode&) = delete;
  ServerNode& operator=(const ServerNode&) = delete;

  /// Starts the receive loops and worker pool. Idempotent-hostile: call
  /// exactly once.
  void start();

  /// Stops all threads and closes the queue; joins before returning.
  void stop();

  /// Begins periodic soft-state announcements to the availability channel.
  /// Must be called before start().
  void enable_publishing(const net::Address& directory, std::string service,
                         std::uint32_t partition, SimDuration interval,
                         SimDuration ttl);

  /// Replicated-directory variant: announce to *every* replica each round.
  /// Publishing to all replicas (rather than just the leader) is what lets
  /// directory failover skip log replication — every replica's soft-state
  /// table converges independently within one refresh interval
  /// (DESIGN.md §12). Must be called before start().
  void enable_publishing(std::vector<net::Address> directories,
                         std::string service, std::uint32_t partition,
                         SimDuration interval, SimDuration ttl);

  /// Begins periodic load announcements on a broadcast channel — the
  /// server-side half of the §2.2 broadcast policy (prototype extension;
  /// the paper only simulated it). Intervals are jittered over
  /// [0.5, 1.5] x mean unless `jitter` is false (self-synchronization
  /// ablation). Must be called before start().
  void enable_load_broadcast(const net::Address& channel,
                             SimDuration mean_interval, bool jitter = true);

  ServerId id() const { return options_.id; }
  net::Address service_address() const;
  net::Address load_address() const;

  /// Current load index (active accesses).
  std::int32_t queue_length() const {
    return qlen_.load(std::memory_order_relaxed);
  }

  ServerCounters counters() const;

  /// Telemetry registry (metric naming: DESIGN.md §10). Scraping via
  /// metrics().snapshot() is safe while the node is running.
  const telemetry::Registry& metrics() const { return metrics_; }
  const telemetry::TraceRing& trace() const { return trace_; }

  /// The node's snapshot (+ sampled trace) as JSON — what a STATS_INQUIRY
  /// on the load socket answers with.
  std::string stats_json() const;

 private:
  struct WorkItem {
    net::ServiceRequest request;
    net::Address reply_to;
    std::int32_t queue_at_arrival = 0;
    SimTime enqueued_at = 0;
  };

  void service_recv_loop();
  void load_recv_loop();
  void answer_stats_inquiry(std::uint64_t seq, const net::Address& to);
  void answer_trace_inquiry(const net::TraceInquiry& inquiry,
                            const net::Address& to);
  void publish_loop();
  void broadcast_loop();
  void worker_loop();

  ServerOptions options_;
  net::UdpSocket service_socket_;
  net::UdpSocket load_socket_;

  bool started_ = false;  // single-shot lifecycle: start() once, ever
  std::atomic<bool> running_{false};
  std::atomic<std::int32_t> qlen_{0};
  std::atomic<std::int64_t> served_{0};
  std::atomic<std::int64_t> inquiries_{0};
  std::atomic<std::int32_t> max_qlen_{0};
  std::atomic<std::int64_t> send_failures_{0};

  // Telemetry: counters/histograms are handles into metrics_ (created once
  // in the constructor; recording is lock- and allocation-free), queue depth
  // is exposed as a probe gauge reading qlen_ at scrape time.
  telemetry::Registry metrics_;
  telemetry::TraceRing trace_;
  telemetry::Counter m_served_;
  telemetry::Counter m_inquiries_;
  telemetry::Counter m_send_failures_;
  telemetry::Counter m_stats_scrapes_;
  telemetry::Histogram m_service_time_ms_;
  telemetry::Histogram m_queue_wait_ms_;

  // Worker pool + request queue (defined in server_node.cc to keep the
  // header light).
  class Queue;
  std::unique_ptr<Queue> queue_;
  std::vector<std::thread> threads_;

  // Publishing (optional). One target for the classic single directory,
  // several when the directory is replicated.
  bool publish_enabled_ = false;
  std::vector<net::Address> directories_;
  std::string publish_service_;
  std::uint32_t publish_partition_ = 0;
  SimDuration publish_interval_ = 0;
  SimDuration publish_ttl_ = 0;

  // Load broadcasting (optional, extension).
  bool broadcast_enabled_ = false;
  net::Address broadcast_channel_{};
  SimDuration broadcast_interval_ = 0;
  bool broadcast_jitter_ = true;
};

}  // namespace finelb::cluster
