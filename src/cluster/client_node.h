// Prototype client node (paper §3.1, Figure 5 left half).
//
// A client node drives an open-loop request stream against the server set.
// It is a single-threaded event loop multiplexed with ppoll(2), mirroring
// the paper's polling agent, which "sends out load inquiry requests ...
// through connected UDP sockets and asynchronously collects the responses
// using select":
//
//   * one connected UDP socket per server for load inquiries;
//   * one UDP socket for service requests/responses;
//   * one connected UDP socket to the centralized load-index manager (used
//     only when emulating IDEAL).
//
// Arrivals are paced by absolute deadlines accumulated from the workload's
// inter-arrival intervals, so the stream is open: a slow access never
// throttles subsequent arrivals (queueing happens at the servers, as in the
// paper, not in the client).
//
// Policy execution per access:
//   random / round-robin — dispatch immediately;
//   polling(d)           — send d inquiries, dispatch on the last reply or
//                          on the discard deadline (paper §3.2), whichever
//                          comes first; with the optimization off, a
//                          max_poll_wait backstop guards against UDP loss;
//   ideal                — Acquire from the manager, dispatch to its answer,
//                          Release on completion.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "cluster/directory.h"
#include "common/rng.h"
#include "core/load_cache.h"
#include "core/policy.h"
#include "core/selection.h"
#include "fault/fault.h"
#include "net/poller.h"
#include "net/socket.h"
#include "stats/accumulator.h"
#include "stats/histogram.h"
#include "telemetry/decision.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"
#include "workload/workload.h"

namespace finelb::cluster {

struct ServerEndpoints {
  ServerId id = 0;
  net::Address service_addr;
  net::Address load_addr;
};

struct ClientOptions {
  int id = 0;
  PolicyConfig policy;
  std::vector<ServerEndpoints> servers;
  std::optional<net::Address> ideal_manager;
  /// Broadcast channel address; required by the broadcast policy
  /// (prototype extension — see cluster/broadcast_channel.h).
  std::optional<net::Address> broadcast_channel;
  /// Accesses this client issues (its share of the experiment total).
  std::int64_t total_requests = 1000;
  /// Leading accesses excluded from statistics.
  std::int64_t warmup_requests = 100;
  /// Backstop wait for poll replies when the discard optimization is off
  /// (UDP can drop; the basic policy would otherwise wait forever).
  SimDuration max_poll_wait = 50 * kMillisecond;
  /// Wait for the IDEAL manager before falling back to a random server.
  SimDuration manager_timeout = 50 * kMillisecond;
  /// An access not answered within this bound counts as failed — the same
  /// 2-second criterion the paper's load calibration uses (§4).
  SimDuration response_timeout = 2 * kSecond;

  // --- failure hardening (all off by default; seed behavior unchanged) -----

  /// Fault injector attached to every socket this client owns (loss/dup/
  /// delay per fault/fault.h). Null = no injection.
  std::shared_ptr<fault::FaultInjector> fault;
  /// A server whose access times out is excluded from candidate sets for
  /// this long (0 disables). Keeps poll rounds and requests away from dead
  /// nodes while the directory's soft-state TTL catches up.
  SimDuration blacklist_cooldown = 0;
  /// Consecutive response timeouts from one server before it is
  /// blacklisted. 1 = first strike. Under ambient message loss a single
  /// timeout is weak evidence (a dead server fails every access, a lossy
  /// link only a fraction), so raising this keeps the blacklist from
  /// thrashing on healthy servers.
  int blacklist_after = 1;
  /// When set, the client re-fetches the service mapping from this
  /// directory every `mapping_refresh`, and marks endpoints missing from
  /// the snapshot unavailable — how a killed server's expired entry makes
  /// subsequent polls route around it mid-run.
  std::optional<net::Address> directory;
  /// Replicated-directory form: every replica's data address. Takes
  /// precedence over `directory` when non-empty; the client fails over
  /// between replicas and follows leader redirects (cluster/ha/).
  std::vector<net::Address> directory_replicas;
  std::string directory_service;
  SimDuration mapping_refresh = 0;
  /// Bucket width for the per-client completion/failure timeline used by
  /// the fault-tolerance bench to measure recovery (0 disables).
  SimDuration timeline_bucket = 0;
  /// A timed-out access is re-dispatched (to a fresh candidate, after the
  /// failing server is blacklisted) up to this many times before counting
  /// as failed. 0 = fail on first timeout, the paper's behavior.
  int max_access_retries = 0;

  /// Lifecycle tracing: every Nth access (by access index) leaves its full
  /// enqueue → poll → pick → dispatch → response path in the client's trace
  /// ring; 0 = off. Records are keyed by the globally unique request id
  /// (client id << 40 | access index) and the same id travels on the wire
  /// as `trace_id`, so server-side records of the same request merge with
  /// these (telemetry/merge.h). Discarded poll replies are traced under the
  /// echoed trace id when present, else by inquiry sequence.
  std::uint32_t trace_sample_period = 0;
  std::size_t trace_capacity = 256;

  /// Decision auditing: every Nth access's dispatch decision (the polled
  /// server set with reported loads and report ages, the chosen server, the
  /// blind-fallback/blacklist flags) lands in the client's decision ring;
  /// 0 = off. Records are keyed by the same request id as traces, so the
  /// post-run join (telemetry::reconstruct_decision_quality) can look up
  /// what actually happened to each audited decision. Use 1 to audit every
  /// decision, or trace_sample_period so audits cover the traced subset.
  std::uint32_t decision_sample_period = 0;
  std::size_t decision_capacity = 256;

  std::uint64_t seed = 1;
};

struct ClientStats {
  Accumulator response_ms;
  LatencyHistogram response_hist_ms;
  /// Time from access start to dispatch (load-information acquisition).
  Accumulator poll_time_ms;
  /// Round-trip time of individual poll replies (drives the §3.2 profile).
  LatencyHistogram poll_rtt_ms;
  /// Server queue length seen by dispatched requests on arrival.
  Accumulator queue_at_arrival;

  std::int64_t issued = 0;
  std::int64_t completed = 0;
  std::int64_t recorded = 0;
  std::int64_t polls_sent = 0;
  std::int64_t poll_replies_used = 0;
  std::int64_t polls_discarded = 0;  // replies after the round was decided
  std::int64_t polls_timed_out = 0;  // rounds decided by deadline
  std::int64_t manager_timeouts = 0;
  std::int64_t response_timeouts = 0;
  std::int64_t send_failures = 0;
  std::int64_t broadcasts_received = 0;

  // Failure-hardening counters (see ClientOptions).
  std::int64_t fallback_dispatches = 0;  // poll rounds decided blind
  std::int64_t access_retries = 0;       // timed-out accesses re-dispatched
  std::int64_t blacklist_insertions = 0;
  std::int64_t blacklist_hits = 0;  // candidates excluded by cooldown
  std::int64_t mapping_refreshes = 0;
  std::int64_t refresh_failures = 0;
  std::int64_t snapshot_retries = 0;  // directory retransmits (backoff)
  std::int64_t directory_failovers = 0;   // replica rotations on timeout
  std::int64_t directory_redirects = 0;   // leader redirects followed

  /// Completion/failure counts per timeline bucket (ClientOptions::
  /// timeline_bucket); empty when disabled.
  struct TimelineBucket {
    std::int64_t completed = 0;
    std::int64_t failed = 0;
    double sum_response_ms = 0.0;
  };
  std::vector<TimelineBucket> timeline;

  void merge(const ClientStats& other);
};

class ClientNode {
 public:
  ClientNode(ClientOptions options, std::unique_ptr<RequestSource> source);

  ClientNode(const ClientNode&) = delete;
  ClientNode& operator=(const ClientNode&) = delete;

  /// Runs the full request stream to completion; blocking (call from a
  /// dedicated thread in multi-client experiments).
  void run();

  const ClientStats& stats() const { return stats_; }

  /// Telemetry registry (metric naming: DESIGN.md §10). ClientStats stays
  /// the authoritative experiment record; the registry mirrors the headline
  /// counters/latencies in exporter form. Safe to scrape from another
  /// thread while run() is live (every cell and probe reads atomics).
  const telemetry::Registry& metrics() const { return metrics_; }
  const telemetry::TraceRing& trace() const { return trace_; }
  const telemetry::DecisionRing& decisions() const { return decision_ring_; }

  /// Where the service socket listens. DECISION_INQUIRY datagrams sent here
  /// are answered (chunked) while run() is live — decisions happen at
  /// clients, so the client's service socket doubles as its scrape
  /// endpoint, the way a server's load socket serves STATS/TRACE pulls.
  net::Address decision_scrape_addr() const {
    return service_socket_.local_address();
  }

  /// The node's snapshot (+ sampled trace) as JSON.
  std::string stats_json() const;

 private:
  struct Access {
    std::int64_t index = 0;
    SimTime started_at = 0;
    std::uint32_t service_us = 0;
    int attempt = 0;  // retry count so far (max_access_retries bound)
  };

  // Round/outstanding records live in flat unordered vectors (swap-remove
  // on completion) instead of std::map: the active sets are small (bounded
  // by in-flight accesses), deadline scans are O(n) either way, and flat
  // storage makes the steady state allocation-free — map insert/erase
  // costs a node allocation per access. Each record carries its own key.

  struct PollRound {
    std::uint64_t seq = 0;             // inquiry sequence (lookup key)
    Access access;
    std::vector<ServerId> targets;     // indices into options_.servers
    std::vector<ServerLoad> replies;
    SimTime sent_at = 0;
    SimTime deadline = 0;
  };

  struct ManagerRound {
    std::uint64_t seq = 0;  // acquire sequence (lookup key)
    Access access;
    SimTime deadline = 0;
  };

  struct Outstanding {
    std::uint64_t request_id = 0;  // lookup key
    Access access;
    std::size_t server_index = 0;
    SimTime deadline = 0;
    /// True when the IDEAL manager granted this slot; only such accesses
    /// send a Release (fallback-dispatched ones never incremented).
    bool manager_acquired = false;
  };

  void begin_access(const Access& access);
  void start_poll_round(const Access& access);
  /// Decides poll round `index` (of poll_rounds_) and retires it to the
  /// pool so its target/reply capacity is reused by later rounds.
  void finish_poll_round(std::size_t index);
  void dispatch(const Access& access, std::size_t server_index,
                bool manager_acquired = false);
  void release_manager_slot(std::size_t server_index);
  void drain_service_socket();
  void answer_decision_inquiry(std::uint64_t seq, std::uint32_t offset,
                               const net::Address& to);
  void drain_manager_socket();
  void drain_broadcast_socket();
  void drain_poll_socket(std::size_t server_index);
  void fire_deadlines(SimTime now);
  std::optional<SimTime> next_deadline(SimTime next_arrival) const;
  bool should_record(const Access& access) const {
    return access.index >= options_.warmup_requests;
  }
  /// Globally unique request id for an access — the trace key shared by
  /// client- and server-side records of the same request.
  std::uint64_t request_key(std::int64_t index) const {
    return (static_cast<std::uint64_t>(options_.id) << 40) |
           static_cast<std::uint64_t>(index);
  }
  /// Endpoint indices usable for new work: mapping-live minus blacklisted,
  /// falling back to every endpoint when that leaves nothing. The span
  /// views candidate_scratch_, valid until the next call.
  std::span<const ServerId> candidate_indices(SimTime now);
  void refresh_mapping(SimTime now);
  void record_outcome(SimTime now, bool completed, double response_ms);
  void mark_failed(std::size_t server_index, SimTime now);

  ClientOptions options_;
  std::unique_ptr<RequestSource> source_;
  Rng rng_;
  RoundRobinCursor rr_;
  std::vector<ServerId> server_ids_;

  net::UdpSocket service_socket_;
  std::vector<net::UdpSocket> poll_sockets_;  // one per server, connected
  // Reused across every drain_* call: responses and poll replies arrive in
  // bursts, and one recvmmsg per burst beats one recvfrom per datagram.
  net::DatagramBatch recv_batch_{32, 256};
  std::unique_ptr<net::UdpSocket> manager_socket_;
  std::unique_ptr<net::UdpSocket> broadcast_socket_;
  /// Broadcast policy's local load table, indexed like options_.servers.
  /// Seqlock-backed: updates from the drain loop never contend with the
  /// dispatch path's snapshot reads (core/load_cache.h).
  std::unique_ptr<LoadCache> broadcast_table_;
  SimTime subscribe_refresh_at_ = 0;
  net::Poller poller_;

  std::vector<PollRound> poll_rounds_;        // active, unordered
  std::vector<PollRound> poll_round_pool_;    // retired; capacity reused
  std::vector<ManagerRound> manager_rounds_;  // active, unordered
  std::vector<Outstanding> outstanding_;      // active, unordered
  std::uint64_t next_seq_ = 1;
  std::int64_t resolved_ = 0;

  // Reused scratch (see candidate_indices / the broadcast dispatch path).
  std::vector<ServerId> candidate_scratch_;
  std::vector<ServerLoad> load_scratch_;

  // Failure hardening (see ClientOptions).
  Blacklist blacklist_;
  std::vector<int> consecutive_timeouts_;  // per endpoint index
  std::unique_ptr<DirectoryClient> directory_client_;
  std::vector<std::uint8_t> endpoint_live_;  // per endpoint index
  SimTime next_mapping_refresh_ = 0;
  SimDuration mapping_refresh_interval_ = 0;  // backs off on failure
  SimTime run_started_at_ = 0;

  ClientStats stats_;

  // Telemetry mirrors (handles into metrics_, created once in the
  // constructor; recording is lock- and allocation-free).
  telemetry::Registry metrics_;
  telemetry::TraceRing trace_;
  telemetry::DecisionRing decision_ring_;
  telemetry::Counter m_issued_;
  telemetry::Counter m_completed_;
  telemetry::Counter m_polls_sent_;
  telemetry::Counter m_polls_discarded_;
  telemetry::Counter m_polls_timed_out_;
  telemetry::Counter m_fallback_dispatches_;
  telemetry::Counter m_response_timeouts_;
  telemetry::Counter m_send_failures_;
  telemetry::Counter m_blacklist_insertions_;
  telemetry::Counter m_blacklist_hits_;
  telemetry::Histogram m_poll_rtt_ms_;
  telemetry::Histogram m_response_time_ms_;
  telemetry::Histogram m_poll_time_ms_;
  /// Issued-minus-resolved accesses, kept as an atomic so the
  /// requests_in_flight probe can run from a scraping thread.
  std::atomic<std::int64_t> m_in_flight_{0};
};

}  // namespace finelb::cluster
