#include "cluster/experiment.h"

#include <memory>
#include <thread>
#include <vector>

#include "common/check.h"
#include "common/log.h"
#include "cluster/broadcast_channel.h"
#include "cluster/directory.h"
#include "cluster/ideal_manager.h"
#include "net/clock.h"

namespace finelb::cluster {
namespace {

constexpr const char* kExperimentService = "experiment";

std::vector<ServerEndpoints> endpoints_from_directory(
    const net::Address& directory, std::size_t expected) {
  DirectoryClient client(directory);
  const auto snapshot =
      client.wait_for_servers(kExperimentService, expected, 10 * kSecond);
  FINELB_CHECK(snapshot.size() >= expected,
               "directory never saw all experiment servers");
  std::vector<ServerEndpoints> endpoints;
  endpoints.reserve(snapshot.size());
  for (const auto& e : snapshot) {
    endpoints.push_back({e.server, e.service_addr, e.load_addr});
  }
  return endpoints;
}

}  // namespace

PrototypeResult run_prototype(const PrototypeConfig& config,
                              const Workload& workload) {
  FINELB_CHECK(config.servers >= 1 && config.clients >= 1,
               "need at least one server and one client");
  FINELB_CHECK(config.load > 0.0 && config.load < 1.0,
               "load must be in (0, 1)");
  FINELB_CHECK(config.total_requests >= config.clients,
               "need at least one request per client");

  // --- servers ---------------------------------------------------------------
  std::vector<std::unique_ptr<ServerNode>> servers;
  servers.reserve(static_cast<std::size_t>(config.servers));
  for (int s = 0; s < config.servers; ++s) {
    ServerOptions opts;
    opts.id = s;
    opts.worker_threads = config.worker_threads_per_server;
    opts.inject_busy_reply_delay = config.inject_busy_reply_delay;
    opts.busy_reply_alpha = config.busy_reply_alpha;
    opts.busy_reply_xm = config.busy_reply_xm;
    opts.busy_slow_prob = config.busy_slow_prob;
    opts.seed = config.seed + static_cast<std::uint64_t>(s) * 7919;
    servers.push_back(std::make_unique<ServerNode>(opts));
  }

  // --- availability ----------------------------------------------------------
  std::unique_ptr<DirectoryServer> directory;
  if (config.use_directory) {
    directory = std::make_unique<DirectoryServer>();
    directory->start();
    for (auto& server : servers) {
      server->enable_publishing(directory->address(), kExperimentService,
                                /*partition=*/0, /*interval=*/kSecond / 4,
                                /*ttl=*/2 * kSecond);
    }
  }

  // --- broadcast channel (broadcast policy only, prototype extension) --------
  std::unique_ptr<BroadcastChannel> channel;
  if (config.policy.kind == PolicyKind::kBroadcast) {
    channel = std::make_unique<BroadcastChannel>();
    channel->start();
    for (auto& server : servers) {
      server->enable_load_broadcast(channel->address(),
                                    config.policy.broadcast_interval,
                                    config.policy.broadcast_jitter);
    }
  }

  for (auto& server : servers) server->start();

  std::vector<ServerEndpoints> endpoints;
  if (config.use_directory) {
    endpoints = endpoints_from_directory(
        directory->address(), static_cast<std::size_t>(config.servers));
  } else {
    for (auto& server : servers) {
      endpoints.push_back(
          {server->id(), server->service_address(), server->load_address()});
    }
  }

  // --- IDEAL manager ---------------------------------------------------------
  std::unique_ptr<IdealManager> manager;
  if (config.policy.kind == PolicyKind::kIdeal) {
    manager = std::make_unique<IdealManager>(config.servers, config.seed + 5);
    manager->start();
  }

  // --- load calibration -------------------------------------------------------
  const double effective_service =
      workload.mean_service_sec() + config.per_request_overhead_sec;
  const double offered_load =
      config.load * workload.mean_service_sec() / effective_service;
  // Arrival scale targeting the *nominal* service time, then stretched by
  // the overhead ratio so the effective per-server utilization matches the
  // requested load.
  const double scale =
      workload.arrival_scale_for_load(config.load, config.servers) *
      (effective_service / workload.mean_service_sec()) *
      static_cast<double>(config.clients);

  // --- clients ---------------------------------------------------------------
  const std::int64_t per_client = config.total_requests / config.clients;
  const std::int64_t warmup =
      per_client * config.warmup_fraction_percent / 100;
  std::vector<std::unique_ptr<ClientNode>> clients;
  clients.reserve(static_cast<std::size_t>(config.clients));
  for (int c = 0; c < config.clients; ++c) {
    ClientOptions opts;
    opts.id = c;
    opts.policy = config.policy;
    opts.servers = endpoints;
    if (manager) opts.ideal_manager = manager->address();
    if (channel) opts.broadcast_channel = channel->address();
    opts.total_requests = per_client;
    opts.warmup_requests = warmup;
    opts.response_timeout = config.response_timeout;
    opts.seed = config.seed + 31 + static_cast<std::uint64_t>(c) * 9973;
    clients.push_back(std::make_unique<ClientNode>(
        std::move(opts),
        workload.make_source(scale, config.seed + 211 +
                                        static_cast<std::uint64_t>(c) * 53)));
  }

  const SimTime started = net::monotonic_now();
  std::vector<std::thread> client_threads;
  client_threads.reserve(clients.size());
  for (auto& client : clients) {
    client_threads.emplace_back([&client] { client->run(); });
  }
  for (auto& thread : client_threads) thread.join();
  const SimTime finished = net::monotonic_now();

  // --- collect ---------------------------------------------------------------
  PrototypeResult result;
  for (auto& client : clients) result.clients.merge(client->stats());
  for (auto& server : servers) {
    const ServerCounters counters = server->counters();
    result.servers.requests_served += counters.requests_served;
    result.servers.inquiries_answered += counters.inquiries_answered;
    result.servers.max_queue_length =
        std::max(result.servers.max_queue_length, counters.max_queue_length);
    result.servers.send_failures += counters.send_failures;
  }
  result.offered_load = offered_load;
  result.wall_sec = to_sec(finished - started);
  result.throughput = result.wall_sec > 0.0
                          ? static_cast<double>(result.clients.completed) /
                                result.wall_sec
                          : 0.0;

  for (auto& server : servers) server->stop();
  if (manager) manager->stop();
  if (channel) channel->stop();
  if (directory) directory->stop();
  return result;
}

double calibrate_overhead(const Workload& workload, std::int64_t requests,
                          std::uint64_t seed) {
  PrototypeConfig config;
  config.servers = 1;
  config.clients = 1;
  config.policy = PolicyConfig::random();
  config.load = 0.05;  // essentially unloaded: responses measure pure cost
  config.total_requests = requests;
  config.use_directory = false;
  config.inject_busy_reply_delay = false;
  config.per_request_overhead_sec = 0.0;
  config.seed = seed;
  const PrototypeResult result = run_prototype(config, workload);
  const double overhead_sec =
      result.clients.response_ms.mean() / 1e3 - workload.mean_service_sec();
  return std::max(overhead_sec, 0.0);
}

}  // namespace finelb::cluster
