#include "cluster/experiment.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/check.h"
#include "common/log.h"
#include "cluster/broadcast_channel.h"
#include "cluster/directory.h"
#include "cluster/ha/replica.h"
#include "cluster/ideal_manager.h"
#include "net/clock.h"
#include "telemetry/clock_sync.h"
#include "telemetry/export.h"
#include "telemetry/scrape.h"

namespace finelb::cluster {
namespace {

constexpr const char* kExperimentService = "experiment";

std::vector<ServerEndpoints> endpoints_from_directory(
    std::vector<net::Address> replicas, std::size_t expected) {
  DirectoryClient client(std::move(replicas));
  const auto snapshot =
      client.wait_for_servers(kExperimentService, expected, 10 * kSecond);
  FINELB_CHECK(snapshot.size() >= expected,
               "directory never saw all experiment servers");
  std::vector<ServerEndpoints> endpoints;
  endpoints.reserve(snapshot.size());
  for (const auto& e : snapshot) {
    endpoints.push_back({e.server, e.service_addr, e.load_addr});
  }
  return endpoints;
}

}  // namespace

PrototypeResult run_prototype(const PrototypeConfig& config,
                              const Workload& workload) {
  FINELB_CHECK(config.servers >= 1 && config.clients >= 1,
               "need at least one server and one client");
  FINELB_CHECK(config.load > 0.0 && config.load < 1.0,
               "load must be in (0, 1)");
  FINELB_CHECK(config.total_requests >= config.clients,
               "need at least one request per client");
  for (const ServerKill& kill : config.kills) {
    FINELB_CHECK(kill.server >= 0 && kill.server < config.servers,
                 "kill schedule names an unknown server");
    FINELB_CHECK(kill.after >= 0, "kill time must be non-negative");
  }
  FINELB_CHECK(config.directory_replicas >= 1,
               "directory_replicas must be at least 1");
  if (!config.directory_leader_kills.empty()) {
    FINELB_CHECK(config.use_directory && config.directory_replicas > 1,
                 "directory leader kills need a replicated directory");
    FINELB_CHECK(static_cast<int>(config.directory_leader_kills.size()) <
                     config.directory_replicas,
                 "cannot kill every directory replica");
    for (const SimDuration after : config.directory_leader_kills) {
      FINELB_CHECK(after >= 0, "leader-kill time must be non-negative");
    }
  }

  // Per-node fault injectors: one per server and one per client, seeded
  // from the spec seed plus the node index so every node sees an
  // independent — but reproducible — loss/dup/delay stream.
  const bool inject = config.fault.any();
  std::vector<std::shared_ptr<fault::FaultInjector>> injectors;
  const auto make_injector = [&](std::uint64_t salt) {
    if (!inject) return std::shared_ptr<fault::FaultInjector>();
    fault::FaultSpec spec = config.fault;
    spec.seed = config.fault.seed * 0x9E3779B97F4A7C15ull + salt;
    injectors.push_back(std::make_shared<fault::FaultInjector>(spec));
    return injectors.back();
  };

  // --- servers ---------------------------------------------------------------
  std::vector<std::unique_ptr<ServerNode>> servers;
  servers.reserve(static_cast<std::size_t>(config.servers));
  for (int s = 0; s < config.servers; ++s) {
    ServerOptions opts;
    opts.id = s;
    opts.worker_threads = config.worker_threads_per_server;
    opts.inject_busy_reply_delay = config.inject_busy_reply_delay;
    opts.busy_reply_alpha = config.busy_reply_alpha;
    opts.busy_reply_xm = config.busy_reply_xm;
    opts.busy_slow_prob = config.busy_slow_prob;
    opts.fault = make_injector(static_cast<std::uint64_t>(s) + 1);
    opts.trace_sample_period = config.trace_sample_period;
    opts.seed = config.seed + static_cast<std::uint64_t>(s) * 7919;
    servers.push_back(std::make_unique<ServerNode>(opts));
  }

  // --- availability ----------------------------------------------------------
  // Single node: the classic DirectoryServer. Replicated: an
  // HaDirectoryCluster whose lease-holding leader serves snapshots while
  // every replica absorbs publishes (DESIGN.md §12). Either way the servers
  // announce to every directory address and the clients carry the full
  // replica set.
  std::unique_ptr<DirectoryServer> directory;
  std::unique_ptr<ha::HaDirectoryCluster> ha_directory;
  std::vector<net::Address> directory_addrs;
  if (config.use_directory) {
    if (config.directory_replicas > 1) {
      ha::HaReplicaConfig ha_config;
      ha_config.heartbeat_interval = config.ha_heartbeat_interval;
      ha_config.election_timeout_min = config.ha_election_timeout_min;
      ha_config.election_timeout_max = config.ha_election_timeout_max;
      ha_config.leader_lease = config.ha_leader_lease;
      ha_config.seed = config.seed + 0xD1E;
      ha_directory = std::make_unique<ha::HaDirectoryCluster>(
          config.directory_replicas, ha_config);
      directory_addrs = ha_directory->data_addresses();
      FINELB_CHECK(ha_directory->wait_for_leader() >= 0,
                   "replicated directory never elected a leader");
    } else {
      directory = std::make_unique<DirectoryServer>();
      directory->start();
      directory_addrs.push_back(directory->address());
    }
    for (auto& server : servers) {
      server->enable_publishing(directory_addrs, kExperimentService,
                                /*partition=*/0, config.publish_interval,
                                config.publish_ttl);
    }
  }

  // --- broadcast channel (broadcast policy only, prototype extension) --------
  std::unique_ptr<BroadcastChannel> channel;
  if (config.policy.kind == PolicyKind::kBroadcast) {
    channel = std::make_unique<BroadcastChannel>();
    channel->start();
    for (auto& server : servers) {
      server->enable_load_broadcast(channel->address(),
                                    config.policy.broadcast_interval,
                                    config.policy.broadcast_jitter);
    }
  }

  for (auto& server : servers) server->start();

  std::vector<ServerEndpoints> endpoints;
  if (config.use_directory) {
    endpoints = endpoints_from_directory(
        directory_addrs, static_cast<std::size_t>(config.servers));
  } else {
    for (auto& server : servers) {
      endpoints.push_back(
          {server->id(), server->service_address(), server->load_address()});
    }
  }

  // --- IDEAL manager ---------------------------------------------------------
  std::unique_ptr<IdealManager> manager;
  if (config.policy.kind == PolicyKind::kIdeal) {
    manager = std::make_unique<IdealManager>(config.servers, config.seed + 5);
    manager->start();
  }

  // --- load calibration -------------------------------------------------------
  const double effective_service =
      workload.mean_service_sec() + config.per_request_overhead_sec;
  const double offered_load =
      config.load * workload.mean_service_sec() / effective_service;
  // Arrival scale targeting the *nominal* service time, then stretched by
  // the overhead ratio so the effective per-server utilization matches the
  // requested load.
  const double scale =
      workload.arrival_scale_for_load(config.load, config.servers) *
      (effective_service / workload.mean_service_sec()) *
      static_cast<double>(config.clients);

  // --- clients ---------------------------------------------------------------
  const std::int64_t per_client = config.total_requests / config.clients;
  const std::int64_t warmup =
      per_client * config.warmup_fraction_percent / 100;
  std::vector<std::unique_ptr<ClientNode>> clients;
  clients.reserve(static_cast<std::size_t>(config.clients));
  for (int c = 0; c < config.clients; ++c) {
    ClientOptions opts;
    opts.id = c;
    opts.policy = config.policy;
    opts.servers = endpoints;
    if (manager) opts.ideal_manager = manager->address();
    if (channel) opts.broadcast_channel = channel->address();
    opts.total_requests = per_client;
    opts.warmup_requests = warmup;
    opts.response_timeout = config.response_timeout;
    opts.fault = make_injector(0x10000 + static_cast<std::uint64_t>(c));
    opts.blacklist_cooldown = config.blacklist_cooldown;
    opts.blacklist_after = config.blacklist_after;
    opts.timeline_bucket = config.timeline_bucket;
    opts.max_access_retries = config.max_access_retries;
    opts.trace_sample_period = config.trace_sample_period;
    opts.decision_sample_period = config.decision_sample_period;
    if (!directory_addrs.empty() && config.client_mapping_refresh > 0) {
      opts.directory = directory_addrs.front();
      opts.directory_replicas = directory_addrs;
      opts.directory_service = kExperimentService;
      opts.mapping_refresh = config.client_mapping_refresh;
    }
    opts.seed = config.seed + 31 + static_cast<std::uint64_t>(c) * 9973;
    clients.push_back(std::make_unique<ClientNode>(
        std::move(opts),
        workload.make_source(scale, config.seed + 211 +
                                        static_cast<std::uint64_t>(c) * 53)));
  }

  // --- observability ---------------------------------------------------------
  const auto collect_cluster_stats = [&servers, &clients] {
    std::vector<std::string> docs;
    docs.reserve(servers.size() + clients.size());
    for (const auto& server : servers) docs.push_back(server->stats_json());
    for (const auto& client : clients) docs.push_back(client->stats_json());
    return telemetry::cluster_to_json(docs);
  };
  if (config.stats_on_sigusr1) telemetry::install_sigusr1_dump_handler();
  // The reporter polls every node registry from its own thread — safe while
  // the run is live because every cell and probe reads atomics. Scoped so
  // its thread joins before the nodes are torn down.
  std::optional<telemetry::StderrReporter> reporter;
  if (config.stats_report_interval > 0 || config.stats_on_sigusr1) {
    reporter.emplace(collect_cluster_stats, config.stats_report_interval);
  }

  const SimTime started = net::monotonic_now();
  std::vector<std::thread> client_threads;
  client_threads.reserve(clients.size());
  for (auto& client : clients) {
    client_threads.emplace_back([&client] { client->run(); });
  }

  // Kill-control thread: executes the kill schedule against wall time.
  // ServerNode::stop() joins the victim's threads, after which it stops
  // answering polls, serving requests, and refreshing its directory entry —
  // exactly the failure mode the hardening is meant to survive.
  std::atomic<bool> clients_done{false};
  std::atomic<int> killed{0};
  std::thread killer;
  if (!config.kills.empty()) {
    killer = std::thread([&] {
      std::vector<ServerKill> schedule = config.kills;
      std::sort(schedule.begin(), schedule.end(),
                [](const ServerKill& a, const ServerKill& b) {
                  return a.after < b.after;
                });
      for (const ServerKill& kill : schedule) {
        const SimTime due = started + kill.after;
        while (net::monotonic_now() < due) {
          if (clients_done.load(std::memory_order_relaxed)) return;
          net::sleep_for(std::min<SimDuration>(due - net::monotonic_now(),
                                               10 * kMillisecond));
        }
        FINELB_LOG(kInfo, "experiment")
            << "killing server " << kill.server << " at +"
            << to_ms(net::monotonic_now() - started) << " ms";
        servers[static_cast<std::size_t>(kill.server)]->stop();
        killed.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // Directory leader-kill thread: at each scheduled offset, stop whichever
  // replica currently holds the lease. The kill instant is recorded so the
  // failover window (kill -> next kLeaderElected instant) can be measured
  // afterwards — both sides read the same in-process CLOCK_MONOTONIC.
  std::vector<SimTime> leader_kill_times;  // written by dir_killer only
  std::atomic<int> leaders_killed{0};
  std::thread dir_killer;
  if (ha_directory && !config.directory_leader_kills.empty()) {
    dir_killer = std::thread([&] {
      std::vector<SimDuration> schedule = config.directory_leader_kills;
      std::sort(schedule.begin(), schedule.end());
      for (const SimDuration after : schedule) {
        const SimTime due = started + after;
        while (net::monotonic_now() < due) {
          if (clients_done.load(std::memory_order_relaxed)) return;
          net::sleep_for(std::min<SimDuration>(due - net::monotonic_now(),
                                               10 * kMillisecond));
        }
        const std::int32_t victim = ha_directory->kill_leader();
        if (victim < 0) {
          FINELB_LOG(kWarn, "experiment")
              << "leader kill scheduled but no replica holds the lease";
          continue;
        }
        leader_kill_times.push_back(net::monotonic_now());
        FINELB_LOG(kInfo, "experiment")
            << "killed directory leader " << victim << " at +"
            << to_ms(leader_kill_times.back() - started) << " ms";
        leaders_killed.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  for (auto& thread : client_threads) thread.join();
  clients_done.store(true, std::memory_order_relaxed);
  if (killer.joinable()) killer.join();
  if (dir_killer.joinable()) dir_killer.join();
  reporter.reset();  // joins the reporter thread before nodes wind down
  const SimTime finished = net::monotonic_now();

  // --- collect ---------------------------------------------------------------
  PrototypeResult result;
  for (auto& client : clients) result.clients.merge(client->stats());
  for (auto& server : servers) {
    const ServerCounters counters = server->counters();
    result.servers.requests_served += counters.requests_served;
    result.servers.inquiries_answered += counters.inquiries_answered;
    result.servers.max_queue_length =
        std::max(result.servers.max_queue_length, counters.max_queue_length);
    result.servers.send_failures += counters.send_failures;
  }
  for (const auto& injector : injectors) {
    result.faults.merge(injector->counters());
  }
  result.servers_killed = killed.load();
  result.directory_leaders_killed = leaders_killed.load();
  if (ha_directory) {
    // Election instants come off each replica's trace ring; the ring is
    // in-process, so no clock alignment is needed. The failover window for
    // a kill is the gap to the *next* election anywhere in the cluster.
    std::vector<SimTime> elections;
    for (std::int32_t r = 0; r < ha_directory->size(); ++r) {
      for (const telemetry::TraceRecord& rec :
           ha_directory->replica(r).trace_ring().snapshot()) {
        if (rec.point == telemetry::TracePoint::kLeaderElected) {
          elections.push_back(rec.at_ns);
        }
      }
    }
    std::sort(elections.begin(), elections.end());
    result.directory_elections =
        static_cast<std::int64_t>(elections.size());
    for (const SimTime kill : leader_kill_times) {
      const auto next =
          std::upper_bound(elections.begin(), elections.end(), kill);
      // No re-election observed before the run ended: charge the rest of
      // the run as the window rather than under-reporting it as zero.
      const SimTime recovered = next != elections.end() ? *next : finished;
      result.directory_failover_window =
          std::max(result.directory_failover_window, recovered - kill);
    }
  }
  if (config.collect_node_stats) {
    for (const auto& server : servers) {
      result.node_stats_json.push_back(server->stats_json());
    }
    for (const auto& client : clients) {
      result.node_stats_json.push_back(client->stats_json());
    }
  }
  // --- trace observatory -----------------------------------------------------
  // Pull server rings over the wire while the load loops are still
  // answering; each scrape round trip doubles as a clock-sync sample, so a
  // dead or silent server simply contributes no trace. Client rings live in
  // this process (zero offset by definition).
  if (config.collect_traces && config.trace_sample_period > 0) {
    for (const auto& server : servers) {
      telemetry::NodeTrace node;
      node.source = "server." + std::to_string(server->id());
      if (auto scrape = telemetry::scrape_trace(server->load_address())) {
        telemetry::ClockSync sync;
        for (const auto& s : scrape->clock_samples) {
          sync.add_sample(s.local_send_ns, s.remote_ns, s.local_recv_ns);
        }
        node.clock_offset_ns = sync.offset_ns();
        node.records = std::move(scrape->records);
      } else {
        ++result.trace_scrape_failures;
      }
      result.node_traces.push_back(std::move(node));
    }
    for (std::size_t c = 0; c < clients.size(); ++c) {
      telemetry::NodeTrace node;
      node.source = "client." + std::to_string(c);
      node.records = clients[c]->trace().snapshot();
      result.node_traces.push_back(std::move(node));
    }
    if (ha_directory) {
      // Replica rings live in this process (zero clock offset); their
      // kLeaderElected instants place elections on the cluster timeline.
      for (std::int32_t r = 0; r < ha_directory->size(); ++r) {
        telemetry::NodeTrace node;
        node.source = "directory." + std::to_string(r);
        node.records = ha_directory->replica(r).trace_ring().snapshot();
        result.node_traces.push_back(std::move(node));
      }
    }
    result.staleness =
        telemetry::compute_staleness(telemetry::merge_traces(result.node_traces));
  }
  // --- decision observatory --------------------------------------------------
  // Client decision rings live in this process (like client trace rings),
  // so the post-run pull is a snapshot; the wire channel (DECISION_INQUIRY
  // on the client's service socket) exists for scraping a *live* client and
  // is exercised by telemetry::scrape_decisions tests. The regret join
  // reads each decision's realized queue depth from the merged timeline's
  // kResponse records, hence the collect_traces dependency.
  if (config.collect_decisions && config.decision_sample_period > 0) {
    std::vector<DecisionRecord> decisions;
    for (const auto& client : clients) {
      std::vector<DecisionRecord> ring = client->decisions().snapshot();
      decisions.insert(decisions.end(), ring.begin(), ring.end());
    }
    result.decision_records = static_cast<std::int64_t>(decisions.size());
    result.decision_quality = telemetry::reconstruct_decision_quality(
        decisions, telemetry::merge_traces(result.node_traces));
  }

  result.offered_load = offered_load;
  result.wall_sec = to_sec(finished - started);
  result.throughput = result.wall_sec > 0.0
                          ? static_cast<double>(result.clients.completed) /
                                result.wall_sec
                          : 0.0;

  for (auto& server : servers) server->stop();
  if (manager) manager->stop();
  if (channel) channel->stop();
  if (directory) directory->stop();
  return result;
}

double calibrate_overhead(const Workload& workload, std::int64_t requests,
                          std::uint64_t seed) {
  PrototypeConfig config;
  config.servers = 1;
  config.clients = 1;
  config.policy = PolicyConfig::random();
  config.load = 0.05;  // essentially unloaded: responses measure pure cost
  config.total_requests = requests;
  config.use_directory = false;
  config.inject_busy_reply_delay = false;
  config.per_request_overhead_sec = 0.0;
  config.seed = seed;
  const PrototypeResult result = run_prototype(config, workload);
  const double overhead_sec =
      result.clients.response_ms.mean() / 1e3 - workload.mean_service_sec();
  return std::max(overhead_sec, 0.0);
}

}  // namespace finelb::cluster
