#include "cluster/directory.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "common/log.h"
#include "net/clock.h"

namespace finelb::cluster {

// --------------------------------------------------------------------------
// DirectoryTable

void DirectoryTable::apply(net::Publish publish, SimTime now) {
  const auto ttl =
      static_cast<SimDuration>(publish.ttl_ms) * kMillisecond;
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& entry =
      entries_[Key{publish.service, publish.server, publish.partition}];
  entry.publish = std::move(publish);
  entry.expires_at = now + ttl;
  entry.grace = ttl / 4;
  republish_locked();
  publishes_.fetch_add(1, std::memory_order_relaxed);
}

std::shared_ptr<const DirectoryTable::Snapshot> DirectoryTable::load_snapshot()
    const {
  // Lock-free read path; protocol documented at the member declarations.
  // The pin / re-check pair is seq_cst to close the Dekker race against
  // the writer's flip / drain pair: if the writer's drain loop missed this
  // pin, the total seq_cst order forces the re-check below to observe the
  // flipped version, so the reader retries instead of touching a slot the
  // writer is rewriting.
  for (;;) {
    const std::uint64_t v = version_.load(std::memory_order_acquire);
    const Slot& slot = slots_[v & 1];
    slot.readers.fetch_add(1, std::memory_order_seq_cst);
    if (version_.load(std::memory_order_seq_cst) == v) {
      std::shared_ptr<const Snapshot> snap = slot.snap;
      slot.readers.fetch_sub(1, std::memory_order_release);
      return snap;
    }
    // The writer advanced past v between our load and our pin; it may be
    // rewriting this slot already (it only drains readers that pinned
    // before its flip). Unpin and retry against the new active slot.
    slot.readers.fetch_sub(1, std::memory_order_release);
  }
}

std::vector<net::Publish> DirectoryTable::live_entries(
    const std::string& service, SimTime now) const {
  // Lock-free read: grab the current immutable snapshot and filter. See
  // the guard-discipline comment in the header. The grace term keeps a
  // server that refreshes exactly at ttl from flapping out for the one
  // read that races its refresh.
  const std::shared_ptr<const Snapshot> snap = load_snapshot();
  std::vector<net::Publish> out;
  for (const Entry& entry : *snap) {
    if (entry.expires_at + entry.grace <= now) continue;  // expired
    if (!service.empty() && entry.publish.service != service) continue;
    out.push_back(entry.publish);
  }
  return out;
}

void DirectoryTable::republish_locked() {
  auto next = std::make_shared<Snapshot>();
  next->reserve(entries_.size());
  for (const auto& [key, entry] : entries_) next->push_back(entry);
  // Install into the inactive slot, then flip. Writers are serialised by
  // mutex_ (we hold it here), so only readers contend. Draining waits for
  // readers that pinned this slot at least two flips ago — each is mid
  // shared_ptr copy, so the spin is bounded by that copy, not by how long
  // callers keep the returned snapshot alive.
  const std::uint64_t v = version_.load(std::memory_order_relaxed);
  Slot& slot = slots_[(v + 1) & 1];
  while (slot.readers.load(std::memory_order_seq_cst) != 0) {
    // A stale reader is still unpinning; its fetch_sub(release) below
    // synchronises with this acquire-or-stronger load, so the write to
    // slot.snap cannot race the reader's copy.
  }
  slot.snap = std::shared_ptr<const Snapshot>(std::move(next));
  version_.store(v + 1, std::memory_order_seq_cst);
}

// --------------------------------------------------------------------------
// DirectoryServer

DirectoryServer::DirectoryServer() { socket_.set_buffer_sizes(1 << 20); }

DirectoryServer::~DirectoryServer() { stop(); }

void DirectoryServer::start() {
  FINELB_CHECK(!running_.exchange(true), "directory already started");
  thread_ = std::thread([this] { recv_loop(); });
}

void DirectoryServer::stop() {
  if (!running_.exchange(false)) return;
  if (thread_.joinable()) thread_.join();
}

net::Address DirectoryServer::address() const {
  return socket_.local_address();
}

std::vector<net::Publish> DirectoryServer::live_entries(
    const std::string& service) const {
  return table_.live_entries(service, net::monotonic_now());
}

void DirectoryServer::recv_loop() {
  net::Poller poller;
  poller.add(socket_.fd(), 0);
  std::array<std::uint8_t, 2048> buf{};
  while (running_.load(std::memory_order_relaxed)) {
    if (poller.wait(50 * kMillisecond).empty()) continue;
    while (auto dgram = socket_.recv_from(buf)) {
      const std::span<const std::uint8_t> data(buf.data(), dgram->size);
      if (data.empty()) continue;  // peek_type throws on empty datagrams
      switch (net::peek_type(data)) {
        case net::MsgType::kPublish: {
          net::Publish publish;
          if (!net::Publish::try_decode(data, publish)) {
            FINELB_LOG(kWarn, "directory") << "dropping malformed publish";
            break;
          }
          table_.apply(std::move(publish), net::monotonic_now());
          break;
        }
        case net::MsgType::kSnapshotRequest: {
          net::SnapshotRequest request;
          if (!net::SnapshotRequest::try_decode(data, request)) {
            FINELB_LOG(kWarn, "directory") << "dropping malformed snapshot "
                                              "request";
            break;
          }
          net::SnapshotReply reply;
          reply.seq = request.seq;
          reply.entries = live_entries(request.service);
          socket_.send_to(reply.encode(), dgram->from);
          break;
        }
        default:
          FINELB_LOG(kWarn, "directory") << "unexpected message type";
      }
    }
  }
}

// --------------------------------------------------------------------------
// DirectoryClient

DirectoryClient::DirectoryClient(const net::Address& directory,
                                 std::uint64_t seed)
    : DirectoryClient(std::vector<net::Address>{directory}, seed) {}

DirectoryClient::DirectoryClient(std::vector<net::Address> replicas,
                                 std::uint64_t seed)
    : replicas_(std::move(replicas)), rng_(seed) {
  FINELB_CHECK(!replicas_.empty(), "directory client needs >= 1 replica");
  socket_.connect(replicas_[0]);
  poller_.add(socket_.fd(), 0);
}

void DirectoryClient::attach_fault_injector(
    std::shared_ptr<fault::FaultInjector> injector) {
  socket_.attach_fault_injector(std::move(injector));
}

void DirectoryClient::reconnect(const net::Address& addr) {
  // POSIX allows re-connecting a UDP socket; the fd (and thus poller_
  // registration) is unchanged, only the peer filter moves.
  socket_.connect(addr);
}

std::optional<std::vector<ServiceEndpoint>> DirectoryClient::try_fetch(
    const std::string& service, SimDuration timeout) {
  const SimTime deadline = net::monotonic_now() + timeout;
  // Retransmit with exponential backoff: 100 ms base doubling to an 800 ms
  // cap, each interval jittered by +/-25% so a fleet of clients recovering
  // from a directory outage does not resynchronize into bursts. Each
  // unanswered slice rotates to the next replica before retransmitting.
  SimDuration backoff = 100 * kMillisecond;
  constexpr SimDuration kBackoffCap = 800 * kMillisecond;
  bool first_send = true;
  while (net::monotonic_now() < deadline) {
    net::SnapshotRequest request;
    request.seq = next_seq_++;
    request.service = service;
    socket_.send(request.encode());
    if (!first_send) snapshot_retries_.fetch_add(1, std::memory_order_relaxed);
    first_send = false;
    const auto jittered = static_cast<SimDuration>(
        static_cast<double>(backoff) * rng_.uniform(0.75, 1.25));
    backoff = std::min<SimDuration>(backoff * 2, kBackoffCap);
    const SimTime retry_at =
        std::min<SimTime>(deadline, net::monotonic_now() + jittered);
    bool redirected = false;
    while (!redirected && net::monotonic_now() < retry_at) {
      poller_.wait(retry_at - net::monotonic_now());
      while (!redirected) {
        const auto size = socket_.recv(recv_buf_);
        if (!size) break;
        const std::span<const std::uint8_t> data(recv_buf_.data(), *size);
        if (data.empty()) continue;
        switch (net::peek_type(data)) {
          case net::MsgType::kSnapshotReply: {
            if (!net::SnapshotReply::try_decode(data, reply_)) {
              continue;  // malformed; keep waiting
            }
            if (reply_.seq != request.seq) continue;  // stale reply
            std::vector<ServiceEndpoint> endpoints;
            endpoints.reserve(reply_.entries.size());
            for (const auto& entry : reply_.entries) {
              endpoints.push_back({entry.server, entry.partition,
                                   net::Address::loopback(entry.service_port),
                                   net::Address::loopback(entry.load_port)});
            }
            last_snapshot_ = endpoints;
            last_snapshot_at_ = net::monotonic_now();
            return endpoints;
          }
          case net::MsgType::kRedirect: {
            net::Redirect redirect;
            if (!net::Redirect::try_decode(data, redirect)) continue;
            if (redirect.seq != request.seq) continue;  // stale redirect
            if (redirect.leader_port == 0) {
              // Election in progress: the follower knows no leader yet.
              // Keep waiting out this slice, then rotate as usual.
              continue;
            }
            redirects_followed_.fetch_add(1, std::memory_order_relaxed);
            reconnect(net::Address::loopback(redirect.leader_port));
            redirected = true;  // retransmit immediately to the leader
            break;
          }
          default:
            continue;  // not ours (e.g. a late reply type we don't know)
        }
      }
    }
    if (!redirected && replicas_.size() > 1 &&
        net::monotonic_now() < deadline) {
      // This replica stayed silent for a whole backoff slice: it is dead,
      // partitioned, or mid-election. Rotate and try its neighbour.
      current_ = (current_ + 1) % replicas_.size();
      reconnect(replicas_[current_]);
      failovers_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  return std::nullopt;
}

std::vector<ServiceEndpoint> DirectoryClient::fetch(const std::string& service,
                                                    SimDuration timeout) {
  auto endpoints = try_fetch(service, timeout);
  FINELB_CHECK(endpoints.has_value(),
               "directory did not answer snapshot request");
  return std::move(*endpoints);
}

std::vector<ServiceEndpoint> DirectoryClient::wait_for_servers(
    const std::string& service, std::size_t min_servers,
    SimDuration deadline_from_now) {
  const SimTime deadline = net::monotonic_now() + deadline_from_now;
  std::vector<ServiceEndpoint> endpoints;
  for (;;) {
    if (auto got = try_fetch(service)) endpoints = std::move(*got);
    if (endpoints.size() >= min_servers || net::monotonic_now() >= deadline) {
      return endpoints;
    }
    net::sleep_for(20 * kMillisecond);
  }
}

}  // namespace finelb::cluster
