#include "cluster/directory.h"

#include <algorithm>
#include <array>

#include "common/check.h"
#include "common/log.h"
#include "net/clock.h"
#include "net/poller.h"

namespace finelb::cluster {

DirectoryServer::DirectoryServer() { socket_.set_buffer_sizes(1 << 20); }

DirectoryServer::~DirectoryServer() { stop(); }

void DirectoryServer::start() {
  FINELB_CHECK(!running_.exchange(true), "directory already started");
  thread_ = std::thread([this] { recv_loop(); });
}

void DirectoryServer::stop() {
  if (!running_.exchange(false)) return;
  if (thread_.joinable()) thread_.join();
}

net::Address DirectoryServer::address() const {
  return socket_.local_address();
}

std::shared_ptr<const DirectoryServer::Snapshot>
DirectoryServer::load_snapshot() const {
  // Lock-free read path; protocol documented at the member declarations.
  // The pin / re-check pair is seq_cst to close the Dekker race against
  // the writer's flip / drain pair: if the writer's drain loop missed this
  // pin, the total seq_cst order forces the re-check below to observe the
  // flipped version, so the reader retries instead of touching a slot the
  // writer is rewriting.
  for (;;) {
    const std::uint64_t v = version_.load(std::memory_order_acquire);
    const Slot& slot = slots_[v & 1];
    slot.readers.fetch_add(1, std::memory_order_seq_cst);
    if (version_.load(std::memory_order_seq_cst) == v) {
      std::shared_ptr<const Snapshot> snap = slot.snap;
      slot.readers.fetch_sub(1, std::memory_order_release);
      return snap;
    }
    // The writer advanced past v between our load and our pin; it may be
    // rewriting this slot already (it only drains readers that pinned
    // before its flip). Unpin and retry against the new active slot.
    slot.readers.fetch_sub(1, std::memory_order_release);
  }
}

std::vector<net::Publish> DirectoryServer::live_entries(
    const std::string& service) const {
  // Lock-free read: grab the current immutable snapshot and filter. See
  // the guard-discipline comment in the header.
  const std::shared_ptr<const Snapshot> snap = load_snapshot();
  const SimTime now = net::monotonic_now();
  std::vector<net::Publish> out;
  for (const Entry& entry : *snap) {
    if (entry.expires_at <= now) continue;  // expired soft state
    if (!service.empty() && entry.publish.service != service) continue;
    out.push_back(entry.publish);
  }
  return out;
}

void DirectoryServer::republish_locked() {
  auto next = std::make_shared<Snapshot>();
  next->reserve(entries_.size());
  for (const auto& [key, entry] : entries_) next->push_back(entry);
  // Install into the inactive slot, then flip. Writers are serialised by
  // mutex_ (we hold it here), so only readers contend. Draining waits for
  // readers that pinned this slot at least two flips ago — each is mid
  // shared_ptr copy, so the spin is bounded by that copy, not by how long
  // callers keep the returned snapshot alive.
  const std::uint64_t v = version_.load(std::memory_order_relaxed);
  Slot& slot = slots_[(v + 1) & 1];
  while (slot.readers.load(std::memory_order_seq_cst) != 0) {
    // A stale reader is still unpinning; its fetch_sub(release) below
    // synchronises with this acquire-or-stronger load, so the write to
    // slot.snap cannot race the reader's copy.
  }
  slot.snap = std::shared_ptr<const Snapshot>(std::move(next));
  version_.store(v + 1, std::memory_order_seq_cst);
}

void DirectoryServer::recv_loop() {
  net::Poller poller;
  poller.add(socket_.fd(), 0);
  std::array<std::uint8_t, 2048> buf{};
  while (running_.load(std::memory_order_relaxed)) {
    if (poller.wait(50 * kMillisecond).empty()) continue;
    while (auto dgram = socket_.recv_from(buf)) {
      const std::span<const std::uint8_t> data(buf.data(), dgram->size);
      if (data.empty()) continue;  // peek_type throws on empty datagrams
      switch (net::peek_type(data)) {
        case net::MsgType::kPublish: {
          net::Publish publish;
          if (!net::Publish::try_decode(data, publish)) {
            FINELB_LOG(kWarn, "directory") << "dropping malformed publish";
            break;
          }
          const SimTime now = net::monotonic_now();
          std::lock_guard<std::mutex> lock(mutex_);
          Entry& entry = entries_[Key{publish.service, publish.server,
                                      publish.partition}];
          entry.publish = std::move(publish);
          entry.expires_at =
              now +
              static_cast<SimDuration>(entry.publish.ttl_ms) * kMillisecond;
          republish_locked();
          publishes_.fetch_add(1, std::memory_order_relaxed);
          break;
        }
        case net::MsgType::kSnapshotRequest: {
          net::SnapshotRequest request;
          if (!net::SnapshotRequest::try_decode(data, request)) {
            FINELB_LOG(kWarn, "directory") << "dropping malformed snapshot "
                                              "request";
            break;
          }
          net::SnapshotReply reply;
          reply.seq = request.seq;
          reply.entries = live_entries(request.service);
          socket_.send_to(reply.encode(), dgram->from);
          break;
        }
        default:
          FINELB_LOG(kWarn, "directory") << "unexpected message type";
      }
    }
  }
}

DirectoryClient::DirectoryClient(const net::Address& directory,
                                 std::uint64_t seed)
    : directory_(directory), rng_(seed) {
  socket_.connect(directory);
}

void DirectoryClient::attach_fault_injector(
    std::shared_ptr<fault::FaultInjector> injector) {
  socket_.attach_fault_injector(std::move(injector));
}

std::vector<ServiceEndpoint> DirectoryClient::fetch(const std::string& service,
                                                    SimDuration timeout) {
  const SimTime deadline = net::monotonic_now() + timeout;
  net::Poller poller;
  poller.add(socket_.fd(), 0);
  std::array<std::uint8_t, 4096> buf{};
  // Retransmit with exponential backoff: 100 ms base doubling to an 800 ms
  // cap, each interval jittered by +/-25% so a fleet of clients recovering
  // from a directory outage does not resynchronize into bursts.
  SimDuration backoff = 100 * kMillisecond;
  constexpr SimDuration kBackoffCap = 800 * kMillisecond;
  bool first_send = true;
  while (net::monotonic_now() < deadline) {
    net::SnapshotRequest request;
    request.seq = next_seq_++;
    request.service = service;
    socket_.send(request.encode());
    if (!first_send) ++snapshot_retries_;
    first_send = false;
    const auto jittered = static_cast<SimDuration>(
        static_cast<double>(backoff) * rng_.uniform(0.75, 1.25));
    backoff = std::min<SimDuration>(backoff * 2, kBackoffCap);
    const SimTime retry_at =
        std::min<SimTime>(deadline, net::monotonic_now() + jittered);
    while (net::monotonic_now() < retry_at) {
      poller.wait(retry_at - net::monotonic_now());
      while (auto size = socket_.recv(buf)) {
        net::SnapshotReply reply;
        if (!net::SnapshotReply::try_decode(std::span(buf.data(), *size),
                                            reply)) {
          continue;  // malformed; keep waiting
        }
        if (reply.seq != request.seq) continue;  // stale reply
        std::vector<ServiceEndpoint> endpoints;
        endpoints.reserve(reply.entries.size());
        for (const auto& entry : reply.entries) {
          endpoints.push_back({entry.server, entry.partition,
                               net::Address::loopback(entry.service_port),
                               net::Address::loopback(entry.load_port)});
        }
        return endpoints;
      }
    }
  }
  FINELB_CHECK(false, "directory did not answer snapshot request");
  return {};
}

std::vector<ServiceEndpoint> DirectoryClient::wait_for_servers(
    const std::string& service, std::size_t min_servers,
    SimDuration deadline_from_now) {
  const SimTime deadline = net::monotonic_now() + deadline_from_now;
  std::vector<ServiceEndpoint> endpoints;
  for (;;) {
    endpoints = fetch(service);
    if (endpoints.size() >= min_servers || net::monotonic_now() >= deadline) {
      return endpoints;
    }
    net::sleep_for(20 * kMillisecond);
  }
}

}  // namespace finelb::cluster
