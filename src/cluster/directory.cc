#include "cluster/directory.h"

#include <algorithm>
#include <array>

#include "common/check.h"
#include "common/log.h"
#include "net/clock.h"
#include "net/poller.h"

namespace finelb::cluster {

DirectoryServer::DirectoryServer() { socket_.set_buffer_sizes(1 << 20); }

DirectoryServer::~DirectoryServer() { stop(); }

void DirectoryServer::start() {
  FINELB_CHECK(!running_.exchange(true), "directory already started");
  thread_ = std::thread([this] { recv_loop(); });
}

void DirectoryServer::stop() {
  if (!running_.exchange(false)) return;
  if (thread_.joinable()) thread_.join();
}

net::Address DirectoryServer::address() const {
  return socket_.local_address();
}

std::vector<net::Publish> DirectoryServer::live_entries(
    const std::string& service) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return snapshot_locked(service, net::monotonic_now());
}

std::vector<net::Publish> DirectoryServer::snapshot_locked(
    const std::string& service, SimTime now) const {
  std::vector<net::Publish> out;
  for (const auto& [key, entry] : entries_) {
    if (entry.expires_at <= now) continue;  // expired soft state
    if (!service.empty() && entry.publish.service != service) continue;
    out.push_back(entry.publish);
  }
  return out;
}

void DirectoryServer::recv_loop() {
  net::Poller poller;
  poller.add(socket_.fd(), 0);
  std::array<std::uint8_t, 2048> buf{};
  while (running_.load(std::memory_order_relaxed)) {
    if (poller.wait(50 * kMillisecond).empty()) continue;
    while (auto dgram = socket_.recv_from(buf)) {
      const std::span<const std::uint8_t> data(buf.data(), dgram->size);
      try {
        switch (net::peek_type(data)) {
          case net::MsgType::kPublish: {
            const auto publish = net::Publish::decode(data);
            const SimTime now = net::monotonic_now();
            std::lock_guard<std::mutex> lock(mutex_);
            Entry& entry = entries_[Key{publish.service, publish.server,
                                        publish.partition}];
            entry.publish = publish;
            entry.expires_at =
                now + static_cast<SimDuration>(publish.ttl_ms) * kMillisecond;
            publishes_.fetch_add(1, std::memory_order_relaxed);
            break;
          }
          case net::MsgType::kSnapshotRequest: {
            const auto request = net::SnapshotRequest::decode(data);
            net::SnapshotReply reply;
            reply.seq = request.seq;
            {
              std::lock_guard<std::mutex> lock(mutex_);
              reply.entries =
                  snapshot_locked(request.service, net::monotonic_now());
            }
            socket_.send_to(reply.encode(), dgram->from);
            break;
          }
          default:
            FINELB_LOG(kWarn, "directory") << "unexpected message type";
        }
      } catch (const InvariantError&) {
        FINELB_LOG(kWarn, "directory") << "dropping malformed datagram";
      }
    }
  }
}

DirectoryClient::DirectoryClient(const net::Address& directory,
                                 std::uint64_t seed)
    : directory_(directory), rng_(seed) {
  socket_.connect(directory);
}

void DirectoryClient::attach_fault_injector(
    std::shared_ptr<fault::FaultInjector> injector) {
  socket_.attach_fault_injector(std::move(injector));
}

std::vector<ServiceEndpoint> DirectoryClient::fetch(const std::string& service,
                                                    SimDuration timeout) {
  const SimTime deadline = net::monotonic_now() + timeout;
  net::Poller poller;
  poller.add(socket_.fd(), 0);
  std::array<std::uint8_t, 4096> buf{};
  // Retransmit with exponential backoff: 100 ms base doubling to an 800 ms
  // cap, each interval jittered by +/-25% so a fleet of clients recovering
  // from a directory outage does not resynchronize into bursts.
  SimDuration backoff = 100 * kMillisecond;
  constexpr SimDuration kBackoffCap = 800 * kMillisecond;
  bool first_send = true;
  while (net::monotonic_now() < deadline) {
    net::SnapshotRequest request;
    request.seq = next_seq_++;
    request.service = service;
    socket_.send(request.encode());
    if (!first_send) ++snapshot_retries_;
    first_send = false;
    const auto jittered = static_cast<SimDuration>(
        static_cast<double>(backoff) * rng_.uniform(0.75, 1.25));
    backoff = std::min<SimDuration>(backoff * 2, kBackoffCap);
    const SimTime retry_at =
        std::min<SimTime>(deadline, net::monotonic_now() + jittered);
    while (net::monotonic_now() < retry_at) {
      poller.wait(retry_at - net::monotonic_now());
      while (auto size = socket_.recv(buf)) {
        try {
          const auto reply =
              net::SnapshotReply::decode(std::span(buf.data(), *size));
          if (reply.seq != request.seq) continue;  // stale reply
          std::vector<ServiceEndpoint> endpoints;
          endpoints.reserve(reply.entries.size());
          for (const auto& entry : reply.entries) {
            endpoints.push_back(
                {entry.server, entry.partition,
                 net::Address::loopback(entry.service_port),
                 net::Address::loopback(entry.load_port)});
          }
          return endpoints;
        } catch (const InvariantError&) {
          // malformed; keep waiting
        }
      }
    }
  }
  FINELB_CHECK(false, "directory did not answer snapshot request");
  return {};
}

std::vector<ServiceEndpoint> DirectoryClient::wait_for_servers(
    const std::string& service, std::size_t min_servers,
    SimDuration deadline_from_now) {
  const SimTime deadline = net::monotonic_now() + deadline_from_now;
  std::vector<ServiceEndpoint> endpoints;
  for (;;) {
    endpoints = fetch(service);
    if (endpoints.size() >= min_servers || net::monotonic_now() >= deadline) {
      return endpoints;
    }
    net::sleep_for(20 * kMillisecond);
  }
}

}  // namespace finelb::cluster
