#include "cluster/server_node.h"

#include <algorithm>
#include <array>
#include <cmath>

#include "common/check.h"
#include "common/log.h"
#include "cluster/blocking_queue.h"
#include "net/clock.h"
#include "net/poller.h"
#include "telemetry/export.h"

namespace finelb::cluster {

class ServerNode::Queue : public BlockingQueue<WorkItem> {};

ServerNode::ServerNode(ServerOptions options)
    : options_(options),
      trace_(options_.trace_capacity == 0 ? 1 : options_.trace_capacity,
             options_.trace_sample_period),
      queue_(std::make_unique<Queue>()) {
  FINELB_CHECK(options_.worker_threads >= 1, "need at least one worker");
  service_socket_.set_buffer_sizes(1 << 21);
  load_socket_.set_buffer_sizes(1 << 21);
  service_socket_.attach_fault_injector(options_.fault);
  load_socket_.attach_fault_injector(options_.fault);
  m_served_ = metrics_.counter("requests_served");
  m_inquiries_ = metrics_.counter("inquiries_answered");
  m_send_failures_ = metrics_.counter("send_failures");
  m_stats_scrapes_ = metrics_.counter("stats_scrapes");
  m_service_time_ms_ = metrics_.histogram("service_time_ms");
  m_queue_wait_ms_ = metrics_.histogram("queue_wait_ms");
  metrics_.probe("queue_depth",
                 [this] { return qlen_.load(std::memory_order_relaxed); });
  metrics_.probe("max_queue_depth", [this] {
    return max_qlen_.load(std::memory_order_relaxed);
  });
}

ServerNode::~ServerNode() { stop(); }

net::Address ServerNode::service_address() const {
  return service_socket_.local_address();
}

net::Address ServerNode::load_address() const {
  return load_socket_.local_address();
}

void ServerNode::enable_publishing(const net::Address& directory,
                                   std::string service,
                                   std::uint32_t partition,
                                   SimDuration interval, SimDuration ttl) {
  enable_publishing(std::vector<net::Address>{directory}, std::move(service),
                    partition, interval, ttl);
}

void ServerNode::enable_publishing(std::vector<net::Address> directories,
                                   std::string service,
                                   std::uint32_t partition,
                                   SimDuration interval, SimDuration ttl) {
  FINELB_CHECK(!running_.load(), "enable_publishing must precede start()");
  FINELB_CHECK(!directories.empty(), "need at least one directory target");
  FINELB_CHECK(interval > 0 && ttl > 0, "publish interval and ttl required");
  publish_enabled_ = true;
  directories_ = std::move(directories);
  publish_service_ = std::move(service);
  publish_partition_ = partition;
  publish_interval_ = interval;
  publish_ttl_ = ttl;
}

void ServerNode::enable_load_broadcast(const net::Address& channel,
                                       SimDuration mean_interval,
                                       bool jitter) {
  FINELB_CHECK(!started_, "enable_load_broadcast must precede start()");
  FINELB_CHECK(mean_interval > 0, "broadcast interval must be positive");
  broadcast_enabled_ = true;
  broadcast_channel_ = channel;
  broadcast_interval_ = mean_interval;
  broadcast_jitter_ = jitter;
}

void ServerNode::start() {
  FINELB_CHECK(!started_, "server nodes are single-shot: already started");
  started_ = true;
  running_.store(true);
  threads_.emplace_back([this] { service_recv_loop(); });
  threads_.emplace_back([this] { load_recv_loop(); });
  for (int i = 0; i < options_.worker_threads; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
  if (publish_enabled_) {
    threads_.emplace_back([this] { publish_loop(); });
  }
  if (broadcast_enabled_) {
    threads_.emplace_back([this] { broadcast_loop(); });
  }
}

void ServerNode::stop() {
  if (!running_.exchange(false)) return;
  queue_->close();
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
  threads_.clear();
}

void ServerNode::service_recv_loop() {
  net::Poller poller;
  poller.add(service_socket_.fd(), 0);
  net::DatagramBatch batch(32, 256);
  while (running_.load(std::memory_order_relaxed)) {
    if (poller.wait(50 * kMillisecond).empty()) continue;
    // Drain the burst with one recvmmsg per batch instead of one recvfrom
    // per request: under fine-grain load many arrivals pile up per wakeup.
    while (service_socket_.recv_batch(batch) > 0) {
      for (std::size_t i = 0; i < batch.size(); ++i) {
        WorkItem item;
        if (!net::ServiceRequest::try_decode(batch.payload(i), item.request)) {
          FINELB_LOG(kWarn, "server") << "dropping malformed service request";
          continue;
        }
        item.reply_to = batch.address(i);
        item.enqueued_at = net::monotonic_now();
        // Load index covers queued + in-service accesses: increment on
        // acceptance, decrement after the response is sent (worker_loop).
        item.queue_at_arrival = qlen_.fetch_add(1, std::memory_order_relaxed);
        std::int32_t expected = max_qlen_.load(std::memory_order_relaxed);
        const std::int32_t now_len = item.queue_at_arrival + 1;
        while (now_len > expected &&
               !max_qlen_.compare_exchange_weak(expected, now_len)) {
        }
        queue_->push(std::move(item));
      }
    }
  }
}

void ServerNode::load_recv_loop() {
  net::Poller poller;
  poller.add(load_socket_.fd(), 0);
  // Inquiry bursts arrive d-at-a-time (every polling client fans out d
  // inquiries per access): drain and answer them batched, one syscall per
  // burst in each direction.
  net::DatagramBatch inquiries(32, 64);
  net::DatagramBatch replies(32, 64);
  Rng rng(options_.seed * 2654435761u + 17);

  // Replies whose injected busy delay has not elapsed yet. Delays must not
  // be served by sleeping inline: concurrent inquiries would queue behind
  // one another and the delays would compound far beyond the modelled
  // distribution.
  struct DelayedReply {
    std::uint64_t seq;
    std::uint64_t trace_id;
    std::int64_t origin_ns;
    net::Address to;
    SimTime due;
  };
  std::vector<DelayedReply> delayed;

  const auto send_reply = [this](std::uint64_t seq, std::uint64_t trace_id,
                                 std::int64_t origin_ns,
                                 const net::Address& to) {
    net::LoadReply reply;
    reply.seq = seq;
    // Queue length at *reply* time: the paper's slow replies carry stale
    // indexes precisely because the queue moved while they waited.
    reply.queue_length = qlen_.load(std::memory_order_relaxed);
    reply.trace_id = trace_id;
    reply.origin_ns = origin_ns;
    reply.server_ns = net::monotonic_now();
    if (trace_id != 0 && trace_.active()) {
      trace_.record(trace_id, telemetry::TracePoint::kLoadReplied,
                    options_.id, reply.server_ns, reply.queue_length);
    }
    std::array<std::uint8_t, net::kMaxFixedMsgSize> buf;
    const std::size_t n = reply.encode_into(buf);
    if (!load_socket_.send_to({buf.data(), n}, to)) {
      send_failures_.fetch_add(1, std::memory_order_relaxed);
      m_send_failures_.inc();
    }
    inquiries_.fetch_add(1, std::memory_order_relaxed);
    m_inquiries_.inc();
  };

  while (running_.load(std::memory_order_relaxed)) {
    SimDuration wait = 50 * kMillisecond;
    if (!delayed.empty()) {
      SimTime earliest = delayed.front().due;
      for (const DelayedReply& d : delayed) earliest = std::min(earliest, d.due);
      wait = std::clamp<SimDuration>(earliest - net::monotonic_now(), 0, wait);
    }
    poller.wait(wait);
    while (load_socket_.recv_batch(inquiries) > 0) {
      replies.clear();
      // One clock read per drained burst: every reply in the burst carries
      // the same server_ns. Bursts resolve within microseconds, well inside
      // ClockSync's RTT/2 error bound, and the fast path stays one vDSO
      // call per batch instead of one per inquiry.
      const SimTime burst_ns = net::monotonic_now();
      for (std::size_t i = 0; i < inquiries.size(); ++i) {
        net::LoadInquiry inquiry;
        if (!net::LoadInquiry::try_decode(inquiries.payload(i), inquiry)) {
          // Not a load inquiry: the observability pull channel shares this
          // socket, so check for a stats or trace scrape before dropping
          // (cold paths — answering allocates, which is fine off the
          // polling fast path).
          net::StatsInquiry stats;
          if (net::StatsInquiry::try_decode(inquiries.payload(i), stats)) {
            answer_stats_inquiry(stats.seq, inquiries.address(i));
            continue;
          }
          net::TraceInquiry trace_inquiry;
          if (net::TraceInquiry::try_decode(inquiries.payload(i),
                                            trace_inquiry)) {
            answer_trace_inquiry(trace_inquiry, inquiries.address(i));
          }
          continue;
        }
        const std::int32_t qlen = qlen_.load(std::memory_order_relaxed);
        if (options_.inject_busy_reply_delay && qlen > 0) {
          // Scheduler-contention stand-in (see header comment): rare long
          // stall or short heavy-tailed stack delay.
          SimDuration delay = 0;
          if (rng.bernoulli(options_.busy_slow_prob)) {
            delay = std::min<SimDuration>(
                options_.busy_slow_min +
                    static_cast<SimDuration>(rng.exponential(
                        static_cast<double>(options_.busy_slow_excess))),
                options_.busy_slow_cap);
          } else {
            const double u = std::max(1.0 - rng.uniform01(), 1e-12);
            const double delay_ns =
                static_cast<double>(options_.busy_reply_xm) *
                std::pow(u, -1.0 / options_.busy_reply_alpha);
            delay = std::min(static_cast<SimDuration>(delay_ns),
                             options_.busy_reply_cap);
          }
          delayed.push_back({inquiry.seq, inquiry.trace_id, inquiry.origin_ns,
                             inquiries.address(i),
                             net::monotonic_now() + delay});
        } else {
          // Queue length at *reply* time, as in send_reply: batching spans
          // one drained burst, so the index is at most a burst stale.
          net::LoadReply reply;
          reply.seq = inquiry.seq;
          reply.queue_length = qlen;
          reply.trace_id = inquiry.trace_id;
          reply.origin_ns = inquiry.origin_ns;
          reply.server_ns = burst_ns;
          if (inquiry.trace_id != 0 && trace_.active()) {
            trace_.record(inquiry.trace_id,
                          telemetry::TracePoint::kLoadReplied, options_.id,
                          burst_ns, qlen);
          }
          // Encode straight into the batch slot (no intermediate vector or
          // memcpy); fall back to an immediate send when the batch is full.
          const auto slot = replies.stage();
          if (const std::size_t n = reply.encode_into(slot); n > 0) {
            replies.commit(n, inquiries.address(i));
          } else {
            send_reply(inquiry.seq, inquiry.trace_id, inquiry.origin_ns,
                       inquiries.address(i));
          }
        }
      }
      const std::size_t sent = load_socket_.send_batch(replies);
      send_failures_.fetch_add(
          static_cast<std::int64_t>(replies.size() - sent),
          std::memory_order_relaxed);
      m_send_failures_.add(static_cast<std::int64_t>(replies.size() - sent));
      inquiries_.fetch_add(static_cast<std::int64_t>(replies.size()),
                           std::memory_order_relaxed);
      m_inquiries_.add(static_cast<std::int64_t>(replies.size()));
    }
    if (!delayed.empty()) {
      const SimTime now = net::monotonic_now();
      for (std::size_t i = 0; i < delayed.size();) {
        if (delayed[i].due <= now) {
          send_reply(delayed[i].seq, delayed[i].trace_id,
                     delayed[i].origin_ns, delayed[i].to);
          delayed[i] = delayed.back();
          delayed.pop_back();
        } else {
          ++i;
        }
      }
    }
  }
}

void ServerNode::worker_loop() {
  WorkItem item;
  while (true) {
    // Fast path for bursts: grab a queued item without touching the
    // condition variable; only block when the queue is momentarily empty.
    // try_pop's tri-state result distinguishes "empty, fall back to the
    // blocking pop" from "closed and drained, exit" — the old optional
    // API conflated the two and relied on pop() to notice shutdown.
    switch (queue_->try_pop(item)) {
      case PopResult::kItem:
        break;
      case PopResult::kClosed:
        return;
      case PopResult::kEmpty: {
        auto blocked = queue_->pop();
        if (!blocked) return;  // queue closed and drained
        item = std::move(*blocked);
        break;
      }
    }
    const SimTime start = net::monotonic_now();
    const SimDuration queue_wait = start - item.enqueued_at;
    m_queue_wait_ms_.record(static_cast<double>(queue_wait) / 1e6);
    // A wire trace_id means the issuing client sampled this request: record
    // it whenever the ring is live. Requests without propagated context
    // fall back to this node's own sampling period.
    const bool traced =
        (item.request.trace_id != 0 && trace_.active()) ||
        trace_.sampled(item.request.request_id);
    if (traced) {
      trace_.record(item.request.request_id, telemetry::TracePoint::kServiceStart,
                    options_.id, start, queue_wait);
    }
    const SimTime deadline =
        start + static_cast<SimDuration>(item.request.service_us) * kMicrosecond;
    if (options_.spin_service) {
      net::spin_until(deadline);
    } else {
      net::sleep_until(deadline);
    }
    net::ServiceResponse response;
    response.request_id = item.request.request_id;
    response.server = options_.id;
    response.queue_at_arrival = item.queue_at_arrival;
    response.trace_id = item.request.trace_id;
    if (item.request.trace_id != 0) {
      response.server_ns = net::monotonic_now();
    }
    std::array<std::uint8_t, net::kMaxFixedMsgSize> buf;
    const std::size_t n = response.encode_into(buf);
    if (!service_socket_.send_to({buf.data(), n}, item.reply_to)) {
      send_failures_.fetch_add(1, std::memory_order_relaxed);
      m_send_failures_.inc();
    }
    const SimTime done = net::monotonic_now();
    m_service_time_ms_.record(static_cast<double>(done - start) / 1e6);
    if (traced) {
      trace_.record(item.request.request_id, telemetry::TracePoint::kResponse,
                    options_.id, done, item.queue_at_arrival);
    }
    qlen_.fetch_sub(1, std::memory_order_relaxed);
    // Telemetry first: anyone polling counters() for completion then
    // scraping the registry sees the served count already mirrored.
    m_served_.inc();
    served_.fetch_add(1, std::memory_order_relaxed);
  }
}

void ServerNode::publish_loop() {
  net::UdpSocket publish_socket;
  net::Publish announcement;
  announcement.service = publish_service_;
  announcement.partition = publish_partition_;
  announcement.server = options_.id;
  announcement.service_port = service_address().port;
  announcement.load_port = load_address().port;
  announcement.ttl_ms = static_cast<std::uint32_t>(to_ms(publish_ttl_));
  const auto payload = announcement.encode();
  while (running_.load(std::memory_order_relaxed)) {
    for (const net::Address& directory : directories_) {
      publish_socket.send_to(payload, directory);
    }
    // Wake periodically so stop() is honoured promptly even with long
    // publish intervals.
    const SimTime until = net::monotonic_now() + publish_interval_;
    while (running_.load(std::memory_order_relaxed) &&
           net::monotonic_now() < until) {
      net::sleep_for(std::min<SimDuration>(publish_interval_,
                                           20 * kMillisecond));
    }
  }
}

void ServerNode::broadcast_loop() {
  net::UdpSocket broadcast_socket;
  Rng rng(options_.seed * 40503u + 271);
  const auto mean = static_cast<double>(broadcast_interval_);
  while (running_.load(std::memory_order_relaxed)) {
    net::LoadAnnounce announcement;
    announcement.server = options_.id;
    announcement.queue_length = qlen_.load(std::memory_order_relaxed);
    std::array<std::uint8_t, net::kMaxFixedMsgSize> buf;
    const std::size_t n = announcement.encode_into(buf);
    broadcast_socket.send_to({buf.data(), n}, broadcast_channel_);
    const SimDuration interval =
        broadcast_jitter_
            ? static_cast<SimDuration>(rng.uniform(0.5 * mean, 1.5 * mean))
            : broadcast_interval_;
    // Sleep in slices so stop() is honoured promptly at long intervals.
    const SimTime until = net::monotonic_now() + interval;
    while (running_.load(std::memory_order_relaxed) &&
           net::monotonic_now() < until) {
      net::sleep_for(std::min<SimDuration>(until - net::monotonic_now(),
                                           20 * kMillisecond));
    }
  }
}

std::string ServerNode::stats_json() const {
  return telemetry::to_json(
      metrics_.snapshot("server." + std::to_string(options_.id)),
      trace_.snapshot());
}

void ServerNode::answer_stats_inquiry(std::uint64_t seq,
                                      const net::Address& to) {
  m_stats_scrapes_.inc();
  net::StatsReply reply;
  reply.seq = seq;
  reply.payload = stats_json();
  std::vector<std::uint8_t> buf(reply.encoded_size());
  const std::size_t n = reply.encode_into(buf);
  // n == 0 means the snapshot outgrew the wire format's 64 KiB string cap;
  // treat it like a kernel-refused send rather than crashing the node.
  if (n == 0 || !load_socket_.send_to({buf.data(), n}, to)) {
    send_failures_.fetch_add(1, std::memory_order_relaxed);
    m_send_failures_.inc();
  }
}

void ServerNode::answer_trace_inquiry(const net::TraceInquiry& inquiry,
                                      const net::Address& to) {
  // Cold path (allocates): snapshot the ring and return one chunk. The
  // snapshot is re-taken per inquiry, so a scraper walking offsets sees a
  // consistent total only while the ring is quiescent — acceptable for the
  // post-run merge this serves; a live scrape just re-pulls.
  const std::vector<telemetry::TraceRecord> records = trace_.snapshot();
  net::TraceReply reply;
  reply.seq = inquiry.seq;
  reply.node = options_.id;
  reply.server_ns = net::monotonic_now();
  reply.total = static_cast<std::uint32_t>(records.size());
  reply.offset = std::min(inquiry.offset, reply.total);
  const std::size_t end =
      std::min<std::size_t>(records.size(),
                            reply.offset + net::kTraceReplyMaxRecords);
  reply.records.reserve(end - reply.offset);
  for (std::size_t i = reply.offset; i < end; ++i) {
    net::TraceRecordWire rec;
    rec.request_id = records[i].request_id;
    rec.point = static_cast<std::uint8_t>(records[i].point);
    rec.node = records[i].node;
    rec.at_ns = records[i].at_ns;
    rec.detail = records[i].detail;
    reply.records.push_back(rec);
  }
  std::vector<std::uint8_t> buf(reply.encoded_size());
  const std::size_t n = reply.encode_into(buf);
  if (n == 0 || !load_socket_.send_to({buf.data(), n}, to)) {
    send_failures_.fetch_add(1, std::memory_order_relaxed);
    m_send_failures_.inc();
  }
}

ServerCounters ServerNode::counters() const {
  ServerCounters c;
  c.requests_served = served_.load();
  c.inquiries_answered = inquiries_.load();
  c.max_queue_length = max_qlen_.load();
  c.send_failures = send_failures_.load();
  return c;
}

}  // namespace finelb::cluster
