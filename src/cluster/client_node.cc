#include "cluster/client_node.h"

#include <algorithm>
#include <array>

#include "common/check.h"
#include "common/log.h"
#include "net/clock.h"
#include "net/message.h"
#include "telemetry/export.h"

namespace finelb::cluster {
namespace {
constexpr std::uint64_t kServiceTag = 0;
constexpr std::uint64_t kManagerTag = 1;
constexpr std::uint64_t kBroadcastTag = 2;
constexpr std::uint64_t kPollTagBase = 1000;
constexpr std::uint32_t kSubscribeTtlMs = 5000;

// Encodes a fixed-size message onto the stack and sends it; no heap
// traffic, unlike msg.encode() which materialises a vector per send.
template <class Msg, class Send>
bool send_fixed(const Msg& msg, Send&& send) {
  std::array<std::uint8_t, net::kMaxFixedMsgSize> buf;
  const std::size_t n = msg.encode_into(buf);
  return send(std::span<const std::uint8_t>(buf.data(), n));
}
}  // namespace

void ClientStats::merge(const ClientStats& other) {
  response_ms.merge(other.response_ms);
  response_hist_ms.merge(other.response_hist_ms);
  poll_time_ms.merge(other.poll_time_ms);
  poll_rtt_ms.merge(other.poll_rtt_ms);
  queue_at_arrival.merge(other.queue_at_arrival);
  issued += other.issued;
  completed += other.completed;
  recorded += other.recorded;
  polls_sent += other.polls_sent;
  poll_replies_used += other.poll_replies_used;
  polls_discarded += other.polls_discarded;
  polls_timed_out += other.polls_timed_out;
  manager_timeouts += other.manager_timeouts;
  response_timeouts += other.response_timeouts;
  send_failures += other.send_failures;
  broadcasts_received += other.broadcasts_received;
  fallback_dispatches += other.fallback_dispatches;
  access_retries += other.access_retries;
  blacklist_insertions += other.blacklist_insertions;
  blacklist_hits += other.blacklist_hits;
  mapping_refreshes += other.mapping_refreshes;
  refresh_failures += other.refresh_failures;
  snapshot_retries += other.snapshot_retries;
  directory_failovers += other.directory_failovers;
  directory_redirects += other.directory_redirects;
  if (timeline.size() < other.timeline.size()) {
    timeline.resize(other.timeline.size());
  }
  for (std::size_t i = 0; i < other.timeline.size(); ++i) {
    timeline[i].completed += other.timeline[i].completed;
    timeline[i].failed += other.timeline[i].failed;
    timeline[i].sum_response_ms += other.timeline[i].sum_response_ms;
  }
}

ClientNode::ClientNode(ClientOptions options,
                       std::unique_ptr<RequestSource> source)
    : options_(std::move(options)),
      source_(std::move(source)),
      rng_(options_.seed),
      trace_(options_.trace_capacity == 0 ? 1 : options_.trace_capacity,
             options_.trace_sample_period),
      decision_ring_(
          options_.decision_capacity == 0 ? 1 : options_.decision_capacity,
          options_.decision_sample_period) {
  FINELB_CHECK(!options_.servers.empty(), "client needs at least one server");
  FINELB_CHECK(options_.total_requests > 0, "nothing to do");
  FINELB_CHECK(source_ != nullptr, "client needs a request source");
  if (options_.policy.kind == PolicyKind::kIdeal) {
    FINELB_CHECK(options_.ideal_manager.has_value(),
                 "ideal policy requires a load-index manager address");
  }
  if (options_.policy.kind == PolicyKind::kBroadcast) {
    FINELB_CHECK(options_.broadcast_channel.has_value(),
                 "broadcast policy requires a broadcast channel address");
  }

  m_issued_ = metrics_.counter("requests_issued");
  m_completed_ = metrics_.counter("requests_completed");
  m_polls_sent_ = metrics_.counter("polls_sent");
  m_polls_discarded_ = metrics_.counter("polls_discarded");
  m_polls_timed_out_ = metrics_.counter("polls_timed_out");
  m_fallback_dispatches_ = metrics_.counter("fallback_dispatches");
  m_response_timeouts_ = metrics_.counter("response_timeouts");
  m_send_failures_ = metrics_.counter("send_failures");
  m_blacklist_insertions_ = metrics_.counter("blacklist_insertions");
  m_blacklist_hits_ = metrics_.counter("blacklist_hits");
  m_poll_rtt_ms_ = metrics_.histogram("poll_rtt_ms");
  m_response_time_ms_ = metrics_.histogram("response_time_ms");
  m_poll_time_ms_ = metrics_.histogram("poll_time_ms");
  // In-flight depth as a plain gauge (issued - resolved), not a probe into
  // the event loop's vectors: probes run on the scraping thread, and the
  // round/outstanding containers are loop-private. Counter subtraction keeps
  // the scrape race-free.
  metrics_.probe("requests_in_flight", [this] {
    return m_in_flight_.load(std::memory_order_relaxed);
  });

  server_ids_.reserve(options_.servers.size());
  for (const auto& server : options_.servers) {
    server_ids_.push_back(server.id);
  }
  endpoint_live_.assign(options_.servers.size(), 1);
  consecutive_timeouts_.assign(options_.servers.size(), 0);

  service_socket_.set_buffer_sizes(1 << 21);
  service_socket_.attach_fault_injector(options_.fault);
  poller_.add(service_socket_.fd(), kServiceTag);

  poll_sockets_.reserve(options_.servers.size());
  for (std::size_t i = 0; i < options_.servers.size(); ++i) {
    poll_sockets_.emplace_back();
    poll_sockets_.back().connect(options_.servers[i].load_addr);
    poll_sockets_.back().attach_fault_injector(options_.fault);
    poller_.add(poll_sockets_.back().fd(), kPollTagBase + i);
  }

  if ((options_.directory || !options_.directory_replicas.empty()) &&
      options_.mapping_refresh > 0) {
    std::vector<net::Address> replicas = options_.directory_replicas;
    if (replicas.empty()) replicas.push_back(*options_.directory);
    directory_client_ = std::make_unique<DirectoryClient>(
        std::move(replicas), options_.seed + 77);
    directory_client_->attach_fault_injector(options_.fault);
    mapping_refresh_interval_ = options_.mapping_refresh;
  }

  if (options_.ideal_manager) {
    manager_socket_ = std::make_unique<net::UdpSocket>();
    manager_socket_->connect(*options_.ideal_manager);
    poller_.add(manager_socket_->fd(), kManagerTag);
  }

  if (options_.broadcast_channel) {
    broadcast_socket_ = std::make_unique<net::UdpSocket>();
    broadcast_socket_->set_buffer_sizes(1 << 21);
    broadcast_socket_->connect(*options_.broadcast_channel);
    poller_.add(broadcast_socket_->fd(), kBroadcastTag);
    broadcast_table_ = std::make_unique<LoadCache>(options_.servers.size());
    for (std::size_t i = 0; i < options_.servers.size(); ++i) {
      // ServerLoad.server holds the endpoint *index* (as in poll replies).
      broadcast_table_->store(i, {static_cast<ServerId>(i), 0, 0});
    }
    net::Subscribe subscribe;
    subscribe.ttl_ms = kSubscribeTtlMs;
    if (!send_fixed(subscribe, [&](auto p) { return broadcast_socket_->send(p); })) {
      ++stats_.send_failures;
    }
    subscribe_refresh_at_ =
        net::monotonic_now() +
        static_cast<SimDuration>(kSubscribeTtlMs / 2) * kMillisecond;
  }
}

void ClientNode::run() {
  TraceRecord pending = source_->next();
  run_started_at_ = net::monotonic_now();
  SimTime next_arrival = run_started_at_ + pending.arrival_interval;
  next_mapping_refresh_ = run_started_at_ + mapping_refresh_interval_;

  while (resolved_ < options_.total_requests) {
    SimTime now = net::monotonic_now();

    // Re-pull the service mapping so endpoints whose soft state expired
    // stop receiving work (failure hardening; off unless configured).
    if (directory_client_ && now >= next_mapping_refresh_) {
      refresh_mapping(now);
      now = net::monotonic_now();
    }

    // Keep the broadcast-channel subscription alive (soft state).
    if (broadcast_socket_ && now >= subscribe_refresh_at_) {
      net::Subscribe subscribe;
      subscribe.ttl_ms = kSubscribeTtlMs;
      if (!send_fixed(subscribe,
                      [&](auto p) { return broadcast_socket_->send(p); })) {
        ++stats_.send_failures;
      }
      subscribe_refresh_at_ =
          now + static_cast<SimDuration>(kSubscribeTtlMs / 2) * kMillisecond;
    }

    // Fire due arrivals (possibly several if the loop fell behind).
    while (stats_.issued < options_.total_requests && next_arrival <= now) {
      Access access;
      access.index = stats_.issued++;
      access.started_at = now;
      access.service_us = static_cast<std::uint32_t>(
          pending.service_time / kMicrosecond);
      begin_access(access);
      pending = source_->next();
      next_arrival += pending.arrival_interval;
      now = net::monotonic_now();
    }

    fire_deadlines(now);

    // Wait for the earliest of: next arrival, any round/response deadline.
    const auto deadline = next_deadline(
        stats_.issued < options_.total_requests ? next_arrival : -1);
    SimDuration wait = 100 * kMillisecond;
    if (deadline) {
      wait = std::clamp<SimDuration>(*deadline - net::monotonic_now(), 0,
                                     wait);
    }
    for (const net::Ready& ready : poller_.wait(wait)) {
      if (!ready.readable && !ready.error) continue;
      if (ready.tag == kServiceTag) {
        drain_service_socket();
      } else if (ready.tag == kManagerTag) {
        drain_manager_socket();
      } else if (ready.tag == kBroadcastTag) {
        drain_broadcast_socket();
      } else {
        drain_poll_socket(static_cast<std::size_t>(ready.tag - kPollTagBase));
      }
    }
  }
}

void ClientNode::refresh_mapping(SimTime now) {
  ++stats_.mapping_refreshes;
  // Non-throwing fetch: a refresh that straddles a directory election (or
  // outage) must degrade to the stale-but-recent mapping we already hold,
  // not tear down the whole client.
  auto fetched = directory_client_->try_fetch(options_.directory_service,
                                              /*timeout=*/200 * kMillisecond);
  if (!fetched) {
    ++stats_.refresh_failures;
    // Directory outage: back off (with jitter) instead of hammering it —
    // doubled interval, capped at 8x the configured period.
    mapping_refresh_interval_ = std::min<SimDuration>(
        mapping_refresh_interval_ * 2, options_.mapping_refresh * 8);
  } else {
    const std::vector<ServiceEndpoint>& snapshot = *fetched;
    mapping_refresh_interval_ = options_.mapping_refresh;
    std::fill(endpoint_live_.begin(), endpoint_live_.end(), 0);
    for (const auto& entry : snapshot) {
      for (std::size_t i = 0; i < options_.servers.size(); ++i) {
        if (options_.servers[i].id == entry.server) {
          endpoint_live_[i] = 1;
          break;
        }
      }
    }
    // An empty snapshot means the directory lost *all* soft state (e.g. it
    // restarted); treat everyone as live rather than dispatching nowhere.
    bool any = false;
    for (const std::uint8_t live : endpoint_live_) any |= live != 0;
    if (!any) std::fill(endpoint_live_.begin(), endpoint_live_.end(), 1);
  }
  stats_.snapshot_retries = directory_client_->snapshot_retries();
  stats_.directory_failovers = directory_client_->failovers();
  stats_.directory_redirects = directory_client_->redirects_followed();
  const double jitter = rng_.uniform(0.75, 1.25);
  next_mapping_refresh_ =
      now + static_cast<SimDuration>(
                static_cast<double>(mapping_refresh_interval_) * jitter);
}

std::span<const ServerId> ClientNode::candidate_indices(SimTime now) {
  std::vector<ServerId>& live = candidate_scratch_;
  live.clear();
  for (std::size_t i = 0; i < options_.servers.size(); ++i) {
    if (endpoint_live_[i]) live.push_back(static_cast<ServerId>(i));
  }
  if (live.empty()) {
    for (std::size_t i = 0; i < options_.servers.size(); ++i) {
      live.push_back(static_cast<ServerId>(i));
    }
  }
  if (options_.blacklist_cooldown > 0) {
    const std::int64_t hits_before = blacklist_.hits();
    blacklist_.filter_in_place(live, now);
    const std::int64_t hits = blacklist_.hits() - hits_before;
    stats_.blacklist_hits += hits;
    if (hits > 0) m_blacklist_hits_.add(hits);
  }
  return live;
}

void ClientNode::mark_failed(std::size_t server_index, SimTime now) {
  if (options_.blacklist_cooldown <= 0) return;
  if (++consecutive_timeouts_[server_index] >= options_.blacklist_after) {
    blacklist_.add(server_index, now + options_.blacklist_cooldown);
    ++stats_.blacklist_insertions;
    m_blacklist_insertions_.inc();
  }
}

void ClientNode::record_outcome(SimTime now, bool completed,
                                double response_ms) {
  if (options_.timeline_bucket <= 0) return;
  const auto bucket = static_cast<std::size_t>(
      std::max<SimTime>(now - run_started_at_, 0) / options_.timeline_bucket);
  if (stats_.timeline.size() <= bucket) stats_.timeline.resize(bucket + 1);
  if (completed) {
    ++stats_.timeline[bucket].completed;
    stats_.timeline[bucket].sum_response_ms += response_ms;
  } else {
    ++stats_.timeline[bucket].failed;
  }
}

void ClientNode::begin_access(const Access& access) {
  m_issued_.inc();
  m_in_flight_.fetch_add(1, std::memory_order_relaxed);
  if (trace_.sampled(static_cast<std::uint64_t>(access.index))) {
    trace_.record(request_key(access.index),
                  telemetry::TracePoint::kClientEnqueue, /*node=*/-1,
                  access.started_at, access.service_us);
  }
  switch (options_.policy.kind) {
    case PolicyKind::kRandom: {
      const auto candidates = candidate_indices(access.started_at);
      dispatch(access, static_cast<std::size_t>(
                           pick_random(candidates, rng_)));
      break;
    }
    case PolicyKind::kRoundRobin: {
      const ServerId id = rr_.next(server_ids_);
      for (std::size_t i = 0; i < server_ids_.size(); ++i) {
        if (server_ids_[i] == id) {
          dispatch(access, i);
          break;
        }
      }
      break;
    }
    case PolicyKind::kPolling:
      start_poll_round(access);
      break;
    case PolicyKind::kIdeal: {
      const std::uint64_t seq = next_seq_++;
      net::Acquire acquire;
      acquire.seq = seq;
      if (!send_fixed(acquire,
                      [&](auto p) { return manager_socket_->send(p); })) {
        ++stats_.send_failures;
        ++stats_.manager_timeouts;
        dispatch(access, rng_.uniform_int(options_.servers.size()));
        return;
      }
      ManagerRound round;
      round.seq = seq;
      round.access = access;
      round.deadline = access.started_at + options_.manager_timeout;
      manager_rounds_.push_back(round);
      break;
    }
    case PolicyKind::kBroadcast: {
      broadcast_table_->snapshot(load_scratch_);
      const ServerId index = pick_least_loaded(load_scratch_, rng_);
      if (options_.policy.optimistic_increment) {
        ServerLoad entry =
            broadcast_table_->load(static_cast<std::size_t>(index));
        ++entry.queue_length;
        broadcast_table_->store(static_cast<std::size_t>(index), entry);
      }
      dispatch(access, static_cast<std::size_t>(index));
      break;
    }
  }
}

void ClientNode::start_poll_round(const Access& access) {
  const std::uint64_t seq = next_seq_++;
  // Recycle a retired round so its targets/replies capacity carries over;
  // after warm-up every round runs without touching the allocator.
  PollRound round;
  if (!poll_round_pool_.empty()) {
    round = std::move(poll_round_pool_.back());
    poll_round_pool_.pop_back();
    round.targets.clear();
    round.replies.clear();
  }
  round.seq = seq;
  round.access = access;
  round.sent_at = access.started_at;
  const SimDuration wait = options_.policy.discard_timeout > 0
                               ? options_.policy.discard_timeout
                               : options_.max_poll_wait;
  round.deadline = access.started_at + wait;

  // Choose poll targets as indices into the endpoint table, restricted to
  // endpoints currently believed live (mapping + blacklist).
  const auto index_pool = candidate_indices(access.started_at);
  choose_poll_set_into(index_pool,
                       static_cast<std::size_t>(options_.policy.poll_size),
                       rng_, round.targets);

  net::LoadInquiry inquiry;
  inquiry.seq = seq;
  const bool traced = trace_.sampled(static_cast<std::uint64_t>(access.index));
  if (traced) {
    // Propagate the trace context: the server answers a traced inquiry with
    // a kLoadReplied record under the same id, pinning t_reply on its clock.
    inquiry.trace_id = request_key(access.index);
    inquiry.origin_ns = access.started_at;
  }
  std::array<std::uint8_t, net::kMaxFixedMsgSize> buf;
  const std::size_t n = inquiry.encode_into(buf);
  const std::span<const std::uint8_t> payload(buf.data(), n);
  for (const ServerId target : round.targets) {
    if (poll_sockets_[static_cast<std::size_t>(target)].send(payload)) {
      ++stats_.polls_sent;
      m_polls_sent_.inc();
    } else {
      ++stats_.send_failures;
      m_send_failures_.inc();
    }
  }
  if (traced) {
    trace_.record(request_key(access.index),
                  telemetry::TracePoint::kPollSent, /*node=*/-1,
                  access.started_at,
                  static_cast<std::int64_t>(round.targets.size()));
  }
  poll_rounds_.push_back(std::move(round));
}

void ClientNode::finish_poll_round(std::size_t index) {
  PollRound& round = poll_rounds_[index];
  const SimTime now = net::monotonic_now();
  if (should_record(round.access)) {
    const double ms = to_ms(now - round.access.started_at);
    stats_.poll_time_ms.add(ms);
    m_poll_time_ms_.record(ms);
  }
  std::size_t target = 0;
  // Audit context for the core/selection.h choke point: the decision lands
  // in the ring keyed by the same request id as the trace records, so the
  // post-run join can look up what actually happened to it. RNG consumption
  // is identical to the unrecorded overloads.
  DecisionContext ctx;
  ctx.request_id = request_key(round.access.index);
  ctx.now_ns = now;
  ctx.sink =
      decision_ring_.sampled(static_cast<std::uint64_t>(round.access.index))
          ? decision_ring_.sink()
          : nullptr;
  if (round.replies.empty()) {
    // Every inquiry (or every reply) was lost: dispatch blind. Prefer the
    // current candidate set over the polled targets — if the targets were
    // since blacklisted or dropped from the mapping, re-picking among them
    // would just hit the same dead servers again.
    ++stats_.fallback_dispatches;
    m_fallback_dispatches_.inc();
    const std::int64_t hits_before = blacklist_.hits();
    const auto candidates = candidate_indices(now);
    ctx.blacklist_filtered = static_cast<std::uint8_t>(
        std::clamp<std::int64_t>(blacklist_.hits() - hits_before, 0, 255));
    target = static_cast<std::size_t>(
        pick_random_fallback(candidates, rng_, ctx));
  } else {
    // ServerLoad.server holds endpoint *indices* here (see
    // drain_poll_socket), so the selection result is directly usable.
    target = static_cast<std::size_t>(
        pick_least_loaded(round.replies, rng_, ctx));
    stats_.poll_replies_used +=
        static_cast<std::int64_t>(round.replies.size());
  }
  const Access access = round.access;
  if (trace_.sampled(static_cast<std::uint64_t>(access.index))) {
    trace_.record(request_key(access.index),
                  telemetry::TracePoint::kServerPick,
                  static_cast<std::int32_t>(target), now,
                  static_cast<std::int64_t>(round.replies.size()));
  }
  // Swap-remove and retire to the pool (keeps the inner vectors' capacity)
  // before dispatch(), which may itself touch the round containers.
  poll_round_pool_.push_back(std::move(poll_rounds_[index]));
  poll_rounds_[index] = std::move(poll_rounds_.back());
  poll_rounds_.pop_back();
  dispatch(access, target);
}

void ClientNode::dispatch(const Access& access, std::size_t server_index,
                          bool manager_acquired) {
  const std::uint64_t request_id = request_key(access.index);
  net::ServiceRequest request;
  request.request_id = request_id;
  request.service_us = access.service_us;
  request.partition = 0;
  const auto dest = options_.servers[server_index].service_addr;
  if (trace_.sampled(static_cast<std::uint64_t>(access.index))) {
    const SimTime now = net::monotonic_now();
    // Propagated context: the server traces kServiceStart/kResponse under
    // the same id regardless of its own sampling period.
    request.trace_id = request_id;
    request.origin_ns = now;
    trace_.record(request_id, telemetry::TracePoint::kDispatch,
                  static_cast<std::int32_t>(server_index), now,
                  access.attempt);
  }
  if (!send_fixed(request,
                  [&](auto p) { return service_socket_.send_to(p, dest); })) {
    ++stats_.send_failures;
    m_send_failures_.inc();
    ++stats_.response_timeouts;  // counts as a failed access
    m_response_timeouts_.inc();
    ++resolved_;
    m_in_flight_.fetch_sub(1, std::memory_order_relaxed);
    record_outcome(net::monotonic_now(), /*completed=*/false, 0.0);
    if (manager_acquired) release_manager_slot(server_index);
    return;
  }
  Outstanding out;
  out.request_id = request_id;
  out.access = access;
  out.server_index = server_index;
  out.deadline = net::monotonic_now() + options_.response_timeout;
  out.manager_acquired = manager_acquired;
  outstanding_.push_back(out);
}

void ClientNode::drain_service_socket() {
  while (service_socket_.recv_batch(recv_batch_) > 0) {
    for (std::size_t d = 0; d < recv_batch_.size(); ++d) {
      net::ServiceResponse response;
      if (!net::ServiceResponse::try_decode(recv_batch_.payload(d),
                                            response)) {
        // The service socket doubles as the decision-scrape endpoint:
        // clients own no load socket, so DECISION_INQUIRY pulls land here.
        net::DecisionInquiry inquiry;
        if (net::DecisionInquiry::try_decode(recv_batch_.payload(d),
                                             inquiry)) {
          answer_decision_inquiry(inquiry.seq, inquiry.offset,
                                  recv_batch_.address(d));
        }
        continue;
      }
      std::size_t idx = outstanding_.size();
      for (std::size_t i = 0; i < outstanding_.size(); ++i) {
        if (outstanding_[i].request_id == response.request_id) {
          idx = i;
          break;
        }
      }
      if (idx == outstanding_.size()) continue;  // answered after timeout
      const Outstanding& out = outstanding_[idx];
      const SimTime now = net::monotonic_now();
      const double rt_ms = to_ms(now - out.access.started_at);
      if (should_record(out.access)) {
        stats_.response_ms.add(rt_ms);
        stats_.response_hist_ms.add(rt_ms);
        stats_.queue_at_arrival.add(response.queue_at_arrival);
        ++stats_.recorded;
        m_response_time_ms_.record(rt_ms);
      }
      if (trace_.sampled(static_cast<std::uint64_t>(out.access.index))) {
        trace_.record(request_key(out.access.index),
                      telemetry::TracePoint::kResponse,
                      static_cast<std::int32_t>(out.server_index), now,
                      response.queue_at_arrival);
      }
      record_outcome(now, /*completed=*/true, rt_ms);
      consecutive_timeouts_[out.server_index] = 0;
      ++stats_.completed;
      m_completed_.inc();
      ++resolved_;
      m_in_flight_.fetch_sub(1, std::memory_order_relaxed);
      if (out.manager_acquired) release_manager_slot(out.server_index);
      outstanding_[idx] = outstanding_.back();
      outstanding_.pop_back();
    }
  }
}

void ClientNode::answer_decision_inquiry(std::uint64_t seq,
                                         std::uint32_t offset,
                                         const net::Address& to) {
  // Cold path (allocates), mirroring the server's trace inquiry answer: the
  // ring is snapshotted per inquiry and returned one chunk at a time, so a
  // scraper walking offsets sees a consistent total only while the ring is
  // quiescent — fine for the post-run pull this serves.
  const std::vector<DecisionRecord> records = decision_ring_.snapshot();
  net::DecisionReply reply;
  reply.seq = seq;
  reply.node = options_.id;
  reply.server_ns = net::monotonic_now();
  reply.total = static_cast<std::uint32_t>(records.size());
  reply.offset = std::min(offset, reply.total);
  const std::size_t end = std::min<std::size_t>(
      records.size(), reply.offset + net::kDecisionReplyMaxRecords);
  reply.records.reserve(end - reply.offset);
  for (std::size_t i = reply.offset; i < end; ++i) {
    const DecisionRecord& rec = records[i];
    net::DecisionRecordWire wire;
    wire.request_id = rec.request_id;
    wire.at_ns = rec.at_ns;
    wire.chosen = rec.chosen;
    wire.polled_count = rec.polled_count;
    wire.flags = rec.blind_fallback ? 1 : 0;
    wire.blacklist_filtered = rec.blacklist_filtered;
    for (std::size_t p = 0;
         p < rec.polled_count && p < net::kDecisionWirePollMax; ++p) {
      wire.polled[p].server = rec.polled[p].server;
      wire.polled[p].queue_length = rec.polled[p].queue_length;
      wire.polled[p].age_ns = rec.polled[p].age_ns;
    }
    reply.records.push_back(wire);
  }
  std::vector<std::uint8_t> buf(reply.encoded_size());
  const std::size_t n = reply.encode_into(buf);
  if (n == 0 || !service_socket_.send_to({buf.data(), n}, to)) {
    ++stats_.send_failures;
    m_send_failures_.inc();
  }
}

void ClientNode::drain_manager_socket() {
  std::array<std::uint8_t, 64> buf{};
  while (auto size = manager_socket_->recv(buf)) {
    net::AcquireReply reply;
    if (!net::AcquireReply::try_decode(std::span(buf.data(), *size), reply)) {
      continue;
    }
    std::size_t idx = manager_rounds_.size();
    for (std::size_t i = 0; i < manager_rounds_.size(); ++i) {
      if (manager_rounds_[i].seq == reply.seq) {
        idx = i;
        break;
      }
    }
    if (idx == manager_rounds_.size()) continue;  // fallback already taken
    const Access access = manager_rounds_[idx].access;
    manager_rounds_[idx] = manager_rounds_.back();
    manager_rounds_.pop_back();
    // Map the manager's server id back to an endpoint index.
    std::size_t index = options_.servers.size();
    for (std::size_t i = 0; i < options_.servers.size(); ++i) {
      if (options_.servers[i].id == reply.server) {
        index = i;
        break;
      }
    }
    if (index == options_.servers.size()) {
      FINELB_LOG(kWarn, "client") << "manager chose unknown server "
                                  << reply.server;
      index = rng_.uniform_int(options_.servers.size());
    }
    if (should_record(access)) {
      stats_.poll_time_ms.add(to_ms(net::monotonic_now() - access.started_at));
    }
    dispatch(access, index, /*manager_acquired=*/true);
  }
}

void ClientNode::drain_broadcast_socket() {
  std::array<std::uint8_t, 64> buf{};
  while (auto size = broadcast_socket_->recv(buf)) {
    net::LoadAnnounce announcement;
    if (!net::LoadAnnounce::try_decode(std::span(buf.data(), *size),
                                       announcement)) {
      continue;
    }
    for (std::size_t i = 0; i < options_.servers.size(); ++i) {
      if (options_.servers[i].id == announcement.server) {
        broadcast_table_->store(i, {static_cast<ServerId>(i),
                                    announcement.queue_length,
                                    net::monotonic_now()});
        ++stats_.broadcasts_received;
        break;
      }
    }
  }
}

void ClientNode::drain_poll_socket(std::size_t server_index) {
  while (poll_sockets_[server_index].recv_batch(recv_batch_) > 0) {
    for (std::size_t d = 0; d < recv_batch_.size(); ++d) {
      net::LoadReply reply;
      if (!net::LoadReply::try_decode(recv_batch_.payload(d), reply)) {
        continue;
      }
      std::size_t idx = poll_rounds_.size();
      for (std::size_t i = 0; i < poll_rounds_.size(); ++i) {
        if (poll_rounds_[i].seq == reply.seq) {
          idx = i;
          break;
        }
      }
      if (idx == poll_rounds_.size()) {
        ++stats_.polls_discarded;  // reply arrived after the round was decided
        m_polls_discarded_.inc();
        // The owning round is gone, but the reply echoes its trace id, so a
        // traced request's late replies still land under the right key
        // (untraced rounds fall back to sequence-sampled discards).
        if (reply.trace_id != 0 ? trace_.active()
                                : trace_.sampled(reply.seq)) {
          trace_.record(reply.trace_id != 0 ? reply.trace_id : reply.seq,
                        telemetry::TracePoint::kPollDiscard,
                        static_cast<std::int32_t>(server_index),
                        net::monotonic_now(), reply.queue_length);
        }
        continue;
      }
      PollRound& round = poll_rounds_[idx];
      if (should_record(round.access)) {
        const double rtt_ms = to_ms(net::monotonic_now() - round.sent_at);
        stats_.poll_rtt_ms.add(rtt_ms);
        m_poll_rtt_ms_.record(rtt_ms);
      }
      if (trace_.sampled(static_cast<std::uint64_t>(round.access.index))) {
        trace_.record(request_key(round.access.index),
                      telemetry::TracePoint::kPollReply,
                      static_cast<std::int32_t>(server_index),
                      net::monotonic_now(), reply.queue_length);
      }
      // Store the endpoint *index* in the server field so the least-loaded
      // pick can be used directly (ids and indices coincide in experiments,
      // but examples may use sparse ids).
      round.replies.push_back({static_cast<ServerId>(server_index),
                               reply.queue_length, net::monotonic_now()});
      if (round.replies.size() == round.targets.size()) {
        finish_poll_round(idx);
      }
    }
  }
}

void ClientNode::fire_deadlines(SimTime now) {
  // All three scans swap-remove while iterating: on removal the back
  // element lands at the current index and is re-examined, so the index
  // only advances when the current entry survives.

  // Poll rounds past their deadline: decide with whatever arrived.
  for (std::size_t i = 0; i < poll_rounds_.size();) {
    if (poll_rounds_[i].deadline <= now) {
      ++stats_.polls_timed_out;
      m_polls_timed_out_.inc();
      finish_poll_round(i);  // swap-removes index i
    } else {
      ++i;
    }
  }
  // Manager rounds past their deadline: fall back to a random server.
  for (std::size_t i = 0; i < manager_rounds_.size();) {
    if (manager_rounds_[i].deadline <= now) {
      const Access access = manager_rounds_[i].access;
      manager_rounds_[i] = manager_rounds_.back();
      manager_rounds_.pop_back();
      ++stats_.manager_timeouts;
      dispatch(access, rng_.uniform_int(options_.servers.size()));
    } else {
      ++i;
    }
  }
  // Accesses the servers never answered. A manager-granted slot must be
  // handed back even though the access failed, or the IDEAL manager's
  // queue counts would drift upward forever.
  for (std::size_t i = 0; i < outstanding_.size();) {
    if (outstanding_[i].deadline <= now) {
      const std::size_t server_index = outstanding_[i].server_index;
      const bool manager_acquired = outstanding_[i].manager_acquired;
      Access access = outstanding_[i].access;
      outstanding_[i] = outstanding_.back();
      outstanding_.pop_back();
      if (manager_acquired) release_manager_slot(server_index);
      mark_failed(server_index, now);
      if (access.attempt < options_.max_access_retries) {
        // Re-dispatch to a fresh candidate (the failing server was just
        // blacklisted). started_at is kept, so a retried access's response
        // time honestly includes the timeout it waited through; the request
        // id is reused, so a late answer from the first attempt still
        // completes the access. The retry appends to outstanding_ with a
        // future deadline, so this scan skips it if it swaps into reach.
        ++access.attempt;
        ++stats_.access_retries;
        dispatch(access, static_cast<std::size_t>(
                             pick_random(candidate_indices(now), rng_)));
      } else {
        record_outcome(now, /*completed=*/false, 0.0);
        ++stats_.response_timeouts;
        m_response_timeouts_.inc();
        ++resolved_;
        m_in_flight_.fetch_sub(1, std::memory_order_relaxed);
      }
    } else {
      ++i;
    }
  }
}

void ClientNode::release_manager_slot(std::size_t server_index) {
  net::Release release;
  release.server = options_.servers[server_index].id;
  if (!send_fixed(release, [&](auto p) { return manager_socket_->send(p); })) {
    ++stats_.send_failures;
  }
}

std::string ClientNode::stats_json() const {
  return telemetry::to_json(
      metrics_.snapshot("client." + std::to_string(options_.id)),
      trace_.snapshot());
}

std::optional<SimTime> ClientNode::next_deadline(SimTime next_arrival) const {
  std::optional<SimTime> best;
  const auto consider = [&best](SimTime t) {
    if (!best || t < *best) best = t;
  };
  if (next_arrival >= 0) consider(next_arrival);
  for (const PollRound& round : poll_rounds_) consider(round.deadline);
  for (const ManagerRound& round : manager_rounds_) consider(round.deadline);
  for (const Outstanding& out : outstanding_) consider(out.deadline);
  return best;
}

}  // namespace finelb::cluster
