// Centralized load-index manager (paper §4's IDEAL emulation).
//
// "A centralized load index manager ... keeps track of all server load
// indices. Each client contacts the load index manager whenever a service
// access is to be made. The load index manager returns the server with the
// shortest service queue and increments that queue length by one. Upon
// finishing one service access, each client is required to contact the load
// index manager again so that the corresponding server queue length can be
// properly decremented."
//
// The manager is intentionally *not* a recommended production policy — it
// is the oracle baseline, with the single point of failure the paper's
// distributed policies avoid.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "fault/fault.h"
#include "net/socket.h"

namespace finelb::cluster {

class IdealManager {
 public:
  /// Tracks servers 0..server_count-1.
  explicit IdealManager(int server_count, std::uint64_t seed = 1);
  ~IdealManager();

  IdealManager(const IdealManager&) = delete;
  IdealManager& operator=(const IdealManager&) = delete;

  void start();
  void stop();

  /// Optional loss/dup/delay injection on the acquire/release socket, so
  /// fault schedules cover the oracle path the same way they cover the
  /// directory and poll sockets. Attach before start().
  void attach_fault_injector(std::shared_ptr<fault::FaultInjector> injector);

  net::Address address() const;

  /// Current tracked queue lengths (for tests/diagnostics).
  std::vector<std::int32_t> tracked_queues() const;

  std::int64_t acquires() const { return acquires_.load(); }
  std::int64_t releases() const { return releases_.load(); }

 private:
  void recv_loop();

  net::UdpSocket socket_;
  std::atomic<bool> running_{false};
  std::thread thread_;
  mutable std::mutex mutex_;
  std::vector<std::int32_t> queues_;
  Rng rng_;
  std::atomic<std::int64_t> acquires_{0};
  std::atomic<std::int64_t> releases_{0};
};

}  // namespace finelb::cluster
