#include "cluster/ideal_manager.h"

#include <array>
#include <span>

#include "common/check.h"
#include "common/log.h"
#include "core/selection.h"
#include "net/message.h"
#include "net/poller.h"

namespace finelb::cluster {

IdealManager::IdealManager(int server_count, std::uint64_t seed)
    : queues_(static_cast<std::size_t>(server_count), 0), rng_(seed) {
  FINELB_CHECK(server_count >= 1, "need at least one server");
  socket_.set_buffer_sizes(1 << 20);
}

IdealManager::~IdealManager() { stop(); }

void IdealManager::start() {
  FINELB_CHECK(!running_.exchange(true), "manager already started");
  thread_ = std::thread([this] { recv_loop(); });
}

void IdealManager::stop() {
  if (!running_.exchange(false)) return;
  if (thread_.joinable()) thread_.join();
}

void IdealManager::attach_fault_injector(
    std::shared_ptr<fault::FaultInjector> injector) {
  socket_.attach_fault_injector(std::move(injector));
}

net::Address IdealManager::address() const { return socket_.local_address(); }

std::vector<std::int32_t> IdealManager::tracked_queues() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queues_;
}

void IdealManager::recv_loop() {
  net::Poller poller;
  poller.add(socket_.fd(), 0);
  std::array<std::uint8_t, 128> buf{};
  while (running_.load(std::memory_order_relaxed)) {
    if (poller.wait(50 * kMillisecond).empty()) continue;
    while (auto dgram = socket_.recv_from(buf)) {
      const std::span<const std::uint8_t> data(buf.data(), dgram->size);
      try {
        switch (net::peek_type(data)) {
          case net::MsgType::kAcquire: {
            const auto acquire = net::Acquire::decode(data);
            net::AcquireReply reply;
            reply.seq = acquire.seq;
            {
              std::lock_guard<std::mutex> lock(mutex_);
              std::vector<ServerLoad> loads(queues_.size());
              for (std::size_t s = 0; s < queues_.size(); ++s) {
                loads[s] = {static_cast<ServerId>(s), queues_[s], 0};
              }
              reply.server = pick_least_loaded(loads, rng_);
              ++queues_[static_cast<std::size_t>(reply.server)];
            }
            socket_.send_to(reply.encode(), dgram->from);
            acquires_.fetch_add(1, std::memory_order_relaxed);
            break;
          }
          case net::MsgType::kRelease: {
            const auto release = net::Release::decode(data);
            std::lock_guard<std::mutex> lock(mutex_);
            const auto s = static_cast<std::size_t>(release.server);
            if (s < queues_.size() && queues_[s] > 0) {
              --queues_[s];
              releases_.fetch_add(1, std::memory_order_relaxed);
            } else {
              FINELB_LOG(kWarn, "ideal-manager")
                  << "release for idle/unknown server " << release.server;
            }
            break;
          }
          default:
            FINELB_LOG(kWarn, "ideal-manager") << "unexpected message type";
        }
      } catch (const InvariantError&) {
        FINELB_LOG(kWarn, "ideal-manager") << "dropping malformed datagram";
      }
    }
  }
}

}  // namespace finelb::cluster
