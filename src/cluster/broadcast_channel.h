// Broadcast channel for the prototype's broadcast policy (extension).
//
// The paper evaluates the broadcast policy only in simulation (§2.2) and
// rules it out before building the prototype; this channel completes the
// matrix so broadcast can be measured in both worlds. It is the "well-known
// broadcast channel" of §2.2 realized as a UDP relay (loopback has no IP
// multicast): servers send LoadAnnounce datagrams to the channel, which
// fans each one out to every live subscriber. Subscriptions are soft state
// with a ttl, like everything else in the availability layer, so dead
// clients silently fall off the fan-out list.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <thread>

#include "common/time.h"
#include "net/socket.h"

namespace finelb::cluster {

class BroadcastChannel {
 public:
  BroadcastChannel();
  ~BroadcastChannel();

  BroadcastChannel(const BroadcastChannel&) = delete;
  BroadcastChannel& operator=(const BroadcastChannel&) = delete;

  void start();
  void stop();

  net::Address address() const;

  std::int64_t announcements_relayed() const { return relayed_.load(); }
  std::size_t subscriber_count() const;

 private:
  void recv_loop();

  net::UdpSocket socket_;
  std::atomic<bool> running_{false};
  std::thread thread_;
  mutable std::mutex mutex_;
  // subscriber address (packed) -> {address, expiry}
  struct Subscriber {
    net::Address address;
    SimTime expires_at = 0;
  };
  std::map<std::uint64_t, Subscriber> subscribers_;
  std::atomic<std::int64_t> relayed_{0};
};

}  // namespace finelb::cluster
