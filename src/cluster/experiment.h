// Prototype experiment orchestration (paper §4).
//
// Assembles the full Figure 5 system on one host: N server nodes, an
// optional availability directory the servers publish into, an optional
// centralized load-index manager (IDEAL only), and C client nodes each
// running on its own thread. Returns merged client statistics plus server
// counters — the measurements behind Figure 6 and Table 2.
//
// Load calibration: the paper defines 100% load empirically (98% of
// single-server requests completing within 2 s) because real overheads make
// the analytic rho optimistic. We fold those overheads into an effective
// per-request cost (mean service time + per_request_overhead) and size the
// aggregate arrival rate as  servers * load / effective_service_time.
// `calibrate_overhead()` measures the overhead with a short single-server
// probe, mirroring the spirit of the paper's calibration without its
// multi-minute search.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/client_node.h"
#include "cluster/server_node.h"
#include "core/policy.h"
#include "fault/fault.h"
#include "telemetry/decision.h"
#include "telemetry/merge.h"
#include "workload/workload.h"

namespace finelb::cluster {

/// Fault-tolerance extension: stop server `server` once `after` of the
/// measurement has elapsed (restart is not modelled in the prototype; the
/// server simply goes silent, as a crashed node would).
struct ServerKill {
  int server = 0;
  SimDuration after = 0;
};

struct PrototypeConfig {
  int servers = 16;
  int clients = 6;
  PolicyConfig policy;
  /// Target per-server load in (0, 1).
  double load = 0.9;
  /// Total accesses across all clients.
  std::int64_t total_requests = 20'000;
  /// Leading accesses per client excluded from statistics.
  std::int64_t warmup_fraction_percent = 10;
  int worker_threads_per_server = 1;
  /// Run service availability through a directory (publish/subscribe) as in
  /// the paper, instead of wiring endpoints statically.
  bool use_directory = true;
  /// Busy-reply delay injection at the load-index servers (DESIGN.md §3,
  /// server_node.h for the model). Values here override ServerOptions
  /// defaults; busy_slow_prob = 0 keeps only the short stack tail.
  bool inject_busy_reply_delay = true;
  double busy_reply_alpha = 1.3;
  SimDuration busy_reply_xm = from_us(80);
  double busy_slow_prob = 0.05;
  /// Per-request overhead (seconds) folded into load calibration; covers
  /// messaging, context switches, and client bookkeeping.
  double per_request_overhead_sec = 400e-6;
  SimDuration response_timeout = 2 * kSecond;

  // --- fault tolerance (all off by default; seed behavior unchanged) -------

  /// Datagram-level fault spec applied at every node's sockets. Each node
  /// gets its own injector with a seed derived from fault.seed and the node
  /// index, so the whole fault schedule reproduces for a fixed config.
  fault::FaultSpec fault;
  /// Servers to kill mid-run (see ServerKill).
  std::vector<ServerKill> kills;
  /// Soft-state publishing cadence on the availability directory. A short
  /// ttl makes a killed server's entry expire quickly (paper §3.1).
  SimDuration publish_interval = kSecond / 4;
  SimDuration publish_ttl = 2 * kSecond;
  /// Replicated control plane (DESIGN.md §12): when > 1, the availability
  /// directory becomes an HaDirectoryCluster of this many replicas with a
  /// leader-elected serving path. Servers publish to every replica; clients
  /// carry the whole replica set and fail over / follow redirects. 1 keeps
  /// the classic single DirectoryServer.
  int directory_replicas = 1;
  /// Kill the directory *leader* (whoever holds the lease at that instant)
  /// once each offset of the measurement has elapsed. Requires
  /// directory_replicas > 1; each kill stops one replica thread for good.
  std::vector<SimDuration> directory_leader_kills;
  /// Election timing for the replicated directory (ha/election.h). The
  /// defaults mirror HaReplicaConfig; tests shrink them for fast failover.
  SimDuration ha_heartbeat_interval = 25 * kMillisecond;
  SimDuration ha_election_timeout_min = 100 * kMillisecond;
  SimDuration ha_election_timeout_max = 200 * kMillisecond;
  SimDuration ha_leader_lease = 75 * kMillisecond;
  /// Client hardening knobs, passed through to ClientOptions (0 = off).
  SimDuration client_mapping_refresh = 0;
  SimDuration blacklist_cooldown = 0;
  int blacklist_after = 1;
  SimDuration timeline_bucket = 0;
  int max_access_retries = 0;

  // --- observability (all off by default) ----------------------------------

  /// Every Nth request leaves lifecycle records in its node's trace ring
  /// (servers key on request id, clients on access index); 0 = off.
  std::uint32_t trace_sample_period = 0;
  /// Dump the merged cluster stats document to stderr this often while the
  /// experiment runs (0 = never). SIGUSR1 forces a dump at any time.
  SimDuration stats_report_interval = 0;
  /// Install the process-wide SIGUSR1 handler so an operator can request a
  /// stderr stats dump of a long run (`kill -USR1 <pid>`).
  bool stats_on_sigusr1 = false;
  /// Collect every node's final JSON stats document into
  /// PrototypeResult::node_stats_json after the run.
  bool collect_node_stats = false;
  /// After the run (servers still live), pull every server's trace ring
  /// over the wire (TRACE_INQUIRY, clock-synced from the scrape round
  /// trips) plus each client's ring in-process, align the clocks, and fill
  /// PrototypeResult::node_traces and ::staleness. Requires
  /// trace_sample_period > 0 to produce anything.
  bool collect_traces = false;
  /// Decision observatory: every Nth access's dispatch decision lands in
  /// its client's decision ring (see ClientOptions::decision_sample_period);
  /// 0 = off.
  std::uint32_t decision_sample_period = 0;
  /// After the run, snapshot every client's decision ring (in-process, like
  /// client trace rings) and join the records with the merged timeline into
  /// PrototypeResult::decision_quality. Needs decision_sample_period > 0;
  /// the regret join additionally needs collect_traces (a decision's
  /// realized queue depth comes from its kResponse trace record).
  bool collect_decisions = false;

  std::uint64_t seed = 1;
};

struct PrototypeResult {
  ClientStats clients;
  ServerCounters servers;
  /// Effective offered per-server load after overhead adjustment.
  double offered_load = 0.0;
  /// Wall-clock duration of the measurement (seconds).
  double wall_sec = 0.0;
  /// Aggregate completed-request throughput (1/s).
  double throughput = 0.0;
  /// Injected-fault totals summed over every node's injector (all zero
  /// when PrototypeConfig::fault is empty).
  fault::FaultCounters faults;
  /// Servers actually stopped by the kill schedule.
  int servers_killed = 0;
  /// Directory leaders actually stopped by directory_leader_kills.
  int directory_leaders_killed = 0;
  /// Leadership gains across all directory replicas (counted from their
  /// kLeaderElected trace instants); >= 1 whenever directory_replicas > 1.
  std::int64_t directory_elections = 0;
  /// Worst leaderless window following a directory leader kill: kill
  /// instant -> the next kLeaderElected instant on any surviving replica
  /// (same in-process CLOCK_MONOTONIC, so the subtraction is exact).
  /// 0 when no leader kills were scheduled.
  SimDuration directory_failover_window = 0;
  /// Per-node exporter documents (servers then clients), populated when
  /// PrototypeConfig::collect_node_stats is set. Merge with
  /// telemetry::cluster_to_json for one cluster-wide document.
  std::vector<std::string> node_stats_json;
  /// Clock-aligned per-node traces (servers then clients; offsets already
  /// estimated), populated when PrototypeConfig::collect_traces is set.
  /// Feed to telemetry::merge_traces for the cluster timeline.
  std::vector<telemetry::NodeTrace> node_traces;
  /// Staleness observatory over the merged timeline: the live analogue of
  /// the paper's Figure 2, |Q(t_reply) - Q(t_dispatch)| per traced request
  /// (empty when collect_traces is off or nothing was sampled).
  telemetry::StalenessSummary staleness;
  /// Servers whose trace ring could not be scraped (UDP inquiry timed out).
  int trace_scrape_failures = 0;
  /// Audited decision records collected from the client rings.
  std::int64_t decision_records = 0;
  /// Trace-reconstructed decision quality (measured mistake rate / regret,
  /// the prototype analogue of the simulator's exact accounting — see
  /// telemetry::reconstruct_decision_quality). Zero-valued when
  /// collect_decisions is off or nothing joined.
  telemetry::DecisionQualitySummary decision_quality;
};

/// Runs one full prototype experiment; blocking.
PrototypeResult run_prototype(const PrototypeConfig& config,
                              const Workload& workload);

/// Measures the per-request overhead on this host with a single-server,
/// single-client random-policy probe at low load: overhead = mean measured
/// response - mean service demand. Used to refine
/// PrototypeConfig::per_request_overhead_sec.
double calibrate_overhead(const Workload& workload, std::int64_t requests = 500,
                          std::uint64_t seed = 1);

}  // namespace finelb::cluster
