#include "cluster/broadcast_channel.h"

#include <array>
#include <span>

#include "common/check.h"
#include "common/log.h"
#include "net/clock.h"
#include "net/message.h"
#include "net/poller.h"

namespace finelb::cluster {
namespace {

std::uint64_t pack(const net::Address& addr) {
  return (static_cast<std::uint64_t>(addr.host) << 16) | addr.port;
}

}  // namespace

BroadcastChannel::BroadcastChannel() { socket_.set_buffer_sizes(1 << 21); }

BroadcastChannel::~BroadcastChannel() { stop(); }

void BroadcastChannel::start() {
  FINELB_CHECK(!running_.exchange(true), "channel already started");
  thread_ = std::thread([this] { recv_loop(); });
}

void BroadcastChannel::stop() {
  if (!running_.exchange(false)) return;
  if (thread_.joinable()) thread_.join();
}

net::Address BroadcastChannel::address() const {
  return socket_.local_address();
}

std::size_t BroadcastChannel::subscriber_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  const SimTime now = net::monotonic_now();
  std::size_t live = 0;
  for (const auto& [key, sub] : subscribers_) {
    (void)key;
    if (sub.expires_at > now) ++live;
  }
  return live;
}

void BroadcastChannel::recv_loop() {
  net::Poller poller;
  poller.add(socket_.fd(), 0);
  std::array<std::uint8_t, 128> buf{};
  while (running_.load(std::memory_order_relaxed)) {
    if (poller.wait(50 * kMillisecond).empty()) continue;
    while (auto dgram = socket_.recv_from(buf)) {
      const std::span<const std::uint8_t> data(buf.data(), dgram->size);
      try {
        switch (net::peek_type(data)) {
          case net::MsgType::kSubscribe: {
            const auto subscribe = net::Subscribe::decode(data);
            std::lock_guard<std::mutex> lock(mutex_);
            subscribers_[pack(dgram->from)] = {
                dgram->from,
                net::monotonic_now() +
                    static_cast<SimDuration>(subscribe.ttl_ms) *
                        kMillisecond};
            break;
          }
          case net::MsgType::kLoadAnnounce: {
            // Validate, then fan out verbatim.
            (void)net::LoadAnnounce::decode(data);
            std::lock_guard<std::mutex> lock(mutex_);
            const SimTime now = net::monotonic_now();
            for (auto it = subscribers_.begin();
                 it != subscribers_.end();) {
              if (it->second.expires_at <= now) {
                it = subscribers_.erase(it);  // expired soft state
                continue;
              }
              socket_.send_to(data, it->second.address);
              relayed_.fetch_add(1, std::memory_order_relaxed);
              ++it;
            }
            break;
          }
          default:
            FINELB_LOG(kWarn, "broadcast-channel")
                << "unexpected message type";
        }
      } catch (const InvariantError&) {
        FINELB_LOG(kWarn, "broadcast-channel")
            << "dropping malformed datagram";
      }
    }
  }
}

}  // namespace finelb::cluster
