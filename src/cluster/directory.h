// Service availability subsystem (paper §3.1).
//
// The paper describes a "well-known publish/subscribe channel, which can be
// implemented using IP multicast or a highly available well-known central
// directory"; published entries are soft state that must be refreshed to
// stay alive. This is the central-directory implementation: servers send
// Publish datagrams on an interval, clients pull SnapshotReply tables. An
// entry disappears `ttl_ms` after its last refresh, so a crashed server
// falls out of the candidate set without any explicit deregistration — the
// property that lets the infrastructure "operate smoothly in the presence
// of transient failures and service evolution".
//
// The "highly available" half lives in cluster/ha/: HaDirectoryReplica
// embeds the same DirectoryTable behind a leader-elected replica set, and
// DirectoryClient below accepts a replica list, failing over on timeout and
// following leader redirects.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/time.h"
#include "fault/fault.h"
#include "net/message.h"
#include "net/poller.h"
#include "net/socket.h"

namespace finelb::cluster {

/// A live service endpoint as seen through the availability channel.
struct ServiceEndpoint {
  std::int32_t server = 0;
  std::uint32_t partition = 0;
  net::Address service_addr;
  net::Address load_addr;
};

/// The soft-state table plus its RCU snapshot protocol, shared by the
/// single-node DirectoryServer and the replicated ha::HaDirectoryReplica.
/// Thread-safe: apply() serialises writers internally, live_entries() is
/// lock-free (see the guard-discipline comment at the members).
///
/// Expiry applies a grace window of ttl/4 past the nominal deadline: a
/// server that re-publishes exactly at ttl_ms races its own expiry (the
/// refresh datagram and the reader's clock sample are unordered), and
/// without the grace a healthy server can flap out of live_entries for one
/// refresh interval. The window is small enough that a genuinely crashed
/// server still ages out promptly (1.25x ttl instead of 1x).
class DirectoryTable {
 public:
  /// Inserts or refreshes the entry keyed by (service, server, partition).
  void apply(net::Publish publish, SimTime now);

  /// Current live (non-expired) entries for a service ("" = all).
  std::vector<net::Publish> live_entries(const std::string& service,
                                         SimTime now) const;

  std::int64_t publishes_received() const {
    return publishes_.load(std::memory_order_relaxed);
  }

 private:
  struct Entry {
    net::Publish publish;
    SimTime expires_at = 0;  // last refresh + ttl
    SimDuration grace = 0;   // ttl/4 anti-flap window past expires_at
  };
  using Key = std::tuple<std::string, std::int32_t, std::uint32_t>;
  using Snapshot = std::vector<Entry>;

  /// Rebuilds the published snapshot from entries_; caller holds mutex_.
  void republish_locked();

  /// Acquires a reference to the current snapshot without taking mutex_.
  std::shared_ptr<const Snapshot> load_snapshot() const;

  // Guard discipline (do not relax without updating this comment and the
  // directory concurrency regression test):
  //   * mutex_ guards entries_, the mutable soft-state table. Only write
  //     paths (apply) take it; every mutation must finish by calling
  //     republish_locked() before releasing the lock.
  //   * slots_/version_ hold an RCU-style immutable copy of entries_,
  //     double-buffered so publication is lock-free for readers. Readers
  //     (live_entries) call load_snapshot() and never take mutex_ — a
  //     reader observes a coherent table from some recent instant, and a
  //     concurrent publish installs a fresh vector in the *other* slot
  //     rather than mutating the one being read. Expiry is applied at read
  //     time by filtering expires_at, so an idle directory ages entries
  //     out without a writer running.
  //     (A hand-rolled scheme rather than std::atomic<std::shared_ptr>:
  //     libstdc++'s lock-based _Sp_atomic unlocks with relaxed ordering,
  //     which ThreadSanitizer cannot prove race-free. Here every edge is
  //     an explicit acquire/release on version_ and the per-slot reader
  //     counts, so the protocol is TSan-checkable.)
  //     Protocol: a reader loads version_, pins slot version_ & 1 by
  //     incrementing its reader count, then re-checks version_ is
  //     unchanged (else unpins and retries — the writer may have moved
  //     on between the load and the pin). The writer, serialised by
  //     mutex_, prepares the inactive slot: it waits for that slot's
  //     readers to drain (they pinned a version at least two
  //     publications old, so the wait is bounded by one snapshot copy),
  //     installs the new vector, and advances version_ to flip slots.
  //   * publishes_ is a plain atomic counter, read without either guard.
  mutable std::mutex mutex_;
  std::map<Key, Entry> entries_;
  struct Slot {
    std::shared_ptr<const Snapshot> snap = std::make_shared<const Snapshot>();
    mutable std::atomic<std::uint32_t> readers{0};
  };
  Slot slots_[2];
  std::atomic<std::uint64_t> version_{0};
  std::atomic<std::int64_t> publishes_{0};
};

class DirectoryServer {
 public:
  DirectoryServer();
  ~DirectoryServer();

  DirectoryServer(const DirectoryServer&) = delete;
  DirectoryServer& operator=(const DirectoryServer&) = delete;

  void start();
  void stop();

  net::Address address() const;

  /// Current live (non-expired) entries for a service ("" = all), as the
  /// snapshot protocol would return them. Exposed for tests and local use.
  std::vector<net::Publish> live_entries(const std::string& service) const;

  std::int64_t publishes_received() const {
    return table_.publishes_received();
  }

 private:
  void recv_loop();

  net::UdpSocket socket_;
  std::atomic<bool> running_{false};
  std::thread thread_;
  DirectoryTable table_;
};

/// Client-side view of the channel: sends SnapshotRequest and waits for the
/// reply, retrying on loss. This is the "service mapping table" refresh.
///
/// Against a replicated directory (multi-address constructor) the client
/// rotates to the next replica when a backoff slice expires unanswered and
/// follows Redirect replies from followers straight to the current leader;
/// both are invisible to callers beyond the failovers()/redirects_followed()
/// counters. The last successful snapshot is cached so callers can keep
/// serving stale-but-recent mappings while an election is in progress.
class DirectoryClient {
 public:
  explicit DirectoryClient(const net::Address& directory,
                           std::uint64_t seed = 1);
  DirectoryClient(std::vector<net::Address> replicas, std::uint64_t seed = 1);

  /// Optional loss/dup/delay injection on the snapshot socket (tests and
  /// the fault-tolerance bench).
  void attach_fault_injector(std::shared_ptr<fault::FaultInjector> injector);

  /// Fetches the live endpoints for `service` (empty = all). Retransmits
  /// with exponential backoff plus jitter (100 ms doubling to 800 ms) so a
  /// struggling directory is not hammered at a fixed rate, failing over to
  /// the next replica each time a backoff slice expires unanswered.
  /// Returns std::nullopt if no replica answers within `timeout` — retry
  /// paths must use this surface so an unlucky election window does not
  /// tear down the caller.
  std::optional<std::vector<ServiceEndpoint>> try_fetch(
      const std::string& service, SimDuration timeout = kSecond);

  /// try_fetch, but throws InvariantError on timeout. Convenience for
  /// startup paths where a dead directory is fatal anyway.
  std::vector<ServiceEndpoint> fetch(const std::string& service,
                                     SimDuration timeout = kSecond);

  /// Polls try_fetch() until at least `min_servers` distinct servers are
  /// live or `deadline_from_now` elapses; returns the last snapshot either
  /// way. Never throws: a replicated directory may be mid-election while
  /// the experiment is starting up.
  std::vector<ServiceEndpoint> wait_for_servers(
      const std::string& service, std::size_t min_servers,
      SimDuration deadline_from_now = 5 * kSecond);

  /// Snapshot requests retransmitted beyond the first send of each fetch.
  /// Atomic: benches read these counters from other threads mid-run.
  std::int64_t snapshot_retries() const {
    return snapshot_retries_.load(std::memory_order_relaxed);
  }
  /// Replica rotations taken after an unanswered backoff slice.
  std::int64_t failovers() const {
    return failovers_.load(std::memory_order_relaxed);
  }
  /// Redirect replies followed to a freshly elected leader.
  std::int64_t redirects_followed() const {
    return redirects_followed_.load(std::memory_order_relaxed);
  }

  /// Most recent successful snapshot (empty before the first success) and
  /// when it was taken. Owned by the fetching thread; not thread-safe.
  const std::vector<ServiceEndpoint>& last_snapshot() const {
    return last_snapshot_;
  }
  SimTime last_snapshot_at() const { return last_snapshot_at_; }

 private:
  void reconnect(const net::Address& addr);

  std::vector<net::Address> replicas_;
  std::size_t current_ = 0;
  net::UdpSocket socket_;
  net::Poller poller_;  // member so a fetch does not epoll_create each call
  std::uint64_t next_seq_ = 1;
  Rng rng_;
  std::atomic<std::int64_t> snapshot_retries_{0};
  std::atomic<std::int64_t> failovers_{0};
  std::atomic<std::int64_t> redirects_followed_{0};
  std::array<std::uint8_t, 65536> recv_buf_{};
  net::SnapshotReply reply_;  // reused so entry capacity survives fetches
  std::vector<ServiceEndpoint> last_snapshot_;
  SimTime last_snapshot_at_ = 0;
};

}  // namespace finelb::cluster
