// Service availability subsystem (paper §3.1).
//
// The paper describes a "well-known publish/subscribe channel, which can be
// implemented using IP multicast or a highly available well-known central
// directory"; published entries are soft state that must be refreshed to
// stay alive. This is the central-directory implementation: servers send
// Publish datagrams on an interval, clients pull SnapshotReply tables. An
// entry disappears `ttl_ms` after its last refresh, so a crashed server
// falls out of the candidate set without any explicit deregistration — the
// property that lets the infrastructure "operate smoothly in the presence
// of transient failures and service evolution".
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/time.h"
#include "fault/fault.h"
#include "net/message.h"
#include "net/socket.h"

namespace finelb::cluster {

/// A live service endpoint as seen through the availability channel.
struct ServiceEndpoint {
  std::int32_t server = 0;
  std::uint32_t partition = 0;
  net::Address service_addr;
  net::Address load_addr;
};

class DirectoryServer {
 public:
  DirectoryServer();
  ~DirectoryServer();

  DirectoryServer(const DirectoryServer&) = delete;
  DirectoryServer& operator=(const DirectoryServer&) = delete;

  void start();
  void stop();

  net::Address address() const;

  /// Current live (non-expired) entries for a service ("" = all), as the
  /// snapshot protocol would return them. Exposed for tests and local use.
  std::vector<net::Publish> live_entries(const std::string& service) const;

  std::int64_t publishes_received() const { return publishes_.load(); }

 private:
  struct Entry {
    net::Publish publish;
    SimTime expires_at = 0;
  };
  using Key = std::tuple<std::string, std::int32_t, std::uint32_t>;

  void recv_loop();
  std::vector<net::Publish> snapshot_locked(const std::string& service,
                                            SimTime now) const;

  net::UdpSocket socket_;
  std::atomic<bool> running_{false};
  std::thread thread_;
  mutable std::mutex mutex_;
  std::map<Key, Entry> entries_;
  std::atomic<std::int64_t> publishes_{0};
};

/// Client-side view of the channel: sends SnapshotRequest and waits for the
/// reply, retrying on loss. This is the "service mapping table" refresh.
class DirectoryClient {
 public:
  explicit DirectoryClient(const net::Address& directory,
                           std::uint64_t seed = 1);

  /// Optional loss/dup/delay injection on the snapshot socket (tests and
  /// the fault-tolerance bench).
  void attach_fault_injector(std::shared_ptr<fault::FaultInjector> injector);

  /// Fetches the live endpoints for `service` (empty = all). Retransmits
  /// with exponential backoff plus jitter (100 ms doubling to 800 ms) so a
  /// struggling directory is not hammered at a fixed rate. Throws
  /// InvariantError if the directory does not answer within `timeout`.
  std::vector<ServiceEndpoint> fetch(const std::string& service,
                                     SimDuration timeout = kSecond);

  /// Polls fetch() until at least `min_servers` distinct servers are live
  /// or `deadline_from_now` elapses; returns the last snapshot either way.
  std::vector<ServiceEndpoint> wait_for_servers(
      const std::string& service, std::size_t min_servers,
      SimDuration deadline_from_now = 5 * kSecond);

  /// Snapshot requests retransmitted beyond the first send of each fetch.
  std::int64_t snapshot_retries() const { return snapshot_retries_; }

 private:
  net::Address directory_;
  net::UdpSocket socket_;
  std::uint64_t next_seq_ = 1;
  Rng rng_;
  std::int64_t snapshot_retries_ = 0;
};

}  // namespace finelb::cluster
