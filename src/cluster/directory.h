// Service availability subsystem (paper §3.1).
//
// The paper describes a "well-known publish/subscribe channel, which can be
// implemented using IP multicast or a highly available well-known central
// directory"; published entries are soft state that must be refreshed to
// stay alive. This is the central-directory implementation: servers send
// Publish datagrams on an interval, clients pull SnapshotReply tables. An
// entry disappears `ttl_ms` after its last refresh, so a crashed server
// falls out of the candidate set without any explicit deregistration — the
// property that lets the infrastructure "operate smoothly in the presence
// of transient failures and service evolution".
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/time.h"
#include "fault/fault.h"
#include "net/message.h"
#include "net/socket.h"

namespace finelb::cluster {

/// A live service endpoint as seen through the availability channel.
struct ServiceEndpoint {
  std::int32_t server = 0;
  std::uint32_t partition = 0;
  net::Address service_addr;
  net::Address load_addr;
};

class DirectoryServer {
 public:
  DirectoryServer();
  ~DirectoryServer();

  DirectoryServer(const DirectoryServer&) = delete;
  DirectoryServer& operator=(const DirectoryServer&) = delete;

  void start();
  void stop();

  net::Address address() const;

  /// Current live (non-expired) entries for a service ("" = all), as the
  /// snapshot protocol would return them. Exposed for tests and local use.
  std::vector<net::Publish> live_entries(const std::string& service) const;

  std::int64_t publishes_received() const { return publishes_.load(); }

 private:
  struct Entry {
    net::Publish publish;
    SimTime expires_at = 0;
  };
  using Key = std::tuple<std::string, std::int32_t, std::uint32_t>;
  using Snapshot = std::vector<Entry>;

  void recv_loop();
  /// Rebuilds snapshot_ from entries_; caller must hold mutex_.
  void republish_locked();

  net::UdpSocket socket_;
  std::atomic<bool> running_{false};
  std::thread thread_;

  /// Acquires a reference to the current snapshot without taking mutex_.
  std::shared_ptr<const Snapshot> load_snapshot() const;

  // Guard discipline (do not relax without updating this comment and the
  // directory concurrency regression test):
  //   * mutex_ guards entries_, the mutable soft-state table. Only write
  //     paths (the Publish handler) take it; every mutation must finish by
  //     calling republish_locked() before releasing the lock.
  //   * slots_/version_ hold an RCU-style immutable copy of entries_,
  //     double-buffered so publication is lock-free for readers. Readers
  //     (live_entries, the SnapshotRequest handler) call load_snapshot()
  //     and never take mutex_ — a reader observes a coherent table from
  //     some recent instant, and a concurrent publish installs a fresh
  //     vector in the *other* slot rather than mutating the one being
  //     read. Expiry is applied at read time by filtering expires_at, so
  //     an idle directory ages entries out without a writer running.
  //     (A hand-rolled scheme rather than std::atomic<std::shared_ptr>:
  //     libstdc++'s lock-based _Sp_atomic unlocks with relaxed ordering,
  //     which ThreadSanitizer cannot prove race-free. Here every edge is
  //     an explicit acquire/release on version_ and the per-slot reader
  //     counts, so the protocol is TSan-checkable.)
  //     Protocol: a reader loads version_, pins slot version_ & 1 by
  //     incrementing its reader count, then re-checks version_ is
  //     unchanged (else unpins and retries — the writer may have moved
  //     on between the load and the pin). The writer, serialised by
  //     mutex_, prepares the inactive slot: it waits for that slot's
  //     readers to drain (they pinned a version at least two
  //     publications old, so the wait is bounded by one snapshot copy),
  //     installs the new vector, and advances version_ to flip slots.
  //   * publishes_ is a plain atomic counter, read without either guard.
  mutable std::mutex mutex_;
  std::map<Key, Entry> entries_;
  struct Slot {
    std::shared_ptr<const Snapshot> snap = std::make_shared<const Snapshot>();
    mutable std::atomic<std::uint32_t> readers{0};
  };
  Slot slots_[2];
  std::atomic<std::uint64_t> version_{0};
  std::atomic<std::int64_t> publishes_{0};
};

/// Client-side view of the channel: sends SnapshotRequest and waits for the
/// reply, retrying on loss. This is the "service mapping table" refresh.
class DirectoryClient {
 public:
  explicit DirectoryClient(const net::Address& directory,
                           std::uint64_t seed = 1);

  /// Optional loss/dup/delay injection on the snapshot socket (tests and
  /// the fault-tolerance bench).
  void attach_fault_injector(std::shared_ptr<fault::FaultInjector> injector);

  /// Fetches the live endpoints for `service` (empty = all). Retransmits
  /// with exponential backoff plus jitter (100 ms doubling to 800 ms) so a
  /// struggling directory is not hammered at a fixed rate. Throws
  /// InvariantError if the directory does not answer within `timeout`.
  std::vector<ServiceEndpoint> fetch(const std::string& service,
                                     SimDuration timeout = kSecond);

  /// Polls fetch() until at least `min_servers` distinct servers are live
  /// or `deadline_from_now` elapses; returns the last snapshot either way.
  std::vector<ServiceEndpoint> wait_for_servers(
      const std::string& service, std::size_t min_servers,
      SimDuration deadline_from_now = 5 * kSecond);

  /// Snapshot requests retransmitted beyond the first send of each fetch.
  std::int64_t snapshot_retries() const { return snapshot_retries_; }

 private:
  net::Address directory_;
  net::UdpSocket socket_;
  std::uint64_t next_seq_ = 1;
  Rng rng_;
  std::int64_t snapshot_retries_ = 0;
};

}  // namespace finelb::cluster
