// Bounded-unbounded MPMC blocking queue for the server request queue.
//
// The paper's server node keeps "a service queue and a worker thread pool";
// this queue is that service queue. close() wakes all waiters and makes
// further pops return nullopt once drained, which is how server shutdown
// propagates to workers without sentinel values.
//
// Storage is a power-of-two ring buffer rather than std::deque: a deque
// allocates and frees map blocks as the head chases the tail, so even a
// bounded-occupancy queue churns the allocator in steady state. The ring
// grows geometrically to the high-water mark and is then allocation-free
// for the life of the queue.
#pragma once

#include <condition_variable>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

namespace finelb::cluster {

/// Outcome of a non-blocking pop. Distinguishing kEmpty from kClosed
/// matters for poll-style workers: "nothing right now, spin again" versus
/// "the queue is shut down and drained, exit the loop". The old
/// optional-returning try_pop conflated the two, so a worker that relied on
/// it alone could never observe shutdown.
enum class PopResult {
  kItem,    ///< an item was dequeued into `out`
  kEmpty,   ///< nothing queued right now (queue still open, or not drained)
  kClosed,  ///< closed and fully drained; no item will ever arrive again
};

template <class T>
class BlockingQueue {
 public:
  /// Pushes an item; returns false if the queue is closed.
  bool push(T item) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_) return false;
      if (count_ == ring_.size()) grow();
      ring_[(head_ + count_) & (ring_.size() - 1)] = std::move(item);
      ++count_;
    }
    cv_.notify_one();
    return true;
  }

  /// Blocks until an item is available or the queue is closed and drained.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return count_ != 0 || closed_; });
    if (count_ == 0) return std::nullopt;
    return pop_front_locked();
  }

  /// Non-blocking pop into `out`. Returns kItem when an item was dequeued,
  /// kEmpty when the queue is open but momentarily empty (or closed with
  /// items still draining elsewhere is impossible — drained is drained),
  /// and kClosed once the queue is closed and drained. Lets a worker
  /// opportunistically drain a burst without bouncing through the condition
  /// variable per item, while still observing shutdown.
  PopResult try_pop(T& out) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (count_ == 0) return closed_ ? PopResult::kClosed : PopResult::kEmpty;
    out = pop_front_locked();
    return PopResult::kItem;
  }

  /// True once close() has been called (items may still be queued).
  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  /// Closes the queue; queued items can still be popped.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return count_;
  }

 private:
  T pop_front_locked() {
    T item = std::move(ring_[head_]);
    head_ = (head_ + 1) & (ring_.size() - 1);
    --count_;
    return item;
  }

  void grow() {
    const std::size_t new_size = ring_.empty() ? 16 : ring_.size() * 2;
    std::vector<T> bigger(new_size);
    for (std::size_t i = 0; i < count_; ++i) {
      bigger[i] = std::move(ring_[(head_ + i) & (ring_.size() - 1)]);
    }
    ring_ = std::move(bigger);
    head_ = 0;
  }

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<T> ring_;     // power-of-two capacity; index masked
  std::size_t head_ = 0;    // index of the front item
  std::size_t count_ = 0;   // occupied slots
  bool closed_ = false;
};

}  // namespace finelb::cluster
