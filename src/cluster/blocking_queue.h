// Bounded-unbounded MPMC blocking queue for the server request queue.
//
// The paper's server node keeps "a service queue and a worker thread pool";
// this queue is that service queue. close() wakes all waiters and makes
// further pops return nullopt once drained, which is how server shutdown
// propagates to workers without sentinel values.
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace finelb::cluster {

template <class T>
class BlockingQueue {
 public:
  /// Pushes an item; returns false if the queue is closed.
  bool push(T item) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_) return false;
      items_.push_back(std::move(item));
    }
    cv_.notify_one();
    return true;
  }

  /// Blocks until an item is available or the queue is closed and drained.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return !items_.empty() || closed_; });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Non-blocking pop: returns the front item if one is queued, nullopt
  /// otherwise (empty or closed-and-drained). Lets a worker opportunistically
  /// drain a burst without bouncing through the condition variable for each
  /// item.
  std::optional<T> try_pop() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Closes the queue; queued items can still be popped.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace finelb::cluster
