#include "fault/fault.h"

#include "common/check.h"

namespace finelb::fault {

FaultSpec FaultSpec::symmetric_loss(double p, std::uint64_t seed) {
  FaultSpec spec;
  spec.egress.drop_prob = p;
  spec.ingress.drop_prob = p;
  spec.seed = seed;
  return spec;
}

namespace {

void validate(const DirectionSpec& d, const char* name) {
  FINELB_CHECK(d.drop_prob >= 0.0 && d.dup_prob >= 0.0 && d.delay_prob >= 0.0,
               std::string("fault probabilities must be non-negative (") +
                   name + ")");
  FINELB_CHECK(d.drop_prob + d.dup_prob + d.delay_prob <= 1.0,
               std::string("fault probabilities must sum to <= 1 (") + name +
                   ")");
  FINELB_CHECK(d.delay_min >= 0 && d.delay_max >= d.delay_min,
               std::string("fault delay bounds must satisfy 0 <= min <= max"
                           " (") +
                   name + ")");
}

}  // namespace

FaultInjector::FaultInjector(FaultSpec spec)
    : spec_(spec), rng_(spec.seed) {
  validate(spec_.egress, "egress");
  validate(spec_.ingress, "ingress");
}

FaultDecision FaultInjector::decide(Direction dir) {
  const DirectionSpec& d =
      dir == Direction::kEgress ? spec_.egress : spec_.ingress;
  std::lock_guard<std::mutex> lock(mutex_);
  ++counters_.decisions;
  if (!d.any()) return {};
  // One uniform draw classifies the datagram; a second is consumed only for
  // the delay amount. Both draws happen under the lock, so the stream is a
  // pure function of the call sequence.
  const double u = rng_.uniform01();
  FaultDecision decision;
  if (u < d.drop_prob) {
    decision.action = FaultAction::kDrop;
    ++counters_.drops;
  } else if (u < d.drop_prob + d.dup_prob) {
    decision.action = FaultAction::kDuplicate;
    ++counters_.duplicates;
  } else if (u < d.drop_prob + d.dup_prob + d.delay_prob) {
    decision.action = FaultAction::kDelay;
    decision.delay =
        d.delay_max > d.delay_min
            ? static_cast<SimDuration>(
                  rng_.uniform(static_cast<double>(d.delay_min),
                               static_cast<double>(d.delay_max)))
            : d.delay_min;
    ++counters_.delays;
  }
  return decision;
}

FaultCounters FaultInjector::counters() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return counters_;
}

}  // namespace finelb::fault
