// Deterministic fault injection for the prototype runtime (and, via the
// simulator's fault model in sim/config.h, for the simulation study).
//
// The paper claims the flat architecture "operates smoothly in the presence
// of transient failures and service evolution" but never induces failures on
// demand. A FaultInjector makes that claim testable: attached to a UDP
// endpoint (net::UdpSocket::attach_fault_injector) it intercepts every
// datagram in a chosen direction and — with configured probabilities —
// drops it, duplicates it, or delays it by a uniformly drawn amount.
//
// Determinism: decisions are drawn from a dedicated xoshiro256** stream
// seeded by FaultSpec::seed, so two injectors with the same spec produce the
// same decision *sequence*. In the threaded prototype the mapping of
// decisions onto datagrams still depends on packet arrival order (real
// concurrency), which is why experiments give every node its own injector
// with a seed derived from the experiment seed — the per-node decision
// streams are then reproducible even though interleaving is not.
//
// Thread safety: decide() and counters() are safe to call concurrently; a
// single mutex guards the RNG and counters. Injection is off the hot path
// by default (sockets without an injector pay one null check).
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>

#include "common/rng.h"
#include "common/time.h"

namespace finelb::fault {

/// Direction of travel relative to the instrumented endpoint.
enum class Direction { kEgress, kIngress };

/// Per-direction fault probabilities. drop/dup/delay are exclusive per
/// datagram (at most one applies); their sum must be <= 1.
struct DirectionSpec {
  double drop_prob = 0.0;
  double dup_prob = 0.0;
  double delay_prob = 0.0;
  /// Uniform delay bounds, used only when a delay is drawn.
  SimDuration delay_min = 0;
  SimDuration delay_max = 0;

  bool any() const {
    return drop_prob > 0.0 || dup_prob > 0.0 || delay_prob > 0.0;
  }
};

struct FaultSpec {
  DirectionSpec egress;
  DirectionSpec ingress;
  std::uint64_t seed = 1;

  bool any() const { return egress.any() || ingress.any(); }

  /// Loss-only spec dropping each datagram with probability p in both
  /// directions — the "10% UDP loss" knob of the fault-tolerance bench.
  static FaultSpec symmetric_loss(double p, std::uint64_t seed = 1);
};

enum class FaultAction { kPass, kDrop, kDuplicate, kDelay };

struct FaultDecision {
  FaultAction action = FaultAction::kPass;
  SimDuration delay = 0;  // set only for kDelay
};

/// Injection counters; recorded per node and surfaced in bench summaries.
struct FaultCounters {
  std::int64_t decisions = 0;
  std::int64_t drops = 0;
  std::int64_t duplicates = 0;
  std::int64_t delays = 0;

  void merge(const FaultCounters& other) {
    decisions += other.decisions;
    drops += other.drops;
    duplicates += other.duplicates;
    delays += other.delays;
  }
};

class FaultInjector {
 public:
  explicit FaultInjector(FaultSpec spec);

  /// Draws the fate of one datagram travelling in `dir`. Deterministic
  /// call-sequence for a fixed spec; thread-safe.
  FaultDecision decide(Direction dir);

  FaultCounters counters() const;
  const FaultSpec& spec() const { return spec_; }

 private:
  FaultSpec spec_;
  mutable std::mutex mutex_;
  Rng rng_;
  FaultCounters counters_;
};

}  // namespace finelb::fault
