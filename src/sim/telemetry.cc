#include "sim/telemetry.h"

#include <string>

#include "telemetry/decision.h"
#include "telemetry/export.h"

namespace finelb::sim {
namespace {

// LatencyHistogram keeps its buckets private (and at 32 sub-buckets per
// octave a full dump would dwarf the document), so the simulator's
// distribution is summarized by its quantile surface; `mean` comes from the
// exact accumulator that records alongside it.
telemetry::HistogramSnapshot summarize(const LatencyHistogram& hist,
                                       double mean, std::string name) {
  telemetry::HistogramSnapshot snap;
  snap.name = std::move(name);
  snap.count = hist.count();
  snap.mean = mean;
  snap.p50 = hist.p50();
  snap.p95 = hist.p95();
  snap.p99 = hist.p99();
  snap.min = hist.recorded_min();
  snap.max = hist.recorded_max();
  return snap;
}

}  // namespace

telemetry::MetricsSnapshot to_metrics_snapshot(const SimResult& result,
                                               std::string_view node) {
  telemetry::MetricsSnapshot snap;
  snap.node = std::string(node);
  // Counter names follow the prototype ClientNode registry.
  snap.counters = {
      {"requests_completed", result.completed},
      {"response_timeouts", result.failed},
      {"polls_sent", result.polls_sent},
      {"polls_discarded", result.polls_discarded},
      {"fallback_dispatches", result.poll_fallbacks},
      {"broadcasts_sent", result.broadcasts_sent},
      {"messages_total", result.messages},
      {"drops_injected", result.drops_injected},
  };
  snap.values = {
      {"utilization", result.utilization},
      {"poll_time_ms_mean", result.poll_time_ms.mean()},
      {"queue_at_arrival_mean", result.queue_on_arrival.mean()},
  };
  snap.histograms.push_back(summarize(result.response_hist_ms,
                                      result.response_ms.mean(),
                                      "response_time_ms"));
  // Decision-quality block: appended through the shared helper so the sim
  // document uses the exact metric names the prototype exports (name parity
  // is pinned by decision_test).
  telemetry::DecisionQualitySummary quality;
  quality.decisions = result.decisions;
  quality.mistakes = result.decision_mistakes;
  quality.blind_fallbacks = result.decision_blind_fallbacks;
  quality.regret_total = result.decision_regret_total;
  telemetry::append_decision_metrics(snap, quality);
  return snap;
}

std::string to_stats_json(const SimResult& result, std::string_view node) {
  return telemetry::to_json(to_metrics_snapshot(result, node));
}

}  // namespace finelb::sim
