// Configuration and result types for the cluster simulation (paper §2).
#pragma once

#include <cstdint>
#include <vector>

#include "core/policy.h"
#include "core/selection.h"
#include "stats/accumulator.h"
#include "stats/histogram.h"
#include "workload/workload.h"

namespace finelb::sim {

/// Network and overhead model. Defaults come straight from the paper's
/// measurements on its 100 Mb/s switched Linux cluster:
///   * request+response transit = half a TCP round trip with connection
///     setup/teardown (516 us), i.e. 129 us per message leg;
///   * a UDP poll round trip costs 290 us, i.e. 145 us per leg.
struct NetworkModel {
  /// One-way latency of a service request or response message.
  SimDuration request_oneway = from_us(129);
  /// One-way latency of a poll inquiry or poll reply.
  SimDuration poll_oneway = from_us(145);
  /// One-way latency of a broadcast announcement.
  SimDuration broadcast_oneway = from_us(145);
  /// CPU time a server spends answering one poll. The base simulation study
  /// (Figure 4) uses 0 — the paper's simulator does not charge for polls,
  /// which is exactly why its prototype (Figure 6) diverges at poll size 8.
  /// The ablation benches raise this to study that divergence.
  SimDuration poll_reply_cpu = 0;
  /// Additional per-queued-access slowdown of a poll reply: the reply is
  /// delayed by poll_reply_cpu * queue_length on a busy server, modelling
  /// the paper's §3.2 profile (busy servers answer UDP slowly).
  bool poll_reply_scales_with_queue = false;
};

/// Extension: a planned server outage. During [start, start + duration) the
/// server's processing unit is paused — an in-flight access finishes, but
/// no queued access starts until the outage ends. Arrivals keep queueing
/// and load inquiries keep being answered (with the growing queue length),
/// which is exactly what makes outages visible to load-aware policies.
struct ServerOutage {
  int server = 0;
  SimTime start = 0;
  SimDuration duration = 0;
};

/// Fault extension: a server crash. Unlike an outage, a crash is invisible
/// until probed: queued and in-flight accesses are lost (they fail at the
/// client by response timeout), load inquiries go unanswered, requests and
/// broadcasts sent to the server vanish. At `restart_at` (<= 0: never) the
/// server rejoins empty.
struct ServerCrash {
  int server = 0;
  SimTime at = 0;
  SimTime restart_at = -1;
};

/// Fault extension: message-level fault model for the simulated network.
/// Loss applies independently to every message leg (request, response, poll
/// inquiry, poll reply, broadcast delivery) from a dedicated seeded RNG
/// stream, so the schedule is reproducible for a fixed SimConfig. With the
/// model disabled (all defaults) the simulation consumes exactly the same
/// random streams as before the fault subsystem existed.
struct SimFaultModel {
  /// Per-message-leg loss probability in [0, 1).
  double msg_loss_prob = 0.0;
  /// Crash/restart schedule (see ServerCrash).
  std::vector<ServerCrash> crashes;
  /// A dispatched access unanswered for this long counts as failed — the
  /// paper's 2-second criterion (§4).
  SimDuration response_timeout = 2 * kSecond;
  /// Backstop deadline for poll rounds when the discard optimization is
  /// off: under loss, a round whose inquiries or replies all vanished must
  /// still dispatch (randomly, over the polled candidates).
  SimDuration max_poll_wait = from_ms(10);

  bool enabled() const { return msg_loss_prob > 0.0 || !crashes.empty(); }
};

struct SimConfig {
  int servers = 16;
  /// Independent client request streams (the prototype uses up to 6 client
  /// nodes; the aggregate arrival rate is split evenly across streams).
  int clients = 6;
  PolicyConfig policy;
  /// Per-server offered utilization in (0, 1).
  double load = 0.9;
  NetworkModel network;
  /// Requests generated in total (across all clients).
  std::int64_t total_requests = 200'000;
  /// Leading completions excluded from statistics (transient removal).
  std::int64_t warmup_requests = 20'000;
  /// Extension: relative server speeds (empty = homogeneous 1.0). A speed
  /// of 2.0 halves every service time executed on that server. `load` is
  /// interpreted against the *total* cluster speed.
  std::vector<double> server_speeds;
  /// Extension: planned outages (see ServerOutage).
  std::vector<ServerOutage> outages;
  /// Extension: message loss and crash/restart faults (see SimFaultModel).
  SimFaultModel faults;
  /// Decision audit sink (telemetry::DecisionRing or any DecisionSink).
  /// When set, every polling-policy dispatch decision is recorded through
  /// the core/selection.h choke point — the same records the prototype
  /// client produces. Non-owning; null disables recording. Does not affect
  /// RNG consumption, so seeded runs reproduce with or without it.
  DecisionSink* decision_sink = nullptr;
  std::uint64_t seed = 1;
};

struct SimResult {
  /// Client-observed response time in ms (poll time + transit + queueing +
  /// service), post-warmup.
  Accumulator response_ms;
  LatencyHistogram response_hist_ms;
  /// Time spent acquiring load information per request (polling only).
  Accumulator poll_time_ms;
  /// Mean measured per-server utilization (busy-time fraction).
  double utilization = 0.0;
  /// Mean queue length observed by dispatched requests on arrival.
  Accumulator queue_on_arrival;
  /// Completed accesses per server (load distribution diagnostic).
  std::vector<std::int64_t> per_server_served;
  std::int64_t polls_sent = 0;
  std::int64_t polls_discarded = 0;
  std::int64_t broadcasts_sent = 0;
  /// Accesses that never produced a client-visible response (lost request
  /// or response, or a crash ate the queued access); counted against
  /// SimFaultModel::response_timeout. Always 0 with faults disabled.
  std::int64_t failed = 0;
  /// Message legs eaten by the fault model's loss process.
  std::int64_t drops_injected = 0;
  /// Poll rounds dispatched blind (every reply lost) under the fault
  /// model's backstop deadline.
  std::int64_t poll_fallbacks = 0;
  /// Total network messages (requests + responses + polls + replies +
  /// broadcast deliveries) — the scalability discussion in §2.4.
  std::int64_t messages = 0;
  std::int64_t completed = 0;

  // --- decision quality (polling policy, post-warmup; exact) ---------------
  // Each dispatch decision is compared against the omniscient least-loaded
  // choice at the decision instant: regret = chosen server's true queue
  // depth minus the minimum true depth over live servers (extra queueing
  // the decision suffered); a mistake is any decision with positive regret.
  std::int64_t decisions = 0;
  std::int64_t decision_mistakes = 0;
  std::int64_t decision_blind_fallbacks = 0;
  std::int64_t decision_regret_total = 0;

  double mean_response_ms() const { return response_ms.mean(); }
  double decision_mistake_rate() const {
    return decisions > 0 ? static_cast<double>(decision_mistakes) /
                               static_cast<double>(decisions)
                         : 0.0;
  }
  double decision_mean_regret() const {
    return decisions > 0 ? static_cast<double>(decision_regret_total) /
                               static_cast<double>(decisions)
                         : 0.0;
  }
};

/// Runs one policy/workload/load configuration to completion and returns
/// aggregate statistics. Deterministic for a fixed config (including seed).
SimResult run_cluster_sim(const SimConfig& config, const Workload& workload);

}  // namespace finelb::sim
