#include "sim/engine.h"

#include <utility>

#include "common/check.h"

namespace finelb::sim {

void Engine::schedule_at(SimTime t, EventFn fn) {
  FINELB_CHECK(t >= now_, "cannot schedule into the past");
  queue_.push(Event{t, next_seq_++, std::move(fn)});
}

void Engine::schedule_after(SimDuration delay, EventFn fn) {
  FINELB_CHECK(delay >= 0, "negative event delay");
  schedule_at(now_ + delay, std::move(fn));
}

void Engine::run() {
  stopped_ = false;
  while (!queue_.empty() && !stopped_) {
    // priority_queue::top() is const; move out via const_cast before pop,
    // which is safe because the element is removed immediately after.
    Event event = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = event.time;
    ++processed_;
    event.fn();
  }
}

void Engine::run_until(SimTime t) {
  FINELB_CHECK(t >= now_, "cannot run backwards");
  stopped_ = false;
  while (!queue_.empty() && !stopped_ && queue_.top().time <= t) {
    Event event = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = event.time;
    ++processed_;
    event.fn();
  }
  if (!stopped_) now_ = t;
}

}  // namespace finelb::sim
