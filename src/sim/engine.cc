#include "sim/engine.h"

#include <cstring>

namespace finelb::sim {

void Engine::run() {
  stopped_ = false;
  while (live_ != 0 && !stopped_) {
    fire_next();
  }
}

void Engine::run_until(SimTime t) {
  FINELB_CHECK(t >= now_, "cannot run backwards");
  stopped_ = false;
  while (live_ != 0 && !stopped_) {
    if (!ensure_ready()) break;
    if (active_.front().time > t) break;
    fire_next();
  }
  if (!stopped_) now_ = t;
}

void Engine::grow_pool() {
  const auto base =
      static_cast<std::uint32_t>(chunks_.size() << kChunkShift);
  FINELB_CHECK(base + kChunkSize <= (std::size_t{1} << kSlotBits),
               "event slot pool exhausted");
  // Default-initialized (not value-initialized): slot storage is written
  // before it is ever read, and zeroing 20 kB per chunk would be waste.
  chunks_.emplace_back(new Slot[kChunkSize]);
  free_slots_.reserve(free_slots_.size() + kChunkSize);
  // Pushed in reverse so acquire_slot() hands out ascending indices within
  // the fresh chunk (front-to-back memory order on the common fill path).
  for (std::size_t i = kChunkSize; i-- > 0;) {
    free_slots_.push_back(base + static_cast<std::uint32_t>(i));
  }
}

void Engine::rebuild() {
  // Precondition (from ensure_ready): the active heap is empty, the rung
  // is spent, and staging_ or far_ holds events. All buckets are empty,
  // so the arena and store can be recycled wholesale.
  if (!head_) {
    head_.reset(new std::uint32_t[kRungBuckets]);
    std::fill_n(head_.get(), kRungBuckets, kNilNode);
  }
  arena_used_ = 0;

  SimTime lo = 0;
  SimTime hi = 0;
  bool have = false;
  for (const HeapEntry& e : staging_) {
    if (!have) {
      lo = hi = e.time;
      have = true;
    } else {
      lo = std::min(lo, e.time);
      hi = std::max(hi, e.time);
    }
  }
  if (!far_.empty()) {
    const SimTime far_min = far_.front().time;
    if (!have) {
      lo = hi = far_min;
      have = true;
    } else {
      lo = std::min(lo, far_min);
    }
  }

  // Bucket width: smallest power of two (at or above the adaptive floor)
  // that fits the observed span into one rung. Events past the end simply
  // wait in the far heap for the next rung.
  unsigned shift = base_shift_;
  while (shift < kMaxRungShift &&
         (static_cast<std::uint64_t>(hi - lo) >> shift) >= kRungBuckets) {
    ++shift;
  }
  rung_t0_ = lo;
  rung_shift_ = shift;
  rung_active_ = true;
  cur_bucket_ = 0;
  const SimTime end = rung_end();

  // Gather everything this rung will hold into staging_, then
  // counting-sort it into the contiguous store: histogram, prefix-sum,
  // scatter. After the scatter, off_[i] is the end of bucket i's slice.
  while (!far_.empty() && far_.front().time < end) {
    const HeapEntry e = heap_pop(far_);
    hi = std::max(hi, e.time);
    staging_.push_back(e);
  }
  const auto bucket_of = [this](SimTime t) {
    return static_cast<std::size_t>(
        static_cast<std::uint64_t>(t - rung_t0_) >> rung_shift_);
  };
  // Only buckets up to the highest in-span time are touched; zeroing and
  // prefix-summing stop there so a small rebuild does not pay for the
  // whole rung.
  idx_cap_ = hi >= end ? kRungBuckets : bucket_of(hi) + 1;
  off_.resize(kRungBuckets);
  std::fill(off_.begin(),
            off_.begin() + static_cast<std::ptrdiff_t>(idx_cap_), 0);
  std::uint64_t scattered = 0;
  for (const HeapEntry& e : staging_) {
    if (e.time >= end) continue;  // beyond the span: stays far
    const std::size_t idx = bucket_of(e.time);
    ++off_[idx];
    bitmap_[idx >> 6] |= std::uint64_t{1} << (idx & 63);
    ++scattered;
  }
  std::uint32_t running = 0;
  for (std::size_t i = 0; i < idx_cap_; ++i) {
    const std::uint32_t c = off_[i];
    off_[i] = running;
    running += c;
  }
  store_.resize(running);
  for (const HeapEntry& e : staging_) {
    if (e.time >= end) {
      heap_push(far_, e);
    } else {
      store_[off_[bucket_of(e.time)]++] = e;
    }
  }
  staging_.clear();

  // Width adaptation. A rung that drew almost nothing while events sit
  // just past its end is thrashing (rebuild per handful of events): widen
  // future rungs. A rung packed far beyond one event per bucket wastes
  // sort work in the active heap: narrow again.
  if (!far_.empty() && scattered < kRungBuckets / 64) {
    base_shift_ = std::min(base_shift_ + 2, kMaxRungShift);
  } else if (scattered > kRungBuckets * 8 && base_shift_ > 0) {
    --base_shift_;
  }

  // lo itself landed in bucket 0, so the rung is non-empty by construction.
  advance_bucket(0);
}

void Engine::destroy_pending() {
  const auto destroy_entry = [this](const HeapEntry& e) {
    Slot& slot = slot_at(e.slot());
    slot.op(slot, SlotOp::kDestroy);
  };
  for (const HeapEntry& e : active_) destroy_entry(e);
  active_.clear();
  for (const HeapEntry& e : staging_) destroy_entry(e);
  staging_.clear();
  for (const HeapEntry& e : far_) destroy_entry(e);
  far_.clear();
  if (rung_active_ && head_) {
    // Buckets whose bit is still set were never loaded: destroy their
    // store slices and any mid-drain chains.
    for (std::size_t w = 0; w < kBitmapWords; ++w) {
      std::uint64_t word = bitmap_[w];
      while (word != 0) {
        const std::size_t idx =
            (w << 6) + static_cast<std::size_t>(std::countr_zero(word));
        word &= word - 1;
        if (idx < idx_cap_) {
          const std::uint32_t b0 = idx == 0 ? 0 : off_[idx - 1];
          for (std::uint32_t i = b0; i < off_[idx]; ++i) {
            destroy_entry(store_[i]);
          }
        }
        std::uint32_t node = head_[idx];
        head_[idx] = kNilNode;
        while (node != kNilNode) {
          const BucketNode& bn = arena_[node];
          for (std::uint32_t j = 0; j < bn.count; ++j) {
            destroy_entry(bn.entries[j]);
          }
          node = bn.next;
        }
      }
    }
  }
  std::memset(bitmap_, 0, sizeof(bitmap_));
  arena_used_ = 0;
  rung_active_ = false;
  live_ = 0;
}

}  // namespace finelb::sim
