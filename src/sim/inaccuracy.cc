#include "sim/inaccuracy.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <functional>

#include "common/check.h"
#include "common/rng.h"
#include "sim/engine.h"

namespace finelb::sim {

void QueueTrajectory::append(SimTime time, std::int32_t value) {
  FINELB_CHECK(times_.empty() || time >= times_.back(),
               "trajectory steps must be time-ordered");
  FINELB_CHECK(value >= 0, "queue length cannot be negative");
  times_.push_back(time);
  values_.push_back(value);
}

std::int32_t QueueTrajectory::value_at(SimTime t) const {
  const auto it = std::upper_bound(times_.begin(), times_.end(), t);
  if (it == times_.begin()) return 0;
  return values_[static_cast<std::size_t>(it - times_.begin()) - 1];
}

SimTime QueueTrajectory::start() const {
  FINELB_CHECK(!times_.empty(), "empty trajectory");
  return times_.front();
}

SimTime QueueTrajectory::end() const {
  FINELB_CHECK(!times_.empty(), "empty trajectory");
  return times_.back();
}

QueueTrajectory record_single_server_trajectory(const Workload& workload,
                                                double rho,
                                                std::int64_t requests,
                                                std::uint64_t seed) {
  FINELB_CHECK(rho > 0.0 && rho < 1.0, "rho must be in (0, 1)");
  FINELB_CHECK(requests > 0, "need at least one request");

  Engine engine;
  QueueTrajectory trajectory;
  auto source =
      workload.make_source(workload.arrival_scale_for_load(rho, 1), seed);

  struct State {
    std::int32_t qlen = 0;
    bool busy = false;
    std::deque<SimDuration> waiting;
    std::int64_t generated = 0;
  } state;

  // Forward declarations via std::function so the two closures can chain.
  std::function<void(SimDuration)> start_service;
  std::function<void()> schedule_arrival;

  start_service = [&](SimDuration service_time) {
    state.busy = true;
    engine.schedule_after(service_time, [&] {
      --state.qlen;
      trajectory.append(engine.now(), state.qlen);
      state.busy = false;
      if (!state.waiting.empty()) {
        const SimDuration next = state.waiting.front();
        state.waiting.pop_front();
        start_service(next);
      }
    });
  };

  schedule_arrival = [&] {
    if (state.generated >= requests) return;
    ++state.generated;
    const TraceRecord rec = source->next();
    engine.schedule_after(rec.arrival_interval, [&, rec] {
      ++state.qlen;
      trajectory.append(engine.now(), state.qlen);
      if (state.busy) {
        state.waiting.push_back(rec.service_time);
      } else {
        start_service(rec.service_time);
      }
      schedule_arrival();
    });
  };

  schedule_arrival();
  engine.run();
  return trajectory;
}

double measure_inaccuracy(const QueueTrajectory& trajectory, SimDuration delta,
                          std::int64_t samples, std::uint64_t seed) {
  FINELB_CHECK(delta >= 0, "delay must be non-negative");
  FINELB_CHECK(samples > 0, "need at least one sample");
  const SimTime start = trajectory.start();
  const SimTime end = trajectory.end();
  // Skip the initial transient and keep t + delta inside the record.
  const SimTime lo = start + (end - start) / 10;
  const SimTime hi = end - delta;
  FINELB_CHECK(hi > lo, "trajectory too short for requested delay");

  Rng rng(seed);
  double total = 0.0;
  for (std::int64_t i = 0; i < samples; ++i) {
    const SimTime t =
        lo + static_cast<SimTime>(rng.uniform_int(
                 static_cast<std::uint64_t>(hi - lo)));
    total += std::abs(trajectory.value_at(t + delta) - trajectory.value_at(t));
  }
  return total / static_cast<double>(samples);
}

std::vector<InaccuracyPoint> inaccuracy_sweep(
    const Workload& workload, double rho,
    const std::vector<double>& normalized_delays, std::int64_t requests,
    std::int64_t samples, std::uint64_t seed) {
  const QueueTrajectory trajectory =
      record_single_server_trajectory(workload, rho, requests, seed);
  const double mean_service = workload.mean_service_sec();
  std::vector<InaccuracyPoint> points;
  points.reserve(normalized_delays.size());
  for (const double norm : normalized_delays) {
    const SimDuration delta = from_sec(norm * mean_service);
    points.push_back(
        {norm, measure_inaccuracy(trajectory, delta, samples, seed + 7)});
  }
  return points;
}

}  // namespace finelb::sim
