// Load-index inaccuracy study (paper §2.1, Figure 2).
//
// Simulates a single FIFO server fed by a workload at a target utilization,
// records the full queue-length trajectory as a step function, and measures
// the mean absolute queue-length difference between observations Delta time
// apart:  inaccuracy(Delta) = E |Q(t + Delta) - Q(t)|.
//
// For the Poisson/Exp workload this saturates (as Delta grows) at the
// paper's Equation (1) bound 2 rho / (1 - rho^2)
// (stats/queueing.h::stale_index_inaccuracy_bound).
#pragma once

#include <cstdint>
#include <vector>

#include "common/time.h"
#include "workload/workload.h"

namespace finelb::sim {

/// Queue length of a single server as a right-continuous step function.
class QueueTrajectory {
 public:
  /// Appends a step: the queue length becomes `value` at `time`. Times must
  /// be non-decreasing.
  void append(SimTime time, std::int32_t value);

  /// Queue length at time t (value of the most recent step at or before t;
  /// 0 before the first step).
  std::int32_t value_at(SimTime t) const;

  SimTime start() const;
  SimTime end() const;
  std::size_t steps() const { return times_.size(); }

 private:
  std::vector<SimTime> times_;
  std::vector<std::int32_t> values_;
};

/// Runs a single-server simulation of `workload` at utilization `rho` for
/// `requests` arrivals and returns the queue-length trajectory.
QueueTrajectory record_single_server_trajectory(const Workload& workload,
                                                double rho,
                                                std::int64_t requests,
                                                std::uint64_t seed);

/// Mean |Q(t+delta) - Q(t)| over `samples` uniformly random t drawn from the
/// middle of the trajectory (both t and t+delta stay inside the recorded
/// span, and the first 10% is skipped as warmup).
double measure_inaccuracy(const QueueTrajectory& trajectory, SimDuration delta,
                          std::int64_t samples, std::uint64_t seed);

struct InaccuracyPoint {
  double delay_over_service;  // delay normalized to mean service time
  double inaccuracy;          // mean |Q(t+d) - Q(t)|
};

/// The full Figure 2 sweep for one workload/utilization.
std::vector<InaccuracyPoint> inaccuracy_sweep(
    const Workload& workload, double rho,
    const std::vector<double>& normalized_delays, std::int64_t requests,
    std::int64_t samples, std::uint64_t seed);

}  // namespace finelb::sim
