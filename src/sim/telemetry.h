// Simulator-side telemetry adapter: maps a SimResult onto the same
// MetricsSnapshot document the prototype nodes export (DESIGN.md §10), so a
// sweep's JSON output and a live cluster scrape can be diffed field-for-
// field. The simulator itself records through SimResult's accumulators (no
// registry on the event loop — the sim is single-threaded and already
// allocation-free); this adapter is a pure post-run translation.
#pragma once

#include <string_view>

#include "sim/config.h"
#include "telemetry/metrics.h"

namespace finelb::sim {

/// Translates a finished simulation into the exporter schema under node name
/// `node` (convention: "sim.<policy>"). Counter/histogram names match the
/// prototype ClientNode/ServerNode metrics; quantities the simulator only
/// has in aggregate (utilization, queue-on-arrival mean) land in `values`.
telemetry::MetricsSnapshot to_metrics_snapshot(const SimResult& result,
                                               std::string_view node);

/// The simulation snapshot as the exporter's JSON document.
std::string to_stats_json(const SimResult& result, std::string_view node);

}  // namespace finelb::sim
