// Cluster simulation model (paper §2).
//
// Entities: N servers (non-preemptive processing unit + FIFO queue), C
// client streams generating requests from the workload, and a policy layer
// that decides the target server per request. All five policies of
// core/policy.h are implemented in terms of simulated message events.
//
// Timing model per request (client-observed response time):
//   generated -> [policy: 0 for random/rr/ideal/broadcast, poll RTT for
//   polling] -> request transit -> FIFO queue -> service -> response
//   transit -> recorded.
#include <deque>
#include <memory>
#include <vector>

#include "common/check.h"
#include "core/selection.h"
#include "sim/config.h"
#include "sim/engine.h"

namespace finelb::sim {
namespace {

struct Job {
  std::int64_t index = 0;
  SimTime generated_at = 0;
  SimDuration service_time = 0;
  SimTime dispatched_at = 0;  // when the policy decision completed
};

class Simulation {
 public:
  Simulation(const SimConfig& config, const Workload& workload)
      : config_(config), root_rng_(config.seed) {
    FINELB_CHECK(config.servers >= 1, "need at least one server");
    FINELB_CHECK(config.clients >= 1, "need at least one client stream");
    FINELB_CHECK(config.load > 0.0 && config.load < 1.0,
                 "load must be in (0, 1)");
    FINELB_CHECK(config.total_requests > config.warmup_requests,
                 "total_requests must exceed warmup_requests");

    FINELB_CHECK(config.server_speeds.empty() ||
                     config.server_speeds.size() ==
                         static_cast<std::size_t>(config.servers),
                 "server_speeds must be empty or one entry per server");
    servers_.resize(static_cast<std::size_t>(config.servers));
    all_server_ids_.reserve(servers_.size());
    double total_speed = 0.0;
    for (std::size_t s = 0; s < servers_.size(); ++s) {
      all_server_ids_.push_back(static_cast<ServerId>(s));
      servers_[s].rng = root_rng_.split();
      if (!config.server_speeds.empty()) {
        FINELB_CHECK(config.server_speeds[s] > 0.0,
                     "server speeds must be positive");
        servers_[s].speed = config.server_speeds[s];
      }
      total_speed += servers_[s].speed;
    }
    for (const ServerOutage& outage : config.outages) {
      FINELB_CHECK(outage.server >= 0 && outage.server < config.servers,
                   "outage names an unknown server");
      FINELB_CHECK(outage.start >= 0 && outage.duration > 0,
                   "outage window must be non-negative and non-empty");
    }

    // `load` is offered against the total cluster speed, so heterogeneous
    // clusters are driven at the same aggregate utilization.
    const double scale =
        workload.arrival_scale_for_load(config.load, config.servers) *
        (static_cast<double>(config.servers) / total_speed) *
        static_cast<double>(config.clients);
    clients_.resize(static_cast<std::size_t>(config.clients));
    for (std::size_t c = 0; c < clients_.size(); ++c) {
      clients_[c].source = workload.make_source(scale, config.seed + 101 * c);
      clients_[c].rng = root_rng_.split();
      clients_[c].table.resize(servers_.size());
      for (std::size_t s = 0; s < servers_.size(); ++s) {
        clients_[c].table[s] = {static_cast<ServerId>(s), 0, 0};
      }
    }
  }

  SimResult run() {
    result_.per_server_served.assign(servers_.size(), 0);
    for (std::size_t c = 0; c < clients_.size(); ++c) {
      schedule_next_arrival(c);
    }
    if (config_.policy.kind == PolicyKind::kBroadcast) {
      for (std::size_t s = 0; s < servers_.size(); ++s) {
        schedule_broadcast(s);
      }
    }
    for (const ServerOutage& outage : config_.outages) {
      const auto target = static_cast<std::size_t>(outage.server);
      engine_.schedule_at(outage.start,
                          [this, target] { servers_[target].paused = true; });
      engine_.schedule_at(outage.start + outage.duration, [this, target] {
        servers_[target].paused = false;
        maybe_start_next(static_cast<ServerId>(target));
      });
    }
    engine_.run();
    finalize();
    return std::move(result_);
  }

 private:
  struct Server {
    std::deque<Job> waiting;
    double speed = 1.0;
    bool paused = false;
    bool busy = false;
    std::int32_t qlen = 0;       // waiting + in service
    std::int32_t committed = 0;  // qlen + dispatched-but-not-completed
    SimDuration busy_time = 0;
    Rng rng;
  };

  struct Client {
    std::unique_ptr<RequestSource> source;
    Rng rng;
    RoundRobinCursor rr;
    std::vector<ServerLoad> table;  // broadcast policy's local view
    /// Memory-augmented polling: last round's winner (kInvalidServer when
    /// unset or invalidated by a blind dispatch).
    ServerLoad memory{kInvalidServer, 0, 0};
  };

  /// In-flight poll round for one request (polling policy only).
  struct PollRound {
    Job job;
    std::size_t client = 0;
    std::vector<ServerId> targets;
    std::vector<ServerLoad> replies;
    bool dispatched = false;
  };

  // --- request generation --------------------------------------------------

  void schedule_next_arrival(std::size_t c) {
    if (generated_ >= config_.total_requests) return;
    const TraceRecord rec = clients_[c].source->next();
    ++generated_;
    const std::int64_t index = generated_ - 1;
    engine_.schedule_after(rec.arrival_interval, [this, c, index, rec] {
      Job job;
      job.index = index;
      job.generated_at = engine_.now();
      job.service_time = rec.service_time;
      handle_new_request(c, job);
      schedule_next_arrival(c);
    });
  }

  void handle_new_request(std::size_t c, const Job& job) {
    Client& client = clients_[c];
    switch (config_.policy.kind) {
      case PolicyKind::kRandom:
        dispatch(job, pick_random(all_server_ids_, client.rng));
        break;
      case PolicyKind::kRoundRobin:
        dispatch(job, client.rr.next(all_server_ids_));
        break;
      case PolicyKind::kIdeal: {
        // The oracle sees assigned-but-uncompleted counts, matching the
        // prototype's centralized manager which increments on assignment.
        std::vector<ServerLoad> loads(servers_.size());
        for (std::size_t s = 0; s < servers_.size(); ++s) {
          loads[s] = {static_cast<ServerId>(s), servers_[s].committed,
                      engine_.now()};
        }
        dispatch(job, pick_least_loaded(loads, client.rng));
        break;
      }
      case PolicyKind::kBroadcast: {
        const ServerId target = pick_least_loaded(client.table, client.rng);
        if (config_.policy.optimistic_increment) {
          ++client.table[static_cast<std::size_t>(target)].queue_length;
        }
        dispatch(job, target);
        break;
      }
      case PolicyKind::kPolling:
        start_poll_round(c, job);
        break;
    }
  }

  // --- random polling -------------------------------------------------------

  void start_poll_round(std::size_t c, const Job& job) {
    auto round = std::make_shared<PollRound>();
    round->job = job;
    round->client = c;
    round->targets = choose_poll_set(
        all_server_ids_, static_cast<std::size_t>(config_.policy.poll_size),
        clients_[c].rng);
    result_.polls_sent +=
        static_cast<std::int64_t>(round->targets.size());

    for (const ServerId target : round->targets) {
      ++result_.messages;  // inquiry
      engine_.schedule_after(config_.network.poll_oneway, [this, round,
                                                           target] {
        answer_poll(round, target);
      });
    }
    if (config_.policy.discard_timeout > 0) {
      engine_.schedule_after(config_.policy.discard_timeout, [this, round] {
        if (!round->dispatched) finish_poll_round(*round);
      });
    }
  }

  void answer_poll(const std::shared_ptr<PollRound>& round, ServerId target) {
    Server& server = servers_[static_cast<std::size_t>(target)];
    // Reply cost: a fixed CPU charge plus an optional queue-proportional
    // term modelling slow replies from busy servers (paper §3.2 profile).
    SimDuration reply_delay = config_.network.poll_reply_cpu;
    if (config_.network.poll_reply_scales_with_queue) {
      reply_delay += config_.network.poll_reply_cpu * server.qlen;
    }
    const ServerLoad observation{target, server.qlen, engine_.now()};
    ++result_.messages;  // reply
    engine_.schedule_after(
        reply_delay + config_.network.poll_oneway, [this, round, observation] {
          if (round->dispatched) {
            ++result_.polls_discarded;
            return;
          }
          round->replies.push_back(observation);
          if (round->replies.size() == round->targets.size()) {
            finish_poll_round(*round);
          }
        });
  }

  void finish_poll_round(PollRound& round) {
    round.dispatched = true;
    Client& client = clients_[round.client];
    ServerId target = kInvalidServer;
    std::vector<ServerLoad> candidates = round.replies;
    if (config_.policy.poll_memory &&
        client.memory.server != kInvalidServer) {
      candidates.push_back(client.memory);
    }
    if (candidates.empty()) {
      target = pick_random(round.targets, client.rng);
      client.memory = {kInvalidServer, 0, 0};  // blind dispatch: no info
    } else {
      target = pick_least_loaded(candidates, client.rng);
      if (config_.policy.poll_memory) {
        // Remember the winner, accounting for the access we now add to it.
        for (const ServerLoad& entry : candidates) {
          if (entry.server == target) {
            client.memory = {target, entry.queue_length + 1, engine_.now()};
            break;
          }
        }
      }
    }
    if (should_record(round.job)) {
      result_.poll_time_ms.add(to_ms(engine_.now() - round.job.generated_at));
    }
    dispatch(round.job, target);
  }

  // --- dispatch, queueing, service ------------------------------------------

  void dispatch(Job job, ServerId target) {
    job.dispatched_at = engine_.now();
    Server& server = servers_[static_cast<std::size_t>(target)];
    ++server.committed;
    ++result_.messages;  // request
    engine_.schedule_after(config_.network.request_oneway,
                           [this, job, target] { arrive(job, target); });
  }

  void arrive(const Job& job, ServerId target) {
    Server& server = servers_[static_cast<std::size_t>(target)];
    if (should_record(job)) {
      result_.queue_on_arrival.add(server.qlen);
    }
    ++server.qlen;
    if (server.busy || server.paused) {
      server.waiting.push_back(job);
    } else {
      begin_service(job, target);
    }
  }

  /// Starts the next waiting job if the unit is free and not paused.
  void maybe_start_next(ServerId target) {
    Server& server = servers_[static_cast<std::size_t>(target)];
    if (server.busy || server.paused || server.waiting.empty()) return;
    const Job next = server.waiting.front();
    server.waiting.pop_front();
    begin_service(next, target);
  }

  void begin_service(const Job& job, ServerId target) {
    Server& server = servers_[static_cast<std::size_t>(target)];
    server.busy = true;
    const auto effective = static_cast<SimDuration>(
        static_cast<double>(job.service_time) / server.speed);
    engine_.schedule_after(effective, [this, job, target, effective] {
      complete_service(job, target, effective);
    });
  }

  void complete_service(const Job& job, ServerId target,
                        SimDuration effective) {
    Server& server = servers_[static_cast<std::size_t>(target)];
    server.busy_time += effective;
    --server.qlen;
    --server.committed;
    server.busy = false;
    ++result_.per_server_served[static_cast<std::size_t>(target)];
    maybe_start_next(target);
    ++result_.messages;  // response
    engine_.schedule_after(config_.network.request_oneway,
                           [this, job] { receive_response(job); });
  }

  void receive_response(const Job& job) {
    if (should_record(job)) {
      const double rt_ms = to_ms(engine_.now() - job.generated_at);
      result_.response_ms.add(rt_ms);
      result_.response_hist_ms.add(rt_ms);
    }
    ++result_.completed;
    if (result_.completed == config_.total_requests) engine_.stop();
  }

  // --- broadcast policy ------------------------------------------------------

  void schedule_broadcast(std::size_t s) {
    const double mean = static_cast<double>(config_.policy.broadcast_interval);
    const SimDuration interval =
        config_.policy.broadcast_jitter
            ? static_cast<SimDuration>(
                  servers_[s].rng.uniform(0.5 * mean, 1.5 * mean))
            : static_cast<SimDuration>(mean);
    engine_.schedule_after(interval, [this, s] {
      ++result_.broadcasts_sent;
      const ServerLoad announcement{static_cast<ServerId>(s),
                                    servers_[s].qlen, engine_.now()};
      for (std::size_t c = 0; c < clients_.size(); ++c) {
        ++result_.messages;  // one delivery per listening client
        engine_.schedule_after(config_.network.broadcast_oneway,
                               [this, c, announcement] {
                                 clients_[c].table[static_cast<std::size_t>(
                                     announcement.server)] = announcement;
                               });
      }
      schedule_broadcast(s);
    });
  }

  // --- bookkeeping -----------------------------------------------------------

  bool should_record(const Job& job) const {
    return job.index >= config_.warmup_requests;
  }

  void finalize() {
    const double span = to_sec(engine_.now());
    if (span > 0.0) {
      double busy = 0.0;
      for (const Server& server : servers_) {
        busy += to_sec(server.busy_time);
      }
      result_.utilization = busy / (span * static_cast<double>(servers_.size()));
    }
  }

  SimConfig config_;
  Rng root_rng_;
  Engine engine_;
  std::vector<Server> servers_;
  std::vector<ServerId> all_server_ids_;
  std::vector<Client> clients_;
  std::int64_t generated_ = 0;
  SimResult result_;
};

}  // namespace

SimResult run_cluster_sim(const SimConfig& config, const Workload& workload) {
  Simulation simulation(config, workload);
  return simulation.run();
}

}  // namespace finelb::sim
