// Cluster simulation model (paper §2).
//
// Entities: N servers (non-preemptive processing unit + FIFO queue), C
// client streams generating requests from the workload, and a policy layer
// that decides the target server per request. All five policies of
// core/policy.h are implemented in terms of simulated message events.
//
// Timing model per request (client-observed response time):
//   generated -> [policy: 0 for random/rr/ideal/broadcast, poll RTT for
//   polling] -> request transit -> FIFO queue -> service -> response
//   transit -> recorded.
#include <deque>
#include <memory>
#include <vector>

#include "common/check.h"
#include "core/selection.h"
#include "sim/config.h"
#include "sim/engine.h"

namespace finelb::sim {
namespace {

struct Job {
  std::int64_t index = 0;
  SimTime generated_at = 0;
  SimDuration service_time = 0;
  SimTime dispatched_at = 0;  // when the policy decision completed
};

class Simulation {
 public:
  Simulation(const SimConfig& config, const Workload& workload)
      : config_(config), root_rng_(config.seed) {
    FINELB_CHECK(config.servers >= 1, "need at least one server");
    FINELB_CHECK(config.clients >= 1, "need at least one client stream");
    FINELB_CHECK(config.load > 0.0 && config.load < 1.0,
                 "load must be in (0, 1)");
    FINELB_CHECK(config.total_requests > config.warmup_requests,
                 "total_requests must exceed warmup_requests");

    FINELB_CHECK(config.server_speeds.empty() ||
                     config.server_speeds.size() ==
                         static_cast<std::size_t>(config.servers),
                 "server_speeds must be empty or one entry per server");
    servers_.resize(static_cast<std::size_t>(config.servers));
    all_server_ids_.reserve(servers_.size());
    double total_speed = 0.0;
    for (std::size_t s = 0; s < servers_.size(); ++s) {
      all_server_ids_.push_back(static_cast<ServerId>(s));
      servers_[s].rng = root_rng_.split();
      if (!config.server_speeds.empty()) {
        FINELB_CHECK(config.server_speeds[s] > 0.0,
                     "server speeds must be positive");
        servers_[s].speed = config.server_speeds[s];
      }
      total_speed += servers_[s].speed;
    }
    for (const ServerOutage& outage : config.outages) {
      FINELB_CHECK(outage.server >= 0 && outage.server < config.servers,
                   "outage names an unknown server");
      FINELB_CHECK(outage.start >= 0 && outage.duration > 0,
                   "outage window must be non-negative and non-empty");
    }
    FINELB_CHECK(config.faults.msg_loss_prob >= 0.0 &&
                     config.faults.msg_loss_prob < 1.0,
                 "msg_loss_prob must be in [0, 1)");
    for (const ServerCrash& crash : config.faults.crashes) {
      FINELB_CHECK(crash.server >= 0 && crash.server < config.servers,
                   "crash names an unknown server");
      FINELB_CHECK(crash.at >= 0, "crash time must be non-negative");
      FINELB_CHECK(crash.restart_at <= 0 || crash.restart_at > crash.at,
                   "restart must follow the crash");
    }
    faults_enabled_ = config.faults.enabled();

    // `load` is offered against the total cluster speed, so heterogeneous
    // clusters are driven at the same aggregate utilization.
    const double scale =
        workload.arrival_scale_for_load(config.load, config.servers) *
        (static_cast<double>(config.servers) / total_speed) *
        static_cast<double>(config.clients);
    clients_.resize(static_cast<std::size_t>(config.clients));
    for (std::size_t c = 0; c < clients_.size(); ++c) {
      clients_[c].source = workload.make_source(scale, config.seed + 101 * c);
      clients_[c].rng = root_rng_.split();
      clients_[c].table.resize(servers_.size());
      for (std::size_t s = 0; s < servers_.size(); ++s) {
        clients_[c].table[s] = {static_cast<ServerId>(s), 0, 0};
      }
    }
    // The fault stream splits last so that fault-free configurations draw
    // exactly the seed sequences they always did.
    if (faults_enabled_) {
      fault_rng_ = root_rng_.split();
      job_resolved_.assign(static_cast<std::size_t>(config.total_requests),
                           0);
    }
  }

  SimResult run() {
    result_.per_server_served.assign(servers_.size(), 0);
    for (std::size_t c = 0; c < clients_.size(); ++c) {
      schedule_next_arrival(c);
    }
    if (config_.policy.kind == PolicyKind::kBroadcast) {
      for (std::size_t s = 0; s < servers_.size(); ++s) {
        schedule_broadcast(s);
      }
    }
    for (const ServerOutage& outage : config_.outages) {
      const auto target = static_cast<std::size_t>(outage.server);
      engine_.schedule_at(outage.start,
                          [this, target] { servers_[target].paused = true; });
      engine_.schedule_at(outage.start + outage.duration, [this, target] {
        servers_[target].paused = false;
        maybe_start_next(static_cast<ServerId>(target));
      });
    }
    for (const ServerCrash& crash : config_.faults.crashes) {
      const auto target = static_cast<std::size_t>(crash.server);
      engine_.schedule_at(crash.at, [this, target] { crash_server(target); });
      if (crash.restart_at > crash.at) {
        engine_.schedule_at(crash.restart_at, [this, target] {
          servers_[target].crashed = false;
        });
      }
    }
    engine_.run();
    finalize();
    return std::move(result_);
  }

 private:
  struct Server {
    std::deque<Job> waiting;
    double speed = 1.0;
    bool paused = false;
    bool busy = false;
    bool crashed = false;
    /// Bumped on every crash; a completion event from a pre-crash service
    /// is stale and must not touch the rebuilt server state.
    std::uint64_t epoch = 0;
    std::int32_t qlen = 0;       // waiting + in service
    std::int32_t committed = 0;  // qlen + dispatched-but-not-completed
    SimDuration busy_time = 0;
    Rng rng;
  };

  struct Client {
    std::unique_ptr<RequestSource> source;
    Rng rng;
    RoundRobinCursor rr;
    std::vector<ServerLoad> table;  // broadcast policy's local view
    /// Memory-augmented polling: last round's winner (kInvalidServer when
    /// unset or invalidated by a blind dispatch).
    ServerLoad memory{kInvalidServer, 0, 0};
  };

  /// In-flight poll round for one request (polling policy only).
  struct PollRound {
    Job job;
    std::size_t client = 0;
    std::vector<ServerId> targets;
    std::vector<ServerLoad> replies;
    bool dispatched = false;
  };

  // --- request generation --------------------------------------------------

  void schedule_next_arrival(std::size_t c) {
    if (generated_ >= config_.total_requests) return;
    const TraceRecord rec = clients_[c].source->next();
    ++generated_;
    const std::int64_t index = generated_ - 1;
    engine_.schedule_after(rec.arrival_interval, [this, c, index, rec] {
      Job job;
      job.index = index;
      job.generated_at = engine_.now();
      job.service_time = rec.service_time;
      handle_new_request(c, job);
      schedule_next_arrival(c);
    });
  }

  void handle_new_request(std::size_t c, const Job& job) {
    Client& client = clients_[c];
    switch (config_.policy.kind) {
      case PolicyKind::kRandom:
        dispatch(job, pick_random(all_server_ids_, client.rng));
        break;
      case PolicyKind::kRoundRobin:
        dispatch(job, client.rr.next(all_server_ids_));
        break;
      case PolicyKind::kIdeal: {
        // The oracle sees assigned-but-uncompleted counts, matching the
        // prototype's centralized manager which increments on assignment.
        std::vector<ServerLoad> loads(servers_.size());
        for (std::size_t s = 0; s < servers_.size(); ++s) {
          loads[s] = {static_cast<ServerId>(s), servers_[s].committed,
                      engine_.now()};
        }
        dispatch(job, pick_least_loaded(loads, client.rng));
        break;
      }
      case PolicyKind::kBroadcast: {
        const ServerId target = pick_least_loaded(client.table, client.rng);
        if (config_.policy.optimistic_increment) {
          ++client.table[static_cast<std::size_t>(target)].queue_length;
        }
        dispatch(job, target);
        break;
      }
      case PolicyKind::kPolling:
        start_poll_round(c, job);
        break;
    }
  }

  // --- random polling -------------------------------------------------------

  void start_poll_round(std::size_t c, const Job& job) {
    auto round = std::make_shared<PollRound>();
    round->job = job;
    round->client = c;
    round->targets = choose_poll_set(
        all_server_ids_, static_cast<std::size_t>(config_.policy.poll_size),
        clients_[c].rng);
    result_.polls_sent +=
        static_cast<std::int64_t>(round->targets.size());

    for (const ServerId target : round->targets) {
      ++result_.messages;  // inquiry
      if (lose_msg()) continue;  // inquiry eaten by the network
      engine_.schedule_after(config_.network.poll_oneway, [this, round,
                                                           target] {
        answer_poll(round, target);
      });
    }
    SimDuration round_deadline = config_.policy.discard_timeout;
    if (round_deadline <= 0 && faults_enabled_) {
      // Backstop: without the discard optimization a lossy network could
      // starve the round forever (mirrors the prototype's max_poll_wait).
      round_deadline = config_.faults.max_poll_wait;
    }
    if (round_deadline > 0) {
      engine_.schedule_after(round_deadline, [this, round] {
        if (!round->dispatched) finish_poll_round(*round);
      });
    }
  }

  void answer_poll(const std::shared_ptr<PollRound>& round, ServerId target) {
    Server& server = servers_[static_cast<std::size_t>(target)];
    if (server.crashed) return;  // nobody home to answer
    // Reply cost: a fixed CPU charge plus an optional queue-proportional
    // term modelling slow replies from busy servers (paper §3.2 profile).
    SimDuration reply_delay = config_.network.poll_reply_cpu;
    if (config_.network.poll_reply_scales_with_queue) {
      reply_delay += config_.network.poll_reply_cpu * server.qlen;
    }
    const ServerLoad observation{target, server.qlen, engine_.now()};
    ++result_.messages;  // reply
    if (lose_msg()) return;  // reply sent, eaten in transit
    engine_.schedule_after(
        reply_delay + config_.network.poll_oneway, [this, round, observation] {
          if (round->dispatched) {
            ++result_.polls_discarded;
            return;
          }
          round->replies.push_back(observation);
          if (round->replies.size() == round->targets.size()) {
            finish_poll_round(*round);
          }
        });
  }

  void finish_poll_round(PollRound& round) {
    round.dispatched = true;
    Client& client = clients_[round.client];
    ServerId target = kInvalidServer;
    std::vector<ServerLoad> candidates = round.replies;
    if (config_.policy.poll_memory &&
        client.memory.server != kInvalidServer) {
      candidates.push_back(client.memory);
    }
    // Route the choice through the core/selection.h choke point so the
    // audit sink (when configured) sees exactly what the prototype client
    // records. RNG consumption is identical to the unrecorded overloads.
    DecisionContext ctx;
    ctx.request_id = static_cast<std::uint64_t>(round.job.index);
    ctx.now_ns = engine_.now();
    ctx.sink = config_.decision_sink;
    const bool blind = candidates.empty();
    if (blind) {
      // Fallback rule: every inquiry or reply was lost — dispatch randomly
      // over the polled candidates rather than stalling the access.
      ++result_.poll_fallbacks;
      target = pick_random_fallback(round.targets, client.rng, ctx);
      client.memory = {kInvalidServer, 0, 0};  // blind dispatch: no info
    } else {
      target = pick_least_loaded(candidates, client.rng, ctx);
      if (config_.policy.poll_memory) {
        // Remember the winner, accounting for the access we now add to it.
        for (const ServerLoad& entry : candidates) {
          if (entry.server == target) {
            client.memory = {target, entry.queue_length + 1, engine_.now()};
            break;
          }
        }
      }
    }
    if (should_record(round.job)) {
      result_.poll_time_ms.add(to_ms(engine_.now() - round.job.generated_at));
      record_decision_quality(target, blind);
    }
    dispatch(round.job, target);
  }

  /// Exact regret accounting: the simulator is omniscient, so each polling
  /// decision is compared against the true least-loaded live server at the
  /// decision instant. Regret = extra queue depth the access suffered by
  /// not choosing the best server; a mistake is any positive-regret choice.
  void record_decision_quality(ServerId chosen, bool blind) {
    ++result_.decisions;
    if (blind) ++result_.decision_blind_fallbacks;
    std::int32_t best = servers_[static_cast<std::size_t>(chosen)].qlen;
    for (const Server& server : servers_) {
      if (!server.crashed && server.qlen < best) best = server.qlen;
    }
    const std::int64_t regret =
        servers_[static_cast<std::size_t>(chosen)].qlen - best;
    if (regret > 0) {
      ++result_.decision_mistakes;
      result_.decision_regret_total += regret;
    }
  }

  // --- dispatch, queueing, service ------------------------------------------

  void dispatch(Job job, ServerId target) {
    job.dispatched_at = engine_.now();
    Server& server = servers_[static_cast<std::size_t>(target)];
    ++result_.messages;  // request
    if (faults_enabled_) {
      // Failure detection is client-side only: whatever becomes of the
      // request, the access resolves by response or by timeout.
      engine_.schedule_after(config_.faults.response_timeout,
                             [this, index = job.index] { fail_job(index); });
      if (lose_msg()) return;  // request eaten; server never sees it
    }
    ++server.committed;
    engine_.schedule_after(config_.network.request_oneway,
                           [this, job, target] { arrive(job, target); });
  }

  void arrive(const Job& job, ServerId target) {
    Server& server = servers_[static_cast<std::size_t>(target)];
    if (server.crashed) {
      // The datagram hits a dead port: the access is lost; the dispatch-time
      // commitment is handed back so the oracle's view stays consistent.
      --server.committed;
      return;
    }
    if (should_record(job)) {
      result_.queue_on_arrival.add(server.qlen);
    }
    ++server.qlen;
    if (server.busy || server.paused) {
      server.waiting.push_back(job);
    } else {
      begin_service(job, target);
    }
  }

  /// Starts the next waiting job if the unit is free and not paused.
  void maybe_start_next(ServerId target) {
    Server& server = servers_[static_cast<std::size_t>(target)];
    if (server.busy || server.paused || server.waiting.empty()) return;
    const Job next = server.waiting.front();
    server.waiting.pop_front();
    begin_service(next, target);
  }

  void begin_service(const Job& job, ServerId target) {
    Server& server = servers_[static_cast<std::size_t>(target)];
    server.busy = true;
    const auto effective = static_cast<SimDuration>(
        static_cast<double>(job.service_time) / server.speed);
    engine_.schedule_after(
        effective, [this, job, target, effective, epoch = server.epoch] {
          complete_service(job, target, effective, epoch);
        });
  }

  void complete_service(const Job& job, ServerId target, SimDuration effective,
                        std::uint64_t epoch) {
    Server& server = servers_[static_cast<std::size_t>(target)];
    if (server.epoch != epoch) return;  // server crashed mid-service
    server.busy_time += effective;
    --server.qlen;
    --server.committed;
    server.busy = false;
    ++result_.per_server_served[static_cast<std::size_t>(target)];
    maybe_start_next(target);
    ++result_.messages;  // response
    if (lose_msg()) return;  // response eaten; client times the access out
    engine_.schedule_after(config_.network.request_oneway,
                           [this, job] { receive_response(job); });
  }

  void receive_response(const Job& job) {
    if (faults_enabled_ && !resolve_job(job.index)) {
      return;  // already failed by timeout; late response is discarded
    }
    if (should_record(job)) {
      const double rt_ms = to_ms(engine_.now() - job.generated_at);
      result_.response_ms.add(rt_ms);
      result_.response_hist_ms.add(rt_ms);
    }
    ++result_.completed;
    ++resolved_count_;
    if (resolved_count_ == config_.total_requests) engine_.stop();
  }

  // --- fault model -----------------------------------------------------------

  /// Draws the loss process for one message leg. No RNG is consumed when
  /// loss is disabled, keeping crash-only schedules reproducible against
  /// loss-free ones.
  bool lose_msg() {
    if (config_.faults.msg_loss_prob <= 0.0) return false;
    if (fault_rng_.uniform01() >= config_.faults.msg_loss_prob) return false;
    ++result_.drops_injected;
    return true;
  }

  /// Marks a job resolved; false when it was already resolved.
  bool resolve_job(std::int64_t index) {
    auto& flag = job_resolved_[static_cast<std::size_t>(index)];
    if (flag) return false;
    flag = 1;
    return true;
  }

  /// Response-timeout event: the access failed unless a response won.
  void fail_job(std::int64_t index) {
    if (!resolve_job(index)) return;
    ++result_.failed;
    ++resolved_count_;
    if (resolved_count_ == config_.total_requests) engine_.stop();
  }

  void crash_server(std::size_t target) {
    Server& server = servers_[target];
    server.crashed = true;
    ++server.epoch;
    // Queued and in-service accesses vanish; their clients discover the
    // failure by timeout. The committed count keeps only in-transit jobs
    // (they hand their slot back on arrival at the dead port).
    server.committed -= server.qlen;
    server.qlen = 0;
    server.waiting.clear();
    server.busy = false;
  }

  // --- broadcast policy ------------------------------------------------------

  void schedule_broadcast(std::size_t s) {
    const double mean = static_cast<double>(config_.policy.broadcast_interval);
    const SimDuration interval =
        config_.policy.broadcast_jitter
            ? static_cast<SimDuration>(
                  servers_[s].rng.uniform(0.5 * mean, 1.5 * mean))
            : static_cast<SimDuration>(mean);
    engine_.schedule_after(interval, [this, s] {
      // A crashed server announces nothing, but the timer keeps ticking so
      // announcements resume after a restart.
      if (!servers_[s].crashed) {
        ++result_.broadcasts_sent;
        const ServerLoad announcement{static_cast<ServerId>(s),
                                      servers_[s].qlen, engine_.now()};
        for (std::size_t c = 0; c < clients_.size(); ++c) {
          ++result_.messages;  // one delivery per listening client
          if (lose_msg()) continue;  // this client's copy was eaten
          engine_.schedule_after(config_.network.broadcast_oneway,
                                 [this, c, announcement] {
                                   clients_[c].table[static_cast<std::size_t>(
                                       announcement.server)] = announcement;
                                 });
        }
      }
      schedule_broadcast(s);
    });
  }

  // --- bookkeeping -----------------------------------------------------------

  bool should_record(const Job& job) const {
    return job.index >= config_.warmup_requests;
  }

  void finalize() {
    const double span = to_sec(engine_.now());
    if (span > 0.0) {
      double busy = 0.0;
      for (const Server& server : servers_) {
        busy += to_sec(server.busy_time);
      }
      result_.utilization = busy / (span * static_cast<double>(servers_.size()));
    }
  }

  SimConfig config_;
  Rng root_rng_;
  Engine engine_;
  std::vector<Server> servers_;
  std::vector<ServerId> all_server_ids_;
  std::vector<Client> clients_;
  std::int64_t generated_ = 0;
  std::int64_t resolved_count_ = 0;  // completed + failed
  bool faults_enabled_ = false;
  Rng fault_rng_;
  std::vector<std::uint8_t> job_resolved_;  // faults only; by job index
  SimResult result_;
};

}  // namespace

SimResult run_cluster_sim(const SimConfig& config, const Workload& workload) {
  Simulation simulation(config, workload);
  return simulation.run();
}

}  // namespace finelb::sim
