// Discrete-event simulation engine.
//
// A single-threaded event loop over simulated time. Events are ordered by
// (time, seq); `seq` makes same-time events fire in scheduling order, which
// keeps runs deterministic. The engine knows nothing about servers or
// policies — the cluster model in cluster_sim.cc builds on it, as do the
// tests that validate it against queueing theory.
//
// Hot-path design (this is the innermost loop of every simulation sweep):
//
//   * Callables live in a pool of fixed-size slots recycled through a LIFO
//     free list. Anything up to kInlineEventBytes (every closure in the
//     cluster model) is constructed in place: the steady state performs
//     zero heap allocations per event. Larger callables fall back to one
//     boxed allocation; they still go through the same slot machinery.
//   * The pending queue is a calendar rung, not a comparison heap. Events
//     are appended unsorted into power-of-two-width time buckets (O(1)),
//     and only the small *active* bucket is kept heap-ordered, so the
//     per-event cost is constant instead of O(log outstanding). Events
//     beyond the rung's span wait in a 4-ary overflow heap; events that
//     arrive while the engine is idle collect in an unsorted staging
//     buffer and are scattered into a fresh rung when draining starts.
//     Every container orders by the same strict total order (time, seq) —
//     seq is unique — so pop order is bit-identical to a plain binary
//     heap's.
//   * Queue entries are 16-byte PODs (time, packed seq+slot index): the
//     callable itself never moves, and sifts in the small heaps are
//     register/memcpy work.
//   * Nothing shrinks: slot chunks, bucket arena nodes, and vector
//     capacity stay owned by the engine until it dies. That is by design —
//     sweeps reach a steady outstanding-event plateau almost immediately.
#pragma once

#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/time.h"

namespace finelb::sim {

class Engine {
 public:
  /// Inline storage per event. 72 bytes fits the largest closure in the
  /// cluster model (service completion: this + Job + target + duration +
  /// epoch = 64 bytes) and rounds the slot to 80 bytes with its dispatch
  /// pointer.
  static constexpr std::size_t kInlineEventBytes = 72;

  Engine() = default;
  ~Engine() { destroy_pending(); }

  // The slot pool hands out stable indices; copying would alias live
  // callables and moving is never needed (simulations own their engine by
  // value for its whole lifetime).
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  SimTime now() const { return now_; }

  /// Schedules `fn` (any void() callable) at absolute time `t`; `t` must
  /// not precede `now()`.
  template <class F>
  void schedule_at(SimTime t, F&& fn) {
    FINELB_CHECK(t >= now_, "cannot schedule into the past");
    FINELB_CHECK(next_seq_ < kMaxSeq, "event sequence space exhausted");
    const std::uint32_t slot_index = acquire_slot();
    emplace_callable(slot_at(slot_index), std::forward<F>(fn));
    enqueue(HeapEntry{t, (next_seq_++ << kSlotBits) | slot_index});
  }

  /// Schedules `fn` after `delay` (>= 0) simulated time.
  template <class F>
  void schedule_after(SimDuration delay, F&& fn) {
    FINELB_CHECK(delay >= 0, "negative event delay");
    schedule_at(now_ + delay, std::forward<F>(fn));
  }

  /// Runs events until the queue empties or `stop()` is called.
  void run();

  /// Runs events with timestamp <= `t`, then advances the clock to `t`
  /// (even if the queue still has later events).
  void run_until(SimTime t);

  /// Makes run()/run_until() return after the current event completes.
  void stop() { stopped_ = true; }

  bool empty() const { return live_ == 0; }
  std::uint64_t events_processed() const { return processed_; }

 private:
  enum class SlotOp { kRun, kDestroy };

  /// One recyclable unit of event storage. `op` runs and destroys the
  /// callable (kRun, the common path) or only destroys it (kDestroy,
  /// engine teardown with events still pending).
  struct Slot {
    alignas(std::max_align_t) std::byte storage[kInlineEventBytes];
    void (*op)(Slot&, SlotOp);
  };

  /// Slot indices fit in 24 bits (16M outstanding events ≈ 1.3 GB of slot
  /// pool — far past any realistic sweep), which lets a queue entry pack
  /// (seq, slot) into one word and stay 16 bytes.
  static constexpr unsigned kSlotBits = 24;
  static constexpr std::uint64_t kSlotMask =
      (std::uint64_t{1} << kSlotBits) - 1;
  static constexpr std::uint64_t kMaxSeq = std::uint64_t{1}
                                           << (64 - kSlotBits);  // 2^40 events

  /// POD queue element: the callable itself never participates in sifts.
  /// `seq_slot` holds seq in the high 40 bits and the slot index in the low
  /// 24; seq is unique, so comparing the packed word orders by seq alone.
  struct HeapEntry {
    SimTime time;
    std::uint64_t seq_slot;
    std::uint32_t slot() const {
      return static_cast<std::uint32_t>(seq_slot & kSlotMask);
    }
  };
  static bool earlier(const HeapEntry& a, const HeapEntry& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.seq_slot < b.seq_slot;
  }

  static constexpr std::size_t kChunkShift = 8;  // 256 slots per chunk
  static constexpr std::size_t kChunkSize = std::size_t{1} << kChunkShift;
  static constexpr std::uint32_t kChunkMask =
      static_cast<std::uint32_t>(kChunkSize - 1);
  static constexpr std::size_t kHeapArity = 4;

  // ---- slot pool ----

  Slot& slot_at(std::uint32_t index) {
    return chunks_[index >> kChunkShift][index & kChunkMask];
  }

  std::uint32_t acquire_slot() {
    if (free_slots_.empty()) grow_pool();
    const std::uint32_t index = free_slots_.back();
    free_slots_.pop_back();
    return index;
  }

  void release_slot(std::uint32_t index) { free_slots_.push_back(index); }

  template <class F>
  static void emplace_callable(Slot& slot, F&& fn) {
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineEventBytes &&
                  alignof(Fn) <= alignof(std::max_align_t)) {
      ::new (static_cast<void*>(slot.storage)) Fn(std::forward<F>(fn));
      slot.op = [](Slot& s, SlotOp what) {
        Fn* f = std::launder(reinterpret_cast<Fn*>(s.storage));
        if (what == SlotOp::kRun) {
          struct Guard {
            Fn* f;
            ~Guard() { f->~Fn(); }
          } guard{f};
          (*f)();
        } else {
          f->~Fn();
        }
      };
    } else {
      // Oversized or over-aligned callable: boxed on the heap, the slot
      // stores only the pointer. Never taken by the cluster model.
      Fn* boxed = new Fn(std::forward<F>(fn));
      ::new (static_cast<void*>(slot.storage)) Fn*(boxed);
      slot.op = [](Slot& s, SlotOp what) {
        Fn* f = *std::launder(reinterpret_cast<Fn**>(s.storage));
        if (what == SlotOp::kRun) {
          struct Guard {
            Fn* f;
            ~Guard() { delete f; }
          } guard{f};
          (*f)();
        } else {
          delete f;
        }
      };
    }
  }

  // ---- 4-ary min-heap helpers (used for the active bucket and the
  // far-future overflow; both are small in the common case) ----

  /// Sifts `v` down from position `hole`. Top-down with an early exit;
  /// for arity 4 this beats both bottom-up (Wegener) deletion and a
  /// cmov-based branchless child selection (measured — speculation wins).
  static void sift_down(std::vector<HeapEntry>& h, std::size_t hole,
                        HeapEntry v) {
    const std::size_t n = h.size();
    for (;;) {
      const std::size_t first = hole * kHeapArity + 1;
      if (first >= n) break;
      const std::size_t end = std::min(first + kHeapArity, n);
      std::size_t best = first;
      for (std::size_t c = first + 1; c < end; ++c) {
        if (earlier(h[c], h[best])) best = c;
      }
      if (!earlier(h[best], v)) break;
      h[hole] = h[best];
      hole = best;
    }
    h[hole] = v;
  }

  static void heap_push(std::vector<HeapEntry>& h, HeapEntry e) {
    std::size_t hole = h.size();
    h.push_back(e);
    while (hole > 0) {
      const std::size_t parent = (hole - 1) / kHeapArity;
      if (!earlier(e, h[parent])) break;
      h[hole] = h[parent];
      hole = parent;
    }
    h[hole] = e;
  }

  HeapEntry heap_pop(std::vector<HeapEntry>& h) {
    const HeapEntry top = h.front();
    // The callable usually runs right after; start pulling its slot now.
    __builtin_prefetch(&slot_at(top.slot()));
    const HeapEntry last = h.back();
    h.pop_back();
    if (!h.empty()) sift_down(h, 0, last);
    return top;
  }

  /// Floyd heap construction: sift down every interior node.
  static void heap_build(std::vector<HeapEntry>& h) {
    const std::size_t n = h.size();
    if (n < 2) return;
    for (std::size_t i = (n - 2) / kHeapArity + 1; i-- > 0;) {
      sift_down(h, i, h[i]);
    }
  }

  // ---- calendar rung ----
  //
  // A rung divides [rung_t0_, rung_t0_ + kRungBuckets << rung_shift_) into
  // power-of-two-width buckets. A rebuild counting-sorts all pending
  // events into one contiguous store (`store_`, sliced per bucket by
  // `off_`), so the drain walks memory front to back; bucket contents are
  // heap-ordered only when the bucket becomes the active one. Events
  // scheduled *while the rung drains* land in per-bucket arena-node
  // chains (an O(1) append; the chain merges with the slice when its
  // bucket loads), or straight in the active heap when they land at or
  // before the active bucket (they are still in the future: schedule
  // times are >= now()). Inserts beyond the rung go to the far heap, and
  // the next rebuild pulls them in when this rung drains.

  static constexpr std::size_t kRungBuckets = 4096;
  static constexpr std::size_t kBitmapWords = kRungBuckets / 64;
  static constexpr std::uint32_t kNilNode = 0xffffffffu;
  static constexpr unsigned kMaxRungShift = 40;  // bucket width <= ~18 min
  static constexpr std::size_t kNodeEntries = 3;

  /// One cache line: chain link, entry count, three inline entries.
  struct alignas(64) BucketNode {
    std::uint32_t next;
    std::uint32_t count;
    HeapEntry entries[kNodeEntries];
  };

  SimTime rung_end() const {
    return rung_t0_ +
           (static_cast<SimTime>(kRungBuckets) << rung_shift_);
  }

  std::uint32_t alloc_node() {
    if (arena_used_ == arena_.size()) arena_.emplace_back();
    return arena_used_++;
  }

  void bucket_append(std::size_t idx, HeapEntry e) {
    std::uint32_t node = head_[idx];
    if (node == kNilNode || arena_[node].count == kNodeEntries) {
      const std::uint32_t fresh = alloc_node();
      arena_[fresh].next = node;
      arena_[fresh].count = 0;
      head_[idx] = fresh;
      bitmap_[idx >> 6] |= std::uint64_t{1} << (idx & 63);
      node = fresh;
    }
    BucketNode& bn = arena_[node];
    bn.entries[bn.count++] = e;
  }

  /// Routes a new entry to staging, the active heap, a rung bucket, or the
  /// far heap. This is the whole insert path: O(1) except for the small
  /// heap pushes.
  void enqueue(HeapEntry e) {
    ++live_;
    if (!rung_active_) {
      staging_.push_back(e);
      return;
    }
    // e.time can precede rung_t0_ (the clock may trail the rung start), so
    // the index computation must be signed; anything at or before the
    // active bucket joins the active heap.
    const std::int64_t rel = e.time - rung_t0_;
    const std::size_t idx =
        rel <= 0 ? 0
                 : static_cast<std::size_t>(
                       static_cast<std::uint64_t>(rel) >> rung_shift_);
    if (idx >= kRungBuckets) {
      heap_push(far_, e);
    } else if (idx <= cur_bucket_) {
      heap_push(active_, e);
    } else {
      bucket_append(idx, e);
    }
  }

  /// Moves bucket `idx` — its contiguous store slice plus any chained
  /// mid-drain inserts — into the (empty) active heap.
  void load_bucket(std::size_t idx) {
    // Store slices exist only below idx_cap_; off_ is stale past it.
    if (idx < idx_cap_) {
      const std::uint32_t b0 = idx == 0 ? 0 : off_[idx - 1];
      const std::uint32_t b1 = off_[idx];
      for (std::uint32_t i = b0; i < b1; ++i) active_.push_back(store_[i]);
    }
    std::uint32_t node = head_[idx];
    head_[idx] = kNilNode;
    while (node != kNilNode) {
      const BucketNode& bn = arena_[node];
      for (std::uint32_t j = 0; j < bn.count; ++j) {
        active_.push_back(bn.entries[j]);
      }
      node = bn.next;
    }
    heap_build(active_);
  }

  /// Finds the next non-empty bucket at or after `from` via the occupancy
  /// bitmap, loads it, and makes it active. Returns false if the rung has
  /// no events left.
  bool advance_bucket(std::size_t from) {
    std::size_t w = from >> 6;
    if (w >= kBitmapWords) return false;
    std::uint64_t word = bitmap_[w] & (~std::uint64_t{0} << (from & 63));
    for (;;) {
      if (word != 0) {
        const std::size_t idx =
            (w << 6) + static_cast<std::size_t>(std::countr_zero(word));
        bitmap_[w] &= ~(word & (~word + 1));  // clear that bit
        load_bucket(idx);
        cur_bucket_ = idx;
        return true;
      }
      if (++w == kBitmapWords) return false;
      word = bitmap_[w];
    }
  }

  /// Ensures the active heap holds the global minimum (rebuilding the rung
  /// from staging/far if needed). Returns false iff no events remain.
  bool ensure_ready() {
    for (;;) {
      if (!active_.empty()) return true;
      if (rung_active_) {
        if (advance_bucket(cur_bucket_ + 1)) continue;
        rung_active_ = false;
      }
      if (staging_.empty() && far_.empty()) return false;
      rebuild();
    }
  }

  /// Pops the minimum entry, advances the clock, and runs its callable.
  /// The slot returns to the free list only after the callable finishes,
  /// so events scheduled from inside it use other slots.
  void fire_next() {
    ensure_ready();
    const HeapEntry top = heap_pop(active_);
    --live_;
    // A fully drained engine retires its rung: the next batch of events
    // must not be matched against this rung's (now stale) store slices.
    if (live_ == 0) rung_active_ = false;
    now_ = top.time;
    ++processed_;
    const std::uint32_t slot_index = top.slot();
    Slot& slot = slot_at(slot_index);
    slot.op(slot, SlotOp::kRun);
    release_slot(slot_index);
  }

  void grow_pool();
  void rebuild();
  void destroy_pending();

  // Slot pool.
  std::vector<std::unique_ptr<Slot[]>> chunks_;
  std::vector<std::uint32_t> free_slots_;

  // Event queue (see "calendar rung" above).
  std::vector<HeapEntry> active_;   // current bucket, heap-ordered
  std::vector<HeapEntry> far_;      // beyond the rung span, heap-ordered
  std::vector<HeapEntry> staging_;  // scheduled while idle, unsorted
  std::vector<HeapEntry> store_;    // counting-sorted rung contents
  std::vector<std::uint32_t> off_;  // bucket i slice = [off_[i-1], off_[i])
  std::vector<BucketNode> arena_;   // mid-drain chain storage, reset per rung
  std::uint32_t arena_used_ = 0;
  std::unique_ptr<std::uint32_t[]> head_;  // bucket -> chain head
  std::uint64_t bitmap_[kBitmapWords] = {};
  bool rung_active_ = false;
  SimTime rung_t0_ = 0;
  unsigned rung_shift_ = 0;
  unsigned base_shift_ = 0;   // adaptive floor for future rungs
  std::size_t idx_cap_ = 0;   // buckets below this have store slices
  std::size_t cur_bucket_ = 0;

  SimTime now_ = 0;
  std::uint64_t live_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
  bool stopped_ = false;
};

}  // namespace finelb::sim
