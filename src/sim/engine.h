// Discrete-event simulation engine.
//
// A single-threaded event loop over simulated time: events are (time, seq,
// closure) triples in a binary heap; `seq` makes same-time events fire in
// scheduling order, which keeps runs deterministic. The engine knows nothing
// about servers or policies — the cluster model in cluster_sim.cc builds on
// it, as do the tests that validate it against queueing theory.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/time.h"

namespace finelb::sim {

using EventFn = std::function<void()>;

class Engine {
 public:
  SimTime now() const { return now_; }

  /// Schedules `fn` at absolute time `t`; `t` must not precede `now()`.
  void schedule_at(SimTime t, EventFn fn);

  /// Schedules `fn` after `delay` (>= 0) simulated time.
  void schedule_after(SimDuration delay, EventFn fn);

  /// Runs events until the queue empties or `stop()` is called.
  void run();

  /// Runs events with timestamp <= `t`, then advances the clock to `t`
  /// (even if the queue still has later events).
  void run_until(SimTime t);

  /// Makes run()/run_until() return after the current event completes.
  void stop() { stopped_ = true; }

  bool empty() const { return queue_.empty(); }
  std::uint64_t events_processed() const { return processed_; }

 private:
  struct Event {
    SimTime time;
    std::uint64_t seq;
    EventFn fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
  bool stopped_ = false;
};

}  // namespace finelb::sim
