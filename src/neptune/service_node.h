// Neptune service node: a cluster node that *provides* a service.
//
// Wraps the experiment-grade server machinery (FIFO request queue, worker
// pool, load-index server, soft-state publishing — see
// cluster/server_node.h) around an application-defined service: the
// application registers one handler per RPC method, declares which data
// partitions this node hosts, and the node executes each access
// "exclusively on one data partition" (paper §3.1).
//
// Threading contract for handlers: a handler runs on a worker thread; with
// the default pool size of 1 handlers never run concurrently on one node,
// matching the non-preemptive processing unit of the simulation model.
// With a larger pool the application must synchronize its own state.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "cluster/blocking_queue.h"
#include "core/load_index.h"
#include "net/socket.h"
#include "neptune/rpc.h"
#include "telemetry/metrics.h"

namespace finelb::neptune {

/// Application method handler: (partition, args) -> result bytes. Throwing
/// any exception maps to RpcStatus::kAppError.
using MethodHandler = std::function<std::vector<std::uint8_t>(
    std::uint32_t partition, std::span<const std::uint8_t> args)>;

struct ServiceNodeOptions {
  ServerId id = 0;
  std::string service_name;
  /// Data partitions hosted by this node.
  std::set<std::uint32_t> partitions;
  int worker_threads = 1;
  std::uint64_t seed = 1;
};

class ServiceNode {
 public:
  explicit ServiceNode(ServiceNodeOptions options);
  ~ServiceNode();

  ServiceNode(const ServiceNode&) = delete;
  ServiceNode& operator=(const ServiceNode&) = delete;

  /// Registers a handler for an RPC method id. Must precede start().
  void register_method(std::uint16_t method, MethodHandler handler);

  /// Begins periodic soft-state announcements (one Publish per hosted
  /// partition) to the availability channel. Must precede start().
  void enable_publishing(const net::Address& directory, SimDuration interval,
                         SimDuration ttl);

  void start();
  void stop();

  ServerId id() const { return options_.id; }
  net::Address service_address() const;
  net::Address load_address() const;
  std::int32_t queue_length() const {
    return qlen_.load(std::memory_order_relaxed);
  }
  std::int64_t accesses_served() const { return served_.load(); }
  std::int64_t app_errors() const { return app_errors_.load(); }

  /// Telemetry registry (metric naming: DESIGN.md §10). Scraping via
  /// metrics().snapshot() is safe while the node is running; remote scrapes
  /// arrive as STATS_INQUIRY datagrams on the load socket.
  const telemetry::Registry& metrics() const { return metrics_; }

  /// The node's snapshot as JSON — what a STATS_INQUIRY answers with.
  std::string stats_json() const;

 private:
  struct WorkItem {
    RpcRequest request;
    net::Address reply_to;
    std::int32_t queue_at_arrival = 0;
  };

  void service_recv_loop();
  void load_recv_loop();
  void answer_stats_inquiry(std::uint64_t seq, const net::Address& to);
  void publish_loop();
  void worker_loop();
  RpcResponse execute(const WorkItem& item);

  ServiceNodeOptions options_;
  std::map<std::uint16_t, MethodHandler> methods_;
  net::UdpSocket service_socket_;
  net::UdpSocket load_socket_;

  bool started_ = false;
  std::atomic<bool> running_{false};
  std::atomic<std::int32_t> qlen_{0};
  std::atomic<std::int64_t> served_{0};
  std::atomic<std::int64_t> app_errors_{0};

  // Telemetry (handles into metrics_, created once in the constructor;
  // recording is lock- and allocation-free).
  telemetry::Registry metrics_;
  telemetry::Counter m_served_;
  telemetry::Counter m_app_errors_;
  telemetry::Counter m_stats_scrapes_;
  telemetry::Counter m_send_failures_;
  telemetry::Histogram m_handler_time_ms_;

  cluster::BlockingQueue<WorkItem> queue_;
  std::vector<std::thread> threads_;

  bool publish_enabled_ = false;
  net::Address directory_{};
  SimDuration publish_interval_ = 0;
  SimDuration publish_ttl_ = 0;
};

}  // namespace finelb::neptune
