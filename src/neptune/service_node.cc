#include "neptune/service_node.h"

#include <array>

#include "common/check.h"
#include "common/log.h"
#include "net/clock.h"
#include "net/message.h"
#include "net/poller.h"
#include "telemetry/export.h"

namespace finelb::neptune {

ServiceNode::ServiceNode(ServiceNodeOptions options)
    : options_(std::move(options)) {
  FINELB_CHECK(!options_.service_name.empty(), "service needs a name");
  FINELB_CHECK(!options_.partitions.empty(),
               "service node must host at least one partition");
  FINELB_CHECK(options_.worker_threads >= 1, "need at least one worker");
  service_socket_.set_buffer_sizes(1 << 21);
  load_socket_.set_buffer_sizes(1 << 20);
  m_served_ = metrics_.counter("requests_served");
  m_app_errors_ = metrics_.counter("app_errors");
  m_stats_scrapes_ = metrics_.counter("stats_scrapes");
  m_send_failures_ = metrics_.counter("send_failures");
  m_handler_time_ms_ = metrics_.histogram("service_time_ms");
  metrics_.probe("queue_depth",
                 [this] { return qlen_.load(std::memory_order_relaxed); });
}

ServiceNode::~ServiceNode() { stop(); }

void ServiceNode::register_method(std::uint16_t method,
                                  MethodHandler handler) {
  FINELB_CHECK(!started_, "register_method must precede start()");
  FINELB_CHECK(handler != nullptr, "handler must be callable");
  FINELB_CHECK(methods_.emplace(method, std::move(handler)).second,
               "method already registered");
}

void ServiceNode::enable_publishing(const net::Address& directory,
                                    SimDuration interval, SimDuration ttl) {
  FINELB_CHECK(!started_, "enable_publishing must precede start()");
  FINELB_CHECK(interval > 0 && ttl > 0, "publish interval and ttl required");
  publish_enabled_ = true;
  directory_ = directory;
  publish_interval_ = interval;
  publish_ttl_ = ttl;
}

void ServiceNode::start() {
  FINELB_CHECK(!started_, "service nodes are single-shot: already started");
  FINELB_CHECK(!methods_.empty(), "no methods registered");
  started_ = true;
  running_.store(true);
  threads_.emplace_back([this] { service_recv_loop(); });
  threads_.emplace_back([this] { load_recv_loop(); });
  for (int i = 0; i < options_.worker_threads; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
  if (publish_enabled_) {
    threads_.emplace_back([this] { publish_loop(); });
  }
}

void ServiceNode::stop() {
  if (!running_.exchange(false)) return;
  queue_.close();
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
  threads_.clear();
}

net::Address ServiceNode::service_address() const {
  return service_socket_.local_address();
}

net::Address ServiceNode::load_address() const {
  return load_socket_.local_address();
}

void ServiceNode::service_recv_loop() {
  net::Poller poller;
  poller.add(service_socket_.fd(), 0);
  const std::span<std::uint8_t> buf = net::thread_scratch(64 * 1024);
  while (running_.load(std::memory_order_relaxed)) {
    if (poller.wait(50 * kMillisecond).empty()) continue;
    while (auto dgram = service_socket_.recv_from(buf)) {
      WorkItem item;
      if (!RpcRequest::try_decode(std::span(buf.data(), dgram->size),
                                  item.request)) {
        FINELB_LOG(kWarn, "neptune") << "dropping malformed RPC datagram";
        continue;
      }
      item.reply_to = dgram->from;
      item.queue_at_arrival = qlen_.fetch_add(1, std::memory_order_relaxed);
      queue_.push(std::move(item));
    }
  }
}

void ServiceNode::load_recv_loop() {
  net::Poller poller;
  poller.add(load_socket_.fd(), 0);
  // Inquiries arrive in bursts (each polling client fans out d at once):
  // drain and answer them batched, encoding replies straight into the
  // send batch's slots.
  net::DatagramBatch inquiries(32, 64);
  net::DatagramBatch replies(32, 64);
  while (running_.load(std::memory_order_relaxed)) {
    if (poller.wait(50 * kMillisecond).empty()) continue;
    while (load_socket_.recv_batch(inquiries) > 0) {
      replies.clear();
      for (std::size_t i = 0; i < inquiries.size(); ++i) {
        net::LoadInquiry inquiry;
        if (!net::LoadInquiry::try_decode(inquiries.payload(i), inquiry)) {
          // Not a load inquiry: the observability pull channel shares this
          // socket, so check for a stats or trace scrape before dropping
          // (cold paths — answering allocates, which is fine off the
          // polling fast path).
          net::StatsInquiry stats;
          if (net::StatsInquiry::try_decode(inquiries.payload(i), stats)) {
            answer_stats_inquiry(stats.seq, inquiries.address(i));
            continue;
          }
          // Neptune nodes keep no trace ring; answer with an empty reply so
          // scrapers still get the clock probe (server_ns) and terminate.
          net::TraceInquiry trace_inquiry;
          if (net::TraceInquiry::try_decode(inquiries.payload(i),
                                            trace_inquiry)) {
            net::TraceReply trace_reply;
            trace_reply.seq = trace_inquiry.seq;
            trace_reply.node = options_.id;
            trace_reply.server_ns = net::monotonic_now();
            std::array<std::uint8_t, net::kMaxFixedMsgSize> buf;
            const std::size_t len = trace_reply.encode_into(buf);
            if (len == 0 || !load_socket_.send_to({buf.data(), len},
                                                  inquiries.address(i))) {
              m_send_failures_.inc();
            }
          }
          continue;
        }
        net::LoadReply reply;
        reply.seq = inquiry.seq;
        reply.queue_length = qlen_.load(std::memory_order_relaxed);
        // Echo the trace context and stamp the reply-time clock so traced
        // polls against Neptune nodes stay mergeable/alignable too.
        reply.trace_id = inquiry.trace_id;
        reply.origin_ns = inquiry.origin_ns;
        reply.server_ns = net::monotonic_now();
        const auto slot = replies.stage();
        if (const std::size_t n = reply.encode_into(slot); n > 0) {
          replies.commit(n, inquiries.address(i));
        } else {
          // Batch full: answer this one immediately off a stack buffer.
          std::array<std::uint8_t, net::kMaxFixedMsgSize> buf;
          const std::size_t len = reply.encode_into(buf);
          load_socket_.send_to({buf.data(), len}, inquiries.address(i));
        }
      }
      load_socket_.send_batch(replies);
    }
  }
}

std::string ServiceNode::stats_json() const {
  return telemetry::to_json(metrics_.snapshot(
      "neptune." + options_.service_name + "." + std::to_string(options_.id)));
}

void ServiceNode::answer_stats_inquiry(std::uint64_t seq,
                                       const net::Address& to) {
  m_stats_scrapes_.inc();
  net::StatsReply reply;
  reply.seq = seq;
  reply.payload = stats_json();
  std::vector<std::uint8_t> buf(reply.encoded_size());
  const std::size_t n = reply.encode_into(buf);
  // n == 0 means the snapshot outgrew the wire format's 64 KiB string cap;
  // treat it like a kernel-refused send rather than crashing the node.
  if (n == 0 || !load_socket_.send_to({buf.data(), n}, to)) {
    m_send_failures_.inc();
  }
}

RpcResponse ServiceNode::execute(const WorkItem& item) {
  RpcResponse response;
  response.request_id = item.request.request_id;
  response.server = options_.id;
  response.queue_at_arrival = item.queue_at_arrival;
  if (!options_.partitions.count(item.request.partition)) {
    response.status = RpcStatus::kNoSuchPartition;
    return response;
  }
  const auto handler = methods_.find(item.request.method);
  if (handler == methods_.end()) {
    response.status = RpcStatus::kNoSuchMethod;
    return response;
  }
  try {
    response.result =
        handler->second(item.request.partition, item.request.args);
    response.status = RpcStatus::kOk;
  } catch (const std::exception& e) {
    FINELB_LOG(kWarn, "neptune")
        << options_.service_name << " method " << item.request.method
        << " failed: " << e.what();
    response.status = RpcStatus::kAppError;
    app_errors_.fetch_add(1, std::memory_order_relaxed);
    m_app_errors_.inc();
  }
  return response;
}

void ServiceNode::worker_loop() {
  while (true) {
    auto item = queue_.pop();
    if (!item) return;
    const SimTime start = net::monotonic_now();
    const RpcResponse response = execute(*item);
    m_handler_time_ms_.record(
        static_cast<double>(net::monotonic_now() - start) / 1e6);
    // Encode through the worker's thread-local scratch: no per-response
    // heap vector, whatever the result payload size.
    const std::span<std::uint8_t> out =
        net::thread_scratch(response.encoded_size());
    const std::size_t n = response.encode_into(out);
    if (!service_socket_.send_to(out.subspan(0, n), item->reply_to)) {
      m_send_failures_.inc();
    }
    qlen_.fetch_sub(1, std::memory_order_relaxed);
    // Telemetry first: anyone polling accesses_served() for completion then
    // scraping the registry sees the served count already mirrored.
    m_served_.inc();
    served_.fetch_add(1, std::memory_order_relaxed);
  }
}

void ServiceNode::publish_loop() {
  net::UdpSocket publish_socket;
  // One announcement per hosted partition, as the paper's nodes publish
  // "the service type, the data partitions it hosts, and the access
  // interface".
  std::vector<std::vector<std::uint8_t>> payloads;
  for (const std::uint32_t partition : options_.partitions) {
    net::Publish announcement;
    announcement.service = options_.service_name;
    announcement.partition = partition;
    announcement.server = options_.id;
    announcement.service_port = service_address().port;
    announcement.load_port = load_address().port;
    announcement.ttl_ms = static_cast<std::uint32_t>(to_ms(publish_ttl_));
    payloads.push_back(announcement.encode());
  }
  while (running_.load(std::memory_order_relaxed)) {
    for (const auto& payload : payloads) {
      publish_socket.send_to(payload, directory_);
    }
    const SimTime until = net::monotonic_now() + publish_interval_;
    while (running_.load(std::memory_order_relaxed) &&
           net::monotonic_now() < until) {
      net::sleep_for(std::min<SimDuration>(publish_interval_,
                                           20 * kMillisecond));
    }
  }
}

}  // namespace finelb::neptune
