#include "neptune/service_client.h"

#include <algorithm>
#include <array>

#include "common/check.h"
#include "common/log.h"
#include "net/clock.h"

namespace finelb::neptune {
namespace {

std::uint64_t address_key(const net::Address& addr) {
  return (static_cast<std::uint64_t>(addr.host) << 16) | addr.port;
}

}  // namespace

ServiceClient::ServiceClient(ServiceClientOptions options)
    : options_(std::move(options)),
      directory_(options_.directory),
      rng_(options_.seed) {
  FINELB_CHECK(!options_.service_name.empty(), "service name required");
  FINELB_CHECK(options_.max_attempts >= 1, "need at least one attempt");
  FINELB_CHECK(options_.policy.kind == PolicyKind::kRandom ||
                   options_.policy.kind == PolicyKind::kRoundRobin ||
                   options_.policy.kind == PolicyKind::kPolling,
               "service client supports random, round-robin, and polling");
  rpc_poller_.add(rpc_socket_.fd(), 0);
  refresh_mapping(/*force=*/true);
}

void ServiceClient::refresh_mapping(bool force) {
  const SimTime now = net::monotonic_now();
  if (!force && now - mapping_fetched_at_ < options_.mapping_refresh) return;
  // Backoff gate: after a failed fetch, even forced refreshes wait it out.
  // Every retry path funnels through here, so this is what bounds the
  // retry rate against a struggling directory.
  if (now < refresh_backoff_until_) return;
  std::vector<cluster::ServiceEndpoint> snapshot;
  try {
    snapshot = directory_.fetch(options_.service_name);
  } catch (const InvariantError&) {
    // Directory unreachable: keep the stale table (stale beats empty) and
    // back off exponentially with jitter, capped at 8x the refresh period.
    ++stats_.refresh_failures;
    refresh_backoff_ =
        refresh_backoff_ > 0
            ? std::min<SimDuration>(refresh_backoff_ * 2,
                                    options_.mapping_refresh * 8)
            : std::max<SimDuration>(options_.mapping_refresh / 4,
                                    50 * kMillisecond);
    refresh_backoff_until_ =
        now + static_cast<SimDuration>(static_cast<double>(refresh_backoff_) *
                                       rng_.uniform(0.75, 1.25));
    return;
  }
  refresh_backoff_ = 0;
  refresh_backoff_until_ = 0;
  mapping_.clear();
  for (const auto& endpoint : snapshot) {
    mapping_[endpoint.partition].push_back(endpoint);
  }
  mapping_fetched_at_ = now;
  ++stats_.mapping_refreshes;
}

std::span<const std::size_t> ServiceClient::live_indices(
    const std::vector<cluster::ServiceEndpoint>& group, SimTime now) {
  std::vector<std::size_t>& live = live_scratch_;
  live.clear();
  if (options_.blacklist_cooldown > 0) {
    for (std::size_t i = 0; i < group.size(); ++i) {
      const auto it = blacklist_until_.find(group[i].server);
      if (it != blacklist_until_.end() && it->second > now) {
        ++stats_.blacklist_hits;
      } else {
        live.push_back(i);
      }
    }
  }
  if (live.empty()) {
    for (std::size_t i = 0; i < group.size(); ++i) live.push_back(i);
  }
  return live;
}

void ServiceClient::mark_timed_out(ServerId server, SimTime now) {
  if (options_.blacklist_cooldown <= 0) return;
  SimTime& until = blacklist_until_[server];
  until = std::max(until, now + options_.blacklist_cooldown);
  ++stats_.blacklist_insertions;
}

std::size_t ServiceClient::replicas(std::uint32_t partition) {
  refresh_mapping(/*force=*/false);
  const auto it = mapping_.find(partition);
  return it == mapping_.end() ? 0 : it->second.size();
}

net::UdpSocket& ServiceClient::poll_socket_for(const net::Address& addr) {
  const std::uint64_t key = address_key(addr);
  const auto it = poll_sockets_.find(key);
  if (it != poll_sockets_.end()) return it->second;
  net::UdpSocket socket;
  socket.connect(addr);
  return poll_sockets_.emplace(key, std::move(socket)).first->second;
}

std::size_t ServiceClient::choose(
    const std::vector<cluster::ServiceEndpoint>& group) {
  if (group.size() == 1) return 0;
  // Replica choice runs over the group minus blacklisted (recently timed
  // out) replicas; ids may be sparse so cycle group positions, not ids.
  const std::span<const std::size_t> live =
      live_indices(group, net::monotonic_now());
  if (live.size() == 1) return live.front();
  position_scratch_.resize(live.size());
  for (std::size_t i = 0; i < live.size(); ++i) {
    position_scratch_[i] = static_cast<ServerId>(live[i]);
  }
  switch (options_.policy.kind) {
    case PolicyKind::kRandom:
      return live[rng_.uniform_int(live.size())];
    case PolicyKind::kRoundRobin:
      return static_cast<std::size_t>(rr_.next(position_scratch_));
    case PolicyKind::kPolling:
      break;
    default:
      FINELB_CHECK(false, "unreachable: policy validated in constructor");
  }

  // Random polling over the live replica positions: partial Fisher-Yates
  // in place on position_scratch_ (it already holds the candidates, so the
  // copying choose_poll_set_into would be a wasted pass).
  std::vector<ServerId>& targets = position_scratch_;
  {
    const std::size_t n = targets.size();
    const std::size_t k =
        std::min(static_cast<std::size_t>(options_.policy.poll_size), n);
    for (std::size_t i = 0; i < k; ++i) {
      const std::size_t j = i + rng_.uniform_int(n - i);
      std::swap(targets[i], targets[j]);
    }
    targets.resize(k);
  }

  poll_poller_.clear();
  seq_to_index_.clear();
  for (const ServerId position : targets) {
    const auto index = static_cast<std::size_t>(position);
    net::UdpSocket& socket = poll_socket_for(group[index].load_addr);
    net::LoadInquiry inquiry;
    inquiry.seq = next_id_++;
    std::array<std::uint8_t, net::kMaxFixedMsgSize> inquiry_buf;
    const std::size_t inquiry_len = inquiry.encode_into(inquiry_buf);
    if (!socket.send({inquiry_buf.data(), inquiry_len})) continue;
    ++stats_.polls_sent;
    seq_to_index_.emplace_back(inquiry.seq, index);
    poll_poller_.add(socket.fd(), inquiry.seq);
  }
  if (seq_to_index_.empty()) return live[rng_.uniform_int(live.size())];

  const SimDuration wait = options_.policy.discard_timeout > 0
                               ? options_.policy.discard_timeout
                               : options_.max_poll_wait;
  const SimTime deadline = net::monotonic_now() + wait;
  std::vector<ServerLoad>& replies = reply_scratch_;
  replies.clear();
  std::array<std::uint8_t, 64> buf{};
  while (replies.size() < seq_to_index_.size()) {
    const SimDuration left = deadline - net::monotonic_now();
    if (left <= 0) break;  // discard outstanding slow polls
    for (const net::Ready& ready : poll_poller_.wait(left)) {
      if (!ready.readable) continue;
      const std::pair<std::uint64_t, std::size_t>* entry = nullptr;
      for (const auto& candidate : seq_to_index_) {
        if (candidate.first == ready.tag) {
          entry = &candidate;
          break;
        }
      }
      if (entry == nullptr) continue;
      net::UdpSocket& socket = poll_socket_for(group[entry->second].load_addr);
      while (auto size = socket.recv(buf)) {
        net::LoadReply reply;
        if (!net::LoadReply::try_decode(std::span(buf.data(), *size), reply)) {
          continue;
        }
        if (reply.seq != entry->first) continue;  // stale reply
        replies.push_back({static_cast<ServerId>(entry->second),
                           reply.queue_length, net::monotonic_now()});
      }
    }
  }
  if (replies.empty()) return live[rng_.uniform_int(live.size())];
  return static_cast<std::size_t>(pick_least_loaded(replies, rng_));
}

CallResult ServiceClient::call(std::uint16_t method, std::uint32_t partition,
                               std::span<const std::uint8_t> args) {
  ++stats_.calls;
  const SimTime started = net::monotonic_now();
  CallResult result;

  for (int attempt = 0; attempt < options_.max_attempts; ++attempt) {
    if (attempt > 0) {
      ++stats_.retries;
      refresh_mapping(/*force=*/true);  // replica set may have changed
    } else {
      refresh_mapping(/*force=*/false);
    }
    const auto group_it = mapping_.find(partition);
    if (group_it == mapping_.end() || group_it->second.empty()) {
      refresh_mapping(/*force=*/true);
      // The forced refresh is gated by the failure backoff, so without a
      // pause this loop would spin hot while the partition has no live
      // replicas; a short jittered sleep bounds the retry rate instead.
      net::sleep_for(static_cast<SimDuration>(
          static_cast<double>(10 * kMillisecond) * rng_.uniform(0.5, 1.5)));
      continue;
    }
    const auto& group = group_it->second;
    const std::size_t target = choose(group);

    // request_scratch_.args reuses its capacity across calls; the encoded
    // datagram goes through the per-thread scratch buffer, so a warmed-up
    // client issues RPCs without touching the allocator.
    RpcRequest& request = request_scratch_;
    request.request_id = next_id_++;
    request.method = method;
    request.partition = partition;
    request.args.assign(args.begin(), args.end());
    {
      const std::span<std::uint8_t> out =
          net::thread_scratch(request.encoded_size());
      const std::size_t n = request.encode_into(out);
      if (!rpc_socket_.send_to(out.subspan(0, n),
                               group[target].service_addr)) {
        continue;
      }
    }

    const std::span<std::uint8_t> buf = net::thread_scratch(64 * 1024);
    const SimTime deadline = net::monotonic_now() + options_.rpc_timeout;
    while (net::monotonic_now() < deadline) {
      rpc_poller_.wait(deadline - net::monotonic_now());
      while (auto dgram = rpc_socket_.recv_from(buf)) {
        RpcResponse response;
        if (!RpcResponse::try_decode(std::span(buf.data(), dgram->size),
                                     response)) {
          continue;
        }
        if (response.request_id != request.request_id) continue;  // stale
        result.status = response.status;
        result.transport_ok = true;
        result.data = std::move(response.result);
        result.server = response.server;
        result.latency = net::monotonic_now() - started;
        return result;
      }
    }
    // Timed out: blacklist the silent replica so the retry (and subsequent
    // calls) steer around it, then try again on a fresh choice.
    mark_timed_out(group[target].server, net::monotonic_now());
  }
  ++stats_.transport_failures;
  result.transport_ok = false;
  result.latency = net::monotonic_now() - started;
  return result;
}

}  // namespace finelb::neptune
