// Neptune-style RPC messages (paper §3.1).
//
// "Neptune encapsulates an application-level network service through a
// service access interface which contains several RPC-like access methods.
// Each service access through one of these methods can be fulfilled
// exclusively on one data partition."
//
// An RpcRequest names a method (small integer chosen by the service),
// the data partition the access is bound to, and an opaque argument blob;
// the RpcResponse carries a status, the result blob, and the queue length
// observed on arrival (the same diagnostic the load-balancing experiments
// use). Transport is a UDP datagram per message, like the rest of the
// prototype; payloads must fit one datagram (~60 KiB ceiling, checked).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "net/wire.h"

namespace finelb::neptune {

enum class RpcStatus : std::uint8_t {
  kOk = 0,
  kNoSuchMethod = 1,
  kNoSuchPartition = 2,
  kAppError = 3,
};

/// Message type tags; disjoint from net::MsgType so a service socket can
/// never confuse an experiment datagram with an RPC.
constexpr std::uint8_t kRpcRequestTag = 21;
constexpr std::uint8_t kRpcResponseTag = 22;

struct RpcRequest {
  std::uint64_t request_id = 0;
  std::uint16_t method = 0;
  std::uint32_t partition = 0;
  std::vector<std::uint8_t> args;

  std::size_t encoded_size() const;
  /// Serializes into `out`; returns bytes written, 0 if `out` is too small.
  /// The header is heap-free; only the args blob copy touches `out`.
  std::size_t encode_into(std::span<std::uint8_t> out) const;
  /// Non-throwing decode; reuses out.args capacity across calls.
  static bool try_decode(std::span<const std::uint8_t> data, RpcRequest& out);

  std::vector<std::uint8_t> encode() const;
  static RpcRequest decode(std::span<const std::uint8_t> data);
};

struct RpcResponse {
  std::uint64_t request_id = 0;
  RpcStatus status = RpcStatus::kOk;
  std::int32_t server = 0;
  std::int32_t queue_at_arrival = 0;
  std::vector<std::uint8_t> result;

  std::size_t encoded_size() const;
  std::size_t encode_into(std::span<std::uint8_t> out) const;
  static bool try_decode(std::span<const std::uint8_t> data, RpcResponse& out);

  std::vector<std::uint8_t> encode() const;
  static RpcResponse decode(std::span<const std::uint8_t> data);
};

}  // namespace finelb::neptune
