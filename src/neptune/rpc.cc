#include "neptune/rpc.h"

#include "common/check.h"

namespace finelb::neptune {
namespace {
// Keep well under the 64 KiB UDP datagram ceiling, leaving header room.
constexpr std::size_t kMaxPayload = 60 * 1024;
}  // namespace

std::vector<std::uint8_t> RpcRequest::encode() const {
  FINELB_CHECK(args.size() <= kMaxPayload, "RPC args exceed datagram limit");
  net::Writer w;
  w.u8(kRpcRequestTag);
  w.u64(request_id);
  w.u16(method);
  w.u32(partition);
  w.blob(args);
  return std::move(w).take();
}

RpcRequest RpcRequest::decode(std::span<const std::uint8_t> data) {
  net::Reader r(data);
  FINELB_CHECK(r.u8() == kRpcRequestTag, "not an RPC request");
  RpcRequest m;
  m.request_id = r.u64();
  m.method = r.u16();
  m.partition = r.u32();
  m.args = r.blob();
  return m;
}

std::vector<std::uint8_t> RpcResponse::encode() const {
  FINELB_CHECK(result.size() <= kMaxPayload,
               "RPC result exceeds datagram limit");
  net::Writer w;
  w.u8(kRpcResponseTag);
  w.u64(request_id);
  w.u8(static_cast<std::uint8_t>(status));
  w.i32(server);
  w.i32(queue_at_arrival);
  w.blob(result);
  return std::move(w).take();
}

RpcResponse RpcResponse::decode(std::span<const std::uint8_t> data) {
  net::Reader r(data);
  FINELB_CHECK(r.u8() == kRpcResponseTag, "not an RPC response");
  RpcResponse m;
  m.request_id = r.u64();
  const std::uint8_t status = r.u8();
  FINELB_CHECK(status <= static_cast<std::uint8_t>(RpcStatus::kAppError),
               "unknown RPC status on the wire");
  m.status = static_cast<RpcStatus>(status);
  m.server = r.i32();
  m.queue_at_arrival = r.i32();
  m.result = r.blob();
  return m;
}

}  // namespace finelb::neptune
