#include "neptune/rpc.h"

#include "common/check.h"

namespace finelb::neptune {
namespace {
// Keep well under the 64 KiB UDP datagram ceiling, leaving header room.
constexpr std::size_t kMaxPayload = 60 * 1024;
}  // namespace

std::size_t RpcRequest::encoded_size() const {
  return 1 + 8 + 2 + 4 + 4 + args.size();
}

std::size_t RpcRequest::encode_into(std::span<std::uint8_t> out) const {
  FINELB_CHECK(args.size() <= kMaxPayload, "RPC args exceed datagram limit");
  net::SpanWriter w(out);
  w.u8(kRpcRequestTag);
  w.u64(request_id);
  w.u16(method);
  w.u32(partition);
  w.blob(args);
  return w.ok() ? w.size() : 0;
}

bool RpcRequest::try_decode(std::span<const std::uint8_t> data,
                            RpcRequest& out) {
  net::TryReader r(data);
  if (r.u8() != kRpcRequestTag || !r.ok()) return false;
  out.request_id = r.u64();
  out.method = r.u16();
  out.partition = r.u32();
  r.blob(out.args);
  return r.ok();
}

std::vector<std::uint8_t> RpcRequest::encode() const {
  std::vector<std::uint8_t> out(encoded_size());
  const std::size_t n = encode_into(out);
  FINELB_CHECK(n == out.size(), "encoded_size/encode_into disagree");
  return out;
}

RpcRequest RpcRequest::decode(std::span<const std::uint8_t> data) {
  RpcRequest m;
  FINELB_CHECK(try_decode(data, m), "malformed RPC request");
  return m;
}

std::size_t RpcResponse::encoded_size() const {
  return 1 + 8 + 1 + 4 + 4 + 4 + result.size();
}

std::size_t RpcResponse::encode_into(std::span<std::uint8_t> out) const {
  FINELB_CHECK(result.size() <= kMaxPayload,
               "RPC result exceeds datagram limit");
  net::SpanWriter w(out);
  w.u8(kRpcResponseTag);
  w.u64(request_id);
  w.u8(static_cast<std::uint8_t>(status));
  w.i32(server);
  w.i32(queue_at_arrival);
  w.blob(result);
  return w.ok() ? w.size() : 0;
}

bool RpcResponse::try_decode(std::span<const std::uint8_t> data,
                             RpcResponse& out) {
  net::TryReader r(data);
  if (r.u8() != kRpcResponseTag || !r.ok()) return false;
  out.request_id = r.u64();
  const std::uint8_t status = r.u8();
  if (!r.ok() || status > static_cast<std::uint8_t>(RpcStatus::kAppError)) {
    return false;
  }
  out.status = static_cast<RpcStatus>(status);
  out.server = r.i32();
  out.queue_at_arrival = r.i32();
  r.blob(out.result);
  return r.ok();
}

std::vector<std::uint8_t> RpcResponse::encode() const {
  std::vector<std::uint8_t> out(encoded_size());
  const std::size_t n = encode_into(out);
  FINELB_CHECK(n == out.size(), "encoded_size/encode_into disagree");
  return out;
}

RpcResponse RpcResponse::decode(std::span<const std::uint8_t> data) {
  RpcResponse m;
  FINELB_CHECK(try_decode(data, m), "malformed RPC response");
  return m;
}

}  // namespace finelb::neptune
