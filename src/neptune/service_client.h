// Neptune service client: the client-side stub for accessing a replicated,
// partitioned service (paper §3.1).
//
// "Conceptually, for each service access, the client first acquires the set
// of available server nodes through a service availability subsystem. Then
// it chooses one node from the available set through a load balancing
// subsystem before sending the service request."
//
// This class packages those two steps behind one synchronous call():
//   * availability — a service mapping table (partition -> live replicas)
//     refreshed from the directory on an interval and on demand when a
//     partition looks empty or an access times out;
//   * load balancing — a core::PolicyConfig: random, round-robin, or
//     random polling over the partition's replicas (with optional discard
//     of slow polls).
// Failed accesses are retried against a fresh replica choice, which is how
// the flat architecture "operates smoothly in the presence of transient
// failures".
//
// Thread-compatibility: one ServiceClient per thread; instances share
// nothing.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "cluster/directory.h"
#include "common/rng.h"
#include "core/policy.h"
#include "core/selection.h"
#include "net/poller.h"
#include "net/socket.h"
#include "neptune/rpc.h"

namespace finelb::neptune {

struct ServiceClientOptions {
  std::string service_name;
  net::Address directory;
  PolicyConfig policy = PolicyConfig::polling(2);
  /// Wait per RPC attempt before retrying elsewhere.
  SimDuration rpc_timeout = 500 * kMillisecond;
  int max_attempts = 3;
  /// Mapping table refresh interval (soft-state re-pull).
  SimDuration mapping_refresh = kSecond;
  /// Poll-reply wait when the discard optimization is off.
  SimDuration max_poll_wait = 20 * kMillisecond;
  /// A replica whose RPC timed out is excluded from replica choice for
  /// this long (0 disables), so retries and subsequent calls steer around
  /// a dead node until the directory's soft state expires it.
  SimDuration blacklist_cooldown = kSecond;
  std::uint64_t seed = 1;
};

struct CallResult {
  RpcStatus status = RpcStatus::kAppError;
  bool transport_ok = false;  // false: no replica answered in time
  std::vector<std::uint8_t> data;
  ServerId server = kInvalidServer;
  /// Decision + transport + service latency of the successful attempt.
  SimDuration latency = 0;
};

struct ServiceClientStats {
  std::int64_t calls = 0;
  std::int64_t retries = 0;
  std::int64_t transport_failures = 0;
  std::int64_t polls_sent = 0;
  std::int64_t mapping_refreshes = 0;
  /// Directory fetches that timed out; the stale table is kept and the next
  /// refresh is delayed by an exponentially backed-off, jittered interval.
  std::int64_t refresh_failures = 0;
  std::int64_t blacklist_insertions = 0;
  std::int64_t blacklist_hits = 0;  // replicas excluded by cooldown
};

class ServiceClient {
 public:
  explicit ServiceClient(ServiceClientOptions options);

  ServiceClient(const ServiceClient&) = delete;
  ServiceClient& operator=(const ServiceClient&) = delete;

  /// Invokes `method` on `partition` with `args`; blocks until a response
  /// arrives or every attempt times out (transport_ok = false).
  CallResult call(std::uint16_t method, std::uint32_t partition,
                  std::span<const std::uint8_t> args);

  /// Live replica count for a partition (forces a table refresh if stale).
  std::size_t replicas(std::uint32_t partition);

  const ServiceClientStats& stats() const { return stats_; }

 private:
  void refresh_mapping(bool force);
  /// Chooses a replica index within `group` per the configured policy.
  std::size_t choose(const std::vector<cluster::ServiceEndpoint>& group);
  net::UdpSocket& poll_socket_for(const net::Address& addr);
  /// Group indices not under blacklist cooldown (all of them if every
  /// replica is blacklisted — a blind pick beats not dispatching). The
  /// span views live_scratch_, valid until the next call.
  std::span<const std::size_t> live_indices(
      const std::vector<cluster::ServiceEndpoint>& group, SimTime now);
  void mark_timed_out(ServerId server, SimTime now);

  ServiceClientOptions options_;
  cluster::DirectoryClient directory_;
  Rng rng_;
  RoundRobinCursor rr_;
  net::UdpSocket rpc_socket_;
  std::map<std::uint64_t, net::UdpSocket> poll_sockets_;  // keyed by host:port
  std::map<std::uint32_t, std::vector<cluster::ServiceEndpoint>> mapping_;
  SimTime mapping_fetched_at_ = 0;
  std::uint64_t next_id_ = 1;
  std::map<ServerId, SimTime> blacklist_until_;
  SimTime refresh_backoff_until_ = 0;
  SimDuration refresh_backoff_ = 0;

  // Reused across calls so the steady-state RPC path stays off the
  // allocator: pollers keep their registration arrays, the scratch vectors
  // keep their capacity, and request_scratch_.args keeps the arg buffer.
  net::Poller rpc_poller_;   // watches rpc_socket_ only (registered once)
  net::Poller poll_poller_;  // rebuilt (clear()) per polling round
  std::vector<std::size_t> live_scratch_;
  std::vector<ServerId> position_scratch_;
  std::vector<std::pair<std::uint64_t, std::size_t>> seq_to_index_;
  std::vector<ServerLoad> reply_scratch_;
  RpcRequest request_scratch_;

  ServiceClientStats stats_;
};

}  // namespace finelb::neptune
