#include "telemetry/merge.h"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <map>

namespace finelb::telemetry {

namespace {

void append_int(std::string& out, std::int64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  out += buf;
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out += buf;
}

void append_double(std::string& out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  out += buf;
}

/// Nanoseconds as a fixed-point microsecond literal ("12.345"): integer
/// arithmetic, so the output is deterministic and never loses precision to
/// double rounding (Chrome's ts/dur fields are microseconds).
void append_us(std::string& out, std::int64_t ns) {
  if (ns < 0) {
    out += '-';
    ns = -ns;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%" PRId64 ".%03" PRId64, ns / 1000,
                ns % 1000);
  out += buf;
}

double percentile(const std::vector<std::int64_t>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(
      q * static_cast<double>(sorted.size() - 1));
  return static_cast<double>(sorted[idx]);
}

/// Per-request working set for the staleness walk.
struct RequestObservations {
  std::int32_t picked = -1;          // node chosen by kServerPick
  bool have_reply_q = false;
  std::int64_t reply_q = 0;          // Q(t_reply) from the picked server
  bool have_arrival_q = false;
  std::int64_t arrival_q = 0;        // Q(t_dispatch) from kResponse
  bool have_load_replied = false;
  std::int64_t load_replied_ns = 0;  // aligned reply-build time
  bool have_service_start = false;
  std::int64_t arrival_ns = 0;       // aligned arrival (start - queue wait)
  std::int32_t service_node = -1;
};

}  // namespace

int trace_point_rank(TracePoint point) {
  switch (point) {
    case TracePoint::kClientEnqueue: return 0;
    case TracePoint::kPollSent: return 1;
    case TracePoint::kLoadReplied: return 2;
    case TracePoint::kPollReply: return 3;
    case TracePoint::kPollDiscard: return 3;
    case TracePoint::kServerPick: return 4;
    case TracePoint::kDispatch: return 5;
    case TracePoint::kServiceStart: return 6;
    case TracePoint::kResponse: return 7;
    // Standalone instants (no request lifecycle to repair against) sort
    // after the lifecycle points.
    case TracePoint::kLeaderElected: return 8;
  }
  return 8;
}

std::vector<MergedRecord> merge_traces(const std::vector<NodeTrace>& nodes) {
  std::vector<MergedRecord> out;
  std::size_t total = 0;
  for (const NodeTrace& node : nodes) total += node.records.size();
  out.reserve(total);
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    for (const TraceRecord& rec : nodes[i].records) {
      MergedRecord m;
      m.record = rec;
      m.record.at_ns = rec.at_ns - nodes[i].clock_offset_ns;
      m.source = static_cast<std::int32_t>(i);
      m.order_ns = m.record.at_ns;
      out.push_back(m);
    }
  }

  // Causal repair: within one request id, walk records in canonical
  // lifecycle order and take a running max over aligned times. Residual
  // clock error (< the sync bound) can make, say, a server's kLoadReplied
  // appear before the client's kPollSent; the running max gives such a
  // record a sort key at its predecessor's time without altering the
  // stored timestamp.
  std::vector<std::size_t> idx(out.size());
  for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  const auto canonical = [&out](std::size_t a, std::size_t b) {
    const MergedRecord& x = out[a];
    const MergedRecord& y = out[b];
    if (x.record.request_id != y.record.request_id) {
      return x.record.request_id < y.record.request_id;
    }
    const int rx = trace_point_rank(x.record.point);
    const int ry = trace_point_rank(y.record.point);
    if (rx != ry) return rx < ry;
    if (x.record.at_ns != y.record.at_ns) return x.record.at_ns < y.record.at_ns;
    return x.source < y.source;
  };
  std::sort(idx.begin(), idx.end(), canonical);
  for (std::size_t i = 1; i < idx.size(); ++i) {
    MergedRecord& prev = out[idx[i - 1]];
    MergedRecord& cur = out[idx[i]];
    if (prev.record.request_id == cur.record.request_id) {
      cur.order_ns = std::max(cur.order_ns, prev.order_ns);
    }
  }

  std::sort(out.begin(), out.end(),
            [](const MergedRecord& a, const MergedRecord& b) {
              if (a.order_ns != b.order_ns) return a.order_ns < b.order_ns;
              if (a.record.request_id != b.record.request_id) {
                return a.record.request_id < b.record.request_id;
              }
              const int ra = trace_point_rank(a.record.point);
              const int rb = trace_point_rank(b.record.point);
              if (ra != rb) return ra < rb;
              return a.source < b.source;
            });
  return out;
}

std::string to_chrome_trace_json(const std::vector<MergedRecord>& merged,
                                 const std::vector<NodeTrace>& nodes) {
  std::string out;
  out.reserve(256 + merged.size() * 160);
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  const auto emit = [&out, &first](const std::string& event) {
    if (!first) out += ',';
    first = false;
    out += event;
  };

  for (std::size_t i = 0; i < nodes.size(); ++i) {
    std::string meta = "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":";
    append_int(meta, static_cast<std::int64_t>(i));
    meta += ",\"tid\":0,\"args\":{\"name\":\"";
    meta += nodes[i].source;
    meta += "\"}}";
    emit(meta);
  }

  std::int64_t base_ns = 0;
  for (const MergedRecord& m : merged) {
    if (base_ns == 0 || m.record.at_ns < base_ns) base_ns = m.record.at_ns;
  }

  // Group records per request id (merged order preserves causality).
  std::map<std::uint64_t, std::vector<const MergedRecord*>> by_request;
  for (const MergedRecord& m : merged) {
    by_request[m.record.request_id].push_back(&m);
  }

  const auto span = [&](const char* name, std::uint64_t id,
                        std::int32_t source, std::int64_t start_ns,
                        std::int64_t dur_ns) {
    std::string e = "{\"ph\":\"X\",\"name\":\"";
    e += name;
    e += " #";
    append_u64(e, id);
    e += "\",\"cat\":\"request\",\"pid\":";
    append_int(e, source);
    e += ",\"tid\":0,\"ts\":";
    append_us(e, start_ns - base_ns);
    e += ",\"dur\":";
    append_us(e, dur_ns < 0 ? 0 : dur_ns);
    e += "}";
    emit(e);
  };
  const auto instant = [&](const MergedRecord& m) {
    std::string e = "{\"ph\":\"i\",\"name\":\"";
    e += trace_point_name(m.record.point);
    e += "\",\"cat\":\"request\",\"s\":\"t\",\"pid\":";
    append_int(e, m.source);
    e += ",\"tid\":0,\"ts\":";
    append_us(e, m.record.at_ns - base_ns);
    e += ",\"args\":{\"trace_id\":";
    append_u64(e, m.record.request_id);
    e += ",\"detail\":";
    append_int(e, m.record.detail);
    e += "}}";
    emit(e);
  };
  const auto flow = [&](const char* ph, std::uint64_t id, std::int32_t source,
                        std::int64_t at_ns, bool binding_end) {
    std::string e = "{\"ph\":\"";
    e += ph;
    e += "\",\"name\":\"dispatch\",\"cat\":\"flow\",\"id\":";
    append_u64(e, id);
    e += ",\"pid\":";
    append_int(e, source);
    e += ",\"tid\":0,\"ts\":";
    append_us(e, at_ns - base_ns);
    if (binding_end) e += ",\"bp\":\"e\"";
    e += "}";
    emit(e);
  };

  for (const auto& [id, records] : by_request) {
    const MergedRecord* enqueue = nullptr;
    const MergedRecord* poll_sent = nullptr;
    const MergedRecord* pick = nullptr;
    const MergedRecord* dispatch = nullptr;
    const MergedRecord* service_start = nullptr;
    const MergedRecord* server_response = nullptr;
    const MergedRecord* client_response = nullptr;
    for (const MergedRecord* m : records) {
      switch (m->record.point) {
        case TracePoint::kClientEnqueue: enqueue = m; break;
        case TracePoint::kPollSent: poll_sent = m; break;
        case TracePoint::kServerPick: pick = m; break;
        case TracePoint::kDispatch: dispatch = m; break;
        case TracePoint::kServiceStart:
          if (service_start == nullptr) service_start = m;
          break;
        case TracePoint::kResponse:
          // The server's copy (if pulled) and the client's copy share the
          // point; tell them apart by which end recorded them.
          if (service_start != nullptr && m->source == service_start->source) {
            server_response = m;
          } else {
            client_response = m;
          }
          break;
        default: break;
      }
    }
    const std::int64_t last_ns = records.back()->record.at_ns;
    if (enqueue != nullptr) {
      const std::int64_t end_ns =
          client_response != nullptr ? client_response->record.at_ns : last_ns;
      span("access", id, enqueue->source, enqueue->record.at_ns,
           end_ns - enqueue->record.at_ns);
    }
    if (poll_sent != nullptr && pick != nullptr) {
      span("poll", id, poll_sent->source, poll_sent->record.at_ns,
           pick->record.at_ns - poll_sent->record.at_ns);
    }
    if (service_start != nullptr) {
      const std::int64_t end_ns = server_response != nullptr
                                      ? server_response->record.at_ns
                                      : service_start->record.at_ns;
      span("service", id, service_start->source, service_start->record.at_ns,
           end_ns - service_start->record.at_ns);
    }
    if (dispatch != nullptr && service_start != nullptr &&
        dispatch->source != service_start->source) {
      flow("s", id, dispatch->source, dispatch->record.at_ns, false);
      flow("f", id, service_start->source, service_start->record.at_ns, true);
    }
    for (const MergedRecord* m : records) {
      switch (m->record.point) {
        case TracePoint::kPollReply:
        case TracePoint::kPollDiscard:
        case TracePoint::kLoadReplied:
          instant(*m);
          break;
        default: break;
      }
    }
  }

  out += "]}";
  return out;
}

std::string to_csv(const std::vector<MergedRecord>& merged,
                   const std::vector<NodeTrace>& nodes) {
  std::string out = "trace_id,point,node,source,at_ns,order_ns,detail\n";
  for (const MergedRecord& m : merged) {
    append_u64(out, m.record.request_id);
    out += ',';
    out += trace_point_name(m.record.point);
    out += ',';
    append_int(out, m.record.node);
    out += ',';
    const auto src = static_cast<std::size_t>(m.source);
    out += src < nodes.size() ? nodes[src].source : "?";
    out += ',';
    append_int(out, m.record.at_ns);
    out += ',';
    append_int(out, m.order_ns);
    out += ',';
    append_int(out, m.record.detail);
    out += '\n';
  }
  return out;
}

StalenessSummary compute_staleness(const std::vector<MergedRecord>& merged) {
  std::map<std::uint64_t, RequestObservations> requests;
  for (const MergedRecord& m : merged) {
    RequestObservations& obs = requests[m.record.request_id];
    switch (m.record.point) {
      case TracePoint::kServerPick:
        obs.picked = m.record.node;
        break;
      case TracePoint::kResponse:
        if (!obs.have_arrival_q) {
          obs.have_arrival_q = true;
          obs.arrival_q = m.record.detail;
        }
        break;
      case TracePoint::kServiceStart:
        if (!obs.have_service_start) {
          obs.have_service_start = true;
          obs.service_node = m.record.node;
          obs.arrival_ns = m.record.at_ns - m.record.detail;  // minus wait
        }
        break;
      default:
        break;
    }
  }
  // Second pass for the picked server's records: kServerPick carries the
  // chosen node, and a request's replies may precede the pick in merged
  // order, so reply/load_replied matching needs `picked` resolved first.
  for (const MergedRecord& m : merged) {
    auto it = requests.find(m.record.request_id);
    if (it == requests.end() || it->second.picked < 0) continue;
    RequestObservations& obs = it->second;
    if (m.record.node != obs.picked) continue;
    if (m.record.point == TracePoint::kPollReply) {
      obs.have_reply_q = true;  // keep the last reply from the picked server
      obs.reply_q = m.record.detail;
    } else if (m.record.point == TracePoint::kLoadReplied) {
      obs.have_load_replied = true;
      obs.load_replied_ns = m.record.at_ns;
    }
  }

  std::vector<std::int64_t> diffs;
  std::vector<std::int64_t> delays_ns;
  for (const auto& [id, obs] : requests) {
    if (obs.picked < 0 || !obs.have_reply_q || !obs.have_arrival_q) continue;
    diffs.push_back(std::abs(obs.reply_q - obs.arrival_q));
    if (obs.have_load_replied && obs.have_service_start &&
        obs.service_node == obs.picked) {
      delays_ns.push_back(obs.arrival_ns - obs.load_replied_ns);
    }
  }

  StalenessSummary summary;
  summary.samples = static_cast<std::int64_t>(diffs.size());
  if (!diffs.empty()) {
    std::sort(diffs.begin(), diffs.end());
    double sum = 0.0;
    for (const std::int64_t d : diffs) sum += static_cast<double>(d);
    summary.mean_abs_diff = sum / static_cast<double>(diffs.size());
    summary.p50_abs_diff = percentile(diffs, 0.50);
    summary.p90_abs_diff = percentile(diffs, 0.90);
    summary.p99_abs_diff = percentile(diffs, 0.99);
    summary.max_abs_diff = diffs.back();
    constexpr std::size_t kMaxBuckets = 16;
    const auto buckets = static_cast<std::size_t>(
        std::min<std::int64_t>(summary.max_abs_diff,
                               static_cast<std::int64_t>(kMaxBuckets) - 1));
    summary.abs_diff_counts.assign(buckets + 1, 0);
    for (const std::int64_t d : diffs) {
      const auto bucket = std::min(static_cast<std::size_t>(d), buckets);
      ++summary.abs_diff_counts[bucket];
    }
  }
  summary.delay_samples = static_cast<std::int64_t>(delays_ns.size());
  if (!delays_ns.empty()) {
    std::sort(delays_ns.begin(), delays_ns.end());
    double sum = 0.0;
    for (const std::int64_t d : delays_ns) sum += static_cast<double>(d);
    summary.mean_delay_us = sum / static_cast<double>(delays_ns.size()) / 1e3;
    summary.p50_delay_us = percentile(delays_ns, 0.50) / 1e3;
    summary.p99_delay_us = percentile(delays_ns, 0.99) / 1e3;
    summary.max_delay_us = static_cast<double>(delays_ns.back()) / 1e3;
  }
  return summary;
}

std::string staleness_to_json(const StalenessSummary& summary) {
  std::string out = "{\"samples\":";
  append_int(out, summary.samples);
  out += ",\"mean_abs_diff\":";
  append_double(out, summary.mean_abs_diff);
  out += ",\"p50_abs_diff\":";
  append_double(out, summary.p50_abs_diff);
  out += ",\"p90_abs_diff\":";
  append_double(out, summary.p90_abs_diff);
  out += ",\"p99_abs_diff\":";
  append_double(out, summary.p99_abs_diff);
  out += ",\"max_abs_diff\":";
  append_int(out, summary.max_abs_diff);
  out += ",\"abs_diff_counts\":[";
  for (std::size_t i = 0; i < summary.abs_diff_counts.size(); ++i) {
    if (i != 0) out += ',';
    append_int(out, summary.abs_diff_counts[i]);
  }
  out += "],\"dissemination_delay\":{\"samples\":";
  append_int(out, summary.delay_samples);
  out += ",\"mean_us\":";
  append_double(out, summary.mean_delay_us);
  out += ",\"p50_us\":";
  append_double(out, summary.p50_delay_us);
  out += ",\"p99_us\":";
  append_double(out, summary.p99_delay_us);
  out += ",\"max_us\":";
  append_double(out, summary.max_delay_us);
  out += "}}";
  return out;
}

HistogramSnapshot merge_histograms(std::span<const HistogramSnapshot> parts,
                                   std::string name) {
  HistogramSnapshot merged;
  merged.name = std::move(name);
  // Bucket-wise sum keyed by representative value. std::map keeps the
  // merged buckets ascending, matching every input's ordering.
  std::map<double, std::int64_t> buckets;
  double sum = 0.0;
  for (const HistogramSnapshot& part : parts) {
    for (const auto& [value, count] : part.buckets) {
      buckets[value] += count;
    }
    sum += part.mean * static_cast<double>(part.count);
    if (part.count > 0) {
      merged.min = merged.count > 0 ? std::min(merged.min, part.min)
                                    : part.min;
      merged.max = merged.count > 0 ? std::max(merged.max, part.max)
                                    : part.max;
      merged.count += part.count;
    }
  }
  merged.buckets.assign(buckets.begin(), buckets.end());
  if (merged.count == 0) return merged;
  merged.mean = sum / static_cast<double>(merged.count);
  // Same quantile rule as Registry::snapshot: representative value of the
  // bucket where the cumulative count first reaches ceil(q * count) — so a
  // merged result is bit-identical to one histogram that saw every sample.
  const auto quantile = [&](double q) {
    const auto rank = static_cast<std::int64_t>(
        std::ceil(q * static_cast<double>(merged.count)));
    std::int64_t seen = 0;
    for (const auto& [value, count] : merged.buckets) {
      seen += count;
      if (seen >= rank) return value;
    }
    return merged.buckets.back().first;
  };
  merged.p50 = quantile(0.50);
  merged.p95 = quantile(0.95);
  merged.p99 = quantile(0.99);
  return merged;
}

std::vector<HistogramSnapshot> merge_node_histograms(
    const std::vector<MetricsSnapshot>& nodes) {
  std::vector<HistogramSnapshot> out;
  for (const MetricsSnapshot& node : nodes) {
    for (const HistogramSnapshot& hist : node.histograms) {
      bool seen = false;
      for (const HistogramSnapshot& done : out) {
        if (done.name == hist.name) {
          seen = true;
          break;
        }
      }
      if (seen) continue;
      std::vector<HistogramSnapshot> family;
      for (const MetricsSnapshot& other : nodes) {
        for (const HistogramSnapshot& candidate : other.histograms) {
          if (candidate.name == hist.name) family.push_back(candidate);
        }
      }
      out.push_back(merge_histograms(family, hist.name));
    }
  }
  return out;
}

}  // namespace finelb::telemetry
