#include "telemetry/clock_sync.h"

#include <cmath>
#include <cstdlib>

namespace finelb::telemetry {

void ClockSync::add_sample(std::int64_t local_send_ns, std::int64_t remote_ns,
                           std::int64_t local_recv_ns) {
  const std::int64_t rtt_ns = local_recv_ns - local_send_ns;
  if (rtt_ns <= 0) return;
  if (samples_ > 0 && rtt_ns >= best_rtt_ns_) {
    ++samples_;
    return;
  }
  // Midpoint estimate; computed as send + rtt/2 to stay overflow-safe for
  // arbitrary monotonic epochs.
  const std::int64_t midpoint_ns = local_send_ns + rtt_ns / 2;
  offset_ns_ = remote_ns - midpoint_ns;
  best_rtt_ns_ = rtt_ns;
  synced_at_local_ns_ = midpoint_ns;
  ++samples_;
}

std::int64_t ClockSync::error_bound_ns(std::int64_t local_now_ns) const {
  if (samples_ == 0) return 0;
  const double elapsed_ns =
      std::abs(static_cast<double>(local_now_ns - synced_at_local_ns_));
  const double drift_ns = elapsed_ns * drift_ppm_ * 1e-6;
  return best_rtt_ns_ / 2 + static_cast<std::int64_t>(std::ceil(drift_ns));
}

}  // namespace finelb::telemetry
