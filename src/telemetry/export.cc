#include "telemetry/export.h"

#include <chrono>
#include <cinttypes>
#include <csignal>
#include <cstdio>
#include <cstring>

namespace finelb::telemetry {

namespace {

void append_escaped(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void append_double(std::string& out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  out += buf;
}

void append_int(std::string& out, std::int64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  out += buf;
}

template <typename T, typename AppendValue>
void append_map(std::string& out, const char* key,
                const std::vector<std::pair<std::string, T>>& entries,
                AppendValue&& append_value) {
  out += '"';
  out += key;
  out += "\":{";
  bool first = true;
  for (const auto& [name, value] : entries) {
    if (!first) out += ',';
    first = false;
    out += '"';
    append_escaped(out, name);
    out += "\":";
    append_value(out, value);
  }
  out += '}';
}

void append_histogram(std::string& out, const HistogramSnapshot& h) {
  out += '"';
  append_escaped(out, h.name);
  out += "\":{\"count\":";
  append_int(out, h.count);
  out += ",\"mean\":";
  append_double(out, h.mean);
  out += ",\"p50\":";
  append_double(out, h.p50);
  out += ",\"p95\":";
  append_double(out, h.p95);
  out += ",\"p99\":";
  append_double(out, h.p99);
  out += ",\"min\":";
  append_double(out, h.min);
  out += ",\"max\":";
  append_double(out, h.max);
  out += ",\"buckets\":[";
  bool first = true;
  for (const auto& [value, count] : h.buckets) {
    if (!first) out += ',';
    first = false;
    out += '[';
    append_double(out, value);
    out += ',';
    append_int(out, count);
    out += ']';
  }
  out += "]}";
}

void append_snapshot_body(std::string& out, const MetricsSnapshot& snap) {
  out += "\"node\":\"";
  append_escaped(out, snap.node);
  out += "\",";
  append_map(out, "counters", snap.counters,
             [](std::string& o, std::int64_t v) { append_int(o, v); });
  out += ',';
  append_map(out, "gauges", snap.gauges,
             [](std::string& o, std::int64_t v) { append_int(o, v); });
  out += ',';
  append_map(out, "values", snap.values,
             [](std::string& o, double v) { append_double(o, v); });
  out += ",\"histograms\":{";
  bool first = true;
  for (const auto& h : snap.histograms) {
    if (!first) out += ',';
    first = false;
    append_histogram(out, h);
  }
  out += '}';
}

void append_trace(std::string& out, const std::vector<TraceRecord>& trace) {
  out += "\"trace\":[";
  bool first = true;
  for (const auto& rec : trace) {
    if (!first) out += ',';
    first = false;
    out += "{\"request\":";
    append_int(out, static_cast<std::int64_t>(rec.request_id));
    out += ",\"point\":\"";
    out += trace_point_name(rec.point);
    out += "\",\"node\":";
    append_int(out, rec.node);
    out += ",\"t_ns\":";
    append_int(out, rec.at_ns);
    out += ",\"detail\":";
    append_int(out, rec.detail);
    out += '}';
  }
  out += ']';
}

}  // namespace

std::string to_json(const MetricsSnapshot& snapshot) {
  std::string out;
  out.reserve(512);
  out += '{';
  append_snapshot_body(out, snapshot);
  out += '}';
  return out;
}

std::string to_json(const MetricsSnapshot& snapshot,
                    const std::vector<TraceRecord>& trace) {
  std::string out;
  out.reserve(1024);
  out += '{';
  append_snapshot_body(out, snapshot);
  out += ',';
  append_trace(out, trace);
  out += '}';
  return out;
}

std::string to_text(const MetricsSnapshot& snapshot) {
  std::string out;
  out += "=== ";
  out += snapshot.node.empty() ? "(unnamed node)" : snapshot.node;
  out += " ===\n";
  char line[256];
  for (const auto& [name, value] : snapshot.counters) {
    std::snprintf(line, sizeof(line), "  %-28s %12" PRId64 "\n", name.c_str(),
                  value);
    out += line;
  }
  for (const auto& [name, value] : snapshot.gauges) {
    std::snprintf(line, sizeof(line), "  %-28s %12" PRId64 " (gauge)\n",
                  name.c_str(), value);
    out += line;
  }
  for (const auto& [name, value] : snapshot.values) {
    std::snprintf(line, sizeof(line), "  %-28s %12.4g\n", name.c_str(),
                  value);
    out += line;
  }
  for (const auto& h : snapshot.histograms) {
    std::snprintf(line, sizeof(line),
                  "  %-28s count=%" PRId64
                  " mean=%.4g p50=%.4g p95=%.4g p99=%.4g max=%.4g\n",
                  h.name.c_str(), h.count, h.mean, h.p50, h.p95, h.p99,
                  h.max);
    out += line;
  }
  return out;
}

namespace {

// --- Prometheus text exposition ---------------------------------------------

void append_prom_name(std::string& out, std::string_view name) {
  out += "finelb_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
}

/// Emits `# TYPE` once per (family, type) across a whole document —
/// Prometheus rejects re-declarations when several nodes share families.
void append_prom_type(std::string& out, std::string_view family,
                      const char* type, std::vector<std::string>& seen) {
  for (const std::string& s : seen) {
    if (s == family) return;
  }
  seen.emplace_back(family);
  out += "# TYPE ";
  append_prom_name(out, family);
  out += ' ';
  out += type;
  out += '\n';
}

void append_prom_label(std::string& out, std::string_view node) {
  out += "{node=\"";
  append_escaped(out, node);
  out += "\"}";
}

void append_prometheus_body(std::string& out, const MetricsSnapshot& snap,
                            std::vector<std::string>& seen_types) {
  for (const auto& [name, value] : snap.counters) {
    append_prom_type(out, name, "counter", seen_types);
    append_prom_name(out, name);
    append_prom_label(out, snap.node);
    out += ' ';
    append_int(out, value);
    out += '\n';
  }
  for (const auto& [name, value] : snap.gauges) {
    append_prom_type(out, name, "gauge", seen_types);
    append_prom_name(out, name);
    append_prom_label(out, snap.node);
    out += ' ';
    append_int(out, value);
    out += '\n';
  }
  for (const auto& [name, value] : snap.values) {
    append_prom_type(out, name, "gauge", seen_types);
    append_prom_name(out, name);
    append_prom_label(out, snap.node);
    out += ' ';
    append_double(out, value);
    out += '\n';
  }
  for (const auto& h : snap.histograms) {
    append_prom_type(out, h.name, "histogram", seen_types);
    // Cumulative buckets: each occupied log bucket contributes its upper
    // bound as `le`; +Inf closes the series with the total count.
    std::int64_t cumulative = 0;
    for (const auto& [value, count] : h.buckets) {
      cumulative += count;
      append_prom_name(out, h.name);
      out += "_bucket{node=\"";
      append_escaped(out, snap.node);
      out += "\",le=\"";
      append_double(out,
                    detail::kHistBucketing.upper(
                        detail::kHistBucketing.index(value)));
      out += "\"} ";
      append_int(out, cumulative);
      out += '\n';
    }
    append_prom_name(out, h.name);
    out += "_bucket{node=\"";
    append_escaped(out, snap.node);
    out += "\",le=\"+Inf\"} ";
    append_int(out, h.count);
    out += '\n';
    append_prom_name(out, h.name);
    out += "_sum";
    append_prom_label(out, snap.node);
    out += ' ';
    append_double(out, h.mean * static_cast<double>(h.count));
    out += '\n';
    append_prom_name(out, h.name);
    out += "_count";
    append_prom_label(out, snap.node);
    out += ' ';
    append_int(out, h.count);
    out += '\n';
  }
}

}  // namespace

std::string to_prometheus(const MetricsSnapshot& snapshot) {
  std::string out;
  out.reserve(1024);
  std::vector<std::string> seen_types;
  append_prometheus_body(out, snapshot, seen_types);
  return out;
}

std::string cluster_to_prometheus(const std::vector<MetricsSnapshot>& nodes) {
  std::string out;
  out.reserve(1024 * (nodes.size() + 1));
  std::vector<std::string> seen_types;
  for (const MetricsSnapshot& snap : nodes) {
    append_prometheus_body(out, snap, seen_types);
  }
  return out;
}

std::string cluster_to_json(const std::vector<std::string>& node_documents) {
  std::string out = "{\"nodes\":[";
  bool first = true;
  for (const auto& doc : node_documents) {
    if (!first) out += ',';
    first = false;
    out += doc;
  }
  out += "]}";
  return out;
}

namespace {

// Async-signal-safety contract (audited): the handler may only touch
// `g_dump_requested`, a lock-free atomic flag. No allocation, no locks, no
// stdio — all formatting and writing happens later on the reporter thread
// that polls consume_dump_request(). Keep it that way: any malloc or mutex
// in here can deadlock if the signal lands inside the allocator.
std::atomic<bool> g_dump_requested{false};
static_assert(std::atomic<bool>::is_always_lock_free,
              "SIGUSR1 handler requires a lock-free flag");

void sigusr1_handler(int) {
  g_dump_requested.store(true, std::memory_order_relaxed);
}

}  // namespace

void install_sigusr1_dump_handler() {
#if defined(__unix__) || defined(__APPLE__)
  // sigaction with SA_RESTART: a dump request must not surface as EINTR in
  // the runtime's blocking recv/poll loops.
  struct sigaction action {};
  action.sa_handler = sigusr1_handler;
  sigemptyset(&action.sa_mask);
  action.sa_flags = SA_RESTART;
  sigaction(SIGUSR1, &action, nullptr);
#else
  std::signal(SIGUSR1, sigusr1_handler);
#endif
}

void trigger_stats_dump() {
  g_dump_requested.store(true, std::memory_order_relaxed);
}

bool consume_dump_request() {
  return g_dump_requested.exchange(false, std::memory_order_relaxed);
}

StderrReporter::StderrReporter(Collect collect, SimDuration period)
    : collect_(std::move(collect)), period_(period) {
  running_.store(true);
  thread_ = std::thread([this] { run(); });
}

StderrReporter::~StderrReporter() { stop(); }

void StderrReporter::stop() {
  if (!running_.exchange(false)) return;
  if (thread_.joinable()) thread_.join();
}

void StderrReporter::run() {
  using Clock = std::chrono::steady_clock;
  auto last = Clock::now();
  while (running_.load(std::memory_order_relaxed)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    bool due = consume_dump_request();
    if (period_ > 0) {
      const auto now = Clock::now();
      if (now - last >= std::chrono::nanoseconds(period_)) {
        last = now;
        due = true;
      }
    }
    if (due) {
      const std::string report = collect_();
      std::fwrite(report.data(), 1, report.size(), stderr);
      std::fflush(stderr);
    }
  }
}

}  // namespace finelb::telemetry
