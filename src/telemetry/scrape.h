// Client side of the STATS_INQUIRY pull channel: ask a node's load-index
// UDP server for a telemetry snapshot and return the JSON payload.
#pragma once

#include <optional>
#include <string>

#include "common/time.h"
#include "net/socket.h"

namespace finelb::telemetry {

/// Sends a STATS_INQUIRY to `load_addr` and waits up to `timeout` for the
/// matching STATS_REPLY. Returns the JSON payload, or nullopt on timeout /
/// malformed reply. Cold path: allocates freely, creates its own socket.
std::optional<std::string> scrape_stats(const net::Address& load_addr,
                                        SimDuration timeout = 200 *
                                                              kMillisecond);

}  // namespace finelb::telemetry
