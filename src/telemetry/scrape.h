// Client side of the STATS_INQUIRY / TRACE_INQUIRY pull channels: ask a
// node's load-index UDP server for a telemetry snapshot or its trace ring.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/time.h"
#include "core/selection.h"
#include "net/pingpong.h"
#include "net/socket.h"
#include "telemetry/trace.h"

namespace finelb::telemetry {

/// Sends a STATS_INQUIRY to `load_addr` and waits up to `timeout` for the
/// matching STATS_REPLY. Returns the JSON payload, or nullopt on timeout /
/// malformed reply. Cold path: allocates freely, creates its own socket.
std::optional<std::string> scrape_stats(const net::Address& load_addr,
                                        SimDuration timeout = 200 *
                                                              kMillisecond);

/// Lossy-link-hardened cluster scrape: every node gets its own inquiry and
/// per-node timeout, and a node that stays silent (or answers garbage)
/// costs one `failed` slot instead of sinking the whole scrape — the
/// partial document set is still returned in input order.
struct ClusterStatsScrape {
  /// One entry per requested address; nullopt where the node never answered.
  std::vector<std::optional<std::string>> documents;
  int answered = 0;
  int failed = 0;

  /// The answered documents, in input order (feed to cluster_to_json).
  std::vector<std::string> answered_documents() const;
};

ClusterStatsScrape scrape_cluster_stats(
    const std::vector<net::Address>& load_addrs,
    SimDuration per_node_timeout = 200 * kMillisecond,
    int retries_per_node = 1);

/// One node's trace ring pulled over the wire, plus the clock-sync samples
/// each chunked round trip yielded for free (every TRACE_REPLY carries the
/// answering node's monotonic clock — feed these to ClockSync::add_sample).
struct NodeTraceScrape {
  /// Node id the replies reported (-1 if the node didn't say).
  std::int32_t node = -1;
  std::vector<TraceRecord> records;
  std::vector<net::ClockSample> clock_samples;
  /// False when a later chunk timed out on a lossy link: `records` then
  /// holds the prefix pulled so far (still usable for merging — the caller
  /// just has fewer samples), rather than the all-or-nothing nullopt the
  /// channel used to return.
  bool complete = true;
};

/// Pulls the full trace ring from `load_addr` with chunked TRACE_INQUIRYs
/// (each reply stays under the 64 KiB datagram cap). Returns nullopt only
/// when the very first chunk goes unanswered; a scrape cut short mid-walk
/// returns the partial prefix with `complete` false. Cold path: allocates
/// freely, creates its own socket.
std::optional<NodeTraceScrape> scrape_trace(const net::Address& load_addr,
                                            SimDuration timeout = 200 *
                                                                  kMillisecond);

/// One node's decision ring pulled over the chunked DECISION_INQUIRY
/// channel, with the same partial-result and clock-sample semantics as
/// NodeTraceScrape.
struct NodeDecisionScrape {
  std::int32_t node = -1;
  std::vector<DecisionRecord> records;
  std::vector<net::ClockSample> clock_samples;
  bool complete = true;
};

/// Pulls the full decision ring from `addr` (a socket answering
/// DECISION_INQUIRY — the prototype client's service socket, or a server's
/// load socket). Returns nullopt only when the first chunk goes
/// unanswered.
std::optional<NodeDecisionScrape> scrape_decisions(
    const net::Address& addr, SimDuration timeout = 200 * kMillisecond);

/// One clock-probe round trip: an out-of-range TRACE_INQUIRY (offset past any
/// ring) that returns an empty, stamped TRACE_REPLY. Cheaper than a full
/// scrape when only the clock sample is wanted. Returns nullopt on timeout.
std::optional<net::ClockSample> probe_clock(const net::Address& load_addr,
                                            SimDuration timeout = 200 *
                                                                  kMillisecond);

}  // namespace finelb::telemetry
