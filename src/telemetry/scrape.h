// Client side of the STATS_INQUIRY / TRACE_INQUIRY pull channels: ask a
// node's load-index UDP server for a telemetry snapshot or its trace ring.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/time.h"
#include "net/pingpong.h"
#include "net/socket.h"
#include "telemetry/trace.h"

namespace finelb::telemetry {

/// Sends a STATS_INQUIRY to `load_addr` and waits up to `timeout` for the
/// matching STATS_REPLY. Returns the JSON payload, or nullopt on timeout /
/// malformed reply. Cold path: allocates freely, creates its own socket.
std::optional<std::string> scrape_stats(const net::Address& load_addr,
                                        SimDuration timeout = 200 *
                                                              kMillisecond);

/// One node's trace ring pulled over the wire, plus the clock-sync samples
/// each chunked round trip yielded for free (every TRACE_REPLY carries the
/// answering node's monotonic clock — feed these to ClockSync::add_sample).
struct NodeTraceScrape {
  /// Node id the replies reported (-1 if the node didn't say).
  std::int32_t node = -1;
  std::vector<TraceRecord> records;
  std::vector<net::ClockSample> clock_samples;
};

/// Pulls the full trace ring from `load_addr` with chunked TRACE_INQUIRYs
/// (each reply stays under the 64 KiB datagram cap). Returns nullopt if any
/// chunk times out. Cold path: allocates freely, creates its own socket.
std::optional<NodeTraceScrape> scrape_trace(const net::Address& load_addr,
                                            SimDuration timeout = 200 *
                                                                  kMillisecond);

/// One clock-probe round trip: an out-of-range TRACE_INQUIRY (offset past any
/// ring) that returns an empty, stamped TRACE_REPLY. Cheaper than a full
/// scrape when only the clock sample is wanted. Returns nullopt on timeout.
std::optional<net::ClockSample> probe_clock(const net::Address& load_addr,
                                            SimDuration timeout = 200 *
                                                                  kMillisecond);

}  // namespace finelb::telemetry
