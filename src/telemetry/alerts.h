// Health plane: a small rule engine evaluated on scrape (DESIGN.md §13).
//
// Rules read MetricsSnapshots — the same documents the STATS_INQUIRY pull
// channel and stats_snapshot already produce — so the engine adds no
// instrumentation of its own and runs wherever snapshots land (the scrape
// driver, run_prototype's post-run report, or a test). Counter-based rules
// (blacklist spikes, election churn) fire on the *delta* between
// consecutive evaluations of the same node, which is what makes them
// spike detectors rather than lifetime-total alarms; gauge/value rules
// (queue depth, decision mistake rate) fire on the instantaneous reading.
//
// Firing alerts export two ways: alerts_to_json for the cluster document
// and alerts_to_prometheus (`finelb_alert_firing{rule=...,node=...} 1`) for
// the text exposition endpoint — so the same fault shows up on both the
// JSON and the Prometheus path (pinned by alerts_test).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "telemetry/metrics.h"

namespace finelb::telemetry {

/// Rule thresholds; any rule can be disabled by setting its threshold <= 0
/// (or > 1 for the mistake rate).
struct AlertThresholds {
  /// queue_overload: a node's queue_depth gauge at or above this.
  std::int64_t queue_depth = 64;
  /// queue_growth: queue_depth grew by at least this much since the last
  /// evaluation of the same node (overload building even below the
  /// absolute ceiling).
  std::int64_t queue_growth = 32;
  /// blacklist_spike: blacklist_insertions delta since the last evaluation.
  std::int64_t blacklist_spike = 3;
  /// election_churn: ha.leadership_gains delta since the last evaluation —
  /// a healthy replica set elects once; repeated gains mean flapping.
  std::int64_t election_churn = 2;
  /// decision_mistakes: decision_mistake_rate value at or above this.
  double mistake_rate = 0.5;
};

struct Alert {
  std::string rule;   // "queue_overload", "queue_growth", "blacklist_spike",
                      // "election_churn", "decision_mistakes"
  std::string node;   // snapshot's node label
  double value = 0.0;
  double threshold = 0.0;
  std::string message;
};

/// Stateful evaluator: keeps the previous counter readings per node so
/// delta rules see rates, not lifetime totals. Not thread-safe — one engine
/// per scraping loop, like the scrape sockets it sits next to.
class AlertEngine {
 public:
  explicit AlertEngine(AlertThresholds thresholds = {});

  /// Evaluates every rule against one node's snapshot; returns the alerts
  /// that fired. The first evaluation of a node seeds its delta baseline
  /// (delta rules cannot fire on it).
  std::vector<Alert> evaluate(const MetricsSnapshot& snapshot);

  /// Evaluates a whole scraped node set, concatenating per-node firings.
  std::vector<Alert> evaluate_cluster(
      const std::vector<MetricsSnapshot>& nodes);

  const AlertThresholds& thresholds() const { return thresholds_; }

 private:
  struct NodeState {
    std::string node;
    std::int64_t queue_depth = 0;
    std::int64_t blacklist_insertions = 0;
    std::int64_t leadership_gains = 0;
    bool seen = false;
  };

  NodeState& state_for(const std::string& node);

  AlertThresholds thresholds_;
  std::vector<NodeState> states_;
};

/// {"alerts":[{"rule":...,"node":...,"value":...,"threshold":...,
///             "message":...},...]}
std::string alerts_to_json(const std::vector<Alert>& alerts);

/// Prometheus exposition of the firing set: one
/// `finelb_alert_firing{rule="...",node="..."} 1` sample per alert, with
/// the gauge TYPE line emitted once (an empty set emits just the TYPE
/// header, i.e. "no alerts firing").
std::string alerts_to_prometheus(const std::vector<Alert>& alerts);

}  // namespace finelb::telemetry
