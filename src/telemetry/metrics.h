// Lock-free, allocation-free-on-the-hot-path metrics registry.
//
// Handles (Counter / Gauge / Histogram) are plain pointers into cells owned
// by a Registry; recording is one or two relaxed atomic RMWs with zero
// allocation, zero locking, and no stores shared between unrelated metrics.
// Histograms reuse the stats/log_buckets.h bucketing scheme but shard their
// bucket arrays per thread (same discipline as net::thread_scratch gives the
// wire path its per-thread buffers): writers on different threads land on
// different cache lines, and a scrape aggregates all shards with relaxed
// loads — always a consistent total per bucket, never a torn counter,
// because every word is a single 64-bit atomic.
//
// The whole subsystem compiles to nothing when the build sets
// FINELB_TELEMETRY_DISABLED (cmake -DFINELB_TELEMETRY=OFF): record calls are
// `if constexpr` eliminated and the registry hands out null handles without
// allocating cells, so call sites stay unconditional.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "stats/log_buckets.h"

namespace finelb::telemetry {

#if defined(FINELB_TELEMETRY_DISABLED)
inline constexpr bool kEnabled = false;
#else
inline constexpr bool kEnabled = true;
#endif

namespace detail {

// Telemetry histograms trade resolution for footprint relative to
// LatencyHistogram: 16 sub-buckets (~6% relative error) over 2^-20..2^30
// (values are milliseconds, so ~1 ns .. ~12 days) keeps a shard's bucket
// array at ~6.4 KB.
inline constexpr LogBucketing kHistBucketing{/*sub_bucket_bits=*/4,
                                             /*min_exp=*/-20,
                                             /*max_exp=*/30};
inline constexpr std::size_t kHistBuckets = kHistBucketing.bucket_count();

// Threads hash onto a fixed set of shards; collisions stay correct (buckets
// are atomics), they just contend a little.
inline constexpr int kShards = 8;

int shard_index();

struct CounterCell {
  std::string name;
  std::atomic<std::int64_t> value{0};
};

struct alignas(64) HistogramShard {
  std::atomic<double> sum{0.0};
  std::array<std::atomic<std::int64_t>, kHistBuckets> buckets{};
};

struct HistogramCell {
  std::string name;
  // Shards are heap-allocated once at registration (cold path); the hot path
  // only ever indexes into them.
  std::unique_ptr<HistogramShard[]> shards;
};

}  // namespace detail

/// Monotonic event count. Copyable value handle; thread-safe.
class Counter {
 public:
  Counter() = default;

  void add(std::int64_t n) const {
    if constexpr (kEnabled) {
      if (cell_ == nullptr) return;  // default-constructed: no-op
      cell_->value.fetch_add(n, std::memory_order_relaxed);
    }
  }
  void inc() const { add(1); }

 private:
  friend class Registry;
  explicit Counter(detail::CounterCell* cell) : cell_(cell) {}
  detail::CounterCell* cell_ = nullptr;
};

/// Last-write-wins instantaneous value. Copyable value handle; thread-safe.
class Gauge {
 public:
  Gauge() = default;

  void set(std::int64_t v) const {
    if constexpr (kEnabled) {
      if (cell_ == nullptr) return;
      cell_->value.store(v, std::memory_order_relaxed);
    }
  }
  void add(std::int64_t delta) const {
    if constexpr (kEnabled) {
      if (cell_ == nullptr) return;
      cell_->value.fetch_add(delta, std::memory_order_relaxed);
    }
  }

 private:
  friend class Registry;
  explicit Gauge(detail::CounterCell* cell) : cell_(cell) {}
  detail::CounterCell* cell_ = nullptr;
};

/// Log-bucketed distribution. Copyable value handle; thread-safe: each
/// record is two relaxed RMWs on the caller's shard.
class Histogram {
 public:
  Histogram() = default;

  void record(double value) const {
    if constexpr (kEnabled) {
      if (cell_ == nullptr) return;
      detail::HistogramShard& shard = cell_->shards[detail::shard_index()];
      shard.buckets[detail::kHistBucketing.index(value)].fetch_add(
          1, std::memory_order_relaxed);
      shard.sum.fetch_add(value > 0.0 ? value : 0.0,
                          std::memory_order_relaxed);
    }
  }

 private:
  friend class Registry;
  explicit Histogram(detail::HistogramCell* cell) : cell_(cell) {}
  detail::HistogramCell* cell_ = nullptr;
};

struct HistogramSnapshot {
  std::string name;
  std::int64_t count = 0;
  double mean = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double min = 0.0;  // lower bound of the lowest occupied bucket
  double max = 0.0;  // upper bound of the highest occupied bucket
  /// Occupied buckets as (representative value, count), ascending.
  std::vector<std::pair<double, std::int64_t>> buckets;
};

struct MetricsSnapshot {
  std::string node;
  std::vector<std::pair<std::string, std::int64_t>> counters;
  std::vector<std::pair<std::string, std::int64_t>> gauges;
  /// Named scalar doubles (sim means, utilization, ...): snapshot-only, no
  /// hot-path handle.
  std::vector<std::pair<std::string, double>> values;
  std::vector<HistogramSnapshot> histograms;
};

/// Owns metric cells; hands out stable handles. Creation and scraping take a
/// mutex (cold paths); recording through handles never does.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Get-or-create by name: repeated calls return handles to the same cell.
  Counter counter(std::string_view name);
  Gauge gauge(std::string_view name);
  Histogram histogram(std::string_view name);

  /// Registers a gauge evaluated lazily at snapshot time — zero hot-path
  /// cost for state the node already tracks (e.g. a queue-length atomic).
  /// `fn` must be safe to call from the scraping thread.
  void probe(std::string_view name, std::function<std::int64_t()> fn);

  MetricsSnapshot snapshot(std::string_view node = {}) const;

 private:
  detail::CounterCell* find_or_create_cell(
      std::vector<std::unique_ptr<detail::CounterCell>>& cells,
      std::string_view name);

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<detail::CounterCell>> counters_;
  std::vector<std::unique_ptr<detail::CounterCell>> gauges_;
  std::vector<std::unique_ptr<detail::HistogramCell>> histograms_;
  struct Probe {
    std::string name;
    std::function<std::int64_t()> fn;
  };
  std::vector<Probe> probes_;
};

}  // namespace finelb::telemetry
