// Request lifecycle tracing: a fixed-capacity ring of trace records.
//
// Captures the canonical request path of the paper's polling protocol —
// client enqueue → poll sent → each poll reply/discard → server pick →
// dispatch → service start → response — for a *sampled* subset of requests,
// so full traces can be dumped without paying per-request cost on every
// access. Recording is wait-free: one relaxed fetch_add to claim a slot plus
// a handful of relaxed stores, sealed by a release store of the slot's
// sequence number. Readers snapshot with a per-slot seqlock check (read seq,
// read fields, re-read seq), so a record overwritten mid-read is skipped
// rather than returned torn. All state is plain 64-bit atomics: TSan-clean
// with concurrent writers on every point.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

namespace finelb::telemetry {

enum class TracePoint : std::uint8_t {
  kClientEnqueue = 0,  // access entered the client's open queue
  kPollSent = 1,       // one poll round fanned out (detail = targets)
  kPollReply = 2,      // load reply accepted (node = server, detail = qlen)
  kPollDiscard = 3,    // stale/slow reply discarded (Table 2's metric)
  kServerPick = 4,     // poll round resolved (detail = chosen server)
  kDispatch = 5,       // request sent to the server (node = server)
  kServiceStart = 6,   // server worker dequeued it (detail = queue wait ns)
  kResponse = 7,       // response sent / received (detail = qlen at arrival)
  kLoadReplied = 8,    // server answered a traced inquiry (detail = qlen
                       // reported — the t_reply side of the staleness pair)
  kLeaderElected = 9,  // directory replica won an election (node = replica,
                       // detail = term; request_id carries the term too so
                       // the instant survives request-keyed merges)
};

const char* trace_point_name(TracePoint point);

struct TraceRecord {
  std::uint64_t request_id = 0;
  TracePoint point = TracePoint::kClientEnqueue;
  std::int32_t node = -1;    // server index / client id; -1 when n/a
  std::int64_t at_ns = 0;    // caller-supplied clock (net::monotonic_now())
  std::int64_t detail = 0;   // point-specific payload, see enum comments
};

class TraceRing {
 public:
  /// `sample_period` of 0 disables tracing entirely; N traces every request
  /// whose id is a multiple of N. Capacity is fixed at construction; older
  /// records are overwritten.
  explicit TraceRing(std::size_t capacity = 256,
                     std::uint32_t sample_period = 0);

  /// Hot-path gate: callers check this once per request/event and skip the
  /// record() call (and any argument computation) when not sampled.
  bool sampled(std::uint64_t request_id) const {
    if constexpr (!kTraceEnabled) {
      (void)request_id;
      return false;
    }
    return period_ != 0 && request_id % period_ == 0;
  }

  /// True when the ring records at all (telemetry compiled in and a nonzero
  /// sample period). The gate for *propagated* trace contexts: a request
  /// whose wire trace_id is set was sampled by the issuing client, so the
  /// receiving node records it whenever its own ring is live, regardless of
  /// its local sampling period.
  bool active() const {
    if constexpr (!kTraceEnabled) return false;
    return slots_ != nullptr;
  }

  void record(std::uint64_t request_id, TracePoint point, std::int32_t node,
              std::int64_t at_ns, std::int64_t detail = 0);

  /// Valid records, oldest first. Safe to call concurrently with writers;
  /// slots being overwritten during the read are skipped.
  std::vector<TraceRecord> snapshot() const;

  std::uint32_t sample_period() const { return period_; }
  std::size_t capacity() const { return capacity_; }

 private:
#if defined(FINELB_TELEMETRY_DISABLED)
  static constexpr bool kTraceEnabled = false;
#else
  static constexpr bool kTraceEnabled = true;
#endif

  struct Slot {
    // seq = claim index + 1 (0 = never written), stored with release after
    // the payload fields so readers can validate.
    std::atomic<std::uint64_t> seq{0};
    std::atomic<std::uint64_t> request_id{0};
    std::atomic<std::uint64_t> meta{0};  // point in low 8 bits, node << 8
    std::atomic<std::int64_t> at_ns{0};
    std::atomic<std::int64_t> detail{0};
  };

  std::size_t capacity_;
  std::uint32_t period_;
  std::unique_ptr<Slot[]> slots_;
  std::atomic<std::uint64_t> head_{0};
};

}  // namespace finelb::telemetry
