#include "telemetry/trace.h"

#include <algorithm>

#include "common/check.h"

namespace finelb::telemetry {

const char* trace_point_name(TracePoint point) {
  switch (point) {
    case TracePoint::kClientEnqueue: return "client_enqueue";
    case TracePoint::kPollSent: return "poll_sent";
    case TracePoint::kPollReply: return "poll_reply";
    case TracePoint::kPollDiscard: return "poll_discard";
    case TracePoint::kServerPick: return "server_pick";
    case TracePoint::kDispatch: return "dispatch";
    case TracePoint::kServiceStart: return "service_start";
    case TracePoint::kResponse: return "response";
    case TracePoint::kLoadReplied: return "load_replied";
    case TracePoint::kLeaderElected: return "leader_elected";
  }
  return "unknown";
}

TraceRing::TraceRing(std::size_t capacity, std::uint32_t sample_period)
    : capacity_(capacity), period_(sample_period) {
  FINELB_CHECK(capacity > 0, "trace ring capacity must be positive");
  if constexpr (kTraceEnabled) {
    if (period_ != 0) slots_ = std::make_unique<Slot[]>(capacity_);
  }
}

void TraceRing::record(std::uint64_t request_id, TracePoint point,
                       std::int32_t node, std::int64_t at_ns,
                       std::int64_t detail) {
  if constexpr (!kTraceEnabled) {
    (void)request_id, (void)point, (void)node, (void)at_ns, (void)detail;
    return;
  }
  if (slots_ == nullptr) return;  // tracing disabled at construction
  const std::uint64_t claim = head_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[claim % capacity_];
  // Seqlock write protocol, fence-free like common/seqlock.h (GCC's TSan
  // does not model atomic_thread_fence): mark the slot in-progress (odd
  // seq) before touching the payload, seal it (even seq) after. Release
  // on every payload store keeps the odd-marker store from sinking below
  // it, so a reader that observes any of this generation's payload also
  // observes at least the in-progress marker on its re-check.
  slot.seq.store(2 * claim + 1, std::memory_order_relaxed);
  slot.request_id.store(request_id, std::memory_order_release);
  slot.meta.store(static_cast<std::uint64_t>(point) |
                      (static_cast<std::uint64_t>(
                           static_cast<std::uint32_t>(node))
                       << 8),
                  std::memory_order_release);
  slot.at_ns.store(at_ns, std::memory_order_release);
  slot.detail.store(detail, std::memory_order_release);
  slot.seq.store(2 * claim + 2, std::memory_order_release);
}

std::vector<TraceRecord> TraceRing::snapshot() const {
  std::vector<TraceRecord> out;
  if constexpr (!kTraceEnabled) return out;
  if (slots_ == nullptr) return out;
  const std::uint64_t head = head_.load(std::memory_order_acquire);
  const std::uint64_t begin = head > capacity_ ? head - capacity_ : 0;
  out.reserve(static_cast<std::size_t>(head - begin));
  for (std::uint64_t claim = begin; claim < head; ++claim) {
    const Slot& slot = slots_[claim % capacity_];
    const std::uint64_t sealed = 2 * claim + 2;
    if (slot.seq.load(std::memory_order_acquire) != sealed) {
      continue;  // not yet sealed, or already overwritten by a newer claim
    }
    TraceRecord rec;
    // Acquire on every payload load keeps the re-check below from hoisting
    // above it; reading any later generation's payload (a release store
    // ordered after that writer's odd marker) then forces the re-check to
    // see the odd marker and drop the record instead of returning it torn.
    rec.request_id = slot.request_id.load(std::memory_order_acquire);
    const std::uint64_t meta = slot.meta.load(std::memory_order_acquire);
    rec.point = static_cast<TracePoint>(meta & 0xff);
    rec.node = static_cast<std::int32_t>(
        static_cast<std::uint32_t>(meta >> 8));
    rec.at_ns = slot.at_ns.load(std::memory_order_acquire);
    rec.detail = slot.detail.load(std::memory_order_acquire);
    if (slot.seq.load(std::memory_order_relaxed) != sealed) continue;
    out.push_back(rec);
  }
  return out;
}

}  // namespace finelb::telemetry
