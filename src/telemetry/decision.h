// Decision audit trail: a fixed-capacity, lock-free ring of dispatch
// decisions (DESIGN.md §13).
//
// PR 5's staleness observatory measures how wrong the load indexes are;
// this ring captures what the balancer *did* with them — per decision, the
// polled server set with reported loads and report ages, the chosen server,
// and the blind-fallback/blacklist flags. Records are produced at the
// single choke point in core/selection.h (pick_least_loaded /
// pick_random_fallback with a DecisionContext), so the simulator and the
// prototype fill structurally identical rings.
//
// The ring uses the same fence-free seqlock protocol as TraceRing: one
// relaxed fetch_add claims a slot, release stores fill the payload, and a
// final release store of the even sequence seals it; readers validate the
// sequence before and after copying. Every word is a 64-bit atomic —
// TSan-clean under concurrent writers. Under FINELB_TELEMETRY=OFF the ring
// allocates nothing and record() compiles to a no-op.
//
// Decision quality: the sim computes exact mistake/regret online against
// its omniscient queue view; the prototype reconstructs the measured
// analogue post-run by joining these records with the clock-aligned merged
// traces (reconstruct_decision_quality below) — the chosen server's actual
// queue depth at dispatch comes from its kResponse trace record.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/selection.h"
#include "telemetry/merge.h"
#include "telemetry/metrics.h"

namespace finelb::telemetry {

class DecisionRing final : public DecisionSink {
 public:
  /// `sample_period` of 0 disables recording entirely (no slot allocation);
  /// N records every decision whose request id is a multiple of N — use 1
  /// to audit every decision, or the trace sample period so decision
  /// records join the traced subset.
  explicit DecisionRing(std::size_t capacity = 256,
                        std::uint32_t sample_period = 0);

  /// Hot-path gate, mirroring TraceRing::sampled.
  bool sampled(std::uint64_t request_id) const {
    if constexpr (!kRingEnabled) {
      (void)request_id;
      return false;
    }
    return period_ != 0 && request_id % period_ == 0;
  }

  /// True when the ring records at all (telemetry compiled in and a nonzero
  /// sample period).
  bool active() const {
    if constexpr (!kRingEnabled) return false;
    return slots_ != nullptr;
  }

  /// The sink the choke point writes through (null when inactive, so the
  /// selection call skips record construction entirely).
  DecisionSink* sink() { return active() ? this : nullptr; }

  void record_decision(const DecisionRecord& record) override;

  /// Valid records, oldest first. Safe against concurrent writers; slots
  /// overwritten mid-read are skipped rather than returned torn.
  std::vector<DecisionRecord> snapshot() const;

  std::uint32_t sample_period() const { return period_; }
  std::size_t capacity() const { return capacity_; }

 private:
#if defined(FINELB_TELEMETRY_DISABLED)
  static constexpr bool kRingEnabled = false;
#else
  static constexpr bool kRingEnabled = true;
#endif

  struct Slot {
    // seq = 2*claim+1 while writing, 2*claim+2 sealed (0 = never written).
    std::atomic<std::uint64_t> seq{0};
    std::atomic<std::uint64_t> request_id{0};
    std::atomic<std::int64_t> at_ns{0};
    // chosen (low 32) | polled_count << 32 | blind << 40 | filtered << 48.
    std::atomic<std::uint64_t> meta{0};
    // Per polled entry: server (low 32) | queue_length << 32, plus its age.
    std::atomic<std::uint64_t> polled_id_qlen[kDecisionPollMax] = {};
    std::atomic<std::int64_t> polled_age_ns[kDecisionPollMax] = {};
  };

  std::size_t capacity_;
  std::uint32_t period_;
  std::unique_ptr<Slot[]> slots_;
  std::atomic<std::uint64_t> head_{0};
};

// --- regret accounting -------------------------------------------------------

/// Decision-quality aggregates with identical metric names in the sim
/// (exact, omniscient baseline) and the prototype (trace-reconstructed).
/// Regret = extra queue depth the decision suffered over the best available
/// choice; a mistake is any decision with positive regret.
struct DecisionQualitySummary {
  std::int64_t decisions = 0;
  std::int64_t mistakes = 0;
  std::int64_t blind_fallbacks = 0;
  /// Sum of per-decision regret (queue-depth units).
  std::int64_t regret_total = 0;

  double mistake_rate() const {
    return decisions > 0
               ? static_cast<double>(mistakes) / static_cast<double>(decisions)
               : 0.0;
  }
  double mean_regret() const {
    return decisions > 0 ? static_cast<double>(regret_total) /
                               static_cast<double>(decisions)
                         : 0.0;
  }
};

/// Exports the summary under the shared metric names (decisions_total,
/// decision_mistakes_total, decision_blind_fallbacks, decision_regret_total;
/// values decision_mistake_rate, decision_regret_mean) — appended to an
/// existing snapshot so sim and prototype documents stay name-compatible.
void append_decision_metrics(MetricsSnapshot& snapshot,
                             const DecisionQualitySummary& summary);

/// Renders the summary as a JSON object for bench output.
std::string decision_quality_to_json(const DecisionQualitySummary& summary);

/// Prototype-side reconstruction: joins decision records with the
/// clock-aligned merged timeline. For each decision whose request also left
/// a kResponse trace record (detail = the chosen server's queue length when
/// the dispatched request arrived), the measured regret is
///   max(0, Q_arrival(chosen) - min reported queue length in the polled set)
/// — how much deeper the chosen queue actually was than the best promise
/// the balancer acted on. Exact in-sim regret compares true queue depths
/// instead; both definitions coincide when load reports are fresh.
/// Blind-fallback decisions count (and count as mistakes when their
/// realized queue was nonzero) but contribute no reported minimum.
DecisionQualitySummary reconstruct_decision_quality(
    const std::vector<DecisionRecord>& decisions,
    const std::vector<MergedRecord>& merged);

}  // namespace finelb::telemetry
