#include "telemetry/alerts.h"

#include <cstdio>

namespace finelb::telemetry {

namespace {

bool find_entry(const std::vector<std::pair<std::string, std::int64_t>>& map,
                const char* name, std::int64_t& out) {
  for (const auto& [key, value] : map) {
    if (key == name) {
      out = value;
      return true;
    }
  }
  return false;
}

bool find_value(const std::vector<std::pair<std::string, double>>& map,
                const char* name, double& out) {
  for (const auto& [key, value] : map) {
    if (key == name) {
      out = value;
      return true;
    }
  }
  return false;
}

Alert make_alert(const char* rule, const std::string& node, double value,
                 double threshold, const char* what) {
  Alert alert;
  alert.rule = rule;
  alert.node = node;
  alert.value = value;
  alert.threshold = threshold;
  char buf[192];
  std::snprintf(buf, sizeof(buf), "%s on %s: %.6g (threshold %.6g)", what,
                node.empty() ? "(unnamed node)" : node.c_str(), value,
                threshold);
  alert.message = buf;
  return alert;
}

}  // namespace

AlertEngine::AlertEngine(AlertThresholds thresholds)
    : thresholds_(thresholds) {}

AlertEngine::NodeState& AlertEngine::state_for(const std::string& node) {
  for (NodeState& state : states_) {
    if (state.node == node) return state;
  }
  states_.push_back(NodeState{});
  states_.back().node = node;
  return states_.back();
}

std::vector<Alert> AlertEngine::evaluate(const MetricsSnapshot& snapshot) {
  std::vector<Alert> fired;
  NodeState& state = state_for(snapshot.node);
  const bool had_baseline = state.seen;

  // --- queue-growth overload (server nodes export the queue_depth probe) --
  std::int64_t queue_depth = 0;
  if (find_entry(snapshot.gauges, "queue_depth", queue_depth)) {
    if (thresholds_.queue_depth > 0 && queue_depth >= thresholds_.queue_depth) {
      fired.push_back(make_alert(
          "queue_overload", snapshot.node, static_cast<double>(queue_depth),
          static_cast<double>(thresholds_.queue_depth), "queue depth"));
    }
    const std::int64_t growth = queue_depth - state.queue_depth;
    if (had_baseline && thresholds_.queue_growth > 0 &&
        growth >= thresholds_.queue_growth) {
      fired.push_back(make_alert(
          "queue_growth", snapshot.node, static_cast<double>(growth),
          static_cast<double>(thresholds_.queue_growth),
          "queue growth since last scrape"));
    }
    state.queue_depth = queue_depth;
  }

  // --- blacklist spike (client nodes) -------------------------------------
  std::int64_t blacklist = 0;
  if (find_entry(snapshot.counters, "blacklist_insertions", blacklist)) {
    const std::int64_t delta = blacklist - state.blacklist_insertions;
    if (had_baseline && thresholds_.blacklist_spike > 0 &&
        delta >= thresholds_.blacklist_spike) {
      fired.push_back(make_alert(
          "blacklist_spike", snapshot.node, static_cast<double>(delta),
          static_cast<double>(thresholds_.blacklist_spike),
          "blacklist insertions since last scrape"));
    }
    state.blacklist_insertions = blacklist;
  }

  // --- election churn (directory replicas, from the ha trace counters) ----
  std::int64_t gains = 0;
  if (find_entry(snapshot.counters, "ha.leadership_gains", gains)) {
    const std::int64_t delta = gains - state.leadership_gains;
    if (had_baseline && thresholds_.election_churn > 0 &&
        delta >= thresholds_.election_churn) {
      fired.push_back(make_alert(
          "election_churn", snapshot.node, static_cast<double>(delta),
          static_cast<double>(thresholds_.election_churn),
          "leadership changes since last scrape"));
    }
    state.leadership_gains = gains;
  }

  // --- decision mistake rate (decision observatory) -----------------------
  double mistake_rate = 0.0;
  if (find_value(snapshot.values, "decision_mistake_rate", mistake_rate)) {
    if (thresholds_.mistake_rate <= 1.0 &&
        mistake_rate >= thresholds_.mistake_rate) {
      fired.push_back(make_alert("decision_mistakes", snapshot.node,
                                 mistake_rate, thresholds_.mistake_rate,
                                 "decision mistake rate"));
    }
  }

  state.seen = true;
  return fired;
}

std::vector<Alert> AlertEngine::evaluate_cluster(
    const std::vector<MetricsSnapshot>& nodes) {
  std::vector<Alert> fired;
  for (const MetricsSnapshot& snapshot : nodes) {
    std::vector<Alert> node_alerts = evaluate(snapshot);
    fired.insert(fired.end(), node_alerts.begin(), node_alerts.end());
  }
  return fired;
}

namespace {

void append_json_escaped(std::string& out, const std::string& s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
}

}  // namespace

std::string alerts_to_json(const std::vector<Alert>& alerts) {
  std::string out = "{\"alerts\":[";
  bool first = true;
  char buf[64];
  for (const Alert& alert : alerts) {
    if (!first) out += ',';
    first = false;
    out += "{\"rule\":\"";
    append_json_escaped(out, alert.rule);
    out += "\",\"node\":\"";
    append_json_escaped(out, alert.node);
    out += "\",\"value\":";
    std::snprintf(buf, sizeof(buf), "%.6g", alert.value);
    out += buf;
    out += ",\"threshold\":";
    std::snprintf(buf, sizeof(buf), "%.6g", alert.threshold);
    out += buf;
    out += ",\"message\":\"";
    append_json_escaped(out, alert.message);
    out += "\"}";
  }
  out += "]}";
  return out;
}

std::string alerts_to_prometheus(const std::vector<Alert>& alerts) {
  std::string out = "# TYPE finelb_alert_firing gauge\n";
  for (const Alert& alert : alerts) {
    out += "finelb_alert_firing{rule=\"";
    append_json_escaped(out, alert.rule);
    out += "\",node=\"";
    append_json_escaped(out, alert.node);
    out += "\"} 1\n";
  }
  return out;
}

}  // namespace finelb::telemetry
