#include "telemetry/metrics.h"

#include <algorithm>
#include <cmath>

namespace finelb::telemetry {

namespace detail {

int shard_index() {
  thread_local const int idx = [] {
    static std::atomic<unsigned> next{0};
    return static_cast<int>(next.fetch_add(1, std::memory_order_relaxed) %
                            static_cast<unsigned>(kShards));
  }();
  return idx;
}

}  // namespace detail

detail::CounterCell* Registry::find_or_create_cell(
    std::vector<std::unique_ptr<detail::CounterCell>>& cells,
    std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& cell : cells) {
    if (cell->name == name) return cell.get();
  }
  cells.push_back(std::make_unique<detail::CounterCell>());
  cells.back()->name = std::string(name);
  return cells.back().get();
}

Counter Registry::counter(std::string_view name) {
  if constexpr (!kEnabled) return Counter();
  return Counter(find_or_create_cell(counters_, name));
}

Gauge Registry::gauge(std::string_view name) {
  if constexpr (!kEnabled) return Gauge();
  return Gauge(find_or_create_cell(gauges_, name));
}

Histogram Registry::histogram(std::string_view name) {
  if constexpr (!kEnabled) return Histogram();
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& cell : histograms_) {
    if (cell->name == name) return Histogram(cell.get());
  }
  auto cell = std::make_unique<detail::HistogramCell>();
  cell->name = std::string(name);
  cell->shards = std::make_unique<detail::HistogramShard[]>(detail::kShards);
  histograms_.push_back(std::move(cell));
  return Histogram(histograms_.back().get());
}

void Registry::probe(std::string_view name, std::function<std::int64_t()> fn) {
  if constexpr (!kEnabled) return;
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& probe : probes_) {
    if (probe.name == name) {
      probe.fn = std::move(fn);
      return;
    }
  }
  probes_.push_back({std::string(name), std::move(fn)});
}

namespace {

HistogramSnapshot aggregate_histogram(const detail::HistogramCell& cell) {
  HistogramSnapshot snap;
  snap.name = cell.name;
  std::vector<std::int64_t> totals(detail::kHistBuckets, 0);
  double sum = 0.0;
  for (int s = 0; s < detail::kShards; ++s) {
    const detail::HistogramShard& shard = cell.shards[s];
    for (std::size_t i = 0; i < detail::kHistBuckets; ++i) {
      totals[i] += shard.buckets[i].load(std::memory_order_relaxed);
    }
    sum += shard.sum.load(std::memory_order_relaxed);
  }
  // Count is derived from the buckets actually read, so count and quantiles
  // are always mutually consistent even mid-write; `sum` (and hence the
  // mean) may trail by in-flight records, which is fine for a mean.
  bool saw_any = false;
  for (std::size_t i = 0; i < detail::kHistBuckets; ++i) {
    if (totals[i] > 0) {
      snap.count += totals[i];
      snap.buckets.emplace_back(detail::kHistBucketing.representative(i),
                                totals[i]);
      if (!saw_any) snap.min = detail::kHistBucketing.lower(i);
      saw_any = true;
      snap.max = detail::kHistBucketing.upper(i);
    }
  }
  if (snap.count == 0) return snap;
  snap.mean = sum / static_cast<double>(snap.count);
  const auto quantile = [&](double q) {
    const auto rank = static_cast<std::int64_t>(
        std::ceil(q * static_cast<double>(snap.count)));
    std::int64_t seen = 0;
    for (std::size_t i = 0; i < detail::kHistBuckets; ++i) {
      seen += totals[i];
      if (seen >= rank && totals[i] > 0) {
        return detail::kHistBucketing.representative(i);
      }
    }
    return detail::kHistBucketing.representative(detail::kHistBuckets - 1);
  };
  snap.p50 = quantile(0.50);
  snap.p95 = quantile(0.95);
  snap.p99 = quantile(0.99);
  return snap;
}

}  // namespace

MetricsSnapshot Registry::snapshot(std::string_view node) const {
  MetricsSnapshot snap;
  snap.node = std::string(node);
  if constexpr (!kEnabled) return snap;
  std::lock_guard<std::mutex> lock(mu_);
  snap.counters.reserve(counters_.size());
  for (const auto& cell : counters_) {
    snap.counters.emplace_back(cell->name,
                               cell->value.load(std::memory_order_relaxed));
  }
  snap.gauges.reserve(gauges_.size() + probes_.size());
  for (const auto& cell : gauges_) {
    snap.gauges.emplace_back(cell->name,
                             cell->value.load(std::memory_order_relaxed));
  }
  for (const auto& probe : probes_) {
    snap.gauges.emplace_back(probe.name, probe.fn());
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& cell : histograms_) {
    snap.histograms.push_back(aggregate_histogram(*cell));
  }
  return snap;
}

}  // namespace finelb::telemetry
