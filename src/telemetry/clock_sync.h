// Pairwise clock-offset estimation for trace merging.
//
// Every node stamps TraceRecords with its own monotonic clock, whose epoch
// is arbitrary (CLOCK_MONOTONIC starts at boot). To place records from two
// nodes on one timeline we estimate the offset between their clocks from
// request/reply round trips, NTP-style: if the remote clock read `remote`
// somewhere between our `send` and `recv`, then assuming symmetric paths the
// best point estimate is the midpoint,
//
//     offset = remote - (send + recv) / 2        (remote minus local)
//
// and the estimate cannot be off by more than RTT/2 in either direction —
// the remote stamp could have been taken at either edge of the round trip.
// Among many samples the minimum-RTT one carries the tightest bound, so
// ClockSync keeps exactly that one (the classic Cristian/NTP filter). After
// syncing, the bound grows with elapsed time at the configured drift rate:
// two crystal oscillators a few ppm apart drift microseconds per second.
//
// Sample sources: net::measure_udp_rtt's stamped echo rounds, and every
// TRACE_INQUIRY/TRACE_REPLY scrape (the reply carries the answering node's
// clock), so pulling a node's trace ring synchronizes against it for free.
#pragma once

#include <cstdint>

namespace finelb::telemetry {

class ClockSync {
 public:
  /// `drift_ppm` bounds the relative frequency error of the two clocks
  /// (parts per million); it only widens error_bound_ns over time, never
  /// the offset itself. 200 ppm is conservative for commodity crystals.
  explicit ClockSync(double drift_ppm = 200.0) : drift_ppm_(drift_ppm) {}

  /// Ingests one round trip: the remote clock read `remote_ns` at some
  /// local-clock instant inside [local_send_ns, local_recv_ns]. Samples
  /// with a non-positive RTT are ignored (clock went backwards / reordered
  /// capture). Keeps the minimum-RTT sample seen so far.
  void add_sample(std::int64_t local_send_ns, std::int64_t remote_ns,
                  std::int64_t local_recv_ns);

  /// True once at least one valid sample was ingested.
  bool synced() const { return samples_ > 0; }

  /// Best estimate of (remote clock - local clock), in nanoseconds.
  std::int64_t offset_ns() const { return offset_ns_; }

  /// Maps a remote-clock timestamp onto the local clock.
  std::int64_t to_local(std::int64_t remote_ns) const {
    return remote_ns - offset_ns_;
  }

  /// Worst-case error of to_local() for an event observed around
  /// `local_now_ns`: half the best sample's RTT plus accumulated drift
  /// since that sample was taken.
  std::int64_t error_bound_ns(std::int64_t local_now_ns) const;

  /// RTT of the sample the estimate is based on (tightest bound seen).
  std::int64_t best_rtt_ns() const { return best_rtt_ns_; }

  int sample_count() const { return samples_; }

 private:
  double drift_ppm_;
  int samples_ = 0;
  std::int64_t offset_ns_ = 0;
  std::int64_t best_rtt_ns_ = 0;
  /// Local-clock midpoint of the best sample — drift accrues from here.
  std::int64_t synced_at_local_ns_ = 0;
};

}  // namespace finelb::telemetry
