// Cluster-wide trace merging: align per-node trace rings onto one clock and
// emit a causally-ordered timeline.
//
// Inputs are per-node record lists (from TraceRing::snapshot() in-process or
// scrape_trace() over the wire) plus each node's clock offset against a
// reference clock (telemetry/clock_sync.h). Merging:
//
//   1. aligns every record's timestamp onto the reference clock
//      (local = recorded - offset);
//   2. assigns each record a causal sort key: within one request id, the
//      canonical lifecycle order (enqueue < poll_sent < load_replied <
//      poll_reply < server_pick < dispatch < service_start < response) is
//      enforced by taking a running max over aligned timestamps — clock
//      error smaller than the sync bound can reorder wire-adjacent records,
//      and the running max restores causality without inventing times;
//   3. sorts the union by that key with deterministic tie-breaks.
//
// Exports: Chrome trace-event JSON (load chrome://tracing or
// https://ui.perfetto.dev) with one process per node, spans for the access/
// poll/service phases, flow arrows from dispatch to service start, and
// instants for replies; plus a flat CSV for scripted analysis.
//
// The staleness observatory computes, per traced request, the live-cluster
// analogue of the paper's Figure 2: |Q(t_reply) - Q(t_dispatch)| — the
// chosen server's queue length when it answered the poll versus when the
// dispatched request actually arrived — and the dissemination delay between
// those two instants (both stamped by the same server, so the delay needs
// no cross-clock subtraction). Equation 1's M/M/1 bound for comparison
// lives in stats/queueing.h (stale_index_inaccuracy_bound).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace finelb::telemetry {

/// One node's contribution to a merged timeline.
struct NodeTrace {
  /// Display label, e.g. "client.0" or "server.3".
  std::string source;
  /// This node's clock minus the reference clock (ClockSync::offset_ns
  /// measured from the reference node). 0 for the reference node itself.
  std::int64_t clock_offset_ns = 0;
  std::vector<TraceRecord> records;
};

struct MergedRecord {
  /// The record with at_ns already aligned onto the reference clock.
  TraceRecord record;
  /// Index into the merge_traces() input vector (which node recorded it).
  std::int32_t source = -1;
  /// Causal sort key: >= the aligned time of every lifecycle predecessor
  /// with the same request id. Equals record.at_ns when clocks agree.
  std::int64_t order_ns = 0;
};

/// Canonical lifecycle rank used for causal ordering (poll_reply and
/// poll_discard share a rank; both follow load_replied).
int trace_point_rank(TracePoint point);

/// Aligns, causally orders, and merges per-node traces (see file comment).
/// Deterministic: ties sort by request id, rank, then source index.
std::vector<MergedRecord> merge_traces(const std::vector<NodeTrace>& nodes);

/// Chrome trace-event JSON (Perfetto-loadable). `nodes` must be the same
/// vector merge_traces consumed (labels per source index). Timestamps are
/// rebased so the earliest record lands at t=0.
std::string to_chrome_trace_json(const std::vector<MergedRecord>& merged,
                                 const std::vector<NodeTrace>& nodes);

/// Flat CSV: trace_id,point,node,source,at_ns,order_ns,detail.
std::string to_csv(const std::vector<MergedRecord>& merged,
                   const std::vector<NodeTrace>& nodes);

/// Empirical staleness distribution over a merged timeline (Figure 2 live).
struct StalenessSummary {
  /// Traced requests with both a poll reply from the chosen server and a
  /// response (the |Q(t_reply) - Q(t_dispatch)| sample set).
  std::int64_t samples = 0;
  double mean_abs_diff = 0.0;
  double p50_abs_diff = 0.0;
  double p90_abs_diff = 0.0;
  double p99_abs_diff = 0.0;
  std::int64_t max_abs_diff = 0;
  /// abs_diff_counts[d] = requests with |ΔQ| == d; the last bucket
  /// aggregates everything >= its index.
  std::vector<std::int64_t> abs_diff_counts;

  /// Dissemination delay: reply-build to request-arrival at the chosen
  /// server (same server clock). Empty stats when no request had both ends.
  std::int64_t delay_samples = 0;
  double mean_delay_us = 0.0;
  double p50_delay_us = 0.0;
  double p99_delay_us = 0.0;
  double max_delay_us = 0.0;
};

/// Walks merged records grouped by request id. A request contributes a
/// staleness sample when it has a kServerPick, a kPollReply from the picked
/// server (Q(t_reply)) and a kResponse (Q(t_dispatch) = queue at arrival);
/// it additionally contributes a delay sample when the picked server's
/// kLoadReplied and kServiceStart records were captured.
StalenessSummary compute_staleness(const std::vector<MergedRecord>& merged);

/// Renders a StalenessSummary as a JSON object (for run_prototype and the
/// stats_snapshot cluster document).
std::string staleness_to_json(const StalenessSummary& summary);

// --- cross-node histogram merging --------------------------------------------

/// Bucket-wise sum of per-node histogram snapshots sharing the registry's
/// log bucketing: buckets with the same representative value add their
/// counts, count/sum/min/max/quantiles are recomputed from the merged
/// buckets with the registry's own quantile rule — so cluster-wide
/// quantiles exactly equal what one histogram recording every node's
/// samples would have reported (pinned by merge_test). `name` labels the
/// result (parts may carry per-node names).
HistogramSnapshot merge_histograms(std::span<const HistogramSnapshot> parts,
                                   std::string name);

/// Merges every histogram family across node snapshots by name (the
/// cluster-wide quantile surface for a scraped node set), ordered by first
/// appearance.
std::vector<HistogramSnapshot> merge_node_histograms(
    const std::vector<MetricsSnapshot>& nodes);

}  // namespace finelb::telemetry
