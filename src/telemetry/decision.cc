#include "telemetry/decision.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <unordered_map>

#include "common/check.h"

namespace finelb::telemetry {

DecisionRing::DecisionRing(std::size_t capacity, std::uint32_t sample_period)
    : capacity_(capacity), period_(sample_period) {
  FINELB_CHECK(capacity > 0, "decision ring capacity must be positive");
  if constexpr (kRingEnabled) {
    if (period_ != 0) slots_ = std::make_unique<Slot[]>(capacity_);
  }
}

void DecisionRing::record_decision(const DecisionRecord& record) {
  if constexpr (!kRingEnabled) {
    (void)record;
    return;
  }
  if (slots_ == nullptr) return;
  const std::uint64_t claim = head_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[claim % capacity_];
  // Fence-free seqlock write, identical to TraceRing::record: odd marker
  // first, release on every payload store, even seal last.
  slot.seq.store(2 * claim + 1, std::memory_order_relaxed);
  slot.request_id.store(record.request_id, std::memory_order_release);
  slot.at_ns.store(record.at_ns, std::memory_order_release);
  const std::uint64_t meta =
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(record.chosen))) |
      (static_cast<std::uint64_t>(record.polled_count) << 32) |
      (static_cast<std::uint64_t>(record.blind_fallback ? 1 : 0) << 40) |
      (static_cast<std::uint64_t>(record.blacklist_filtered) << 48);
  slot.meta.store(meta, std::memory_order_release);
  for (std::size_t i = 0; i < kDecisionPollMax; ++i) {
    const PolledLoad& p = record.polled[i];
    slot.polled_id_qlen[i].store(
        static_cast<std::uint64_t>(static_cast<std::uint32_t>(p.server)) |
            (static_cast<std::uint64_t>(
                 static_cast<std::uint32_t>(p.queue_length))
             << 32),
        std::memory_order_release);
    slot.polled_age_ns[i].store(p.age_ns, std::memory_order_release);
  }
  slot.seq.store(2 * claim + 2, std::memory_order_release);
}

std::vector<DecisionRecord> DecisionRing::snapshot() const {
  std::vector<DecisionRecord> out;
  if constexpr (!kRingEnabled) return out;
  if (slots_ == nullptr) return out;
  const std::uint64_t head = head_.load(std::memory_order_acquire);
  const std::uint64_t begin = head > capacity_ ? head - capacity_ : 0;
  out.reserve(static_cast<std::size_t>(head - begin));
  for (std::uint64_t claim = begin; claim < head; ++claim) {
    const Slot& slot = slots_[claim % capacity_];
    const std::uint64_t sealed = 2 * claim + 2;
    if (slot.seq.load(std::memory_order_acquire) != sealed) continue;
    DecisionRecord rec;
    rec.request_id = slot.request_id.load(std::memory_order_acquire);
    rec.at_ns = slot.at_ns.load(std::memory_order_acquire);
    const std::uint64_t meta = slot.meta.load(std::memory_order_acquire);
    rec.chosen = static_cast<ServerId>(
        static_cast<std::uint32_t>(meta & 0xffffffffull));
    rec.polled_count =
        std::min<std::uint8_t>(static_cast<std::uint8_t>(meta >> 32),
                               static_cast<std::uint8_t>(kDecisionPollMax));
    rec.blind_fallback = ((meta >> 40) & 1) != 0;
    rec.blacklist_filtered = static_cast<std::uint8_t>(meta >> 48);
    for (std::size_t i = 0; i < kDecisionPollMax; ++i) {
      const std::uint64_t packed =
          slot.polled_id_qlen[i].load(std::memory_order_acquire);
      rec.polled[i].server = static_cast<ServerId>(
          static_cast<std::uint32_t>(packed & 0xffffffffull));
      rec.polled[i].queue_length =
          static_cast<std::int32_t>(static_cast<std::uint32_t>(packed >> 32));
      rec.polled[i].age_ns =
          slot.polled_age_ns[i].load(std::memory_order_acquire);
    }
    if (slot.seq.load(std::memory_order_relaxed) != sealed) continue;
    out.push_back(rec);
  }
  return out;
}

void append_decision_metrics(MetricsSnapshot& snapshot,
                             const DecisionQualitySummary& summary) {
  snapshot.counters.emplace_back("decisions_total", summary.decisions);
  snapshot.counters.emplace_back("decision_mistakes_total", summary.mistakes);
  snapshot.counters.emplace_back("decision_blind_fallbacks",
                                 summary.blind_fallbacks);
  snapshot.counters.emplace_back("decision_regret_total",
                                 summary.regret_total);
  snapshot.values.emplace_back("decision_mistake_rate",
                               summary.mistake_rate());
  snapshot.values.emplace_back("decision_regret_mean", summary.mean_regret());
}

std::string decision_quality_to_json(const DecisionQualitySummary& summary) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "{\"decisions\":%" PRId64 ",\"mistakes\":%" PRId64
                ",\"blind_fallbacks\":%" PRId64 ",\"regret_total\":%" PRId64
                ",\"mistake_rate\":%.6g,\"mean_regret\":%.6g}",
                summary.decisions, summary.mistakes, summary.blind_fallbacks,
                summary.regret_total, summary.mistake_rate(),
                summary.mean_regret());
  return buf;
}

DecisionQualitySummary reconstruct_decision_quality(
    const std::vector<DecisionRecord>& decisions,
    const std::vector<MergedRecord>& merged) {
  // One pass over the merged timeline: request id -> the chosen server's
  // realized queue depth at dispatch arrival (kResponse detail). The trace
  // and decision rings key records identically, so the join is a hash
  // lookup.
  std::unordered_map<std::uint64_t, std::int64_t> arrival_qlen;
  arrival_qlen.reserve(merged.size() / 4 + 1);
  for (const MergedRecord& m : merged) {
    if (m.record.point == TracePoint::kResponse) {
      arrival_qlen.emplace(m.record.request_id, m.record.detail);
    }
  }
  DecisionQualitySummary summary;
  for (const DecisionRecord& d : decisions) {
    const auto it = arrival_qlen.find(d.request_id);
    if (it == arrival_qlen.end()) continue;  // untraced or lost response
    const std::int64_t realized = it->second;
    std::int64_t promised = 0;
    if (!d.blind_fallback && d.polled_count > 0) {
      promised = d.polled[0].queue_length;
      for (std::uint8_t i = 1; i < d.polled_count; ++i) {
        promised = std::min<std::int64_t>(promised,
                                          d.polled[i].queue_length);
      }
    }
    const std::int64_t regret = std::max<std::int64_t>(0, realized - promised);
    ++summary.decisions;
    if (d.blind_fallback) ++summary.blind_fallbacks;
    if (regret > 0) ++summary.mistakes;
    summary.regret_total += regret;
  }
  return summary;
}

}  // namespace finelb::telemetry
