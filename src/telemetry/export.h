// Snapshot exporters: JSON and human-readable text, plus the two push
// channels — a periodic stderr reporter and a SIGUSR1 dump trigger.
//
// The pull channel (STATS_INQUIRY over the load-index UDP socket) lives with
// the nodes that answer it; telemetry/scrape.h holds the client side.
#pragma once

#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "common/time.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace finelb::telemetry {

/// Renders one node's snapshot as a single JSON object:
///   {"node":"server.3","counters":{...},"gauges":{...},"values":{...},
///    "histograms":{"service_time_ms":{"count":...,"mean":...,"p50":...,
///    "p95":...,"p99":...,"min":...,"max":...,"buckets":[[v,n],...]}}}
std::string to_json(const MetricsSnapshot& snapshot);

/// Same, with a "trace" array of sampled lifecycle records appended.
std::string to_json(const MetricsSnapshot& snapshot,
                    const std::vector<TraceRecord>& trace);

/// Aligned human-readable block, one metric per line.
std::string to_text(const MetricsSnapshot& snapshot);

/// Prometheus text exposition (version 0.0.4): every metric is prefixed
/// `finelb_`, name-sanitized to [a-zA-Z0-9_:], and labeled with the node
/// (`finelb_polls_sent{node="client.0"} 42`). Counters render as `counter`
/// with a `_total`-preserving name, gauges and values as `gauge`, and each
/// histogram as the conventional cumulative `_bucket{le="..."}` series plus
/// `_sum` and `_count` (bucket thresholds come from the snapshot's occupied
/// log-bucket upper bounds; `le="+Inf"` closes the series).
std::string to_prometheus(const MetricsSnapshot& snapshot);

/// Concatenated exposition for a node set, with `# TYPE` lines emitted once
/// per metric family (Prometheus rejects duplicate TYPE declarations).
std::string cluster_to_prometheus(const std::vector<MetricsSnapshot>& nodes);

/// Merges per-node JSON documents into {"nodes":[...]} — inputs must
/// already be valid JSON objects (e.g. from to_json or a STATS_REPLY).
std::string cluster_to_json(const std::vector<std::string>& node_documents);

/// Installs a SIGUSR1 handler that requests a stats dump. The handler only
/// sets an atomic flag (async-signal-safe); a StderrReporter — or any loop
/// calling consume_dump_request() — performs the actual dump.
void install_sigusr1_dump_handler();

/// Requests a dump as if SIGUSR1 had arrived (used by tests).
void trigger_stats_dump();

/// Returns true at most once per requested dump, clearing the flag.
bool consume_dump_request();

/// Background thread that writes `collect()` to stderr every `period`
/// (0 disables the periodic channel) and whenever a dump was requested via
/// SIGUSR1 / trigger_stats_dump(). `collect` runs on the reporter thread
/// and must be safe to call concurrently with the instrumented workload.
class StderrReporter {
 public:
  using Collect = std::function<std::string()>;

  StderrReporter(Collect collect, SimDuration period);
  ~StderrReporter();

  StderrReporter(const StderrReporter&) = delete;
  StderrReporter& operator=(const StderrReporter&) = delete;

  void stop();

 private:
  void run();

  Collect collect_;
  SimDuration period_;
  std::atomic<bool> running_{false};
  std::thread thread_;
};

}  // namespace finelb::telemetry
