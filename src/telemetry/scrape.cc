#include "telemetry/scrape.h"

#include <array>
#include <atomic>

#include "net/clock.h"
#include "net/message.h"
#include "net/poller.h"

namespace finelb::telemetry {

std::optional<std::string> scrape_stats(const net::Address& load_addr,
                                        SimDuration timeout) {
  static std::atomic<std::uint64_t> next_seq{1};

  net::UdpSocket socket;
  net::StatsInquiry inquiry;
  inquiry.seq = next_seq.fetch_add(1, std::memory_order_relaxed);
  std::array<std::uint8_t, net::kMaxFixedMsgSize> out;
  const std::size_t n = inquiry.encode_into(out);
  if (n == 0 || !socket.send_to({out.data(), n}, load_addr)) {
    return std::nullopt;
  }

  net::Poller poller;
  poller.add(socket.fd(), 0);
  std::vector<std::uint8_t> buf(64 * 1024);
  const SimTime deadline = net::monotonic_now() + timeout;
  while (true) {
    const SimDuration remaining = deadline - net::monotonic_now();
    if (remaining <= 0) return std::nullopt;
    if (poller.wait(remaining).empty()) continue;
    while (const auto dgram = socket.recv_from(buf)) {
      net::StatsReply reply;
      if (net::StatsReply::try_decode({buf.data(), dgram->size}, reply) &&
          reply.seq == inquiry.seq) {
        return std::move(reply.payload);
      }
      // Anything else on this ephemeral socket is noise; keep waiting.
    }
  }
}

}  // namespace finelb::telemetry
