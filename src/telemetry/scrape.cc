#include "telemetry/scrape.h"

#include <array>
#include <atomic>

#include "net/clock.h"
#include "net/message.h"
#include "net/poller.h"

namespace finelb::telemetry {

std::optional<std::string> scrape_stats(const net::Address& load_addr,
                                        SimDuration timeout) {
  static std::atomic<std::uint64_t> next_seq{1};

  net::UdpSocket socket;
  net::StatsInquiry inquiry;
  inquiry.seq = next_seq.fetch_add(1, std::memory_order_relaxed);
  std::array<std::uint8_t, net::kMaxFixedMsgSize> out;
  const std::size_t n = inquiry.encode_into(out);
  if (n == 0 || !socket.send_to({out.data(), n}, load_addr)) {
    return std::nullopt;
  }

  net::Poller poller;
  poller.add(socket.fd(), 0);
  std::vector<std::uint8_t> buf(64 * 1024);
  const SimTime deadline = net::monotonic_now() + timeout;
  while (true) {
    const SimDuration remaining = deadline - net::monotonic_now();
    if (remaining <= 0) return std::nullopt;
    if (poller.wait(remaining).empty()) continue;
    while (const auto dgram = socket.recv_from(buf)) {
      net::StatsReply reply;
      if (net::StatsReply::try_decode({buf.data(), dgram->size}, reply) &&
          reply.seq == inquiry.seq) {
        return std::move(reply.payload);
      }
      // Anything else on this ephemeral socket is noise; keep waiting.
    }
  }
}

namespace {

/// One TRACE_INQUIRY round trip on `socket`: returns the matching reply (and
/// the local send/recv stamps bracketing it) or nullopt at `deadline`.
std::optional<net::TraceReply> trace_round_trip(net::UdpSocket& socket,
                                                const net::Address& load_addr,
                                                std::uint32_t offset,
                                                SimTime deadline,
                                                net::ClockSample& sample) {
  static std::atomic<std::uint64_t> next_seq{1};

  net::TraceInquiry inquiry;
  inquiry.seq = next_seq.fetch_add(1, std::memory_order_relaxed);
  inquiry.offset = offset;
  std::array<std::uint8_t, net::kMaxFixedMsgSize> out;
  const std::size_t n = inquiry.encode_into(out);
  sample.local_send_ns = net::monotonic_now();
  if (n == 0 || !socket.send_to({out.data(), n}, load_addr)) {
    return std::nullopt;
  }

  net::Poller poller;
  poller.add(socket.fd(), 0);
  std::vector<std::uint8_t> buf(64 * 1024);
  while (true) {
    const SimDuration remaining = deadline - net::monotonic_now();
    if (remaining <= 0) return std::nullopt;
    if (poller.wait(remaining).empty()) continue;
    while (const auto dgram = socket.recv_from(buf)) {
      net::TraceReply reply;
      if (net::TraceReply::try_decode({buf.data(), dgram->size}, reply) &&
          reply.seq == inquiry.seq) {
        sample.local_recv_ns = net::monotonic_now();
        sample.remote_ns = reply.server_ns;
        return reply;
      }
    }
  }
}

}  // namespace

std::optional<NodeTraceScrape> scrape_trace(const net::Address& load_addr,
                                            SimDuration timeout) {
  const SimTime deadline = net::monotonic_now() + timeout;
  net::UdpSocket socket;
  NodeTraceScrape result;
  std::uint32_t offset = 0;
  while (true) {
    net::ClockSample sample{};
    auto reply =
        trace_round_trip(socket, load_addr, offset, deadline, sample);
    if (!reply) return std::nullopt;
    result.node = reply->node;
    result.clock_samples.push_back(sample);
    for (const net::TraceRecordWire& wire : reply->records) {
      TraceRecord rec;
      rec.request_id = wire.request_id;
      rec.point = static_cast<TracePoint>(wire.point);
      rec.node = wire.node;
      rec.at_ns = wire.at_ns;
      rec.detail = wire.detail;
      result.records.push_back(rec);
    }
    offset = reply->offset + static_cast<std::uint32_t>(reply->records.size());
    if (offset >= reply->total || reply->records.empty()) break;
  }
  return result;
}

std::optional<net::ClockSample> probe_clock(const net::Address& load_addr,
                                            SimDuration timeout) {
  const SimTime deadline = net::monotonic_now() + timeout;
  net::UdpSocket socket;
  net::ClockSample sample{};
  // Offset past any plausible ring: the node clamps it, answers an empty
  // (but stamped) reply, and never iterates its ring.
  const auto reply =
      trace_round_trip(socket, load_addr, 0xffffffffu, deadline, sample);
  if (!reply) return std::nullopt;
  return sample;
}

}  // namespace finelb::telemetry
