#include "telemetry/scrape.h"

#include <algorithm>
#include <array>
#include <atomic>

#include "net/clock.h"
#include "net/message.h"
#include "net/poller.h"

namespace finelb::telemetry {

std::optional<std::string> scrape_stats(const net::Address& load_addr,
                                        SimDuration timeout) {
  static std::atomic<std::uint64_t> next_seq{1};

  net::UdpSocket socket;
  net::StatsInquiry inquiry;
  inquiry.seq = next_seq.fetch_add(1, std::memory_order_relaxed);
  std::array<std::uint8_t, net::kMaxFixedMsgSize> out;
  const std::size_t n = inquiry.encode_into(out);
  if (n == 0 || !socket.send_to({out.data(), n}, load_addr)) {
    return std::nullopt;
  }

  net::Poller poller;
  poller.add(socket.fd(), 0);
  std::vector<std::uint8_t> buf(64 * 1024);
  const SimTime deadline = net::monotonic_now() + timeout;
  while (true) {
    const SimDuration remaining = deadline - net::monotonic_now();
    if (remaining <= 0) return std::nullopt;
    if (poller.wait(remaining).empty()) continue;
    while (const auto dgram = socket.recv_from(buf)) {
      net::StatsReply reply;
      if (net::StatsReply::try_decode({buf.data(), dgram->size}, reply) &&
          reply.seq == inquiry.seq) {
        return std::move(reply.payload);
      }
      // Anything else on this ephemeral socket is noise; keep waiting.
    }
  }
}

std::vector<std::string> ClusterStatsScrape::answered_documents() const {
  std::vector<std::string> docs;
  docs.reserve(static_cast<std::size_t>(answered));
  for (const auto& doc : documents) {
    if (doc) docs.push_back(*doc);
  }
  return docs;
}

ClusterStatsScrape scrape_cluster_stats(
    const std::vector<net::Address>& load_addrs, SimDuration per_node_timeout,
    int retries_per_node) {
  ClusterStatsScrape result;
  result.documents.reserve(load_addrs.size());
  for (const net::Address& addr : load_addrs) {
    std::optional<std::string> doc;
    // Each attempt is a fresh inquiry on a fresh ephemeral socket — on a
    // lossy link a retry beats waiting longer for a datagram that is gone.
    for (int attempt = 0; attempt <= retries_per_node && !doc; ++attempt) {
      doc = scrape_stats(addr, per_node_timeout);
    }
    if (doc) {
      ++result.answered;
    } else {
      ++result.failed;
    }
    result.documents.push_back(std::move(doc));
  }
  return result;
}

namespace {

/// One TRACE_INQUIRY round trip on `socket`: returns the matching reply (and
/// the local send/recv stamps bracketing it) or nullopt at `deadline`.
std::optional<net::TraceReply> trace_round_trip(net::UdpSocket& socket,
                                                const net::Address& load_addr,
                                                std::uint32_t offset,
                                                SimTime deadline,
                                                net::ClockSample& sample) {
  static std::atomic<std::uint64_t> next_seq{1};

  net::TraceInquiry inquiry;
  inquiry.seq = next_seq.fetch_add(1, std::memory_order_relaxed);
  inquiry.offset = offset;
  std::array<std::uint8_t, net::kMaxFixedMsgSize> out;
  const std::size_t n = inquiry.encode_into(out);
  sample.local_send_ns = net::monotonic_now();
  if (n == 0 || !socket.send_to({out.data(), n}, load_addr)) {
    return std::nullopt;
  }

  net::Poller poller;
  poller.add(socket.fd(), 0);
  std::vector<std::uint8_t> buf(64 * 1024);
  while (true) {
    const SimDuration remaining = deadline - net::monotonic_now();
    if (remaining <= 0) return std::nullopt;
    if (poller.wait(remaining).empty()) continue;
    while (const auto dgram = socket.recv_from(buf)) {
      net::TraceReply reply;
      if (net::TraceReply::try_decode({buf.data(), dgram->size}, reply) &&
          reply.seq == inquiry.seq) {
        sample.local_recv_ns = net::monotonic_now();
        sample.remote_ns = reply.server_ns;
        return reply;
      }
    }
  }
}

}  // namespace

std::optional<NodeTraceScrape> scrape_trace(const net::Address& load_addr,
                                            SimDuration timeout) {
  const SimTime deadline = net::monotonic_now() + timeout;
  net::UdpSocket socket;
  NodeTraceScrape result;
  std::uint32_t offset = 0;
  while (true) {
    net::ClockSample sample{};
    auto reply =
        trace_round_trip(socket, load_addr, offset, deadline, sample);
    if (!reply) {
      // First chunk lost: the node is unreachable. A later chunk lost:
      // return the prefix pulled so far (partial-result hardening for
      // lossy links) instead of discarding everything.
      if (offset == 0) return std::nullopt;
      result.complete = false;
      return result;
    }
    result.node = reply->node;
    result.clock_samples.push_back(sample);
    for (const net::TraceRecordWire& wire : reply->records) {
      TraceRecord rec;
      rec.request_id = wire.request_id;
      rec.point = static_cast<TracePoint>(wire.point);
      rec.node = wire.node;
      rec.at_ns = wire.at_ns;
      rec.detail = wire.detail;
      result.records.push_back(rec);
    }
    offset = reply->offset + static_cast<std::uint32_t>(reply->records.size());
    if (offset >= reply->total || reply->records.empty()) break;
  }
  return result;
}

namespace {

/// One DECISION_INQUIRY round trip, mirroring trace_round_trip.
std::optional<net::DecisionReply> decision_round_trip(
    net::UdpSocket& socket, const net::Address& addr, std::uint32_t offset,
    SimTime deadline, net::ClockSample& sample) {
  static std::atomic<std::uint64_t> next_seq{1};

  net::DecisionInquiry inquiry;
  inquiry.seq = next_seq.fetch_add(1, std::memory_order_relaxed);
  inquiry.offset = offset;
  std::array<std::uint8_t, net::kMaxFixedMsgSize> out;
  const std::size_t n = inquiry.encode_into(out);
  sample.local_send_ns = net::monotonic_now();
  if (n == 0 || !socket.send_to({out.data(), n}, addr)) {
    return std::nullopt;
  }

  net::Poller poller;
  poller.add(socket.fd(), 0);
  std::vector<std::uint8_t> buf(64 * 1024);
  while (true) {
    const SimDuration remaining = deadline - net::monotonic_now();
    if (remaining <= 0) return std::nullopt;
    if (poller.wait(remaining).empty()) continue;
    while (const auto dgram = socket.recv_from(buf)) {
      net::DecisionReply reply;
      if (net::DecisionReply::try_decode({buf.data(), dgram->size}, reply) &&
          reply.seq == inquiry.seq) {
        sample.local_recv_ns = net::monotonic_now();
        sample.remote_ns = reply.server_ns;
        return reply;
      }
    }
  }
}

}  // namespace

std::optional<NodeDecisionScrape> scrape_decisions(const net::Address& addr,
                                                   SimDuration timeout) {
  static_assert(net::kDecisionWirePollMax == kDecisionPollMax,
                "wire and core polled-set caps must agree");
  const SimTime deadline = net::monotonic_now() + timeout;
  net::UdpSocket socket;
  NodeDecisionScrape result;
  std::uint32_t offset = 0;
  while (true) {
    net::ClockSample sample{};
    auto reply = decision_round_trip(socket, addr, offset, deadline, sample);
    if (!reply) {
      if (offset == 0) return std::nullopt;
      result.complete = false;  // partial prefix, same contract as traces
      return result;
    }
    result.node = reply->node;
    result.clock_samples.push_back(sample);
    for (const net::DecisionRecordWire& wire : reply->records) {
      DecisionRecord rec;
      rec.request_id = wire.request_id;
      rec.at_ns = wire.at_ns;
      rec.chosen = wire.chosen;
      rec.polled_count = std::min<std::uint8_t>(
          wire.polled_count,
          static_cast<std::uint8_t>(kDecisionPollMax));
      rec.blind_fallback = (wire.flags & 1) != 0;
      rec.blacklist_filtered = wire.blacklist_filtered;
      for (std::uint8_t i = 0; i < rec.polled_count; ++i) {
        rec.polled[i].server = wire.polled[i].server;
        rec.polled[i].queue_length = wire.polled[i].queue_length;
        rec.polled[i].age_ns = wire.polled[i].age_ns;
      }
      result.records.push_back(rec);
    }
    offset = reply->offset + static_cast<std::uint32_t>(reply->records.size());
    if (offset >= reply->total || reply->records.empty()) break;
  }
  return result;
}

std::optional<net::ClockSample> probe_clock(const net::Address& load_addr,
                                            SimDuration timeout) {
  const SimTime deadline = net::monotonic_now() + timeout;
  net::UdpSocket socket;
  net::ClockSample sample{};
  // Offset past any plausible ring: the node clamps it, answers an empty
  // (but stamped) reply, and never iterates its ring.
  const auto reply =
      trace_round_trip(socket, load_addr, 0xffffffffu, deadline, sample);
  if (!reply) return std::nullopt;
  return sample;
}

}  // namespace finelb::telemetry
