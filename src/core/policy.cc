#include "core/policy.h"

#include <sstream>
#include <vector>

#include "common/check.h"

namespace finelb {

PolicyConfig PolicyConfig::random() {
  PolicyConfig c;
  c.kind = PolicyKind::kRandom;
  return c;
}

PolicyConfig PolicyConfig::round_robin() {
  PolicyConfig c;
  c.kind = PolicyKind::kRoundRobin;
  return c;
}

PolicyConfig PolicyConfig::ideal() {
  PolicyConfig c;
  c.kind = PolicyKind::kIdeal;
  return c;
}

PolicyConfig PolicyConfig::polling(int poll_size, SimDuration discard_timeout) {
  FINELB_CHECK(poll_size >= 1, "poll size must be at least 1");
  FINELB_CHECK(discard_timeout >= 0, "discard timeout must be non-negative");
  PolicyConfig c;
  c.kind = PolicyKind::kPolling;
  c.poll_size = poll_size;
  c.discard_timeout = discard_timeout;
  return c;
}

PolicyConfig PolicyConfig::broadcast(SimDuration mean_interval, bool jitter) {
  FINELB_CHECK(mean_interval > 0, "broadcast interval must be positive");
  PolicyConfig c;
  c.kind = PolicyKind::kBroadcast;
  c.broadcast_interval = mean_interval;
  c.broadcast_jitter = jitter;
  return c;
}

std::string PolicyConfig::describe() const {
  std::ostringstream os;
  switch (kind) {
    case PolicyKind::kRandom:
      os << "random";
      break;
    case PolicyKind::kRoundRobin:
      os << "round-robin";
      break;
    case PolicyKind::kIdeal:
      os << "ideal";
      break;
    case PolicyKind::kPolling:
      os << "polling(" << poll_size;
      if (discard_timeout > 0) {
        os << ",discard=" << to_ms(discard_timeout) << "ms";
      }
      if (poll_memory) os << ",memory";
      os << ")";
      break;
    case PolicyKind::kBroadcast:
      os << "broadcast(" << to_ms(broadcast_interval) << "ms";
      if (!broadcast_jitter) os << ",fixed";
      if (optimistic_increment) os << ",optimistic";
      os << ")";
      break;
  }
  return os.str();
}

PolicyConfig parse_policy(const std::string& spec) {
  std::vector<std::string> parts;
  std::istringstream is(spec);
  std::string piece;
  while (std::getline(is, piece, ':')) parts.push_back(piece);
  FINELB_CHECK(!parts.empty(), "empty policy spec");

  const std::string& name = parts[0];
  if (name == "random") return PolicyConfig::random();
  if (name == "rr" || name == "round_robin") return PolicyConfig::round_robin();
  if (name == "ideal") return PolicyConfig::ideal();
  if (name == "polling") {
    FINELB_CHECK(parts.size() >= 2 && parts.size() <= 3,
                 "polling spec: polling:<d>[:<discard_ms>]");
    const int d = std::stoi(parts[1]);
    const SimDuration timeout =
        parts.size() == 3 ? from_ms(std::stod(parts[2])) : 0;
    return PolicyConfig::polling(d, timeout);
  }
  if (name == "broadcast") {
    FINELB_CHECK(parts.size() == 2, "broadcast spec: broadcast:<interval_ms>");
    return PolicyConfig::broadcast(from_ms(std::stod(parts[1])));
  }
  FINELB_CHECK(false, "unknown policy: " + spec);
  return {};
}

}  // namespace finelb
