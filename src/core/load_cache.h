// Contention-free per-server load-index cache.
//
// The broadcast policy (paper §2.2's periodic-broadcast alternative) keeps a
// local table of every server's last announced queue length. Each table
// entry is a Seqlock<ServerLoad>: a single writer (the socket drain loop)
// publishes updates without blocking, and any number of readers snapshot
// entries wait-free — no mutex on the request hot path, and no torn reads
// when the cache is shared across threads (the prototype's client is
// single-threaded today, but the Neptune runtime reads sibling caches from
// worker threads, and a mutex here would serialise every dispatch).
//
// The single-writer constraint is per *cache*, not per entry: exactly one
// thread may call store() (see Seqlock). Readers are unrestricted.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "common/check.h"
#include "common/seqlock.h"
#include "core/load_index.h"

namespace finelb {

class LoadCache {
 public:
  explicit LoadCache(std::size_t size)
      : size_(size), entries_(std::make_unique<Seqlock<ServerLoad>[]>(size)) {
    FINELB_CHECK(size > 0, "load cache needs at least one entry");
  }

  std::size_t size() const { return size_; }

  /// Publishes one server's load observation. Single writer only.
  void store(std::size_t index, const ServerLoad& load) {
    FINELB_CHECK(index < size_, "load cache index out of range");
    entries_[index].store(load);
  }

  /// Wait-free consistent read of one entry.
  ServerLoad load(std::size_t index) const {
    FINELB_CHECK(index < size_, "load cache index out of range");
    return entries_[index].load();
  }

  /// Copies every entry into `out` (resized to size()). Each entry is
  /// individually consistent; the table as a whole is as coherent as any
  /// moment-in-time read of independently-updated counters can be — the
  /// same semantics a mutex-per-entry table would give. Reuses `out`'s
  /// capacity, so steady-state callers never allocate.
  void snapshot(std::vector<ServerLoad>& out) const {
    out.resize(size_);
    for (std::size_t i = 0; i < size_; ++i) out[i] = entries_[i].load();
  }

 private:
  std::size_t size_;
  std::unique_ptr<Seqlock<ServerLoad>[]> entries_;
};

}  // namespace finelb
