// Load index definitions.
//
// Following the paper (§2.1, citing Ferrari and Zhou), the server load index
// is the total number of active service accesses on the server — queued plus
// in service. An index travels with the time it was measured so consumers
// can reason about staleness (the Figure 2 study quantifies exactly this).
#pragma once

#include <cstdint>

#include "common/time.h"

namespace finelb {

/// Dense server identifier; experiments index servers 0..N-1.
using ServerId = std::int32_t;
constexpr ServerId kInvalidServer = -1;

/// A server's load index as observed by some client.
struct ServerLoad {
  ServerId server = kInvalidServer;
  /// Queue length (active accesses: waiting + in service).
  std::int32_t queue_length = 0;
  /// When the index was measured (simulated or wall time, ns).
  SimTime measured_at = 0;
};

}  // namespace finelb
