// Server-selection primitives shared by the simulator and the prototype.
//
// All load-balancing policies in the paper reduce to two mechanisms: pick a
// uniformly random subset of servers to consider, and send the request to
// the least-loaded server among those with known indexes. Tie-breaking is
// uniformly random — deterministic tie-breaking (e.g. lowest id) recreates
// the flocking pathology the paper describes for the broadcast policy even
// in policies that should not have it.
#pragma once

#include <span>
#include <vector>

#include "common/rng.h"
#include "core/load_index.h"

namespace finelb {

/// Uniformly random element of `candidates`; requires non-empty.
ServerId pick_random(std::span<const ServerId> candidates, Rng& rng);

/// The server with the smallest queue length, random tie-break. Requires
/// non-empty `loads`.
ServerId pick_least_loaded(std::span<const ServerLoad> loads, Rng& rng);

/// Chooses min(d, candidates.size()) *distinct* servers uniformly at random
/// (the poll set of the random polling policy). Uses a partial
/// Fisher-Yates shuffle over an index scratch vector: O(d) swaps.
std::vector<ServerId> choose_poll_set(std::span<const ServerId> candidates,
                                      std::size_t d, Rng& rng);

/// Round-robin cursor with a stable candidate ordering; used as a baseline
/// policy beyond the paper's set.
class RoundRobinCursor {
 public:
  ServerId next(std::span<const ServerId> candidates);

 private:
  std::size_t cursor_ = 0;
};

}  // namespace finelb
