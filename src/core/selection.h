// Server-selection primitives shared by the simulator and the prototype.
//
// All load-balancing policies in the paper reduce to two mechanisms: pick a
// uniformly random subset of servers to consider, and send the request to
// the least-loaded server among those with known indexes. Tie-breaking is
// uniformly random — deterministic tie-breaking (e.g. lowest id) recreates
// the flocking pathology the paper describes for the broadcast policy even
// in policies that should not have it.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.h"
#include "common/time.h"
#include "core/load_index.h"

namespace finelb {

/// Uniformly random element of `candidates`; requires non-empty.
ServerId pick_random(std::span<const ServerId> candidates, Rng& rng);

/// The server with the smallest queue length, random tie-break. Requires
/// non-empty `loads`.
ServerId pick_least_loaded(std::span<const ServerLoad> loads, Rng& rng);

// --- decision audit trail ----------------------------------------------------
//
// Every load-aware dispatch funnels through the recorded selection calls
// below, which emit one fixed-size DecisionRecord per resolved decision to
// an optional DecisionSink — the single choke point the simulator and the
// prototype share, so their audit trails are structurally identical. The
// record is built on the caller's stack (no allocation, no branching beyond
// the null-sink check), and the sink contract is wait-free-friendly: the
// telemetry DecisionRing implementation is a seqlock ring write.

/// Most polled servers one DecisionRecord keeps inline. Poll sizes beyond
/// this (the paper studies d <= 8) truncate the recorded set — the count
/// field still reports how many were actually polled.
inline constexpr std::size_t kDecisionPollMax = 8;

/// One polled server's contribution to a decision: which server, the queue
/// length it reported, and how old that report was at decision time.
struct PolledLoad {
  ServerId server = kInvalidServer;
  std::int32_t queue_length = 0;
  std::int64_t age_ns = 0;
};

/// One resolved dispatch decision (fixed size; safe to memcpy / ring-store).
struct DecisionRecord {
  /// Access/trace id — the same key the trace ring and the wire use, so the
  /// record joins with merged traces.
  std::uint64_t request_id = 0;
  /// Decision instant on the recording node's clock.
  std::int64_t at_ns = 0;
  ServerId chosen = kInvalidServer;
  /// Servers actually polled for this decision (may exceed polled_count
  /// stored below when the poll set was larger than kDecisionPollMax).
  std::uint8_t polled_count = 0;
  /// The decision was made blind: every poll inquiry or reply was lost and
  /// the dispatcher fell back to a random candidate.
  bool blind_fallback = false;
  /// Candidates the blacklist excluded from this decision's pool.
  std::uint8_t blacklist_filtered = 0;
  PolledLoad polled[kDecisionPollMax] = {};
};

/// Receives decision records at the choke point. Implementations must be
/// safe to call from the dispatching thread's hot path (the telemetry ring
/// is lock- and allocation-free); a null sink disables recording entirely.
class DecisionSink {
 public:
  virtual ~DecisionSink() = default;
  virtual void record_decision(const DecisionRecord& record) = 0;
};

/// Decision-time context threaded through the recorded selection calls.
struct DecisionContext {
  std::uint64_t request_id = 0;
  /// Decision instant (monotonic ns in the prototype, engine time in the
  /// sim) — also the reference for each reply's age.
  std::int64_t now_ns = 0;
  std::uint8_t blacklist_filtered = 0;
  /// Null = record nothing (the choke point stays on the untraced path).
  DecisionSink* sink = nullptr;
};

/// pick_least_loaded plus an audit record: the polled set (server, reported
/// queue length, report age = now - observation timestamp) and the winner
/// go to ctx.sink. Identical selection semantics and RNG consumption to the
/// unrecorded overload.
ServerId pick_least_loaded(std::span<const ServerLoad> loads, Rng& rng,
                           const DecisionContext& ctx);

/// The blind-fallback leg of the choke point: a uniformly random pick over
/// `candidates` recorded with blind_fallback set and an empty polled set.
ServerId pick_random_fallback(std::span<const ServerId> candidates, Rng& rng,
                              const DecisionContext& ctx);

/// Chooses min(d, candidates.size()) *distinct* servers uniformly at random
/// (the poll set of the random polling policy). Uses a partial
/// Fisher-Yates shuffle over an index scratch vector: O(d) swaps.
std::vector<ServerId> choose_poll_set(std::span<const ServerId> candidates,
                                      std::size_t d, Rng& rng);

/// Allocation-free variant for hot paths: fills `out` (reusing its
/// capacity) with the chosen poll set. `out` must not alias `candidates`.
void choose_poll_set_into(std::span<const ServerId> candidates, std::size_t d,
                          Rng& rng, std::vector<ServerId>& out);

/// Round-robin cursor with a stable candidate ordering; used as a baseline
/// policy beyond the paper's set.
class RoundRobinCursor {
 public:
  ServerId next(std::span<const ServerId> candidates);

 private:
  std::size_t cursor_ = 0;
};

/// Short-cooldown server blacklist used by the failure-hardened runtimes:
/// a server whose access recently timed out is excluded from candidate sets
/// until its cooldown expires, so a crashed node stops eating poll rounds
/// and requests while the directory's soft-state TTL catches up. Keyed by
/// small non-negative indices (endpoint index or server id). Not
/// thread-safe: one instance per client, like the Rng it sits next to.
class Blacklist {
 public:
  /// Blacklists `index` until time `until`; extends an existing entry.
  void add(std::size_t index, SimTime until);

  /// True when `index` is blacklisted at time `now`.
  bool contains(std::size_t index, SimTime now) const;

  /// Candidates not blacklisted at `now`. Falls back to returning all
  /// candidates when every one of them is blacklisted — a degraded cluster
  /// must still be dispatched to, matching the poll-round fallback rule.
  /// Each excluded candidate counts as one blacklist hit.
  std::vector<ServerId> filter(std::span<const ServerId> candidates,
                               SimTime now);

  /// Allocation-free variant: removes blacklisted entries from `candidates`
  /// in place (order preserved), with the same all-blacklisted fallback
  /// (the vector is then left untouched and no hits are counted).
  void filter_in_place(std::vector<ServerId>& candidates, SimTime now);

  std::int64_t insertions() const { return insertions_; }
  std::int64_t hits() const { return hits_; }

 private:
  std::vector<SimTime> until_;  // grown on demand; index -> expiry
  std::int64_t insertions_ = 0;
  std::int64_t hits_ = 0;
};

}  // namespace finelb
