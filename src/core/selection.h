// Server-selection primitives shared by the simulator and the prototype.
//
// All load-balancing policies in the paper reduce to two mechanisms: pick a
// uniformly random subset of servers to consider, and send the request to
// the least-loaded server among those with known indexes. Tie-breaking is
// uniformly random — deterministic tie-breaking (e.g. lowest id) recreates
// the flocking pathology the paper describes for the broadcast policy even
// in policies that should not have it.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.h"
#include "common/time.h"
#include "core/load_index.h"

namespace finelb {

/// Uniformly random element of `candidates`; requires non-empty.
ServerId pick_random(std::span<const ServerId> candidates, Rng& rng);

/// The server with the smallest queue length, random tie-break. Requires
/// non-empty `loads`.
ServerId pick_least_loaded(std::span<const ServerLoad> loads, Rng& rng);

/// Chooses min(d, candidates.size()) *distinct* servers uniformly at random
/// (the poll set of the random polling policy). Uses a partial
/// Fisher-Yates shuffle over an index scratch vector: O(d) swaps.
std::vector<ServerId> choose_poll_set(std::span<const ServerId> candidates,
                                      std::size_t d, Rng& rng);

/// Allocation-free variant for hot paths: fills `out` (reusing its
/// capacity) with the chosen poll set. `out` must not alias `candidates`.
void choose_poll_set_into(std::span<const ServerId> candidates, std::size_t d,
                          Rng& rng, std::vector<ServerId>& out);

/// Round-robin cursor with a stable candidate ordering; used as a baseline
/// policy beyond the paper's set.
class RoundRobinCursor {
 public:
  ServerId next(std::span<const ServerId> candidates);

 private:
  std::size_t cursor_ = 0;
};

/// Short-cooldown server blacklist used by the failure-hardened runtimes:
/// a server whose access recently timed out is excluded from candidate sets
/// until its cooldown expires, so a crashed node stops eating poll rounds
/// and requests while the directory's soft-state TTL catches up. Keyed by
/// small non-negative indices (endpoint index or server id). Not
/// thread-safe: one instance per client, like the Rng it sits next to.
class Blacklist {
 public:
  /// Blacklists `index` until time `until`; extends an existing entry.
  void add(std::size_t index, SimTime until);

  /// True when `index` is blacklisted at time `now`.
  bool contains(std::size_t index, SimTime now) const;

  /// Candidates not blacklisted at `now`. Falls back to returning all
  /// candidates when every one of them is blacklisted — a degraded cluster
  /// must still be dispatched to, matching the poll-round fallback rule.
  /// Each excluded candidate counts as one blacklist hit.
  std::vector<ServerId> filter(std::span<const ServerId> candidates,
                               SimTime now);

  /// Allocation-free variant: removes blacklisted entries from `candidates`
  /// in place (order preserved), with the same all-blacklisted fallback
  /// (the vector is then left untouched and no hits are counted).
  void filter_in_place(std::vector<ServerId>& candidates, SimTime now);

  std::int64_t insertions() const { return insertions_; }
  std::int64_t hits() const { return hits_; }

 private:
  std::vector<SimTime> until_;  // grown on demand; index -> expiry
  std::int64_t insertions_ = 0;
  std::int64_t hits_ = 0;
};

}  // namespace finelb
