#include "core/selection.h"

#include <algorithm>

#include "common/check.h"

namespace finelb {

ServerId pick_random(std::span<const ServerId> candidates, Rng& rng) {
  FINELB_CHECK(!candidates.empty(), "no candidate servers");
  return candidates[rng.uniform_int(candidates.size())];
}

ServerId pick_least_loaded(std::span<const ServerLoad> loads, Rng& rng) {
  FINELB_CHECK(!loads.empty(), "no load observations");
  std::int32_t best = loads.front().queue_length;
  // Reservoir-style single pass: among entries tied at the minimum, each is
  // kept with probability 1/ties_seen, which yields a uniform tie-break.
  ServerId chosen = loads.front().server;
  std::uint64_t ties = 1;
  for (std::size_t i = 1; i < loads.size(); ++i) {
    const auto& entry = loads[i];
    if (entry.queue_length < best) {
      best = entry.queue_length;
      chosen = entry.server;
      ties = 1;
    } else if (entry.queue_length == best) {
      ++ties;
      if (rng.uniform_int(ties) == 0) chosen = entry.server;
    }
  }
  return chosen;
}

ServerId pick_least_loaded(std::span<const ServerLoad> loads, Rng& rng,
                           const DecisionContext& ctx) {
  const ServerId chosen = pick_least_loaded(loads, rng);
  if (ctx.sink != nullptr) {
    DecisionRecord rec;
    rec.request_id = ctx.request_id;
    rec.at_ns = ctx.now_ns;
    rec.chosen = chosen;
    rec.blind_fallback = false;
    rec.blacklist_filtered = ctx.blacklist_filtered;
    const std::size_t n = std::min(loads.size(), kDecisionPollMax);
    rec.polled_count = static_cast<std::uint8_t>(n);
    for (std::size_t i = 0; i < n; ++i) {
      rec.polled[i].server = loads[i].server;
      rec.polled[i].queue_length = loads[i].queue_length;
      rec.polled[i].age_ns = ctx.now_ns - loads[i].measured_at;
    }
    ctx.sink->record_decision(rec);
  }
  return chosen;
}

ServerId pick_random_fallback(std::span<const ServerId> candidates, Rng& rng,
                              const DecisionContext& ctx) {
  const ServerId chosen = pick_random(candidates, rng);
  if (ctx.sink != nullptr) {
    DecisionRecord rec;
    rec.request_id = ctx.request_id;
    rec.at_ns = ctx.now_ns;
    rec.chosen = chosen;
    rec.blind_fallback = true;
    rec.blacklist_filtered = ctx.blacklist_filtered;
    rec.polled_count = 0;
    ctx.sink->record_decision(rec);
  }
  return chosen;
}

std::vector<ServerId> choose_poll_set(std::span<const ServerId> candidates,
                                      std::size_t d, Rng& rng) {
  std::vector<ServerId> out;
  choose_poll_set_into(candidates, d, rng, out);
  return out;
}

void choose_poll_set_into(std::span<const ServerId> candidates, std::size_t d,
                          Rng& rng, std::vector<ServerId>& out) {
  FINELB_CHECK(!candidates.empty(), "no candidate servers");
  const std::size_t n = candidates.size();
  const std::size_t k = std::min(d, n);
  out.assign(candidates.begin(), candidates.end());
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t j = i + rng.uniform_int(n - i);
    std::swap(out[i], out[j]);
  }
  out.resize(k);
}

ServerId RoundRobinCursor::next(std::span<const ServerId> candidates) {
  FINELB_CHECK(!candidates.empty(), "no candidate servers");
  return candidates[cursor_++ % candidates.size()];
}

void Blacklist::add(std::size_t index, SimTime until) {
  if (index >= until_.size()) until_.resize(index + 1, 0);
  until_[index] = std::max(until_[index], until);
  ++insertions_;
}

bool Blacklist::contains(std::size_t index, SimTime now) const {
  return index < until_.size() && until_[index] > now;
}

std::vector<ServerId> Blacklist::filter(std::span<const ServerId> candidates,
                                        SimTime now) {
  std::vector<ServerId> live;
  live.reserve(candidates.size());
  for (const ServerId id : candidates) {
    if (!contains(static_cast<std::size_t>(id), now)) live.push_back(id);
  }
  if (live.empty()) return {candidates.begin(), candidates.end()};
  hits_ += static_cast<std::int64_t>(candidates.size() - live.size());
  return live;
}

void Blacklist::filter_in_place(std::vector<ServerId>& candidates,
                                SimTime now) {
  // First pass decides whether the fallback applies; only then compact, so
  // an all-blacklisted set survives unmodified.
  bool any_live = false;
  for (const ServerId id : candidates) {
    if (!contains(static_cast<std::size_t>(id), now)) {
      any_live = true;
      break;
    }
  }
  if (!any_live) return;
  std::size_t kept = 0;
  for (const ServerId id : candidates) {
    if (!contains(static_cast<std::size_t>(id), now)) candidates[kept++] = id;
  }
  hits_ += static_cast<std::int64_t>(candidates.size() - kept);
  candidates.resize(kept);
}

}  // namespace finelb
