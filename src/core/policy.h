// Load-balancing policy configuration.
//
// One config type describes every policy the paper studies plus the extra
// baselines this repo adds. Both the simulator (src/sim) and the prototype
// runtime (src/cluster) consume the same PolicyConfig, so an experiment can
// run the identical policy in both worlds.
//
// Paper policies:
//   random    — uniformly random server, no load information (§2.3 baseline)
//   broadcast — servers push their load index on a jittered interval;
//               clients pick the minimum of their (stale) table (§2.2)
//   polling   — client polls `poll_size` random servers just-in-time and
//               picks the least loaded; optional discard of polls slower
//               than `discard_timeout` (§2.3, §3.2)
//   ideal     — oracle: exact queue lengths, free of cost (sim), or a
//               centralized load-index manager (prototype, §4)
// Extra baselines:
//   round_robin — stateful cycling, no load information
#pragma once

#include <string>

#include "common/time.h"

namespace finelb {

enum class PolicyKind {
  kRandom,
  kRoundRobin,
  kBroadcast,
  kPolling,
  kIdeal,
};

struct PolicyConfig {
  PolicyKind kind = PolicyKind::kRandom;

  // --- polling parameters -------------------------------------------------
  /// Number of servers polled per service access (the paper sweeps 2,3,4,8).
  int poll_size = 2;
  /// Polls not answered within this bound are discarded; 0 disables the
  /// optimization. The paper's prototype uses 1 ms (§3.2).
  SimDuration discard_timeout = 0;
  /// Extension (simulation only): Mitzenmacher's memory-augmented variant
  /// ("How Useful Is Old Information?", cited in the paper's related work):
  /// the client keeps the last round's winner and its observed-plus-own
  /// load as an extra zero-cost candidate in the next round.
  bool poll_memory = false;

  // --- broadcast parameters -----------------------------------------------
  /// Mean interval between a server's load announcements.
  SimDuration broadcast_interval = 100 * kMillisecond;
  /// Jitter announcements uniformly over [0.5, 1.5] x interval to avoid
  /// self-synchronization (paper §2.2, citing Floyd & Jacobson). Disabling
  /// this is an ablation, not a paper configuration.
  bool broadcast_jitter = true;
  /// Ablation: client locally increments a server's cached index when it
  /// dispatches to it, mitigating flocking between broadcasts.
  bool optimistic_increment = false;

  /// Factory helpers for the common configurations.
  static PolicyConfig random();
  static PolicyConfig round_robin();
  static PolicyConfig ideal();
  static PolicyConfig polling(int poll_size,
                              SimDuration discard_timeout = 0);
  static PolicyConfig broadcast(SimDuration mean_interval,
                                bool jitter = true);

  /// Human-readable label used in experiment output, e.g. "polling(3)" or
  /// "broadcast(100ms)".
  std::string describe() const;
};

/// Parses "random", "rr", "ideal", "polling:<d>", "polling:<d>:<timeout_ms>",
/// "broadcast:<interval_ms>". Throws InvariantError on malformed input.
PolicyConfig parse_policy(const std::string& spec);

}  // namespace finelb
