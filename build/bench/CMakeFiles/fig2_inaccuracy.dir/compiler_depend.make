# Empty compiler generated dependencies file for fig2_inaccuracy.
# This may be replaced when dependencies are built.
