file(REMOVE_RECURSE
  "CMakeFiles/fig2_inaccuracy.dir/fig2_inaccuracy.cc.o"
  "CMakeFiles/fig2_inaccuracy.dir/fig2_inaccuracy.cc.o.d"
  "fig2_inaccuracy"
  "fig2_inaccuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_inaccuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
