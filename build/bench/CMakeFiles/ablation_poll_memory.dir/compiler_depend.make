# Empty compiler generated dependencies file for ablation_poll_memory.
# This may be replaced when dependencies are built.
