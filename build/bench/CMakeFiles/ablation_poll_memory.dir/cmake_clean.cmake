file(REMOVE_RECURSE
  "CMakeFiles/ablation_poll_memory.dir/ablation_poll_memory.cc.o"
  "CMakeFiles/ablation_poll_memory.dir/ablation_poll_memory.cc.o.d"
  "ablation_poll_memory"
  "ablation_poll_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_poll_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
