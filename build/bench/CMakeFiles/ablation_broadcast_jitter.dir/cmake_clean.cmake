file(REMOVE_RECURSE
  "CMakeFiles/ablation_broadcast_jitter.dir/ablation_broadcast_jitter.cc.o"
  "CMakeFiles/ablation_broadcast_jitter.dir/ablation_broadcast_jitter.cc.o.d"
  "ablation_broadcast_jitter"
  "ablation_broadcast_jitter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_broadcast_jitter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
