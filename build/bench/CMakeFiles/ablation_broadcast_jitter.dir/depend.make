# Empty dependencies file for ablation_broadcast_jitter.
# This may be replaced when dependencies are built.
