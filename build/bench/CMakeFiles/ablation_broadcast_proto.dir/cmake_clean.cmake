file(REMOVE_RECURSE
  "CMakeFiles/ablation_broadcast_proto.dir/ablation_broadcast_proto.cc.o"
  "CMakeFiles/ablation_broadcast_proto.dir/ablation_broadcast_proto.cc.o.d"
  "ablation_broadcast_proto"
  "ablation_broadcast_proto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_broadcast_proto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
