# Empty compiler generated dependencies file for ablation_broadcast_proto.
# This may be replaced when dependencies are built.
