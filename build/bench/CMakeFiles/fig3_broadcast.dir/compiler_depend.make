# Empty compiler generated dependencies file for fig3_broadcast.
# This may be replaced when dependencies are built.
