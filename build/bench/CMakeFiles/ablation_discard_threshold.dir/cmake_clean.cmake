file(REMOVE_RECURSE
  "CMakeFiles/ablation_discard_threshold.dir/ablation_discard_threshold.cc.o"
  "CMakeFiles/ablation_discard_threshold.dir/ablation_discard_threshold.cc.o.d"
  "ablation_discard_threshold"
  "ablation_discard_threshold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_discard_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
