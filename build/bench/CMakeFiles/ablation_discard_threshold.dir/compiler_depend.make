# Empty compiler generated dependencies file for ablation_discard_threshold.
# This may be replaced when dependencies are built.
