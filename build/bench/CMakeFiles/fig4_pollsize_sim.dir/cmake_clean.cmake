file(REMOVE_RECURSE
  "CMakeFiles/fig4_pollsize_sim.dir/fig4_pollsize_sim.cc.o"
  "CMakeFiles/fig4_pollsize_sim.dir/fig4_pollsize_sim.cc.o.d"
  "fig4_pollsize_sim"
  "fig4_pollsize_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_pollsize_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
