# Empty dependencies file for fig4_pollsize_sim.
# This may be replaced when dependencies are built.
