# Empty dependencies file for fig6_pollsize_proto.
# This may be replaced when dependencies are built.
