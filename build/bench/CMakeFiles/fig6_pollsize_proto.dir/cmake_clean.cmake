file(REMOVE_RECURSE
  "CMakeFiles/fig6_pollsize_proto.dir/fig6_pollsize_proto.cc.o"
  "CMakeFiles/fig6_pollsize_proto.dir/fig6_pollsize_proto.cc.o.d"
  "fig6_pollsize_proto"
  "fig6_pollsize_proto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_pollsize_proto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
