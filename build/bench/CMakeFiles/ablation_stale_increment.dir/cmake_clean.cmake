file(REMOVE_RECURSE
  "CMakeFiles/ablation_stale_increment.dir/ablation_stale_increment.cc.o"
  "CMakeFiles/ablation_stale_increment.dir/ablation_stale_increment.cc.o.d"
  "ablation_stale_increment"
  "ablation_stale_increment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_stale_increment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
