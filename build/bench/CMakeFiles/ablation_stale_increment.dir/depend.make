# Empty dependencies file for ablation_stale_increment.
# This may be replaced when dependencies are built.
