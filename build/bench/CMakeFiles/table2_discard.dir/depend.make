# Empty dependencies file for table2_discard.
# This may be replaced when dependencies are built.
