file(REMOVE_RECURSE
  "CMakeFiles/table2_discard.dir/table2_discard.cc.o"
  "CMakeFiles/table2_discard.dir/table2_discard.cc.o.d"
  "table2_discard"
  "table2_discard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_discard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
