# Empty compiler generated dependencies file for service_node_test.
# This may be replaced when dependencies are built.
