file(REMOVE_RECURSE
  "CMakeFiles/service_node_test.dir/neptune/service_node_test.cc.o"
  "CMakeFiles/service_node_test.dir/neptune/service_node_test.cc.o.d"
  "service_node_test"
  "service_node_test.pdb"
  "service_node_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/service_node_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
