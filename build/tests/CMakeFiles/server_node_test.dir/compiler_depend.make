# Empty compiler generated dependencies file for server_node_test.
# This may be replaced when dependencies are built.
