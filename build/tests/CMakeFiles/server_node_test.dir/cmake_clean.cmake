file(REMOVE_RECURSE
  "CMakeFiles/server_node_test.dir/cluster/server_node_test.cc.o"
  "CMakeFiles/server_node_test.dir/cluster/server_node_test.cc.o.d"
  "server_node_test"
  "server_node_test.pdb"
  "server_node_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/server_node_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
