# Empty compiler generated dependencies file for mm1_validation_test.
# This may be replaced when dependencies are built.
