file(REMOVE_RECURSE
  "CMakeFiles/mm1_validation_test.dir/sim/mm1_validation_test.cc.o"
  "CMakeFiles/mm1_validation_test.dir/sim/mm1_validation_test.cc.o.d"
  "mm1_validation_test"
  "mm1_validation_test.pdb"
  "mm1_validation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mm1_validation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
