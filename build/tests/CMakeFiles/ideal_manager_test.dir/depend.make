# Empty dependencies file for ideal_manager_test.
# This may be replaced when dependencies are built.
