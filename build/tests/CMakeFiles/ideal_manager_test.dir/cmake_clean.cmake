file(REMOVE_RECURSE
  "CMakeFiles/ideal_manager_test.dir/cluster/ideal_manager_test.cc.o"
  "CMakeFiles/ideal_manager_test.dir/cluster/ideal_manager_test.cc.o.d"
  "ideal_manager_test"
  "ideal_manager_test.pdb"
  "ideal_manager_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ideal_manager_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
