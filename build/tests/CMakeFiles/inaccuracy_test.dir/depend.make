# Empty dependencies file for inaccuracy_test.
# This may be replaced when dependencies are built.
