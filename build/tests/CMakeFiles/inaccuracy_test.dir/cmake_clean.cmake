file(REMOVE_RECURSE
  "CMakeFiles/inaccuracy_test.dir/sim/inaccuracy_test.cc.o"
  "CMakeFiles/inaccuracy_test.dir/sim/inaccuracy_test.cc.o.d"
  "inaccuracy_test"
  "inaccuracy_test.pdb"
  "inaccuracy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inaccuracy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
