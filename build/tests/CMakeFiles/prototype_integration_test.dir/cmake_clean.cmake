file(REMOVE_RECURSE
  "CMakeFiles/prototype_integration_test.dir/cluster/prototype_integration_test.cc.o"
  "CMakeFiles/prototype_integration_test.dir/cluster/prototype_integration_test.cc.o.d"
  "prototype_integration_test"
  "prototype_integration_test.pdb"
  "prototype_integration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prototype_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
