# Empty compiler generated dependencies file for prototype_integration_test.
# This may be replaced when dependencies are built.
