file(REMOVE_RECURSE
  "CMakeFiles/blocking_queue_test.dir/cluster/blocking_queue_test.cc.o"
  "CMakeFiles/blocking_queue_test.dir/cluster/blocking_queue_test.cc.o.d"
  "blocking_queue_test"
  "blocking_queue_test.pdb"
  "blocking_queue_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blocking_queue_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
