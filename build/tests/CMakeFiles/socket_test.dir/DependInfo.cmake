
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/net/socket_test.cc" "tests/CMakeFiles/socket_test.dir/net/socket_test.cc.o" "gcc" "tests/CMakeFiles/socket_test.dir/net/socket_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/neptune/CMakeFiles/finelb_neptune.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/finelb_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/finelb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/finelb_net.dir/DependInfo.cmake"
  "/root/repo/build/src/fault/CMakeFiles/finelb_fault.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/finelb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/finelb_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/finelb_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/finelb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
