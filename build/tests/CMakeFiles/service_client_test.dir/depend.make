# Empty dependencies file for service_client_test.
# This may be replaced when dependencies are built.
