file(REMOVE_RECURSE
  "CMakeFiles/service_client_test.dir/neptune/service_client_test.cc.o"
  "CMakeFiles/service_client_test.dir/neptune/service_client_test.cc.o.d"
  "service_client_test"
  "service_client_test.pdb"
  "service_client_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/service_client_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
