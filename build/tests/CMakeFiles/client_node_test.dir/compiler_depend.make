# Empty compiler generated dependencies file for client_node_test.
# This may be replaced when dependencies are built.
