file(REMOVE_RECURSE
  "CMakeFiles/client_node_test.dir/cluster/client_node_test.cc.o"
  "CMakeFiles/client_node_test.dir/cluster/client_node_test.cc.o.d"
  "client_node_test"
  "client_node_test.pdb"
  "client_node_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/client_node_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
