file(REMOVE_RECURSE
  "CMakeFiles/word_translation.dir/word_translation.cpp.o"
  "CMakeFiles/word_translation.dir/word_translation.cpp.o.d"
  "word_translation"
  "word_translation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/word_translation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
