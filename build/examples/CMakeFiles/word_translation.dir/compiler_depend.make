# Empty compiler generated dependencies file for word_translation.
# This may be replaced when dependencies are built.
