# Empty dependencies file for photo_album.
# This may be replaced when dependencies are built.
