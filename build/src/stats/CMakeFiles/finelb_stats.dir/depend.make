# Empty dependencies file for finelb_stats.
# This may be replaced when dependencies are built.
