file(REMOVE_RECURSE
  "libfinelb_stats.a"
)
