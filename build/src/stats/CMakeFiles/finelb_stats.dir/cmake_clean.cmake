file(REMOVE_RECURSE
  "CMakeFiles/finelb_stats.dir/accumulator.cc.o"
  "CMakeFiles/finelb_stats.dir/accumulator.cc.o.d"
  "CMakeFiles/finelb_stats.dir/histogram.cc.o"
  "CMakeFiles/finelb_stats.dir/histogram.cc.o.d"
  "CMakeFiles/finelb_stats.dir/queueing.cc.o"
  "CMakeFiles/finelb_stats.dir/queueing.cc.o.d"
  "libfinelb_stats.a"
  "libfinelb_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/finelb_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
