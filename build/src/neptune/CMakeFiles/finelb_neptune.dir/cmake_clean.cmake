file(REMOVE_RECURSE
  "CMakeFiles/finelb_neptune.dir/rpc.cc.o"
  "CMakeFiles/finelb_neptune.dir/rpc.cc.o.d"
  "CMakeFiles/finelb_neptune.dir/service_client.cc.o"
  "CMakeFiles/finelb_neptune.dir/service_client.cc.o.d"
  "CMakeFiles/finelb_neptune.dir/service_node.cc.o"
  "CMakeFiles/finelb_neptune.dir/service_node.cc.o.d"
  "libfinelb_neptune.a"
  "libfinelb_neptune.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/finelb_neptune.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
