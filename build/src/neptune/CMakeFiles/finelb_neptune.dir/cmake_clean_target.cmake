file(REMOVE_RECURSE
  "libfinelb_neptune.a"
)
