# Empty compiler generated dependencies file for finelb_neptune.
# This may be replaced when dependencies are built.
