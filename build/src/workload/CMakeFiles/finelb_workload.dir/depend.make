# Empty dependencies file for finelb_workload.
# This may be replaced when dependencies are built.
