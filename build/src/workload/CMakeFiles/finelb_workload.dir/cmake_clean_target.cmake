file(REMOVE_RECURSE
  "libfinelb_workload.a"
)
