file(REMOVE_RECURSE
  "CMakeFiles/finelb_workload.dir/catalog.cc.o"
  "CMakeFiles/finelb_workload.dir/catalog.cc.o.d"
  "CMakeFiles/finelb_workload.dir/distribution.cc.o"
  "CMakeFiles/finelb_workload.dir/distribution.cc.o.d"
  "CMakeFiles/finelb_workload.dir/trace.cc.o"
  "CMakeFiles/finelb_workload.dir/trace.cc.o.d"
  "CMakeFiles/finelb_workload.dir/workload.cc.o"
  "CMakeFiles/finelb_workload.dir/workload.cc.o.d"
  "libfinelb_workload.a"
  "libfinelb_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/finelb_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
