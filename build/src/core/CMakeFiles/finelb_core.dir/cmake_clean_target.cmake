file(REMOVE_RECURSE
  "libfinelb_core.a"
)
