file(REMOVE_RECURSE
  "CMakeFiles/finelb_core.dir/policy.cc.o"
  "CMakeFiles/finelb_core.dir/policy.cc.o.d"
  "CMakeFiles/finelb_core.dir/selection.cc.o"
  "CMakeFiles/finelb_core.dir/selection.cc.o.d"
  "libfinelb_core.a"
  "libfinelb_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/finelb_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
