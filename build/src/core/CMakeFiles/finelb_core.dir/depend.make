# Empty dependencies file for finelb_core.
# This may be replaced when dependencies are built.
