file(REMOVE_RECURSE
  "libfinelb_cluster.a"
)
