# Empty dependencies file for finelb_cluster.
# This may be replaced when dependencies are built.
