file(REMOVE_RECURSE
  "CMakeFiles/finelb_cluster.dir/broadcast_channel.cc.o"
  "CMakeFiles/finelb_cluster.dir/broadcast_channel.cc.o.d"
  "CMakeFiles/finelb_cluster.dir/client_node.cc.o"
  "CMakeFiles/finelb_cluster.dir/client_node.cc.o.d"
  "CMakeFiles/finelb_cluster.dir/directory.cc.o"
  "CMakeFiles/finelb_cluster.dir/directory.cc.o.d"
  "CMakeFiles/finelb_cluster.dir/experiment.cc.o"
  "CMakeFiles/finelb_cluster.dir/experiment.cc.o.d"
  "CMakeFiles/finelb_cluster.dir/ideal_manager.cc.o"
  "CMakeFiles/finelb_cluster.dir/ideal_manager.cc.o.d"
  "CMakeFiles/finelb_cluster.dir/server_node.cc.o"
  "CMakeFiles/finelb_cluster.dir/server_node.cc.o.d"
  "libfinelb_cluster.a"
  "libfinelb_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/finelb_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
