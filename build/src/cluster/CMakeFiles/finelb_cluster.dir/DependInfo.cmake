
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/broadcast_channel.cc" "src/cluster/CMakeFiles/finelb_cluster.dir/broadcast_channel.cc.o" "gcc" "src/cluster/CMakeFiles/finelb_cluster.dir/broadcast_channel.cc.o.d"
  "/root/repo/src/cluster/client_node.cc" "src/cluster/CMakeFiles/finelb_cluster.dir/client_node.cc.o" "gcc" "src/cluster/CMakeFiles/finelb_cluster.dir/client_node.cc.o.d"
  "/root/repo/src/cluster/directory.cc" "src/cluster/CMakeFiles/finelb_cluster.dir/directory.cc.o" "gcc" "src/cluster/CMakeFiles/finelb_cluster.dir/directory.cc.o.d"
  "/root/repo/src/cluster/experiment.cc" "src/cluster/CMakeFiles/finelb_cluster.dir/experiment.cc.o" "gcc" "src/cluster/CMakeFiles/finelb_cluster.dir/experiment.cc.o.d"
  "/root/repo/src/cluster/ideal_manager.cc" "src/cluster/CMakeFiles/finelb_cluster.dir/ideal_manager.cc.o" "gcc" "src/cluster/CMakeFiles/finelb_cluster.dir/ideal_manager.cc.o.d"
  "/root/repo/src/cluster/server_node.cc" "src/cluster/CMakeFiles/finelb_cluster.dir/server_node.cc.o" "gcc" "src/cluster/CMakeFiles/finelb_cluster.dir/server_node.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/finelb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/finelb_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/finelb_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/finelb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/finelb_net.dir/DependInfo.cmake"
  "/root/repo/build/src/fault/CMakeFiles/finelb_fault.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
