# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("fault")
subdirs("stats")
subdirs("workload")
subdirs("core")
subdirs("sim")
subdirs("net")
subdirs("cluster")
subdirs("neptune")
