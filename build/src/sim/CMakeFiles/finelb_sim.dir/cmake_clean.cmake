file(REMOVE_RECURSE
  "CMakeFiles/finelb_sim.dir/cluster_sim.cc.o"
  "CMakeFiles/finelb_sim.dir/cluster_sim.cc.o.d"
  "CMakeFiles/finelb_sim.dir/engine.cc.o"
  "CMakeFiles/finelb_sim.dir/engine.cc.o.d"
  "CMakeFiles/finelb_sim.dir/inaccuracy.cc.o"
  "CMakeFiles/finelb_sim.dir/inaccuracy.cc.o.d"
  "libfinelb_sim.a"
  "libfinelb_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/finelb_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
