file(REMOVE_RECURSE
  "libfinelb_sim.a"
)
