# Empty compiler generated dependencies file for finelb_sim.
# This may be replaced when dependencies are built.
