file(REMOVE_RECURSE
  "CMakeFiles/finelb_net.dir/clock.cc.o"
  "CMakeFiles/finelb_net.dir/clock.cc.o.d"
  "CMakeFiles/finelb_net.dir/message.cc.o"
  "CMakeFiles/finelb_net.dir/message.cc.o.d"
  "CMakeFiles/finelb_net.dir/pingpong.cc.o"
  "CMakeFiles/finelb_net.dir/pingpong.cc.o.d"
  "CMakeFiles/finelb_net.dir/poller.cc.o"
  "CMakeFiles/finelb_net.dir/poller.cc.o.d"
  "CMakeFiles/finelb_net.dir/socket.cc.o"
  "CMakeFiles/finelb_net.dir/socket.cc.o.d"
  "CMakeFiles/finelb_net.dir/tcp.cc.o"
  "CMakeFiles/finelb_net.dir/tcp.cc.o.d"
  "libfinelb_net.a"
  "libfinelb_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/finelb_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
