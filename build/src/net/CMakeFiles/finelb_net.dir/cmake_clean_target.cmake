file(REMOVE_RECURSE
  "libfinelb_net.a"
)
