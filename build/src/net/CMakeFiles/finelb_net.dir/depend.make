# Empty dependencies file for finelb_net.
# This may be replaced when dependencies are built.
