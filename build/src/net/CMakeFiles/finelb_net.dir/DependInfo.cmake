
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/clock.cc" "src/net/CMakeFiles/finelb_net.dir/clock.cc.o" "gcc" "src/net/CMakeFiles/finelb_net.dir/clock.cc.o.d"
  "/root/repo/src/net/message.cc" "src/net/CMakeFiles/finelb_net.dir/message.cc.o" "gcc" "src/net/CMakeFiles/finelb_net.dir/message.cc.o.d"
  "/root/repo/src/net/pingpong.cc" "src/net/CMakeFiles/finelb_net.dir/pingpong.cc.o" "gcc" "src/net/CMakeFiles/finelb_net.dir/pingpong.cc.o.d"
  "/root/repo/src/net/poller.cc" "src/net/CMakeFiles/finelb_net.dir/poller.cc.o" "gcc" "src/net/CMakeFiles/finelb_net.dir/poller.cc.o.d"
  "/root/repo/src/net/socket.cc" "src/net/CMakeFiles/finelb_net.dir/socket.cc.o" "gcc" "src/net/CMakeFiles/finelb_net.dir/socket.cc.o.d"
  "/root/repo/src/net/tcp.cc" "src/net/CMakeFiles/finelb_net.dir/tcp.cc.o" "gcc" "src/net/CMakeFiles/finelb_net.dir/tcp.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/finelb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/fault/CMakeFiles/finelb_fault.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
