file(REMOVE_RECURSE
  "CMakeFiles/finelb_common.dir/flags.cc.o"
  "CMakeFiles/finelb_common.dir/flags.cc.o.d"
  "CMakeFiles/finelb_common.dir/log.cc.o"
  "CMakeFiles/finelb_common.dir/log.cc.o.d"
  "CMakeFiles/finelb_common.dir/rng.cc.o"
  "CMakeFiles/finelb_common.dir/rng.cc.o.d"
  "libfinelb_common.a"
  "libfinelb_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/finelb_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
