# Empty compiler generated dependencies file for finelb_common.
# This may be replaced when dependencies are built.
