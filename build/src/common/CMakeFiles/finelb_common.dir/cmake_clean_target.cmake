file(REMOVE_RECURSE
  "libfinelb_common.a"
)
