file(REMOVE_RECURSE
  "CMakeFiles/finelb_fault.dir/fault.cc.o"
  "CMakeFiles/finelb_fault.dir/fault.cc.o.d"
  "libfinelb_fault.a"
  "libfinelb_fault.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/finelb_fault.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
