file(REMOVE_RECURSE
  "libfinelb_fault.a"
)
