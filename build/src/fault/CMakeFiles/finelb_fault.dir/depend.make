# Empty dependencies file for finelb_fault.
# This may be replaced when dependencies are built.
