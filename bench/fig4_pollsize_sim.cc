// Figure 4 reproduction: impact of poll size (simulation), 16 servers.
//
// Three panels (Medium-Grain, Poisson/Exp 50 ms, Fine-Grain); x-axis is
// server load 50%-90%; series are random, polling with poll sizes 2/3/4/8,
// and IDEAL. Values are mean response times in milliseconds, exactly the
// quantity Figure 4 plots.
//
//   fig4_pollsize_sim [--requests=120000] [--seed=1]
//                     [--loads=0.5,0.6,0.7,0.8,0.9] [--poll-sizes=2,3,4,8]
//                     [--servers=16] [--clients=6]
#include <cstdio>

#include "bench_util.h"
#include "common/flags.h"
#include "common/log.h"
#include "sim/config.h"
#include "workload/catalog.h"

using namespace finelb;

int main(int argc, char** argv) {
  const Flags flags = Flags::parse(argc, argv);
  init_log_level(flags);
  const std::int64_t requests = flags.get_int("requests", 120'000);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const auto loads =
      flags.get_double_list("loads", {0.5, 0.6, 0.7, 0.8, 0.9});
  const auto poll_sizes = flags.get_int_list("poll-sizes", {2, 3, 4, 8});
  const int servers = static_cast<int>(flags.get_int("servers", 16));
  const int clients = static_cast<int>(flags.get_int("clients", 6));

  const std::vector<std::pair<std::string, Workload>> workloads = {
      {"Medium-Grain", make_medium_grain(100'000, seed + 10)},
      {"Poisson/Exp-50ms", make_poisson_exp(0.050)},
      {"Fine-Grain", make_fine_grain(100'000, seed + 20)},
  };

  std::vector<std::pair<std::string, PolicyConfig>> policies;
  policies.emplace_back("random", PolicyConfig::random());
  for (const auto d : poll_sizes) {
    policies.emplace_back("poll(" + std::to_string(d) + ")",
                          PolicyConfig::polling(static_cast<int>(d)));
  }
  policies.emplace_back("ideal", PolicyConfig::ideal());

  // Fan the whole (workload x load x policy) grid out across cores; the
  // policies within one row share a derived seed so their comparison stays
  // paired, and results come back in submission order so the tables below
  // print exactly as the sequential sweep would.
  bench::SweepRunner<double> runner;
  std::uint64_t row_index = 0;
  for (const auto& [wname, workload] : workloads) {
    (void)wname;
    for (const double load : loads) {
      const std::uint64_t run_seed = bench::derive_seed(seed, row_index++);
      for (const auto& [pname, policy] : policies) {
        (void)pname;
        runner.submit([&workload, policy, load, servers, clients, requests,
                       run_seed] {
          sim::SimConfig config;
          config.servers = servers;
          config.clients = clients;
          config.policy = policy;
          config.load = load;
          config.total_requests = requests;
          config.warmup_requests = requests / 10;
          config.seed = run_seed;
          return run_cluster_sim(config, workload).mean_response_ms();
        });
      }
    }
  }
  const std::vector<double> results = runner.run();

  std::size_t next = 0;
  for (const auto& [wname, workload] : workloads) {
    (void)workload;
    bench::print_header(
        "Figure 4 <" + wname + ">: poll size impact (simulation)",
        std::to_string(servers) + " servers, " + std::to_string(clients) +
            " clients; mean response time (ms); " + std::to_string(requests) +
            " requests per point");
    bench::Table table(12);
    std::vector<std::string> head = {"load"};
    for (const auto& [pname, p] : policies) {
      (void)p;
      head.push_back(pname);
    }
    table.row(head);

    for (const double load : loads) {
      std::vector<std::string> row = {bench::Table::pct(load, 0)};
      for (std::size_t p = 0; p < policies.size(); ++p) {
        row.push_back(bench::Table::num(results[next++], 1));
      }
      table.row(row);
    }
  }
  std::printf(
      "\nPaper shape: poll size 2 is an exponential improvement over\n"
      "random; sizes 3/4/8 add little; all polling curves track IDEAL\n"
      "across loads and granularities (the simulator charges nothing for\n"
      "polls - contrast with Figure 6).\n");
  return 0;
}
