// Decision-observatory overhead gate (bench-smoke: micro_decision --smoke).
//
//   micro_decision [--smoke] [--json=BENCH_decision.json]
//
// The decision ring's hot-path promise mirrors the trace ring's: auditing
// every dispatch decision must not allocate in steady state and must not
// move the poll round-trip p50. Two measurements, both gated under --smoke:
//
//   * poll RTT with the choke-point selection unrecorded vs recorded into a
//     live DecisionRing every round (record construction + seqlock write on
//     the reply path) — gate: p50 overhead <= 2% plus absolute slack for
//     scheduler noise;
//   * marginal allocs/access of a real two-server polling(2) cluster with
//     decision_sample_period=1 (every decision audited), measured as
//     A(2N) - A(N) over N so warmup allocations cancel — gate: 0.00
//     steady-state allocs (same noise thresholds as micro_net's gates).
#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <span>
#include <string>
#include <vector>

#include "cluster/client_node.h"
#include "cluster/server_node.h"
#include "common/log.h"
#include "common/rng.h"
#include "core/selection.h"
#include "net/clock.h"
#include "net/message.h"
#include "net/poller.h"
#include "net/socket.h"
#include "telemetry/decision.h"
#include "workload/catalog.h"

namespace finelb {
namespace {

// Allocation counting hook, the same global/thread-local split micro_net
// uses: the client event loop runs on the main thread, so its allocations
// are the thread-local delta and the server threads are the remainder.
namespace alloc_hook {
std::atomic<std::int64_t> global_count{0};
thread_local std::int64_t thread_count = 0;
std::int64_t global() { return global_count.load(std::memory_order_relaxed); }
std::int64_t local() { return thread_count; }
}  // namespace alloc_hook

}  // namespace
}  // namespace finelb

namespace {
void* counted_alloc(std::size_t size) {
  finelb::alloc_hook::global_count.fetch_add(1, std::memory_order_relaxed);
  ++finelb::alloc_hook::thread_count;
  void* p = std::malloc(size > 0 ? size : 1);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace finelb {
namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

struct RttStats {
  int rounds = 0;
  double p50_us = 0.0;
  double p99_us = 0.0;
};

/// Poll round trip over loopback with the decision choke point on the reply
/// path: every round ends in a 3-candidate least-loaded pick, unrecorded
/// (ring == nullptr) or recorded into the ring — isolating exactly the
/// marginal cost decision auditing adds to the polling agent.
RttStats measure_poll_rtt(int rounds, telemetry::DecisionRing* ring) {
  net::UdpSocket server;
  net::UdpSocket client;
  client.connect(server.local_address());
  net::Poller client_poller;
  client_poller.add(client.fd(), 0);
  net::Poller server_poller;
  server_poller.add(server.fd(), 0);
  std::array<std::uint8_t, 64> buf{};
  Rng rng(7);
  std::array<ServerLoad, 3> loads{};
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(rounds));
  for (int r = 0; r < rounds; ++r) {
    net::LoadInquiry inquiry;
    inquiry.seq = static_cast<std::uint64_t>(r) + 1;
    const auto start = std::chrono::steady_clock::now();
    client.send(inquiry.encode());
    while (true) {
      server_poller.wait(kSecond);
      if (auto dgram = server.recv_from(buf)) {
        net::LoadReply reply;
        reply.seq = inquiry.seq;
        reply.queue_length = 1;
        server.send_to(reply.encode(), dgram->from);
        break;
      }
    }
    while (true) {
      client_poller.wait(kSecond);
      if (client.recv(buf)) break;
    }
    // The decision the round exists for: 3 polled loads, pick, (maybe)
    // record — the same shapes finish_poll_round feeds the choke point.
    const SimTime now = net::monotonic_now();
    for (std::size_t i = 0; i < loads.size(); ++i) {
      loads[i] = {static_cast<ServerId>(i),
                  static_cast<std::int32_t>((r + static_cast<int>(i)) % 5),
                  now - 200'000};
    }
    if (ring != nullptr) {
      DecisionContext ctx;
      ctx.request_id = static_cast<std::uint64_t>(r);
      ctx.now_ns = now;
      ctx.sink = ring->sink();
      (void)pick_least_loaded(loads, rng, ctx);
    } else {
      (void)pick_least_loaded(loads, rng);
    }
    samples.push_back(seconds_since(start) * 1e6);
  }
  RttStats stats;
  stats.rounds = rounds;
  std::sort(samples.begin(), samples.end());
  const auto at = [&](double q) {
    const std::size_t i = std::min(
        samples.size() - 1,
        static_cast<std::size_t>(q * static_cast<double>(samples.size())));
    return samples[i];
  };
  stats.p50_us = at(0.50);
  stats.p99_us = at(0.99);
  return stats;
}

struct AllocCounts {
  std::int64_t client = 0;
  std::int64_t server = 0;
};

/// Real two-server polling(2) cluster with every decision audited
/// (decision_sample_period = 1); counts allocations attributable to the
/// client loop (thread-local) and the server threads (remainder).
AllocCounts run_cluster_accesses(std::int64_t accesses) {
  const std::int64_t local_before = alloc_hook::local();
  const std::int64_t global_before = alloc_hook::global();
  {
    cluster::ServerOptions server_options;
    server_options.worker_threads = 1;
    server_options.inject_busy_reply_delay = false;
    server_options.id = 0;
    cluster::ServerNode s0(server_options);
    server_options.id = 1;
    server_options.seed = 2;
    cluster::ServerNode s1(server_options);
    s0.start();
    s1.start();

    cluster::ClientOptions client_options;
    client_options.policy = PolicyConfig::polling(2);
    client_options.servers = {
        {0, s0.service_address(), s0.load_address()},
        {1, s1.service_address(), s1.load_address()},
    };
    client_options.decision_sample_period = 1;
    client_options.total_requests = accesses;
    client_options.warmup_requests =
        std::min<std::int64_t>(accesses / 4, 100);
    const Workload workload = Workload::from_distributions(
        "alloc-probe", make_deterministic(200e-6), make_deterministic(0.0));
    cluster::ClientNode client(std::move(client_options),
                               workload.make_source(1.0, 7));
    client.run();
    s0.stop();
    s1.stop();
  }
  AllocCounts counts;
  counts.client = alloc_hook::local() - local_before;
  counts.server = (alloc_hook::global() - global_before) - counts.client;
  return counts;
}

struct AllocStats {
  std::int64_t accesses = 0;
  double client_per_access = 0.0;
  double server_per_access = 0.0;
};

AllocStats measure_steady_state_allocs(bool smoke) {
  const std::int64_t n = smoke ? 500 : 2000;
  // Best of up to 6 passes (micro_net's de-flaking rule): pool-growth
  // bursts are worth <= ~0.1 alloc/access of one-sided noise, while a real
  // per-decision allocation shows up in every pass at >= 1/access.
  AllocStats best;
  for (int attempt = 0; attempt < 6; ++attempt) {
    const AllocCounts a1 = run_cluster_accesses(n);
    const AllocCounts a2 = run_cluster_accesses(2 * n);
    AllocStats stats;
    stats.accesses = n;
    stats.client_per_access =
        static_cast<double>(a2.client - a1.client) / static_cast<double>(n);
    stats.server_per_access =
        static_cast<double>(a2.server - a1.server) / static_cast<double>(n);
    const double worst =
        std::max(stats.client_per_access, stats.server_per_access);
    if (attempt == 0 ||
        worst < std::max(best.client_per_access, best.server_per_access)) {
      best = stats;
    }
    if (worst < 0.01) break;
  }
  return best;
}

int run(const std::string& json_path, bool smoke) {
  const int rounds = smoke ? 2'000 : 20'000;
  telemetry::DecisionRing ring(256, /*sample_period=*/1);
  // Best of 2 per mode, interleaved off/on so box-level noise (which only
  // ever slows a pass down) hits both modes alike.
  RttStats off;
  RttStats on;
  for (int pass = 0; pass < 2; ++pass) {
    const RttStats o = measure_poll_rtt(rounds, nullptr);
    if (pass == 0 || o.p50_us < off.p50_us) off = o;
    const RttStats i = measure_poll_rtt(rounds, &ring);
    if (pass == 0 || i.p50_us < on.p50_us) on = i;
  }
  const AllocStats allocs = measure_steady_state_allocs(smoke);

  const double overhead_pct =
      off.p50_us > 0 ? (on.p50_us / off.p50_us - 1.0) * 100.0 : 0.0;
  std::printf("poll rtt p50: %.1f us unrecorded, %.1f us audited (%+.1f%%), "
              "p99 %.1f/%.1f us over %d rounds\n",
              off.p50_us, on.p50_us, overhead_pct, off.p99_us, on.p99_us,
              off.rounds);
  std::printf("steady-state allocs/access with decision auditing on: "
              "client %.4f, server %.4f (marginal over %lld accesses)\n",
              allocs.client_per_access, allocs.server_per_access,
              static_cast<long long>(allocs.accesses));
  std::printf("ring captured %zu records\n", ring.snapshot().size());

  if (!json_path.empty()) {
    std::FILE* out = std::fopen(json_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(out, "{\n  \"bench\": \"decision\",\n  \"smoke\": %s,\n",
                 smoke ? "true" : "false");
    std::fprintf(out, "  \"poll_rtt_us\": {\n");
    std::fprintf(out, "    \"rounds\": %d,\n", off.rounds);
    std::fprintf(out, "    \"off\": {\"p50\": %.2f, \"p99\": %.2f},\n",
                 off.p50_us, off.p99_us);
    std::fprintf(out, "    \"on\": {\"p50\": %.2f, \"p99\": %.2f},\n",
                 on.p50_us, on.p99_us);
    std::fprintf(out, "    \"p50_overhead_pct\": %.2f\n", overhead_pct);
    std::fprintf(out, "  },\n");
    std::fprintf(out, "  \"allocs_auditing_on\": {\n");
    std::fprintf(out, "    \"decision_sample_period\": 1,\n");
    std::fprintf(out, "    \"accesses\": %lld,\n",
                 static_cast<long long>(allocs.accesses));
    std::fprintf(out, "    \"client_per_access\": %.4f,\n",
                 allocs.client_per_access);
    std::fprintf(out, "    \"server_per_access\": %.4f\n",
                 allocs.server_per_access);
    std::fprintf(out, "  }\n}\n");
    std::fclose(out);
  }

  // Same noise thresholds as micro_net's gates: the smallest real
  // regression (one allocation per audited decision) costs >= 1/access,
  // far above the <= ~0.1/access pool-growth noise floor.
  if (smoke && (allocs.client_per_access >= 0.25 ||
                allocs.server_per_access >= 0.01)) {
    std::fprintf(stderr,
                 "FAIL: decision-audited steady state allocates "
                 "(client %.4f/access, server %.4f/access)\n",
                 allocs.client_per_access, allocs.server_per_access);
    return 1;
  }
  // 2% relative plus 3 us absolute slack: loopback p50 is a handful of
  // microseconds, where one scheduler hiccup is worth more than 2%.
  if (smoke && on.p50_us > off.p50_us * 1.02 + 3.0) {
    std::fprintf(stderr,
                 "FAIL: decision-audit poll-RTT overhead too high "
                 "(p50 %.2f us unrecorded vs %.2f us audited)\n",
                 off.p50_us, on.p50_us);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace finelb

int main(int argc, char** argv) {
  finelb::init_log_level();
  std::string json_path;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strncmp(argv[i], "--log-level=", 12) == 0) {
      finelb::set_log_level(finelb::parse_log_level(argv[i] + 12));
    }
  }
  return finelb::run(json_path, smoke);
}
