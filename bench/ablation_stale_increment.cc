// Ablation: optimistic client-local increments for the broadcast policy.
//
// The paper attributes much of broadcast's collapse to the "flocking
// effect": between announcements every client sends to the same
// lowest-index server. A simple mitigation the paper does not evaluate is
// for each client to bump its own cached index when it dispatches there.
// This ablation quantifies how much of the gap that recovers (it cannot
// recover cross-client flocking - clients do not see each other's
// dispatches).
//
//   ablation_stale_increment [--requests=120000] [--seed=1] [--load=0.9]
//                            [--intervals-ms=20,100,500,1000]
#include <cstdio>

#include "bench_util.h"
#include "common/flags.h"
#include "common/log.h"
#include "sim/config.h"
#include "workload/catalog.h"

using namespace finelb;

int main(int argc, char** argv) {
  const Flags flags = Flags::parse(argc, argv);
  init_log_level(flags);
  const std::int64_t requests = flags.get_int("requests", 120'000);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const double load = flags.get_double("load", 0.9);
  const auto intervals_ms =
      flags.get_double_list("intervals-ms", {20, 100, 500, 1000});

  const Workload workload = make_poisson_exp(0.050);

  sim::SimConfig base;
  base.load = load;
  base.total_requests = requests;
  base.warmup_requests = requests / 10;

  // The IDEAL baseline plus (plain, optimistic) pairs per interval, fanned
  // out across cores; each pair shares a derived seed so the recovered
  // fraction is a paired comparison.
  bench::SweepRunner<double> runner;
  runner.submit([&workload, base, seed] {
    sim::SimConfig config = base;
    config.policy = PolicyConfig::ideal();
    config.seed = bench::derive_seed(seed, 0);
    return run_cluster_sim(config, workload).mean_response_ms();
  });
  for (std::size_t i = 0; i < intervals_ms.size(); ++i) {
    const double interval = intervals_ms[i];
    const std::uint64_t run_seed = bench::derive_seed(seed, 1 + i);
    for (const bool optimistic : {false, true}) {
      runner.submit([&workload, base, interval, optimistic, run_seed] {
        sim::SimConfig config = base;
        config.policy = PolicyConfig::broadcast(from_ms(interval));
        config.policy.optimistic_increment = optimistic;
        config.seed = run_seed;
        return run_cluster_sim(config, workload).mean_response_ms();
      });
    }
  }
  const std::vector<double> results = runner.run();
  const double ideal_ms = results[0];

  bench::print_header(
      "Ablation: broadcast with optimistic local increments",
      "16 servers, Poisson/Exp 50 ms, " + bench::Table::pct(load, 0) +
          " busy; mean response (ms); IDEAL = " +
          bench::Table::num(ideal_ms, 1));
  bench::Table table(15);
  table.row({"interval(ms)", "plain", "optimistic", "recovered"});

  for (std::size_t i = 0; i < intervals_ms.size(); ++i) {
    const double interval = intervals_ms[i];
    const double plain = results[1 + 2 * i];
    const double optimistic = results[2 + 2 * i];
    const double recovered =
        plain - ideal_ms > 0
            ? (plain - optimistic) / (plain - ideal_ms)
            : 0.0;
    table.row({bench::Table::num(interval, 0), bench::Table::num(plain, 1),
               bench::Table::num(optimistic, 1),
               bench::Table::pct(recovered)});
  }
  return 0;
}
