// Shared output helpers for the experiment harnesses.
//
// Every harness prints a self-describing header (experiment id, parameters)
// followed by aligned rows, so bench_output.txt reads like the paper's
// tables. Keep stdout for results only; diagnostics go through the logger.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace finelb::bench {

/// Prints "=== <title> ===" with a parameter line underneath.
inline void print_header(const std::string& title,
                         const std::string& params) {
  std::printf("\n=== %s ===\n", title.c_str());
  if (!params.empty()) std::printf("%s\n", params.c_str());
}

/// Fixed-width row printer: pads every cell to `width`.
class Table {
 public:
  explicit Table(int width = 12) : width_(width) {}

  void row(const std::vector<std::string>& cells) {
    for (const auto& cell : cells) {
      std::printf("%-*s", width_, cell.c_str());
    }
    std::printf("\n");
    std::fflush(stdout);
  }

  static std::string num(double value, int precision = 2) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
    return buf;
  }

  static std::string pct(double fraction, int precision = 1) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
    return buf;
  }

 private:
  int width_;
};

}  // namespace finelb::bench
