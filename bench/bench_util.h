// Shared output helpers for the experiment harnesses.
//
// Every harness prints a self-describing header (experiment id, parameters)
// followed by aligned rows, so bench_output.txt reads like the paper's
// tables. Keep stdout for results only; diagnostics go through the logger.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <functional>
#include <string>
#include <thread>
#include <vector>

namespace finelb::bench {

/// Worker count for parallel sweeps: FINELB_SWEEP_THREADS if set (>= 1),
/// otherwise the hardware concurrency.
inline unsigned sweep_threads() {
  if (const char* env = std::getenv("FINELB_SWEEP_THREADS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v >= 1) return static_cast<unsigned>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

/// Mixes a per-run index into a base seed (splitmix64 finalizer), so every
/// sweep point owns an independent RNG stream no matter which thread runs
/// it. Points that must stay paired (A/B comparisons at equal randomness)
/// simply share one derived seed.
inline std::uint64_t derive_seed(std::uint64_t base, std::uint64_t index) {
  std::uint64_t z = base + 0x9e3779b97f4a7c15ull * (index + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// Fans independent runs out across a thread pool and hands the results
/// back in submission order, so a table printed from them is byte-identical
/// to the sequential sweep. Each submitted task must be self-contained
/// (own engine, own RNG seeded from its config); the runner adds no
/// synchronization beyond claiming task indices.
///
/// Prototype harnesses (real sockets, wall-clock service times) construct
/// the runner with `serial()`: timing-sensitive runs must not share the
/// machine, so they execute inline, in order, on the calling thread.
template <class R>
class SweepRunner {
 public:
  explicit SweepRunner(unsigned threads = sweep_threads())
      : threads_(threads > 0 ? threads : 1) {}

  static SweepRunner serial() { return SweepRunner(1); }

  /// Queues a task; returns its index (== position of its result).
  template <class F>
  std::size_t submit(F fn) {
    tasks_.emplace_back(std::move(fn));
    return tasks_.size() - 1;
  }

  std::size_t pending() const { return tasks_.size(); }

  /// Executes every queued task and returns results in submission order.
  /// If tasks threw, the lowest-index exception is rethrown after all
  /// workers finish. The queue is cleared, so a runner can be reused for
  /// a second wave.
  std::vector<R> run() {
    std::vector<R> results(tasks_.size());
    std::vector<std::exception_ptr> errors(tasks_.size());
    std::atomic<std::size_t> next{0};
    const auto worker = [&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= tasks_.size()) return;
        try {
          results[i] = tasks_[i]();
        } catch (...) {
          errors[i] = std::current_exception();
        }
      }
    };
    const std::size_t workers =
        std::min<std::size_t>(threads_, tasks_.size());
    if (workers <= 1) {
      worker();
    } else {
      std::vector<std::thread> pool;
      pool.reserve(workers);
      for (std::size_t i = 0; i < workers; ++i) pool.emplace_back(worker);
      for (auto& t : pool) t.join();
    }
    tasks_.clear();
    for (auto& error : errors) {
      if (error) std::rethrow_exception(error);
    }
    return results;
  }

 private:
  unsigned threads_;
  std::vector<std::function<R()>> tasks_;
};

/// Prints "=== <title> ===" with a parameter line underneath.
inline void print_header(const std::string& title,
                         const std::string& params) {
  std::printf("\n=== %s ===\n", title.c_str());
  if (!params.empty()) std::printf("%s\n", params.c_str());
}

/// Fixed-width row printer: pads every cell to `width`.
class Table {
 public:
  explicit Table(int width = 12) : width_(width) {}

  void row(const std::vector<std::string>& cells) {
    for (const auto& cell : cells) {
      std::printf("%-*s", width_, cell.c_str());
    }
    std::printf("\n");
    std::fflush(stdout);
  }

  static std::string num(double value, int precision = 2) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
    return buf;
  }

  static std::string pct(double fraction, int precision = 1) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
    return buf;
  }

 private:
  int width_;
};

}  // namespace finelb::bench
