// Figure 3 reproduction: impact of broadcast frequency, 16 servers,
// 90% busy (panel A) and 50% busy (panel B).
//
// For each workload, sweeps the mean broadcast interval and reports the
// mean response time normalized to the IDEAL policy (accurate, free load
// information at every request).
//
//   fig3_broadcast [--requests=150000] [--seed=1] [--loads=0.9,0.5]
//                  [--intervals-ms=2,5,10,20,50,100,200,500,1000]
//                  [--servers=16] [--clients=6]
#include <cstdio>

#include "bench_util.h"
#include "common/flags.h"
#include "common/log.h"
#include "sim/config.h"
#include "workload/catalog.h"

using namespace finelb;

int main(int argc, char** argv) {
  const Flags flags = Flags::parse(argc, argv);
  init_log_level(flags);
  const std::int64_t requests = flags.get_int("requests", 150'000);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const auto loads = flags.get_double_list("loads", {0.9, 0.5});
  const auto intervals_ms = flags.get_double_list(
      "intervals-ms", {2, 5, 10, 20, 50, 100, 200, 500, 1000});
  const int servers = static_cast<int>(flags.get_int("servers", 16));
  const int clients = static_cast<int>(flags.get_int("clients", 6));

  const std::vector<std::pair<std::string, Workload>> workloads = {
      {"Poisson/Exp-50ms", make_poisson_exp(0.050)},
      {"Medium-Grain", make_medium_grain(100'000, seed + 10)},
      {"Fine-Grain", make_fine_grain(100'000, seed + 20)},
  };

  // Fan every (load, workload, policy) run out across cores. The IDEAL
  // baseline and all broadcast intervals of one (load, workload) column
  // share a derived seed, so the normalization stays a paired comparison.
  bench::SweepRunner<double> runner;
  const auto submit = [&](const Workload& workload, PolicyConfig policy,
                          double load, std::uint64_t run_seed) {
    runner.submit([&workload, policy, load, servers, clients, requests,
                   run_seed] {
      sim::SimConfig config;
      config.servers = servers;
      config.clients = clients;
      config.policy = policy;
      config.load = load;
      config.total_requests = requests;
      config.warmup_requests = requests / 10;
      config.seed = run_seed;
      return run_cluster_sim(config, workload).mean_response_ms();
    });
  };

  const auto column_seed = [&](std::size_t l, std::size_t w) {
    return bench::derive_seed(seed, l * workloads.size() + w);
  };
  for (std::size_t l = 0; l < loads.size(); ++l) {
    for (std::size_t w = 0; w < workloads.size(); ++w) {
      submit(workloads[w].second, PolicyConfig::ideal(), loads[l],
             column_seed(l, w));
    }
    for (const double interval : intervals_ms) {
      for (std::size_t w = 0; w < workloads.size(); ++w) {
        submit(workloads[w].second, PolicyConfig::broadcast(from_ms(interval)),
               loads[l], column_seed(l, w));
      }
    }
  }
  const std::vector<double> results = runner.run();

  std::size_t next = 0;
  for (const double load : loads) {
    bench::print_header(
        "Figure 3: broadcast frequency impact, servers " +
            bench::Table::pct(load, 0) + " busy",
        std::to_string(servers) + " servers, " + std::to_string(clients) +
            " clients; mean response normalized to IDEAL; " +
            std::to_string(requests) + " requests per point");
    bench::Table table(18);
    std::vector<std::string> head = {"interval(ms)"};
    for (const auto& [name, w] : workloads) {
      (void)w;
      head.push_back(name);
    }
    table.row(head);

    std::vector<double> ideal_ms;
    for (std::size_t w = 0; w < workloads.size(); ++w) {
      ideal_ms.push_back(results[next++]);
    }

    for (const double interval : intervals_ms) {
      std::vector<std::string> row = {bench::Table::num(interval, 0)};
      for (std::size_t w = 0; w < workloads.size(); ++w) {
        row.push_back(
            bench::Table::num(results[next++] / ideal_ms[w], 2) + "x");
      }
      table.row(row);
    }
    std::printf("IDEAL mean response (ms):");
    for (std::size_t w = 0; w < workloads.size(); ++w) {
      std::printf(" %s=%.1f", workloads[w].first.c_str(), ideal_ms[w]);
    }
    std::printf("\n");
  }
  std::printf(
      "\nPaper shape: ~1 s intervals are an order of magnitude worse than\n"
      "IDEAL for fine-grain workloads at 90%% busy (2-3x at 50%%); low\n"
      "intervals approach IDEAL at prohibitive message cost.\n");
  return 0;
}
