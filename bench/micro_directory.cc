// Directory fetch trajectory: single node vs replicated control plane.
//
//   micro_directory                         # table to stdout
//   micro_directory --json=BENCH_directory.json [--smoke]
//
// Measures the client-visible cost of the §3.1 availability directory in
// both shapes: the classic single DirectoryServer and a 3-replica
// HaDirectoryCluster whose lease-holding leader serves snapshots
// (DESIGN.md §12). For each shape: fetch round-trip p50/p99 (16 published
// entries, warm client) and the marginal heap allocations per fetch
// (operator-new hook, N-vs-2N so warmup allocations cancel).
//
// Under --smoke the run FAILS if replication is not free on the steady
// path: the replicated directory must add no marginal allocations per
// fetch (the redirect/failover machinery stays off the settled path) and
// at most 5% (+2 us slack) fetch p50 over the single node.
#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>
#include <vector>

#include "cluster/directory.h"
#include "cluster/ha/replica.h"
#include "common/log.h"
#include "net/clock.h"
#include "net/message.h"
#include "net/socket.h"

// Allocation counting: same always-on operator new/delete override as
// micro_net — every allocation on the calling thread bumps a thread-local
// counter, and the fetch loop runs entirely on the calling thread.
namespace alloc_hook {
std::atomic<std::int64_t> global_count{0};
thread_local std::int64_t thread_count = 0;

std::int64_t local() { return thread_count; }
}  // namespace alloc_hook

namespace {
void* counted_alloc(std::size_t size) {
  alloc_hook::global_count.fetch_add(1, std::memory_order_relaxed);
  ++alloc_hook::thread_count;
  void* p = std::malloc(size > 0 ? size : 1);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* counted_aligned_alloc(std::size_t size, std::size_t align) {
  alloc_hook::global_count.fetch_add(1, std::memory_order_relaxed);
  ++alloc_hook::thread_count;
  void* p = nullptr;
  if (posix_memalign(&p, align < sizeof(void*) ? sizeof(void*) : align,
                     size > 0 ? size : 1) != 0) {
    throw std::bad_alloc();
  }
  return p;
}
}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, std::align_val_t al) {
  return counted_aligned_alloc(size, static_cast<std::size_t>(al));
}
void* operator new[](std::size_t size, std::align_val_t al) {
  return counted_aligned_alloc(size, static_cast<std::size_t>(al));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace finelb::cluster {
namespace {

constexpr int kEntries = 16;
constexpr const char* kService = "bench";

void publish_entries(const std::vector<net::Address>& directories) {
  net::UdpSocket publisher;
  for (int i = 0; i < kEntries; ++i) {
    net::Publish p;
    p.service = kService;
    p.server = i;
    p.service_port = static_cast<std::uint16_t>(40000 + i);
    p.load_port = static_cast<std::uint16_t>(41000 + i);
    p.ttl_ms = 120'000;  // outlives any bench pass: no mid-run expiry
    for (const net::Address& directory : directories) {
      publisher.send_to(p.encode(), directory);
    }
  }
}

struct FetchStats {
  int rounds = 0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  double allocs_per_fetch = 0.0;
  std::int64_t redirects = 0;
  std::int64_t failovers = 0;
};

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

std::int64_t allocs_over_fetches(DirectoryClient& client, int n) {
  const std::int64_t before = alloc_hook::local();
  for (int i = 0; i < n; ++i) {
    const auto snapshot = client.fetch(kService);
    if (snapshot.size() != static_cast<std::size_t>(kEntries)) {
      std::fprintf(stderr, "fetch returned %zu entries, expected %d\n",
                   snapshot.size(), kEntries);
      std::exit(1);
    }
  }
  return alloc_hook::local() - before;
}

void percentiles(std::vector<double>& samples, FetchStats& stats) {
  std::sort(samples.begin(), samples.end());
  const auto at = [&](double q) {
    const std::size_t i = std::min(
        samples.size() - 1,
        static_cast<std::size_t>(q * static_cast<double>(samples.size())));
    return samples[i];
  };
  stats.p50_us = at(0.50);
  stats.p99_us = at(0.99);
}

void timed_fetches(DirectoryClient& client, int rounds,
                   std::vector<double>& samples) {
  for (int r = 0; r < rounds; ++r) {
    const auto start = std::chrono::steady_clock::now();
    const auto snapshot = client.fetch(kService);
    samples.push_back(seconds_since(start) * 1e6);
    if (snapshot.size() != static_cast<std::size_t>(kEntries)) {
      std::fprintf(stderr, "fetch returned %zu entries, expected %d\n",
                   snapshot.size(), kEntries);
      std::exit(1);
    }
  }
}

/// Marginal N-vs-2N: warmup/capacity allocations cancel, leaving the pure
/// steady-state allocation cost of one fetch (snapshot vector + cache).
double marginal_allocs(DirectoryClient& client, int rounds) {
  const int n = std::max(rounds / 4, 50);
  const std::int64_t a1 = allocs_over_fetches(client, n);
  const std::int64_t a2 = allocs_over_fetches(client, 2 * n);
  return static_cast<double>(a2 - a1) / static_cast<double>(n);
}

int run(const std::string& json_path, bool smoke) {
  const int rounds = smoke ? 2'000 : 10'000;
  constexpr std::int32_t kReplicas = 3;

  // Paired measurement: both shapes live at once, fetch batches strictly
  // alternating. The box's clock-speed drift and neighbor noise dwarf the
  // actual single-vs-replicated delta (~1 us), and only pairing at batch
  // granularity cancels it — sequential best-of-N still sees minutes-scale
  // slowdowns land on whichever shape ran later. The replica threads idle
  // in ppoll during the single-node batches, so their ambient cost (the
  // thing being measured) stays in every sample of both shapes.
  DirectoryServer single_directory;
  single_directory.start();
  publish_entries({single_directory.address()});
  DirectoryClient single_client(single_directory.address());
  (void)single_client.wait_for_servers(kService, kEntries, 5 * kSecond);

  ha::HaReplicaConfig ha_config;
  ha_config.seed = 7;
  ha::HaDirectoryCluster cluster(kReplicas, ha_config);
  if (cluster.wait_for_leader() < 0) {
    std::fprintf(stderr, "replicated directory never elected a leader\n");
    return 1;
  }
  publish_entries(cluster.data_addresses());
  DirectoryClient replicated_client(cluster.data_addresses());
  (void)replicated_client.wait_for_servers(kService, kEntries, 5 * kSecond);

  // Warmup settles the replicated client onto the leader (following a
  // redirect if its first pick was a follower) and grows every buffer to
  // steady capacity on both paths.
  for (int i = 0; i < rounds / 10; ++i) {
    (void)single_client.fetch(kService);
    (void)replicated_client.fetch(kService);
  }

  FetchStats single;
  FetchStats replicated;
  single.rounds = rounds;
  replicated.rounds = rounds;
  std::vector<double> single_samples;
  std::vector<double> replicated_samples;
  single_samples.reserve(static_cast<std::size_t>(rounds));
  replicated_samples.reserve(static_cast<std::size_t>(rounds));
  constexpr int kBatch = 100;
  for (int done = 0; done < rounds; done += kBatch) {
    const int batch = std::min(kBatch, rounds - done);
    timed_fetches(single_client, batch, single_samples);
    timed_fetches(replicated_client, batch, replicated_samples);
  }
  percentiles(single_samples, single);
  percentiles(replicated_samples, replicated);
  single.allocs_per_fetch = marginal_allocs(single_client, rounds);
  replicated.allocs_per_fetch = marginal_allocs(replicated_client, rounds);
  replicated.redirects = replicated_client.redirects_followed();
  replicated.failovers = replicated_client.failovers();
  single_directory.stop();

  const double p50_overhead_pct =
      single.p50_us > 0 ? (replicated.p50_us / single.p50_us - 1.0) * 100.0
                        : 0.0;
  const double alloc_delta =
      replicated.allocs_per_fetch - single.allocs_per_fetch;
  std::printf("fetch p50: %.1f us single, %.1f us %d-replica (%+.1f%%), "
              "p99 %.1f/%.1f us over %d rounds\n",
              single.p50_us, replicated.p50_us, kReplicas, p50_overhead_pct,
              single.p99_us, replicated.p99_us, rounds);
  std::printf("allocs/fetch: %.4f single, %.4f replicated (delta %+.4f)\n",
              single.allocs_per_fetch, replicated.allocs_per_fetch,
              alloc_delta);
  std::printf("replicated client: %lld redirect(s) followed, %lld "
              "failover(s) during warmup+measurement\n",
              static_cast<long long>(replicated.redirects),
              static_cast<long long>(replicated.failovers));

  if (!json_path.empty()) {
    std::FILE* out = std::fopen(json_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(out, "{\n  \"bench\": \"directory\",\n  \"smoke\": %s,\n",
                 smoke ? "true" : "false");
    std::fprintf(out, "  \"entries\": %d,\n  \"rounds\": %d,\n", kEntries,
                 rounds);
    std::fprintf(out, "  \"single\": {\n");
    std::fprintf(out, "    \"fetch_p50_us\": %.2f,\n", single.p50_us);
    std::fprintf(out, "    \"fetch_p99_us\": %.2f,\n", single.p99_us);
    std::fprintf(out, "    \"allocs_per_fetch\": %.4f\n",
                 single.allocs_per_fetch);
    std::fprintf(out, "  },\n");
    std::fprintf(out, "  \"replicated\": {\n");
    std::fprintf(out, "    \"replicas\": %d,\n", kReplicas);
    std::fprintf(out, "    \"fetch_p50_us\": %.2f,\n", replicated.p50_us);
    std::fprintf(out, "    \"fetch_p99_us\": %.2f,\n", replicated.p99_us);
    std::fprintf(out, "    \"allocs_per_fetch\": %.4f,\n",
                 replicated.allocs_per_fetch);
    std::fprintf(out, "    \"redirects_followed\": %lld,\n",
                 static_cast<long long>(replicated.redirects));
    std::fprintf(out, "    \"failovers\": %lld\n",
                 static_cast<long long>(replicated.failovers));
    std::fprintf(out, "  },\n");
    std::fprintf(out, "  \"overhead\": {\n");
    std::fprintf(out, "    \"p50_pct\": %.2f,\n", p50_overhead_pct);
    std::fprintf(out, "    \"alloc_delta\": %.4f\n", alloc_delta);
    std::fprintf(out, "  }\n}\n");
    std::fclose(out);
  }

  // Smoke gates (ISSUE 6): replication must be free on the settled path.
  // Both shapes allocate identically per fetch (the snapshot vector); any
  // real regression — per-fetch redirect handling, replica bookkeeping —
  // costs >= 1 alloc/fetch, far above the 0.05 noise allowance.
  if (smoke && alloc_delta >= 0.05) {
    std::fprintf(stderr,
                 "FAIL: replicated directory adds %.4f allocs/fetch over "
                 "single-node (%.4f vs %.4f)\n",
                 alloc_delta, replicated.allocs_per_fetch,
                 single.allocs_per_fetch);
    return 1;
  }
  // 5% relative plus 2 us absolute slack: loopback fetch p50 is a handful
  // of microseconds, where one scheduler hiccup outweighs 5%.
  if (smoke && replicated.p50_us > single.p50_us * 1.05 + 2.0) {
    std::fprintf(stderr,
                 "FAIL: replicated fetch p50 %.2f us exceeds single-node "
                 "%.2f us by more than 5%% + 2 us\n",
                 replicated.p50_us, single.p50_us);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace finelb::cluster

int main(int argc, char** argv) {
  finelb::init_log_level();
  std::string json_path;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strncmp(argv[i], "--log-level=", 12) == 0) {
      finelb::set_log_level(finelb::parse_log_level(argv[i] + 12));
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return 2;
    }
  }
  return finelb::cluster::run(json_path, smoke);
}
