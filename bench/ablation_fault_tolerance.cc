// Ablation (extension): fault tolerance of the flat architecture.
//
// The paper asserts its infrastructure "operates smoothly in the presence
// of transient failures" without ever inducing one. This harness does, in
// two phases:
//
//   A. Simulation — sweep per-message loss rates and compare polling(3)
//      against broadcast: mean response, failed-access fraction, injected
//      drops, and blind poll-round fallbacks.
//
//   B. Prototype — 16 real server nodes under symmetric UDP loss, with
//      k servers killed mid-run. Clients refresh their mapping from the
//      soft-state directory, blacklist timed-out servers, and dispatch
//      blind when a whole poll round is lost. The per-bucket timeline
//      yields a recovery time: the first post-kill bucket whose mean
//      response returns to 1.1x the pre-kill baseline and stays there.
//      Same seed => same fault schedule, so runs are comparable.
//
//   C. Prototype, replicated control plane — the 16-server cluster again,
//      directory replicated (sweep over replica counts) with the
//      lease-holding *leader* killed mid-run, simultaneously with one
//      server kill so mapping refresh actually matters during the
//      election. Reports the measured failover window (leader kill ->
//      next kLeaderElected instant) and the failed-access fraction across
//      that window — the ISSUE 6 acceptance number (< 1% at 3 replicas).
//
//   ablation_fault_tolerance [--requests=40000] [--seed=1] [--load=0.7]
//                            [--loss_sweep=0,0.05,0.1,0.2] [--loss=0.1]
//                            [--kills=2] [--skip_proto=0]
//                            [--replica_sweep=3,5] [--skip_ha=0]
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "cluster/experiment.h"
#include "common/flags.h"
#include "common/log.h"
#include "fault/fault.h"
#include "sim/config.h"
#include "workload/catalog.h"

using namespace finelb;

namespace {

void run_sim_phase(std::int64_t requests, std::uint64_t seed, double load,
                   const std::vector<double>& losses,
                   const Workload& workload) {
  bench::print_header(
      "Ablation: fault tolerance, phase A (simulation)",
      "16 servers, 6 clients, Poisson/Exp 50 ms, " +
          bench::Table::pct(load, 0) +
          " load; per-message loss swept; failed = no response within 2 s");
  bench::Table table(12);
  table.row({"loss", "policy", "mean_ms", "failed%", "drops", "fallbacks"});
  // Both policies at one loss rate share a derived seed (paired); the loss
  // sweep fans out across cores and prints in submission order.
  const std::vector<PolicyConfig> policies = {
      PolicyConfig::polling(3), PolicyConfig::broadcast(from_ms(100))};
  bench::SweepRunner<sim::SimResult> runner;
  for (std::size_t l = 0; l < losses.size(); ++l) {
    const double loss = losses[l];
    const std::uint64_t run_seed = bench::derive_seed(seed, l);
    for (const PolicyConfig& policy : policies) {
      runner.submit([&workload, policy, loss, load, requests, run_seed] {
        sim::SimConfig config;
        config.policy = policy;
        config.load = load;
        config.total_requests = requests;
        config.warmup_requests = requests / 10;
        config.faults.msg_loss_prob = loss;
        config.seed = run_seed;
        return run_cluster_sim(config, workload);
      });
    }
  }
  const auto results = runner.run();

  std::size_t next = 0;
  for (const double loss : losses) {
    for (const PolicyConfig& policy : policies) {
      const sim::SimResult& r = results[next++];
      table.row({bench::Table::pct(loss, 0), policy.describe(),
                 bench::Table::num(r.mean_response_ms(), 1),
                 bench::Table::pct(static_cast<double>(r.failed) /
                                       static_cast<double>(requests),
                                   2),
                 std::to_string(r.drops_injected),
                 std::to_string(r.poll_fallbacks)});
    }
  }
  std::printf(
      "\nExpected: failure fraction tracks the per-leg loss rate (a lost\n"
      "request or response fails the access); polling additionally rides\n"
      "out lost inquiries/replies via the backstop deadline (fallbacks).\n");
}

void run_proto_phase(std::uint64_t seed, double load, double loss, int kills) {
  const Workload workload = make_poisson_exp(0.005);  // 5 ms services
  cluster::PrototypeConfig config;
  config.servers = 16;
  config.clients = 6;
  config.policy = PolicyConfig::polling(3);
  config.load = load;
  config.total_requests = 18'000;
  config.per_request_overhead_sec = 300e-6;
  // Well above the ~30 ms p99.9 at this load, but short enough that a
  // lost-response retry doesn't dominate the retried access's latency.
  config.response_timeout = 250 * kMillisecond;
  // Every node carries an injector, so a datagram is rolled at the sender
  // AND the receiver; egress-only drop keeps the per-datagram loss at
  // exactly `loss` (symmetric_loss would compound to 1-(1-p)^2).
  config.fault.egress.drop_prob = loss;
  config.fault.seed = seed;
  config.max_access_retries = 3;
  config.publish_interval = 100 * kMillisecond;
  config.publish_ttl = 600 * kMillisecond;
  config.client_mapping_refresh = 200 * kMillisecond;
  config.blacklist_cooldown = kSecond;
  // Under ambient loss a single timeout is weak evidence of death; three in
  // a row essentially never happens to a healthy server (0.1^3 per leg) but
  // a corpse trips it immediately.
  config.blacklist_after = 3;
  config.timeline_bucket = kSecond;
  config.seed = seed;
  // Deterministic kill schedule: evenly spaced victims at ~1/3 of the
  // expected run (arrival rate ~= servers * load / 5 ms).
  const double expected_sec =
      static_cast<double>(config.total_requests) * 0.005 /
      (static_cast<double>(config.servers) * load);
  const SimTime kill_at = static_cast<SimTime>(expected_sec / 3.0 * 1e9);
  for (int k = 0; k < kills; ++k) {
    config.kills.push_back(
        {k * config.servers / std::max(kills, 1), kill_at});
  }

  bench::print_header(
      "Ablation: fault tolerance, phase B (prototype)",
      "16 servers, 6 clients, polling(3), " + bench::Table::pct(loss, 0) +
          " per-datagram UDP loss, " + std::to_string(kills) +
          " server(s) killed at ~1/3 of the run; ttl 600 ms, mapping "
          "refresh 200 ms, blacklist 1 s, 3 access retries");
  const cluster::PrototypeResult r = cluster::run_prototype(config, workload);

  bench::Table timeline_table(12);
  timeline_table.row({"second", "completed", "failed", "mean_ms"});
  for (std::size_t b = 0; b < r.clients.timeline.size(); ++b) {
    const auto& bucket = r.clients.timeline[b];
    timeline_table.row(
        {std::to_string(b), std::to_string(bucket.completed),
         std::to_string(bucket.failed),
         bucket.completed > 0
             ? bench::Table::num(bucket.sum_response_ms /
                                     static_cast<double>(bucket.completed),
                                 1)
             : "-"});
  }
  std::printf("\n");

  const auto& timeline = r.clients.timeline;
  const std::size_t kill_bucket = static_cast<std::size_t>(
      kill_at / config.timeline_bucket);
  // Pre-kill baseline from completed buckets before the kill (skip the
  // first: warmup and thread spin-up pollute it).
  double baseline_ms = 0.0;
  std::int64_t baseline_n = 0;
  for (std::size_t b = 1; b < std::min(kill_bucket, timeline.size()); ++b) {
    baseline_ms += timeline[b].sum_response_ms;
    baseline_n += timeline[b].completed;
  }
  baseline_ms = baseline_n > 0 ? baseline_ms / static_cast<double>(baseline_n)
                               : 0.0;

  // Recovery: time until the per-bucket mean response returns within 10%
  // of the pre-kill baseline and *stays* there — i.e. the end of the last
  // post-kill bucket violating the band. The baseline already carries the
  // ambient loss + retry latency, so this isolates the kill's effect.
  // Trailing drain buckets (arrivals stopped; what's left is retried
  // stragglers with inflated latency) must not count as violations: only
  // buckets carrying at least half the peak throughput are judged.
  std::int64_t peak_completed = 0;
  for (const auto& bucket : timeline) {
    peak_completed = std::max(peak_completed, bucket.completed);
  }
  const std::int64_t kMinBucketSamples = std::max<std::int64_t>(
      50, peak_completed / 2);
  std::ptrdiff_t last_bad = -1, last_substantial = -1;
  std::int64_t failed_post_recovery = 0;
  std::int64_t completed_post_recovery = 0;
  for (std::size_t b = kill_bucket; b < timeline.size(); ++b) {
    const auto& bucket = timeline[b];
    const double mean =
        bucket.completed > 0
            ? bucket.sum_response_ms / static_cast<double>(bucket.completed)
            : 0.0;
    if (bucket.completed >= kMinBucketSamples) {
      last_substantial = static_cast<std::ptrdiff_t>(b);
      if (baseline_ms > 0.0 && mean > 1.1 * baseline_ms) {
        last_bad = static_cast<std::ptrdiff_t>(b);
        failed_post_recovery = 0;
        completed_post_recovery = 0;
        continue;
      }
    }
    failed_post_recovery += bucket.failed;
    completed_post_recovery += bucket.completed;
  }
  double recovery_sec = -1.0;  // never recovered (or no baseline)
  if (baseline_ms > 0.0 && last_bad < last_substantial) {
    recovery_sec = static_cast<double>(last_bad + 1 -
                                       static_cast<std::ptrdiff_t>(
                                           kill_bucket)) *
                   to_sec(config.timeline_bucket);
    if (recovery_sec < 0.0) recovery_sec = 0.0;
  }

  bench::Table table(26);
  table.row({"accesses issued", std::to_string(r.clients.issued)});
  table.row({"completed", std::to_string(r.clients.completed)});
  table.row({"failed (timeout)", std::to_string(r.clients.response_timeouts)});
  table.row({"servers killed", std::to_string(r.servers_killed)});
  table.row({"baseline mean (ms)", bench::Table::num(baseline_ms, 1)});
  table.row({"recovery time (s)",
             recovery_sec >= 0 ? bench::Table::num(recovery_sec, 1)
                               : std::string("never")});
  const double post_fail_frac =
      completed_post_recovery + failed_post_recovery > 0
          ? static_cast<double>(failed_post_recovery) /
                static_cast<double>(completed_post_recovery +
                                    failed_post_recovery)
          : 0.0;
  table.row({"failed frac post-recovery", bench::Table::pct(post_fail_frac, 2)});
  table.row({"--- fault/recovery counters", ""});
  table.row({"datagrams dropped (inj)", std::to_string(r.faults.drops)});
  table.row({"duplicated (inj)", std::to_string(r.faults.duplicates)});
  table.row({"delayed (inj)", std::to_string(r.faults.delays)});
  table.row({"poll-round fallbacks", std::to_string(r.clients.fallback_dispatches)});
  table.row({"access retries", std::to_string(r.clients.access_retries)});
  table.row({"blacklist insertions", std::to_string(r.clients.blacklist_insertions)});
  table.row({"blacklist hits", std::to_string(r.clients.blacklist_hits)});
  table.row({"mapping refreshes", std::to_string(r.clients.mapping_refreshes)});
  table.row({"refresh failures", std::to_string(r.clients.refresh_failures)});
  table.row({"snapshot retries", std::to_string(r.clients.snapshot_retries)});

  std::printf(
      "\nExpected: a short failure burst right after the kill, then the ttl\n"
      "expires the dead entries, mapping refreshes propagate them, and the\n"
      "failed-access fraction drops under 5%% for the rest of the run.\n");
}

void run_leader_kill_phase(std::uint64_t seed, double load,
                           const std::vector<std::int64_t>& replica_counts) {
  const Workload workload = make_poisson_exp(0.005);  // 5 ms services
  bench::print_header(
      "Ablation: fault tolerance, phase C (replicated control plane)",
      "16 servers, 6 clients, polling(3); directory leader + one server "
      "killed together at ~1/3 of the run; ttl 600 ms, mapping refresh "
      "200 ms; window = leader kill -> next election instant");
  bench::Table table(14);
  table.row({"replicas", "elections", "window_ms", "fail_window%",
             "fail_total%", "completed"});

  for (std::size_t i = 0; i < replica_counts.size(); ++i) {
    const int replicas = static_cast<int>(replica_counts[i]);
    cluster::PrototypeConfig config;
    config.servers = 16;
    config.clients = 6;
    config.policy = PolicyConfig::polling(3);
    config.load = load;
    config.total_requests = 12'000;
    config.per_request_overhead_sec = 300e-6;
    config.response_timeout = 250 * kMillisecond;
    config.max_access_retries = 3;
    config.publish_interval = 100 * kMillisecond;
    config.publish_ttl = 600 * kMillisecond;
    config.client_mapping_refresh = 200 * kMillisecond;
    config.blacklist_cooldown = kSecond;
    config.timeline_bucket = 500 * kMillisecond;
    config.directory_replicas = replicas;
    config.trace_sample_period = 64;  // election instants need a live ring
    config.collect_traces = true;
    config.seed = bench::derive_seed(seed, 100 + i);

    // Kill the directory leader and one server at the same instant (~1/3
    // of the expected run): the election and the mapping refresh that
    // routes around the dead server must overlap — the worst case for a
    // control plane that clients depend on for recovery.
    const double expected_sec =
        static_cast<double>(config.total_requests) * 0.005 /
        (static_cast<double>(config.servers) * load);
    const SimTime kill_at = static_cast<SimTime>(expected_sec / 3.0 * 1e9);
    config.directory_leader_kills = {kill_at};
    config.kills = {{1, kill_at}};

    const cluster::PrototypeResult r =
        cluster::run_prototype(config, workload);

    // Failed-access fraction across the failover window: the buckets
    // overlapping [kill, kill + window + one mapping refresh] — the span
    // where clients may be serving from a stale snapshot.
    const SimDuration window =
        r.directory_failover_window + config.client_mapping_refresh;
    const std::size_t first_bucket =
        static_cast<std::size_t>(kill_at / config.timeline_bucket);
    const std::size_t last_bucket = static_cast<std::size_t>(
        (kill_at + window) / config.timeline_bucket);
    std::int64_t window_failed = 0;
    std::int64_t window_total = 0;
    for (std::size_t b = first_bucket;
         b <= last_bucket && b < r.clients.timeline.size(); ++b) {
      window_failed += r.clients.timeline[b].failed;
      window_total +=
          r.clients.timeline[b].failed + r.clients.timeline[b].completed;
    }
    const double window_frac =
        window_total > 0 ? static_cast<double>(window_failed) /
                               static_cast<double>(window_total)
                         : 0.0;
    const double total_frac =
        r.clients.issued > 0
            ? static_cast<double>(r.clients.response_timeouts) /
                  static_cast<double>(r.clients.issued)
            : 0.0;
    table.row({std::to_string(replicas),
               std::to_string(r.directory_elections),
               bench::Table::num(to_ms(r.directory_failover_window), 0),
               bench::Table::pct(window_frac, 2),
               bench::Table::pct(total_frac, 2),
               std::to_string(r.clients.completed)});
  }
  std::printf(
      "\nExpected: re-election inside the ~200 ms election timeout; the\n"
      "failed-access fraction across the failover window stays under 1%%\n"
      "at 3 replicas — clients keep dispatching from their last snapshot\n"
      "while the directory elects, then refresh and route around the dead\n"
      "server as usual.\n");
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags = Flags::parse(argc, argv);
  init_log_level(flags);
  const std::int64_t requests = flags.get_int("requests", 40'000);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const double load = flags.get_double("load", 0.7);
  const auto losses =
      flags.get_double_list("loss_sweep", {0.0, 0.05, 0.1, 0.2});
  const double loss = flags.get_double("loss", 0.1);
  const int kills = static_cast<int>(flags.get_int("kills", 2));
  const bool skip_proto = flags.get_int("skip_proto", 0) != 0;
  const bool skip_ha = flags.get_int("skip_ha", 0) != 0;
  const auto replica_sweep = flags.get_int_list("replica_sweep", {3, 5});
  // The prototype run loses 2/16 of its capacity mid-run AND re-executes
  // requests whose response was lost, so its sustainable load is lower
  // than the simulation sweep's.
  const double proto_load = flags.get_double("proto_load", 0.6);

  run_sim_phase(requests, seed, load, losses, make_poisson_exp(0.050));
  if (!skip_proto) run_proto_phase(seed, proto_load, loss, kills);
  if (!skip_ha) run_leader_kill_phase(seed, proto_load, replica_sweep);
  return 0;
}
