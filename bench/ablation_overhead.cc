// Ablation: per-poll overhead sensitivity (the Figure 4 vs Figure 6 gap).
//
// The paper's simulator charges nothing for polls, so poll size 8 looks
// fine in Figure 4; its prototype shows size 8 losing (Figure 6). This
// ablation closes the loop inside the simulator: it sweeps a per-poll
// server CPU charge (scaled by queue length, modelling busy servers
// answering late) and reports where the poll-size ordering inverts — the
// §5 discussion of how faster networks (VIA) would shift this crossover.
//
//   ablation_overhead [--requests=120000] [--seed=1] [--load=0.9]
//                     [--reply-cpu-us=0,400,1600,6400]
#include <cstdio>

#include "bench_util.h"
#include "common/flags.h"
#include "common/log.h"
#include "sim/config.h"
#include "workload/catalog.h"

using namespace finelb;

int main(int argc, char** argv) {
  const Flags flags = Flags::parse(argc, argv);
  init_log_level(flags);
  const std::int64_t requests = flags.get_int("requests", 120'000);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const double load = flags.get_double("load", 0.9);
  const auto reply_cpu_us =
      flags.get_double_list("reply-cpu-us", {0, 400, 1600, 6400});

  const Workload workload = make_fine_grain(100'000, seed + 20);

  bench::print_header(
      "Ablation: poll-reply overhead vs poll size (Fine-Grain trace)",
      "16 servers, " + bench::Table::pct(load, 0) +
          " busy; reply delayed by cpu_us x (1 + queue length); mean "
          "response (ms)");
  bench::Table table(13);
  table.row({"cpu(us)", "random", "poll(2)", "poll(3)", "poll(8)"});

  // Policies within one overhead row share a derived seed (paired across
  // the poll-size comparison); the grid fans out across cores.
  const std::vector<PolicyConfig> policies = {
      PolicyConfig::random(), PolicyConfig::polling(2),
      PolicyConfig::polling(3), PolicyConfig::polling(8)};
  bench::SweepRunner<double> runner;
  for (std::size_t c = 0; c < reply_cpu_us.size(); ++c) {
    const double cpu = reply_cpu_us[c];
    const std::uint64_t run_seed = bench::derive_seed(seed, c);
    for (const PolicyConfig& policy : policies) {
      runner.submit([&workload, policy, cpu, load, requests, run_seed] {
        sim::SimConfig config;
        config.policy = policy;
        config.load = load;
        config.network.poll_reply_cpu = from_us(cpu);
        config.network.poll_reply_scales_with_queue = true;
        config.total_requests = requests;
        config.warmup_requests = requests / 10;
        config.seed = run_seed;
        return run_cluster_sim(config, workload).mean_response_ms();
      });
    }
  }
  const std::vector<double> results = runner.run();

  std::size_t next = 0;
  for (const double cpu : reply_cpu_us) {
    std::vector<std::string> row = {bench::Table::num(cpu, 0)};
    for (std::size_t p = 0; p < policies.size(); ++p) {
      row.push_back(bench::Table::num(results[next++], 1));
    }
    table.row(row);
  }
  std::printf(
      "\nExpected: at 0 overhead poll(8) <= poll(2); as the per-reply cost\n"
      "grows, poll(8) degrades first (it waits for the slowest of eight\n"
      "replies) and eventually loses to poll(2) - the Figure 6 effect.\n");
  return 0;
}
