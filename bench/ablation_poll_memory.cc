// Ablation (extension): memory-augmented random polling.
//
// Mitzenmacher's "How Useful Is Old Information?" (cited in the paper's
// related work) suggests remembering the previous round's winner as a free
// extra candidate. This sweep quantifies the effect across poll sizes and
// loads: memory is worth roughly one extra poll at small d, and nothing
// once d is large.
//
//   ablation_poll_memory [--requests=120000] [--seed=1]
//                        [--loads=0.7,0.9] [--poll-sizes=1,2,3]
#include <cstdio>

#include "bench_util.h"
#include "common/flags.h"
#include "common/log.h"
#include "sim/config.h"
#include "workload/catalog.h"

using namespace finelb;

int main(int argc, char** argv) {
  const Flags flags = Flags::parse(argc, argv);
  init_log_level(flags);
  const std::int64_t requests = flags.get_int("requests", 120'000);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const auto loads = flags.get_double_list("loads", {0.7, 0.9});
  const auto poll_sizes = flags.get_int_list("poll-sizes", {1, 2, 3});

  const Workload workload = make_poisson_exp(0.050);

  // (plain, with-memory) pairs per (load, poll size) share a derived seed;
  // the grid fans out across cores and prints in submission order.
  bench::SweepRunner<double> runner;
  std::uint64_t point = 0;
  for (const double load : loads) {
    for (const auto d : poll_sizes) {
      const std::uint64_t run_seed = bench::derive_seed(seed, point++);
      for (const bool memory : {false, true}) {
        runner.submit([&workload, d, memory, load, requests, run_seed] {
          sim::SimConfig config;
          config.policy = PolicyConfig::polling(static_cast<int>(d));
          config.policy.poll_memory = memory;
          config.load = load;
          config.total_requests = requests;
          config.warmup_requests = requests / 10;
          config.seed = run_seed;
          return run_cluster_sim(config, workload).mean_response_ms();
        });
      }
    }
  }
  const std::vector<double> results = runner.run();

  std::size_t next = 0;
  for (const double load : loads) {
    bench::print_header(
        "Ablation: polling with memory, " + bench::Table::pct(load, 0) +
            " busy (extension)",
        "16 servers, Poisson/Exp 50 ms; mean response (ms)");
    bench::Table table(14);
    table.row({"poll size", "plain", "with memory", "memory gain"});
    for (const auto d : poll_sizes) {
      const double plain = results[next++];
      const double with_memory = results[next++];
      table.row({std::to_string(d), bench::Table::num(plain, 1),
                 bench::Table::num(with_memory, 1),
                 bench::Table::pct((plain - with_memory) / plain)});
    }
  }
  return 0;
}
