// Table 2 reproduction: performance improvement of discarding
// slow-responding polls, poll size 3, servers 90% busy.
//
// For each workload the harness runs the prototype twice - basic polling(3)
// and polling(3) with the 1 ms discard - and reports mean response time,
// mean polling time, and the overall / polling-time-excluded improvements,
// matching the Table 2 columns. With --profile it also reports the §3.2
// poll-latency profile (fractions of polls slower than 1 ms / 2 ms).
//
//   table2_discard [--requests=2500] [--seed=1] [--load=0.9]
//                  [--poll-size=3] [--discard-ms=1] [--profile]
#include <cstdio>

#include "bench_util.h"
#include "cluster/experiment.h"
#include "common/flags.h"
#include "common/log.h"
#include "workload/catalog.h"

using namespace finelb;

int main(int argc, char** argv) {
  const Flags flags = Flags::parse(argc, argv);
  init_log_level(flags);
  const std::int64_t requests = flags.get_int("requests", 6000);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const double load = flags.get_double("load", 0.9);
  const int poll_size = static_cast<int>(flags.get_int("poll-size", 3));
  const double discard_ms = flags.get_double("discard-ms", 1.0);
  const bool profile = flags.get_bool("profile", true);

  const std::vector<std::pair<std::string, Workload>> workloads = {
      {"Medium-Grain", make_medium_grain(50'000, seed + 10)},
      {"Poisson/Exp-50ms", make_poisson_exp(0.050)},
      {"Fine-Grain", make_fine_grain(50'000, seed + 20)},
  };

  bench::print_header(
      "Table 2: improvement of discarding slow-responding polls",
      "prototype, 16 servers, poll size " + std::to_string(poll_size) +
          ", servers " + bench::Table::pct(load, 0) + " busy, discard at " +
          bench::Table::num(discard_ms, 1) + " ms; " +
          std::to_string(requests) + " requests per cell");
  bench::Table table(15);
  table.row({"Workload", "orig(ms)", "orig poll", "disc(ms)", "disc poll",
             "improve", "excl.poll"});

  for (const auto& [name, workload] : workloads) {
    cluster::PrototypeConfig config;
    config.policy = PolicyConfig::polling(poll_size);
    config.load = load;
    config.total_requests = requests;
    config.seed = seed;
    const auto original = cluster::run_prototype(config, workload);

    config.policy = PolicyConfig::polling(poll_size, from_ms(discard_ms));
    const auto optimized = cluster::run_prototype(config, workload);

    const double orig_ms = original.clients.response_ms.mean();
    const double opt_ms = optimized.clients.response_ms.mean();
    const double orig_poll = original.clients.poll_time_ms.mean();
    const double opt_poll = optimized.clients.poll_time_ms.mean();
    const double improvement = (orig_ms - opt_ms) / orig_ms;
    // "Improvement excluding polling time": compare response times with the
    // polling-time component removed (the paper's second column).
    const double excl =
        ((orig_ms - orig_poll) - (opt_ms - opt_poll)) / (orig_ms - orig_poll);
    table.row({name, bench::Table::num(orig_ms, 1),
               bench::Table::num(orig_poll, 2),
               bench::Table::num(opt_ms, 1), bench::Table::num(opt_poll, 2),
               bench::Table::pct(improvement), bench::Table::pct(excl)});

    if (profile) {
      std::printf(
          "  %s poll-latency profile (basic polling): >1ms %.1f%%  >2ms "
          "%.1f%%  p50 %.2fms  p99 %.2fms  (paper: 8.1%% / 5.6%%)\n",
          name.c_str(),
          original.clients.poll_rtt_ms.fraction_above(1.0) * 100.0,
          original.clients.poll_rtt_ms.fraction_above(2.0) * 100.0,
          original.clients.poll_rtt_ms.p50(),
          original.clients.poll_rtt_ms.p99());
    }
  }
  std::printf(
      "\nPaper: Medium-Grain -0.4%% (slight loss), Poisson/Exp +3.2%%,\n"
      "Fine-Grain +8.3%%; polling time drops from ~2.6-2.7 ms to ~1.0-1.1 "
      "ms.\n");
  return 0;
}
