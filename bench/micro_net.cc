// Micro-benchmarks for the networking substrate (google-benchmark):
// message codecs, loopback datagram round trips, and poller wakeups.
#include <benchmark/benchmark.h>

#include <array>

#include "net/message.h"
#include "net/poller.h"
#include "net/socket.h"

namespace finelb::net {
namespace {

void BM_EncodeLoadInquiry(benchmark::State& state) {
  LoadInquiry msg;
  msg.seq = 12345;
  for (auto _ : state) {
    benchmark::DoNotOptimize(msg.encode());
  }
}
BENCHMARK(BM_EncodeLoadInquiry);

void BM_DecodeLoadReply(benchmark::State& state) {
  LoadReply msg;
  msg.seq = 12345;
  msg.queue_length = 7;
  const auto bytes = msg.encode();
  for (auto _ : state) {
    benchmark::DoNotOptimize(LoadReply::decode(bytes));
  }
}
BENCHMARK(BM_DecodeLoadReply);

void BM_EncodeSnapshotReply16(benchmark::State& state) {
  SnapshotReply reply;
  for (int i = 0; i < 16; ++i) {
    Publish p;
    p.service = "experiment";
    p.server = i;
    p.service_port = static_cast<std::uint16_t>(40000 + i);
    p.load_port = static_cast<std::uint16_t>(41000 + i);
    p.ttl_ms = 2000;
    reply.entries.push_back(p);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(reply.encode());
  }
}
BENCHMARK(BM_EncodeSnapshotReply16);

void BM_LoopbackDatagramRoundTrip(benchmark::State& state) {
  UdpSocket server;
  UdpSocket client;
  client.connect(server.local_address());
  Poller client_poller;
  client_poller.add(client.fd(), 0);
  Poller server_poller;
  server_poller.add(server.fd(), 0);
  LoadInquiry inquiry;
  std::array<std::uint8_t, 64> buf{};
  std::uint64_t seq = 0;
  for (auto _ : state) {
    inquiry.seq = ++seq;
    client.send(inquiry.encode());
    while (true) {
      server_poller.wait(kSecond);
      if (auto dgram = server.recv_from(buf)) {
        LoadReply reply;
        reply.seq = seq;
        reply.queue_length = 1;
        server.send_to(reply.encode(), dgram->from);
        break;
      }
    }
    while (true) {
      client_poller.wait(kSecond);
      if (client.recv(buf)) break;
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LoopbackDatagramRoundTrip)->Unit(benchmark::kMicrosecond);

void BM_PollerWaitReady(benchmark::State& state) {
  UdpSocket a;
  UdpSocket sender;
  Poller poller;
  poller.add(a.fd(), 0);
  const std::array<std::uint8_t, 1> payload = {1};
  std::array<std::uint8_t, 16> buf{};
  for (auto _ : state) {
    sender.send_to(payload, a.local_address());
    benchmark::DoNotOptimize(poller.wait(kSecond));
    a.recv_from(buf);
  }
}
BENCHMARK(BM_PollerWaitReady)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace finelb::net

BENCHMARK_MAIN();
