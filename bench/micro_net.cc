// Micro-benchmarks for the networking substrate (google-benchmark):
// message codecs, loopback datagram round trips, and poller wakeups —
// plus the networking half of the perf-trajectory harness.
//
//   micro_net                      # full google-benchmark suite
//   micro_net --json=BENCH_net.json [--smoke]
//
// With --json (or --smoke) the binary skips google-benchmark and measures
// the trajectory metrics instead: one-way loopback datagram throughput via
// the single-datagram path (send_to/recv_from) and the batched path
// (send_batch/recv_batch, one sendmmsg/recvmmsg per burst — the pattern the
// server recv loops and client drains use), and the p50/p99 round-trip time
// of a load-inquiry poll over connected sockets. JSON goes to the given
// path; --smoke shrinks the workload to ctest scale (label: bench-smoke).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "net/message.h"
#include "net/poller.h"
#include "net/socket.h"

namespace finelb::net {
namespace {

void BM_EncodeLoadInquiry(benchmark::State& state) {
  LoadInquiry msg;
  msg.seq = 12345;
  for (auto _ : state) {
    benchmark::DoNotOptimize(msg.encode());
  }
}
BENCHMARK(BM_EncodeLoadInquiry);

void BM_DecodeLoadReply(benchmark::State& state) {
  LoadReply msg;
  msg.seq = 12345;
  msg.queue_length = 7;
  const auto bytes = msg.encode();
  for (auto _ : state) {
    benchmark::DoNotOptimize(LoadReply::decode(bytes));
  }
}
BENCHMARK(BM_DecodeLoadReply);

void BM_EncodeSnapshotReply16(benchmark::State& state) {
  SnapshotReply reply;
  for (int i = 0; i < 16; ++i) {
    Publish p;
    p.service = "experiment";
    p.server = i;
    p.service_port = static_cast<std::uint16_t>(40000 + i);
    p.load_port = static_cast<std::uint16_t>(41000 + i);
    p.ttl_ms = 2000;
    reply.entries.push_back(p);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(reply.encode());
  }
}
BENCHMARK(BM_EncodeSnapshotReply16);

void BM_LoopbackDatagramRoundTrip(benchmark::State& state) {
  UdpSocket server;
  UdpSocket client;
  client.connect(server.local_address());
  Poller client_poller;
  client_poller.add(client.fd(), 0);
  Poller server_poller;
  server_poller.add(server.fd(), 0);
  LoadInquiry inquiry;
  std::array<std::uint8_t, 64> buf{};
  std::uint64_t seq = 0;
  for (auto _ : state) {
    inquiry.seq = ++seq;
    client.send(inquiry.encode());
    while (true) {
      server_poller.wait(kSecond);
      if (auto dgram = server.recv_from(buf)) {
        LoadReply reply;
        reply.seq = seq;
        reply.queue_length = 1;
        server.send_to(reply.encode(), dgram->from);
        break;
      }
    }
    while (true) {
      client_poller.wait(kSecond);
      if (client.recv(buf)) break;
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LoopbackDatagramRoundTrip)->Unit(benchmark::kMicrosecond);

void BM_PollerWaitReady(benchmark::State& state) {
  UdpSocket a;
  UdpSocket sender;
  Poller poller;
  poller.add(a.fd(), 0);
  const std::array<std::uint8_t, 1> payload = {1};
  std::array<std::uint8_t, 16> buf{};
  for (auto _ : state) {
    sender.send_to(payload, a.local_address());
    benchmark::DoNotOptimize(poller.wait(kSecond));
    a.recv_from(buf);
  }
}
BENCHMARK(BM_PollerWaitReady)->Unit(benchmark::kMicrosecond);

void BM_LoopbackBurstBatched(benchmark::State& state) {
  // Burst of 32 through sendmmsg/recvmmsg — the server recv-loop pattern.
  UdpSocket sender;
  UdpSocket receiver;
  receiver.set_buffer_sizes(1 << 21);
  constexpr std::size_t kBurst = 32;
  DatagramBatch out(kBurst, 64);
  DatagramBatch in(kBurst, 64);
  const std::array<std::uint8_t, 16> payload{};
  std::int64_t moved = 0;
  for (auto _ : state) {
    out.clear();
    for (std::size_t i = 0; i < kBurst; ++i) {
      out.append(payload, receiver.local_address());
    }
    const std::size_t sent = sender.send_batch(out);
    std::size_t got = 0;
    while (got < sent) {
      const std::size_t n = receiver.recv_batch(in);
      if (n == 0) break;  // kernel dropped the tail; count what arrived
      got += n;
    }
    moved += static_cast<std::int64_t>(got);
  }
  state.SetItemsProcessed(moved);
}
BENCHMARK(BM_LoopbackBurstBatched)->Unit(benchmark::kMicrosecond);

// ---------------------------------------------------------------------------
// Perf-trajectory harness (--json / --smoke).

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// One-way loopback throughput: bursts of 32 datagrams, sender → receiver,
/// drained each burst so the socket buffer never overflows. `batched`
/// selects sendmmsg/recvmmsg vs one syscall per datagram.
double measure_oneway_datagrams_per_sec(std::int64_t total, bool batched) {
  UdpSocket sender;
  UdpSocket receiver;
  receiver.set_buffer_sizes(1 << 21);
  constexpr std::size_t kBurst = 32;
  const std::array<std::uint8_t, 16> payload{};
  DatagramBatch out(kBurst, 64);
  DatagramBatch in(kBurst, 64);
  std::array<std::uint8_t, 64> buf{};
  const Address dest = receiver.local_address();

  std::int64_t moved = 0;
  const auto start = std::chrono::steady_clock::now();
  while (moved < total) {
    std::size_t sent = 0;
    if (batched) {
      out.clear();
      for (std::size_t i = 0; i < kBurst; ++i) out.append(payload, dest);
      sent = sender.send_batch(out);
    } else {
      for (std::size_t i = 0; i < kBurst; ++i) {
        if (sender.send_to(payload, dest)) ++sent;
      }
    }
    std::size_t got = 0;
    while (got < sent) {
      if (batched) {
        const std::size_t n = receiver.recv_batch(in);
        if (n == 0) break;
        got += n;
      } else {
        if (!receiver.recv_from(buf)) break;
        ++got;
      }
    }
    // Loopback doesn't lose datagrams below the buffer size, but count
    // only what actually moved end to end.
    moved += static_cast<std::int64_t>(got);
    if (got == 0) break;  // defensive: avoid spinning forever
  }
  const double elapsed = seconds_since(start);
  return elapsed > 0 ? static_cast<double>(moved) / elapsed : 0.0;
}

struct RttStats {
  int rounds = 0;
  double p50_us = 0.0;
  double p99_us = 0.0;
};

/// Round-trip time of a load-inquiry poll (connected client socket, server
/// answering from qlen) — the prototype's polling-agent critical path.
RttStats measure_poll_rtt(int rounds) {
  UdpSocket server;
  UdpSocket client;
  client.connect(server.local_address());
  Poller client_poller;
  client_poller.add(client.fd(), 0);
  Poller server_poller;
  server_poller.add(server.fd(), 0);
  std::array<std::uint8_t, 64> buf{};
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(rounds));
  for (int r = 0; r < rounds; ++r) {
    LoadInquiry inquiry;
    inquiry.seq = static_cast<std::uint64_t>(r) + 1;
    const auto start = std::chrono::steady_clock::now();
    client.send(inquiry.encode());
    while (true) {
      server_poller.wait(kSecond);
      if (auto dgram = server.recv_from(buf)) {
        LoadReply reply;
        reply.seq = inquiry.seq;
        reply.queue_length = 1;
        server.send_to(reply.encode(), dgram->from);
        break;
      }
    }
    while (true) {
      client_poller.wait(kSecond);
      if (client.recv(buf)) break;
    }
    samples.push_back(seconds_since(start) * 1e6);
  }
  RttStats stats;
  stats.rounds = rounds;
  std::sort(samples.begin(), samples.end());
  const auto at = [&](double q) {
    const std::size_t i = std::min(
        samples.size() - 1,
        static_cast<std::size_t>(q * static_cast<double>(samples.size())));
    return samples[i];
  };
  stats.p50_us = at(0.50);
  stats.p99_us = at(0.99);
  return stats;
}

int run_trajectory(const std::string& json_path, bool smoke) {
  const std::int64_t total = smoke ? 100'000 : 1'000'000;
  const int rounds = smoke ? 2'000 : 20'000;
  // Best of 2 passes each: loopback throughput shares the box with every
  // other process, and noise only ever subtracts.
  double unbatched = 0.0;
  double batched = 0.0;
  for (int pass = 0; pass < 2; ++pass) {
    unbatched =
        std::max(unbatched, measure_oneway_datagrams_per_sec(total, false));
    batched =
        std::max(batched, measure_oneway_datagrams_per_sec(total, true));
  }
  const RttStats rtt = measure_poll_rtt(rounds);

  std::printf("one-way loopback: %.0f dgrams/sec single, %.0f batched "
              "(x%.2f)\n",
              unbatched, batched, batched / unbatched);
  std::printf("poll rtt: p50 %.1f us, p99 %.1f us over %d rounds\n",
              rtt.p50_us, rtt.p99_us, rtt.rounds);

  if (!json_path.empty()) {
    std::FILE* out = std::fopen(json_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(out, "{\n  \"bench\": \"net\",\n  \"smoke\": %s,\n",
                 smoke ? "true" : "false");
    std::fprintf(out, "  \"oneway\": {\n");
    std::fprintf(out, "    \"datagrams\": %lld,\n",
                 static_cast<long long>(total));
    std::fprintf(out, "    \"unbatched_per_sec\": %.0f,\n", unbatched);
    std::fprintf(out, "    \"batched_per_sec\": %.0f,\n", batched);
    std::fprintf(out, "    \"batch_speedup\": %.3f\n",
                 unbatched > 0 ? batched / unbatched : 0.0);
    std::fprintf(out, "  },\n");
    std::fprintf(out, "  \"poll_rtt_us\": {\n");
    std::fprintf(out, "    \"rounds\": %d,\n", rtt.rounds);
    std::fprintf(out, "    \"p50\": %.2f,\n", rtt.p50_us);
    std::fprintf(out, "    \"p99\": %.2f\n", rtt.p99_us);
    std::fprintf(out, "  }\n}\n");
    std::fclose(out);
  }
  return 0;
}

}  // namespace
}  // namespace finelb::net

int main(int argc, char** argv) {
  std::string json_path;
  bool smoke = false;
  std::vector<char*> passthrough;
  passthrough.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  if (!json_path.empty() || smoke) {
    return finelb::net::run_trajectory(json_path, smoke);
  }
  int pargc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&pargc, passthrough.data());
  if (benchmark::ReportUnrecognizedArguments(pargc, passthrough.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
