// Micro-benchmarks for the networking substrate (google-benchmark):
// message codecs, loopback datagram round trips, and poller wakeups —
// plus the networking half of the perf-trajectory harness.
//
//   micro_net                      # full google-benchmark suite
//   micro_net --json=BENCH_net.json [--smoke]
//   micro_net --telemetry-json=BENCH_telemetry.json [--smoke]
//
// With --json (or --smoke) the binary skips google-benchmark and measures
// the trajectory metrics instead: one-way loopback datagram throughput via
// the single-datagram path (send_to/recv_from) and the batched path
// (send_batch/recv_batch, one sendmmsg/recvmmsg per burst — the pattern the
// server recv loops and client drains use), the p50/p99 round-trip time
// of a load-inquiry poll over connected sockets, the steady-state
// allocations per service access of a real client/server pair (operator-new
// hook, marginal N-vs-2N measurement), and contended directory snapshot
// read throughput. JSON goes to the given path; --smoke shrinks the
// workload to ctest scale (label: bench-smoke) and FAILS if the steady
// state allocates per access.
//
// With --telemetry-json the binary measures the telemetry subsystem's
// hot-path cost instead: poll RTT p50/p99 bare vs instrumented (counter +
// histogram per round) and the marginal allocs/access with lifecycle
// tracing sampling every 8th access. Under --smoke it FAILS if telemetry
// allocates per access or inflates poll RTT p50 by more than 5%.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "cluster/client_node.h"
#include "cluster/directory.h"
#include "cluster/server_node.h"
#include "common/log.h"
#include "core/policy.h"
#include "net/clock.h"
#include "net/message.h"
#include "net/poller.h"
#include "net/socket.h"
#include "telemetry/metrics.h"
#include "workload/workload.h"

// ---------------------------------------------------------------------------
// Allocation counting: global operator new/delete overrides.
//
// Every heap allocation in the process bumps a global atomic and a
// thread-local counter. The trajectory harness uses the thread-local one to
// attribute allocations to the client event loop (which runs on the main
// thread) and the global-minus-local difference to the server threads. The
// counters are always on — an uncontended relaxed fetch_add is noise next
// to malloc itself — so the google-benchmark codec numbers include the
// (identical) overhead on both legacy and hot paths.

namespace alloc_hook {
std::atomic<std::int64_t> global_count{0};
thread_local std::int64_t thread_count = 0;

std::int64_t global() { return global_count.load(std::memory_order_relaxed); }
std::int64_t local() { return thread_count; }
}  // namespace alloc_hook

namespace {
void* counted_alloc(std::size_t size) {
  alloc_hook::global_count.fetch_add(1, std::memory_order_relaxed);
  ++alloc_hook::thread_count;
  void* p = std::malloc(size > 0 ? size : 1);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* counted_aligned_alloc(std::size_t size, std::size_t align) {
  alloc_hook::global_count.fetch_add(1, std::memory_order_relaxed);
  ++alloc_hook::thread_count;
  void* p = nullptr;
  if (posix_memalign(&p, align < sizeof(void*) ? sizeof(void*) : align,
                     size > 0 ? size : 1) != 0) {
    throw std::bad_alloc();
  }
  return p;
}
}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, std::align_val_t al) {
  return counted_aligned_alloc(size, static_cast<std::size_t>(al));
}
void* operator new[](std::size_t size, std::align_val_t al) {
  return counted_aligned_alloc(size, static_cast<std::size_t>(al));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace finelb::net {
namespace {

void BM_EncodeLoadInquiry(benchmark::State& state) {
  LoadInquiry msg;
  msg.seq = 12345;
  for (auto _ : state) {
    benchmark::DoNotOptimize(msg.encode());
  }
}
BENCHMARK(BM_EncodeLoadInquiry);

void BM_DecodeLoadReply(benchmark::State& state) {
  LoadReply msg;
  msg.seq = 12345;
  msg.queue_length = 7;
  const auto bytes = msg.encode();
  for (auto _ : state) {
    benchmark::DoNotOptimize(LoadReply::decode(bytes));
  }
}
BENCHMARK(BM_DecodeLoadReply);

void BM_EncodeSnapshotReply16(benchmark::State& state) {
  SnapshotReply reply;
  for (int i = 0; i < 16; ++i) {
    Publish p;
    p.service = "experiment";
    p.server = i;
    p.service_port = static_cast<std::uint16_t>(40000 + i);
    p.load_port = static_cast<std::uint16_t>(41000 + i);
    p.ttl_ms = 2000;
    reply.entries.push_back(p);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(reply.encode());
  }
}
BENCHMARK(BM_EncodeSnapshotReply16);

void BM_EncodeIntoLoadInquiry(benchmark::State& state) {
  // Hot-path counterpart of BM_EncodeLoadInquiry: stack buffer, no vector.
  LoadInquiry msg;
  msg.seq = 12345;
  std::array<std::uint8_t, kMaxFixedMsgSize> buf;
  for (auto _ : state) {
    benchmark::DoNotOptimize(msg.encode_into(buf));
    benchmark::DoNotOptimize(buf);
  }
}
BENCHMARK(BM_EncodeIntoLoadInquiry);

void BM_TryDecodeLoadReply(benchmark::State& state) {
  LoadReply msg;
  msg.seq = 12345;
  msg.queue_length = 7;
  const auto bytes = msg.encode();
  LoadReply out;
  for (auto _ : state) {
    benchmark::DoNotOptimize(LoadReply::try_decode(bytes, out));
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_TryDecodeLoadReply);

void BM_MessageEncodeDecode(benchmark::State& state) {
  // Full wire round trip on the allocation-free surfaces: a ServiceRequest
  // encoded into a stack buffer and decoded back, plus a 16-entry
  // SnapshotReply through a reused heap buffer (arg 0 selects which).
  const bool snapshot = state.range(0) != 0;
  if (!snapshot) {
    ServiceRequest request;
    request.request_id = 0x0123456789abcdefULL;
    request.service_us = 250;
    request.partition = 3;
    std::array<std::uint8_t, kMaxFixedMsgSize> buf;
    ServiceRequest out;
    for (auto _ : state) {
      const std::size_t n = request.encode_into(buf);
      benchmark::DoNotOptimize(
          ServiceRequest::try_decode({buf.data(), n}, out));
      benchmark::DoNotOptimize(out);
    }
  } else {
    SnapshotReply reply;
    for (int i = 0; i < 16; ++i) {
      Publish p;
      p.service = "experiment";
      p.server = i;
      p.service_port = static_cast<std::uint16_t>(40000 + i);
      p.load_port = static_cast<std::uint16_t>(41000 + i);
      p.ttl_ms = 2000;
      reply.entries.push_back(p);
    }
    std::vector<std::uint8_t> buf(reply.encoded_size());
    SnapshotReply out;
    for (auto _ : state) {
      const std::size_t n = reply.encode_into(buf);
      benchmark::DoNotOptimize(
          SnapshotReply::try_decode({buf.data(), n}, out));
      benchmark::DoNotOptimize(out);
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MessageEncodeDecode)->Arg(0)->Arg(1);

void BM_LoopbackDatagramRoundTrip(benchmark::State& state) {
  UdpSocket server;
  UdpSocket client;
  client.connect(server.local_address());
  Poller client_poller;
  client_poller.add(client.fd(), 0);
  Poller server_poller;
  server_poller.add(server.fd(), 0);
  LoadInquiry inquiry;
  std::array<std::uint8_t, 64> buf{};
  std::uint64_t seq = 0;
  for (auto _ : state) {
    inquiry.seq = ++seq;
    client.send(inquiry.encode());
    while (true) {
      server_poller.wait(kSecond);
      if (auto dgram = server.recv_from(buf)) {
        LoadReply reply;
        reply.seq = seq;
        reply.queue_length = 1;
        server.send_to(reply.encode(), dgram->from);
        break;
      }
    }
    while (true) {
      client_poller.wait(kSecond);
      if (client.recv(buf)) break;
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LoopbackDatagramRoundTrip)->Unit(benchmark::kMicrosecond);

void BM_PollerWaitReady(benchmark::State& state) {
  UdpSocket a;
  UdpSocket sender;
  Poller poller;
  poller.add(a.fd(), 0);
  const std::array<std::uint8_t, 1> payload = {1};
  std::array<std::uint8_t, 16> buf{};
  for (auto _ : state) {
    sender.send_to(payload, a.local_address());
    benchmark::DoNotOptimize(poller.wait(kSecond));
    a.recv_from(buf);
  }
}
BENCHMARK(BM_PollerWaitReady)->Unit(benchmark::kMicrosecond);

void BM_LoopbackBurstBatched(benchmark::State& state) {
  // Burst of 32 through sendmmsg/recvmmsg — the server recv-loop pattern.
  UdpSocket sender;
  UdpSocket receiver;
  receiver.set_buffer_sizes(1 << 21);
  constexpr std::size_t kBurst = 32;
  DatagramBatch out(kBurst, 64);
  DatagramBatch in(kBurst, 64);
  const std::array<std::uint8_t, 16> payload{};
  std::int64_t moved = 0;
  for (auto _ : state) {
    out.clear();
    for (std::size_t i = 0; i < kBurst; ++i) {
      out.append(payload, receiver.local_address());
    }
    const std::size_t sent = sender.send_batch(out);
    std::size_t got = 0;
    while (got < sent) {
      const std::size_t n = receiver.recv_batch(in);
      if (n == 0) break;  // kernel dropped the tail; count what arrived
      got += n;
    }
    moved += static_cast<std::int64_t>(got);
  }
  state.SetItemsProcessed(moved);
}
BENCHMARK(BM_LoopbackBurstBatched)->Unit(benchmark::kMicrosecond);

// ---------------------------------------------------------------------------
// Perf-trajectory harness (--json / --smoke).

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// One-way loopback throughput: bursts of 32 datagrams, sender → receiver,
/// drained each burst so the socket buffer never overflows. `batched`
/// selects sendmmsg/recvmmsg vs one syscall per datagram.
double measure_oneway_datagrams_per_sec(std::int64_t total, bool batched) {
  UdpSocket sender;
  UdpSocket receiver;
  receiver.set_buffer_sizes(1 << 21);
  constexpr std::size_t kBurst = 32;
  const std::array<std::uint8_t, 16> payload{};
  DatagramBatch out(kBurst, 64);
  DatagramBatch in(kBurst, 64);
  std::array<std::uint8_t, 64> buf{};
  const Address dest = receiver.local_address();

  std::int64_t moved = 0;
  const auto start = std::chrono::steady_clock::now();
  while (moved < total) {
    std::size_t sent = 0;
    if (batched) {
      out.clear();
      for (std::size_t i = 0; i < kBurst; ++i) out.append(payload, dest);
      sent = sender.send_batch(out);
    } else {
      for (std::size_t i = 0; i < kBurst; ++i) {
        if (sender.send_to(payload, dest)) ++sent;
      }
    }
    std::size_t got = 0;
    while (got < sent) {
      if (batched) {
        const std::size_t n = receiver.recv_batch(in);
        if (n == 0) break;
        got += n;
      } else {
        if (!receiver.recv_from(buf)) break;
        ++got;
      }
    }
    // Loopback doesn't lose datagrams below the buffer size, but count
    // only what actually moved end to end.
    moved += static_cast<std::int64_t>(got);
    if (got == 0) break;  // defensive: avoid spinning forever
  }
  const double elapsed = seconds_since(start);
  return elapsed > 0 ? static_cast<double>(moved) / elapsed : 0.0;
}

struct RttStats {
  int rounds = 0;
  double p50_us = 0.0;
  double p99_us = 0.0;
};

/// Round-trip time of a load-inquiry poll (connected client socket, server
/// answering from qlen) — the prototype's polling-agent critical path.
/// With a registry, every round also pays the instrumentation the client
/// node pays per poll (counter inc + histogram record), so comparing the
/// two modes isolates the telemetry cost on the critical path.
RttStats measure_poll_rtt(int rounds,
                          telemetry::Registry* registry = nullptr) {
  telemetry::Counter polls;
  telemetry::Histogram rtt_hist;
  if (registry != nullptr) {
    polls = registry->counter("polls_sent");
    rtt_hist = registry->histogram("poll_rtt_ms");
  }
  UdpSocket server;
  UdpSocket client;
  client.connect(server.local_address());
  Poller client_poller;
  client_poller.add(client.fd(), 0);
  Poller server_poller;
  server_poller.add(server.fd(), 0);
  std::array<std::uint8_t, 64> buf{};
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(rounds));
  for (int r = 0; r < rounds; ++r) {
    LoadInquiry inquiry;
    inquiry.seq = static_cast<std::uint64_t>(r) + 1;
    const auto start = std::chrono::steady_clock::now();
    client.send(inquiry.encode());
    while (true) {
      server_poller.wait(kSecond);
      if (auto dgram = server.recv_from(buf)) {
        LoadReply reply;
        reply.seq = inquiry.seq;
        reply.queue_length = 1;
        server.send_to(reply.encode(), dgram->from);
        break;
      }
    }
    while (true) {
      client_poller.wait(kSecond);
      if (client.recv(buf)) break;
    }
    const double us = seconds_since(start) * 1e6;
    samples.push_back(us);
    if (registry != nullptr) {
      polls.inc();
      rtt_hist.record(us / 1e3);
    }
  }
  RttStats stats;
  stats.rounds = rounds;
  std::sort(samples.begin(), samples.end());
  const auto at = [&](double q) {
    const std::size_t i = std::min(
        samples.size() - 1,
        static_cast<std::size_t>(q * static_cast<double>(samples.size())));
    return samples[i];
  };
  stats.p50_us = at(0.50);
  stats.p99_us = at(0.99);
  return stats;
}

// ---------------------------------------------------------------------------
// Steady-state allocation measurement.
//
// Marginal-allocation trick: the same two-server polling(2) cluster run at
// N and at 2N accesses. Warmup allocations (sockets, thread stacks, vectors
// growing to steady capacity, pool priming) are identical in both runs, so
// (A(2N) - A(N)) / N is the pure steady-state allocation cost per access.
// Client allocations are the main-thread thread-local delta (the client
// event loop runs on the calling thread); server allocations are the
// global-minus-local remainder (the only other threads are the servers').

struct AllocCounts {
  std::int64_t client = 0;  // main-thread (client event loop)
  std::int64_t server = 0;  // everything else (server threads)
};

AllocCounts run_cluster_accesses(std::int64_t accesses,
                                 std::uint32_t trace_period = 0) {
  const std::int64_t local_before = alloc_hook::local();
  const std::int64_t global_before = alloc_hook::global();
  {
    cluster::ServerOptions server_options;
    server_options.worker_threads = 1;
    // Measure allocations, not the emulated busy-server reply stalls.
    server_options.inject_busy_reply_delay = false;
    server_options.trace_sample_period = trace_period;
    server_options.id = 0;
    cluster::ServerNode s0(server_options);
    server_options.id = 1;
    server_options.seed = 2;
    cluster::ServerNode s1(server_options);
    s0.start();
    s1.start();

    cluster::ClientOptions client_options;
    client_options.policy = PolicyConfig::polling(2);
    client_options.servers = {
        {0, s0.service_address(), s0.load_address()},
        {1, s1.service_address(), s1.load_address()},
    };
    client_options.trace_sample_period = trace_period;
    client_options.total_requests = accesses;
    client_options.warmup_requests =
        std::min<std::int64_t>(accesses / 4, 100);
    const Workload workload = Workload::from_distributions(
        "alloc-probe", make_deterministic(200e-6), make_deterministic(0.0));
    cluster::ClientNode client(std::move(client_options),
                               workload.make_source(1.0, 7));
    client.run();
    s0.stop();
    s1.stop();
  }
  AllocCounts counts;
  counts.client = alloc_hook::local() - local_before;
  counts.server = (alloc_hook::global() - global_before) - counts.client;
  return counts;
}

struct AllocStats {
  std::int64_t accesses = 0;  // the marginal N
  double client_per_access = 0.0;
  double server_per_access = 0.0;
};

AllocStats measure_steady_state_allocs(bool smoke,
                                       std::uint32_t trace_period = 0) {
  const std::int64_t n = smoke ? 500 : 2000;
  // Best of up to 6: a scheduler stall mid-run deepens the in-flight set
  // and grows the round pools — bursty noise worth a few tens of
  // allocations in either run of a pair. A real per-access allocation
  // shows up in EVERY pass at >= 1 alloc/access, so taking the cleanest
  // pass de-flakes the smoke gate without hiding regressions. Later
  // passes run only while the best so far still looks dirty.
  AllocStats best;
  for (int attempt = 0; attempt < 6; ++attempt) {
    const AllocCounts a1 = run_cluster_accesses(n, trace_period);
    const AllocCounts a2 = run_cluster_accesses(2 * n, trace_period);
    AllocStats stats;
    stats.accesses = n;
    stats.client_per_access =
        static_cast<double>(a2.client - a1.client) / static_cast<double>(n);
    stats.server_per_access =
        static_cast<double>(a2.server - a1.server) / static_cast<double>(n);
    const double worst =
        std::max(stats.client_per_access, stats.server_per_access);
    if (attempt == 0 ||
        worst < std::max(best.client_per_access, best.server_per_access)) {
      best = stats;
    }
    if (worst < 0.01) break;  // clean pass: no need for a second opinion
  }
  return best;
}

// ---------------------------------------------------------------------------
// Contended directory reads: 4 threads hammering live_entries() (the
// RCU-style snapshot read) while a publisher stream keeps triggering
// republishes. Before the snapshot swap this serialized every lookup on
// the directory mutex.

struct DirectoryReadStats {
  int readers = 0;
  double reads_per_sec = 0.0;
};

DirectoryReadStats measure_directory_read_throughput(bool smoke) {
  cluster::DirectoryServer directory;
  directory.start();
  UdpSocket publisher;
  const auto publish_all = [&] {
    for (int i = 0; i < 8; ++i) {
      Publish p;
      p.service = "bench";
      p.server = i;
      p.service_port = static_cast<std::uint16_t>(40000 + i);
      p.load_port = static_cast<std::uint16_t>(41000 + i);
      p.ttl_ms = 10'000;
      publisher.send_to(p.encode(), directory.address());
    }
  };
  publish_all();
  while (directory.live_entries("bench").size() < 8) {
    sleep_for(kMillisecond);
  }

  constexpr int kReaders = 4;
  std::atomic<bool> stop{false};
  std::atomic<std::int64_t> reads{0};
  std::vector<std::thread> threads;
  threads.emplace_back([&] {  // writer: sustained republish stream
    while (!stop.load(std::memory_order_relaxed)) {
      publish_all();
      sleep_for(kMillisecond);
    }
  });
  const auto start = std::chrono::steady_clock::now();
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&] {
      std::int64_t local = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        benchmark::DoNotOptimize(directory.live_entries("bench"));
        ++local;
      }
      reads.fetch_add(local, std::memory_order_relaxed);
    });
  }
  sleep_for(smoke ? 200 * kMillisecond : kSecond);
  stop.store(true, std::memory_order_relaxed);
  const double elapsed = seconds_since(start);
  for (auto& t : threads) t.join();
  directory.stop();

  DirectoryReadStats stats;
  stats.readers = kReaders;
  stats.reads_per_sec =
      elapsed > 0
          ? static_cast<double>(reads.load(std::memory_order_relaxed)) /
                elapsed
          : 0.0;
  return stats;
}

int run_trajectory(const std::string& json_path, bool smoke) {
  const std::int64_t total = smoke ? 100'000 : 1'000'000;
  const int rounds = smoke ? 2'000 : 20'000;
  // Best of 2 passes each: loopback throughput shares the box with every
  // other process, and noise only ever subtracts.
  double unbatched = 0.0;
  double batched = 0.0;
  for (int pass = 0; pass < 2; ++pass) {
    unbatched =
        std::max(unbatched, measure_oneway_datagrams_per_sec(total, false));
    batched =
        std::max(batched, measure_oneway_datagrams_per_sec(total, true));
  }
  const RttStats rtt = measure_poll_rtt(rounds);
  const AllocStats allocs = measure_steady_state_allocs(smoke);
  const DirectoryReadStats dir_reads = measure_directory_read_throughput(smoke);

  std::printf("one-way loopback: %.0f dgrams/sec single, %.0f batched "
              "(x%.2f)\n",
              unbatched, batched, batched / unbatched);
  std::printf("poll rtt: p50 %.1f us, p99 %.1f us over %d rounds\n",
              rtt.p50_us, rtt.p99_us, rtt.rounds);
  std::printf("steady-state allocs/access: client %.4f, server %.4f "
              "(marginal over %lld accesses)\n",
              allocs.client_per_access, allocs.server_per_access,
              static_cast<long long>(allocs.accesses));
  std::printf("contended directory reads: %.0f reads/sec across %d threads\n",
              dir_reads.reads_per_sec, dir_reads.readers);

  if (!json_path.empty()) {
    std::FILE* out = std::fopen(json_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(out, "{\n  \"bench\": \"net\",\n  \"smoke\": %s,\n",
                 smoke ? "true" : "false");
    std::fprintf(out, "  \"oneway\": {\n");
    std::fprintf(out, "    \"datagrams\": %lld,\n",
                 static_cast<long long>(total));
    std::fprintf(out, "    \"unbatched_per_sec\": %.0f,\n", unbatched);
    std::fprintf(out, "    \"batched_per_sec\": %.0f,\n", batched);
    std::fprintf(out, "    \"batch_speedup\": %.3f\n",
                 unbatched > 0 ? batched / unbatched : 0.0);
    std::fprintf(out, "  },\n");
    std::fprintf(out, "  \"poll_rtt_us\": {\n");
    std::fprintf(out, "    \"rounds\": %d,\n", rtt.rounds);
    std::fprintf(out, "    \"p50\": %.2f,\n", rtt.p50_us);
    std::fprintf(out, "    \"p99\": %.2f\n", rtt.p99_us);
    std::fprintf(out, "  },\n");
    std::fprintf(out, "  \"allocs\": {\n");
    std::fprintf(out, "    \"accesses\": %lld,\n",
                 static_cast<long long>(allocs.accesses));
    std::fprintf(out, "    \"client_per_access\": %.4f,\n",
                 allocs.client_per_access);
    std::fprintf(out, "    \"server_per_access\": %.4f\n",
                 allocs.server_per_access);
    std::fprintf(out, "  },\n");
    std::fprintf(out, "  \"directory\": {\n");
    std::fprintf(out, "    \"readers\": %d,\n", dir_reads.readers);
    std::fprintf(out, "    \"reads_per_sec\": %.0f\n",
                 dir_reads.reads_per_sec);
    std::fprintf(out, "  }\n}\n");
    std::fclose(out);
  }

  // bench-smoke regression gate: a warmed-up client + server pair must run
  // the request/poll path without touching the allocator. Any real
  // regression costs >= 1 alloc per access (or >= 3 per access if it is in
  // the poll path), while in-flight-depth pool-growth bursts measure
  // <= ~0.1/access — so 0.25 on the client fails every real regression
  // with 4x margin and tolerates the bursty noise. Server threads have no
  // depth-dependent pools, so their side stays strict.
  if (smoke && (allocs.client_per_access >= 0.25 ||
                allocs.server_per_access >= 0.01)) {
    std::fprintf(stderr,
                 "FAIL: steady-state allocations detected "
                 "(client %.4f/access, server %.4f/access)\n",
                 allocs.client_per_access, allocs.server_per_access);
    return 1;
  }
  return 0;
}

// ---------------------------------------------------------------------------
// Telemetry-overhead trajectory (--telemetry-json / --smoke).
//
// The telemetry subsystem's hot-path promise is "free enough to leave on":
// no allocations per access even with lifecycle tracing sampling, and a
// per-poll instrumentation cost that disappears into the RTT noise. Both
// are measured here and gated under --smoke.

int run_telemetry_trajectory(const std::string& json_path, bool smoke) {
  const int rounds = smoke ? 2'000 : 20'000;
  // Best of 2 per mode, interleaved off/on so box-level noise (which only
  // ever slows a pass down) hits both modes alike.
  RttStats off;
  RttStats on;
  telemetry::Registry registry;
  for (int pass = 0; pass < 2; ++pass) {
    const RttStats o = measure_poll_rtt(rounds);
    if (pass == 0 || o.p50_us < off.p50_us) off = o;
    const RttStats i = measure_poll_rtt(rounds, &registry);
    if (pass == 0 || i.p50_us < on.p50_us) on = i;
  }
  // Alloc probe with tracing live: every access records counters and
  // histograms, and every 8th leaves a lifecycle trail in the ring.
  const AllocStats allocs = measure_steady_state_allocs(smoke, 8);

  const double overhead_pct =
      off.p50_us > 0 ? (on.p50_us / off.p50_us - 1.0) * 100.0 : 0.0;
  std::printf("poll rtt p50: %.1f us bare, %.1f us instrumented (%+.1f%%), "
              "p99 %.1f/%.1f us over %d rounds\n",
              off.p50_us, on.p50_us, overhead_pct, off.p99_us, on.p99_us,
              off.rounds);
  std::printf("steady-state allocs/access with tracing on: client %.4f, "
              "server %.4f (marginal over %lld accesses)\n",
              allocs.client_per_access, allocs.server_per_access,
              static_cast<long long>(allocs.accesses));

  if (!json_path.empty()) {
    std::FILE* out = std::fopen(json_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(out, "{\n  \"bench\": \"telemetry\",\n  \"smoke\": %s,\n",
                 smoke ? "true" : "false");
    std::fprintf(out, "  \"enabled\": %s,\n",
                 telemetry::kEnabled ? "true" : "false");
    std::fprintf(out, "  \"poll_rtt_us\": {\n");
    std::fprintf(out, "    \"rounds\": %d,\n", off.rounds);
    std::fprintf(out, "    \"off\": {\"p50\": %.2f, \"p99\": %.2f},\n",
                 off.p50_us, off.p99_us);
    std::fprintf(out, "    \"on\": {\"p50\": %.2f, \"p99\": %.2f},\n",
                 on.p50_us, on.p99_us);
    std::fprintf(out, "    \"p50_overhead_pct\": %.2f\n", overhead_pct);
    std::fprintf(out, "  },\n");
    std::fprintf(out, "  \"allocs_tracing_on\": {\n");
    std::fprintf(out, "    \"trace_sample_period\": 8,\n");
    std::fprintf(out, "    \"accesses\": %lld,\n",
                 static_cast<long long>(allocs.accesses));
    std::fprintf(out, "    \"client_per_access\": %.4f,\n",
                 allocs.client_per_access);
    std::fprintf(out, "    \"server_per_access\": %.4f\n",
                 allocs.server_per_access);
    std::fprintf(out, "  }\n}\n");
    std::fclose(out);
  }

  // Same thresholds as run_trajectory's gate: the smallest real telemetry
  // regression (one allocation per sampled trace record at period 8) costs
  // >= 0.75/access, far above the <= ~0.1/access pool-growth noise floor.
  if (smoke && (allocs.client_per_access >= 0.25 ||
                allocs.server_per_access >= 0.01)) {
    std::fprintf(stderr,
                 "FAIL: telemetry-on steady state allocates "
                 "(client %.4f/access, server %.4f/access)\n",
                 allocs.client_per_access, allocs.server_per_access);
    return 1;
  }
  // 5% relative plus 3 us absolute slack: loopback p50 is a handful of
  // microseconds, where one scheduler hiccup is worth more than 5%.
  if (smoke && on.p50_us > off.p50_us * 1.05 + 3.0) {
    std::fprintf(stderr,
                 "FAIL: telemetry poll-RTT overhead too high "
                 "(p50 %.2f us bare vs %.2f us instrumented)\n",
                 off.p50_us, on.p50_us);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace finelb::net

int main(int argc, char** argv) {
  // Manual parsing here (not common/flags) because unrecognized args pass
  // through to google-benchmark; --log-level still overrides FINELB_LOG.
  finelb::init_log_level();
  std::string json_path;
  std::string telemetry_json_path;
  bool telemetry_mode = false;
  bool smoke = false;
  std::vector<char*> passthrough;
  passthrough.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else if (std::strncmp(argv[i], "--telemetry-json=", 17) == 0) {
      telemetry_json_path = argv[i] + 17;
      telemetry_mode = true;
    } else if (std::strcmp(argv[i], "--telemetry") == 0) {
      telemetry_mode = true;
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strncmp(argv[i], "--log-level=", 12) == 0) {
      finelb::set_log_level(finelb::parse_log_level(argv[i] + 12));
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  if (telemetry_mode) {
    return finelb::net::run_telemetry_trajectory(telemetry_json_path, smoke);
  }
  if (!json_path.empty() || smoke) {
    return finelb::net::run_trajectory(json_path, smoke);
  }
  int pargc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&pargc, passthrough.data());
  if (benchmark::ReportUnrecognizedArguments(pargc, passthrough.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
