// Decision-quality observatory: Figure 4 re-examined per decision.
//
// Figure 4 reports response time vs poll size; this harness reports *why*
// those curves bend, by auditing every dispatch decision. The simulator is
// omniscient, so each polling decision is scored exactly against the true
// least-loaded live server at the decision instant: the mistake rate (how
// often the balancer picked a worse queue) and the mean regret (how much
// extra queue depth the access suffered) — swept over poll size x load x
// staleness, where staleness is injected as extra poll one-way latency so
// the reports the client acts on are that much older.
//
// The prototype half runs the same poll-size sweep live and reconstructs
// the measured analogue: every audited decision (client decision ring,
// chunked DECISION_INQUIRY channel for live scrapes) joins with the merged
// clock-aligned traces, comparing the chosen server's realized queue depth
// (its kResponse record) against the best reported depth in the polled set.
// Both halves print the same summary fields (the metric names the stats
// documents share, telemetry::append_decision_metrics).
//
// The last prototype point's merged timeline exports as Perfetto JSON and
// flat CSV, so one can follow a regretted decision end to end.
//
//   fig4_decision_quality [--poll_sizes=1,2,3,8] [--loads=0.5,0.7,0.9]
//                         [--stale_us=0,500,2000] [--servers=16]
//                         [--requests=40000] [--proto_requests=6000]
//                         [--proto_load=0.7] [--trace_period=4] [--seed=1]
//                         [--json=PATH] [--trace_json=PATH]
//                         [--trace_csv=PATH]
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "cluster/experiment.h"
#include "common/flags.h"
#include "common/log.h"
#include "sim/config.h"
#include "telemetry/decision.h"
#include "telemetry/merge.h"
#include "workload/catalog.h"

using namespace finelb;

namespace {

bool write_file(const std::string& path, const std::string& body) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  std::fwrite(body.data(), 1, body.size(), f);
  std::fclose(f);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags = Flags::parse(argc, argv);
  init_log_level(flags);
  const auto poll_sizes = flags.get_int_list("poll_sizes", {1, 2, 3, 8});
  const auto loads = flags.get_double_list("loads", {0.5, 0.7, 0.9});
  const auto stale_us = flags.get_int_list("stale_us", {0, 500, 2000});
  const int servers = static_cast<int>(flags.get_int("servers", 16));
  const std::int64_t requests = flags.get_int("requests", 40'000);
  const std::int64_t proto_requests = flags.get_int("proto_requests", 6'000);
  const double proto_load = flags.get_double("proto_load", 0.7);
  const auto trace_period =
      static_cast<std::uint32_t>(flags.get_int("trace_period", 4));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const std::string json_path = flags.get_string("json", "");
  const std::string trace_json = flags.get_string("trace_json", "");
  const std::string trace_csv = flags.get_string("trace_csv", "");

  const Workload workload = make_poisson_exp(0.005);  // 5 ms mean service

  bench::print_header(
      "Figure 4 decision quality: exact (sim) and measured (prototype)",
      std::to_string(servers) + " servers, Poisson/Exp 5 ms; regret = extra "
                                "queue depth vs the omniscient choice");

  // --- simulation: exact regret over poll size x load x staleness -----------
  std::printf("\nsimulation (exact, %lld requests/point):\n",
              static_cast<long long>(requests));
  bench::Table table(11);
  table.row({"poll", "load", "stale us", "decisions", "mistakes",
             "mistake%", "regret/dec", "blind"});
  std::string json = "{\"sim\":[";
  bool first = true;
  std::uint64_t run = 0;
  for (const std::int64_t poll : poll_sizes) {
    for (const double load : loads) {
      for (const std::int64_t extra_us : stale_us) {
        sim::SimConfig config;
        config.servers = servers;
        config.policy = PolicyConfig::polling(static_cast<int>(poll));
        config.load = load;
        config.total_requests = requests;
        config.warmup_requests = requests / 10;
        config.network.poll_oneway += from_us(extra_us);
        config.seed = bench::derive_seed(seed, run++);
        // The audit ring proves the choke point records in-sim exactly as
        // the prototype client does; quality numbers come from the exact
        // omniscient accounting in SimResult.
        telemetry::DecisionRing ring(4096, /*sample_period=*/1);
        config.decision_sink = ring.sink();
        const sim::SimResult result = sim::run_cluster_sim(config, workload);

        telemetry::DecisionQualitySummary q;
        q.decisions = result.decisions;
        q.mistakes = result.decision_mistakes;
        q.blind_fallbacks = result.decision_blind_fallbacks;
        q.regret_total = result.decision_regret_total;
        table.row({std::to_string(poll), bench::Table::pct(load, 0),
                   std::to_string(extra_us), std::to_string(q.decisions),
                   std::to_string(q.mistakes),
                   bench::Table::pct(q.mistake_rate(), 1),
                   bench::Table::num(q.mean_regret(), 3),
                   std::to_string(q.blind_fallbacks)});
        if (!first) json += ',';
        first = false;
        json += "{\"poll_size\":" + std::to_string(poll) +
                ",\"load\":" + bench::Table::num(load, 2) +
                ",\"stale_us\":" + std::to_string(extra_us) +
                ",\"quality\":" + telemetry::decision_quality_to_json(q) + "}";
      }
    }
  }
  json += "],\"proto\":[";

  // --- prototype: measured regret via the trace join ------------------------
  std::printf(
      "\nprototype (measured, %lld accesses/point at %s load; every "
      "%uth access audited+traced):\n",
      static_cast<long long>(proto_requests),
      bench::Table::pct(proto_load, 0).c_str(), trace_period);
  bench::Table proto_table(11);
  proto_table.row({"poll", "audited", "joined", "mistakes", "mistake%",
                   "regret/dec", "blind"});
  std::vector<telemetry::NodeTrace> last_traces;
  first = true;
  for (std::size_t i = 0; i < poll_sizes.size(); ++i) {
    cluster::PrototypeConfig config;
    config.servers = servers;
    config.clients = 2;
    config.policy = PolicyConfig::polling(static_cast<int>(poll_sizes[i]));
    config.load = proto_load;
    config.total_requests = proto_requests;
    config.use_directory = false;
    config.inject_busy_reply_delay = false;
    config.trace_sample_period = trace_period;
    config.decision_sample_period = trace_period;
    config.collect_traces = true;
    config.collect_decisions = true;
    config.seed = bench::derive_seed(seed, 1000 + i);
    cluster::PrototypeResult result = cluster::run_prototype(config, workload);
    const telemetry::DecisionQualitySummary& q = result.decision_quality;
    proto_table.row({std::to_string(poll_sizes[i]),
                     std::to_string(result.decision_records),
                     std::to_string(q.decisions), std::to_string(q.mistakes),
                     bench::Table::pct(q.mistake_rate(), 1),
                     bench::Table::num(q.mean_regret(), 3),
                     std::to_string(q.blind_fallbacks)});
    if (!first) json += ',';
    first = false;
    json += "{\"poll_size\":" + std::to_string(poll_sizes[i]) +
            ",\"load\":" + bench::Table::num(proto_load, 2) +
            ",\"audited\":" + std::to_string(result.decision_records) +
            ",\"quality\":" + telemetry::decision_quality_to_json(q) + "}";
    if (i + 1 == poll_sizes.size()) last_traces = std::move(result.node_traces);
  }
  json += "]}";

  std::printf(
      "\nReading: the sim scores every decision against the true least-loaded\n"
      "server (possible only with omniscience); the prototype scores audited\n"
      "decisions against the best *reported* queue via the trace join, so its\n"
      "regret is what the balancer could have known. Mistakes rise with load\n"
      "and staleness, and shrink as poll size covers more of the cluster.\n");

  if (!last_traces.empty()) {
    const auto merged = telemetry::merge_traces(last_traces);
    if (!trace_json.empty() &&
        write_file(trace_json,
                   telemetry::to_chrome_trace_json(merged, last_traces))) {
      std::printf("Perfetto trace written to %s\n", trace_json.c_str());
    }
    if (!trace_csv.empty() &&
        write_file(trace_csv, telemetry::to_csv(merged, last_traces))) {
      std::printf("trace CSV written to %s\n", trace_csv.c_str());
    }
  }
  if (!json_path.empty() && write_file(json_path, json + "\n")) {
    std::printf("decision-quality JSON written to %s\n", json_path.c_str());
  }
  return 0;
}
