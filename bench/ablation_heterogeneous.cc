// Ablation (extension): policy robustness on heterogeneous clusters.
//
// The paper evaluates a homogeneous 16-node cluster; real service clusters
// mix machine generations. This ablation skews half the servers' speeds
// and reports how each policy copes. Queue-length-driven policies absorb
// the skew automatically (a slow server's queue drains slower, so it looks
// longer); oblivious policies (random, round-robin) keep overloading the
// slow half.
//
//   ablation_heterogeneous [--requests=120000] [--seed=1] [--load=0.8]
//                          [--skews=1,2,4,8]
#include <cstdio>

#include "bench_util.h"
#include "common/flags.h"
#include "common/log.h"
#include "sim/config.h"
#include "workload/catalog.h"

using namespace finelb;

int main(int argc, char** argv) {
  const Flags flags = Flags::parse(argc, argv);
  init_log_level(flags);
  const std::int64_t requests = flags.get_int("requests", 120'000);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const double load = flags.get_double("load", 0.8);
  const auto skews = flags.get_double_list("skews", {1, 2, 4, 8});

  const Workload workload = make_poisson_exp(0.050);

  bench::print_header(
      "Ablation: heterogeneous server speeds (extension)",
      "16 servers (8 fast : 8 slow at the given speed ratio), Poisson/Exp "
      "50 ms, aggregate " +
          bench::Table::pct(load, 0) + " busy; mean response (ms)");
  bench::Table table(13);
  table.row({"fast:slow", "random", "rr", "poll(2)", "poll(3)", "ideal"});

  // Policies within one skew row share a derived seed (paired comparison);
  // the grid fans out across cores.
  const std::vector<PolicyConfig> policies = {
      PolicyConfig::random(), PolicyConfig::round_robin(),
      PolicyConfig::polling(2), PolicyConfig::polling(3),
      PolicyConfig::ideal()};
  bench::SweepRunner<double> runner;
  for (std::size_t s = 0; s < skews.size(); ++s) {
    const double skew = skews[s];
    const std::uint64_t run_seed = bench::derive_seed(seed, s);
    for (const PolicyConfig& policy : policies) {
      runner.submit([&workload, policy, skew, load, requests, run_seed] {
        sim::SimConfig config;
        config.policy = policy;
        config.load = load;
        config.total_requests = requests;
        config.warmup_requests = requests / 10;
        config.seed = run_seed;
        config.server_speeds.assign(16, 1.0);
        for (int fast = 0; fast < 8; ++fast) {
          config.server_speeds[static_cast<std::size_t>(fast)] = skew;
        }
        return run_cluster_sim(config, workload).mean_response_ms();
      });
    }
  }
  const std::vector<double> results = runner.run();

  std::size_t next = 0;
  for (const double skew : skews) {
    std::vector<std::string> row = {bench::Table::num(skew, 0) + ":1"};
    for (std::size_t p = 0; p < policies.size(); ++p) {
      row.push_back(bench::Table::num(results[next++], 1));
    }
    table.row(row);
  }
  std::printf(
      "\nExpected: random/round-robin degrade sharply with skew (half the\n"
      "traffic lands on shrinking capacity); polling and ideal stay flat\n"
      "because queue length already encodes service rate.\n");
  return 0;
}
