// Figure 6 reproduction: impact of poll size on the prototype
// implementation, 16 server nodes on loopback.
//
// Same grid as Figure 4 but executed by the real runtime: UDP polling
// agents, server worker pools, the availability directory, and (for IDEAL)
// the centralized load-index manager. The headline divergence from the
// simulation: with real messaging overhead, poll size 8 stops paying off
// and on the Fine-Grain trace lands at or above pure random.
//
//   fig6_pollsize_proto [--requests=4000] [--seed=1]
//                       [--loads=0.5,0.7,0.9] [--poll-sizes=2,3,8]
//                       [--servers=16] [--clients=6] [--paper]
//
// --paper switches to the full five-load, four-poll-size grid (long run).
#include <cstdio>

#include "bench_util.h"
#include "cluster/experiment.h"
#include "common/flags.h"
#include "common/log.h"
#include "net/pingpong.h"
#include "net/tcp.h"
#include "workload/catalog.h"

using namespace finelb;

int main(int argc, char** argv) {
  const Flags flags = Flags::parse(argc, argv);
  init_log_level(flags);
  const bool paper = flags.get_bool("paper", false);
  const std::int64_t requests =
      flags.get_int("requests", paper ? 8000 : 4000);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const auto loads = flags.get_double_list(
      "loads", paper ? std::vector<double>{0.5, 0.6, 0.7, 0.8, 0.9}
                     : std::vector<double>{0.5, 0.7, 0.9});
  const auto poll_sizes = flags.get_int_list(
      "poll-sizes", paper ? std::vector<std::int64_t>{2, 3, 4, 8}
                          : std::vector<std::int64_t>{2, 3, 8});
  const int servers = static_cast<int>(flags.get_int("servers", 16));
  const int clients = static_cast<int>(flags.get_int("clients", 6));

  const auto rtt = net::measure_udp_rtt(500, 50);
  std::printf("UDP ping-pong on this host: mean %.0f us, min %.0f us, "
              "p99 %.0f us (paper measured 290 us)\n",
              rtt.mean_rtt_us, rtt.min_rtt_us, rtt.p99_rtt_us);
  const auto tcp = net::measure_tcp_rtt(200, 20);
  std::printf("TCP ping-pong: persistent %.0f us, with setup/teardown "
              "%.0f us (paper: 339 us / 516 us)\n",
              tcp.persistent_rtt_us, tcp.per_connection_rtt_us);

  const std::vector<std::pair<std::string, Workload>> workloads = {
      {"Medium-Grain", make_medium_grain(50'000, seed + 10)},
      {"Poisson/Exp-50ms", make_poisson_exp(0.050)},
      {"Fine-Grain", make_fine_grain(50'000, seed + 20)},
  };

  std::vector<std::pair<std::string, PolicyConfig>> policies;
  policies.emplace_back("random", PolicyConfig::random());
  for (const auto d : poll_sizes) {
    policies.emplace_back("poll(" + std::to_string(d) + ")",
                          PolicyConfig::polling(static_cast<int>(d)));
  }
  policies.emplace_back("ideal", PolicyConfig::ideal());

  // Prototype runs burn real CPU for service times, so they go through the
  // sweep runner in serial mode: one at a time, in submission order.
  // Concurrent cluster instances would contend for cores and corrupt the
  // measured response times. Policies within one row share a derived seed.
  auto runner = bench::SweepRunner<cluster::PrototypeResult>::serial();
  std::uint64_t row_index = 0;
  for (const auto& [wname, workload] : workloads) {
    (void)wname;
    for (const double load : loads) {
      const std::uint64_t run_seed = bench::derive_seed(seed, row_index++);
      for (const auto& [pname, policy] : policies) {
        (void)pname;
        runner.submit([&workload, policy, load, servers, clients, requests,
                       run_seed] {
          cluster::PrototypeConfig config;
          config.servers = servers;
          config.clients = clients;
          config.policy = policy;
          config.load = load;
          config.total_requests = requests;
          config.seed = run_seed;
          return cluster::run_prototype(config, workload);
        });
      }
    }
  }
  const auto results = runner.run();

  std::size_t next = 0;
  for (const auto& [wname, workload] : workloads) {
    (void)workload;
    bench::print_header(
        "Figure 6 <" + wname + ">: poll size impact (prototype)",
        std::to_string(servers) + " server nodes, " + std::to_string(clients) +
            " client nodes on loopback; mean response time (ms); " +
            std::to_string(requests) + " requests per point");
    bench::Table table(12);
    std::vector<std::string> head = {"load"};
    for (const auto& [pname, p] : policies) {
      (void)p;
      head.push_back(pname);
    }
    head.push_back("completed");
    table.row(head);

    for (const double load : loads) {
      (void)load;
      std::vector<std::string> row = {bench::Table::pct(load, 0)};
      std::int64_t completed = 0;
      std::int64_t issued = 0;
      for (std::size_t p = 0; p < policies.size(); ++p) {
        const auto& result = results[next++];
        row.push_back(
            bench::Table::num(result.clients.response_ms.mean(), 1));
        completed += result.clients.completed;
        issued += result.clients.issued;
      }
      row.push_back(bench::Table::pct(
          static_cast<double>(completed) / static_cast<double>(issued), 1));
      table.row(row);
    }
  }
  std::printf(
      "\nPaper shape: Medium-Grain and Poisson/Exp confirm the simulation;\n"
      "on the Fine-Grain trace poll size 8 is far worse than small poll\n"
      "sizes and at/below pure random at high load (polling delay + stale\n"
      "replies dominate for very fine services).\n");
  return 0;
}
