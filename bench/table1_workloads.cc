// Table 1 reproduction: statistics of the evaluation traces.
//
// Generates the synthetic Fine-Grain and Medium-Grain traces at the paper's
// published sizes, extracts the peak portion, and prints the Table 1
// columns (access counts, arrival-interval and service-time moments).
//
//   table1_workloads [--fine-total=N] [--medium-total=N]
//                    [--peak-fraction=0.085] [--seed=1] [--save-dir=PATH]
//
// Paper values for reference:
//   Medium-Grain: 1,55?,??? total accesses; arrival std 321.1 ms;
//                 service 28.9 ms mean / 62.9 ms std.
//   Fine-Grain:   1,171,838 total accesses; arrival std 349.4 ms;
//                 service 22.2 ms mean / 10.0 ms std.
#include <cstdio>

#include "bench_util.h"
#include "common/flags.h"
#include "common/log.h"
#include "workload/catalog.h"

using namespace finelb;

namespace {

void report(const char* label, const Trace& full, const Trace& peak) {
  const TraceStats stats = peak.stats();
  bench::Table table(14);
  table.row({label, "", "", "", "", "", ""});
  table.row({"", std::to_string(full.size()), std::to_string(peak.size()),
             bench::Table::num(stats.arrival_mean_ms, 1) + "ms",
             bench::Table::num(stats.arrival_stddev_ms, 1) + "ms",
             bench::Table::num(stats.service_mean_ms, 1) + "ms",
             bench::Table::num(stats.service_stddev_ms, 1) + "ms"});
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags = Flags::parse(argc, argv);
  init_log_level(flags);
  const auto fine_total =
      static_cast<std::size_t>(flags.get_int("fine-total", 1'171'838));
  const auto medium_total =
      static_cast<std::size_t>(flags.get_int("medium-total", 1'550'000));
  const double peak_fraction = flags.get_double("peak-fraction", 0.085);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const std::string save_dir = flags.get_string("save-dir", "");

  bench::print_header(
      "Table 1: statistics of evaluation traces (synthetic reproduction)",
      "Traces synthesized to the published moments; the original Teoma "
      "traces are proprietary (DESIGN.md section 3).");
  bench::Table table(14);
  table.row({"Workload", "Total", "Peak", "Arr.mean", "Arr.std",
             "Svc.mean", "Svc.std"});

  const Trace medium = synth_medium_grain_trace(medium_total, seed);
  const Trace medium_peak = medium.slice(
      medium_total / 4,
      static_cast<std::size_t>(peak_fraction * medium_total), "medium-peak");
  report("Medium-Grain", medium, medium_peak);

  const Trace fine = synth_fine_grain_trace(fine_total, seed + 1);
  const Trace fine_peak =
      fine.slice(fine_total / 4,
                 static_cast<std::size_t>(peak_fraction * fine_total),
                 "fine-peak");
  report("Fine-Grain", fine, fine_peak);

  std::printf(
      "\nPaper:  Medium-Grain arrival std 321.1ms, service 28.9/62.9ms\n"
      "        Fine-Grain   arrival std 349.4ms, service 22.2/10.0ms\n");

  if (!save_dir.empty()) {
    medium_peak.save(save_dir + "/medium_grain_peak.trace");
    fine_peak.save(save_dir + "/fine_grain_peak.trace");
    std::printf("Saved peak traces under %s\n", save_dir.c_str());
  }
  return 0;
}
