// Micro-benchmarks for the simulation and core hot paths (google-benchmark),
// plus the simulation half of the perf-trajectory harness.
//
//   micro_sim                      # full google-benchmark suite
//   micro_sim --json=BENCH_sim.json [--smoke]
//
// With --json (or --smoke) the binary skips google-benchmark and runs the
// trajectory measurements instead: steady-state engine throughput
// (events/sec at a fixed outstanding-event plateau — the engine's operating
// mode inside a sweep) and the sequential-vs-parallel wall clock of a small
// fig-style sweep, asserting the parallel results are bit-identical. The
// JSON lands at the given path so successive commits can be compared;
// --smoke shrinks the workload to ctest scale (label: bench-smoke).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/log.h"
#include "common/rng.h"
#include "core/selection.h"
#include "sim/config.h"
#include "sim/engine.h"
#include "stats/accumulator.h"
#include "stats/histogram.h"
#include "workload/catalog.h"

namespace finelb {
namespace {

void BM_RngNext(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng());
  }
}
BENCHMARK(BM_RngNext);

void BM_RngExponential(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.exponential(0.05));
  }
}
BENCHMARK(BM_RngExponential);

void BM_EngineScheduleRun(benchmark::State& state) {
  const auto batch = static_cast<int>(state.range(0));
  Rng rng(1);
  for (auto _ : state) {
    sim::Engine engine;
    std::int64_t sum = 0;
    for (int i = 0; i < batch; ++i) {
      engine.schedule_at(static_cast<SimTime>(rng.uniform_int(1'000'000)),
                         [&sum] { ++sum; });
    }
    engine.run();
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_EngineScheduleRun)->Arg(1024)->Arg(16384);

/// Drives one long-lived engine in waves: schedule `wave` events spread
/// over a wide horizon, drain them, repeat. After the first wave the slot
/// pool, rung storage, and vector capacity are all warm, so this measures
/// the steady-state schedule+fire cost a long sweep pays per event —
/// BM_EngineScheduleRun, by contrast, pays cold-start allocation and
/// scatter for every fresh engine.
class SteadyStatePump {
 public:
  explicit SteadyStatePump(sim::Engine& engine, int wave = 1024)
      : engine_(engine), wave_(wave) {}

  /// Schedules and fires at least `budget` events; returns the count.
  std::int64_t pump(std::int64_t budget) {
    std::int64_t fired = 0;
    while (fired < budget) {
      const SimTime base = engine_.now();
      for (int i = 0; i < wave_; ++i) {
        engine_.schedule_at(
            base + static_cast<SimTime>(rng_.uniform_int(1'000'000)),
            [this] { ++sink_; });
      }
      engine_.run();
      fired += wave_;
    }
    return fired;
  }

  std::int64_t sink() const { return sink_; }

 private:
  sim::Engine& engine_;
  int wave_;
  Rng rng_{1};
  std::int64_t sink_ = 0;
};

void BM_EngineSteadyState(benchmark::State& state) {
  const auto wave = static_cast<int>(state.range(0));
  sim::Engine engine;
  SteadyStatePump pump(engine, wave);
  pump.pump(wave * 4);  // warm the pool and the rung
  std::int64_t fired = 0;
  for (auto _ : state) {
    fired += pump.pump(wave);
  }
  benchmark::DoNotOptimize(pump.sink());
  state.SetItemsProcessed(fired);
}
BENCHMARK(BM_EngineSteadyState)->Arg(1024)->Arg(4096);

void BM_PickLeastLoaded(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  std::vector<ServerLoad> loads(n);
  for (std::size_t i = 0; i < n; ++i) {
    loads[i] = {static_cast<ServerId>(i),
                static_cast<std::int32_t>(rng.uniform_int(8)), 0};
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(pick_least_loaded(loads, rng));
  }
}
BENCHMARK(BM_PickLeastLoaded)->Arg(2)->Arg(8)->Arg(16);

void BM_ChoosePollSet(benchmark::State& state) {
  const auto d = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  std::vector<ServerId> servers(16);
  for (int i = 0; i < 16; ++i) servers[static_cast<std::size_t>(i)] = i;
  for (auto _ : state) {
    benchmark::DoNotOptimize(choose_poll_set(servers, d, rng));
  }
}
BENCHMARK(BM_ChoosePollSet)->Arg(2)->Arg(3)->Arg(8);

void BM_HistogramAdd(benchmark::State& state) {
  LatencyHistogram hist;
  Rng rng(1);
  for (auto _ : state) {
    hist.add(rng.exponential(22.2));
  }
  benchmark::DoNotOptimize(hist.count());
}
BENCHMARK(BM_HistogramAdd);

void BM_AccumulatorAdd(benchmark::State& state) {
  Accumulator acc;
  Rng rng(1);
  for (auto _ : state) {
    acc.add(rng.uniform01());
  }
  benchmark::DoNotOptimize(acc.mean());
}
BENCHMARK(BM_AccumulatorAdd);

void BM_WorkloadSourceNext(benchmark::State& state) {
  const Workload workload = make_fine_grain(10'000, 1);
  auto source = workload.make_source(1.0, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(source->next());
  }
}
BENCHMARK(BM_WorkloadSourceNext);

void BM_FullSimulationThroughput(benchmark::State& state) {
  const Workload workload = make_poisson_exp(0.050);
  for (auto _ : state) {
    sim::SimConfig config;
    config.policy = PolicyConfig::polling(2);
    config.load = 0.9;
    config.total_requests = 20'000;
    config.warmup_requests = 2'000;
    benchmark::DoNotOptimize(
        run_cluster_sim(config, workload).mean_response_ms());
  }
  state.SetItemsProcessed(state.iterations() * 20'000);
}
BENCHMARK(BM_FullSimulationThroughput)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Perf-trajectory harness (--json / --smoke).

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Best-of-`reps` steady-state engine throughput. Wall-clock noise on a
/// shared box only ever slows a run down, so the max rate is the estimate.
double measure_engine_events_per_sec(std::int64_t events_per_rep, int reps,
                                     std::vector<double>* rates) {
  sim::Engine engine;
  SteadyStatePump pump(engine, 1024);
  pump.pump(events_per_rep / 4);  // warm the pool and the rung
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    const auto start = std::chrono::steady_clock::now();
    const std::int64_t fired = pump.pump(events_per_rep);
    const double rate = static_cast<double>(fired) / seconds_since(start);
    rates->push_back(rate);
    best = std::max(best, rate);
  }
  return best;
}

struct SweepTiming {
  int points = 0;
  std::int64_t requests = 0;
  unsigned threads = 0;
  double sequential_s = 0.0;
  double parallel_s = 0.0;
  bool bit_identical = false;
};

/// Times a fig-style sweep grid sequentially and through the thread pool,
/// and checks the two result vectors match exactly.
SweepTiming measure_sweep(std::int64_t requests) {
  const Workload workload = make_poisson_exp(0.050);
  const std::vector<double> loads = {0.5, 0.7, 0.8, 0.9};
  const std::vector<PolicyConfig> policies = {PolicyConfig::random(),
                                              PolicyConfig::polling(3)};
  const auto sweep = [&](bench::SweepRunner<double> runner) {
    std::uint64_t row = 0;
    for (const double load : loads) {
      const std::uint64_t run_seed = bench::derive_seed(99, row++);
      for (const PolicyConfig& policy : policies) {
        runner.submit([&workload, policy, load, requests, run_seed] {
          sim::SimConfig config;
          config.policy = policy;
          config.load = load;
          config.total_requests = requests;
          config.warmup_requests = requests / 10;
          config.seed = run_seed;
          return run_cluster_sim(config, workload).mean_response_ms();
        });
      }
    }
    return runner.run();
  };

  SweepTiming t;
  t.points = static_cast<int>(loads.size() * policies.size());
  t.requests = requests;
  t.threads = bench::sweep_threads();
  auto start = std::chrono::steady_clock::now();
  const std::vector<double> sequential =
      sweep(bench::SweepRunner<double>::serial());
  t.sequential_s = seconds_since(start);
  start = std::chrono::steady_clock::now();
  const std::vector<double> parallel = sweep(bench::SweepRunner<double>());
  t.parallel_s = seconds_since(start);
  t.bit_identical = sequential == parallel;
  return t;
}

int run_trajectory(const std::string& json_path, bool smoke) {
  const std::int64_t engine_events = smoke ? 1'000'000 : 20'000'000;
  const int reps = 3;
  std::vector<double> rates;
  const double events_per_sec =
      measure_engine_events_per_sec(engine_events, reps, &rates);
  const SweepTiming sweep = measure_sweep(smoke ? 5'000 : 60'000);

  std::printf("engine steady-state: %.0f events/sec (best of %d x %lld)\n",
              events_per_sec, reps, static_cast<long long>(engine_events));
  std::printf(
      "sweep: %d points x %lld requests, %.3fs sequential / %.3fs on %u "
      "threads, bit_identical=%s\n",
      sweep.points, static_cast<long long>(sweep.requests),
      sweep.sequential_s, sweep.parallel_s, sweep.threads,
      sweep.bit_identical ? "true" : "false");

  if (!json_path.empty()) {
    std::FILE* out = std::fopen(json_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(out, "{\n  \"bench\": \"sim\",\n  \"smoke\": %s,\n",
                 smoke ? "true" : "false");
    std::fprintf(out, "  \"engine\": {\n");
    std::fprintf(out, "    \"wave\": 1024,\n");
    std::fprintf(out, "    \"events_per_rep\": %lld,\n",
                 static_cast<long long>(engine_events));
    std::fprintf(out, "    \"events_per_sec\": %.0f,\n", events_per_sec);
    std::fprintf(out, "    \"rates\": [");
    for (std::size_t i = 0; i < rates.size(); ++i) {
      std::fprintf(out, "%s%.0f", i == 0 ? "" : ", ", rates[i]);
    }
    std::fprintf(out, "]\n  },\n");
    std::fprintf(out, "  \"sweep\": {\n");
    std::fprintf(out, "    \"points\": %d,\n", sweep.points);
    std::fprintf(out, "    \"requests_per_point\": %lld,\n",
                 static_cast<long long>(sweep.requests));
    std::fprintf(out, "    \"threads\": %u,\n", sweep.threads);
    std::fprintf(out, "    \"sequential_wall_s\": %.4f,\n",
                 sweep.sequential_s);
    std::fprintf(out, "    \"parallel_wall_s\": %.4f,\n", sweep.parallel_s);
    std::fprintf(out, "    \"bit_identical\": %s\n",
                 sweep.bit_identical ? "true" : "false");
    std::fprintf(out, "  }\n}\n");
    std::fclose(out);
  }
  // The smoke run doubles as a regression gate: a broken parallel sweep
  // (results out of order or seeded off thread identity) fails here.
  return sweep.bit_identical ? 0 : 1;
}

}  // namespace
}  // namespace finelb

int main(int argc, char** argv) {
  // Manual parsing here (not common/flags) because unrecognized args pass
  // through to google-benchmark; --log-level still overrides FINELB_LOG.
  finelb::init_log_level();
  std::string json_path;
  bool smoke = false;
  std::vector<char*> passthrough;
  passthrough.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strncmp(argv[i], "--log-level=", 12) == 0) {
      finelb::set_log_level(finelb::parse_log_level(argv[i] + 12));
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  if (!json_path.empty() || smoke) {
    return finelb::run_trajectory(json_path, smoke);
  }
  int pargc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&pargc, passthrough.data());
  if (benchmark::ReportUnrecognizedArguments(pargc, passthrough.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
