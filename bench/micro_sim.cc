// Micro-benchmarks for the simulation and core hot paths (google-benchmark).
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "core/selection.h"
#include "sim/config.h"
#include "sim/engine.h"
#include "stats/accumulator.h"
#include "stats/histogram.h"
#include "workload/catalog.h"

namespace finelb {
namespace {

void BM_RngNext(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng());
  }
}
BENCHMARK(BM_RngNext);

void BM_RngExponential(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.exponential(0.05));
  }
}
BENCHMARK(BM_RngExponential);

void BM_EngineScheduleRun(benchmark::State& state) {
  const auto batch = static_cast<int>(state.range(0));
  Rng rng(1);
  for (auto _ : state) {
    sim::Engine engine;
    std::int64_t sum = 0;
    for (int i = 0; i < batch; ++i) {
      engine.schedule_at(static_cast<SimTime>(rng.uniform_int(1'000'000)),
                         [&sum] { ++sum; });
    }
    engine.run();
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_EngineScheduleRun)->Arg(1024)->Arg(16384);

void BM_PickLeastLoaded(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  std::vector<ServerLoad> loads(n);
  for (std::size_t i = 0; i < n; ++i) {
    loads[i] = {static_cast<ServerId>(i),
                static_cast<std::int32_t>(rng.uniform_int(8)), 0};
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(pick_least_loaded(loads, rng));
  }
}
BENCHMARK(BM_PickLeastLoaded)->Arg(2)->Arg(8)->Arg(16);

void BM_ChoosePollSet(benchmark::State& state) {
  const auto d = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  std::vector<ServerId> servers(16);
  for (int i = 0; i < 16; ++i) servers[static_cast<std::size_t>(i)] = i;
  for (auto _ : state) {
    benchmark::DoNotOptimize(choose_poll_set(servers, d, rng));
  }
}
BENCHMARK(BM_ChoosePollSet)->Arg(2)->Arg(3)->Arg(8);

void BM_HistogramAdd(benchmark::State& state) {
  LatencyHistogram hist;
  Rng rng(1);
  for (auto _ : state) {
    hist.add(rng.exponential(22.2));
  }
  benchmark::DoNotOptimize(hist.count());
}
BENCHMARK(BM_HistogramAdd);

void BM_AccumulatorAdd(benchmark::State& state) {
  Accumulator acc;
  Rng rng(1);
  for (auto _ : state) {
    acc.add(rng.uniform01());
  }
  benchmark::DoNotOptimize(acc.mean());
}
BENCHMARK(BM_AccumulatorAdd);

void BM_WorkloadSourceNext(benchmark::State& state) {
  const Workload workload = make_fine_grain(10'000, 1);
  auto source = workload.make_source(1.0, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(source->next());
  }
}
BENCHMARK(BM_WorkloadSourceNext);

void BM_FullSimulationThroughput(benchmark::State& state) {
  const Workload workload = make_poisson_exp(0.050);
  for (auto _ : state) {
    sim::SimConfig config;
    config.policy = PolicyConfig::polling(2);
    config.load = 0.9;
    config.total_requests = 20'000;
    config.warmup_requests = 2'000;
    benchmark::DoNotOptimize(
        run_cluster_sim(config, workload).mean_response_ms());
  }
  state.SetItemsProcessed(state.iterations() * 20'000);
}
BENCHMARK(BM_FullSimulationThroughput)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace finelb

BENCHMARK_MAIN();
