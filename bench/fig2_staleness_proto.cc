// Staleness observatory: the live-prototype analogue of Figure 2.
//
// Figure 2 simulates how stale a polled load index goes as dissemination
// delay grows. This harness measures the real thing on the running
// prototype: for every traced request the merged, clock-aligned timeline
// yields the chosen server's queue length when it answered the poll
// (Q(t_reply), the index the client acted on) and when the dispatched
// request actually arrived (Q(t_dispatch), what it found). The empirical
// E|Q(t_reply) - Q(t_dispatch)| per load level sits next to the Equation 1
// M/M/1 bound 2*rho/(1 - rho^2), and the poll->arrival dissemination delay
// distribution explains the gap: the shorter the delay, the further below
// the (delay -> infinity) bound the prototype lands.
//
// The merged timeline of the last load level is also exported as Chrome
// trace-event JSON (load into https://ui.perfetto.dev) and flat CSV, so a
// single traced request can be followed enqueue -> poll -> reply -> pick ->
// dispatch -> service -> response across client and server processes.
//
//   fig2_staleness_proto [--servers=16] [--clients=4] [--requests=8000]
//                        [--loads=0.5,0.7,0.9] [--poll_size=3]
//                        [--trace_period=4] [--seed=1]
//                        [--trace_json=PATH] [--trace_csv=PATH]
//                        [--json=PATH]
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "cluster/experiment.h"
#include "common/flags.h"
#include "common/log.h"
#include "stats/queueing.h"
#include "telemetry/merge.h"
#include "workload/catalog.h"

using namespace finelb;

namespace {

bool write_file(const std::string& path, const std::string& body) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  std::fwrite(body.data(), 1, body.size(), f);
  std::fclose(f);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags = Flags::parse(argc, argv);
  init_log_level(flags);
  const int servers = static_cast<int>(flags.get_int("servers", 16));
  const int clients = static_cast<int>(flags.get_int("clients", 4));
  const std::int64_t requests = flags.get_int("requests", 8000);
  const auto loads = flags.get_double_list("loads", {0.5, 0.7, 0.9});
  const int poll_size = static_cast<int>(flags.get_int("poll_size", 3));
  const auto trace_period =
      static_cast<std::uint32_t>(flags.get_int("trace_period", 4));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const std::string trace_json = flags.get_string("trace_json", "");
  const std::string trace_csv = flags.get_string("trace_csv", "");
  const std::string json_path = flags.get_string("json", "");

  const Workload workload = make_poisson_exp(0.005);  // 5 ms mean service

  bench::print_header(
      "Figure 2 (live): measured load-index staleness vs Equation 1 bound",
      std::to_string(servers) + " servers, " + std::to_string(clients) +
          " clients, polling(" + std::to_string(poll_size) +
          "), Poisson/Exp 5 ms, " + std::to_string(requests) +
          " accesses/level, every " + std::to_string(trace_period) +
          "th access traced");

  bench::Table table(13);
  table.row({"load", "samples", "mean|dQ|", "p90|dQ|", "p99|dQ|", "Eq.1",
             "delay p50us", "delay p99us"});

  std::string json = "{\"levels\":[";
  std::vector<telemetry::NodeTrace> last_traces;
  int scrape_failures = 0;
  for (std::size_t i = 0; i < loads.size(); ++i) {
    cluster::PrototypeConfig config;
    config.servers = servers;
    config.clients = clients;
    config.policy = PolicyConfig::polling(poll_size);
    config.load = loads[i];
    config.total_requests = requests;
    config.use_directory = false;
    config.inject_busy_reply_delay = false;
    config.trace_sample_period = trace_period;
    config.collect_traces = true;
    config.seed = bench::derive_seed(seed, i);
    cluster::PrototypeResult result = cluster::run_prototype(config, workload);
    scrape_failures += result.trace_scrape_failures;

    const telemetry::StalenessSummary& s = result.staleness;
    const double bound = queueing::stale_index_inaccuracy_bound(loads[i]);
    table.row({bench::Table::pct(loads[i], 0),
               std::to_string(s.samples),
               bench::Table::num(s.mean_abs_diff, 3),
               bench::Table::num(s.p90_abs_diff, 1),
               bench::Table::num(s.p99_abs_diff, 1),
               bench::Table::num(bound, 3),
               bench::Table::num(s.p50_delay_us, 0),
               bench::Table::num(s.p99_delay_us, 0)});

    if (i != 0) json += ',';
    json += "{\"load\":" + bench::Table::num(loads[i], 2) +
            ",\"bound\":" + bench::Table::num(bound, 4) +
            ",\"staleness\":" + telemetry::staleness_to_json(s) + "}";
    if (i + 1 == loads.size()) last_traces = std::move(result.node_traces);
  }
  json += "]}";

  if (scrape_failures > 0) {
    std::printf("warning: %d trace scrapes timed out\n", scrape_failures);
  }
  std::printf(
      "\nEq.1 is the delay->infinity M/M/1 bound: the live prototype sits\n"
      "below it because polls are answered microseconds, not service-times,\n"
      "before dispatch; staleness grows toward the bound with load.\n");

  const auto merged = telemetry::merge_traces(last_traces);
  std::printf("merged timeline (last level): %zu records from %zu nodes\n",
              merged.size(), last_traces.size());
  if (!trace_json.empty() &&
      write_file(trace_json,
                 telemetry::to_chrome_trace_json(merged, last_traces))) {
    std::printf("Perfetto trace written to %s\n", trace_json.c_str());
  }
  if (!trace_csv.empty() &&
      write_file(trace_csv, telemetry::to_csv(merged, last_traces))) {
    std::printf("trace CSV written to %s\n", trace_csv.c_str());
  }
  if (!json_path.empty() && write_file(json_path, json + "\n")) {
    std::printf("staleness JSON written to %s\n", json_path.c_str());
  }
  return 0;
}
