// Figure 2 reproduction: impact of dissemination delay on load-index
// inaccuracy, single server, 90% busy (panel A) and 50% busy (panel B).
//
// For each workload the harness simulates one server, records its queue
// trajectory, and reports E|Q(t+delta) - Q(t)| for delays of 0..10x the
// mean service time, alongside the Equation (1) upper bound for
// Poisson/Exp: 2 rho / (1 - rho^2).
//
//   fig2_inaccuracy [--requests=400000] [--samples=40000] [--seed=1]
//                   [--loads=0.9,0.5] [--delays=0,0.5,1,2,4,6,8,10]
#include <cstdio>

#include "bench_util.h"
#include "common/flags.h"
#include "common/log.h"
#include "sim/inaccuracy.h"
#include "stats/queueing.h"
#include "workload/catalog.h"

using namespace finelb;

int main(int argc, char** argv) {
  const Flags flags = Flags::parse(argc, argv);
  init_log_level(flags);
  const std::int64_t requests = flags.get_int("requests", 400'000);
  const std::int64_t samples = flags.get_int("samples", 40'000);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const auto loads = flags.get_double_list("loads", {0.9, 0.5});
  const auto delays =
      flags.get_double_list("delays", {0, 0.5, 1, 2, 4, 6, 8, 10});

  const std::vector<std::pair<std::string, Workload>> workloads = {
      {"Poisson/Exp", make_poisson_exp(0.050)},
      {"Medium-Grain", make_medium_grain(100'000, seed + 10)},
      {"Fine-Grain", make_fine_grain(100'000, seed + 20)},
  };

  // One trajectory simulation per (load, workload) cell, fanned out across
  // cores with per-run derived seeds; results return in submission order.
  bench::SweepRunner<std::vector<sim::InaccuracyPoint>> runner;
  for (std::size_t r = 0; r < loads.size(); ++r) {
    for (std::size_t w = 0; w < workloads.size(); ++w) {
      const double rho = loads[r];
      const Workload& workload = workloads[w].second;
      const std::uint64_t run_seed =
          bench::derive_seed(seed, r * workloads.size() + w);
      runner.submit([&workload, rho, &delays, requests, samples, run_seed] {
        return sim::inaccuracy_sweep(workload, rho, delays, requests,
                                     samples, run_seed);
      });
    }
  }
  const auto all_sweeps = runner.run();

  for (std::size_t r = 0; r < loads.size(); ++r) {
    const double rho = loads[r];
    bench::print_header(
        "Figure 2: load index inaccuracy vs delay, server " +
            bench::Table::pct(rho, 0) + " busy",
        "1 server; delay normalized to mean service time; " +
            std::to_string(requests) + " requests, " +
            std::to_string(samples) + " samples per point");
    bench::Table table(14);
    std::vector<std::string> head = {"delay/svc"};
    for (const auto& [name, w] : workloads) {
      (void)w;
      head.push_back(name);
    }
    head.push_back("Eq.1 bound");
    table.row(head);

    const auto* sweeps = &all_sweeps[r * workloads.size()];
    const double bound = queueing::stale_index_inaccuracy_bound(rho);
    for (std::size_t d = 0; d < delays.size(); ++d) {
      std::vector<std::string> row = {bench::Table::num(delays[d], 1)};
      for (std::size_t w = 0; w < workloads.size(); ++w) {
        row.push_back(bench::Table::num(sweeps[w][d].inaccuracy, 3));
      }
      row.push_back(bench::Table::num(bound, 3));
      table.row(row);
    }
  }
  std::printf(
      "\nPaper shape: inaccuracy rises with delay; at 50%% it saturates\n"
      "near the 1.33 bound quickly; at 90%% it keeps growing (error ~3 at\n"
      "delay 10x) toward the 9.47 asymptote.\n");
  return 0;
}
