// Ablation: jittered vs fixed broadcast intervals.
//
// The paper (§2.2, citing Floyd & Jacobson) insists on non-fixed broadcast
// intervals "to avoid the system self-synchronization". This ablation runs
// the broadcast policy with and without jitter across intervals; with fixed
// intervals all servers announce in near-lockstep, so every client's table
// refreshes at once and the flocking window is maximal.
//
//   ablation_broadcast_jitter [--requests=120000] [--seed=1] [--load=0.9]
//                             [--intervals-ms=20,50,100,200]
#include <cstdio>

#include "bench_util.h"
#include "common/flags.h"
#include "common/log.h"
#include "sim/config.h"
#include "workload/catalog.h"

using namespace finelb;

int main(int argc, char** argv) {
  const Flags flags = Flags::parse(argc, argv);
  init_log_level(flags);
  const std::int64_t requests = flags.get_int("requests", 120'000);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const double load = flags.get_double("load", 0.9);
  const auto intervals_ms =
      flags.get_double_list("intervals-ms", {20, 50, 100, 200});

  const Workload workload = make_poisson_exp(0.050);

  bench::print_header(
      "Ablation: broadcast interval jitter (self-synchronization)",
      "16 servers, Poisson/Exp 50 ms, " + bench::Table::pct(load, 0) +
          " busy; mean response time (ms)");
  bench::Table table(15);
  table.row({"interval(ms)", "jittered", "fixed", "fixed/jittered"});

  // Jittered and fixed runs of one interval share a derived seed (paired
  // A/B); the whole grid fans out across cores.
  bench::SweepRunner<double> runner;
  for (std::size_t i = 0; i < intervals_ms.size(); ++i) {
    const double interval = intervals_ms[i];
    const std::uint64_t run_seed = bench::derive_seed(seed, i);
    for (const bool jitter : {true, false}) {
      runner.submit([&workload, interval, jitter, load, requests, run_seed] {
        sim::SimConfig config;
        config.policy = PolicyConfig::broadcast(from_ms(interval), jitter);
        config.load = load;
        config.total_requests = requests;
        config.warmup_requests = requests / 10;
        config.seed = run_seed;
        return run_cluster_sim(config, workload).mean_response_ms();
      });
    }
  }
  const std::vector<double> results = runner.run();

  for (std::size_t i = 0; i < intervals_ms.size(); ++i) {
    const double jittered = results[2 * i];
    const double fixed = results[2 * i + 1];
    table.row({bench::Table::num(intervals_ms[i], 0),
               bench::Table::num(jittered, 1), bench::Table::num(fixed, 1),
               bench::Table::num(fixed / jittered, 2) + "x"});
  }
  return 0;
}
