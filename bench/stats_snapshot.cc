// Observability harness: stand up a 16-server prototype cluster, drive it
// with a polling client, and scrape every node's telemetry over the
// STATS_INQUIRY pull channel *while the run is live* — the operator's view
// of a production cluster, not a post-mortem. The merged cluster document
// goes to stdout (and optionally a file), and the run finishes with each
// node's final snapshot so the two can be compared.
//
//   stats_snapshot [--servers=16] [--requests=4000] [--load=0.7]
//                  [--poll_size=3] [--trace_period=64] [--seed=1]
//                  [--json=PATH]
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "cluster/client_node.h"
#include "cluster/server_node.h"
#include "common/flags.h"
#include "common/log.h"
#include "net/clock.h"
#include "telemetry/export.h"
#include "telemetry/scrape.h"
#include "workload/catalog.h"

using namespace finelb;

int main(int argc, char** argv) {
  const Flags flags = Flags::parse(argc, argv);
  init_log_level(flags);
  const int servers = static_cast<int>(flags.get_int("servers", 16));
  const std::int64_t requests = flags.get_int("requests", 4000);
  const double load = flags.get_double("load", 0.7);
  const int poll_size = static_cast<int>(flags.get_int("poll_size", 3));
  const auto trace_period =
      static_cast<std::uint32_t>(flags.get_int("trace_period", 64));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const std::string json_path = flags.get_string("json", "");

  const Workload workload = make_poisson_exp(0.005);  // 5 ms mean service

  // --- cluster ---------------------------------------------------------------
  std::vector<std::unique_ptr<cluster::ServerNode>> nodes;
  std::vector<cluster::ServerEndpoints> endpoints;
  for (int s = 0; s < servers; ++s) {
    cluster::ServerOptions opts;
    opts.id = s;
    opts.inject_busy_reply_delay = false;
    opts.trace_sample_period = trace_period;
    opts.seed = seed + static_cast<std::uint64_t>(s) * 7919;
    nodes.push_back(std::make_unique<cluster::ServerNode>(opts));
    nodes.back()->start();
    endpoints.push_back({nodes.back()->id(), nodes.back()->service_address(),
                         nodes.back()->load_address()});
  }

  cluster::ClientOptions copts;
  copts.id = 0;
  copts.policy = PolicyConfig::polling(poll_size);
  copts.servers = endpoints;
  copts.total_requests = requests;
  copts.warmup_requests = requests / 10;
  copts.trace_sample_period = trace_period;
  copts.seed = seed + 31;
  const double scale = workload.arrival_scale_for_load(load, servers);
  cluster::ClientNode client(std::move(copts),
                             workload.make_source(scale, seed + 211));

  std::thread driver([&client] { client.run(); });

  // --- live scrape -----------------------------------------------------------
  // Let the cluster absorb some traffic, then pull every server's snapshot
  // over the wire mid-run. A node that missed the (UDP) inquiry is retried
  // once; persistent silence is reported rather than fatal.
  net::sleep_for(300 * kMillisecond);
  std::vector<std::string> docs;
  int unreachable = 0;
  for (const auto& node : nodes) {
    auto doc = telemetry::scrape_stats(node->load_address());
    if (!doc) doc = telemetry::scrape_stats(node->load_address());
    if (doc) {
      docs.push_back(std::move(*doc));
    } else {
      ++unreachable;
    }
  }
  const std::string live = telemetry::cluster_to_json(docs);
  const std::size_t live_answered = docs.size();

  driver.join();
  for (auto& node : nodes) node->stop();

  // --- final snapshots -------------------------------------------------------
  docs.clear();
  for (const auto& node : nodes) docs.push_back(node->stats_json());
  docs.push_back(client.stats_json());
  const std::string final_doc = telemetry::cluster_to_json(docs);

  bench::print_header(
      "Cluster stats snapshot (STATS_INQUIRY pull channel)",
      std::to_string(servers) + " servers, polling(" +
          std::to_string(poll_size) + "), Poisson/Exp 5 ms, " +
          bench::Table::pct(load, 0) + " load, " + std::to_string(requests) +
          " accesses; scraped live over UDP, then again after the run");
  std::printf("live scrape: %zu/%d servers answered (%d unreachable)\n",
              live_answered, servers, unreachable);
  std::printf("%s\n", live.c_str());

  if (!json_path.empty()) {
    if (std::FILE* f = std::fopen(json_path.c_str(), "w")) {
      std::fprintf(f, "%s\n", final_doc.c_str());
      std::fclose(f);
      std::printf("final cluster document written to %s\n",
                  json_path.c_str());
    } else {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
  }
  const cluster::ClientStats& stats = client.stats();
  std::printf("completed %lld/%lld accesses, %lld polls, %lld discarded\n",
              static_cast<long long>(stats.completed),
              static_cast<long long>(stats.issued),
              static_cast<long long>(stats.polls_sent),
              static_cast<long long>(stats.polls_discarded));
  return 0;
}
