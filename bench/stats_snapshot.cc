// Observability harness: stand up a 16-server prototype cluster, drive it
// with a polling client, and scrape every node's telemetry over the
// STATS_INQUIRY pull channel *while the run is live* — the operator's view
// of a production cluster, not a post-mortem. The merged cluster document
// goes to stdout (and optionally a file), and the run finishes with each
// node's final snapshot so the two can be compared.
//
// After the run the harness also pulls every server's trace ring over the
// TRACE_INQUIRY channel (clock-synced from the scrape round trips), merges
// it with the client's in-process ring, and reports the measured staleness
// distribution |Q(t_reply) - Q(t_dispatch)| against the Equation 1 bound —
// the same observatory fig2_staleness_proto sweeps across load levels.
//
// The health plane rides the same documents: every scrape is evaluated by
// a telemetry::AlertEngine (queue overload/growth, blacklist spikes,
// election churn, decision mistake rate), and the firing set prints in both
// JSON and Prometheus form. `--format=prom` switches the cluster documents
// themselves to Prometheus text exposition (from the in-process registries;
// the JSON path still exercises the wire pull).
//
// The decision observatory is live too: `--decision_period=N` audits every
// Nth dispatch decision into the client's ring, which is pulled over the
// chunked DECISION_INQUIRY channel mid-run and joined with the merged
// traces for the measured mistake-rate/regret summary.
//
//   stats_snapshot [--servers=16] [--requests=4000] [--load=0.7]
//                  [--poll_size=3] [--trace_period=64] [--decision_period=16]
//                  [--format=json|prom] [--seed=1]
//                  [--json=PATH] [--trace_json=PATH]
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "cluster/client_node.h"
#include "cluster/server_node.h"
#include "common/flags.h"
#include "common/log.h"
#include "net/clock.h"
#include "stats/queueing.h"
#include "telemetry/alerts.h"
#include "telemetry/clock_sync.h"
#include "telemetry/decision.h"
#include "telemetry/export.h"
#include "telemetry/merge.h"
#include "telemetry/scrape.h"
#include "workload/catalog.h"

using namespace finelb;

int main(int argc, char** argv) {
  const Flags flags = Flags::parse(argc, argv);
  init_log_level(flags);
  const int servers = static_cast<int>(flags.get_int("servers", 16));
  const std::int64_t requests = flags.get_int("requests", 4000);
  const double load = flags.get_double("load", 0.7);
  const int poll_size = static_cast<int>(flags.get_int("poll_size", 3));
  const auto trace_period =
      static_cast<std::uint32_t>(flags.get_int("trace_period", 64));
  const auto decision_period =
      static_cast<std::uint32_t>(flags.get_int("decision_period", 16));
  const std::string format = flags.get_string("format", "json");
  const bool prom = format == "prom";
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const std::string json_path = flags.get_string("json", "");
  const std::string trace_json_path = flags.get_string("trace_json", "");

  const Workload workload = make_poisson_exp(0.005);  // 5 ms mean service

  // --- cluster ---------------------------------------------------------------
  std::vector<std::unique_ptr<cluster::ServerNode>> nodes;
  std::vector<cluster::ServerEndpoints> endpoints;
  for (int s = 0; s < servers; ++s) {
    cluster::ServerOptions opts;
    opts.id = s;
    opts.inject_busy_reply_delay = false;
    opts.trace_sample_period = trace_period;
    opts.seed = seed + static_cast<std::uint64_t>(s) * 7919;
    nodes.push_back(std::make_unique<cluster::ServerNode>(opts));
    nodes.back()->start();
    endpoints.push_back({nodes.back()->id(), nodes.back()->service_address(),
                         nodes.back()->load_address()});
  }

  cluster::ClientOptions copts;
  copts.id = 0;
  copts.policy = PolicyConfig::polling(poll_size);
  copts.servers = endpoints;
  copts.total_requests = requests;
  copts.warmup_requests = requests / 10;
  copts.trace_sample_period = trace_period;
  copts.decision_sample_period = decision_period;
  copts.seed = seed + 31;
  const double scale = workload.arrival_scale_for_load(load, servers);
  cluster::ClientNode client(std::move(copts),
                             workload.make_source(scale, seed + 211));

  std::thread driver([&client] { client.run(); });

  // --- live scrape -----------------------------------------------------------
  // Let the cluster absorb some traffic, then pull every server's snapshot
  // over the wire mid-run. A node that missed the (UDP) inquiry is retried
  // once; persistent silence is reported rather than fatal.
  net::sleep_for(300 * kMillisecond);
  std::vector<net::Address> load_addrs;
  load_addrs.reserve(nodes.size());
  for (const auto& node : nodes) load_addrs.push_back(node->load_address());
  // Hardened cluster scrape: per-node timeout plus one retry, partial
  // results returned — a silent node costs its document, not the sweep.
  const telemetry::ClusterStatsScrape scraped =
      telemetry::scrape_cluster_stats(load_addrs);
  std::vector<std::string> docs = scraped.answered_documents();
  const std::string live = telemetry::cluster_to_json(docs);
  const std::size_t live_answered = docs.size();
  const int unreachable = scraped.failed;

  // Structured snapshots from the in-process registries back the Prometheus
  // exposition and the alert rules (in a real deployment each node's own
  // exposition endpoint would serve these; here one process owns them all).
  const auto collect_snapshots = [&nodes, &client] {
    std::vector<telemetry::MetricsSnapshot> snaps;
    snaps.reserve(nodes.size() + 1);
    for (const auto& node : nodes) {
      snaps.push_back(
          node->metrics().snapshot("server." + std::to_string(node->id())));
    }
    snaps.push_back(client.metrics().snapshot("client.0"));
    return snaps;
  };
  telemetry::AlertEngine alert_engine;
  // First evaluation: instantaneous rules can fire; delta baselines seed.
  std::vector<telemetry::Alert> live_alerts =
      alert_engine.evaluate_cluster(collect_snapshots());
  const std::string live_prom =
      prom ? telemetry::cluster_to_prometheus(collect_snapshots()) : "";

  // Pull the client's decision ring over the chunked DECISION_INQUIRY
  // channel while the run is live (the client's service socket answers).
  const auto decision_scrape =
      telemetry::scrape_decisions(client.decision_scrape_addr());

  driver.join();

  // --- trace pull + staleness observatory ------------------------------------
  // Scrape rings before stopping the servers: the TRACE_INQUIRY channel
  // rides the same load-index socket the run just used, and each chunked
  // round trip contributes a clock-sync sample for the merge.
  std::vector<telemetry::NodeTrace> traces;
  int trace_unreachable = 0;
  for (const auto& node : nodes) {
    telemetry::NodeTrace trace;
    trace.source = "server." + std::to_string(node->id());
    if (auto scrape = telemetry::scrape_trace(node->load_address())) {
      telemetry::ClockSync sync;
      for (const auto& s : scrape->clock_samples) {
        sync.add_sample(s.local_send_ns, s.remote_ns, s.local_recv_ns);
      }
      trace.clock_offset_ns = sync.offset_ns();
      trace.records = std::move(scrape->records);
    } else {
      ++trace_unreachable;
    }
    traces.push_back(std::move(trace));
  }
  {
    telemetry::NodeTrace trace;
    trace.source = "client.0";
    trace.records = client.trace().snapshot();
    traces.push_back(std::move(trace));
  }
  const auto merged = telemetry::merge_traces(traces);
  const auto staleness = telemetry::compute_staleness(merged);

  for (auto& node : nodes) node->stop();

  // --- decision observatory --------------------------------------------------
  // Join the audited decisions (post-run ring snapshot; the wire pull above
  // demonstrated the live channel) with the merged timeline: each decision's
  // realized queue depth comes from its kResponse trace record.
  const std::vector<DecisionRecord> decisions = client.decisions().snapshot();
  const telemetry::DecisionQualitySummary quality =
      telemetry::reconstruct_decision_quality(decisions, merged);

  // --- final snapshots + health plane ---------------------------------------
  docs.clear();
  for (const auto& node : nodes) docs.push_back(node->stats_json());
  docs.push_back(client.stats_json());
  const std::string final_doc = telemetry::cluster_to_json(docs);
  // Second evaluation of the same engine: delta rules (blacklist spikes,
  // election churn) now have their live-scrape baseline. The client's
  // document carries the reconstructed decision metrics, so the
  // mistake-rate rule sees the measured value.
  std::vector<telemetry::MetricsSnapshot> final_snaps = collect_snapshots();
  telemetry::append_decision_metrics(final_snaps.back(), quality);
  const std::vector<telemetry::Alert> final_alerts =
      alert_engine.evaluate_cluster(final_snaps);
  std::vector<telemetry::Alert> all_alerts = live_alerts;
  all_alerts.insert(all_alerts.end(), final_alerts.begin(),
                    final_alerts.end());

  bench::print_header(
      "Cluster stats snapshot (STATS_INQUIRY pull channel)",
      std::to_string(servers) + " servers, polling(" +
          std::to_string(poll_size) + "), Poisson/Exp 5 ms, " +
          bench::Table::pct(load, 0) + " load, " + std::to_string(requests) +
          " accesses; scraped live over UDP, then again after the run");
  std::printf("live scrape: %zu/%d servers answered (%d unreachable)\n",
              live_answered, servers, unreachable);
  std::printf("%s\n", prom ? live_prom.c_str() : live.c_str());

  if (!json_path.empty()) {
    if (std::FILE* f = std::fopen(json_path.c_str(), "w")) {
      std::fprintf(f, "%s\n", final_doc.c_str());
      std::fclose(f);
      std::printf("final cluster document written to %s\n",
                  json_path.c_str());
    } else {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
  }
  const cluster::ClientStats& stats = client.stats();
  std::printf("completed %lld/%lld accesses, %lld polls, %lld discarded\n",
              static_cast<long long>(stats.completed),
              static_cast<long long>(stats.issued),
              static_cast<long long>(stats.polls_sent),
              static_cast<long long>(stats.polls_discarded));

  std::printf(
      "\ntrace pull: %zu/%d servers answered (%d unreachable), "
      "%zu merged records\n",
      traces.size() - 1 - static_cast<std::size_t>(trace_unreachable),
      servers, trace_unreachable, merged.size());
  std::printf("staleness |Q(t_reply)-Q(t_dispatch)|: %s\n",
              telemetry::staleness_to_json(staleness).c_str());
  std::printf("Equation 1 bound at %s load: %.3f (measured mean %.3f)\n",
              bench::Table::pct(load, 0).c_str(),
              queueing::stale_index_inaccuracy_bound(load),
              staleness.mean_abs_diff);
  if (!trace_json_path.empty()) {
    if (std::FILE* f = std::fopen(trace_json_path.c_str(), "w")) {
      const std::string doc = telemetry::to_chrome_trace_json(merged, traces);
      std::fwrite(doc.data(), 1, doc.size(), f);
      std::fclose(f);
      std::printf("Perfetto trace written to %s\n", trace_json_path.c_str());
    } else {
      std::fprintf(stderr, "cannot write %s\n", trace_json_path.c_str());
      return 1;
    }
  }

  // --- decision observatory + health plane report ----------------------------
  if (decision_scrape) {
    std::printf(
        "\ndecision pull (DECISION_INQUIRY over UDP, mid-run): "
        "%zu records from node %d%s\n",
        decision_scrape->records.size(), decision_scrape->node,
        decision_scrape->complete ? "" : " (partial)");
  } else {
    std::printf("\ndecision pull (DECISION_INQUIRY over UDP): no answer\n");
  }
  std::printf("decision quality over %zu audited decisions: %s\n",
              decisions.size(),
              telemetry::decision_quality_to_json(quality).c_str());
  if (prom) {
    std::printf("\nfinal exposition:\n%s",
                telemetry::cluster_to_prometheus(final_snaps).c_str());
  }
  std::printf("\nalerts (%zu live + %zu final): %s\n", live_alerts.size(),
              final_alerts.size(),
              telemetry::alerts_to_json(all_alerts).c_str());
  std::printf("%s", telemetry::alerts_to_prometheus(all_alerts).c_str());
  return 0;
}
