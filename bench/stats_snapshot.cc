// Observability harness: stand up a 16-server prototype cluster, drive it
// with a polling client, and scrape every node's telemetry over the
// STATS_INQUIRY pull channel *while the run is live* — the operator's view
// of a production cluster, not a post-mortem. The merged cluster document
// goes to stdout (and optionally a file), and the run finishes with each
// node's final snapshot so the two can be compared.
//
// After the run the harness also pulls every server's trace ring over the
// TRACE_INQUIRY channel (clock-synced from the scrape round trips), merges
// it with the client's in-process ring, and reports the measured staleness
// distribution |Q(t_reply) - Q(t_dispatch)| against the Equation 1 bound —
// the same observatory fig2_staleness_proto sweeps across load levels.
//
//   stats_snapshot [--servers=16] [--requests=4000] [--load=0.7]
//                  [--poll_size=3] [--trace_period=64] [--seed=1]
//                  [--json=PATH] [--trace_json=PATH]
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "cluster/client_node.h"
#include "cluster/server_node.h"
#include "common/flags.h"
#include "common/log.h"
#include "net/clock.h"
#include "stats/queueing.h"
#include "telemetry/clock_sync.h"
#include "telemetry/export.h"
#include "telemetry/merge.h"
#include "telemetry/scrape.h"
#include "workload/catalog.h"

using namespace finelb;

int main(int argc, char** argv) {
  const Flags flags = Flags::parse(argc, argv);
  init_log_level(flags);
  const int servers = static_cast<int>(flags.get_int("servers", 16));
  const std::int64_t requests = flags.get_int("requests", 4000);
  const double load = flags.get_double("load", 0.7);
  const int poll_size = static_cast<int>(flags.get_int("poll_size", 3));
  const auto trace_period =
      static_cast<std::uint32_t>(flags.get_int("trace_period", 64));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const std::string json_path = flags.get_string("json", "");
  const std::string trace_json_path = flags.get_string("trace_json", "");

  const Workload workload = make_poisson_exp(0.005);  // 5 ms mean service

  // --- cluster ---------------------------------------------------------------
  std::vector<std::unique_ptr<cluster::ServerNode>> nodes;
  std::vector<cluster::ServerEndpoints> endpoints;
  for (int s = 0; s < servers; ++s) {
    cluster::ServerOptions opts;
    opts.id = s;
    opts.inject_busy_reply_delay = false;
    opts.trace_sample_period = trace_period;
    opts.seed = seed + static_cast<std::uint64_t>(s) * 7919;
    nodes.push_back(std::make_unique<cluster::ServerNode>(opts));
    nodes.back()->start();
    endpoints.push_back({nodes.back()->id(), nodes.back()->service_address(),
                         nodes.back()->load_address()});
  }

  cluster::ClientOptions copts;
  copts.id = 0;
  copts.policy = PolicyConfig::polling(poll_size);
  copts.servers = endpoints;
  copts.total_requests = requests;
  copts.warmup_requests = requests / 10;
  copts.trace_sample_period = trace_period;
  copts.seed = seed + 31;
  const double scale = workload.arrival_scale_for_load(load, servers);
  cluster::ClientNode client(std::move(copts),
                             workload.make_source(scale, seed + 211));

  std::thread driver([&client] { client.run(); });

  // --- live scrape -----------------------------------------------------------
  // Let the cluster absorb some traffic, then pull every server's snapshot
  // over the wire mid-run. A node that missed the (UDP) inquiry is retried
  // once; persistent silence is reported rather than fatal.
  net::sleep_for(300 * kMillisecond);
  std::vector<std::string> docs;
  int unreachable = 0;
  for (const auto& node : nodes) {
    auto doc = telemetry::scrape_stats(node->load_address());
    if (!doc) doc = telemetry::scrape_stats(node->load_address());
    if (doc) {
      docs.push_back(std::move(*doc));
    } else {
      ++unreachable;
    }
  }
  const std::string live = telemetry::cluster_to_json(docs);
  const std::size_t live_answered = docs.size();

  driver.join();

  // --- trace pull + staleness observatory ------------------------------------
  // Scrape rings before stopping the servers: the TRACE_INQUIRY channel
  // rides the same load-index socket the run just used, and each chunked
  // round trip contributes a clock-sync sample for the merge.
  std::vector<telemetry::NodeTrace> traces;
  int trace_unreachable = 0;
  for (const auto& node : nodes) {
    telemetry::NodeTrace trace;
    trace.source = "server." + std::to_string(node->id());
    if (auto scrape = telemetry::scrape_trace(node->load_address())) {
      telemetry::ClockSync sync;
      for (const auto& s : scrape->clock_samples) {
        sync.add_sample(s.local_send_ns, s.remote_ns, s.local_recv_ns);
      }
      trace.clock_offset_ns = sync.offset_ns();
      trace.records = std::move(scrape->records);
    } else {
      ++trace_unreachable;
    }
    traces.push_back(std::move(trace));
  }
  {
    telemetry::NodeTrace trace;
    trace.source = "client.0";
    trace.records = client.trace().snapshot();
    traces.push_back(std::move(trace));
  }
  const auto merged = telemetry::merge_traces(traces);
  const auto staleness = telemetry::compute_staleness(merged);

  for (auto& node : nodes) node->stop();

  // --- final snapshots -------------------------------------------------------
  docs.clear();
  for (const auto& node : nodes) docs.push_back(node->stats_json());
  docs.push_back(client.stats_json());
  const std::string final_doc = telemetry::cluster_to_json(docs);

  bench::print_header(
      "Cluster stats snapshot (STATS_INQUIRY pull channel)",
      std::to_string(servers) + " servers, polling(" +
          std::to_string(poll_size) + "), Poisson/Exp 5 ms, " +
          bench::Table::pct(load, 0) + " load, " + std::to_string(requests) +
          " accesses; scraped live over UDP, then again after the run");
  std::printf("live scrape: %zu/%d servers answered (%d unreachable)\n",
              live_answered, servers, unreachable);
  std::printf("%s\n", live.c_str());

  if (!json_path.empty()) {
    if (std::FILE* f = std::fopen(json_path.c_str(), "w")) {
      std::fprintf(f, "%s\n", final_doc.c_str());
      std::fclose(f);
      std::printf("final cluster document written to %s\n",
                  json_path.c_str());
    } else {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
  }
  const cluster::ClientStats& stats = client.stats();
  std::printf("completed %lld/%lld accesses, %lld polls, %lld discarded\n",
              static_cast<long long>(stats.completed),
              static_cast<long long>(stats.issued),
              static_cast<long long>(stats.polls_sent),
              static_cast<long long>(stats.polls_discarded));

  std::printf(
      "\ntrace pull: %zu/%d servers answered (%d unreachable), "
      "%zu merged records\n",
      traces.size() - 1 - static_cast<std::size_t>(trace_unreachable),
      servers, trace_unreachable, merged.size());
  std::printf("staleness |Q(t_reply)-Q(t_dispatch)|: %s\n",
              telemetry::staleness_to_json(staleness).c_str());
  std::printf("Equation 1 bound at %s load: %.3f (measured mean %.3f)\n",
              bench::Table::pct(load, 0).c_str(),
              queueing::stale_index_inaccuracy_bound(load),
              staleness.mean_abs_diff);
  if (!trace_json_path.empty()) {
    if (std::FILE* f = std::fopen(trace_json_path.c_str(), "w")) {
      const std::string doc = telemetry::to_chrome_trace_json(merged, traces);
      std::fwrite(doc.data(), 1, doc.size(), f);
      std::fclose(f);
      std::printf("Perfetto trace written to %s\n", trace_json_path.c_str());
    } else {
      std::fprintf(stderr, "cannot write %s\n", trace_json_path.c_str());
      return 1;
    }
  }
  return 0;
}
