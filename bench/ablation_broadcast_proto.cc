// Ablation (extension): the broadcast policy on the real prototype.
//
// The paper ruled broadcast out from its simulation results (§3) and never
// built it; this repo's runtime implements it (broadcast channel + server
// announcement agents + client tables), so the Figure 3 broadcast-interval
// sweep can be measured end-to-end and compared against polling(2) — the
// policy the paper ships — at equal message budgets.
//
//   ablation_broadcast_proto [--requests=6000] [--seed=1] [--load=0.9]
//                            [--intervals-ms=10,50,200,1000]
#include <cstdio>

#include "bench_util.h"
#include "cluster/experiment.h"
#include "common/flags.h"
#include "common/log.h"
#include "workload/catalog.h"

using namespace finelb;

int main(int argc, char** argv) {
  const Flags flags = Flags::parse(argc, argv);
  init_log_level(flags);
  const std::int64_t requests = flags.get_int("requests", 6000);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const double load = flags.get_double("load", 0.9);
  const auto intervals_ms =
      flags.get_double_list("intervals-ms", {10, 50, 200, 1000});

  const Workload workload = make_fine_grain(50'000, seed + 20);

  cluster::PrototypeConfig base;
  base.load = load;
  base.total_requests = requests;
  // All intervals normalize against the polling(2) reference, so every run
  // shares one derived seed (paired comparison). Prototype runs burn real
  // CPU: the sweep runner stays serial.
  base.seed = bench::derive_seed(seed, 0);

  auto runner = bench::SweepRunner<cluster::PrototypeResult>::serial();
  runner.submit([&workload, base] {
    cluster::PrototypeConfig config = base;
    config.policy = PolicyConfig::polling(2);
    return cluster::run_prototype(config, workload);
  });
  for (const double interval : intervals_ms) {
    runner.submit([&workload, base, interval] {
      cluster::PrototypeConfig config = base;
      config.policy = PolicyConfig::broadcast(from_ms(interval));
      return cluster::run_prototype(config, workload);
    });
  }
  const auto results = runner.run();
  const double polling_ms = results[0].clients.response_ms.mean();

  bench::print_header(
      "Ablation: broadcast policy on the prototype (extension)",
      "16 servers, Fine-Grain trace, " + bench::Table::pct(load, 0) +
          " busy; polling(2) reference = " + bench::Table::num(polling_ms, 1) +
          " ms");
  bench::Table table(15);
  table.row({"interval(ms)", "resp(ms)", "vs polling(2)", "announcements"});

  for (std::size_t i = 0; i < intervals_ms.size(); ++i) {
    const double interval = intervals_ms[i];
    const auto& result = results[1 + i];
    table.row({bench::Table::num(interval, 0),
               bench::Table::num(result.clients.response_ms.mean(), 1),
               bench::Table::num(
                   result.clients.response_ms.mean() / polling_ms, 2) +
                   "x",
               std::to_string(result.clients.broadcasts_received)});
  }
  std::printf(
      "\nExpected (paper section 2.2 transplanted to the runtime): short\n"
      "intervals approach polling at a much higher message cost; long\n"
      "intervals collapse under stale information and flocking.\n");
  return 0;
}
