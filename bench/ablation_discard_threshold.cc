// Ablation: discard-timeout threshold sweep around the paper's 1 ms choice.
//
// Runs the prototype on the Fine-Grain trace at 90% load with polling(3)
// and a range of discard thresholds. Too small a threshold throws away
// almost all load information (degenerating toward random); too large a
// threshold stops saving polling time. The paper picked 1 ms by profiling;
// this sweep shows how wide the sweet spot actually is.
//
//   ablation_discard_threshold [--requests=2000] [--seed=1] [--load=0.9]
//                              [--thresholds-ms=0.25,0.5,1,2,4,8]
#include <cstdio>

#include "bench_util.h"
#include "cluster/experiment.h"
#include "common/flags.h"
#include "common/log.h"
#include "workload/catalog.h"

using namespace finelb;

int main(int argc, char** argv) {
  const Flags flags = Flags::parse(argc, argv);
  init_log_level(flags);
  const std::int64_t requests = flags.get_int("requests", 3000);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const double load = flags.get_double("load", 0.9);
  const auto thresholds_ms =
      flags.get_double_list("thresholds-ms", {0.25, 0.5, 1, 2, 4, 8});

  const Workload workload = make_fine_grain(50'000, seed + 20);

  cluster::PrototypeConfig base;
  base.policy = PolicyConfig::polling(3);
  base.load = load;
  base.total_requests = requests;
  // Every threshold is compared against the no-discard baseline, so all
  // runs share one derived seed (paired comparison). Prototype runs burn
  // real CPU: the sweep runner stays serial.
  base.seed = bench::derive_seed(seed, 0);

  auto runner = bench::SweepRunner<cluster::PrototypeResult>::serial();
  runner.submit(
      [&workload, base] { return cluster::run_prototype(base, workload); });
  for (const double threshold : thresholds_ms) {
    runner.submit([&workload, base, threshold] {
      cluster::PrototypeConfig config = base;
      config.policy = PolicyConfig::polling(3, from_ms(threshold));
      return cluster::run_prototype(config, workload);
    });
  }
  const auto results = runner.run();
  const auto& no_discard = results[0];

  bench::print_header(
      "Ablation: discard threshold sweep (prototype, Fine-Grain)",
      "16 servers, polling(3), " + bench::Table::pct(load, 0) +
          " busy; no-discard baseline mean response " +
          bench::Table::num(no_discard.clients.response_ms.mean(), 1) +
          " ms, poll time " +
          bench::Table::num(no_discard.clients.poll_time_ms.mean(), 2) +
          " ms");
  bench::Table table(15);
  table.row({"threshold(ms)", "resp(ms)", "poll(ms)", "timeouts",
             "vs-basic"});

  for (std::size_t t = 0; t < thresholds_ms.size(); ++t) {
    const double threshold = thresholds_ms[t];
    const auto& result = results[1 + t];
    const double resp = result.clients.response_ms.mean();
    table.row(
        {bench::Table::num(threshold, 2), bench::Table::num(resp, 1),
         bench::Table::num(result.clients.poll_time_ms.mean(), 2),
         std::to_string(result.clients.polls_timed_out),
         bench::Table::pct((no_discard.clients.response_ms.mean() - resp) /
                           no_discard.clients.response_ms.mean())});
  }
  return 0;
}
