#include "cluster/server_node.h"

#include <gtest/gtest.h>

#include <array>
#include <string>

#include "common/check.h"
#include "net/clock.h"
#include "net/poller.h"
#include "telemetry/metrics.h"

namespace finelb::cluster {
namespace {

ServerOptions quiet_options(ServerId id = 0) {
  ServerOptions opts;
  opts.id = id;
  opts.inject_busy_reply_delay = false;
  return opts;
}

// Sends a datagram and waits for one reply on the same socket.
template <class Request>
std::vector<std::uint8_t> roundtrip(net::UdpSocket& socket,
                                    const net::Address& dest,
                                    const Request& request,
                                    SimDuration timeout = 2 * kSecond) {
  EXPECT_TRUE(socket.send_to(request.encode(), dest));
  net::Poller poller;
  poller.add(socket.fd(), 0);
  std::array<std::uint8_t, 512> buf{};
  const SimTime deadline = net::monotonic_now() + timeout;
  while (net::monotonic_now() < deadline) {
    poller.wait(50 * kMillisecond);
    if (auto dgram = socket.recv_from(buf)) {
      return {buf.begin(), buf.begin() + static_cast<long>(dgram->size)};
    }
  }
  ADD_FAILURE() << "no reply within timeout";
  return {};
}

TEST(ServerNodeTest, AnswersLoadInquiriesWithZeroQueueWhenIdle) {
  ServerNode server(quiet_options(3));
  server.start();
  net::UdpSocket client;
  net::LoadInquiry inquiry;
  inquiry.seq = 77;
  const auto bytes = roundtrip(client, server.load_address(), inquiry);
  const auto reply = net::LoadReply::decode(bytes);
  EXPECT_EQ(reply.seq, 77u);
  EXPECT_EQ(reply.queue_length, 0);
  server.stop();
  EXPECT_EQ(server.counters().inquiries_answered, 1);
}

TEST(ServerNodeTest, ServesRequestAndDecrementsQueue) {
  ServerNode server(quiet_options(5));
  server.start();
  net::UdpSocket client;
  net::ServiceRequest request;
  request.request_id = 1234;
  request.service_us = 5000;  // 5 ms
  const SimTime start = net::monotonic_now();
  const auto bytes = roundtrip(client, server.service_address(), request);
  const SimDuration elapsed = net::monotonic_now() - start;
  const auto response = net::ServiceResponse::decode(bytes);
  EXPECT_EQ(response.request_id, 1234u);
  EXPECT_EQ(response.server, 5);
  EXPECT_EQ(response.queue_at_arrival, 0);
  EXPECT_GE(elapsed, 5 * kMillisecond) << "service time must be honoured";
  // The worker sends the response before decrementing the queue counter,
  // so poll briefly instead of asserting the instant the reply lands.
  const SimTime drain_deadline = net::monotonic_now() + kSecond;
  while (server.queue_length() != 0 && net::monotonic_now() < drain_deadline) {
    net::sleep_for(kMillisecond);
  }
  EXPECT_EQ(server.queue_length(), 0) << "queue drains after response";
  server.stop();
  EXPECT_EQ(server.counters().requests_served, 1);
}

TEST(ServerNodeTest, FifoQueueingSerializesRequests) {
  ServerNode server(quiet_options(1));  // one worker: non-preemptive unit
  server.start();
  net::UdpSocket client;
  net::ServiceRequest request;
  request.service_us = 30000;  // 30 ms each
  for (std::uint64_t i = 0; i < 3; ++i) {
    request.request_id = i;
    ASSERT_TRUE(client.send_to(request.encode(), server.service_address()));
  }
  // Give the receive loop a moment; all three must be active at once.
  net::sleep_for(10 * kMillisecond);
  EXPECT_EQ(server.queue_length(), 3);

  // Responses must arrive in FIFO order and take ~90 ms total.
  net::Poller poller;
  poller.add(client.fd(), 0);
  std::array<std::uint8_t, 128> buf{};
  std::vector<std::uint64_t> order;
  const SimTime deadline = net::monotonic_now() + 2 * kSecond;
  while (order.size() < 3 && net::monotonic_now() < deadline) {
    poller.wait(50 * kMillisecond);
    while (auto dgram = client.recv_from(buf)) {
      order.push_back(
          net::ServiceResponse::decode(std::span(buf.data(), dgram->size))
              .request_id);
    }
  }
  EXPECT_EQ(order, (std::vector<std::uint64_t>{0, 1, 2}));
  server.stop();
}

TEST(ServerNodeTest, QueueLengthVisibleToPollsDuringService) {
  ServerNode server(quiet_options(2));
  server.start();
  net::UdpSocket service_client;
  net::ServiceRequest request;
  request.request_id = 9;
  request.service_us = 100000;  // 100 ms
  ASSERT_TRUE(service_client.send_to(request.encode(),
                                     server.service_address()));
  net::sleep_for(20 * kMillisecond);

  net::UdpSocket poll_client;
  net::LoadInquiry inquiry;
  inquiry.seq = 1;
  const auto bytes = roundtrip(poll_client, server.load_address(), inquiry);
  EXPECT_EQ(net::LoadReply::decode(bytes).queue_length, 1);
  server.stop();
}

TEST(ServerNodeTest, BusyReplyDelaySlowsInquiriesUnderLoad) {
  ServerOptions opts = quiet_options(4);
  opts.inject_busy_reply_delay = true;
  opts.busy_reply_alpha = 1.2;
  opts.busy_reply_xm = from_ms(5);  // exaggerated for test visibility
  opts.busy_reply_cap = from_ms(50);
  ServerNode server(opts);
  server.start();

  // Idle: replies are fast even with injection enabled (qlen == 0).
  net::UdpSocket poll_client;
  net::LoadInquiry inquiry;
  inquiry.seq = 1;
  SimTime start = net::monotonic_now();
  roundtrip(poll_client, server.load_address(), inquiry);
  EXPECT_LT(net::monotonic_now() - start, from_ms(5));

  // Busy: replies carry the injected Pareto delay (min 5 ms here).
  net::UdpSocket service_client;
  net::ServiceRequest request;
  request.request_id = 1;
  request.service_us = 200000;
  ASSERT_TRUE(service_client.send_to(request.encode(),
                                     server.service_address()));
  net::sleep_for(20 * kMillisecond);
  inquiry.seq = 2;
  start = net::monotonic_now();
  roundtrip(poll_client, server.load_address(), inquiry);
  EXPECT_GE(net::monotonic_now() - start, from_ms(4));
  server.stop();
}

TEST(ServerNodeTest, MalformedDatagramsIgnored) {
  ServerNode server(quiet_options(6));
  server.start();
  net::UdpSocket client;
  const std::array<std::uint8_t, 3> garbage = {0xff, 0x00, 0x42};
  ASSERT_TRUE(client.send_to(garbage, server.service_address()));
  ASSERT_TRUE(client.send_to(garbage, server.load_address()));
  net::sleep_for(30 * kMillisecond);
  EXPECT_EQ(server.queue_length(), 0);
  // Server still functional afterwards.
  net::LoadInquiry inquiry;
  inquiry.seq = 3;
  const auto bytes = roundtrip(client, server.load_address(), inquiry);
  EXPECT_EQ(net::LoadReply::decode(bytes).seq, 3u);
  server.stop();
}

TEST(ServerNodeTest, AnswersStatsInquiriesWithJsonSnapshot) {
  ServerOptions opts = quiet_options(11);
  opts.trace_sample_period = 1;  // trace every request
  ServerNode server(opts);
  server.start();

  // Serve one request so the scraped snapshot has non-zero content.
  net::UdpSocket service_client;
  net::ServiceRequest request;
  request.request_id = 42;
  request.service_us = 1000;
  roundtrip(service_client, server.service_address(), request);
  // The served counter ticks just after the response is sent; wait for it
  // so the scrape below observes the completed request.
  const SimTime drain_deadline = net::monotonic_now() + kSecond;
  while (server.counters().requests_served < 1 &&
         net::monotonic_now() < drain_deadline) {
    net::sleep_for(kMillisecond);
  }

  // Snapshot documents are far larger than fixed wire messages: receive
  // through a payload-sized buffer instead of the roundtrip() helper's.
  net::UdpSocket scraper;
  net::StatsInquiry inquiry;
  inquiry.seq = 909;
  ASSERT_TRUE(scraper.send_to(inquiry.encode(), server.load_address()));
  net::Poller poller;
  poller.add(scraper.fd(), 0);
  ASSERT_FALSE(poller.wait(2 * kSecond).empty());
  std::vector<std::uint8_t> buf(64 * 1024);
  const auto dgram = scraper.recv_from(buf);
  ASSERT_TRUE(dgram.has_value());
  net::StatsReply reply;
  ASSERT_TRUE(
      net::StatsReply::try_decode(std::span(buf.data(), dgram->size), reply));
  EXPECT_EQ(reply.seq, 909u);
  server.stop();

  const std::string& json = reply.payload;
  EXPECT_NE(json.find("\"node\":\"server.11\""), std::string::npos);
  if (telemetry::kEnabled) {
    EXPECT_NE(json.find("\"queue_depth\":"), std::string::npos);
    EXPECT_NE(json.find("\"requests_served\":1"), std::string::npos);
    EXPECT_NE(json.find("\"service_time_ms\":{\"count\":1"),
              std::string::npos);
    EXPECT_NE(json.find("\"point\":\"service_start\""), std::string::npos);
    EXPECT_NE(json.find("\"point\":\"response\""), std::string::npos);
  }
  // The registry view agrees with the wire snapshot.
  const auto snap = server.metrics().snapshot("server.11");
  for (const auto& [name, value] : snap.counters) {
    if (name == "requests_served") {
      EXPECT_EQ(value, telemetry::kEnabled ? 1 : 0);
    }
  }
}

TEST(ServerNodeTest, StopIsIdempotentAndRestartForbidden) {
  ServerNode server(quiet_options(7));
  server.start();
  server.stop();
  server.stop();  // no-op
  EXPECT_THROW(server.start(), InvariantError);
}

TEST(ServerNodeTest, WorkerPoolAllowsConcurrentService) {
  ServerOptions opts = quiet_options(8);
  opts.worker_threads = 3;
  ServerNode server(opts);
  server.start();
  net::UdpSocket client;
  net::ServiceRequest request;
  request.service_us = 50000;  // 50 ms
  const SimTime start = net::monotonic_now();
  for (std::uint64_t i = 0; i < 3; ++i) {
    request.request_id = i;
    ASSERT_TRUE(client.send_to(request.encode(), server.service_address()));
  }
  net::Poller poller;
  poller.add(client.fd(), 0);
  std::array<std::uint8_t, 128> buf{};
  int responses = 0;
  const SimTime deadline = net::monotonic_now() + 2 * kSecond;
  while (responses < 3 && net::monotonic_now() < deadline) {
    poller.wait(50 * kMillisecond);
    while (client.recv_from(buf)) ++responses;
  }
  const SimDuration elapsed = net::monotonic_now() - start;
  EXPECT_EQ(responses, 3);
  // Three 50 ms jobs on three workers: well under the 150 ms serial time.
  EXPECT_LT(elapsed, 120 * kMillisecond);
  server.stop();
}

}  // namespace
}  // namespace finelb::cluster
