// Deterministic election tests (ISSUE 6 acceptance): under fixed seeds and
// sim message-loss/partition schedules, 3- and 5-replica clusters elect
// exactly one leader per term, and re-elect within the configured timeout
// after a leader kill. Everything runs on the virtual-time ElectionSim, so
// the suite is fast and bit-exact reproducible.
#include "cluster/ha/election.h"
#include "cluster/ha/election_sim.h"

#include <gtest/gtest.h>

#include "common/time.h"

namespace finelb::cluster::ha {
namespace {

ElectionConfig base_config() {
  ElectionConfig config;
  config.heartbeat_interval = 25 * kMillisecond;
  config.election_timeout_min = 100 * kMillisecond;
  config.election_timeout_max = 200 * kMillisecond;
  config.leader_lease = 75 * kMillisecond;
  return config;
}

TEST(ElectionSimTest, SingleNodeElectsItself) {
  SimSchedule schedule;
  ElectionSim sim(1, base_config(), schedule);
  sim.run_until(300 * kMillisecond);
  EXPECT_EQ(sim.leader(), 0);
  EXPECT_TRUE(sim.core(0).has_lease(sim.now()));
  EXPECT_TRUE(sim.safety_held());
}

TEST(ElectionSimTest, ThreeReplicasElectExactlyOneLeader) {
  SimSchedule schedule;
  ElectionSim sim(3, base_config(), schedule);
  sim.run_until(kSecond);
  const std::int32_t leader = sim.leader();
  ASSERT_NE(leader, -1);
  EXPECT_TRUE(sim.core(leader).has_lease(sim.now()));
  EXPECT_TRUE(sim.safety_held());
  // A settled cluster agrees on who leads.
  for (std::int32_t i = 0; i < 3; ++i) {
    EXPECT_EQ(sim.core(i).leader(), leader) << "node " << i;
    EXPECT_EQ(sim.core(i).term(), sim.core(leader).term()) << "node " << i;
  }
}

TEST(ElectionSimTest, FiveReplicasElectExactlyOneLeader) {
  SimSchedule schedule;
  schedule.seed = 7;
  ElectionSim sim(5, base_config(), schedule);
  sim.run_until(kSecond);
  const std::int32_t leader = sim.leader();
  ASSERT_NE(leader, -1);
  EXPECT_TRUE(sim.safety_held());
  for (std::int32_t i = 0; i < 5; ++i) {
    EXPECT_EQ(sim.core(i).leader(), leader) << "node " << i;
  }
}

// The safety half of the acceptance criterion: across every (cluster size,
// loss rate, seed) schedule, no term ever sees two leaders. Liveness is
// only asserted for the loss rates where an election can realistically
// finish inside the run.
TEST(ElectionSimTest, SafetyAcrossLossSchedules) {
  for (const std::int32_t nodes : {3, 5}) {
    for (const double loss : {0.0, 0.1, 0.3}) {
      for (std::uint64_t seed = 1; seed <= 10; ++seed) {
        SimSchedule schedule;
        schedule.loss = loss;
        schedule.seed = seed;
        ElectionConfig config = base_config();
        config.seed = seed;
        ElectionSim sim(nodes, config, schedule);
        sim.run_until(3 * kSecond);
        EXPECT_TRUE(sim.safety_held())
            << nodes << " nodes, loss " << loss << ", seed " << seed;
        if (loss <= 0.1) {
          EXPECT_NE(sim.leader(), -1)
              << nodes << " nodes, loss " << loss << ", seed " << seed;
        }
      }
    }
  }
}

TEST(ElectionSimTest, ReelectsWithinTimeoutAfterLeaderKill) {
  const ElectionConfig config = base_config();
  SimSchedule schedule;
  ElectionSim sim(3, config, schedule);
  sim.run_until(kSecond);
  const std::int32_t old_leader = sim.leader();
  ASSERT_NE(old_leader, -1);
  const std::uint64_t old_term = sim.core(old_leader).term();

  sim.kill(old_leader);
  const SimTime killed_at = sim.now();
  // Detection is bounded by the widest election timeout (armed at the last
  // heartbeat the followers saw), and the vote round itself by a few
  // simulated RTTs — 100 ms of margin covers both.
  const SimTime deadline =
      killed_at + config.election_timeout_max + 100 * kMillisecond;
  std::int32_t new_leader = -1;
  while (sim.now() < deadline) {
    sim.run_until(sim.now() + 10 * kMillisecond);
    new_leader = sim.leader();
    if (new_leader != -1 && new_leader != old_leader) break;
  }
  ASSERT_NE(new_leader, -1) << "no re-election before the timeout bound";
  EXPECT_NE(new_leader, old_leader);
  EXPECT_GT(sim.core(new_leader).term(), old_term);
  EXPECT_TRUE(sim.safety_held());
}

// A partitioned-away leader must lose its lease and step down while the
// majority side elects a replacement; after the heal the deposed leader
// adopts the higher term. Uses deterministic replay to aim the partition
// at whichever node won the first run.
TEST(ElectionSimTest, PartitionedLeaderStepsDownMajorityReelects) {
  const ElectionConfig config = base_config();
  SimSchedule probe;
  probe.seed = 3;
  ElectionSim first(5, config, probe);
  first.run_until(kSecond);
  const std::int32_t leader = first.leader();
  ASSERT_NE(leader, -1);

  SimSchedule schedule = probe;  // identical fabric; same leader emerges
  schedule.partitions.push_back(
      {kSecond, 3 * kSecond, {leader}});
  ElectionSim sim(5, config, schedule);
  sim.run_until(kSecond);
  ASSERT_EQ(sim.leader(), leader) << "replay diverged before the partition";

  sim.run_until(2 * kSecond);
  // The isolated ex-leader has no quorum: lease gone, stepped down.
  EXPECT_NE(sim.core(leader).role(), Role::kLeader);
  EXPECT_FALSE(sim.core(leader).has_lease(sim.now()));
  const std::int32_t majority_leader = sim.leader();
  ASSERT_NE(majority_leader, -1);
  EXPECT_NE(majority_leader, leader);

  sim.run_until(4 * kSecond);  // healed for a second
  EXPECT_TRUE(sim.safety_held());
  const std::int32_t final_leader = sim.leader();
  ASSERT_NE(final_leader, -1);
  EXPECT_EQ(sim.core(leader).term(), sim.core(final_leader).term());
  EXPECT_EQ(sim.core(leader).leader(), final_leader);
}

TEST(ElectionSimTest, KilledNodeRestartsAsFollowerAndCatchesUp) {
  SimSchedule schedule;
  ElectionSim sim(3, base_config(), schedule);
  sim.run_until(kSecond);
  const std::int32_t leader = sim.leader();
  ASSERT_NE(leader, -1);
  const std::int32_t bystander = (leader + 1) % 3;
  sim.kill(bystander);
  sim.run_until(2 * kSecond);
  EXPECT_EQ(sim.leader(), leader) << "majority should keep its leader";
  sim.restart(bystander);
  sim.run_until(3 * kSecond);
  EXPECT_TRUE(sim.safety_held());
  EXPECT_EQ(sim.core(bystander).leader(), sim.leader());
  EXPECT_EQ(sim.core(bystander).term(), sim.core(leader).term());
}

TEST(ElectionSimTest, DeterministicReplay) {
  const auto run = [] {
    SimSchedule schedule;
    schedule.loss = 0.2;
    schedule.seed = 11;
    ElectionConfig config = base_config();
    config.seed = 11;
    auto sim = std::make_unique<ElectionSim>(5, config, schedule);
    sim->run_until(2 * kSecond);
    return sim;
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a->leaders_per_term(), b->leaders_per_term());
  EXPECT_EQ(a->leader(), b->leader());
  for (std::int32_t i = 0; i < 5; ++i) {
    EXPECT_EQ(a->core(i).term(), b->core(i).term()) << "node " << i;
    EXPECT_EQ(a->core(i).role(), b->core(i).role()) << "node " << i;
  }
}

// Core-level unit tests driving messages by hand.

TEST(ElectionCoreTest, GrantsAtMostOneVotePerTerm) {
  ElectionConfig config = base_config();
  config.id = 1;
  config.cluster_size = 3;
  ElectionCore voter(config);
  std::vector<Action> out;

  voter.receive({PeerMessage::Kind::kVoteRequest, 1, 0}, kMillisecond, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].to, 0);
  EXPECT_TRUE(out[0].msg.granted);

  out.clear();
  voter.receive({PeerMessage::Kind::kVoteRequest, 1, 2}, 2 * kMillisecond,
                out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].to, 2);
  EXPECT_FALSE(out[0].msg.granted) << "second candidate in the same term";

  // Re-request from the original candidate (retransmit) is re-granted.
  out.clear();
  voter.receive({PeerMessage::Kind::kVoteRequest, 1, 0}, 3 * kMillisecond,
                out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_TRUE(out[0].msg.granted);
}

TEST(ElectionCoreTest, LeaderLosesLeaseWithoutQuorumAcks) {
  ElectionConfig config = base_config();
  config.id = 0;
  config.cluster_size = 3;
  config.seed = 5;
  ElectionCore core(config);
  std::vector<Action> out;

  // Force an election: first tick arms the deadline, a tick past the max
  // timeout fires it.
  core.tick(kMillisecond, out);
  out.clear();
  core.tick(kMillisecond + config.election_timeout_max + kMillisecond, out);
  ASSERT_EQ(core.role(), Role::kCandidate);
  const SimTime t0 = kMillisecond + config.election_timeout_max + kMillisecond;

  out.clear();
  core.receive({PeerMessage::Kind::kVoteReply, core.term(), 1, true}, t0, out);
  ASSERT_EQ(core.role(), Role::kLeader);
  EXPECT_TRUE(core.has_lease(t0));

  // Silence past the lease: the leader must step down rather than keep
  // answering snapshot requests it can no longer guarantee are fresh.
  out.clear();
  core.tick(t0 + config.leader_lease + kMillisecond, out);
  EXPECT_EQ(core.role(), Role::kFollower);
  EXPECT_FALSE(core.has_lease(t0 + config.leader_lease + kMillisecond));
}

TEST(ElectionCoreTest, StaleLeaderHeartbeatGetsDeposingAck) {
  ElectionConfig config = base_config();
  config.id = 1;
  config.cluster_size = 3;
  ElectionCore core(config);
  std::vector<Action> out;

  // Adopt term 5 via a heartbeat from node 0.
  core.receive({PeerMessage::Kind::kHeartbeat, 5, 0}, kMillisecond, out);
  EXPECT_EQ(core.term(), 5u);
  EXPECT_EQ(core.leader(), 0);

  // A heartbeat from a deposed term-3 leader is answered with term 5 so
  // the sender steps down, and does not change our view.
  out.clear();
  core.receive({PeerMessage::Kind::kHeartbeat, 3, 2}, 2 * kMillisecond, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].to, 2);
  EXPECT_EQ(out[0].msg.kind, PeerMessage::Kind::kHeartbeatAck);
  EXPECT_EQ(out[0].msg.term, 5u);
  EXPECT_EQ(core.leader(), 0);
}

}  // namespace
}  // namespace finelb::cluster::ha
