// Threaded integration tests for the replicated directory: real sockets,
// real elections, real failover. RUNTIME + HA labels put these under the
// ASan/TSan sweeps.
#include "cluster/ha/replica.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "cluster/directory.h"
#include "common/check.h"
#include "fault/fault.h"
#include "net/clock.h"

namespace finelb::cluster::ha {
namespace {

net::Publish make_publish(const std::string& service, std::int32_t server,
                          std::uint32_t ttl_ms = 1000) {
  net::Publish p;
  p.service = service;
  p.partition = 0;
  p.server = server;
  p.service_port = static_cast<std::uint16_t>(40000 + server);
  p.load_port = static_cast<std::uint16_t>(41000 + server);
  p.ttl_ms = ttl_ms;
  return p;
}

void publish_to_all(net::UdpSocket& socket, const net::Publish& publish,
                    const std::vector<net::Address>& replicas) {
  const auto payload = publish.encode();
  for (const auto& addr : replicas) socket.send_to(payload, addr);
}

HaReplicaConfig fast_config() {
  HaReplicaConfig config;
  config.heartbeat_interval = 20 * kMillisecond;
  config.election_timeout_min = 80 * kMillisecond;
  config.election_timeout_max = 160 * kMillisecond;
  config.leader_lease = 60 * kMillisecond;
  config.seed = 42;
  return config;
}

TEST(HaReplicaTest, SingleReplicaElectsItselfAndServes) {
  HaDirectoryCluster cluster(1, fast_config());
  ASSERT_NE(cluster.wait_for_leader(), -1);
  EXPECT_EQ(cluster.replica(0).role(), Role::kLeader);

  net::UdpSocket publisher;
  publish_to_all(publisher, make_publish("search", 1),
                 cluster.data_addresses());
  DirectoryClient client(cluster.data_addresses());
  const auto endpoints = client.wait_for_servers("search", 1);
  ASSERT_EQ(endpoints.size(), 1u);
  EXPECT_EQ(endpoints[0].server, 1);
}

TEST(HaReplicaTest, ThreeReplicasElectExactlyOneLeader) {
  HaDirectoryCluster cluster(3, fast_config());
  const std::int32_t leader = cluster.wait_for_leader();
  ASSERT_NE(leader, -1);
  // Once settled, exactly one replica claims leadership and all agree on
  // the term.
  net::sleep_for(200 * kMillisecond);
  int leaders = 0;
  for (std::int32_t i = 0; i < cluster.size(); ++i) {
    if (cluster.replica(i).role() == Role::kLeader) ++leaders;
  }
  EXPECT_EQ(leaders, 1);
  const std::int32_t settled = cluster.leader_index();
  ASSERT_NE(settled, -1);
  for (std::int32_t i = 0; i < cluster.size(); ++i) {
    EXPECT_EQ(cluster.replica(i).term(), cluster.replica(settled).term())
        << "replica " << i;
  }
}

TEST(HaReplicaTest, FollowerRedirectsClientToLeader) {
  HaDirectoryCluster cluster(3, fast_config());
  const std::int32_t leader = cluster.wait_for_leader();
  ASSERT_NE(leader, -1);
  net::sleep_for(100 * kMillisecond);  // let heartbeats spread the leader id

  net::UdpSocket publisher;
  publish_to_all(publisher, make_publish("search", 1),
                 cluster.data_addresses());

  const std::int32_t follower = (cluster.leader_index() + 1) % cluster.size();
  // Client aimed only at a follower: must arrive at the answer by
  // following the Redirect reply.
  DirectoryClient client({cluster.replica(follower).data_address()});
  const auto endpoints = client.wait_for_servers("search", 1);
  ASSERT_EQ(endpoints.size(), 1u);
  EXPECT_GE(client.redirects_followed(), 1);
  if (telemetry::kEnabled) {
    EXPECT_GE(cluster.replica(follower).registry().snapshot().counters.size(),
              1u);
  }
}

TEST(HaReplicaTest, ClientFailsOverAfterLeaderKill) {
  HaDirectoryCluster cluster(3, fast_config());
  ASSERT_NE(cluster.wait_for_leader(), -1);

  // Background publisher keeps the soft state fresh on every replica, the
  // way real servers re-publish on an interval.
  std::atomic<bool> stop{false};
  std::thread publisher_thread([&] {
    net::UdpSocket socket;
    const auto addrs = cluster.data_addresses();
    while (!stop.load(std::memory_order_relaxed)) {
      publish_to_all(socket, make_publish("search", 1, /*ttl_ms=*/500),
                     addrs);
      net::sleep_for(50 * kMillisecond);
    }
  });

  DirectoryClient client(cluster.data_addresses(), /*seed=*/7);
  ASSERT_EQ(client.wait_for_servers("search", 1).size(), 1u);

  const std::int32_t killed = cluster.kill_leader();
  ASSERT_NE(killed, -1);

  // The survivors must re-elect and the client must find the new leader
  // without throwing (try_fetch path under the hood).
  const auto after = client.try_fetch("search", 5 * kSecond);
  ASSERT_TRUE(after.has_value());
  EXPECT_EQ(after->size(), 1u);
  const std::int32_t new_leader = cluster.wait_for_leader();
  ASSERT_NE(new_leader, -1);
  EXPECT_NE(new_leader, killed);
  EXPECT_GT(cluster.replica(new_leader).term(), 0u);

  stop.store(true);
  publisher_thread.join();
}

TEST(HaReplicaTest, TryFetchReturnsNulloptWhenAllReplicasDead) {
  auto cluster = std::make_unique<HaDirectoryCluster>(3, fast_config());
  ASSERT_NE(cluster->wait_for_leader(), -1);
  net::UdpSocket publisher;
  publish_to_all(publisher, make_publish("search", 1),
                 cluster->data_addresses());
  DirectoryClient client(cluster->data_addresses());
  ASSERT_EQ(client.wait_for_servers("search", 1).size(), 1u);
  const auto cached = client.last_snapshot();
  ASSERT_EQ(cached.size(), 1u);

  for (std::int32_t i = 0; i < cluster->size(); ++i) {
    cluster->replica(i).stop();
  }
  const auto result = client.try_fetch("search", 400 * kMillisecond);
  EXPECT_FALSE(result.has_value());
  // Stale-but-recent cache still serves: this is what keeps mapping
  // refreshes alive through an election window.
  EXPECT_EQ(client.last_snapshot().size(), 1u);
  EXPECT_GT(client.failovers(), 0);
}

TEST(HaReplicaTest, LeaderElectedTraceInstantRecorded) {
  if (!telemetry::kEnabled) GTEST_SKIP() << "telemetry compiled out";
  HaDirectoryCluster cluster(3, fast_config());
  const std::int32_t leader = cluster.wait_for_leader();
  ASSERT_NE(leader, -1);
  const auto records = cluster.replica(leader).trace_ring().snapshot();
  bool found = false;
  for (const auto& record : records) {
    if (record.point == telemetry::TracePoint::kLeaderElected) {
      found = true;
      EXPECT_EQ(record.node, leader);
      EXPECT_GE(record.detail, 1);
    }
  }
  EXPECT_TRUE(found) << "election must leave a kLeaderElected instant";
}

// Elections must still converge when the control plane itself is lossy —
// the FaultInjector hook on the election sockets (tentpole requirement).
TEST(HaReplicaTest, ElectsLeaderUnderControlPlaneLoss) {
  HaReplicaConfig config = fast_config();
  config.seed = 99;
  HaClusterFaults faults;
  faults.control = [](std::int32_t id) {
    return std::make_shared<fault::FaultInjector>(
        fault::FaultSpec::symmetric_loss(
            0.25, /*seed=*/100 + static_cast<std::uint64_t>(id)));
  };
  HaDirectoryCluster cluster(3, config, faults);
  EXPECT_NE(cluster.wait_for_leader(10 * kSecond), -1);
}

}  // namespace
}  // namespace finelb::cluster::ha
