#include "cluster/blocking_queue.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace finelb::cluster {
namespace {

TEST(BlockingQueueTest, FifoOrder) {
  BlockingQueue<int> q;
  q.push(1);
  q.push(2);
  q.push(3);
  EXPECT_EQ(q.size(), 3u);
  EXPECT_EQ(q.pop(), 1);
  EXPECT_EQ(q.pop(), 2);
  EXPECT_EQ(q.pop(), 3);
}

TEST(BlockingQueueTest, CloseWakesBlockedPopper) {
  BlockingQueue<int> q;
  std::atomic<bool> returned{false};
  std::thread popper([&] {
    EXPECT_FALSE(q.pop().has_value());
    returned = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(returned.load());
  q.close();
  popper.join();
  EXPECT_TRUE(returned.load());
}

TEST(BlockingQueueTest, CloseDrainsRemainingItems) {
  BlockingQueue<int> q;
  q.push(7);
  q.push(8);
  q.close();
  EXPECT_FALSE(q.push(9)) << "push after close must fail";
  EXPECT_EQ(q.pop(), 7);
  EXPECT_EQ(q.pop(), 8);
  EXPECT_FALSE(q.pop().has_value());
}

TEST(BlockingQueueTest, ProducerConsumerStress) {
  BlockingQueue<int> q;
  constexpr int kItems = 20000;
  constexpr int kConsumers = 3;
  std::atomic<std::int64_t> sum{0};
  std::atomic<int> popped{0};
  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&] {
      while (auto v = q.pop()) {
        sum += *v;
        ++popped;
      }
    });
  }
  std::thread producer([&] {
    for (int i = 1; i <= kItems; ++i) q.push(i);
    q.close();
  });
  producer.join();
  for (auto& t : consumers) t.join();
  EXPECT_EQ(popped.load(), kItems);
  EXPECT_EQ(sum.load(), static_cast<std::int64_t>(kItems) * (kItems + 1) / 2);
}

TEST(BlockingQueueTest, MoveOnlyPayload) {
  BlockingQueue<std::unique_ptr<int>> q;
  q.push(std::make_unique<int>(5));
  auto item = q.pop();
  ASSERT_TRUE(item.has_value());
  EXPECT_EQ(**item, 5);
}

TEST(BlockingQueueTest, TryPopNeverBlocks) {
  BlockingQueue<int> q;
  int v = 0;
  EXPECT_EQ(q.try_pop(v), PopResult::kEmpty);  // empty: returns immediately
  q.push(1);
  q.push(2);
  EXPECT_EQ(q.try_pop(v), PopResult::kItem);
  EXPECT_EQ(v, 1);  // FIFO, same as pop()
  EXPECT_EQ(q.try_pop(v), PopResult::kItem);
  EXPECT_EQ(v, 2);
  EXPECT_EQ(q.try_pop(v), PopResult::kEmpty);
}

TEST(BlockingQueueTest, TryPopDrainsAfterClose) {
  // Workers use try_pop as the burst fast path; items queued before close()
  // must still drain through it, and once drained the result must be
  // kClosed, not kEmpty — a worker relying on try_pop alone has to be able
  // to observe shutdown (the old optional API lost that signal).
  BlockingQueue<int> q;
  q.push(7);
  q.close();
  int v = 0;
  EXPECT_EQ(q.try_pop(v), PopResult::kItem);
  EXPECT_EQ(v, 7);
  EXPECT_EQ(q.try_pop(v), PopResult::kClosed);
  EXPECT_FALSE(q.pop().has_value());  // closed and drained
}

TEST(BlockingQueueTest, ClosedObservable) {
  BlockingQueue<int> q;
  EXPECT_FALSE(q.closed());
  q.push(1);
  q.close();
  EXPECT_TRUE(q.closed());  // closed even while items remain queued
  int v = 0;
  EXPECT_EQ(q.try_pop(v), PopResult::kItem);
  EXPECT_EQ(q.try_pop(v), PopResult::kClosed);
}

TEST(BlockingQueueTest, TryPopMoveOnlyPayload) {
  BlockingQueue<std::unique_ptr<int>> q;
  q.push(std::make_unique<int>(9));
  std::unique_ptr<int> item;
  EXPECT_EQ(q.try_pop(item), PopResult::kItem);
  ASSERT_TRUE(item != nullptr);
  EXPECT_EQ(*item, 9);
}

TEST(BlockingQueueTest, RingGrowthPreservesFifoAcrossWrap) {
  // Force the ring to wrap and regrow with a live head offset: interleave
  // pushes and pops past the initial capacity, then grow mid-wrap.
  BlockingQueue<int> q;
  int next_push = 0;
  int next_pop = 0;
  int v = 0;
  for (int round = 0; round < 200; ++round) {
    for (int i = 0; i < 7; ++i) q.push(next_push++);
    for (int i = 0; i < 5; ++i) {
      ASSERT_EQ(q.try_pop(v), PopResult::kItem);
      ASSERT_EQ(v, next_pop++);
    }
  }
  while (q.try_pop(v) == PopResult::kItem) {
    ASSERT_EQ(v, next_pop++);
  }
  EXPECT_EQ(next_pop, next_push);
}

}  // namespace
}  // namespace finelb::cluster
