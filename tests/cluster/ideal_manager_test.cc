#include "cluster/ideal_manager.h"

#include <gtest/gtest.h>

#include <array>
#include <set>

#include "common/check.h"
#include "net/clock.h"
#include "net/message.h"
#include "net/poller.h"

namespace finelb::cluster {
namespace {

class ManagerClient {
 public:
  explicit ManagerClient(const net::Address& manager) {
    socket_.connect(manager);
    poller_.add(socket_.fd(), 0);
  }

  std::int32_t acquire(std::uint64_t seq) {
    net::Acquire msg;
    msg.seq = seq;
    EXPECT_TRUE(socket_.send(msg.encode()));
    std::array<std::uint8_t, 64> buf{};
    const SimTime deadline = net::monotonic_now() + 2 * kSecond;
    while (net::monotonic_now() < deadline) {
      poller_.wait(50 * kMillisecond);
      if (auto size = socket_.recv(buf)) {
        const auto reply =
            net::AcquireReply::decode(std::span(buf.data(), *size));
        EXPECT_EQ(reply.seq, seq);
        return reply.server;
      }
    }
    ADD_FAILURE() << "manager did not answer";
    return -1;
  }

  void release(std::int32_t server) {
    net::Release msg;
    msg.server = server;
    EXPECT_TRUE(socket_.send(msg.encode()));
  }

 private:
  net::UdpSocket socket_;
  net::Poller poller_;
};

TEST(IdealManagerTest, AcquireSpreadsAcrossServers) {
  IdealManager manager(4);
  manager.start();
  ManagerClient client(manager.address());
  std::set<std::int32_t> chosen;
  for (std::uint64_t i = 0; i < 4; ++i) {
    const std::int32_t server = client.acquire(i);
    ASSERT_GE(server, 0);
    ASSERT_LT(server, 4);
    chosen.insert(server);
  }
  // Four acquires with no releases must use four distinct servers (each
  // acquire increments the chosen server's count).
  EXPECT_EQ(chosen.size(), 4u);
  const auto queues = manager.tracked_queues();
  for (const std::int32_t q : queues) EXPECT_EQ(q, 1);
  manager.stop();
}

TEST(IdealManagerTest, ReleaseDecrements) {
  IdealManager manager(2);
  manager.start();
  ManagerClient client(manager.address());
  const std::int32_t first = client.acquire(1);
  client.release(first);
  net::sleep_for(50 * kMillisecond);
  const auto queues = manager.tracked_queues();
  EXPECT_EQ(queues[static_cast<std::size_t>(first)], 0);
  EXPECT_EQ(manager.acquires(), 1);
  EXPECT_EQ(manager.releases(), 1);
  manager.stop();
}

TEST(IdealManagerTest, PicksShortestQueue) {
  IdealManager manager(3);
  manager.start();
  ManagerClient client(manager.address());
  // Occupy two servers; the third acquire must take the empty one, and a
  // fourth (after releasing it) must take it again.
  const std::int32_t a = client.acquire(1);
  const std::int32_t b = client.acquire(2);
  const std::int32_t c = client.acquire(3);
  EXPECT_NE(a, b);
  EXPECT_NE(b, c);
  EXPECT_NE(a, c);
  client.release(c);
  net::sleep_for(30 * kMillisecond);
  EXPECT_EQ(client.acquire(4), c);
  manager.stop();
}

TEST(IdealManagerTest, BogusReleaseIsIgnored) {
  IdealManager manager(2);
  manager.start();
  ManagerClient client(manager.address());
  client.release(0);    // idle server
  client.release(99);   // unknown server
  net::sleep_for(50 * kMillisecond);
  EXPECT_EQ(manager.releases(), 0);
  const auto queues = manager.tracked_queues();
  EXPECT_EQ(queues[0], 0);
  manager.stop();
}

TEST(IdealManagerTest, RequiresAtLeastOneServer) {
  EXPECT_THROW(IdealManager manager(0), InvariantError);
}

// The oracle path takes loss/delay schedules like every other socket: with
// a total ingress drop the manager never sees an acquire, so the tracked
// queues stay untouched and the client times out instead of hanging.
TEST(IdealManagerTest, FaultInjectorDropsAcquires) {
  IdealManager manager(2);
  fault::FaultSpec spec;
  spec.ingress.drop_prob = 1.0;
  manager.attach_fault_injector(std::make_shared<fault::FaultInjector>(spec));
  manager.start();

  net::UdpSocket socket;
  socket.connect(manager.address());
  net::Acquire msg;
  msg.seq = 1;
  ASSERT_TRUE(socket.send(msg.encode()));
  net::sleep_for(150 * kMillisecond);
  EXPECT_EQ(manager.acquires(), 0) << "dropped acquire must not be counted";
  for (const std::int32_t q : manager.tracked_queues()) EXPECT_EQ(q, 0);
  manager.stop();
}

// Deterministic seeded drop schedule: with p=0.5 ingress loss some acquires
// land and some vanish; the survivors must still be answered correctly.
TEST(IdealManagerTest, PartialDropScheduleStillServesSurvivors) {
  IdealManager manager(4);
  fault::FaultSpec spec;
  spec.ingress.drop_prob = 0.5;
  spec.seed = 13;
  manager.attach_fault_injector(std::make_shared<fault::FaultInjector>(spec));
  manager.start();

  net::UdpSocket socket;
  socket.connect(manager.address());
  net::Poller poller;
  poller.add(socket.fd(), 0);
  std::array<std::uint8_t, 64> buf{};
  int answered = 0;
  for (std::uint64_t seq = 1; seq <= 20; ++seq) {
    net::Acquire msg;
    msg.seq = seq;
    ASSERT_TRUE(socket.send(msg.encode()));
    const SimTime deadline = net::monotonic_now() + 100 * kMillisecond;
    while (net::monotonic_now() < deadline) {
      poller.wait(20 * kMillisecond);
      if (auto size = socket.recv(buf)) {
        const auto reply =
            net::AcquireReply::decode(std::span(buf.data(), *size));
        if (reply.seq == seq) {
          ++answered;
          break;
        }
      }
    }
  }
  EXPECT_GT(answered, 0) << "half-loss schedule should pass some acquires";
  EXPECT_LT(answered, 20) << "half-loss schedule should drop some acquires";
  EXPECT_EQ(manager.acquires(), answered);
  manager.stop();
}

}  // namespace
}  // namespace finelb::cluster
