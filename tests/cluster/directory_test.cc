#include "cluster/directory.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/check.h"
#include "net/clock.h"

namespace finelb::cluster {
namespace {

net::Publish make_publish(const std::string& service, std::int32_t server,
                          std::uint32_t ttl_ms = 1000) {
  net::Publish p;
  p.service = service;
  p.partition = 0;
  p.server = server;
  p.service_port = static_cast<std::uint16_t>(40000 + server);
  p.load_port = static_cast<std::uint16_t>(41000 + server);
  p.ttl_ms = ttl_ms;
  return p;
}

TEST(DirectoryTest, PublishThenSnapshot) {
  DirectoryServer directory;
  directory.start();
  net::UdpSocket publisher;
  ASSERT_TRUE(
      publisher.send_to(make_publish("search", 1).encode(),
                        directory.address()));
  ASSERT_TRUE(
      publisher.send_to(make_publish("search", 2).encode(),
                        directory.address()));

  DirectoryClient client(directory.address());
  const auto endpoints = client.wait_for_servers("search", 2);
  ASSERT_EQ(endpoints.size(), 2u);
  EXPECT_EQ(directory.publishes_received(), 2);
  directory.stop();
}

TEST(DirectoryTest, ServiceFilterApplies) {
  DirectoryServer directory;
  directory.start();
  net::UdpSocket publisher;
  publisher.send_to(make_publish("search", 1).encode(), directory.address());
  publisher.send_to(make_publish("album", 2).encode(), directory.address());

  DirectoryClient client(directory.address());
  const auto search = client.wait_for_servers("search", 1);
  ASSERT_EQ(search.size(), 1u);
  EXPECT_EQ(search[0].server, 1);
  const auto all = client.wait_for_servers("", 2);
  EXPECT_EQ(all.size(), 2u);
  directory.stop();
}

TEST(DirectoryTest, RefreshReplacesNotDuplicates) {
  DirectoryServer directory;
  directory.start();
  net::UdpSocket publisher;
  for (int i = 0; i < 5; ++i) {
    publisher.send_to(make_publish("search", 1).encode(),
                      directory.address());
    net::sleep_for(5 * kMillisecond);
  }
  net::sleep_for(30 * kMillisecond);
  EXPECT_EQ(directory.live_entries("search").size(), 1u);
  directory.stop();
}

TEST(DirectoryTest, SoftStateExpires) {
  DirectoryServer directory;
  directory.start();
  net::UdpSocket publisher;
  publisher.send_to(make_publish("search", 1, /*ttl_ms=*/60).encode(),
                    directory.address());
  net::sleep_for(20 * kMillisecond);
  EXPECT_EQ(directory.live_entries("search").size(), 1u);
  net::sleep_for(80 * kMillisecond);
  EXPECT_EQ(directory.live_entries("search").size(), 0u)
      << "entry must vanish after its ttl without refresh";
  directory.stop();
}

TEST(DirectoryTest, PartitionedServiceKeepsDistinctEntries) {
  DirectoryServer directory;
  directory.start();
  net::UdpSocket publisher;
  net::Publish p0 = make_publish("image-store", 1);
  p0.partition = 0;
  net::Publish p1 = make_publish("image-store", 1);
  p1.partition = 1;
  publisher.send_to(p0.encode(), directory.address());
  publisher.send_to(p1.encode(), directory.address());
  net::sleep_for(30 * kMillisecond);
  EXPECT_EQ(directory.live_entries("image-store").size(), 2u);
  directory.stop();
}

// Regression for the RCU-style snapshot read path: live_entries() must be
// safe (and see only complete entry sets) while the recv loop keeps
// republishing. Runs under TSan via the "runtime" label — this is the test
// that would flag a return to unguarded shared state.
TEST(DirectoryTest, ConcurrentPublishAndLookup) {
  DirectoryServer directory;
  directory.start();
  constexpr int kServers = 6;

  std::atomic<bool> stop{false};
  std::atomic<std::int64_t> reads{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        const auto entries = directory.live_entries("search");
        // Entries are keyed by (service, server, partition): duplicates in
        // one snapshot would mean a lookup observed a half-applied publish.
        std::vector<bool> seen(kServers, false);
        for (const auto& entry : entries) {
          ASSERT_GE(entry.server, 0);
          ASSERT_LT(entry.server, kServers);
          ASSERT_FALSE(seen[static_cast<std::size_t>(entry.server)])
              << "duplicate server " << entry.server << " in one snapshot";
          seen[static_cast<std::size_t>(entry.server)] = true;
        }
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  net::UdpSocket publisher;
  for (int round = 0; round < 200; ++round) {
    for (int server = 0; server < kServers; ++server) {
      publisher.send_to(make_publish("search", server).encode(),
                        directory.address());
    }
    net::sleep_for(kMillisecond);
  }
  stop.store(true);
  for (auto& t : readers) t.join();

  EXPECT_GT(reads.load(), 0);
  const auto entries = directory.live_entries("search");
  EXPECT_EQ(entries.size(), static_cast<std::size_t>(kServers));
  directory.stop();
}

TEST(DirectoryTest, FetchTimesOutAgainstDeadDirectory) {
  net::UdpSocket placeholder;  // bound but nobody serving
  DirectoryClient client(placeholder.local_address());
  EXPECT_THROW(client.fetch("search", 300 * kMillisecond), InvariantError);
}

TEST(DirectoryTest, TryFetchReturnsNulloptInsteadOfThrowing) {
  net::UdpSocket placeholder;  // bound but nobody serving
  DirectoryClient client(placeholder.local_address());
  EXPECT_FALSE(client.try_fetch("search", 300 * kMillisecond).has_value());
  EXPECT_GT(client.snapshot_retries(), 0) << "retransmits still happen";
}

// Satellite property test (ISSUE 6): a server that re-publishes *exactly*
// at ttl_ms must never flap out of live_entries. DirectoryTable takes
// explicit clocks, so the boundary is probed deterministically: refresh at
// t = k*ttl and read at the very same instant — the ttl/4 grace window has
// to keep the entry visible at every probe.
TEST(DirectoryTest, RepublishExactlyAtTtlNeverFlaps) {
  DirectoryTable table;
  const std::uint32_t ttl_ms = 400;
  const SimDuration ttl = ttl_ms * kMillisecond;
  net::Publish publish = make_publish("search", 1, ttl_ms);
  table.apply(publish, /*now=*/0);
  for (int k = 1; k <= 50; ++k) {
    const SimTime boundary = static_cast<SimTime>(k) * ttl;
    // Read at the nominal expiry instant, *before* the refresh lands —
    // the worst ordering of the race.
    EXPECT_EQ(table.live_entries("search", boundary).size(), 1u)
        << "flapped at boundary " << k;
    table.apply(publish, boundary);
    // And at a few interior instants of the next interval.
    EXPECT_EQ(table.live_entries("search", boundary + ttl / 2).size(), 1u);
    EXPECT_EQ(table.live_entries("search", boundary + ttl - kMillisecond)
                  .size(),
              1u);
  }
  // The grace is bounded: without a refresh the entry still expires, just
  // ttl/4 late.
  const SimTime last = 50 * ttl;
  EXPECT_EQ(table.live_entries("search", last + ttl + ttl / 4 + kMillisecond)
                .size(),
            0u)
      << "grace must not keep dead entries alive past ttl + ttl/4";
}

// Same property through the real server under concurrency: one thread
// re-publishes on the exact-ttl cadence while readers sample continuously.
// Runs under the runtime label, so TSan checks the RCU protocol while ASan
// watches the buffers.
TEST(DirectoryTest, BoundaryRepublishStableUnderConcurrentReads) {
  DirectoryServer directory;
  directory.start();
  constexpr std::uint32_t kTtlMs = 100;

  net::UdpSocket publisher;
  publisher.send_to(make_publish("search", 1, kTtlMs).encode(),
                    directory.address());
  net::sleep_for(20 * kMillisecond);
  ASSERT_EQ(directory.live_entries("search").size(), 1u);

  std::atomic<bool> stop{false};
  std::atomic<std::int64_t> empty_reads{0};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      if (directory.live_entries("search").empty()) {
        empty_reads.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });
  // Re-publish on the nominal ttl cadence for ~1.2 s. Scheduling jitter
  // lands some refreshes slightly *after* the boundary — exactly the race
  // the ttl/4 grace absorbs.
  for (int i = 0; i < 12; ++i) {
    net::sleep_for(kTtlMs * kMillisecond);
    publisher.send_to(make_publish("search", 1, kTtlMs).encode(),
                      directory.address());
  }
  stop.store(true);
  reader.join();
  EXPECT_EQ(empty_reads.load(), 0)
      << "entry flapped out of live_entries despite on-time republish";
  directory.stop();
}

// Satellite TSan regression (ISSUE 6): the retry/failover counters are read
// from other threads while a fetch loop is live (benches do exactly this).
// Before this PR snapshot_retries_ was a plain int64_t — TSan flags that
// under the runtime label.
TEST(DirectoryTest, CountersReadableWhileFetchRuns) {
  net::UdpSocket placeholder;  // nobody answers: every fetch retries
  DirectoryClient client(placeholder.local_address());
  std::atomic<bool> stop{false};
  std::thread fetcher([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      client.try_fetch("search", 150 * kMillisecond);
    }
  });
  std::int64_t last = 0;
  const SimTime deadline = net::monotonic_now() + 600 * kMillisecond;
  while (net::monotonic_now() < deadline) {
    const std::int64_t retries = client.snapshot_retries();
    EXPECT_GE(retries, last) << "counter must be monotonic";
    last = retries;
    (void)client.failovers();
    (void)client.redirects_followed();
    net::sleep_for(5 * kMillisecond);
  }
  stop.store(true);
  fetcher.join();
  EXPECT_GT(last, 0) << "unanswered fetches must retransmit";
}

TEST(DirectoryTest, WaitForServersReturnsPartialAfterDeadline) {
  DirectoryServer directory;
  directory.start();
  net::UdpSocket publisher;
  publisher.send_to(make_publish("search", 1).encode(), directory.address());
  DirectoryClient client(directory.address());
  const auto endpoints =
      client.wait_for_servers("search", 5, 300 * kMillisecond);
  EXPECT_EQ(endpoints.size(), 1u);
  directory.stop();
}

}  // namespace
}  // namespace finelb::cluster
