// End-to-end prototype experiments at reduced scale: the full Figure 5
// system (servers, directory, manager, clients) on loopback. Workloads are
// shrunk (4 servers, 2 clients, a few hundred requests, 5 ms services) so
// the whole suite stays fast; the full-scale runs live in bench/.
#include <gtest/gtest.h>

#include <string>

#include "cluster/experiment.h"
#include "net/clock.h"
#include "telemetry/metrics.h"
#include "workload/catalog.h"

namespace finelb::cluster {
namespace {

PrototypeConfig small_config(PolicyConfig policy, double load = 0.6) {
  PrototypeConfig config;
  config.servers = 4;
  config.clients = 2;
  config.policy = policy;
  config.load = load;
  config.total_requests = 600;
  config.per_request_overhead_sec = 300e-6;
  config.seed = 11;
  return config;
}

const Workload& fast_workload() {
  static const Workload w = make_poisson_exp(0.005);  // 5 ms services
  return w;
}

TEST(PrototypeIntegrationTest, RandomPolicyEndToEnd) {
  const PrototypeResult r =
      run_prototype(small_config(PolicyConfig::random()), fast_workload());
  EXPECT_EQ(r.clients.issued, 600);
  EXPECT_GE(r.clients.completed, 590) << "loopback UDP loss should be rare";
  EXPECT_EQ(r.servers.requests_served, r.clients.completed);
  EXPECT_GT(r.clients.response_ms.mean(), 5.0);
  EXPECT_GT(r.throughput, 0.0);
}

TEST(PrototypeIntegrationTest, PollingUsesDirectoryAndPolls) {
  const PrototypeResult r =
      run_prototype(small_config(PolicyConfig::polling(2)), fast_workload());
  EXPECT_GE(r.clients.completed, 590);
  EXPECT_GE(r.clients.polls_sent, 2 * 590);
  EXPECT_GT(r.servers.inquiries_answered, 0);
}

TEST(PrototypeIntegrationTest, IdealRunsThroughManager) {
  const PrototypeResult r =
      run_prototype(small_config(PolicyConfig::ideal()), fast_workload());
  EXPECT_GE(r.clients.completed, 590);
  EXPECT_EQ(r.clients.manager_timeouts, 0);
}

TEST(PrototypeIntegrationTest, StaticEndpointsWithoutDirectory) {
  PrototypeConfig config = small_config(PolicyConfig::polling(2));
  config.use_directory = false;
  const PrototypeResult r = run_prototype(config, fast_workload());
  EXPECT_GE(r.clients.completed, 590);
}

TEST(PrototypeIntegrationTest, PollingBeatsRandomUnderHighLoad) {
  // The paper's central claim, at integration-test scale. 5 ms services at
  // 85% load on 4 servers: random suffers queueing that polling(2) avoids.
  PrototypeConfig config = small_config(PolicyConfig::random(), 0.85);
  config.total_requests = 2000;
  const double random_ms =
      run_prototype(config, fast_workload()).clients.response_ms.mean();
  config.policy = PolicyConfig::polling(2);
  const double polling_ms =
      run_prototype(config, fast_workload()).clients.response_ms.mean();
  EXPECT_LT(polling_ms, random_ms)
      << "power of two choices must beat random at high load";
}

TEST(PrototypeIntegrationTest, DiscardModeReducesPollTime) {
  PrototypeConfig config = small_config(PolicyConfig::polling(3), 0.8);
  config.total_requests = 1500;
  config.inject_busy_reply_delay = true;  // slow replies exist to discard
  const PrototypeResult basic = run_prototype(config, fast_workload());
  config.policy = PolicyConfig::polling(3, from_ms(1.0));
  const PrototypeResult discard = run_prototype(config, fast_workload());
  EXPECT_LT(discard.clients.poll_time_ms.mean(),
            basic.clients.poll_time_ms.mean())
      << "discarding slow polls must reduce mean polling time";
  EXPECT_GE(discard.clients.completed, 1400);
}

TEST(PrototypeIntegrationTest, CalibrationMeasuresPositiveOverhead) {
  const double overhead = calibrate_overhead(fast_workload(), 200, 3);
  EXPECT_GE(overhead, 0.0);
  EXPECT_LT(overhead, 0.05) << "per-request overhead should be well under "
                               "50 ms on loopback";
}

TEST(PrototypeIntegrationTest, ObservabilityCollectsNodeStats) {
  // Exercises the experiment's telemetry wiring end to end: lifecycle
  // tracing on every 16th request, the live StderrReporter scraping all
  // node registries mid-run, and per-node JSON snapshots collected into
  // the result (servers first, then clients).
  PrototypeConfig config = small_config(PolicyConfig::polling(2));
  config.trace_sample_period = 16;
  config.stats_report_interval = 50 * kMillisecond;
  config.collect_node_stats = true;
  const PrototypeResult r = run_prototype(config, fast_workload());
  EXPECT_GE(r.clients.completed, 590);
  ASSERT_EQ(r.node_stats_json.size(),
            static_cast<std::size_t>(config.servers + config.clients));
  EXPECT_NE(r.node_stats_json.front().find("\"node\":\"server.0\""),
            std::string::npos);
  EXPECT_NE(r.node_stats_json.back().find("\"node\":\"client.1\""),
            std::string::npos);
  if constexpr (telemetry::kEnabled) {
    for (const std::string& doc : r.node_stats_json) {
      EXPECT_NE(doc.find("\"counters\""), std::string::npos);
    }
    EXPECT_NE(r.node_stats_json.front().find("\"queue_depth\""),
              std::string::npos);
    EXPECT_NE(r.node_stats_json.back().find("\"poll_rtt_ms\""),
              std::string::npos);
  }
}

TEST(PrototypeIntegrationTest, ConfigValidation) {
  PrototypeConfig config = small_config(PolicyConfig::random());
  config.load = 0.0;
  EXPECT_THROW(run_prototype(config, fast_workload()), InvariantError);
  config.load = 0.5;
  config.servers = 0;
  EXPECT_THROW(run_prototype(config, fast_workload()), InvariantError);
}

}  // namespace
}  // namespace finelb::cluster
